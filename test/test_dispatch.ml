(* The shared watcher index behind every delivery tier: trie-routed
   fan-out equals the naive matches_prefix filter, iteration survives
   reentrant mutation, and order keys pin delivery order. *)

module Dispatch = History.Dispatch

let event key = History.Event.make ~rev:1 ~key ~op:History.Event.Create (Some "v")

let naive_matching watchers key =
  List.filter_map
    (fun (id, prefix) -> if History.Event.matches_prefix prefix (event key) then Some id else None)
    watchers

(* Prefixes chosen to overlap aggressively: nested ("p" < "po" <
   "pods/"), empty-string, and match-all. *)
let prefix_gen =
  QCheck.Gen.oneofl
    [ None; Some ""; Some "p"; Some "po"; Some "pods/"; Some "pods/a"; Some "n"; Some "nodes/" ]

let key_gen =
  QCheck.Gen.oneofl
    [ ""; "p"; "po"; "pods/a"; "pods/abc"; "pods/b"; "n"; "nodes/x"; "x"; "pod" ]

let scenario_gen =
  QCheck.Gen.(
    pair (list_size (int_range 0 24) (pair prefix_gen bool)) (list_size (int_range 1 8) key_gen))

let scenario_print (adds, keys) =
  let p = function None -> "*" | Some s -> "\"" ^ s ^ "\"" in
  Printf.sprintf "adds=[%s] keys=[%s]"
    (String.concat "; " (List.map (fun (pre, rm) -> p pre ^ (if rm then "-" else "")) adds))
    (String.concat "; " keys)

(* Register every watcher, remove the flagged ones, and check that for
   every key the indexed answer equals the naive filter — same ids, same
   (registration) order. *)
let equivalence_property (adds, keys) =
  let t = Dispatch.create () in
  let watchers = ref [] in
  let removed = ref [] in
  List.iter
    (fun (prefix, rm) ->
      let id = Dispatch.add t ?prefix prefix in
      watchers := !watchers @ [ (id, prefix) ];
      if rm then removed := id :: !removed)
    adds;
  List.iter (fun id -> ignore (Dispatch.remove t id)) !removed;
  let live = List.filter (fun (id, _) -> not (List.mem id !removed)) !watchers in
  List.for_all
    (fun key ->
      let indexed = ref [] in
      Dispatch.iter_matching t ~key (fun id _ -> indexed := id :: !indexed);
      let indexed = List.rev !indexed in
      let expected = naive_matching live key in
      indexed = expected && Dispatch.matching t ~key = List.map (fun id -> List.assoc id live) expected)
    keys

let equivalence =
  Qcheck_util.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"indexed fan-out = naive matches_prefix filter"
       (QCheck.make ~print:scenario_print scenario_gen)
       equivalence_property)

let cancel_peer_mid_iteration () =
  let t = Dispatch.create () in
  let hits = ref [] in
  let second = ref 0 in
  let first =
    Dispatch.add t
      ~prefix:"pods/"
      (fun () ->
        hits := `First :: !hits;
        ignore (Dispatch.remove t !second))
  in
  second := Dispatch.add t ~prefix:"pods/" (fun () -> hits := `Second :: !hits);
  ignore first;
  Dispatch.iter_matching t ~key:"pods/a" (fun _ f -> f ());
  Alcotest.(check int) "peer cancelled mid-event" 1 (List.length !hits);
  Dispatch.iter_matching t ~key:"pods/a" (fun _ f -> f ());
  Alcotest.(check int) "peer stays cancelled" 2 (List.length !hits);
  Alcotest.(check int) "one live watcher" 1 (Dispatch.size t)

let cancel_self_mid_iteration () =
  let t = Dispatch.create () in
  let count = ref 0 in
  let self = ref 0 in
  self :=
    Dispatch.add t ~prefix:"a"
      (fun () ->
        incr count;
        ignore (Dispatch.remove t !self));
  let other = Dispatch.add t ~prefix:"a" (fun () -> incr count) in
  ignore other;
  Dispatch.iter_matching t ~key:"ab" (fun _ f -> f ());
  Dispatch.iter_matching t ~key:"ab" (fun _ f -> f ());
  Alcotest.(check int) "self delivered once, peer twice" 3 !count;
  Alcotest.(check int) "one live watcher left" 1 (Dispatch.size t)

let add_mid_iteration_not_visited () =
  let t = Dispatch.create () in
  let late_hits = ref 0 in
  let adder_fired = ref 0 in
  ignore
    (Dispatch.add t ~prefix:"k"
       (fun () ->
         incr adder_fired;
         if !adder_fired = 1 then
           ignore (Dispatch.add t ~prefix:"k" (fun () -> incr late_hits))));
  Dispatch.iter_matching t ~key:"k1" (fun _ f -> f ());
  Alcotest.(check int) "addition invisible to in-flight event" 0 !late_hits;
  Dispatch.iter_matching t ~key:"k1" (fun _ f -> f ());
  Alcotest.(check int) "addition visible to the next event" 1 !late_hits

let set_order_reorders_delivery () =
  let t = Dispatch.create () in
  let seen = ref [] in
  let a = Dispatch.add t "a" in
  let b = Dispatch.add t "b" in
  let c = Dispatch.add t "c" in
  Dispatch.iter_matching t ~key:"anything" (fun _ v -> seen := v :: !seen);
  Alcotest.(check (list string)) "registration order" [ "a"; "b"; "c" ] (List.rev !seen);
  Dispatch.set_order t a ~order:10;
  Dispatch.set_order t b ~order:2;
  Dispatch.set_order t c ~order:1;
  seen := [];
  Dispatch.iter_matching t ~key:"anything" (fun _ v -> seen := v :: !seen);
  Alcotest.(check (list string)) "pinned order" [ "c"; "b"; "a" ] (List.rev !seen)

(* 50 listeners, interleaved arrivals: flush order is first-event-pending
   order, and each listener's batch preserves its own arrival order —
   the determinism pin batched delivery rides on. *)
let batch_ordering_pin_50_listeners () =
  let q : string Dispatch.Batch.queue = Dispatch.Batch.create () in
  let ev rev = History.Event.make ~rev ~key:"k" ~op:History.Event.Create (Some "v") in
  (* Listener s's first event arrives at round-robin position 49 - s,
     then a second wave in ascending order. *)
  for s = 49 downto 0 do
    Dispatch.Batch.offer q ~stream:s (ev (100 + s))
  done;
  for s = 0 to 49 do
    Dispatch.Batch.offer q ~stream:s (ev (200 + s))
  done;
  Alcotest.(check int) "100 pending" 100 (Dispatch.Batch.pending q);
  Alcotest.(check int) "50 dirty streams" 50 (Dispatch.Batch.dirty q);
  let flushed = ref [] in
  Dispatch.Batch.flush q (fun ~stream events ->
      flushed :=
        (stream, List.map (fun (e : string History.Event.t) -> e.History.Event.rev) events)
        :: !flushed);
  let flushed = List.rev !flushed in
  Alcotest.(check (list int))
    "streams flush in first-event-pending order"
    (List.init 50 (fun i -> 49 - i))
    (List.map fst flushed);
  List.iter
    (fun (s, revs) -> Alcotest.(check (list int)) "per-stream arrival order" [ 100 + s; 200 + s ] revs)
    flushed;
  Alcotest.(check int) "queue drained" 0 (Dispatch.Batch.pending q)

let batch_offer_during_flush_deferred () =
  let q : string Dispatch.Batch.queue = Dispatch.Batch.create () in
  let ev rev = History.Event.make ~rev ~key:"k" ~op:History.Event.Create (Some "v") in
  Dispatch.Batch.offer q ~stream:1 (ev 1);
  let rounds = ref [] in
  Dispatch.Batch.flush q (fun ~stream:_ events ->
      rounds := `First (List.length events) :: !rounds;
      Dispatch.Batch.offer q ~stream:1 (ev 2));
  Alcotest.(check int) "reentrant offer parked for next flush" 1 (Dispatch.Batch.pending q);
  Dispatch.Batch.flush q (fun ~stream:_ events -> rounds := `Second (List.length events) :: !rounds);
  match List.rev !rounds with
  | [ `First 1; `Second 1 ] -> ()
  | _ -> Alcotest.fail "expected two one-event flushes"

let suites =
  [
    ( "dispatch",
      [
        equivalence;
        Alcotest.test_case "cancel peer mid-iteration" `Quick cancel_peer_mid_iteration;
        Alcotest.test_case "cancel self mid-iteration" `Quick cancel_self_mid_iteration;
        Alcotest.test_case "add mid-iteration not visited" `Quick add_mid_iteration_not_visited;
        Alcotest.test_case "set_order reorders delivery" `Quick set_order_reorders_delivery;
        Alcotest.test_case "batched delivery: 50-listener ordering pin" `Quick
          batch_ordering_pin_50_listeners;
        Alcotest.test_case "batched delivery: reentrant offer deferred" `Quick
          batch_offer_during_flush_deferred;
      ] );
  ]
