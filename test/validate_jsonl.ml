(* Smoke-check helper: read a JSONL trace dump, verify every line
   parses and the file round-trips through the trace reader. Exits
   non-zero with the parse error otherwise. *)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let path = Sys.argv.(1) in
  let input = read_all path in
  match Dsim.Trace.of_jsonl input with
  | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 1
  | Ok t ->
      if Dsim.Trace.length t = 0 then begin
        Printf.eprintf "%s: empty trace\n" path;
        exit 1
      end;
      (* A faithful reader reproduces the dump byte for byte. *)
      if not (String.equal (Dsim.Trace.to_jsonl t) input) then begin
        Printf.eprintf "%s: re-serialization differs from input\n" path;
        exit 1
      end;
      Printf.printf "%s: %d entries ok\n" path (Dsim.Trace.length t)
