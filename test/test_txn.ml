(* Mini-transactions: guards, branches, CAS helpers. *)

let eval kv txn = Etcdlike.Txn.eval kv txn

let guards_all_must_hold () =
  let kv = Etcdlike.Kv.create () in
  ignore (Etcdlike.Kv.put kv "a" "1");
  let txn =
    Etcdlike.Txn.
      {
        guards = [ Exists "a"; Absent "b" ];
        success = [ Put ("b", "2") ];
        failure = [];
      }
  in
  let outcome = eval kv txn in
  Alcotest.(check bool) "succeeded" true outcome.Etcdlike.Txn.succeeded;
  Alcotest.(check (option string)) "b written" (Some "2")
    (Option.map fst (Etcdlike.Kv.get kv "b"))

let failure_branch_runs () =
  let kv = Etcdlike.Kv.create () in
  let txn =
    Etcdlike.Txn.
      {
        guards = [ Exists "missing" ];
        success = [ Put ("x", "s") ];
        failure = [ Put ("x", "f") ];
      }
  in
  let outcome = eval kv txn in
  Alcotest.(check bool) "failed" false outcome.Etcdlike.Txn.succeeded;
  Alcotest.(check (option string)) "failure branch wrote" (Some "f")
    (Option.map fst (Etcdlike.Kv.get kv "x"))

let mod_rev_guard () =
  let kv = Etcdlike.Kv.create () in
  ignore (Etcdlike.Kv.put kv "k" "v1") (* rev 1 *);
  let stale = Etcdlike.Txn.put_if_unchanged ~key:"k" ~expected_mod_rev:0 "v2" in
  Alcotest.(check bool) "stale CAS fails" false (eval kv stale).Etcdlike.Txn.succeeded;
  let fresh = Etcdlike.Txn.put_if_unchanged ~key:"k" ~expected_mod_rev:1 "v2" in
  Alcotest.(check bool) "fresh CAS succeeds" true (eval kv fresh).Etcdlike.Txn.succeeded;
  Alcotest.(check (option (pair string int))) "new mod rev" (Some ("v2", 2))
    (Etcdlike.Kv.get kv "k")

let mod_rev_zero_means_absent () =
  let kv = Etcdlike.Kv.create () in
  let txn = Etcdlike.Txn.put_if_unchanged ~key:"new" ~expected_mod_rev:0 "v" in
  Alcotest.(check bool) "create via rev 0" true (eval kv txn).Etcdlike.Txn.succeeded

let create_if_absent_races () =
  let kv = Etcdlike.Kv.create () in
  let txn = Etcdlike.Txn.create_if_absent ~key:"once" "first" in
  Alcotest.(check bool) "first wins" true (eval kv txn).Etcdlike.Txn.succeeded;
  let again = Etcdlike.Txn.create_if_absent ~key:"once" "second" in
  Alcotest.(check bool) "second no-ops" false (eval kv again).Etcdlike.Txn.succeeded;
  Alcotest.(check (option string)) "value untouched" (Some "first")
    (Option.map fst (Etcdlike.Kv.get kv "once"))

let delete_if_unchanged_guard () =
  let kv = Etcdlike.Kv.create () in
  ignore (Etcdlike.Kv.put kv "k" "v1");
  ignore (Etcdlike.Kv.put kv "k" "v2") (* mod rev 2 *);
  let stale = Etcdlike.Txn.delete_if_unchanged ~key:"k" ~expected_mod_rev:1 in
  Alcotest.(check bool) "stale delete blocked" false (eval kv stale).Etcdlike.Txn.succeeded;
  Alcotest.(check bool) "still there" true (Etcdlike.Kv.get kv "k" <> None);
  let fresh = Etcdlike.Txn.delete_if_unchanged ~key:"k" ~expected_mod_rev:2 in
  Alcotest.(check bool) "fresh delete ok" true (eval kv fresh).Etcdlike.Txn.succeeded;
  Alcotest.(check bool) "gone" true (Etcdlike.Kv.get kv "k" = None)

let value_eq_guard () =
  let kv = Etcdlike.Kv.create () in
  ignore (Etcdlike.Kv.put kv "k" "expected");
  let txn =
    Etcdlike.Txn.{ guards = [ Value_eq ("k", "expected") ]; success = [ Delete "k" ]; failure = [] }
  in
  Alcotest.(check bool) "value guard holds" true (eval kv txn).Etcdlike.Txn.succeeded

let outcome_reports_events_and_rev () =
  let kv = Etcdlike.Kv.create () in
  let txn =
    Etcdlike.Txn.{ guards = []; success = [ Put ("a", "1"); Put ("b", "2") ]; failure = [] }
  in
  let outcome = eval kv txn in
  Alcotest.(check int) "two events" 2 (List.length outcome.Etcdlike.Txn.events);
  Alcotest.(check int) "rev after" 2 outcome.Etcdlike.Txn.rev

let empty_txn_succeeds () =
  let kv = Etcdlike.Kv.create () in
  let outcome = eval kv Etcdlike.Txn.{ guards = []; success = []; failure = [] } in
  Alcotest.(check bool) "vacuous" true outcome.Etcdlike.Txn.succeeded;
  Alcotest.(check int) "no events" 0 (List.length outcome.Etcdlike.Txn.events)

(* Model-based: random transactions against the sequential reference
   model — guards of every kind, both branches, multi-op branches —
   must agree on the outcome and the resulting store. *)
let qcheck_txn_agrees_with_model =
  let key_of i = Printf.sprintf "k%d" i in
  let gen_guard = QCheck.Gen.(pair (int_bound 5) (int_bound 4)) in
  let gen_op = QCheck.Gen.(pair bool (int_bound 4)) in
  let gen_txn = QCheck.Gen.(triple (list_size (0 -- 3) gen_guard) (list_size (0 -- 3) gen_op) (list_size (0 -- 3) gen_op)) in
  QCheck.Test.make ~name:"txn agrees with the sequential model" ~count:300
    (QCheck.make QCheck.Gen.(pair (list_size (0 -- 6) (pair (int_bound 4) bool)) (list_size (1 -- 5) gen_txn)))
    (fun (setup, txns) ->
      let kv = Etcdlike.Kv.create () in
      let model = ref Conformance.Model.empty in
      let vc = ref 0 in
      let fresh () = incr vc; Printf.sprintf "v%d" !vc in
      (* Seed both sides identically so guards can hit live keys. *)
      List.iter
        (fun (k, is_put) ->
          if is_put then begin
            let v = fresh () in
            ignore (Etcdlike.Kv.put kv (key_of k) v);
            model := fst (Conformance.Model.put !model (key_of k) v)
          end
          else begin
            ignore (Etcdlike.Kv.delete kv (key_of k));
            model := fst (Conformance.Model.delete !model (key_of k))
          end)
        setup;
      List.for_all
        (fun (guards, success, failure) ->
          (* Late-bind store-dependent guards so they sometimes hold. *)
          let guards =
            List.map
              (fun (kind, k) ->
                let key = key_of k in
                match kind with
                | 0 -> Etcdlike.Txn.Exists key
                | 1 -> Etcdlike.Txn.Absent key
                | 2 -> Etcdlike.Txn.Mod_rev_eq (key, 0)
                | 3 ->
                    let mr = match Etcdlike.Kv.get kv key with Some (_, r) -> r | None -> 0 in
                    Etcdlike.Txn.Mod_rev_eq (key, mr)
                | 4 -> (
                    match Etcdlike.Kv.get kv key with
                    | Some (v, _) -> Etcdlike.Txn.Value_eq (key, v)
                    | None -> Etcdlike.Txn.Value_eq (key, "absent"))
                | _ -> Etcdlike.Txn.Value_eq (key, "nope"))
              guards
          in
          let bind ops =
            List.map
              (fun (is_put, k) ->
                if is_put then Etcdlike.Txn.Put (key_of k, fresh ())
                else Etcdlike.Txn.Delete (key_of k))
              ops
          in
          let txn = { Etcdlike.Txn.guards; success = bind success; failure = bind failure } in
          let o = Etcdlike.Txn.eval kv txn in
          let m', o' = Conformance.Model.txn !model txn in
          model := m';
          o = o'
          && History.State.bindings (Etcdlike.Kv.state kv) = Conformance.Model.bindings !model
          && Etcdlike.Kv.rev kv = Conformance.Model.rev !model)
        txns)

let suites =
  [
    ( "txn",
      [
        Alcotest.test_case "guards all must hold" `Quick guards_all_must_hold;
        Alcotest.test_case "failure branch runs" `Quick failure_branch_runs;
        Alcotest.test_case "mod-rev guard" `Quick mod_rev_guard;
        Alcotest.test_case "mod-rev zero means absent" `Quick mod_rev_zero_means_absent;
        Alcotest.test_case "create_if_absent races" `Quick create_if_absent_races;
        Alcotest.test_case "delete_if_unchanged guard" `Quick delete_if_unchanged_guard;
        Alcotest.test_case "value_eq guard" `Quick value_eq_guard;
        Alcotest.test_case "outcome reports events and rev" `Quick outcome_reports_events_and_rev;
        Alcotest.test_case "empty txn succeeds" `Quick empty_txn_succeeds;
        Qcheck_util.to_alcotest qcheck_txn_agrees_with_model;
      ] );
  ]
