(* Strategy minimization: shrink proposals and the greedy loop. *)

let shrinks_combo_by_dropping_parts () =
  let combo =
    Sieve.Strategy.Combo
      [
        Sieve.Strategy.Crash_restart { victim = "a"; at = 0; downtime = 40_000 };
        Sieve.Strategy.Partition_window { a = "x"; b = "y"; from = 0; until = 100_000 };
      ]
  in
  let candidates = Sieve.Minimize.shrink_candidates combo in
  (* Dropping either part yields the other, bare. *)
  Alcotest.(check bool) "contains bare crash" true
    (List.exists
       (function Sieve.Strategy.Crash_restart { victim = "a"; _ } -> true | _ -> false)
       candidates);
  Alcotest.(check bool) "contains bare partition" true
    (List.exists
       (function Sieve.Strategy.Partition_window _ -> true | _ -> false)
       candidates)

let shrinks_windows_and_magnitudes () =
  let drop =
    Sieve.Strategy.observability_gap ~dst:"c" ~from:0 ~until:1_000_000 ()
  in
  let candidates = Sieve.Minimize.shrink_candidates drop in
  Alcotest.(check bool) "narrower windows proposed" true
    (List.exists
       (function
         | Sieve.Strategy.Drop_events { from; until; _ } -> until - from < 1_000_000
         | _ -> false)
       candidates);
  Alcotest.(check bool) "limit-1 variant proposed" true
    (List.exists
       (function
         | Sieve.Strategy.Drop_events { matching = { Sieve.Strategy.limit = Some 1; _ }; _ } ->
             true
         | _ -> false)
       candidates)

let unbounded_partition_becomes_finite () =
  let p = Sieve.Strategy.Partition_window { a = "x"; b = "y"; from = 10; until = max_int } in
  match Sieve.Minimize.shrink_candidates p with
  | [ Sieve.Strategy.Partition_window { until; _ } ] ->
      Alcotest.(check bool) "finite" true (until < max_int)
  | _ -> Alcotest.fail "expected one finite variant"

let no_shrink_for_nothing () =
  Alcotest.(check int) "no candidates" 0
    (List.length (Sieve.Minimize.shrink_candidates Sieve.Strategy.No_perturbation))

let minimize_keeps_failure () =
  let case = Sieve.Bugs.k8s_56261 () in
  let test = Sieve.Bugs.test_of_case case in
  let minimized, cost = Sieve.Minimize.minimize ~test ~target:case.Sieve.Bugs.matches () in
  Alcotest.(check bool) "spent some executions" true (cost > 1);
  (* The minimized strategy must still reproduce. *)
  let outcome = Sieve.Runner.run_test minimized in
  Alcotest.(check bool) "still fails" true
    (List.exists (fun (_, v) -> case.Sieve.Bugs.matches v) outcome.Sieve.Runner.violations);
  (* ... and must be no bigger: for 56261 it should pin the limit to 1. *)
  match minimized.Sieve.Runner.strategy with
  | Sieve.Strategy.Drop_events { matching = { Sieve.Strategy.limit = Some 1; _ }; _ } -> ()
  | s -> Alcotest.fail ("expected a limit-1 drop, got " ^ Sieve.Strategy.describe s)

let minimize_rejects_non_failing_input () =
  let case = Sieve.Bugs.k8s_56261 () in
  let test = Sieve.Bugs.reference_test_of_case case in
  let minimized, cost = Sieve.Minimize.minimize ~test ~target:case.Sieve.Bugs.matches () in
  Alcotest.(check int) "one execution only" 1 cost;
  Alcotest.(check bool) "unchanged" true
    (minimized.Sieve.Runner.strategy = Sieve.Strategy.No_perturbation)

let minimize_is_idempotent_on_corpus () =
  (* A minimized plan is a fixpoint: the greedy loop ran out of shrink
     candidates that still reproduce, so a second pass must return the
     plan unchanged (cost > 1 allowed — it re-verifies candidates). *)
  List.iter
    (fun case ->
      let test = Sieve.Bugs.test_of_case case in
      let once, _ = Sieve.Minimize.minimize ~test ~target:case.Sieve.Bugs.matches () in
      let twice, _ = Sieve.Minimize.minimize ~test:once ~target:case.Sieve.Bugs.matches () in
      Alcotest.(check string)
        (case.Sieve.Bugs.id ^ " minimization is idempotent")
        (Sieve.Strategy.describe once.Sieve.Runner.strategy)
        (Sieve.Strategy.describe twice.Sieve.Runner.strategy))
    (Sieve.Bugs.all_with_extras ())

let minimize_respects_budget () =
  let case = Sieve.Bugs.k8s_59848 () in
  let test = Sieve.Bugs.test_of_case case in
  let _, cost = Sieve.Minimize.minimize ~test ~target:case.Sieve.Bugs.matches ~budget:5 () in
  Alcotest.(check bool) "bounded" true (cost <= 5)

let suites =
  [
    ( "minimize",
      [
        Alcotest.test_case "shrinks combo by dropping parts" `Quick
          shrinks_combo_by_dropping_parts;
        Alcotest.test_case "shrinks windows and magnitudes" `Quick
          shrinks_windows_and_magnitudes;
        Alcotest.test_case "unbounded partition becomes finite" `Quick
          unbounded_partition_becomes_finite;
        Alcotest.test_case "no shrink for no-perturbation" `Quick no_shrink_for_nothing;
        Alcotest.test_case "minimize keeps failure (56261)" `Slow minimize_keeps_failure;
        Alcotest.test_case "minimize rejects non-failing input" `Quick
          minimize_rejects_non_failing_input;
        Alcotest.test_case "minimize respects budget" `Slow minimize_respects_budget;
        Alcotest.test_case "minimize is idempotent on the corpus" `Slow
          minimize_is_idempotent_on_corpus;
      ] );
  ]
