(* Leases: TTLs against the virtual clock. *)

let grant_and_expire () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:100 ~now:0 in
  Etcdlike.Lease.attach l ~lease:id ~key:"locks/a";
  Etcdlike.Lease.attach l ~lease:id ~key:"locks/b";
  Alcotest.(check int) "one lease" 1 (Etcdlike.Lease.active l);
  Alcotest.(check (list (pair int (list string)))) "expired keys"
    [ (id, [ "locks/a"; "locks/b" ]) ]
    (Etcdlike.Lease.expire l ~now:100);
  Alcotest.(check int) "lease gone" 0 (Etcdlike.Lease.active l)

let keepalive_extends () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:100 ~now:0 in
  Alcotest.(check bool) "keepalive ok" true (Etcdlike.Lease.keepalive l ~lease:id ~now:80);
  Alcotest.(check int) "not expired at 150" 0 (List.length (Etcdlike.Lease.expire l ~now:150));
  Alcotest.(check int) "expired at 180" 1 (List.length (Etcdlike.Lease.expire l ~now:180))

let keepalive_after_expiry_fails () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:10 ~now:0 in
  ignore (Etcdlike.Lease.expire l ~now:50);
  Alcotest.(check bool) "dead lease" false (Etcdlike.Lease.keepalive l ~lease:id ~now:60)

let revoke_returns_keys () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:1000 ~now:0 in
  Etcdlike.Lease.attach l ~lease:id ~key:"k";
  Alcotest.(check (list string)) "keys back" [ "k" ] (Etcdlike.Lease.revoke l ~lease:id);
  Alcotest.(check int) "gone" 0 (Etcdlike.Lease.active l)

let attach_unknown_ignored () =
  let l = Etcdlike.Lease.create () in
  Etcdlike.Lease.attach l ~lease:42 ~key:"k";
  Alcotest.(check (list string)) "nothing attached" [] (Etcdlike.Lease.keys l ~lease:42)

let attach_is_idempotent () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:10 ~now:0 in
  Etcdlike.Lease.attach l ~lease:id ~key:"k";
  Etcdlike.Lease.attach l ~lease:id ~key:"k";
  Alcotest.(check (list string)) "single binding" [ "k" ] (Etcdlike.Lease.keys l ~lease:id)

let ttl_remaining_reports () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:100 ~now:0 in
  Alcotest.(check (option int)) "75 left" (Some 75) (Etcdlike.Lease.ttl_remaining l ~lease:id ~now:25);
  Alcotest.(check (option int)) "clamped" (Some 0)
    (Etcdlike.Lease.ttl_remaining l ~lease:id ~now:500);
  Alcotest.(check (option int)) "unknown lease" None
    (Etcdlike.Lease.ttl_remaining l ~lease:999 ~now:0)

let distinct_ids () =
  let l = Etcdlike.Lease.create () in
  let a = Etcdlike.Lease.grant l ~ttl:10 ~now:0 in
  let b = Etcdlike.Lease.grant l ~ttl:10 ~now:0 in
  Alcotest.(check bool) "fresh ids" true (a <> b)

(* Model-based: random grant/attach/keepalive/revoke/expire schedules
   against the sequential reference model — ids, key lists, deadlines
   and expiry batches must all agree. *)
let qcheck_lease_agrees_with_model =
  let key_of i = Printf.sprintf "locks/l%d" i in
  (* (kind, a, b): 0 grant ttl=(1+a) | 1 attach slot a key b |
     2 keepalive slot a | 3 revoke slot a | 4 tick +(1+a) | 5 expire *)
  let gen_step = QCheck.Gen.(triple (int_bound 5) (int_bound 5) (int_bound 5)) in
  QCheck.Test.make ~name:"lease agrees with the sequential model" ~count:300
    (QCheck.make
       ~print:(fun steps ->
         String.concat "; "
           (List.map (fun (k, a, b) -> Printf.sprintf "(%d,%d,%d)" k a b) steps))
       QCheck.Gen.(list_size (0 -- 40) gen_step))
    (fun steps ->
      let lease = Etcdlike.Lease.create () in
      let model = ref Conformance.Model.empty in
      let granted = ref [] in
      let now = ref 0 in
      let ok = ref true in
      let slot a = match !granted with [] -> 999 | ids -> List.nth ids (a mod List.length ids) in
      List.iter
        (fun (kind, a, b) ->
          (match kind with
          | 0 ->
              let id = Etcdlike.Lease.grant lease ~ttl:(1 + a) ~now:!now in
              let m', id' = Conformance.Model.grant !model ~ttl:(1 + a) ~now:!now in
              model := m';
              ok := !ok && id = id';
              granted := !granted @ [ id ]
          | 1 ->
              let id = slot a in
              Etcdlike.Lease.attach lease ~lease:id ~key:(key_of b);
              model := Conformance.Model.attach !model ~lease:id ~key:(key_of b)
          | 2 ->
              let id = slot a in
              let alive = Etcdlike.Lease.keepalive lease ~lease:id ~now:!now in
              let m', alive' = Conformance.Model.keepalive !model ~lease:id ~now:!now in
              model := m';
              ok := !ok && alive = alive'
          | 3 ->
              let id = slot a in
              let keys = Etcdlike.Lease.revoke lease ~lease:id in
              let m', keys' = Conformance.Model.revoke !model ~lease:id in
              model := m';
              granted := List.filter (fun g -> g <> id) !granted;
              ok := !ok && keys = keys'
          | 4 -> now := !now + 1 + a
          | _ ->
              let out = Etcdlike.Lease.expire lease ~now:!now in
              let m', out' = Conformance.Model.expire !model ~now:!now in
              model := m';
              granted := List.filter (fun g -> not (List.mem_assoc g out)) !granted;
              ok := !ok && out = out');
          ok := !ok && Etcdlike.Lease.active lease = Conformance.Model.active_leases !model;
          List.iter
            (fun id ->
              ok :=
                !ok
                && Etcdlike.Lease.keys lease ~lease:id
                   = Conformance.Model.lease_keys !model ~lease:id
                && Etcdlike.Lease.ttl_remaining lease ~lease:id ~now:!now
                   = Conformance.Model.ttl_remaining !model ~lease:id ~now:!now)
            !granted)
        steps;
      !ok)

let suites =
  [
    ( "lease",
      [
        Alcotest.test_case "grant and expire" `Quick grant_and_expire;
        Alcotest.test_case "keepalive extends" `Quick keepalive_extends;
        Alcotest.test_case "keepalive after expiry fails" `Quick keepalive_after_expiry_fails;
        Alcotest.test_case "revoke returns keys" `Quick revoke_returns_keys;
        Alcotest.test_case "attach unknown ignored" `Quick attach_unknown_ignored;
        Alcotest.test_case "attach is idempotent" `Quick attach_is_idempotent;
        Alcotest.test_case "ttl remaining reports" `Quick ttl_remaining_reports;
        Alcotest.test_case "distinct ids" `Quick distinct_ids;
        Qcheck_util.to_alcotest qcheck_lease_agrees_with_model;
      ] );
  ]
