(* Test the static analyzer: the layer-1 lint against its fixture
   corpus and against lib/kube itself, the layer-2 footprints against
   the planner's watch sets (so the static and dynamic views of "what
   each component observes" cannot drift), the hazard graph's content,
   and the hazard-ranked scheduler against greedy coverage ordering. *)

let fixture name = Filename.concat (Filename.concat "fixtures" "lint") name

(* --- layer 1: lint ------------------------------------------------- *)

let check_findings name path expected =
  match Analysis.Lint.file path with
  | Error e -> Alcotest.failf "%s: parse error: %s" name e
  | Ok findings ->
      Alcotest.(check (list (pair string string)))
        (name ^ " findings")
        expected
        (List.map (fun (f : Analysis.Lint.finding) -> (f.rule, f.func)) findings)

let test_fixture_stale_write () =
  check_findings "stale_delete_buggy"
    (fixture "stale_delete_buggy.ml")
    [ ("stale-write", "gc_surplus") ];
  (match Analysis.Lint.file (fixture "stale_delete_buggy.ml") with
  | Ok [ f ] ->
      Alcotest.(check string) "pattern" "staleness"
        (Sieve.Coverage.pattern_to_string f.pattern)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_findings "stale_delete_fixed" (fixture "stale_delete_fixed.ml") []

let test_fixture_edge_trigger () =
  check_findings "edge_trigger_buggy"
    (fixture "edge_trigger_buggy.ml")
    [ ("edge-trigger", "on_node_event") ];
  (match Analysis.Lint.file (fixture "edge_trigger_buggy.ml") with
  | Ok [ f ] ->
      Alcotest.(check string) "pattern" "observability-gap"
        (Sieve.Coverage.pattern_to_string f.pattern)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_findings "edge_trigger_fixed" (fixture "edge_trigger_fixed.ml") []

let test_fixture_stale_resync () =
  check_findings "stale_resync_buggy"
    (fixture "stale_resync_buggy.ml")
    [ ("stale-resync", "start") ];
  (match Analysis.Lint.file (fixture "stale_resync_buggy.ml") with
  | Ok [ f ] ->
      Alcotest.(check string) "pattern" "time-travel"
        (Sieve.Coverage.pattern_to_string f.pattern)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_findings "stale_resync_fixed" (fixture "stale_resync_fixed.ml") []

(* --- the four taint-engine patterns (PR-8) -------------------------- *)

let test_fixture_follower_read () =
  check_findings "follower_read_buggy"
    (fixture "follower_read_buggy.ml")
    [ ("follower-read-then-write", "trim") ];
  (match Analysis.Lint.file (fixture "follower_read_buggy.ml") with
  | Ok [ f ] ->
      Alcotest.(check string) "pattern" "staleness"
        (Sieve.Coverage.pattern_to_string f.pattern)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_findings "follower_read_fixed" (fixture "follower_read_fixed.ml") []

let test_fixture_retry_nodedup () =
  check_findings "retry_nodedup_buggy"
    (fixture "retry_nodedup_buggy.ml")
    [ ("retry-no-dedup", "bump") ];
  check_findings "retry_nodedup_fixed" (fixture "retry_nodedup_fixed.ml") []

let test_fixture_zk_watch () =
  check_findings "zk_watch_buggy"
    (fixture "zk_watch_buggy.ml")
    [ ("zk-one-shot-watch", "on_master_change") ];
  (match Analysis.Lint.file (fixture "zk_watch_buggy.ml") with
  | Ok [ f ] ->
      Alcotest.(check string) "pattern" "observability-gap"
        (Sieve.Coverage.pattern_to_string f.pattern)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_findings "zk_watch_fixed" (fixture "zk_watch_fixed.ml") []

let test_fixture_region_assign () =
  check_findings "region_assign_buggy"
    (fixture "region_assign_buggy.ml")
    [ ("stale-region-assign", "reassign") ];
  check_findings "region_assign_fixed" (fixture "region_assign_fixed.ml") []

(* Every fixed twin in the fixture corpus must be silent — the guards
   (quorum re-read, revision precondition, sync leader read, proposal-id
   dedup, watch re-arm) are exactly what the engine must credit. *)
let test_no_false_positives_on_fixed_twins () =
  Sys.readdir (Filename.concat "fixtures" "lint")
  |> Array.to_list |> List.sort String.compare
  |> List.filter (fun f -> Filename.check_suffix f "_fixed.ml")
  |> List.iter (fun f -> check_findings f (fixture f) [])

(* The evidence path: source, propagation steps, sink, missing guard —
   what --explain prints and what Hazard/Diagnosis ingest. *)
let test_explain_evidence_path () =
  match Analysis.Lint.file (fixture "stale_delete_buggy.ml") with
  | Ok [ f ] ->
      let explain = Analysis.Lint.explain f in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "explain mentions %S" needle)
            true (contains explain needle))
        [ "source"; "sink"; "missing guard"; "stale_delete_buggy.ml" ];
      Alcotest.(check bool) "json carries the path" true
        (contains (Dsim.Json.to_string (Analysis.Lint.to_json f)) "missing_guard")
  | Ok fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)
  | Error e -> Alcotest.failf "parse error: %s" e

(* --- self-lint: the shipped controllers ----------------------------- *)

let lint_dir dir =
  let paths =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  Analysis.Lint.files paths

let check_dir_baselined name dir expected_suppressed =
  let findings, errors = lint_dir dir in
  Alcotest.(check (list string)) (name ^ " parse errors") [] errors;
  let baseline = Analysis.Lint.load_baseline (Filename.concat ".." ".sievelint") in
  let fresh, suppressed = Analysis.Lint.suppress ~baseline findings in
  Alcotest.(check (list string))
    (name ^ " fresh findings")
    []
    (List.map Analysis.Lint.key fresh);
  Alcotest.(check (list string))
    (name ^ " suppressed findings")
    expected_suppressed
    (List.map Analysis.Lint.key suppressed)

(* lib/kube must produce no findings beyond the committed baseline: the
   three deliberate bug-era shapes, suppressed in .sievelint with
   rationale. Anything fresh is a lint regression (or a new bug). *)
let test_kube_baselined () =
  check_dir_baselined "lib/kube"
    (Filename.concat ".." (Filename.concat "lib" "kube"))
    [
      "deployment.ml:staleness:reconcile_deployment";
      "kubelet.ml:observability-gap:on_event";
      "scheduler.ml:observability-gap:on_node_event";
    ]

(* lib/hbase: the master's CAS-from-the-follower (HBASE-3136) is the one
   deliberate shape; the region server and the ZooKeeper model itself
   must be clean — the follower serving path moves data it never acts
   on, which is exactly what value-taint distinguishes. *)
let test_hbase_baselined () =
  check_dir_baselined "lib/hbase"
    (Filename.concat ".." (Filename.concat "lib" "hbase"))
    [ "master.ml:staleness:balance_region" ]

(* lib/replicated is the store itself: its retry loop resubmits the
   *same* pending proposal under Engine.every (not a continuation
   retry), so the retry-no-dedup rule must not fire on it. *)
let test_replicated_clean () =
  check_dir_baselined "lib/replicated"
    (Filename.concat ".." (Filename.concat "lib" "replicated"))
    []

(* Legacy rule:file:func baselines keep suppressing until rewritten; a
   save_baseline round-trip produces new-format keys that suppress the
   same findings. *)
let test_baseline_migration () =
  let dir = Filename.concat ".." (Filename.concat "lib" "kube") in
  let findings, _ = lint_dir dir in
  let legacy =
    [
      "stale-write:deployment.ml:reconcile_deployment";
      "edge-trigger:kubelet.ml:on_event";
      "edge-trigger:scheduler.ml:on_node_event";
    ]
  in
  let fresh, suppressed = Analysis.Lint.suppress ~baseline:legacy findings in
  Alcotest.(check int) "legacy keys suppress" 3 (List.length suppressed);
  Alcotest.(check (list string)) "nothing fresh under legacy baseline" []
    (List.map Analysis.Lint.key fresh);
  let tmp = Filename.temp_file "sievelint" ".baseline" in
  Analysis.Lint.save_baseline ~path:tmp findings;
  let rewritten = Analysis.Lint.load_baseline tmp in
  Sys.remove tmp;
  Alcotest.(check (list string))
    "rewritten baseline is the new format, sorted"
    [
      "deployment.ml:staleness:reconcile_deployment";
      "kubelet.ml:observability-gap:on_event";
      "scheduler.ml:observability-gap:on_node_event";
    ]
    rewritten;
  let fresh', _ = Analysis.Lint.suppress ~baseline:rewritten findings in
  Alcotest.(check (list string)) "rewritten baseline still suppresses" []
    (List.map Analysis.Lint.key fresh')

(* --- layer 2: footprints ------------------------------------------- *)

(* The footprints' cached_reads are the static statement of each
   component's (H', S') slice; the planner's watched_prefixes are the
   dynamic one. They must agree component by component, in order. *)
let test_footprint_consistency () =
  List.iter
    (fun (case : Sieve.Bugs.case) ->
      let targets = Sieve.Planner.targets_of_config (Sieve.Bugs.kube_config case) in
      let footprints = Analysis.Footprint.of_config (Sieve.Bugs.kube_config case) in
      Alcotest.(check (list string))
        (case.Sieve.Bugs.id ^ " components")
        (List.map (fun (t : Sieve.Planner.target) -> t.Sieve.Planner.component) targets)
        (List.map (fun (fp : Analysis.Footprint.t) -> fp.Analysis.Footprint.component) footprints);
      List.iter2
        (fun (t : Sieve.Planner.target) (fp : Analysis.Footprint.t) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s %s cached reads = watched prefixes" case.Sieve.Bugs.id
               fp.Analysis.Footprint.component)
            t.Sieve.Planner.watched_prefixes fp.Analysis.Footprint.cached_reads;
          Alcotest.(check bool)
            (fp.Analysis.Footprint.component ^ " restartable")
            t.Sieve.Planner.restartable fp.Analysis.Footprint.restartable;
          List.iter
            (fun p ->
              Alcotest.(check bool)
                (Printf.sprintf "%s edge-triggered %s is a cached read"
                   fp.Analysis.Footprint.component p)
                true
                (List.mem p fp.Analysis.Footprint.cached_reads))
            fp.Analysis.Footprint.edge_triggered)
        targets footprints)
    (Sieve.Bugs.all_with_extras ())

(* The edge_triggered sets mirror the lint's edge-trigger findings: the
   kubelet's pod handler and the scheduler's node cache, nothing else. *)
let test_footprint_edge_triggered_mirrors_lint () =
  let case = Sieve.Bugs.k8s_56261 () in
  let footprints = Analysis.Footprint.of_config (Sieve.Bugs.kube_config case) in
  List.iter
    (fun (fp : Analysis.Footprint.t) ->
      let expected =
        if String.length fp.Analysis.Footprint.component >= 7
           && String.sub fp.Analysis.Footprint.component 0 7 = "kubelet"
        then [ Kube.Resource.pods_prefix ]
        else if fp.Analysis.Footprint.component = "scheduler" then
          [ Kube.Resource.nodes_prefix ]
        else []
      in
      Alcotest.(check (list string))
        (fp.Analysis.Footprint.component ^ " edge_triggered")
        expected fp.Analysis.Footprint.edge_triggered)
    footprints

(* Replication demotes quorum reads: with Follower/Spread routing the
   apiserver's quorum forwards can be served by a lagging replica, so
   the fix flags' quorum_reads evaporate into cached_reads — while the
   cached_reads lists (and hence the Planner watch-set consistency) are
   unchanged, and Leader routing keeps the guard credit. *)
let test_footprint_replication () =
  let fixed_flags config =
    {
      config with
      Kube.Cluster.operator_fixed = true;
      scheduler_fixed = true;
      node_controller_fixed = true;
      deployment_fixed = true;
      with_operator = true;
      with_deployment = true;
      with_node_controller = true;
    }
  in
  let replicated read =
    {
      (fixed_flags Kube.Cluster.default_config) with
      Kube.Cluster.replication =
        Some { Kube.Etcd.replicas = 3; read; read_fallback = `Stale };
    }
  in
  let follower = Analysis.Footprint.of_config (replicated (Replicated.Kv.Follower "etcd-3")) in
  let spread = Analysis.Footprint.of_config (replicated Replicated.Kv.Spread) in
  let leader = Analysis.Footprint.of_config (replicated Replicated.Kv.Leader) in
  let unreplicated = Analysis.Footprint.of_config (fixed_flags Kube.Cluster.default_config) in
  List.iter
    (fun (name, fps) ->
      List.iter
        (fun (fp : Analysis.Footprint.t) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s: %s has no quorum reads" name fp.Analysis.Footprint.component)
            [] fp.Analysis.Footprint.quorum_reads)
        fps)
    [ ("follower", follower); ("spread", spread) ];
  (* Leader routing is linearizable: footprints match the unreplicated
     fixed config exactly, quorum credit included. *)
  List.iter2
    (fun (l : Analysis.Footprint.t) (u : Analysis.Footprint.t) ->
      Alcotest.(check string) "component" u.Analysis.Footprint.component l.Analysis.Footprint.component;
      Alcotest.(check (list string))
        (l.Analysis.Footprint.component ^ " leader quorum reads")
        u.Analysis.Footprint.quorum_reads l.Analysis.Footprint.quorum_reads)
    leader unreplicated;
  (* The operator's demoted quorum prefix was already a cached read, so
     cached_reads — and with them the Planner consistency — are stable. *)
  List.iter2
    (fun (f : Analysis.Footprint.t) (u : Analysis.Footprint.t) ->
      Alcotest.(check (list string))
        (f.Analysis.Footprint.component ^ " cached reads unchanged by routing")
        u.Analysis.Footprint.cached_reads f.Analysis.Footprint.cached_reads)
    follower unreplicated;
  (* And the footprint-vs-Planner consistency holds on the replicated
     config the REP family runs. *)
  let case = Sieve.Bugs.rep_minority () in
  let targets = Sieve.Planner.targets_of_config (Sieve.Bugs.kube_config case) in
  let footprints = Analysis.Footprint.of_config (Sieve.Bugs.kube_config case) in
  Alcotest.(check (list string))
    "REP-MINORITY components"
    (List.map (fun (t : Sieve.Planner.target) -> t.Sieve.Planner.component) targets)
    (List.map (fun (fp : Analysis.Footprint.t) -> fp.Analysis.Footprint.component) footprints);
  List.iter2
    (fun (t : Sieve.Planner.target) (fp : Analysis.Footprint.t) ->
      Alcotest.(check (list string))
        (Printf.sprintf "REP-MINORITY %s cached reads = watched prefixes"
           fp.Analysis.Footprint.component)
        t.Sieve.Planner.watched_prefixes fp.Analysis.Footprint.cached_reads)
    targets footprints

(* --- hazard graph -------------------------------------------------- *)

let find_hazard hazards ~pattern ~component ~prefix =
  List.find_opt
    (fun (h : Analysis.Hazard.t) ->
      h.Analysis.Hazard.pattern = pattern
      && String.equal h.Analysis.Hazard.component component
      && String.equal h.Analysis.Hazard.prefix prefix)
    hazards

let severity_of hazards ~pattern ~component ~prefix =
  match find_hazard hazards ~pattern ~component ~prefix with
  | Some h -> h.Analysis.Hazard.severity
  | None -> 0

let test_hazard_graph_content () =
  (* Bug-era operator config: the 400/402 shape is a sev-3 staleness
     hazard; the fixed config's quorum re-list closes it for pods. *)
  let ca = Sieve.Bugs.ca_402 () in
  let hazards = Analysis.Hazard.of_config (Sieve.Bugs.kube_config ca) in
  Alcotest.(check int) "cassop stale destructive pods" 3
    (severity_of hazards ~pattern:`Staleness ~component:"cassop"
       ~prefix:Kube.Resource.pods_prefix);
  Alcotest.(check int) "kubelet stale destructive pods" 3
    (severity_of hazards ~pattern:`Staleness ~component:"kubelet-1"
       ~prefix:Kube.Resource.pods_prefix);
  (* The fix's quorum re-list closes the unguarded-destructive hazard;
     the sev-2 write/write conflict on pods remains (it is structural,
     not a guard question). *)
  let fixed =
    match ca.Sieve.Bugs.fixed_spec with
    | Sieve.Substrate.Kube { config; _ } -> Analysis.Hazard.of_config config
    | _ -> Alcotest.fail "CA-402 is a kube case"
  in
  Alcotest.(check bool) "fixed operator: unguarded destructive staleness closed" true
    (severity_of fixed ~pattern:`Staleness ~component:"cassop"
       ~prefix:Kube.Resource.pods_prefix
    < 3);
  (* The scheduler's node cache is edge-triggered: maximal obs-gap. *)
  let k8s = Sieve.Bugs.k8s_56261 () in
  let hazards = Analysis.Hazard.of_config (Sieve.Bugs.kube_config k8s) in
  Alcotest.(check int) "scheduler edge-triggered nodes" 3
    (severity_of hazards ~pattern:`Obs_gap ~component:"scheduler"
       ~prefix:Kube.Resource.nodes_prefix);
  (* Restartable kubelet with destructive writes: time-travel hazard. *)
  let tt = Sieve.Bugs.k8s_59848 () in
  let hazards = Analysis.Hazard.of_config (Sieve.Bugs.kube_config tt) in
  Alcotest.(check int) "kubelet restart time travel" 2
    (severity_of hazards ~pattern:`Time_travel ~component:"kubelet-1"
       ~prefix:Kube.Resource.pods_prefix);
  (* Scoring matches by key prefix, not exact key. *)
  let ca_hazards = Analysis.Hazard.of_config (Sieve.Bugs.kube_config ca) in
  Alcotest.(check int) "score matches by prefix" 3
    (Analysis.Hazard.score ca_hazards ~component:"cassop" ~key:"pods/cass-1"
       ~pattern:`Staleness);
  Alcotest.(check int) "score 0 off-graph" 0
    (Analysis.Hazard.score ca_hazards ~component:"cassop" ~key:"locks/leader"
       ~pattern:`Staleness)

(* Lint findings become per-path hazards: one entry per evidence path,
   severity by sink class, components mapped into the runtime
   namespace, matching any key (empty prefix). Additive only —
   of_config stays byte-identical, which the journal tests pin. *)
let test_hazard_of_lint () =
  let file = Filename.concat ".." (Filename.concat "lib" (Filename.concat "kube" "deployment.ml")) in
  match Analysis.Lint.file file with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok findings -> (
      let hazards = Analysis.Hazard.of_lint findings in
      Alcotest.(check int) "one hazard per path" (List.length findings) (List.length hazards);
      match hazards with
      | [ h ] ->
          Alcotest.(check string) "runtime component name" "depctl" h.Analysis.Hazard.component;
          Alcotest.(check int) "destructive sink is sev 3" 3 h.Analysis.Hazard.severity;
          Alcotest.(check string) "pattern" "staleness"
            (Sieve.Coverage.pattern_to_string h.Analysis.Hazard.pattern);
          Alcotest.(check int) "empty prefix implicates every key" 3
            (Analysis.Hazard.score hazards ~component:"depctl" ~key:"rsets/web-1"
               ~pattern:`Staleness)
      | hs -> Alcotest.failf "expected exactly one hazard, got %d" (List.length hs))

(* --- hazard-ranked scheduling -------------------------------------- *)

(* First trial index (in dispatch order) whose execution exposes the
   case's bug, under one Campaign.plan ordering. *)
let first_exposure ~hazard_rank (case : Sieve.Bugs.case) =
  let planned = Hunt.Campaign.plan ~hazard_rank ~cases:[ case ] () in
  let n = Array.length planned.Hunt.Campaign.trials in
  let rec go i =
    if i >= n then None
    else
      let t = planned.Hunt.Campaign.trials.(i) in
      let o = Sieve.Runner.run_test t.Hunt.Campaign.test in
      if
        List.exists
          (fun (_, v) -> case.Sieve.Bugs.matches v)
          o.Sieve.Runner.violations
      then Some i
      else go (i + 1)
  in
  go 0

(* The ISSUE's acceptance bar: with --hazard-rank every corpus bug is
   still found within the planner's trial budget, and the first
   exposure is no later than greedy coverage ordering for the three
   operator bugs. (Empirically hazard ranking is currently no later on
   the whole corpus; the test pins only the guaranteed subset so planner
   evolution doesn't spuriously fail it.) *)
let test_hazard_rank_regression () =
  let operator_ids = [ "CA-398"; "CA-400"; "CA-402" ] in
  List.iter
    (fun (case : Sieve.Bugs.case) ->
      match first_exposure ~hazard_rank:true case with
      | None ->
          Alcotest.failf "%s: not exposed within the hazard-ranked budget"
            case.Sieve.Bugs.id
      | Some hazard ->
          if List.mem case.Sieve.Bugs.id operator_ids then begin
            match first_exposure ~hazard_rank:false case with
            | None ->
                Alcotest.failf "%s: not exposed within the greedy budget"
                  case.Sieve.Bugs.id
            | Some greedy ->
                if hazard > greedy then
                  Alcotest.failf "%s: hazard-ranked exposure at trial %d, greedy at %d"
                    case.Sieve.Bugs.id hazard greedy
          end)
    (Sieve.Bugs.all_with_extras ())

let suites =
  [
    ( "analysis.lint",
      [
        Alcotest.test_case "fixture: stale-write" `Quick test_fixture_stale_write;
        Alcotest.test_case "fixture: edge-trigger" `Quick test_fixture_edge_trigger;
        Alcotest.test_case "fixture: stale-resync" `Quick test_fixture_stale_resync;
        Alcotest.test_case "fixture: follower-read-then-write" `Quick
          test_fixture_follower_read;
        Alcotest.test_case "fixture: retry-no-dedup" `Quick test_fixture_retry_nodedup;
        Alcotest.test_case "fixture: zk-one-shot-watch" `Quick test_fixture_zk_watch;
        Alcotest.test_case "fixture: stale-region-assign" `Quick
          test_fixture_region_assign;
        Alcotest.test_case "no false positives on fixed twins" `Quick
          test_no_false_positives_on_fixed_twins;
        Alcotest.test_case "explain carries the evidence path" `Quick
          test_explain_evidence_path;
        Alcotest.test_case "lib/kube clean modulo baseline" `Quick test_kube_baselined;
        Alcotest.test_case "lib/hbase clean modulo baseline" `Quick test_hbase_baselined;
        Alcotest.test_case "lib/replicated clean" `Quick test_replicated_clean;
        Alcotest.test_case "baseline legacy migration" `Quick test_baseline_migration;
      ] );
    ( "analysis.footprint",
      [
        Alcotest.test_case "cached reads = planner watch sets" `Quick
          test_footprint_consistency;
        Alcotest.test_case "edge_triggered mirrors lint" `Quick
          test_footprint_edge_triggered_mirrors_lint;
        Alcotest.test_case "replication demotes quorum reads" `Quick
          test_footprint_replication;
      ] );
    ( "analysis.hazard",
      [
        Alcotest.test_case "graph content" `Quick test_hazard_graph_content;
        Alcotest.test_case "lint findings become per-path hazards" `Quick
          test_hazard_of_lint;
        Alcotest.test_case "hazard rank no later than greedy" `Slow
          test_hazard_rank_regression;
      ] );
  ]
