(* Test the static analyzer: the layer-1 lint against its fixture
   corpus and against lib/kube itself, the layer-2 footprints against
   the planner's watch sets (so the static and dynamic views of "what
   each component observes" cannot drift), the hazard graph's content,
   and the hazard-ranked scheduler against greedy coverage ordering. *)

let fixture name = Filename.concat (Filename.concat "fixtures" "lint") name

(* --- layer 1: lint ------------------------------------------------- *)

let check_findings name path expected =
  match Analysis.Lint.file path with
  | Error e -> Alcotest.failf "%s: parse error: %s" name e
  | Ok findings ->
      Alcotest.(check (list (pair string string)))
        (name ^ " findings")
        expected
        (List.map (fun (f : Analysis.Lint.finding) -> (f.rule, f.func)) findings)

let test_fixture_stale_write () =
  check_findings "stale_delete_buggy"
    (fixture "stale_delete_buggy.ml")
    [ ("stale-write", "gc_surplus") ];
  (match Analysis.Lint.file (fixture "stale_delete_buggy.ml") with
  | Ok [ f ] ->
      Alcotest.(check string) "pattern" "staleness"
        (Sieve.Coverage.pattern_to_string f.pattern)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_findings "stale_delete_fixed" (fixture "stale_delete_fixed.ml") []

let test_fixture_edge_trigger () =
  check_findings "edge_trigger_buggy"
    (fixture "edge_trigger_buggy.ml")
    [ ("edge-trigger", "on_node_event") ];
  (match Analysis.Lint.file (fixture "edge_trigger_buggy.ml") with
  | Ok [ f ] ->
      Alcotest.(check string) "pattern" "observability-gap"
        (Sieve.Coverage.pattern_to_string f.pattern)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_findings "edge_trigger_fixed" (fixture "edge_trigger_fixed.ml") []

let test_fixture_stale_resync () =
  check_findings "stale_resync_buggy"
    (fixture "stale_resync_buggy.ml")
    [ ("stale-resync", "start") ];
  (match Analysis.Lint.file (fixture "stale_resync_buggy.ml") with
  | Ok [ f ] ->
      Alcotest.(check string) "pattern" "time-travel"
        (Sieve.Coverage.pattern_to_string f.pattern)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_findings "stale_resync_fixed" (fixture "stale_resync_fixed.ml") []

(* lib/kube must produce no findings beyond the committed baseline: the
   three deliberate bug-era shapes, suppressed in .sievelint with
   rationale. Anything fresh is a lint regression (or a new bug). *)
let test_kube_baselined () =
  let dir = Filename.concat ".." (Filename.concat "lib" "kube") in
  let paths =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  let findings, errors = Analysis.Lint.files paths in
  Alcotest.(check (list string)) "parse errors" [] errors;
  let baseline = Analysis.Lint.load_baseline (Filename.concat ".." ".sievelint") in
  let fresh, suppressed = Analysis.Lint.suppress ~baseline findings in
  Alcotest.(check (list string))
    "fresh findings" []
    (List.map Analysis.Lint.key fresh);
  Alcotest.(check (list string))
    "suppressed findings"
    [
      "stale-write:deployment.ml:reconcile_deployment";
      "edge-trigger:kubelet.ml:on_event";
      "edge-trigger:scheduler.ml:on_node_event";
    ]
    (List.map Analysis.Lint.key suppressed)

(* --- layer 2: footprints ------------------------------------------- *)

(* The footprints' cached_reads are the static statement of each
   component's (H', S') slice; the planner's watched_prefixes are the
   dynamic one. They must agree component by component, in order. *)
let test_footprint_consistency () =
  List.iter
    (fun (case : Sieve.Bugs.case) ->
      let targets = Sieve.Planner.targets_of_config case.Sieve.Bugs.config in
      let footprints = Analysis.Footprint.of_config case.Sieve.Bugs.config in
      Alcotest.(check (list string))
        (case.Sieve.Bugs.id ^ " components")
        (List.map (fun (t : Sieve.Planner.target) -> t.Sieve.Planner.component) targets)
        (List.map (fun (fp : Analysis.Footprint.t) -> fp.Analysis.Footprint.component) footprints);
      List.iter2
        (fun (t : Sieve.Planner.target) (fp : Analysis.Footprint.t) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s %s cached reads = watched prefixes" case.Sieve.Bugs.id
               fp.Analysis.Footprint.component)
            t.Sieve.Planner.watched_prefixes fp.Analysis.Footprint.cached_reads;
          Alcotest.(check bool)
            (fp.Analysis.Footprint.component ^ " restartable")
            t.Sieve.Planner.restartable fp.Analysis.Footprint.restartable;
          List.iter
            (fun p ->
              Alcotest.(check bool)
                (Printf.sprintf "%s edge-triggered %s is a cached read"
                   fp.Analysis.Footprint.component p)
                true
                (List.mem p fp.Analysis.Footprint.cached_reads))
            fp.Analysis.Footprint.edge_triggered)
        targets footprints)
    (Sieve.Bugs.all_with_extras ())

(* The edge_triggered sets mirror the lint's edge-trigger findings: the
   kubelet's pod handler and the scheduler's node cache, nothing else. *)
let test_footprint_edge_triggered_mirrors_lint () =
  let case = Sieve.Bugs.k8s_56261 () in
  let footprints = Analysis.Footprint.of_config case.Sieve.Bugs.config in
  List.iter
    (fun (fp : Analysis.Footprint.t) ->
      let expected =
        if String.length fp.Analysis.Footprint.component >= 7
           && String.sub fp.Analysis.Footprint.component 0 7 = "kubelet"
        then [ Kube.Resource.pods_prefix ]
        else if fp.Analysis.Footprint.component = "scheduler" then
          [ Kube.Resource.nodes_prefix ]
        else []
      in
      Alcotest.(check (list string))
        (fp.Analysis.Footprint.component ^ " edge_triggered")
        expected fp.Analysis.Footprint.edge_triggered)
    footprints

(* --- hazard graph -------------------------------------------------- *)

let find_hazard hazards ~pattern ~component ~prefix =
  List.find_opt
    (fun (h : Analysis.Hazard.t) ->
      h.Analysis.Hazard.pattern = pattern
      && String.equal h.Analysis.Hazard.component component
      && String.equal h.Analysis.Hazard.prefix prefix)
    hazards

let severity_of hazards ~pattern ~component ~prefix =
  match find_hazard hazards ~pattern ~component ~prefix with
  | Some h -> h.Analysis.Hazard.severity
  | None -> 0

let test_hazard_graph_content () =
  (* Bug-era operator config: the 400/402 shape is a sev-3 staleness
     hazard; the fixed config's quorum re-list closes it for pods. *)
  let ca = Sieve.Bugs.ca_402 () in
  let hazards = Analysis.Hazard.of_config ca.Sieve.Bugs.config in
  Alcotest.(check int) "cassop stale destructive pods" 3
    (severity_of hazards ~pattern:`Staleness ~component:"cassop"
       ~prefix:Kube.Resource.pods_prefix);
  Alcotest.(check int) "kubelet stale destructive pods" 3
    (severity_of hazards ~pattern:`Staleness ~component:"kubelet-1"
       ~prefix:Kube.Resource.pods_prefix);
  (* The fix's quorum re-list closes the unguarded-destructive hazard;
     the sev-2 write/write conflict on pods remains (it is structural,
     not a guard question). *)
  let fixed = Analysis.Hazard.of_config ca.Sieve.Bugs.fixed_config in
  Alcotest.(check bool) "fixed operator: unguarded destructive staleness closed" true
    (severity_of fixed ~pattern:`Staleness ~component:"cassop"
       ~prefix:Kube.Resource.pods_prefix
    < 3);
  (* The scheduler's node cache is edge-triggered: maximal obs-gap. *)
  let k8s = Sieve.Bugs.k8s_56261 () in
  let hazards = Analysis.Hazard.of_config k8s.Sieve.Bugs.config in
  Alcotest.(check int) "scheduler edge-triggered nodes" 3
    (severity_of hazards ~pattern:`Obs_gap ~component:"scheduler"
       ~prefix:Kube.Resource.nodes_prefix);
  (* Restartable kubelet with destructive writes: time-travel hazard. *)
  let tt = Sieve.Bugs.k8s_59848 () in
  let hazards = Analysis.Hazard.of_config tt.Sieve.Bugs.config in
  Alcotest.(check int) "kubelet restart time travel" 2
    (severity_of hazards ~pattern:`Time_travel ~component:"kubelet-1"
       ~prefix:Kube.Resource.pods_prefix);
  (* Scoring matches by key prefix, not exact key. *)
  let ca_hazards = Analysis.Hazard.of_config ca.Sieve.Bugs.config in
  Alcotest.(check int) "score matches by prefix" 3
    (Analysis.Hazard.score ca_hazards ~component:"cassop" ~key:"pods/cass-1"
       ~pattern:`Staleness);
  Alcotest.(check int) "score 0 off-graph" 0
    (Analysis.Hazard.score ca_hazards ~component:"cassop" ~key:"locks/leader"
       ~pattern:`Staleness)

(* --- hazard-ranked scheduling -------------------------------------- *)

(* First trial index (in dispatch order) whose execution exposes the
   case's bug, under one Campaign.plan ordering. *)
let first_exposure ~hazard_rank (case : Sieve.Bugs.case) =
  let planned = Hunt.Campaign.plan ~hazard_rank ~cases:[ case ] () in
  let n = Array.length planned.Hunt.Campaign.trials in
  let rec go i =
    if i >= n then None
    else
      let t = planned.Hunt.Campaign.trials.(i) in
      let o = Sieve.Runner.run_test t.Hunt.Campaign.test in
      if
        List.exists
          (fun (_, v) -> case.Sieve.Bugs.matches v)
          o.Sieve.Runner.violations
      then Some i
      else go (i + 1)
  in
  go 0

(* The ISSUE's acceptance bar: with --hazard-rank every corpus bug is
   still found within the planner's trial budget, and the first
   exposure is no later than greedy coverage ordering for the three
   operator bugs. (Empirically hazard ranking is currently no later on
   the whole corpus; the test pins only the guaranteed subset so planner
   evolution doesn't spuriously fail it.) *)
let test_hazard_rank_regression () =
  let operator_ids = [ "CA-398"; "CA-400"; "CA-402" ] in
  List.iter
    (fun (case : Sieve.Bugs.case) ->
      match first_exposure ~hazard_rank:true case with
      | None ->
          Alcotest.failf "%s: not exposed within the hazard-ranked budget"
            case.Sieve.Bugs.id
      | Some hazard ->
          if List.mem case.Sieve.Bugs.id operator_ids then begin
            match first_exposure ~hazard_rank:false case with
            | None ->
                Alcotest.failf "%s: not exposed within the greedy budget"
                  case.Sieve.Bugs.id
            | Some greedy ->
                if hazard > greedy then
                  Alcotest.failf "%s: hazard-ranked exposure at trial %d, greedy at %d"
                    case.Sieve.Bugs.id hazard greedy
          end)
    (Sieve.Bugs.all_with_extras ())

let suites =
  [
    ( "analysis.lint",
      [
        Alcotest.test_case "fixture: stale-write" `Quick test_fixture_stale_write;
        Alcotest.test_case "fixture: edge-trigger" `Quick test_fixture_edge_trigger;
        Alcotest.test_case "fixture: stale-resync" `Quick test_fixture_stale_resync;
        Alcotest.test_case "lib/kube clean modulo baseline" `Quick test_kube_baselined;
      ] );
    ( "analysis.footprint",
      [
        Alcotest.test_case "cached reads = planner watch sets" `Quick
          test_footprint_consistency;
        Alcotest.test_case "edge_triggered mirrors lint" `Quick
          test_footprint_edge_triggered_mirrors_lint;
      ] );
    ( "analysis.hazard",
      [
        Alcotest.test_case "graph content" `Quick test_hazard_graph_content;
        Alcotest.test_case "hazard rank no later than greedy" `Slow
          test_hazard_rank_regression;
      ] );
  ]
