(* Determinism regression: equal inputs must yield byte-identical
   artifacts — the property every campaign journal, resume and
   conformance comparison stands on. *)

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let mkdir_if_missing path = if not (Sys.file_exists path) then Sys.mkdir path 0o755

let sample_test strategy =
  Sieve.Runner.base_test ~config:Kube.Cluster.default_config
    ~workload:(Kube.Workload.pod_churn ~n:2 ())
    ~horizon:5_000_000 strategy

let same_test_same_trace () =
  List.iter
    (fun strategy ->
      let a = Sieve.Runner.run_test (sample_test strategy) in
      let b = Sieve.Runner.run_test (sample_test strategy) in
      Alcotest.(check string)
        ("byte-identical traces under " ^ Sieve.Strategy.describe strategy)
        (Sieve.Runner.trace_jsonl a) (Sieve.Runner.trace_jsonl b))
    [
      Sieve.Strategy.No_perturbation;
      Sieve.Strategy.Crash_restart { victim = "kubelet-1"; at = 1_000_000; downtime = 800_000 };
      Sieve.Strategy.Partition_window
        { a = "kubelet-2"; b = "api-1"; from = 500_000; until = 2_000_000 };
    ]

let same_trace_with_conformance () =
  (* The monitor must not perturb the trajectory: same seed, flag on,
     run twice, and against the flag-off bytes. *)
  let test =
    sample_test
      (Sieve.Strategy.Crash_restart { victim = "kubelet-1"; at = 1_000_000; downtime = 800_000 })
  in
  let off = Sieve.Runner.run_test test in
  let on1 = Sieve.Runner.run_test ~check_conformance:true test in
  let on2 = Sieve.Runner.run_test ~check_conformance:true test in
  Alcotest.(check string) "flag on is reproducible" (Sieve.Runner.trace_jsonl on1)
    (Sieve.Runner.trace_jsonl on2);
  Alcotest.(check string) "flag on equals flag off" (Sieve.Runner.trace_jsonl off)
    (Sieve.Runner.trace_jsonl on1)

let campaign ?(jobs = 1) ?(check_conformance = false) ~out () =
  Hunt.Campaign.run ~jobs ~out ~budget:16 ~seed:42L ~minimize_budget:0 ~check_conformance
    ~cases:[ Sieve.Bugs.ca_398 () ] ()

let hunt_journal_invariant_under_conformance () =
  mkdir_if_missing "_hunt_test";
  let base = campaign ~jobs:1 ~out:"_hunt_test/conf-off" () in
  let seq = campaign ~jobs:1 ~check_conformance:true ~out:"_hunt_test/conf-j1" () in
  let (_ : Hunt.Campaign.summary) =
    campaign ~jobs:4 ~check_conformance:true ~out:"_hunt_test/conf-j4" ()
  in
  let journal out = read_file (out ^ "/journal.jsonl") in
  Alcotest.(check string) "flag does not change journal bytes"
    (journal "_hunt_test/conf-off") (journal "_hunt_test/conf-j1");
  Alcotest.(check string) "parallel conformance journal identical"
    (journal "_hunt_test/conf-j1") (journal "_hunt_test/conf-j4");
  (match (base.Hunt.Campaign.conformance, seq.Hunt.Campaign.conformance) with
  | None, Some c ->
      Alcotest.(check int) "every executed trial checked" seq.Hunt.Campaign.executed
        c.Hunt.Campaign.conf_trials;
      Alcotest.(check int) "no violations on the corpus" 0 c.Hunt.Campaign.conf_total;
      Alcotest.(check (list string)) "no signatures" [] c.Hunt.Campaign.conf_signatures
  | _ -> Alcotest.fail "conformance summary present iff the flag is set");
  (* Findings artifacts must not change either: conformance results stay
     out of finding directories by design. *)
  let fingerprint (s : Hunt.Campaign.summary) =
    List.map
      (fun (f : Hunt.Campaign.finding) -> (f.Hunt.Campaign.signature, f.Hunt.Campaign.trial))
      s.Hunt.Campaign.findings
  in
  Alcotest.(check bool) "same findings" true (fingerprint base = fingerprint seq);
  List.iter
    (fun (f : Hunt.Campaign.finding) ->
      let dir = "/findings/" ^ Hunt.Signature.to_dirname f.Hunt.Campaign.signature in
      List.iter
        (fun file ->
          Alcotest.(check string)
            (file ^ " bytes unchanged by the flag")
            (read_file ("_hunt_test/conf-off" ^ dir ^ "/" ^ file))
            (read_file ("_hunt_test/conf-j1" ^ dir ^ "/" ^ file)))
        [ "artifact.json"; "finding.json" ])
    base.Hunt.Campaign.findings

(* The replicated backend sits on the same engine and draws from the
   same seeded streams: equal inputs must stay byte-identical through
   Raft elections, proposal retries and replica routing. *)
let replicated_runs_deterministic () =
  List.iter
    (fun case ->
      let a = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
      let b = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
      Alcotest.(check string)
        ("byte-identical traces for " ^ case.Sieve.Bugs.id)
        (Sieve.Runner.trace_jsonl a) (Sieve.Runner.trace_jsonl b))
    (Sieve.Bugs.replicated ())

let replicated_hunt_jobs_identity () =
  mkdir_if_missing "_hunt_test";
  let campaign ~jobs ~out =
    Hunt.Campaign.run ~jobs ~out ~budget:24 ~seed:42L ~minimize_budget:0
      ~cases:[ Sieve.Bugs.rep_stale (); Sieve.Bugs.rep_minority () ]
      ()
  in
  let (_ : Hunt.Campaign.summary) = campaign ~jobs:1 ~out:"_hunt_test/rep-j1" in
  let (_ : Hunt.Campaign.summary) = campaign ~jobs:4 ~out:"_hunt_test/rep-j4" in
  Alcotest.(check string) "parallel replicated journal identical"
    (read_file "_hunt_test/rep-j1/journal.jsonl")
    (read_file "_hunt_test/rep-j4/journal.jsonl")

(* The HBase substrate routes through the same engine discipline:
   every case's trace must be byte-stable, and a hunt over the HBase
   corpus must journal identically across job counts and across a
   kill-and-resume. *)
let hbase_runs_deterministic () =
  List.iter
    (fun case ->
      let a = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
      let b = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
      Alcotest.(check string)
        ("byte-identical traces for " ^ case.Sieve.Bugs.id)
        (Sieve.Runner.trace_jsonl a) (Sieve.Runner.trace_jsonl b))
    (Sieve.Bugs.hbase ())

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let hbase_hunt_jobs_and_resume_identity () =
  mkdir_if_missing "_hunt_test";
  let campaign ?(resume = false) ~jobs ~out () =
    Hunt.Campaign.run ~jobs ~out ~resume ~budget:24 ~seed:42L ~minimize_budget:0
      ~cases:(Sieve.Bugs.hbase ()) ()
  in
  let (_ : Hunt.Campaign.summary) = campaign ~jobs:1 ~out:"_hunt_test/hb-j1" () in
  let (_ : Hunt.Campaign.summary) = campaign ~jobs:4 ~out:"_hunt_test/hb-j4" () in
  let journal = read_file "_hunt_test/hb-j1/journal.jsonl" in
  Alcotest.(check string) "parallel hbase journal identical" journal
    (read_file "_hunt_test/hb-j4/journal.jsonl");
  (* Kill-and-resume: rebuild the first half of the journal plus a torn
     record, as if the campaign died mid-append; the resumed run must
     converge to the uninterrupted bytes. *)
  let lines = String.split_on_char '\n' journal in
  let keep = List.filteri (fun i _ -> i < List.length lines / 2) lines in
  mkdir_if_missing "_hunt_test/hb-res";
  write_file "_hunt_test/hb-res/journal.jsonl"
    (String.concat "\n" keep ^ "\n" ^ {|{"trial":999,"torn|});
  let resumed = campaign ~jobs:4 ~resume:true ~out:"_hunt_test/hb-res" () in
  Alcotest.(check bool) "some trials replayed" true (resumed.Hunt.Campaign.replayed > 0);
  Alcotest.(check bool) "some trials executed" true (resumed.Hunt.Campaign.executed > 0);
  Alcotest.(check string) "resumed hbase journal converges byte-for-byte" journal
    (read_file "_hunt_test/hb-res/journal.jsonl")

let suites =
  [
    ( "determinism",
      [
        Alcotest.test_case "same test, same trace" `Slow same_test_same_trace;
        Alcotest.test_case "conformance flag preserves traces" `Slow same_trace_with_conformance;
        Alcotest.test_case "hunt journal invariant under conformance" `Slow
          hunt_journal_invariant_under_conformance;
        Alcotest.test_case "replicated runs deterministic" `Slow replicated_runs_deterministic;
        Alcotest.test_case "replicated hunt jobs identity" `Slow replicated_hunt_jobs_identity;
        Alcotest.test_case "hbase runs deterministic" `Slow hbase_runs_deterministic;
        Alcotest.test_case "hbase hunt jobs + resume identity" `Slow
          hbase_hunt_jobs_and_resume_identity;
      ] );
  ]
