(* End-to-end observability: causal chains behind every corpus bug,
   revision-lag gauges under a partition, and the machine-readable
   artifacts' JSON round-trips. *)

let is_commit e = String.equal e.Dsim.Trace.kind "etcd.commit"

let is_violation e = String.equal e.Dsim.Trace.kind "oracle.violation"

(* The acceptance criterion: for every bug in the corpus, walking cause
   links backwards from the oracle-firing entry reaches an originating
   store commit — the trace explains each violation, not merely records
   it. *)
let chain_reaches_commit (case : Sieve.Bugs.case) () =
  let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
  Alcotest.(check bool) "bug reproduced" true (outcome.Sieve.Runner.violations <> []);
  let chain = Sieve.Runner.causal_chain outcome in
  Alcotest.(check bool) "chain non-empty" true (chain <> []);
  Alcotest.(check bool) "chain reaches a store commit" true (List.exists is_commit chain);
  Alcotest.(check bool) "chain ends at the violation" true
    (is_violation (List.nth chain (List.length chain - 1)))

let chain_cases =
  List.map
    (fun case ->
      Alcotest.test_case
        (Printf.sprintf "chain reaches commit (%s)" case.Sieve.Bugs.id)
        `Quick (chain_reaches_commit case))
    (Sieve.Bugs.all_with_extras ())

(* An apiserver partitioned from etcd stops advancing its watch cache
   while commits keep flowing: its revision-lag gauge must climb while
   the healthy apiserver's stays near zero. *)
let lag_gauge_under_partition () =
  let cluster = Kube.Cluster.create () in
  Kube.Cluster.start cluster;
  let engine = Kube.Cluster.engine cluster in
  let kv = Kube.Etcd.kv (Kube.Cluster.etcd cluster) in
  let n = ref 0 in
  Dsim.Engine.every engine ~period:50_000 (fun () ->
      incr n;
      let name = Printf.sprintf "extra-%d" !n in
      ignore (Etcdlike.Kv.put kv (Kube.Resource.node_key name) (Kube.Resource.make_node name));
      true);
  Kube.Cluster.run cluster ~until:1_000_000;
  Dsim.Network.partition (Kube.Cluster.net cluster) "api-1" "etcd";
  Kube.Cluster.run cluster ~until:3_000_000;
  let m = Kube.Cluster.metrics cluster in
  let lag_1 = Dsim.Metrics.gauge m "lag.api-1" in
  let lag_2 = Dsim.Metrics.gauge m "lag.api-2" in
  Alcotest.(check bool)
    (Printf.sprintf "partitioned apiserver lags (%.0f)" lag_1)
    true (lag_1 >= 10.0);
  Alcotest.(check bool)
    (Printf.sprintf "healthy apiserver keeps up (%.0f)" lag_2)
    true (lag_2 <= 3.0);
  (* The series carries the whole climb, newest sample last. *)
  let series = Dsim.Metrics.series m "lag.api-1" in
  Alcotest.(check bool) "series sampled" true (List.length series >= 10);
  let times = List.map fst series in
  Alcotest.(check bool) "series chronological" true (List.sort compare times = times)

let watch_latency_histogram_filled () =
  let cluster = Kube.Cluster.create () in
  Kube.Cluster.start cluster;
  Kube.Cluster.run cluster ~until:2_000_000;
  let m = Kube.Cluster.metrics cluster in
  (* Apiservers consume the etcd watch stream, so their delivery-latency
     histogram must have samples bounded by the configured link latency. *)
  let name = "watch.latency.api-1" in
  Alcotest.(check bool) "samples observed" true (Dsim.Metrics.samples m name > 0);
  let config = Kube.Cluster.config cluster in
  (* The fastest delivery still pays at least one link traversal;
     queueing can only add on top. *)
  Alcotest.(check bool) "floor is the link latency" true
    (Dsim.Metrics.percentile m name 0.0 >= float_of_int config.Kube.Cluster.min_latency)

let trace_jsonl_round_trips () =
  match Sieve.Bugs.find "k8s-56261" with
  | None -> Alcotest.fail "corpus lookup is case-insensitive"
  | Some case -> (
      let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
      let dump = Sieve.Runner.trace_jsonl outcome in
      match Dsim.Trace.of_jsonl dump with
      | Error msg -> Alcotest.failf "trace dump does not parse: %s" msg
      | Ok imported ->
          let live = Kube.Cluster.trace (Sieve.Runner.kube_cluster outcome) in
          Alcotest.(check int) "all entries exported" (Dsim.Trace.length live)
            (Dsim.Trace.length imported);
          (* Chain extraction works identically on the imported trace. *)
          let entry =
            match Sieve.Runner.violation_entry outcome with
            | Some e -> e
            | None -> Alcotest.fail "no violation entry"
          in
          let original = Sieve.Runner.causal_chain outcome in
          let replayed = Dsim.Trace.chain imported ~id:entry.Dsim.Trace.id in
          Alcotest.(check bool) "chains agree" true (original = replayed))

let metrics_and_artifact_json_parse () =
  match Sieve.Bugs.find "CA-398" with
  | None -> Alcotest.fail "missing corpus bug"
  | Some case ->
      let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
      (match Dsim.Json.parse (Dsim.Json.to_string (Sieve.Runner.metrics_json outcome)) with
      | Error msg -> Alcotest.failf "metrics snapshot does not parse: %s" msg
      | Ok j ->
          Alcotest.(check bool) "has counters" true (Dsim.Json.member "counters" j <> None));
      (match Dsim.Json.parse (Dsim.Json.to_string (Sieve.Runner.artifact outcome)) with
      | Error msg -> Alcotest.failf "artifact does not parse: %s" msg
      | Ok j -> (
          Alcotest.(check bool) "has causal chain" true
            (Dsim.Json.member "causal_chain" j <> None);
          match Dsim.Json.member "violations" j with
          | Some (Dsim.Json.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "artifact lost the violations"))

let oracle_violations_counted () =
  match Sieve.Bugs.find "EXT-RS" with
  | None -> Alcotest.fail "missing corpus bug"
  | Some case ->
      let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
      let m = Kube.Cluster.metrics (Sieve.Runner.kube_cluster outcome) in
      Alcotest.(check int) "violations counter matches oracle"
        (List.length outcome.Sieve.Runner.violations)
        (Dsim.Metrics.count m "oracle.violations");
      Alcotest.(check bool) "commits counted" true (Dsim.Metrics.count m "etcd.commits" > 0)

let suites =
  [
    ( "observability",
      chain_cases
      @ [
          Alcotest.test_case "lag gauge under partition" `Quick lag_gauge_under_partition;
          Alcotest.test_case "watch latency histogram filled" `Quick
            watch_latency_histogram_filled;
          Alcotest.test_case "trace jsonl round trips" `Quick trace_jsonl_round_trips;
          Alcotest.test_case "metrics and artifact json parse" `Quick
            metrics_and_artifact_json_parse;
          Alcotest.test_case "oracle violations counted" `Quick oracle_violations_counted;
        ] );
  ]
