(* Raft-lite: elections, replication, failover, and the classic safety
   properties under randomized fault schedules. *)

let setup ?(seed = 7L) ?(n = 3) () =
  let engine = Dsim.Engine.create ~seed () in
  let net = Dsim.Network.create engine in
  let group = Raftlite.Group.create ~net ~n () in
  Raftlite.Group.start group;
  (engine, net, group)

let run_for engine us = Dsim.Engine.run ~until:(Dsim.Engine.now engine + us) engine

let elects_exactly_one_leader () =
  let engine, _, group = setup () in
  run_for engine 1_000_000;
  Alcotest.(check int) "one leader" 1 (List.length (Raftlite.Group.leaders group))

let replicates_to_all () =
  let engine, _, group = setup () in
  run_for engine 1_000_000;
  for i = 1 to 10 do
    Alcotest.(check bool) "proposed" true
      (Raftlite.Group.propose_via_leader group (Printf.sprintf "c%d" i));
    run_for engine 150_000
  done;
  run_for engine 500_000;
  List.iter
    (fun id ->
      Alcotest.(check int) (id ^ " applied all") 10
        (List.length (Raftlite.Group.applied group id)))
    (Raftlite.Group.names group)

let followers_reject_proposals () =
  let engine, _, group = setup () in
  run_for engine 1_000_000;
  let leader = Option.get (Raftlite.Group.leader group) in
  let follower =
    List.find
      (fun n -> not (String.equal (Raftlite.Node.id n) (Raftlite.Node.id leader)))
      (Raftlite.Group.nodes group)
  in
  Alcotest.(check bool) "follower refuses" false (Raftlite.Node.propose follower "nope")

let failover_preserves_committed () =
  let engine, net, group = setup () in
  run_for engine 1_000_000;
  ignore (Raftlite.Group.propose_via_leader group "before");
  run_for engine 500_000;
  let old_leader = Option.get (Raftlite.Group.leader group) in
  Dsim.Network.crash net (Raftlite.Node.id old_leader);
  run_for engine 1_500_000;
  let new_leader = Option.get (Raftlite.Group.leader group) in
  Alcotest.(check bool) "different node" false
    (String.equal (Raftlite.Node.id new_leader) (Raftlite.Node.id old_leader));
  Alcotest.(check bool) "higher term" true
    (Raftlite.Node.term new_leader > Raftlite.Node.term old_leader);
  Alcotest.(check bool) "proposal accepted after failover" true
    (Raftlite.Group.propose_via_leader group "after");
  run_for engine 500_000;
  (* Bring the old leader back so every replica can apply the suffix. *)
  Dsim.Network.restart net (Raftlite.Node.id old_leader);
  run_for engine 1_000_000;
  Alcotest.(check (list string)) "prefix intact" [ "before"; "after" ]
    (Raftlite.Group.committed_prefix group)

let restarted_node_catches_up () =
  let engine, net, group = setup () in
  run_for engine 1_000_000;
  let victim =
    List.find (fun n -> not (Raftlite.Node.is_leader n)) (Raftlite.Group.nodes group)
  in
  Dsim.Network.crash net (Raftlite.Node.id victim);
  for i = 1 to 5 do
    ignore (Raftlite.Group.propose_via_leader group (Printf.sprintf "c%d" i));
    run_for engine 150_000
  done;
  Dsim.Network.restart net (Raftlite.Node.id victim);
  run_for engine 1_000_000;
  Alcotest.(check int) "caught up" 5
    (List.length (Raftlite.Group.applied group (Raftlite.Node.id victim)))

let minority_partition_cannot_commit () =
  let engine, net, group = setup ~n:5 () in
  run_for engine 1_000_000;
  let leader = Option.get (Raftlite.Group.leader group) in
  let leader_id = Raftlite.Node.id leader in
  (* Isolate the leader plus one follower from the other three. *)
  let followers =
    List.filter (fun id -> not (String.equal id leader_id)) (Raftlite.Group.names group)
  in
  let with_leader = List.hd followers and others = List.tl followers in
  List.iter
    (fun a -> List.iter (fun b -> Dsim.Network.partition net a b) others)
    [ leader_id; with_leader ];
  run_for engine 200_000;
  let before = List.length (Raftlite.Group.committed_prefix group) in
  ignore (Raftlite.Node.propose leader "doomed");
  run_for engine 1_500_000;
  (* The minority side cannot commit; the majority side elects a fresh
     leader and moves on. *)
  Alcotest.(check bool) "old leader applied nothing new" true
    (List.length (Raftlite.Group.applied group leader_id) <= before);
  let majority_leader = Option.get (Raftlite.Group.leader group) in
  Alcotest.(check bool) "majority elected elsewhere" true
    (List.mem (Raftlite.Node.id majority_leader) others);
  (* Heal; the doomed entry must not survive (leader completeness). *)
  Dsim.Network.heal_all net;
  ignore (Raftlite.Group.propose_via_leader group "kept");
  run_for engine 2_000_000;
  let prefix = Raftlite.Group.committed_prefix group in
  Alcotest.(check bool) "doomed entry gone" false (List.mem "doomed" prefix);
  Alcotest.(check bool) "new entry committed everywhere" true (List.mem "kept" prefix);
  Alcotest.(check int) "all five applied equally" 5
    (List.length
       (List.filter
          (fun id -> Raftlite.Group.applied group id = prefix)
          (Raftlite.Group.names group)))

let single_node_group () =
  let engine, _, group = setup ~n:1 () in
  run_for engine 500_000;
  Alcotest.(check int) "self-elected" 1 (List.length (Raftlite.Group.leaders group));
  Alcotest.(check bool) "commits alone" true (Raftlite.Group.propose_via_leader group "solo");
  run_for engine 100_000;
  Alcotest.(check (list string)) "applied" [ "solo" ]
    (Raftlite.Group.applied group (List.hd (Raftlite.Group.names group)))

let committed_prefix_names_divergence () =
  (* The agreeing case: the common prefix is the shortest applied log. *)
  Alcotest.(check (list string)) "agreeing logs" [ "a"; "b" ]
    (Raftlite.Group.committed_prefix_of_logs
       [ ("raft-1", [ "a"; "b"; "c" ]); ("raft-2", [ "a"; "b" ]) ]);
  (* The safety-violation exception must name the violating index, both
     replica ids and the two commands they applied. *)
  Alcotest.check_raises "divergence names index and replicas"
    (Invalid_argument
       "Raft safety violated: replicas disagree at index 2: raft-2 applied \"b\", raft-3 \
        applied \"X\"")
    (fun () ->
      ignore
        (Raftlite.Group.committed_prefix_of_logs
           [
             ("raft-1", [ "a"; "b"; "c" ]);
             ("raft-2", [ "a"; "b" ]);
             ("raft-3", [ "a"; "X"; "c" ]);
           ]))

(* Safety properties under random crash/partition schedules. The group
   churns while a client keeps proposing; at the end everything heals and
   the three Raft safety arguments are checked. *)
let random_churn_preserves_safety seed =
  let engine, net, group = setup ~seed:(Int64.of_int (1 + abs seed)) ~n:3 () in
  let rng = Dsim.Rng.create (Int64.of_int (31 + abs seed)) in
  let names = Raftlite.Group.names group in
  let plan =
    Dsim.Fault.random_plan rng ~nodes:names ~horizon:4_000_000 ~crashes:2 ~partitions:2
      ~min_downtime:200_000 ~max_downtime:900_000 ()
  in
  Dsim.Fault.apply net plan;
  (* Client proposes every 100 ms on whoever claims leadership. *)
  let proposed = ref 0 in
  Dsim.Engine.every engine ~period:100_000 (fun () ->
      (if Dsim.Engine.now engine < 5_000_000 then
         let command = Printf.sprintf "p%d" !proposed in
         if Raftlite.Group.propose_via_leader group command then incr proposed);
      true);
  ignore
    (Dsim.Engine.schedule_at engine ~time:5_000_000 (fun () ->
         Dsim.Network.heal_all net;
         List.iter (fun id -> Dsim.Network.restart net id) names));
  Dsim.Engine.run ~until:9_000_000 engine;
  (* Election safety: at most one leader per term (checked over final
     state: all claimed leaders have distinct terms). *)
  let leader_terms = List.map Raftlite.Node.term (Raftlite.Group.leaders group) in
  let election_safety = List.length (List.sort_uniq compare leader_terms) = List.length leader_terms in
  (* Log matching / completeness: committed_prefix raises on divergence. *)
  let prefix = Raftlite.Group.committed_prefix group in
  (* Convergence after heal: every replica applied the same log. *)
  let converged =
    List.for_all (fun id -> Raftlite.Group.applied group id = prefix) names
  in
  election_safety && converged

let qcheck_safety_under_churn =
  QCheck.Test.make ~name:"raft safety under random crash/partition churn" ~count:20
    QCheck.(int_range 0 10_000)
    random_churn_preserves_safety

let suites =
  [
    ( "raft",
      [
        Alcotest.test_case "elects exactly one leader" `Quick elects_exactly_one_leader;
        Alcotest.test_case "replicates to all" `Quick replicates_to_all;
        Alcotest.test_case "followers reject proposals" `Quick followers_reject_proposals;
        Alcotest.test_case "failover preserves committed" `Quick failover_preserves_committed;
        Alcotest.test_case "restarted node catches up" `Quick restarted_node_catches_up;
        Alcotest.test_case "minority partition cannot commit" `Quick
          minority_partition_cannot_commit;
        Alcotest.test_case "single-node group" `Quick single_node_group;
        Alcotest.test_case "committed_prefix names divergence" `Quick
          committed_prefix_names_divergence;
        Qcheck_util.to_alcotest qcheck_safety_under_churn;
      ] );
  ]
