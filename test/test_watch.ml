(* The in-store watch hub: backlog, filters, compaction, cancellation. *)

let collect () =
  let received = ref [] in
  let deliver e = received := e :: !received in
  (received, deliver)

let revs received = List.rev_map (fun (e : string History.Event.t) -> e.History.Event.rev) !received

let live_streaming () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let received, deliver = collect () in
  (match Etcdlike.Watch.watch hub ~start_rev:0 ~deliver () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "watch failed");
  ignore (Etcdlike.Kv.put kv "a" "1");
  ignore (Etcdlike.Kv.put kv "b" "2");
  Alcotest.(check (list int)) "live events" [ 1; 2 ] (revs received)

let backlog_then_live () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  ignore (Etcdlike.Kv.put kv "a" "1");
  ignore (Etcdlike.Kv.put kv "b" "2");
  let received, deliver = collect () in
  (match Etcdlike.Watch.watch hub ~start_rev:1 ~deliver () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "watch failed");
  ignore (Etcdlike.Kv.put kv "c" "3");
  Alcotest.(check (list int)) "backlog(2) + live(3)" [ 2; 3 ] (revs received)

let prefix_filter () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let received, deliver = collect () in
  ignore (Etcdlike.Watch.watch hub ~prefix:"pods/" ~start_rev:0 ~deliver ());
  ignore (Etcdlike.Kv.put kv "pods/a" "1");
  ignore (Etcdlike.Kv.put kv "nodes/x" "2");
  ignore (Etcdlike.Kv.put kv "pods/b" "3");
  Alcotest.(check (list int)) "pods only" [ 1; 3 ] (revs received)

let compacted_start_rejected () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  for i = 1 to 10 do
    ignore (Etcdlike.Kv.put kv (Printf.sprintf "k%d" i) "v")
  done;
  Etcdlike.Kv.compact_keep_last kv 2;
  let _, deliver = collect () in
  match Etcdlike.Watch.watch hub ~start_rev:3 ~deliver () with
  | Error (`Compacted 8) -> ()
  | _ -> Alcotest.fail "expected Compacted 8"

let cancel_stops_delivery () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let received, deliver = collect () in
  (match Etcdlike.Watch.watch hub ~start_rev:0 ~deliver () with
  | Ok handle ->
      ignore (Etcdlike.Kv.put kv "a" "1");
      Etcdlike.Watch.cancel hub handle;
      ignore (Etcdlike.Kv.put kv "b" "2")
  | Error _ -> Alcotest.fail "watch failed");
  Alcotest.(check (list int)) "only first" [ 1 ] (revs received);
  Alcotest.(check int) "no active watchers" 0 (Etcdlike.Watch.active hub)

let no_duplicates_on_fan_out () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let received, deliver = collect () in
  ignore (Etcdlike.Watch.watch hub ~start_rev:0 ~deliver ());
  let e = Etcdlike.Kv.put kv "a" "1" in
  (* Replaying an already-sent event through fan_out must not re-deliver. *)
  Etcdlike.Watch.fan_out hub e;
  Alcotest.(check (list int)) "delivered once" [ 1 ] (revs received)

let multiple_watchers_independent () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let r1, d1 = collect () in
  let r2, d2 = collect () in
  ignore (Etcdlike.Watch.watch hub ~prefix:"pods/" ~start_rev:0 ~deliver:d1 ());
  ignore (Etcdlike.Watch.watch hub ~prefix:"nodes/" ~start_rev:0 ~deliver:d2 ());
  ignore (Etcdlike.Kv.put kv "pods/a" "1");
  ignore (Etcdlike.Kv.put kv "nodes/x" "2");
  Alcotest.(check (list int)) "watcher 1" [ 1 ] (revs r1);
  Alcotest.(check (list int)) "watcher 2" [ 2 ] (revs r2);
  Alcotest.(check int) "two active" 2 (Etcdlike.Watch.active hub)

(* Regression: cancelling a watcher from inside a peer's delivery
   callback used to leave it in the in-flight fan-out list, so it
   received the very event it was cancelled against. *)
let cancel_during_fan_out () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let victim_events = ref 0 in
  let victim = ref None in
  (match
     Etcdlike.Watch.watch hub ~start_rev:0
       ~deliver:(fun _ ->
         match !victim with
         | Some handle ->
             Etcdlike.Watch.cancel hub handle;
             victim := None
         | None -> ())
       ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "watch failed");
  (match Etcdlike.Watch.watch hub ~start_rev:0 ~deliver:(fun _ -> incr victim_events) () with
  | Ok handle -> victim := Some handle
  | Error _ -> Alcotest.fail "watch failed");
  ignore (Etcdlike.Kv.put kv "a" "1");
  Alcotest.(check int) "cancelled watcher never sees the in-flight event" 0 !victim_events;
  ignore (Etcdlike.Kv.put kv "b" "2");
  Alcotest.(check int) "nor later ones" 0 !victim_events;
  Alcotest.(check int) "one watcher left" 1 (Etcdlike.Watch.active hub)

(* Regression: a stream replacing itself (cancel + re-watch) from inside
   its own delivery callback — the informer re-list pattern — must not
   corrupt the in-flight fan-out or double-deliver. *)
let reregister_from_own_callback () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let phase1 = ref [] in
  let phase2 = ref [] in
  let handle = ref None in
  let deliver1 (e : string History.Event.t) =
    phase1 := e.History.Event.rev :: !phase1;
    (match !handle with Some h -> Etcdlike.Watch.cancel hub h | None -> ());
    match
      Etcdlike.Watch.watch hub ~start_rev:e.History.Event.rev
        ~deliver:(fun e -> phase2 := e.History.Event.rev :: !phase2)
        ()
    with
    | Ok h -> handle := Some h
    | Error _ -> Alcotest.fail "re-watch failed"
  in
  (match Etcdlike.Watch.watch hub ~start_rev:0 ~deliver:deliver1 () with
  | Ok h -> handle := Some h
  | Error _ -> Alcotest.fail "watch failed");
  ignore (Etcdlike.Kv.put kv "a" "1");
  ignore (Etcdlike.Kv.put kv "b" "2");
  Alcotest.(check (list int)) "old stream saw only the triggering event" [ 1 ] (List.rev !phase1);
  Alcotest.(check (list int)) "replacement stream continues, no duplicates" [ 2 ]
    (List.rev !phase2);
  Alcotest.(check int) "one watcher live" 1 (Etcdlike.Watch.active hub)

let batched_watch_coalesces () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let flushes = ref [] in
  (match
     Etcdlike.Watch.watch_batched hub ~prefix:"pods/" ~start_rev:0
       ~deliver:(fun events ->
         flushes :=
           List.map (fun (e : string History.Event.t) -> e.History.Event.rev) events :: !flushes)
       ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "watch failed");
  ignore (Etcdlike.Kv.put kv "pods/a" "1");
  ignore (Etcdlike.Kv.put kv "nodes/x" "2");
  ignore (Etcdlike.Kv.put kv "pods/b" "3");
  Alcotest.(check (list (list int))) "nothing before flush" [] !flushes;
  Alcotest.(check int) "two pending" 2 (Etcdlike.Watch.pending hub);
  Etcdlike.Watch.flush hub;
  ignore (Etcdlike.Kv.put kv "pods/c" "4");
  Etcdlike.Watch.flush hub;
  Etcdlike.Watch.flush hub;
  Alcotest.(check (list (list int)))
    "one batch per non-empty tick, arrival order inside" [ [ 1; 3 ]; [ 4 ] ] (List.rev !flushes)

let batched_watch_cancel_drops_pending () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let flushes = ref 0 in
  (match Etcdlike.Watch.watch_batched hub ~start_rev:0 ~deliver:(fun _ -> incr flushes) () with
  | Ok handle ->
      ignore (Etcdlike.Kv.put kv "a" "1");
      Etcdlike.Watch.cancel hub handle;
      Etcdlike.Watch.flush hub
  | Error _ -> Alcotest.fail "watch failed");
  Alcotest.(check int) "cancelled batch dropped, not delivered" 0 !flushes

let suites =
  [
    ( "watch",
      [
        Alcotest.test_case "live streaming" `Quick live_streaming;
        Alcotest.test_case "backlog then live" `Quick backlog_then_live;
        Alcotest.test_case "prefix filter" `Quick prefix_filter;
        Alcotest.test_case "compacted start rejected" `Quick compacted_start_rejected;
        Alcotest.test_case "cancel stops delivery" `Quick cancel_stops_delivery;
        Alcotest.test_case "no duplicates on fan_out" `Quick no_duplicates_on_fan_out;
        Alcotest.test_case "multiple watchers independent" `Quick multiple_watchers_independent;
        Alcotest.test_case "cancel during fan_out (regression)" `Quick cancel_during_fan_out;
        Alcotest.test_case "re-register from own callback (regression)" `Quick
          reregister_from_own_callback;
        Alcotest.test_case "batched watch coalesces per flush" `Quick batched_watch_coalesces;
        Alcotest.test_case "batched watch cancel drops pending" `Quick
          batched_watch_cancel_drops_pending;
      ] );
  ]
