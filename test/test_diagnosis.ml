(* Diagnosis golden suite: every corpus bug's root-cause card must name
   the ground-truth suspect component, anti-pattern class and divergence
   point — and the diagnose flag must not move a single byte of any
   trace, journal or finding artifact. *)

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let mkdir_if_missing path = if not (Sys.file_exists path) then Sys.mkdir path 0o755

(* --- golden cards -------------------------------------------------- *)

(* id -> (divergence kind, suspect component, divergence rev, key
   prefix, hazard severity). The revisions are the known first stale
   reads: for the drop-strategy cases they equal the first event
   deliberately dropped on the suspect's edge (checked against the
   trace below), for K8s-59848 the revision the stale re-list adopted,
   for EXT-RS the first commit aged past the lag grace. *)
let golden =
  [
    ("K8s-59848", ("rewind", "kubelet-1", 4, "pods/", 2));
    ("K8s-56261", ("skip", "scheduler", 4, "nodes/", 3));
    ("CA-398", ("skip", "volumectl", 12, "pods/", 3));
    ("CA-400", ("skip", "cassop", 19, "pods/", 3));
    ("CA-402", ("skip", "cassop", 15, "pods/", 3));
    ("EXT-RS", ("lag", "rsctl", 5, "pods/", 3));
    ("EXT-NC", ("skip", "nodectl", 11, "nodes/", 3));
    ("EXT-DEP", ("skip", "depctl", 14, "pods/", 3));
  ]

(* First deliberately dropped event addressed to [component]:
   pipe.drop details read "src->dst @rev op key". *)
let first_drop_rev trace ~component =
  let parse detail =
    match String.index_opt detail '@' with
    | None -> None
    | Some i ->
        let n = String.length detail in
        let j = ref (i + 1) in
        while !j < n && detail.[!j] >= '0' && detail.[!j] <= '9' do
          incr j
        done;
        if !j > i + 1 then int_of_string_opt (String.sub detail (i + 1) (!j - i - 1)) else None
  in
  List.find_map
    (fun (e : Dsim.Trace.entry) ->
      if String.equal e.Dsim.Trace.actor component then parse e.Dsim.Trace.detail else None)
    (Dsim.Trace.find_all trace ~kind:"pipe.drop")

let golden_cards () =
  List.iter
    (fun (case : Sieve.Bugs.case) ->
      let id = case.Sieve.Bugs.id in
      let kind, component, rev, key_prefix, severity = List.assoc id golden in
      let outcome, card = Diagnosis.Diagnose.diagnose_case case in
      let card =
        match card with Some c -> c | None -> Alcotest.failf "%s: no card produced" id
      in
      Alcotest.(check string) (id ^ " bug id") id card.Diagnosis.Card.bug;
      let d = card.Diagnosis.Card.divergence in
      Alcotest.(check string) (id ^ " divergence kind") kind d.Diagnosis.Card.kind;
      Alcotest.(check string) (id ^ " divergence component") component d.Diagnosis.Card.component;
      Alcotest.(check int) (id ^ " divergence rev") rev d.Diagnosis.Card.rev;
      Alcotest.(check bool)
        (id ^ " divergence key under " ^ key_prefix)
        true
        (String.starts_with ~prefix:key_prefix d.Diagnosis.Card.key);
      Alcotest.(check bool)
        (id ^ " rev within committed frontier")
        true
        (d.Diagnosis.Card.rev >= 1 && d.Diagnosis.Card.rev <= outcome.Sieve.Runner.truth_rev);
      (match d.Diagnosis.Card.event with
      | Some ev -> Alcotest.(check bool) (id ^ " committed event named") true (ev <> "")
      | None -> Alcotest.failf "%s: divergence carries no committed event" id);
      let s = card.Diagnosis.Card.suspect in
      Alcotest.(check string) (id ^ " suspect") component s.Diagnosis.Card.component;
      (* The card's anti-pattern class must recover the corpus case's
         ground-truth Section 4.2 pattern. *)
      Alcotest.(check string)
        (id ^ " anti-pattern")
        (Diagnosis.Diagnose.anti_pattern_of_pattern case.Sieve.Bugs.pattern)
        s.Diagnosis.Card.anti_pattern;
      Alcotest.(check int) (id ^ " hazard severity") severity s.Diagnosis.Card.hazard_severity;
      Alcotest.(check bool) (id ^ " hazard named") true (s.Diagnosis.Card.hazard_reason <> "");
      Alcotest.(check bool) (id ^ " read-site named") true (s.Diagnosis.Card.read_site <> "");
      let chain = card.Diagnosis.Card.chain in
      Alcotest.(check bool)
        (id ^ " chain anchored")
        true
        (chain.Diagnosis.Card.anchor > 0 && chain.Diagnosis.Card.length >= 1);
      (match Diagnosis.Card.validate (Diagnosis.Card.to_json card) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: card fails schema validation: %s" id e);
      (* For the drop-strategy cases, the divergence rev must be exactly
         the first event deliberately dropped on the suspect's edge —
         the card points at the first stale read, not a later symptom. *)
      match
        first_drop_rev (Kube.Cluster.trace (Sieve.Runner.kube_cluster outcome)) ~component
      with
      | Some drop_rev when String.equal d.Diagnosis.Card.kind "skip" ->
          Alcotest.(check int) (id ^ " diverged at first dropped event") drop_rev
            d.Diagnosis.Card.rev
      | _ -> ())
    (Sieve.Bugs.all_with_extras ())

(* HBase corpus golden cards. These cases exercise the card paths the
   kube corpus cannot: a store-side divergence whose suspect is a
   *different* component (the replication stream diverges at
   zk-follower, the misbehaving reader is master-1), a revision-domain
   rewind reported from outside the frontier checks, and a violation
   with no mirrored-stream divergence at all (the one-shot watch gap
   lives inside a protocol the monitor does not mirror). *)
type hb_golden = {
  hb_kind : string;
  hb_stream : string;  (* "" = no divergence recorded *)
  hb_rev : int;
  hb_suspect : string;
  hb_read_site : string;
  hb_severity : int;
  (* The static hazard graph credits the HB-FOLLOWER master's sync
     guard, so its severity is 0 with no reason: the revision-domain
     drift is precisely what static analysis misses and the dynamic
     divergence still pins. *)
  hb_reason_named : bool;
}

let hbase_golden =
  [
    ( "HB-ASSIGN",
      {
        hb_kind = "lag";
        hb_stream = "zk-follower<-zk-leader";
        hb_rev = 7;
        hb_suspect = "master-1";
        hb_read_site = "rs/registry";
        hb_severity = 3;
        hb_reason_named = true;
      } );
    ( "HB-WATCH",
      {
        hb_kind = "unknown";
        hb_stream = "";
        hb_rev = 0;
        hb_suspect = "rs-1";
        hb_read_site = "region/";
        hb_severity = 0;
        hb_reason_named = true;
      } );
    ( "HB-FOLLOWER",
      {
        hb_kind = "rewind";
        hb_stream = "zk-follower<-zk-leader";
        hb_rev = 13;
        hb_suspect = "master-1";
        hb_read_site = "rs/registry";
        hb_severity = 0;
        hb_reason_named = false;
      } );
  ]

let hbase_golden_cards () =
  List.iter
    (fun (case : Sieve.Bugs.case) ->
      let id = case.Sieve.Bugs.id in
      let g = List.assoc id hbase_golden in
      let _, card = Diagnosis.Diagnose.diagnose_case case in
      let card =
        match card with Some c -> c | None -> Alcotest.failf "%s: no card produced" id
      in
      Alcotest.(check string) (id ^ " bug id") id card.Diagnosis.Card.bug;
      let d = card.Diagnosis.Card.divergence in
      Alcotest.(check string) (id ^ " divergence kind") g.hb_kind d.Diagnosis.Card.kind;
      Alcotest.(check string) (id ^ " divergence stream") g.hb_stream d.Diagnosis.Card.stream;
      Alcotest.(check int) (id ^ " divergence rev") g.hb_rev d.Diagnosis.Card.rev;
      (if not (String.equal g.hb_stream "") then
         match d.Diagnosis.Card.event with
         | Some ev -> Alcotest.(check bool) (id ^ " committed event named") true (ev <> "")
         | None -> Alcotest.failf "%s: divergence carries no committed event" id);
      let s = card.Diagnosis.Card.suspect in
      Alcotest.(check string) (id ^ " suspect") g.hb_suspect s.Diagnosis.Card.component;
      Alcotest.(check string) (id ^ " read-site") g.hb_read_site s.Diagnosis.Card.read_site;
      (* The recovered class must be the corpus case's ground-truth
         Section 4.2 pattern — stale-write, edge-trigger and
         stale-resync across the three cases. *)
      Alcotest.(check string)
        (id ^ " anti-pattern")
        (Diagnosis.Diagnose.anti_pattern_of_pattern case.Sieve.Bugs.pattern)
        s.Diagnosis.Card.anti_pattern;
      Alcotest.(check int) (id ^ " hazard severity") g.hb_severity s.Diagnosis.Card.hazard_severity;
      Alcotest.(check bool)
        (id ^ " hazard reason named")
        g.hb_reason_named
        (s.Diagnosis.Card.hazard_reason <> "");
      let chain = card.Diagnosis.Card.chain in
      Alcotest.(check bool)
        (id ^ " chain anchored")
        true
        (chain.Diagnosis.Card.anchor > 0 && chain.Diagnosis.Card.length >= 1);
      match Diagnosis.Card.validate (Diagnosis.Card.to_json card) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: card fails schema validation: %s" id e)
    (Sieve.Bugs.hbase ())

let minimized_plan_embedded () =
  let case = Sieve.Bugs.k8s_56261 () in
  let _, card = Diagnosis.Diagnose.diagnose_case ~minimize_budget:8 case in
  match card with
  | Some c -> (
      match c.Diagnosis.Card.minimized_plan with
      | Some p -> Alcotest.(check bool) "minimized plan non-empty" true (p <> "")
      | None -> Alcotest.fail "minimize budget given but no minimized plan embedded")
  | None -> Alcotest.fail "no card produced"

(* --- card schema --------------------------------------------------- *)

let sample_card =
  {
    Diagnosis.Card.bug = "CA-400";
    violation = "wrong decommission";
    test = "t";
    seed = 7;
    divergence =
      {
        Diagnosis.Card.kind = "skip";
        rev = 19;
        stream = "cassop#pods/";
        component = "cassop";
        key = "pods/cass-3";
        frontier = 18;
        event = Some "@19 create pods/cass-3";
        trace_id = Some 136;
        detail = "skipped";
      };
    suspect =
      {
        Diagnosis.Card.component = "cassop";
        read_site = "pods/";
        anti_pattern = "stale-write";
        hazard_severity = 3;
        hazard_reason = "destructive write through cached view";
      };
    chain = { Diagnosis.Card.anchor = 200; length = 5; commits = 2; truncated = false };
    taint_path =
      Some
        [
          "source cassandra_operator.ml:63 cached view read (State.fold) [cached-view]";
          "sink cassandra_operator.ml:84 Messages.delete [destructive write]";
          "missing guard: quorum re-read of the acted-on keys";
        ];
    plan = "[drop ...]";
    minimized_plan = None;
  }

let validate_accepts_and_rejects () =
  (match Diagnosis.Card.validate (Diagnosis.Card.to_json sample_card) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "well-formed card rejected: %s" e);
  let bad_pattern =
    {
      sample_card with
      Diagnosis.Card.suspect =
        { sample_card.Diagnosis.Card.suspect with Diagnosis.Card.anti_pattern = "bogus" };
    }
  in
  (match Diagnosis.Card.validate (Diagnosis.Card.to_json bad_pattern) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown anti-pattern class accepted");
  let bad_kind =
    {
      sample_card with
      Diagnosis.Card.divergence =
        { sample_card.Diagnosis.Card.divergence with Diagnosis.Card.kind = "sideways" };
    }
  in
  (match Diagnosis.Card.validate (Diagnosis.Card.to_json bad_kind) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown divergence kind accepted");
  (* taint_path is optional (absent or null is fine) but typed. *)
  let with_taint_path v =
    match Diagnosis.Card.to_json sample_card with
    | Dsim.Json.Obj fields ->
        Dsim.Json.Obj
          (List.map (function "taint_path", _ -> ("taint_path", v) | kv -> kv) fields)
    | j -> j
  in
  (match Diagnosis.Card.validate (with_taint_path Dsim.Json.Null) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "null taint_path rejected: %s" e);
  (match Diagnosis.Card.validate (with_taint_path (Dsim.Json.Int 3)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-list taint_path accepted");
  match Diagnosis.Card.validate (Dsim.Json.Obj [ ("schema", Dsim.Json.String "nope/1") ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong schema tag accepted"

(* --- conformance-violation anchors (monitor-only trips) ------------ *)

let conformance_anchor () =
  let test =
    Sieve.Runner.base_test ~config:Kube.Cluster.default_config
      ~workload:(Kube.Workload.pod_churn ~n:2 ())
      ~horizon:3_000_000 Sieve.Strategy.No_perturbation
  in
  let outcome = Sieve.Runner.run_test ~check_conformance:true test in
  Alcotest.(check bool)
    "clean run has no anchor" true
    (Sieve.Runner.violation_entry outcome = None);
  Alcotest.(check int) "clean run has no chain" 0 (List.length (Sieve.Runner.causal_chain outcome));
  (* Forge a monitor trip the way Hooks records one, caused by a real
     commit — the anchor fallback must pick it up and the walk must
     reach the commit. *)
  let trace = Kube.Cluster.trace (Sieve.Runner.kube_cluster outcome) in
  let commit =
    match Dsim.Trace.find_all trace ~kind:"etcd.commit" with
    | e :: _ -> e
    | [] -> Alcotest.fail "reference run committed nothing"
  in
  let engine = Kube.Cluster.engine (Sieve.Runner.kube_cluster outcome) in
  Dsim.Engine.record ~cause:commit.Dsim.Trace.id engine ~actor:"conformance"
    ~kind:"conformance.violation" "future_rev: view claimed a revision the store never reached";
  match Sieve.Runner.violation_entry outcome with
  | None -> Alcotest.fail "conformance violation must anchor the walk"
  | Some e ->
      Alcotest.(check string) "anchor kind" "conformance.violation" e.Dsim.Trace.kind;
      let chain = Sieve.Runner.causal_chain outcome in
      Alcotest.(check bool) "chain walked" true (List.length chain >= 2);
      Alcotest.(check bool) "chain reaches the causing commit" true
        (List.exists (fun (c : Dsim.Trace.entry) -> c.Dsim.Trace.id = commit.Dsim.Trace.id) chain);
      (match List.rev chain with
      | last :: _ -> Alcotest.(check int) "chain ends at the anchor" e.Dsim.Trace.id last.Dsim.Trace.id
      | [] -> Alcotest.fail "empty chain")

(* --- determinism under the flag ------------------------------------ *)

let trace_invariant_under_diagnose () =
  List.iter
    (fun (case : Sieve.Bugs.case) ->
      let test = Sieve.Bugs.test_of_case case in
      let off = Sieve.Runner.run_test test in
      let on1 = Sieve.Runner.run_test ~diagnose:true test in
      Alcotest.(check string)
        (case.Sieve.Bugs.id ^ ": diagnose flag preserves trace bytes")
        (Sieve.Runner.trace_jsonl off) (Sieve.Runner.trace_jsonl on1);
      (* no monitor, no card *)
      Alcotest.(check bool)
        (case.Sieve.Bugs.id ^ ": undiagnosed run yields no card")
        true
        (Diagnosis.Diagnose.of_outcome off = None))
    [ Sieve.Bugs.ca_400 (); Sieve.Bugs.k8s_59848 () ]

let campaign ?(diagnose = false) ~out () =
  Hunt.Campaign.run ~jobs:1 ~out ~budget:32 ~seed:42L ~minimize_budget:0 ~diagnose
    ~cases:[ Sieve.Bugs.ca_398 () ] ()

let hunt_bytes_invariant_under_diagnose () =
  mkdir_if_missing "_diagnosis_test";
  let base = campaign ~out:"_diagnosis_test/off" () in
  let diag = campaign ~diagnose:true ~out:"_diagnosis_test/on" () in
  Alcotest.(check string) "flag does not change journal bytes"
    (read_file "_diagnosis_test/off/journal.jsonl")
    (read_file "_diagnosis_test/on/journal.jsonl");
  let fingerprint (s : Hunt.Campaign.summary) =
    List.map
      (fun (f : Hunt.Campaign.finding) -> (f.Hunt.Campaign.signature, f.Hunt.Campaign.trial))
      s.Hunt.Campaign.findings
  in
  Alcotest.(check bool) "same findings" true (fingerprint base = fingerprint diag);
  Alcotest.(check bool) "campaign found something" true (diag.Hunt.Campaign.findings <> []);
  Alcotest.(check int) "no cards without the flag" 0 base.Hunt.Campaign.cards;
  Alcotest.(check int) "one card per finding"
    (List.length diag.Hunt.Campaign.findings)
    diag.Hunt.Campaign.cards;
  List.iter
    (fun (f : Hunt.Campaign.finding) ->
      let dir = "/findings/" ^ Hunt.Signature.to_dirname f.Hunt.Campaign.signature in
      (* artifacts stay byte-identical: the card is a separate file *)
      List.iter
        (fun file ->
          Alcotest.(check string)
            (file ^ " bytes unchanged by the flag")
            (read_file ("_diagnosis_test/off" ^ dir ^ "/" ^ file))
            (read_file ("_diagnosis_test/on" ^ dir ^ "/" ^ file)))
        [ "artifact.json"; "finding.json" ];
      let card_path = "_diagnosis_test/on" ^ dir ^ "/card.json" in
      Alcotest.(check bool) "card.json emitted" true (Sys.file_exists card_path);
      Alcotest.(check bool) "no card without the flag" false
        (Sys.file_exists ("_diagnosis_test/off" ^ dir ^ "/card.json"));
      match Dsim.Json.parse (read_file card_path) with
      | Error e -> Alcotest.failf "card.json unparseable: %s" e
      | Ok j -> (
          match Diagnosis.Card.validate j with
          | Ok () -> ()
          | Error e -> Alcotest.failf "emitted card fails schema validation: %s" e))
    diag.Hunt.Campaign.findings

(* --- metrics and artifact embedding -------------------------------- *)

let diagnosis_metrics () =
  let outcome, card = Diagnosis.Diagnose.diagnose_case (Sieve.Bugs.k8s_56261 ()) in
  Alcotest.(check bool) "card produced" true (card <> None);
  let m = Kube.Cluster.metrics (Sieve.Runner.kube_cluster outcome) in
  Alcotest.(check int) "one card counted" 1 (Dsim.Metrics.count m "diagnosis.cards");
  Alcotest.(check bool) "walk depth sampled" true
    (Dsim.Metrics.samples m "diagnosis.walk.depth" > 0);
  Alcotest.(check int) "chain complete" 0 (Dsim.Metrics.count m "diagnosis.chain.truncated")

let artifact_embeds_card () =
  let case = Sieve.Bugs.ca_402 () in
  let outcome = Sieve.Runner.run_test ~diagnose:true (Sieve.Bugs.test_of_case case) in
  let j = Diagnosis.Diagnose.artifact ~target:case.Sieve.Bugs.matches outcome in
  (match Dsim.Json.member "diagnosis" j with
  | None -> Alcotest.fail "artifact lacks the diagnosis section"
  | Some cj -> (
      match Diagnosis.Card.validate cj with
      | Ok () -> ()
      | Error e -> Alcotest.failf "embedded card fails schema validation: %s" e));
  (* counters are recorded before the snapshot, so the same artifact's
     metrics section already carries them *)
  Alcotest.(check bool) "metrics snapshot carries the counters" true
    (let s = Dsim.Json.to_string j in
     let needle = "diagnosis.cards" in
     let n = String.length s and m = String.length needle in
     let rec scan i = i + m <= n && (String.sub s i m = needle || scan (i + 1)) in
     scan 0)

let suites =
  [
    ( "diagnosis",
      [
        Alcotest.test_case "golden cards over the corpus" `Slow golden_cards;
        Alcotest.test_case "golden cards over the hbase corpus" `Slow hbase_golden_cards;
        Alcotest.test_case "minimized plan embedded" `Slow minimized_plan_embedded;
        Alcotest.test_case "card schema validation" `Quick validate_accepts_and_rejects;
        Alcotest.test_case "conformance violations anchor the walk" `Slow conformance_anchor;
        Alcotest.test_case "diagnose flag preserves traces" `Slow trace_invariant_under_diagnose;
        Alcotest.test_case "hunt journal invariant under diagnose" `Slow
          hunt_bytes_invariant_under_diagnose;
        Alcotest.test_case "diagnosis metrics counters" `Slow diagnosis_metrics;
        Alcotest.test_case "artifact embeds card and counters" `Slow artifact_embeds_card;
      ] );
  ]
