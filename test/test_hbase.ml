(* The second infrastructure: ZooKeeper-style ensemble + HBase-style
   master and region servers. Same partial-history patterns, different
   system — the paper's generality claim. *)

let setup ?(replication_lag = 10_000) ?(sync_before_cas = false) ?(relookup = false)
    ?(servers = 2) () =
  let engine = Dsim.Engine.create ~seed:13L () in
  let net = Dsim.Network.create engine in
  let zk = Hbaselike.Zk.create ~net ~replication_lag () in
  let master =
    Hbaselike.Master.create ~net ~name:"master-1" ~zk
      ~regions:[ "r1"; "r2"; "r3"; "r4" ] ~sync_before_cas ()
  in
  let region_servers =
    List.init servers (fun i ->
        Hbaselike.Regionserver.create ~net
          ~name:(Printf.sprintf "rs-%d" (i + 1))
          ~zk ~relookup_on_failure:relookup ())
  in
  Hbaselike.Master.start master;
  List.iter Hbaselike.Regionserver.start region_servers;
  (engine, net, zk, master, region_servers)

let run_to engine t = Dsim.Engine.run ~until:t engine

let zk_replicates_with_lag () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let zk = Hbaselike.Zk.create ~net ~replication_lag:50_000 () in
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  let done_ = ref false in
  Hbaselike.Zk.write zk ~src:"client" ~key:"a" "1" (fun _ -> done_ := true);
  Dsim.Engine.run ~until:10_000 engine;
  Alcotest.(check bool) "written" true !done_;
  (* Follower still behind before the lag elapses... *)
  Alcotest.(check int) "replica behind" 0 (Hbaselike.Zk.follower_rev zk);
  Dsim.Engine.run ~until:100_000 engine;
  Alcotest.(check int) "replica caught up" 1 (Hbaselike.Zk.follower_rev zk)

let zk_sync_read_is_fresh () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let zk = Hbaselike.Zk.create ~net ~replication_lag:500_000 () in
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  Hbaselike.Zk.write zk ~src:"client" ~key:"a" "1" (fun _ -> ());
  Dsim.Engine.run ~until:20_000 engine;
  let stale = ref None and fresh = ref None in
  Hbaselike.Zk.read zk ~src:"client" "a" (function
    | Ok (v, _) -> stale := Some v
    | Error _ -> ());
  Hbaselike.Zk.read zk ~src:"client" ~sync:true "a" (function
    | Ok (v, _) -> fresh := Some v
    | Error _ -> ());
  Dsim.Engine.run ~until:100_000 engine;
  Alcotest.(check (option (option string))) "cached read misses" (Some None) !stale;
  Alcotest.(check (option (option string))) "synced read sees it" (Some (Some "1")) !fresh

(* Regression: a sync pull from below the leader's compaction frontier
   used to be answered with an empty event list, so the lagging follower
   concluded it was caught up and served stale (here: empty) state. The
   leader must answer with a snapshot, and the follower must resync.
   Parameterized over the leader hub's fan-out order: the replication
   stream and the watch notifier share the dispatch hub, and semantics
   must not depend on which subscriber sees a commit first. *)
let zk_compaction_pull_forces_resync ~hub_order () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  (* Replication lag far beyond the test horizon: the follower only ever
     catches up through sync pulls. *)
  let zk =
    Hbaselike.Zk.create ~net ~replication_lag:100_000_000 ~compaction_window:2 ~hub_order ()
  in
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  for i = 1 to 6 do
    Hbaselike.Zk.write zk ~src:"client" ~key:(Printf.sprintf "k%d" i)
      (Printf.sprintf "v%d" i)
      (fun _ -> ())
  done;
  Dsim.Engine.run ~until:50_000 engine;
  Alcotest.(check int) "follower has applied nothing" 0 (Hbaselike.Zk.follower_rev zk);
  let synced = ref None in
  (* k1's event is compacted away at the leader (window 2 keeps only the
     last two), so event catch-up cannot reconstruct it. *)
  Hbaselike.Zk.read zk ~src:"client" ~sync:true "k1" (function
    | Ok (v, _) -> synced := Some v
    | Error _ -> ());
  Dsim.Engine.run ~until:150_000 engine;
  Alcotest.(check (option (option string)))
    "sync read past compaction serves the snapshot value" (Some (Some "v1")) !synced;
  Alcotest.(check int) "exactly one full resync" 1 (Hbaselike.Zk.follower_resyncs zk);
  (* Now genuinely caught up: the next sync pull is an ordinary
     event-stream catch-up, not another state transfer. *)
  let again = ref None in
  Hbaselike.Zk.read zk ~src:"client" ~sync:true "k6" (function
    | Ok (v, _) -> again := Some v
    | Error _ -> ());
  Dsim.Engine.run ~until:300_000 engine;
  Alcotest.(check (option (option string))) "subsequent sync read fresh" (Some (Some "v6")) !again;
  Alcotest.(check int) "no second resync" 1 (Hbaselike.Zk.follower_resyncs zk)

let zk_cas_guards () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let zk = Hbaselike.Zk.create ~net () in
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  Hbaselike.Zk.write zk ~src:"client" ~key:"a" "1" (fun _ -> ());
  Dsim.Engine.run ~until:20_000 engine;
  let stale_cas = ref None and fresh_cas = ref None in
  Hbaselike.Zk.cas zk ~src:"client" ~key:"a" ~expected_mod_rev:0 (Some "2") (function
    | Ok ok -> stale_cas := Some ok
    | Error _ -> ());
  Hbaselike.Zk.cas zk ~src:"client" ~key:"a" ~expected_mod_rev:1 (Some "2") (function
    | Ok ok -> fresh_cas := Some ok
    | Error _ -> ());
  Dsim.Engine.run ~until:100_000 engine;
  Alcotest.(check (option bool)) "stale rejected" (Some false) !stale_cas;
  Alcotest.(check (option bool)) "fresh accepted" (Some true) !fresh_cas

let master_assigns_all_regions () =
  let engine, _, zk, master, _ = setup () in
  run_to engine 3_000_000;
  let kv = Hbaselike.Zk.leader_kv zk in
  List.iter
    (fun region ->
      match Etcdlike.Kv.get kv ("region/" ^ region) with
      | Some (server, _) ->
          Alcotest.(check bool) (region ^ " on a live server") true
            (List.mem server [ "rs-1"; "rs-2" ])
      | None -> Alcotest.fail (region ^ " unassigned"))
    [ "r1"; "r2"; "r3"; "r4" ];
  Alcotest.(check bool) "some transitions happened" true (Hbaselike.Master.transitions master >= 4)

let hbase_3136_stale_cas_failures () =
  (* High replication lag + no sync: region transitions keep CASing
     against stale reads and fail; with sync-before-CAS they succeed at
     the cost of extra leader traffic (HBASE-3137). *)
  let failures_with ~sync =
    let engine, _, zk, master, _ = setup ~replication_lag:400_000 ~sync_before_cas:sync () in
    run_to engine 6_000_000;
    (Hbaselike.Master.cas_failures master, Hbaselike.Master.transitions master,
     Hbaselike.Zk.leader_ops zk)
  in
  let buggy_failures, buggy_transitions, buggy_load = failures_with ~sync:false in
  let fixed_failures, fixed_transitions, fixed_load = failures_with ~sync:true in
  Alcotest.(check bool)
    (Printf.sprintf "stale CAS fails often (%d failures)" buggy_failures)
    true (buggy_failures > 5);
  Alcotest.(check bool) "fixed mode converges" true (fixed_transitions >= 4);
  Alcotest.(check bool)
    (Printf.sprintf "fixed mode barely fails (%d vs %d)" fixed_failures buggy_failures)
    true
    (fixed_failures * 3 < buggy_failures);
  Alcotest.(check bool)
    (Printf.sprintf "3137 regression: leader load %d -> %d" buggy_load fixed_load)
    true (fixed_load > buggy_load);
  Alcotest.(check bool) "buggy mode still eventually assigns" true (buggy_transitions >= 4)

let hbase_5755_stale_master_cache () =
  let engine, net, zk, _, region_servers = setup ~servers:1 () in
  run_to engine 2_000_000;
  let rs = List.hd region_servers in
  Alcotest.(check (option string)) "found master-1" (Some "master-1")
    (Hbaselike.Regionserver.cached_master rs);
  (* Fail the master over: master-1 dies, master-2 takes its place and
     publishes itself in ZooKeeper. *)
  Dsim.Network.crash net "master-1";
  let master2 =
    Hbaselike.Master.create ~net ~name:"master-2" ~zk ~regions:[ "r1"; "r2"; "r3"; "r4" ] ()
  in
  Hbaselike.Master.start master2;
  run_to engine 8_000_000;
  (* The bug: the cached address is never re-resolved; the server hammers
     the corpse forever. *)
  Alcotest.(check (option string)) "still pointing at the corpse" (Some "master-1")
    (Hbaselike.Regionserver.cached_master rs);
  Alcotest.(check bool)
    (Printf.sprintf "looking for master forever (%d consecutive failures)"
       (Hbaselike.Regionserver.consecutive_failures rs))
    true
    (Hbaselike.Regionserver.consecutive_failures rs > 10)

let hbase_5755_fix_relookup () =
  let engine, net, zk, _, region_servers = setup ~servers:1 ~relookup:true () in
  run_to engine 2_000_000;
  let rs = List.hd region_servers in
  Dsim.Network.crash net "master-1";
  let master2 =
    Hbaselike.Master.create ~net ~name:"master-2" ~zk ~regions:[ "r1"; "r2"; "r3"; "r4" ] ()
  in
  Hbaselike.Master.start master2;
  run_to engine 8_000_000;
  Alcotest.(check (option string)) "re-resolved to master-2" (Some "master-2")
    (Hbaselike.Regionserver.cached_master rs);
  Alcotest.(check int) "heartbeats flowing again" 0
    (Hbaselike.Regionserver.consecutive_failures rs)

(* --- qcheck differential: Zk op programs vs the sequential model ----

   Random client programs — writes, guarded CAS (fresh and deliberately
   stale), deletes, follower reads (cached and sync), one-shot watch
   arms — run against the fixed-era stack ([follower_leader_revs], so
   read revisions live in the leader's numbering) and are checked
   op-by-op against {!Conformance.Model}, the pure sequential reference.
   Each op quiesces before the next, which is what makes the sequential
   model exact. The conformance monitor mirrors the leader's commits the
   whole time and must stay silent: the fixed era has no partial-history
   defect for it to find.

   Two replication regimes: [`Streamed] (short lag, no compaction — the
   follower catches up through the event stream) and [`Pulled] (lag
   beyond the horizon plus an aggressive compaction window — the
   follower catches up only through sync pulls, routinely crossing the
   compaction frontier and forcing full-state resyncs). *)

let run_zk_program ~regime ops =
  let engine = Dsim.Engine.create ~seed:7L () in
  let net = Dsim.Network.create engine in
  let zk =
    match regime with
    | `Streamed -> Hbaselike.Zk.create ~net ~replication_lag:10_000 ~follower_leader_revs:true ()
    | `Pulled ->
        Hbaselike.Zk.create ~net ~replication_lag:100_000_000 ~compaction_window:3
          ~follower_leader_revs:true ()
  in
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  let monitor =
    Conformance.Monitor.create ~track_divergence:false ~on_violation:(fun _ -> ()) ()
  in
  Etcdlike.Kv.on_commit (Hbaselike.Zk.leader_kv zk) (Conformance.Monitor.note_commit monitor);
  let stream = Hbaselike.Zk.follower zk ^ "<-" ^ Hbaselike.Zk.leader zk in
  Hbaselike.Zk.on_follower_apply zk (fun e ->
      Conformance.Monitor.observe_event monitor ~stream e);
  Hbaselike.Zk.on_follower_resync zk (fun rev ->
      Conformance.Monitor.observe_reset monitor ~stream ~rev (Hbaselike.Zk.observed_state zk));
  let model = ref Conformance.Model.empty in
  let agreed = ref true in
  let now = ref 0 in
  let quiesce () =
    now := !now + 50_000;
    Dsim.Engine.run ~until:!now engine
  in
  let vc = ref 0 in
  let fresh_value () =
    incr vc;
    Printf.sprintf "v%d" !vc
  in
  let expect_read key =
    match Conformance.Model.get !model key with Some (v, r) -> (Some v, r) | None -> (None, 0)
  in
  List.iter
    (fun (kind, k) ->
      let key = Printf.sprintf "k%d" k in
      match kind with
      | 0 ->
          let v = fresh_value () in
          let replied = ref false in
          Hbaselike.Zk.write zk ~src:"client" ~key v (fun r -> replied := r = Ok ());
          model := fst (Conformance.Model.put !model key v);
          quiesce ();
          if not !replied then agreed := false
      | (1 | 2 | 3) as c ->
          (* CAS: fresh put, stale put (guard must reject), fresh delete. *)
          let current = match Conformance.Model.get !model key with Some (_, r) -> r | None -> 0 in
          let expected = if c = 2 then current + 1 else current in
          let value = if c = 3 then None else Some (fresh_value ()) in
          let replied = ref None in
          Hbaselike.Zk.cas zk ~src:"client" ~key ~expected_mod_rev:expected value (fun r ->
              replied := Some r);
          let txn =
            match value with
            | Some v -> Etcdlike.Txn.put_if_unchanged ~key ~expected_mod_rev:expected v
            | None -> Etcdlike.Txn.delete_if_unchanged ~key ~expected_mod_rev:expected
          in
          let m, outcome = Conformance.Model.txn !model txn in
          model := m;
          quiesce ();
          if !replied <> Some (Ok outcome.Etcdlike.Txn.succeeded) then agreed := false;
          if c = 2 && outcome.Etcdlike.Txn.succeeded then agreed := false
      | (4 | 5) as c ->
          (* Follower read. Under [`Pulled] only sync reads are modelable
             (a cached read is honestly stale there — the monitor's
             territory, not the sequential model's). *)
          let sync = c = 5 || regime = `Pulled in
          let replied = ref None in
          Hbaselike.Zk.read zk ~src:"client" ~sync key (fun r -> replied := Some r);
          quiesce ();
          if !replied <> Some (Ok (expect_read key)) then agreed := false
      | _ ->
          (* getData(watch=true): the arm reply carries the leader's
             current value and per-key mod-revision. *)
          let replied = ref None in
          Hbaselike.Zk.arm_watch zk ~src:"client" key (fun r -> replied := Some r);
          quiesce ();
          if !replied <> Some (Ok (expect_read key)) then agreed := false)
    ops;
  (* Force a final catch-up so the replica's terminal state is checkable
     under both regimes, then compare every observable. *)
  let final = ref None in
  Hbaselike.Zk.read zk ~src:"client" ~sync:true "k0" (fun r -> final := Some r);
  quiesce ();
  if !final <> Some (Ok (expect_read "k0")) then agreed := false;
  let leader_ok =
    History.State.bindings (Etcdlike.Kv.state (Hbaselike.Zk.leader_kv zk))
    = Conformance.Model.bindings !model
    && Etcdlike.Kv.rev (Hbaselike.Zk.leader_kv zk) = Conformance.Model.rev !model
  in
  (* Follower bindings compare value-by-value: its revision column is
     local numbering by design (the fl_revs side-table is what serves
     leader revisions to readers). *)
  let follower_ok =
    List.map (fun (k, (v, _)) -> (k, v))
      (History.State.bindings (Etcdlike.Kv.state (Hbaselike.Zk.follower_kv zk)))
    = List.map (fun (k, (v, _)) -> (k, v)) (Conformance.Model.bindings !model)
    && Hbaselike.Zk.follower_caught_up_to zk = Conformance.Model.rev !model
  in
  Conformance.Monitor.check_state monitor
    ~subject:(Hbaselike.Zk.follower zk)
    ~rev:(Hbaselike.Zk.follower_caught_up_to zk)
    (Hbaselike.Zk.observed_state zk);
  let silent = Conformance.Monitor.violations monitor = [] in
  !agreed && leader_ok && follower_ok && silent

let gen_zk_program = QCheck.(list_of_size Gen.(1 -- 25) (pair (int_bound 6) (int_bound 3)))

let qcheck_zk_streamed_agrees_with_model =
  QCheck.Test.make ~name:"zk op programs agree with the sequential model (streamed)" ~count:60
    gen_zk_program
    (fun ops -> run_zk_program ~regime:`Streamed ops)

let qcheck_zk_pulled_agrees_with_model =
  QCheck.Test.make ~name:"zk op programs agree with the sequential model (pulled, resyncs)"
    ~count:60 gen_zk_program
    (fun ops -> run_zk_program ~regime:`Pulled ops)

let suites =
  [
    ( "hbase",
      [
        Alcotest.test_case "zk replicates with lag" `Quick zk_replicates_with_lag;
        Alcotest.test_case "zk sync read is fresh" `Quick zk_sync_read_is_fresh;
        Alcotest.test_case "zk compaction pull forces resync (replication-first hub)" `Quick
          (zk_compaction_pull_forces_resync ~hub_order:Hbaselike.Zk.Replication_first);
        Alcotest.test_case "zk compaction pull forces resync (watches-first hub)" `Quick
          (zk_compaction_pull_forces_resync ~hub_order:Hbaselike.Zk.Watches_first);
        Qcheck_util.to_alcotest qcheck_zk_streamed_agrees_with_model;
        Qcheck_util.to_alcotest qcheck_zk_pulled_agrees_with_model;
        Alcotest.test_case "zk cas guards" `Quick zk_cas_guards;
        Alcotest.test_case "master assigns all regions" `Quick master_assigns_all_regions;
        Alcotest.test_case "HBASE-3136: stale CAS failures (+3137 cost)" `Quick
          hbase_3136_stale_cas_failures;
        Alcotest.test_case "HBASE-5755: stale master cache loops forever" `Quick
          hbase_5755_stale_master_cache;
        Alcotest.test_case "HBASE-5755 fix: re-lookup on failure" `Quick hbase_5755_fix_relookup;
      ] );
  ]
