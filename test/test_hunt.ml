(* Test the hunt campaign engine: journal crash-safety, ordered
   fan-out, cross-job determinism, resume convergence, and finding
   deduplication. *)

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let mkdir_if_missing path = if not (Sys.file_exists path) then Sys.mkdir path 0o755

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* --- journal ------------------------------------------------------- *)

let sample_entries =
  [
    Hunt.Journal.Header { version = 1; seed = 42L; trials = 3; cases = [ "CA-398" ] };
    Hunt.Journal.Trial
      {
        trial = 0;
        case = "CA-398";
        origin = "planner#4";
        seed = -6180651882152404686L;
        strategy = "drop *->volumectl pvcs/vol-0/create in [903,8000]ms";
        violations =
          [
            {
              Hunt.Journal.time = 5_600_000;
              bug = "CA-398";
              signature = "CA-398/volumectl/leak:vol-0";
              detail = "pvc vol-0 never released";
            };
          ];
      };
    Hunt.Journal.Finding
      {
        signature = "CA-398/volumectl/leak:vol-0";
        trial = 0;
        case = "CA-398";
        time = 5_600_000;
        bug = "CA-398";
        detail = "pvc vol-0 never released";
        strategy = "drop *->volumectl pvcs/vol-0/create in [903,8000]ms";
        minimized = "drop *->volumectl pvcs/vol-0/create (first 1) in [903,1014]ms";
        shrink_runs = 8;
      };
  ]

let journal_roundtrip () =
  List.iter
    (fun entry ->
      match Hunt.Journal.entry_of_json (Hunt.Journal.entry_to_json entry) with
      | Some back -> Alcotest.(check bool) "roundtrips" true (back = entry)
      | None -> Alcotest.fail "entry failed to decode")
    sample_entries

let journal_tolerates_torn_tail () =
  mkdir_if_missing "_hunt_test";
  let path = "_hunt_test/torn.jsonl" in
  let writer = Hunt.Journal.create ~path in
  List.iter (Hunt.Journal.append writer) sample_entries;
  Hunt.Journal.close writer;
  let clean = read_file path in
  (* A crash mid-append leaves a record without its newline: the loader
     must keep everything before it and report the clean byte length. *)
  write_file path (clean ^ {|{"trial":99,"case":"CA-398","ori|});
  let entries, valid = Hunt.Journal.load path in
  Alcotest.(check int) "all clean records survive" (List.length sample_entries)
    (List.length entries);
  Alcotest.(check int) "valid length excludes the torn tail" (String.length clean) valid;
  Alcotest.(check bool) "records intact" true (entries = sample_entries);
  (* open_resume cuts the torn tail off the file itself, so appends land
     exactly where an uninterrupted run would have put them. *)
  let resumed, writer = Hunt.Journal.open_resume ~path in
  Hunt.Journal.close writer;
  Alcotest.(check bool) "resume sees the clean prefix" true (resumed = sample_entries);
  Alcotest.(check string) "file truncated to the clean prefix" clean (read_file path);
  (* A missing file is an empty journal, not an error. *)
  let entries, valid = Hunt.Journal.load "_hunt_test/does-not-exist.jsonl" in
  Alcotest.(check bool) "missing file is empty" true (entries = [] && valid = 0)

(* --- pool ---------------------------------------------------------- *)

let pool_emits_in_order () =
  let tasks = Array.init 100 (fun i -> i) in
  let emitted = ref [] in
  Hunt.Pool.map_ordered ~jobs:4 ~tasks
    ~f:(fun i task ->
      (* Uneven work so completion order differs from task order. *)
      let spin = if i mod 7 = 0 then 40_000 else 200 in
      let acc = ref 0 in
      for _ = 1 to spin do
        incr acc
      done;
      ignore !acc;
      task * task)
    ~emit:(fun i result -> emitted := (i, result) :: !emitted);
  let emitted = List.rev !emitted in
  Alcotest.(check int) "every task emitted" 100 (List.length emitted);
  List.iteri
    (fun expect (i, result) ->
      Alcotest.(check int) "emit order is task order" expect i;
      Alcotest.(check int) "result matches task" (expect * expect) result)
    emitted

let pool_propagates_exceptions () =
  let tasks = Array.init 8 (fun i -> i) in
  match
    Hunt.Pool.map_ordered ~jobs:3 ~tasks
      ~f:(fun _ task -> if task = 5 then failwith "boom" else task)
      ~emit:(fun _ _ -> ())
  with
  | () -> Alcotest.fail "expected the worker's exception"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

(* --- campaign ------------------------------------------------------ *)

let campaign ?(jobs = 1) ?(resume = false) ~out () =
  Hunt.Campaign.run ~jobs ~out ~resume ~budget:32 ~seed:42L ~minimize_budget:12
    ~cases:[ Sieve.Bugs.ca_398 () ] ()

let findings_fingerprint (summary : Hunt.Campaign.summary) =
  List.map
    (fun (f : Hunt.Campaign.finding) -> (f.signature, f.trial, f.minimized, f.shrink_runs))
    summary.Hunt.Campaign.findings

let campaign_deterministic_across_jobs () =
  let sequential = campaign ~jobs:1 ~out:"_hunt_test/det-j1" () in
  let parallel = campaign ~jobs:4 ~out:"_hunt_test/det-j4" () in
  Alcotest.(check string) "byte-identical journals"
    (read_file "_hunt_test/det-j1/journal.jsonl")
    (read_file "_hunt_test/det-j4/journal.jsonl");
  Alcotest.(check bool) "found something" true (sequential.Hunt.Campaign.findings <> []);
  Alcotest.(check bool) "same findings" true
    (findings_fingerprint sequential = findings_fingerprint parallel)

let campaign_resume_converges () =
  let full = campaign ~jobs:2 ~out:"_hunt_test/res-full" () in
  let journal = read_file "_hunt_test/res-full/journal.jsonl" in
  (* Rebuild the first half of the journal plus a torn record, as if the
     campaign had been killed mid-append. *)
  let lines = String.split_on_char '\n' journal in
  let keep = List.filteri (fun i _ -> i < List.length lines / 2) lines in
  mkdir_if_missing "_hunt_test/res-half";
  write_file "_hunt_test/res-half/journal.jsonl"
    (String.concat "\n" keep ^ "\n" ^ {|{"trial":999,"torn|});
  let resumed = campaign ~jobs:2 ~resume:true ~out:"_hunt_test/res-half" () in
  Alcotest.(check bool) "some trials replayed" true (resumed.Hunt.Campaign.replayed > 0);
  Alcotest.(check bool) "some trials executed" true (resumed.Hunt.Campaign.executed > 0);
  Alcotest.(check string) "resumed journal converges byte-for-byte" journal
    (read_file "_hunt_test/res-half/journal.jsonl");
  Alcotest.(check bool) "same findings as the uninterrupted run" true
    (findings_fingerprint full = findings_fingerprint resumed)

let campaign_resume_refuses_foreign_journal () =
  mkdir_if_missing "_hunt_test/res-foreign";
  let writer = Hunt.Journal.create ~path:"_hunt_test/res-foreign/journal.jsonl" in
  Hunt.Journal.append writer
    (Hunt.Journal.Header { version = 1; seed = 7L; trials = 32; cases = [ "CA-398" ] });
  Hunt.Journal.close writer;
  match campaign ~resume:true ~out:"_hunt_test/res-foreign" () with
  | _ -> Alcotest.fail "expected resume to refuse a different campaign's journal"
  | exception Failure msg ->
      Alcotest.(check bool) "clear error" true
        (String.length msg > 0 && String.sub msg 0 4 = "hunt")

let campaign_dedups_findings () =
  let summary = campaign ~out:"_hunt_test/dedup" () in
  let entries, _ = Hunt.Journal.load "_hunt_test/dedup/journal.jsonl" in
  let exposures = Hashtbl.create 8 in
  List.iter
    (function
      | Hunt.Journal.Trial { violations; _ } ->
          List.iter
            (fun (v : Hunt.Journal.violation_record) ->
              Hashtbl.replace exposures v.signature
                (1 + Option.value (Hashtbl.find_opt exposures v.signature) ~default:0))
            violations
      | _ -> ())
    entries;
  let repeated =
    Hashtbl.fold (fun s n acc -> if n >= 2 then s :: acc else acc) exposures []
  in
  Alcotest.(check bool) "a signature is exposed by several trials" true (repeated <> []);
  let signatures =
    List.map (fun (f : Hunt.Campaign.finding) -> f.signature) summary.Hunt.Campaign.findings
  in
  Alcotest.(check bool) "findings list each signature once" true
    (List.sort_uniq compare signatures = List.sort compare signatures);
  List.iter
    (fun s ->
      Alcotest.(check bool) "the repeated signature is a single finding" true
        (List.mem s signatures))
    repeated;
  (* Every finding left an artifact directory behind. *)
  List.iter
    (fun s ->
      let dir = Filename.concat "_hunt_test/dedup/findings" (Hunt.Signature.to_dirname s) in
      Alcotest.(check bool) "artifact emitted" true
        (Sys.file_exists (Filename.concat dir "artifact.json")
        && Sys.file_exists (Filename.concat dir "finding.json")))
    signatures

let suites =
  [
    ( "hunt.journal",
      [
        Alcotest.test_case "entries roundtrip through json" `Quick journal_roundtrip;
        Alcotest.test_case "torn tail tolerated and truncated" `Quick
          journal_tolerates_torn_tail;
      ] );
    ( "hunt.pool",
      [
        Alcotest.test_case "emits in task order" `Quick pool_emits_in_order;
        Alcotest.test_case "propagates worker exceptions" `Quick pool_propagates_exceptions;
      ] );
    ( "hunt.campaign",
      [
        Alcotest.test_case "journal identical across job counts" `Slow
          campaign_deterministic_across_jobs;
        Alcotest.test_case "resume converges on the full run" `Slow campaign_resume_converges;
        Alcotest.test_case "resume refuses a foreign journal" `Quick
          campaign_resume_refuses_foreign_journal;
        Alcotest.test_case "findings dedup by signature" `Slow campaign_dedups_findings;
      ] );
  ]
