(* The committed history log: revisions, since, compaction, state_at. *)

open History

let fill log n =
  for i = 1 to n do
    ignore (Log.append log ~key:(Printf.sprintf "k%d" i) ~op:Event.Create (Some i))
  done

let revisions_dense () =
  let log = Log.create () in
  fill log 5;
  Alcotest.(check int) "rev" 5 (Log.rev log);
  Alcotest.(check (list int)) "dense 1..5" [ 1; 2; 3; 4; 5 ]
    (List.map (fun (e : int Event.t) -> e.Event.rev) (Log.events log))

let state_tracks_events () =
  let log = Log.create () in
  ignore (Log.append log ~key:"a" ~op:Event.Create (Some 1));
  ignore (Log.append log ~key:"a" ~op:Event.Delete None);
  Alcotest.(check bool) "a deleted" false (State.mem (Log.state log) "a");
  Alcotest.(check int) "rev 2" 2 (Log.rev log)

let since_returns_suffix () =
  let log = Log.create () in
  fill log 5;
  match Log.since log ~rev:3 with
  | Ok events ->
      Alcotest.(check (list int)) "revs 4,5" [ 4; 5 ]
        (List.map (fun (e : int Event.t) -> e.Event.rev) events)
  | Error _ -> Alcotest.fail "unexpected compaction"

let since_zero_is_everything () =
  let log = Log.create () in
  fill log 3;
  match Log.since log ~rev:0 with
  | Ok events -> Alcotest.(check int) "all three" 3 (List.length events)
  | Error _ -> Alcotest.fail "unexpected compaction"

let compaction_rejects_old_since () =
  let log = Log.create () in
  fill log 10;
  Log.compact log ~before:6;
  Alcotest.(check int) "compacted_rev" 6 (Log.compacted_rev log);
  Alcotest.(check int) "retained" 4 (Log.length log);
  (match Log.since log ~rev:3 with
  | Error (`Compacted 6) -> ()
  | _ -> Alcotest.fail "expected Compacted 6");
  match Log.since log ~rev:6 with
  | Ok events -> Alcotest.(check int) "boundary ok" 4 (List.length events)
  | Error _ -> Alcotest.fail "rev = compacted_rev must still be servable"

let compact_keep_last () =
  let log = Log.create () in
  fill log 10;
  Log.compact_keep_last log 3;
  Alcotest.(check int) "kept 3" 3 (Log.length log);
  Alcotest.(check int) "compacted at 7" 7 (Log.compacted_rev log)

let state_at_replays () =
  let log = Log.create () in
  ignore (Log.append log ~key:"a" ~op:Event.Create (Some 1));
  ignore (Log.append log ~key:"b" ~op:Event.Create (Some 2));
  ignore (Log.append log ~key:"a" ~op:Event.Delete None);
  (match Log.state_at log ~rev:2 with
  | Some s ->
      Alcotest.(check bool) "a present at rev 2" true (State.mem s "a");
      Alcotest.(check bool) "b present at rev 2" true (State.mem s "b")
  | None -> Alcotest.fail "rev 2 should be reconstructable");
  match Log.state_at log ~rev:3 with
  | Some s -> Alcotest.(check bool) "a gone at rev 3" false (State.mem s "a")
  | None -> Alcotest.fail "rev 3 should be reconstructable"

let state_at_respects_compaction () =
  let log = Log.create () in
  fill log 10;
  Log.compact log ~before:5;
  Alcotest.(check bool) "rev 4 lost" true (Log.state_at log ~rev:4 = None);
  match Log.state_at log ~rev:7 with
  | Some s ->
      (* Snapshot + replay must equal the full-history fold. *)
      Alcotest.(check int) "7 keys live" 7 (State.cardinal s)
  | None -> Alcotest.fail "rev 7 reconstructable from snapshot"

let compact_beyond_head_clamps () =
  let log = Log.create () in
  fill log 3;
  Log.compact log ~before:100;
  Alcotest.(check int) "clamped to head" 3 (Log.compacted_rev log);
  Alcotest.(check int) "nothing retained" 0 (Log.length log);
  Alcotest.(check int) "state survives compaction" 3 (State.cardinal (Log.state log))

let since_at_boundary_is_window () =
  let log = Log.create () in
  fill log 10;
  Log.compact log ~before:6;
  match Log.since log ~rev:6 with
  | Ok events ->
      Alcotest.(check (list int)) "exactly the retained window" [ 7; 8; 9; 10 ]
        (List.map (fun (e : int Event.t) -> e.Event.rev) events);
      Alcotest.(check (list int)) "events = retained window"
        (List.map (fun (e : int Event.t) -> e.Event.rev) (Log.events log))
        (List.map (fun (e : int Event.t) -> e.Event.rev) events)
  | Error _ -> Alcotest.fail "rev = compacted_rev must be servable"

let since_below_boundary_reports_revision () =
  let log = Log.create () in
  fill log 10;
  Log.compact log ~before:7;
  (match Log.since log ~rev:6 with
  | Error (`Compacted 7) -> ()
  | _ -> Alcotest.fail "expected Compacted 7");
  match Log.since log ~rev:0 with
  | Error (`Compacted 7) -> ()
  | _ -> Alcotest.fail "expected Compacted 7 for rev 0"

let state_at_around_boundary () =
  let log = Log.create () in
  fill log 10;
  Log.compact log ~before:5;
  Alcotest.(check bool) "below the boundary is lost" true (Log.state_at log ~rev:4 = None);
  (match Log.state_at log ~rev:5 with
  | Some s -> Alcotest.(check int) "at the boundary: the compaction base" 5 (State.cardinal s)
  | None -> Alcotest.fail "rev = compacted_rev must be reconstructable");
  (match Log.state_at log ~rev:8 with
  | Some s -> Alcotest.(check int) "above the boundary replays forward" 8 (State.cardinal s)
  | None -> Alcotest.fail "rev above the boundary must be reconstructable");
  match Log.state_at log ~rev:99 with
  | Some s -> Alcotest.(check int) "past the head is the live state" 10 (State.cardinal s)
  | None -> Alcotest.fail "past the head must be the live state"

let double_compaction_idempotent () =
  let log = Log.create () in
  fill log 10;
  Log.compact log ~before:6;
  let revs_once = List.map (fun (e : int Event.t) -> e.Event.rev) (Log.events log) in
  Log.compact log ~before:6;
  Log.compact log ~before:3 (* backwards compaction is a no-op *);
  Alcotest.(check int) "compacted_rev unchanged" 6 (Log.compacted_rev log);
  Alcotest.(check int) "length unchanged" 4 (Log.length log);
  Alcotest.(check (list int)) "window unchanged" revs_once
    (List.map (fun (e : int Event.t) -> e.Event.rev) (Log.events log));
  match Log.state_at log ~rev:6 with
  | Some s -> Alcotest.(check int) "base state intact" 6 (State.cardinal s)
  | None -> Alcotest.fail "boundary state must survive re-compaction"

let snapshot_cadence_agrees () =
  (* With a tiny snapshot interval, every reconstruction crosses snapshot
     boundaries; each must equal the full replay. *)
  let log = Log.create ~snapshot_every:3 () in
  for i = 1 to 20 do
    let key = Printf.sprintf "k%d" (i mod 4) in
    let op = if i mod 5 = 0 then Event.Delete else Event.Update in
    ignore (Log.append log ~key ~op (if op = Event.Delete then None else Some i))
  done;
  for rev = 0 to 20 do
    let expected =
      List.fold_left State.apply State.empty
        (List.filter (fun (e : int Event.t) -> e.Event.rev <= rev) (Log.events log))
    in
    match Log.state_at log ~rev with
    | Some s ->
        Alcotest.(check (list (pair string (pair int int))))
          (Printf.sprintf "state_at %d" rev) (State.bindings expected) (State.bindings s)
    | None -> Alcotest.fail "uncompacted revision must be reconstructable"
  done

(* The pre-index implementation, kept as an executable reference model:
   a newest-first list, [since] by full filter, [state_at] by full
   replay, [compact] by partition. *)
module Naive = struct
  type 'v t = {
    mutable events : 'v Event.t list;  (* newest first *)
    mutable rev : int;
    mutable compacted_rev : int;
    mutable base_state : 'v State.t;
  }

  let create () = { events = []; rev = 0; compacted_rev = 0; base_state = State.empty }

  let append t ~key ~op value =
    t.rev <- t.rev + 1;
    t.events <- Event.make ~rev:t.rev ~key ~op value :: t.events

  let events t = List.rev t.events

  let since t ~rev =
    if rev < t.compacted_rev then Error (`Compacted t.compacted_rev)
    else Ok (List.rev (List.filter (fun (e : 'v Event.t) -> e.Event.rev > rev) t.events))

  let state_at t ~rev =
    if rev < t.compacted_rev then None
    else
      Some
        (List.fold_left State.apply t.base_state
           (List.filter (fun (e : 'v Event.t) -> e.Event.rev <= rev) (events t)))

  let compact t ~before =
    let before = min before t.rev in
    if before > t.compacted_rev then begin
      let discarded, kept =
        List.partition (fun (e : 'v Event.t) -> e.Event.rev <= before) (events t)
      in
      t.base_state <- List.fold_left State.apply t.base_state discarded;
      t.events <- List.rev kept;
      t.compacted_rev <- before
    end
end

let qcheck_indexed_agrees_with_naive =
  (* Arbitrary interleavings of appends and compactions: the indexed
     window (with an aggressive snapshot cadence) and the naive
     list/filter model must agree on every observable. *)
  QCheck.Test.make ~name:"indexed log = naive reference model" ~count:200
    QCheck.(list_of_size Gen.(0 -- 40) (pair (int_range 0 9) (int_range 0 60)))
    (fun ops ->
      let log = Log.create ~snapshot_every:3 () in
      let naive = Naive.create () in
      List.iter
        (fun (what, arg) ->
          if what = 9 then begin
            let before = arg mod (Log.rev log + 1) in
            Log.compact log ~before;
            Naive.compact naive ~before
          end
          else begin
            let key = Printf.sprintf "k%d" (arg mod 7) in
            let op =
              match what mod 3 with 0 -> Event.Create | 1 -> Event.Update | _ -> Event.Delete
            in
            let value = if op = Event.Delete then None else Some arg in
            ignore (Log.append log ~key ~op value);
            Naive.append naive ~key ~op value
          end)
        ops;
      let same_events a b =
        List.map (fun (e : int Event.t) -> (e.Event.rev, e.Event.key, e.Event.op, e.Event.value)) a
        = List.map
            (fun (e : int Event.t) -> (e.Event.rev, e.Event.key, e.Event.op, e.Event.value))
            b
      in
      Log.rev log = naive.Naive.rev
      && Log.compacted_rev log = naive.Naive.compacted_rev
      && same_events (Log.events log) (Naive.events naive)
      && List.for_all
           (fun rev ->
             (match Log.since log ~rev, Naive.since naive ~rev with
             | Ok a, Ok b -> same_events a b
             | Error (`Compacted a), Error (`Compacted b) -> a = b
             | _ -> false)
             &&
             match Log.state_at log ~rev, Naive.state_at naive ~rev with
             | Some a, Some b -> State.bindings a = State.bindings b
             | None, None -> true
             | _ -> false)
           (List.init (Log.rev log + 2) Fun.id))

let qcheck_since_partition =
  QCheck.Test.make ~name:"since splits history at rev" ~count:200
    QCheck.(pair (int_range 0 60) (int_range 0 60))
    (fun (n, rev) ->
      let log = Log.create () in
      fill log n;
      match Log.since log ~rev with
      | Ok events -> List.length events = max 0 (n - rev)
      | Error _ -> false)

let suites =
  [
    ( "log",
      [
        Alcotest.test_case "revisions dense" `Quick revisions_dense;
        Alcotest.test_case "state tracks events" `Quick state_tracks_events;
        Alcotest.test_case "since returns suffix" `Quick since_returns_suffix;
        Alcotest.test_case "since zero is everything" `Quick since_zero_is_everything;
        Alcotest.test_case "compaction rejects old since" `Quick compaction_rejects_old_since;
        Alcotest.test_case "compact_keep_last" `Quick compact_keep_last;
        Alcotest.test_case "state_at replays" `Quick state_at_replays;
        Alcotest.test_case "state_at respects compaction" `Quick state_at_respects_compaction;
        Alcotest.test_case "compact beyond head clamps" `Quick compact_beyond_head_clamps;
        Alcotest.test_case "since at boundary is the window" `Quick since_at_boundary_is_window;
        Alcotest.test_case "since below boundary reports revision" `Quick
          since_below_boundary_reports_revision;
        Alcotest.test_case "state_at around the boundary" `Quick state_at_around_boundary;
        Alcotest.test_case "double compaction idempotent" `Quick double_compaction_idempotent;
        Alcotest.test_case "snapshot cadence agrees with replay" `Quick snapshot_cadence_agrees;
        Qcheck_util.to_alcotest qcheck_since_partition;
        Qcheck_util.to_alcotest qcheck_indexed_agrees_with_naive;
      ] );
  ]
