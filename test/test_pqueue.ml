(* Heap ordering, tie-breaking and bulk behaviour of the event queue. *)

let drain q =
  let rec go acc = match Dsim.Pqueue.pop q with None -> List.rev acc | Some e -> go (e :: acc) in
  go []

let empty_queue () =
  let q = Dsim.Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Dsim.Pqueue.is_empty q);
  Alcotest.(check int) "length" 0 (Dsim.Pqueue.length q);
  Alcotest.(check bool) "pop" true (Dsim.Pqueue.pop q = None);
  Alcotest.(check bool) "peek" true (Dsim.Pqueue.peek q = None)

let pops_in_time_order () =
  let q = Dsim.Pqueue.create () in
  List.iteri
    (fun seq time -> Dsim.Pqueue.push q ~time ~seq "x")
    [ 30; 10; 20; 5; 25 ];
  Alcotest.(check (list int)) "times ascend" [ 5; 10; 20; 25; 30 ]
    (List.map (fun (t, _, _) -> t) (drain q))

let ties_break_by_seq () =
  let q = Dsim.Pqueue.create () in
  Dsim.Pqueue.push q ~time:5 ~seq:2 "second";
  Dsim.Pqueue.push q ~time:5 ~seq:1 "first";
  Dsim.Pqueue.push q ~time:5 ~seq:3 "third";
  Alcotest.(check (list string)) "fifo within a timestamp" [ "first"; "second"; "third" ]
    (List.map (fun (_, _, v) -> v) (drain q))

let peek_does_not_remove () =
  let q = Dsim.Pqueue.create () in
  Dsim.Pqueue.push q ~time:1 ~seq:1 "a";
  Alcotest.(check bool) "peek sees it" true (Dsim.Pqueue.peek q <> None);
  Alcotest.(check int) "still there" 1 (Dsim.Pqueue.length q)

let clear_empties () =
  let q = Dsim.Pqueue.create () in
  for i = 1 to 10 do
    Dsim.Pqueue.push q ~time:i ~seq:i i
  done;
  Dsim.Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Dsim.Pqueue.is_empty q)

let interleaved_push_pop () =
  let q = Dsim.Pqueue.create () in
  Dsim.Pqueue.push q ~time:10 ~seq:1 "b";
  Dsim.Pqueue.push q ~time:5 ~seq:2 "a";
  (match Dsim.Pqueue.pop q with
  | Some (5, _, "a") -> ()
  | _ -> Alcotest.fail "expected (5, a)");
  Dsim.Pqueue.push q ~time:1 ~seq:3 "c";
  match Dsim.Pqueue.pop q with
  | Some (1, _, "c") -> ()
  | _ -> Alcotest.fail "expected (1, c)"

let popped_value_is_collectable () =
  (* A popped entry must not stay referenced from the heap's backing
     array (neither its own slot nor the duplicate left by moving the
     tail to the root), or arbitrarily large closures stay pinned for a
     whole trial. The weak pointer sees the popped payload die while the
     queue itself is still live. *)
  let q = Dsim.Pqueue.create () in
  let weak = Weak.create 1 in
  Dsim.Pqueue.push q ~time:1 ~seq:1 (Bytes.make 64 'x');
  Dsim.Pqueue.push q ~time:2 ~seq:2 (Bytes.make 64 'y');
  Dsim.Pqueue.push q ~time:3 ~seq:3 (Bytes.make 64 'z');
  (match Dsim.Pqueue.pop q with
  | Some (_, _, v) -> Weak.set weak 0 (Some v)
  | None -> Alcotest.fail "expected a value");
  Gc.full_major ();
  let still_pinned = Weak.check weak 0 in
  Alcotest.(check int) "queue still live with the rest" 2 (Dsim.Pqueue.length q);
  Alcotest.(check bool) "popped value was collected" false still_pinned

let qcheck_sorted_drain =
  QCheck.Test.make ~name:"drain yields sorted (time, seq)" ~count:200
    QCheck.(list_of_size Gen.(0 -- 200) (int_range 0 1000))
    (fun times ->
      let q = Dsim.Pqueue.create () in
      List.iteri (fun seq time -> Dsim.Pqueue.push q ~time ~seq ()) times;
      let keys = List.map (fun (t, s, ()) -> (t, s)) (drain q) in
      keys = List.sort compare keys)

let qcheck_length_tracks =
  QCheck.Test.make ~name:"length counts pushes minus pops" ~count:200
    QCheck.(pair (int_range 0 100) (int_range 0 100))
    (fun (pushes, pops) ->
      let q = Dsim.Pqueue.create () in
      for i = 1 to pushes do
        Dsim.Pqueue.push q ~time:i ~seq:i ()
      done;
      for _ = 1 to pops do
        ignore (Dsim.Pqueue.pop q)
      done;
      Dsim.Pqueue.length q = max 0 (pushes - pops))

let suites =
  [
    ( "pqueue",
      [
        Alcotest.test_case "empty queue" `Quick empty_queue;
        Alcotest.test_case "pops in time order" `Quick pops_in_time_order;
        Alcotest.test_case "ties break by seq" `Quick ties_break_by_seq;
        Alcotest.test_case "peek does not remove" `Quick peek_does_not_remove;
        Alcotest.test_case "clear empties" `Quick clear_empties;
        Alcotest.test_case "interleaved push/pop" `Quick interleaved_push_pop;
        Alcotest.test_case "popped value is collectable" `Quick popped_value_is_collectable;
        Qcheck_util.to_alcotest qcheck_sorted_drain;
        Qcheck_util.to_alcotest qcheck_length_tracks;
      ] );
  ]
