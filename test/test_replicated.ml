(* The replicated store: Raft-lite under Etcdlike. Leader-read
   convergence, crash-recovery catch-up, injectable follower staleness,
   the full kube stack over the replicated backend, and the qcheck
   differential against the sequential reference model. *)

module RKv = Replicated.Kv

let setup ?(seed = 11L) ?(n = 3) ?read ?fallback () =
  let engine = Dsim.Engine.create ~seed () in
  let net = Dsim.Network.create engine in
  let kv : string RKv.t = RKv.create ~net ~n ?read ?fallback () in
  RKv.start kv;
  (engine, net, kv)

let run_for engine us = Dsim.Engine.run ~until:(Dsim.Engine.now engine + us) engine

let await ?(timeout = 3_000_000) engine result =
  let deadline = Dsim.Engine.now engine + timeout in
  while !result = None && Dsim.Engine.now engine < deadline do
    run_for engine 10_000
  done;
  match !result with Some r -> r | None -> Alcotest.fail "proposal never resolved"

let put_sync engine kv key value =
  let result = ref None in
  RKv.put kv key value (fun r -> result := Some r);
  match await engine result with
  | Ok e -> e
  | Error `Unavailable -> Alcotest.fail (Printf.sprintf "put %s unavailable" key)

let delete_sync engine kv key =
  let result = ref None in
  RKv.delete kv key (fun r -> result := Some r);
  match await engine result with
  | Ok e -> e
  | Error `Unavailable -> Alcotest.fail (Printf.sprintf "delete %s unavailable" key)

let txn_sync engine kv txn =
  let result = ref None in
  RKv.txn kv txn (fun r -> result := Some r);
  match await engine result with
  | Ok outcome -> outcome
  | Error `Unavailable -> Alcotest.fail "txn unavailable"

(* --- basic replication --------------------------------------------- *)

let favored_first_leader () =
  let engine, _, kv = setup () in
  run_for engine 1_000_000;
  Alcotest.(check (option string)) "etcd-1 leads" (Some "etcd-1") (RKv.leader kv)

let leader_commits_and_replicas_converge () =
  let engine, _, kv = setup () in
  run_for engine 1_000_000;
  let e1 = put_sync engine kv "pods/a" "1" in
  Alcotest.(check int) "first committed rev" 1 e1.History.Event.rev;
  ignore (put_sync engine kv "pods/b" "2");
  ignore (delete_sync engine kv "pods/a");
  Alcotest.(check int) "canonical rev" 3 (RKv.rev kv);
  (* A couple of heartbeats later every replica has applied everything. *)
  run_for engine 300_000;
  List.iter
    (fun (id, rev) -> Alcotest.(check int) (id ^ " caught up") 3 rev)
    (RKv.replica_revs kv);
  Alcotest.(check (option string)) "state has b"
    (Some "2")
    (History.State.get (RKv.state kv) "pods/b");
  Alcotest.(check bool) "a deleted" false (History.State.mem (RKv.state kv) "pods/a")

let seed_reaches_every_replica () =
  let engine, _, kv = setup () in
  let commits = ref [] in
  RKv.on_commit kv (fun e -> commits := e.History.Event.rev :: !commits);
  let e = RKv.seed kv "nodes/node-1" "n1" in
  Alcotest.(check int) "seed rev" 1 e.History.Event.rev;
  Alcotest.(check (list int)) "canonical stream saw the seed" [ 1 ] !commits;
  List.iter
    (fun (id, rev) -> Alcotest.(check int) (id ^ " seeded") 1 rev)
    (RKv.replica_revs kv);
  run_for engine 1_000_000;
  ignore (put_sync engine kv "pods/a" "1");
  Alcotest.(check int) "rev continues dense" 2 (RKv.rev kv)

let crashed_replica_catches_up_after_restart () =
  let engine, net, kv = setup () in
  run_for engine 1_000_000;
  ignore (put_sync engine kv "pods/a" "1");
  run_for engine 200_000;
  Dsim.Network.crash net "etcd-3";
  ignore (put_sync engine kv "pods/b" "2");
  ignore (put_sync engine kv "pods/c" "3");
  run_for engine 300_000;
  Alcotest.(check int) "etcd-3 frozen while down" 1 (RKv.replica_rev kv "etcd-3");
  Dsim.Network.restart net "etcd-3";
  run_for engine 500_000;
  Alcotest.(check int) "etcd-3 caught up" 3 (RKv.replica_rev kv "etcd-3");
  (* The shorter log replayed into the same canonical history. *)
  ignore (Raftlite.Group.committed_prefix (RKv.group kv))

let partitioned_follower_serves_stale_reads () =
  let engine, net, kv = setup ~read:(RKv.Follower "etcd-3") () in
  run_for engine 1_000_000;
  ignore (put_sync engine kv "pods/a" "1");
  run_for engine 300_000;
  Dsim.Network.partition net "etcd-3" "etcd-1";
  Dsim.Network.partition net "etcd-3" "etcd-2";
  ignore (put_sync engine kv "pods/b" "2");
  ignore (put_sync engine kv "pods/c" "3");
  (* Still up, still serving — at the pre-partition revision. *)
  let items, rev = Option.get (RKv.range kv ~src:"reader" ~prefix:"pods/") in
  Alcotest.(check int) "stale rev" 1 rev;
  Alcotest.(check int) "stale item count" 1 (List.length items);
  Alcotest.(check int) "canonical moved on" 3 (RKv.rev kv);
  Dsim.Network.heal net "etcd-3" "etcd-1";
  Dsim.Network.heal net "etcd-3" "etcd-2";
  run_for engine 500_000;
  let _, rev = Option.get (RKv.range kv ~src:"reader" ~prefix:"pods/") in
  Alcotest.(check int) "healed view is fresh" 3 rev

let crashed_replica_fallback_policies () =
  let engine, net, kv = setup ~read:(RKv.Follower "etcd-2") ~fallback:`Reject () in
  run_for engine 1_000_000;
  ignore (put_sync engine kv "pods/a" "1");
  Dsim.Network.crash net "etcd-2";
  Alcotest.(check (option string)) "reject: no serving replica" None
    (RKv.serving_replica kv ~src:"reader");
  Alcotest.(check bool) "reject: read unavailable" true (RKv.range kv ~src:"reader" ~prefix:"" = None);
  let engine, net, kv = setup ~read:(RKv.Follower "etcd-2") ~fallback:`Stale () in
  run_for engine 1_000_000;
  ignore (put_sync engine kv "pods/a" "1");
  Dsim.Network.crash net "etcd-2";
  Alcotest.(check (option string)) "stale: lowest live replica serves" (Some "etcd-1")
    (RKv.serving_replica kv ~src:"reader")

let spread_is_sticky_per_source () =
  let _, _, kv = setup ~read:RKv.Spread () in
  let a = RKv.serving_replica kv ~src:"api-1" in
  Alcotest.(check (option string)) "sticky" a (RKv.serving_replica kv ~src:"api-1");
  Alcotest.(check bool) "some replica" true (a <> None)

let minority_leader_cannot_commit () =
  let engine, net, kv = setup () in
  run_for engine 1_000_000;
  ignore (put_sync engine kv "pods/a" "1");
  (* Isolate the leader with a client: proposals reach it but can never
     commit; the deadline fails them over as an outage. *)
  Dsim.Network.partition net "etcd-1" "etcd-2";
  Dsim.Network.partition net "etcd-1" "etcd-3";
  let result = ref None in
  RKv.txn kv
    { Etcdlike.Txn.guards = []; success = [ Etcdlike.Txn.Put ("pods/b", "2") ]; failure = [] }
    (fun r -> result := Some r);
  (match await ~timeout:4_000_000 engine result with
  | Error `Unavailable -> ()
  | Ok _ ->
      (* The retry loop may legally land the proposal on the majority's
         new leader once one is elected — also fine; what is not fine is
         a commit through the minority leader alone. *)
      Alcotest.(check bool) "committed via majority" true (RKv.rev kv >= 2));
  Alcotest.(check int) "minority replica did not apply alone" 1 (RKv.replica_rev kv "etcd-1")

(* --- qcheck differential vs the sequential reference model --------- *)

type op =
  | Put of string * string
  | Delete of string
  | Cas of string * int * string  (* put_if_unchanged *)
  | Create of string * string  (* create_if_absent *)

let op_gen =
  let open QCheck.Gen in
  let key = map (Printf.sprintf "pods/p%d") (int_range 0 4) in
  let value = map string_of_int (int_range 0 99) in
  frequency
    [
      (4, map2 (fun k v -> Put (k, v)) key value);
      (2, map (fun k -> Delete k) key);
      (2, map3 (fun k r v -> Cas (k, r, v)) key (int_range 0 12) value);
      (2, map2 (fun k v -> Create (k, v)) key value);
    ]

let txn_of_op = function
  | Put (k, v) ->
      { Etcdlike.Txn.guards = []; success = [ Etcdlike.Txn.Put (k, v) ]; failure = [] }
  | Delete k ->
      { Etcdlike.Txn.guards = []; success = [ Etcdlike.Txn.Delete k ]; failure = [] }
  | Cas (k, r, v) -> Etcdlike.Txn.put_if_unchanged ~key:k ~expected_mod_rev:r v
  | Create (k, v) -> Etcdlike.Txn.create_if_absent ~key:k v

(* Leader reads, no faults: a program of transactions through the
   replicated store must agree with the pure sequential model on every
   observable, and the canonical commit stream must replay into the
   model's event list exactly. *)
let replicated_agrees_with_model ops =
  let engine, _, kv = setup ~seed:23L () in
  let canonical = ref [] in
  RKv.on_commit kv (fun e -> canonical := e :: !canonical);
  run_for engine 1_000_000;
  let model = ref Conformance.Model.empty in
  List.iter
    (fun op ->
      let txn = txn_of_op op in
      let outcome = txn_sync engine kv txn in
      let model', expected = Conformance.Model.txn !model txn in
      model := model';
      if outcome.Etcdlike.Txn.succeeded <> expected.Etcdlike.Txn.succeeded then
        QCheck.Test.fail_reportf "outcome disagreement";
      if outcome.Etcdlike.Txn.rev <> expected.Etcdlike.Txn.rev then
        QCheck.Test.fail_reportf "rev disagreement: %d vs model %d" outcome.Etcdlike.Txn.rev
          expected.Etcdlike.Txn.rev)
    ops;
  let leader_read = Option.get (RKv.range kv ~src:"reader" ~prefix:"") in
  fst leader_read = Conformance.Model.range !model ~prefix:""
  && RKv.rev kv = Conformance.Model.rev !model
  && List.rev !canonical = Conformance.Model.events !model

let qcheck_differential =
  QCheck.Test.make ~name:"replicated store vs sequential model (leader reads, no faults)"
    ~count:30
    QCheck.(make ~print:(fun l -> string_of_int (List.length l)) (QCheck.Gen.list_size (QCheck.Gen.int_range 1 25) op_gen))
    replicated_agrees_with_model

(* --- the kube stack over the replicated backend -------------------- *)

let replicated_config =
  {
    Kube.Cluster.default_config with
    Kube.Cluster.nodes = 2;
    replication =
      Some { Kube.Etcd.replicas = 3; read = RKv.Leader; read_fallback = `Stale };
  }

let kube_stack_over_replicated_store () =
  let cluster = Kube.Cluster.create ~config:replicated_config () in
  let oracle = Sieve.Oracle.attach cluster in
  let hooks = Conformance.Hooks.attach cluster in
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster
    (Kube.Workload.rolling_upgrade ~start:1_000_000 ~pod:"p1" ~from_node:"node-1"
       ~to_node:"node-2" ());
  Kube.Cluster.run cluster ~until:8_000_000;
  Conformance.Hooks.finish hooks;
  Alcotest.(check (list string)) "oracle clean" []
    (List.map (fun (_, v) -> Sieve.Oracle.describe v) (Sieve.Oracle.violations oracle));
  Alcotest.(check (list string)) "monitor silent" []
    (List.map Conformance.Monitor.describe (Conformance.Hooks.violations hooks));
  let truth = Kube.Cluster.truth cluster in
  (match History.State.get truth "pods/p1" with
  | Some (Kube.Resource.Pod p) ->
      Alcotest.(check (option string)) "p1 on node-2" (Some "node-2") p.Kube.Resource.node
  | _ -> Alcotest.fail "p1 missing from truth");
  (* Replicas and apiservers all converge on the canonical history. *)
  List.iter
    (fun (id, rev) ->
      Alcotest.(check int) (id ^ " converged") (Kube.Cluster.truth_rev cluster) rev)
    (Kube.Etcd.replica_revs (Kube.Cluster.etcd cluster));
  List.iter
    (fun a ->
      Alcotest.(check int)
        (Kube.Apiserver.name a ^ " converged")
        (Kube.Cluster.truth_rev cluster) (Kube.Apiserver.rev a))
    (Kube.Cluster.apiservers cluster)

(* Per-replica watch hubs: a stream pinned to a follower sees exactly
   that follower's applies — lagging with it, resuming with it. *)
let per_replica_watch_follows_applies () =
  let engine, net, kv = setup () in
  run_for engine 1_000_000;
  let leader_seen = ref [] and follower_seen = ref [] in
  let record acc (e : string History.Event.t) = acc := e.History.Event.rev :: !acc in
  (match RKv.watch_replica kv "etcd-1" ~start_rev:0 ~deliver:(record leader_seen) () with
  | Ok _ -> ()
  | _ -> Alcotest.fail "leader watch failed");
  (match RKv.watch_replica kv "etcd-3" ~start_rev:0 ~deliver:(record follower_seen) () with
  | Ok _ -> ()
  | _ -> Alcotest.fail "follower watch failed");
  (match RKv.watch_replica kv "nope" ~start_rev:0 ~deliver:(fun _ -> ()) () with
  | Error `Unknown_replica -> ()
  | _ -> Alcotest.fail "unknown replica must be rejected");
  ignore (put_sync engine kv "a" "1");
  ignore (put_sync engine kv "b" "2");
  run_for engine 1_000_000;
  (* Cut replication to etcd-3: its watchers stop with it. *)
  Dsim.Network.partition net "etcd-1" "etcd-3";
  Dsim.Network.partition net "etcd-2" "etcd-3";
  ignore (put_sync engine kv "c" "3");
  run_for engine 1_000_000;
  Alcotest.(check (list int)) "leader stream saw everything" [ 1; 2; 3 ] (List.rev !leader_seen);
  Alcotest.(check (list int))
    "follower stream froze with its replica" [ 1; 2 ] (List.rev !follower_seen);
  (* Replication heals; the pinned stream resumes without re-registering. *)
  Dsim.Network.heal net "etcd-1" "etcd-3";
  Dsim.Network.heal net "etcd-2" "etcd-3";
  run_for engine 2_000_000;
  Alcotest.(check (list int)) "follower stream caught up" [ 1; 2; 3 ] (List.rev !follower_seen)

let suites =
  [
    ( "replicated",
      [
        Alcotest.test_case "favored first leader" `Quick favored_first_leader;
        Alcotest.test_case "leader commits, replicas converge" `Quick
          leader_commits_and_replicas_converge;
        Alcotest.test_case "seed reaches every replica" `Quick seed_reaches_every_replica;
        Alcotest.test_case "crashed replica catches up" `Quick
          crashed_replica_catches_up_after_restart;
        Alcotest.test_case "partitioned follower serves stale reads" `Quick
          partitioned_follower_serves_stale_reads;
        Alcotest.test_case "crashed replica fallback policies" `Quick
          crashed_replica_fallback_policies;
        Alcotest.test_case "spread is sticky" `Quick spread_is_sticky_per_source;
        Alcotest.test_case "minority leader cannot commit" `Quick minority_leader_cannot_commit;
        Qcheck_util.to_alcotest qcheck_differential;
        Alcotest.test_case "kube stack over replicated store" `Quick
          kube_stack_over_replicated_store;
        Alcotest.test_case "per-replica watch hub follows applies" `Quick
          per_replica_watch_follows_applies;
      ] );
  ]
