(* Lint fixture: the Kubernetes-56261 shape, distilled. A node-cache
   controller maintains derived state purely from watch events — the
   handler matches Create/Update/Delete and nothing ever re-lists
   nodes/. One dropped event leaves a phantom entry forever; the lint
   must flag [on_node_event]. Parse-only: this file is never compiled. *)

type t = { name : string; net : Dsim.Network.t; cache : (string, unit) Hashtbl.t }

let on_node_event t (e : Resource.value History.Event.t) =
  match e.History.Event.op, e.History.Event.value with
  | History.Event.Delete, _ -> Hashtbl.remove t.cache (Resource.name_of_key e.History.Event.key)
  | (History.Event.Create | History.Event.Update), Some (Resource.Node n) ->
      if n.Resource.ready then Hashtbl.replace t.cache n.Resource.node_name ()
      else Hashtbl.remove t.cache n.Resource.node_name
  | (History.Event.Create | History.Event.Update), _ -> ()

let start t ~endpoints =
  let informer =
    Informer.create ~net:t.net ~owner:t.name ~endpoints ~prefix:Resource.nodes_prefix
      ~on_event:(on_node_event t) ()
  in
  Informer.start informer ~endpoint:0 ()
