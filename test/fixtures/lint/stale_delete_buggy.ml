(* Lint fixture: the cassandra-operator-400/402 shape, distilled.
   A garbage collector counts members from its informer cache and
   deletes the "surplus" with a plain, unconditioned delete — the lint
   must flag [gc_surplus] (and only it: [delete_member] alone never
   reads the cache, [reconcile] only forwards to the combining
   function). Parse-only: this file is never compiled. *)

type t = { name : string; informer : Informer.t; client : Client.t; desired : int }

let record t detail = Engine.record ~actor:t.name ~kind:"toy.gc" detail

let cached_members t =
  let store = Informer.store t.informer in
  History.State.fold
    (fun key (v, mod_rev) acc ->
      match v with Resource.Pod p -> (key, p, mod_rev) :: acc | _ -> acc)
    store []

let delete_member t key =
  record t key;
  Client.txn_ t.client (Messages.delete key)

let gc_surplus t =
  let members = cached_members t in
  let surplus = List.length members - t.desired in
  List.iteri (fun i (key, _, _) -> if i < surplus then delete_member t key) members

let reconcile t = gc_surplus t
