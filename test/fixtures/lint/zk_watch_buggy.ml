(* Lint fixture: the ZooKeeper one-shot-watch shape, distilled (the
   HBase dialect of edge-trigger). ZK watches fire once and are
   consumed; a handler that neither re-registers the watch nor re-reads
   the key goes blind after the first master change — every later
   change is silently missed. The lint must flag [on_master_change].
   Parse-only: this file is never compiled. *)

type t = { zk : Zk.t; name : string; mutable master : string option }

let on_master_change t () =
  (* Reacts to the single fire and never re-arms. *)
  t.master <- None

let track t = Zk.watch t.zk ~src:t.name ~key:"master" ~on_fire:(on_master_change t)
