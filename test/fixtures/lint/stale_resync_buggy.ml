(* Lint fixture: the Kubernetes-59848 shape, distilled. The controller
   remembers the last revision its view reached and, after a restart,
   resumes watching *from that pre-crash revision* — pinning the view to
   the old frontier instead of discovering the current one (and silently
   accepting a server that has since rolled back). The lint must flag
   the [on_restart] handler. Parse-only: this file is never compiled. *)

type t = {
  name : string;
  net : Dsim.Network.t;
  informer : Informer.t;
  mutable last_rev : int;
}

let remember t = t.last_rev <- Informer.rev t.informer

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () ->
      remember t;
      Informer.stop t.informer)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
      Informer.watch_from t.informer ~rev:t.last_rev ());
  Informer.start t.informer ~endpoint:0 ()
