(* Fixed twin of stale_resync_buggy: after a restart the controller
   re-lists from scratch — the new incarnation discovers the current
   frontier instead of trusting anything remembered from before the
   crash. The lint must stay silent. Parse-only: this file is never
   compiled. *)

type t = { name : string; net : Dsim.Network.t; informer : Informer.t }

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () -> Informer.stop t.informer)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
      let endpoint = Dsim.Network.incarnation t.net t.name in
      Informer.start t.informer ~endpoint ());
  Informer.start t.informer ~endpoint:0 ()
