(* Fixed twin of stale_delete_buggy: same cached census, but every
   delete re-reads the member linearizably ([get_quorum]) and carries a
   revision precondition ([delete_if_unchanged ~expected_mod_rev]) — the
   cached view only nominates, quorum state decides. The lint must stay
   silent. Parse-only: this file is never compiled. *)

type t = { name : string; informer : Informer.t; client : Client.t; desired : int }

let record t detail = Engine.record ~actor:t.name ~kind:"toy.gc" detail

let cached_members t =
  let store = Informer.store t.informer in
  History.State.fold
    (fun key (v, mod_rev) acc ->
      match v with Resource.Pod p -> (key, p, mod_rev) :: acc | _ -> acc)
    store []

let delete_member t key =
  Client.get_quorum t.client key (function
    | Ok (Some (_, mod_rev)) ->
        record t key;
        Client.txn_ t.client (Etcdlike.Txn.delete_if_unchanged ~key ~expected_mod_rev:mod_rev)
    | Ok None | Error `Unavailable -> ())

let gc_surplus t =
  let members = cached_members t in
  let surplus = List.length members - t.desired in
  List.iteri (fun i (key, _, _) -> if i < surplus then delete_member t key) members

let reconcile t = gc_surplus t
