(* Lint fixture: the follower-read-then-write shape, distilled. A
   trimmer lists pods through the replicated store's routed read — which
   the configured read_mode may serve from a lagging replica — and
   deletes the "surplus" it sees with plain proposals. A replica frozen
   behind the leader nominates pods that no longer exist (or misses ones
   that do); the lint must flag [trim]. Parse-only: this file is never
   compiled. *)

type t = { name : string; kv : Resource.value Replicated.Kv.t; desired : int }

let surplus_pods t =
  match Replicated.Kv.range t.kv ~src:t.name ~prefix:"pods/" with
  | Some (items, _rev) ->
      let n = List.length items - t.desired in
      List.filteri (fun i _ -> i < n) items
  | None -> []

let trim t =
  List.iter
    (fun (key, _value, _mod_rev) -> Replicated.Kv.delete t.kv key (fun _ -> ()))
    (surplus_pods t)
