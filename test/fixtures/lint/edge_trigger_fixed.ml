(* Fixed twin of edge_trigger_buggy: the handler still reacts to events
   for latency, but a periodic task re-lists nodes/ from the informer
   store and rebuilds the cache, so any dropped event heals within one
   period (level-triggered reconciliation). The lint must stay silent.
   Parse-only: this file is never compiled. *)

type t = {
  name : string;
  net : Dsim.Network.t;
  cache : (string, unit) Hashtbl.t;
  mutable informer : Informer.t option;
  period : int;
}

let on_node_event t (e : Resource.value History.Event.t) =
  match e.History.Event.op, e.History.Event.value with
  | History.Event.Delete, _ -> Hashtbl.remove t.cache (Resource.name_of_key e.History.Event.key)
  | (History.Event.Create | History.Event.Update), Some (Resource.Node n) ->
      if n.Resource.ready then Hashtbl.replace t.cache n.Resource.node_name ()
      else Hashtbl.remove t.cache n.Resource.node_name
  | (History.Event.Create | History.Event.Update), _ -> ()

let resync t =
  match t.informer with
  | None -> ()
  | Some informer ->
      let store = Informer.store informer in
      Hashtbl.reset t.cache;
      List.iter
        (fun key ->
          match History.State.get store key with
          | Some (Resource.Node n) when n.Resource.ready ->
              Hashtbl.replace t.cache n.Resource.node_name ()
          | Some _ | None -> ())
        (History.State.keys_with_prefix store ~prefix:Resource.nodes_prefix)

let start t ~endpoints =
  let informer =
    Informer.create ~net:t.net ~owner:t.name ~endpoints ~prefix:Resource.nodes_prefix
      ~on_event:(on_node_event t) ()
  in
  t.informer <- Some informer;
  Informer.start informer ~endpoint:0 ();
  Dsim.Engine.every (Dsim.Network.engine t.net) ~period:t.period (fun () ->
      resync t;
      true)
