(* Fixed twin of region_assign_buggy: the read goes through the leader
   ([~sync:true] catches the follower up before serving, HBASE-3137),
   so the [mod_rev] lives in the leader's revision domain and the CAS
   precondition genuinely guards the write. The lint must stay silent.
   Parse-only: this file is never compiled. *)

type t = { zk : Zk.t; name : string; mutable moves : int }

let reassign t region server =
  Zk.read t.zk ~src:t.name ~sync:true ("region/" ^ region) (function
    | Ok (_current, mod_rev) ->
        Zk.cas t.zk ~src:t.name ~key:("region/" ^ region) ~expected_mod_rev:mod_rev
          (Some server) (function
          | Ok true -> t.moves <- t.moves + 1
          | Ok false | Error `Unavailable -> ())
    | Error `Unavailable -> ())
