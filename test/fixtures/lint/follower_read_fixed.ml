(* Fixed twin of follower_read_buggy: the same replica-routed census
   only nominates — every delete is proposed as a revision-compare
   transaction. Replica revisions live in the leader's numbering domain
   (the applied log is a prefix of the committed one), so a stale
   [mod_rev] makes the precondition fail safely instead of deleting a
   live pod. The lint must stay silent. Parse-only: this file is never
   compiled. *)

type t = { name : string; kv : Resource.value Replicated.Kv.t; desired : int }

let surplus_pods t =
  match Replicated.Kv.range t.kv ~src:t.name ~prefix:"pods/" with
  | Some (items, _rev) ->
      let n = List.length items - t.desired in
      List.filteri (fun i _ -> i < n) items
  | None -> []

let trim t =
  List.iter
    (fun (key, _value, mod_rev) ->
      Replicated.Kv.txn t.kv
        (Etcdlike.Txn.delete_if_unchanged ~key ~expected_mod_rev:mod_rev)
        (fun _ -> ()))
    (surplus_pods t)
