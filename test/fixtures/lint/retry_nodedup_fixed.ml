(* Fixed twin of retry_nodedup_buggy: the retry resubmits the *same*
   proposal id, so replicas' applied-pid dedup makes it idempotent —
   whichever copy commits first wins and the other is dropped
   (Replicated.Kv's pending discipline). The lint must stay silent.
   Parse-only: this file is never compiled. *)

type t = { kv : string Replicated.Kv.t }

let bump t key value =
  let pid = Replicated.Kv.fresh_pid t.kv in
  Replicated.Kv.put t.kv ~pid key value (function
    | Ok _ -> ()
    | Error `Unavailable ->
        (* Same pid: at-most-once even if the original also lands. *)
        Replicated.Kv.put t.kv ~pid key value (fun _ -> ()))
