(* Lint fixture: the stale-region-assign shape, distilled (HBASE-3136).
   The master reads a region's assignment from the ZooKeeper follower
   and CASes the transition at the leader using the follower's
   [mod_rev]. The follower assigns its *own* revisions — the
   precondition compares numbers from two different domains, so it
   cannot guard the leader write. The lint must flag [reassign].
   Parse-only: this file is never compiled. *)

type t = { zk : Zk.t; name : string; mutable moves : int }

let reassign t region server =
  Zk.read t.zk ~src:t.name ("region/" ^ region) (function
    | Ok (_current, mod_rev) ->
        Zk.cas t.zk ~src:t.name ~key:("region/" ^ region) ~expected_mod_rev:mod_rev
          (Some server) (function
          | Ok true -> t.moves <- t.moves + 1
          | Ok false | Error `Unavailable -> ())
    | Error `Unavailable -> ())
