(* Fixed twin of zk_watch_buggy: the handler re-arms the watch *first*
   (the fire consumed it) and then re-reads the key through the leader
   ([~sync:true]) — anything that changed between the fire and the
   re-arm is picked up by the read instead of being lost. The lint must
   stay silent. Parse-only: this file is never compiled. *)

type t = { zk : Zk.t; name : string; mutable master : string option }

let rec on_master_fire t () =
  Zk.watch t.zk ~src:t.name ~key:"master" ~on_fire:(on_master_fire t);
  Zk.read t.zk ~src:t.name ~sync:true "master" (function
    | Ok (v, _rev) -> t.master <- v
    | Error `Unavailable -> ())

let track t = Zk.watch t.zk ~src:t.name ~key:"master" ~on_fire:(on_master_fire t)
