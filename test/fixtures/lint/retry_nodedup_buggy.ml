(* Lint fixture: the retry-no-dedup shape, distilled. A proposal that
   fails over as [`Unavailable] may still commit — the leader may have
   replicated it before the partition. Retrying with a *fresh* proposal
   doubles the effect when both land. The lint must flag [bump].
   Parse-only: this file is never compiled. *)

type t = { kv : string Replicated.Kv.t }

let bump t key value =
  Replicated.Kv.put t.kv key value (function
    | Ok _ -> ()
    | Error `Unavailable ->
        (* The original proposal may still be in flight. *)
        Replicated.Kv.put t.kv key value (fun _ -> ()))
