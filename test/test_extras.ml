(* Extension bug cases (EXT-RS, EXT-NC) under the corpus discipline, and
   a cross-matrix check that fixes are targeted: each fix closes its own
   bug and no fix masks a different bug's strategy. *)

let hit case (outcome : Sieve.Runner.outcome) =
  List.exists (fun (_, v) -> case.Sieve.Bugs.matches v) outcome.Sieve.Runner.violations

let check_case case () =
  let reference = Sieve.Runner.run_test (Sieve.Bugs.reference_test_of_case case) in
  Alcotest.(check int) "reference clean" 0 (List.length reference.Sieve.Runner.violations);
  let sieve = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
  Alcotest.(check bool) "reproduced" true (hit case sieve);
  let fixed = Sieve.Runner.run_test (Sieve.Bugs.fixed_test_of_case case) in
  Alcotest.(check bool) "fix closes" false (hit case fixed)

let extras_metadata () =
  let extras = Sieve.Bugs.extras () in
  Alcotest.(check (list string)) "ids" [ "EXT-RS"; "EXT-NC"; "EXT-DEP" ]
    (List.map (fun c -> c.Sieve.Bugs.id) extras);
  Alcotest.(check int) "all_with_extras = 8" 8 (List.length (Sieve.Bugs.all_with_extras ()));
  Alcotest.(check bool) "find resolves extras" true (Sieve.Bugs.find "EXT-RS" <> None)

(* A fix must be targeted: applying bug A's fix must not stop bug B's
   strategy from firing (they are different root causes). We spot-check
   the pair living in the same component family. *)
let fixes_are_targeted () =
  let rs_case = Sieve.Bugs.ext_rs_surplus () in
  (* Run EXT-RS's strategy against a config where only the *node
     controller* fix is applied: the surplus must still happen. *)
  let config =
    {
      (Sieve.Bugs.kube_config rs_case) with
      Kube.Cluster.with_node_controller = true;
      node_controller_fixed = true;
    }
  in
  let outcome =
    Sieve.Runner.run_test
      (Sieve.Runner.base_test ~config
         ~workload:(Sieve.Bugs.kube_workload rs_case)
         ~horizon:rs_case.Sieve.Bugs.horizon rs_case.Sieve.Bugs.sieve_strategy)
  in
  Alcotest.(check bool) "unrelated fix does not mask EXT-RS" true (hit rs_case outcome)

(* The planner, pointed at the extension scenario, finds the bug without
   being told the strategy. *)
let planner_finds_ext_rs () =
  let case = Sieve.Bugs.ext_rs_surplus () in
  let events = Sieve.Runner.reference_events (Sieve.Bugs.reference_test_of_case case) in
  let plans =
    Sieve.Planner.candidates ~config:(Sieve.Bugs.kube_config case) ~events
      ~horizon:case.Sieve.Bugs.horizon ()
  in
  let arr = Array.of_list plans in
  let result =
    Sieve.Runner.run_campaign
      ~make_test:(fun i ->
        Sieve.Runner.base_test ~config:(Sieve.Bugs.kube_config case) ~workload:(Sieve.Bugs.kube_workload case)
          ~horizon:case.Sieve.Bugs.horizon arr.(i).Sieve.Planner.strategy)
      ~candidates:(Array.length arr) ~target:case.Sieve.Bugs.matches ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "found within %d tests" result.Sieve.Runner.tests_run)
    true (result.Sieve.Runner.found <> None)

let suites =
  let case_tests =
    List.map
      (fun case ->
        Alcotest.test_case
          (Printf.sprintf "%s: ref clean, sieve reproduces, fix closes" case.Sieve.Bugs.id)
          `Slow (check_case case))
      (Sieve.Bugs.extras ())
  in
  [
    ( "extras",
      case_tests
      @ [
          Alcotest.test_case "extras metadata" `Quick extras_metadata;
          Alcotest.test_case "fixes are targeted" `Slow fixes_are_targeted;
          Alcotest.test_case "planner finds EXT-RS unaided" `Slow planner_finds_ext_rs;
        ] );
  ]
