(* The conformance layer: monitor unit properties, the model-based
   differential harness (real store vs. sequential reference), the
   mutation self-test, and monitor silence + passivity on cluster runs
   under injected faults. *)

module M = Conformance.Monitor
module Model = Conformance.Model

let ev ~rev ~key ~op value = History.Event.make ~rev ~key ~op value

let codes m = List.map (fun (v : M.violation) -> v.M.code) (M.violations m)

(* --- monitor unit properties --------------------------------------- *)

let faithful_stream_is_silent () =
  let kv = Etcdlike.Kv.create () in
  let m = M.create () in
  (* The mirror must see commits before the watch hub fans them out. *)
  Etcdlike.Kv.on_commit kv (M.note_commit m);
  let hub = Etcdlike.Watch.create kv in
  (match
     Etcdlike.Watch.watch hub ~start_rev:0
       ~deliver:(fun e -> M.observe_event m ~stream:"c<-store@1" e)
       ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "watch from 0 must not be compacted");
  ignore (Etcdlike.Kv.put kv "pods/a" "1");
  ignore (Etcdlike.Kv.put kv "pods/b" "2");
  ignore (Etcdlike.Kv.delete kv "pods/a");
  ignore (Etcdlike.Kv.put kv "pods/b" "3");
  M.check_state m ~subject:"c" ~rev:(Etcdlike.Kv.rev kv) (Etcdlike.Kv.state kv);
  Alcotest.(check int) "no violations" 0 (List.length (M.violations m));
  Alcotest.(check int) "no occurrences" 0 (M.total m);
  Alcotest.(check bool) "still strict" true (M.strict m)

let density_violation () =
  let m = M.create () in
  M.note_commit m (ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "a"));
  M.note_commit m (ev ~rev:3 ~key:"k" ~op:History.Event.Update (Some "b"));
  Alcotest.(check bool) "density tripped" true (codes m = [ M.Density ])

let non_monotone_violation () =
  let m = M.create () in
  M.note_commit m (ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "a"));
  M.note_commit m (ev ~rev:2 ~key:"k" ~op:History.Event.Update (Some "b"));
  let e2 = ev ~rev:2 ~key:"k" ~op:History.Event.Update (Some "b") in
  M.observe_event m ~stream:"s@1" e2;
  M.observe_event m ~stream:"s@1" e2;
  Alcotest.(check bool) "monotonicity tripped" true (List.mem M.Non_monotone (codes m));
  (* A new generation is a new stream: the same revision is fine there. *)
  let m2 = M.create () in
  M.note_commit m2 (ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "a"));
  let e1 = ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "a") in
  M.observe_event m2 ~stream:"s@1" e1;
  M.observe_event m2 ~stream:"s@2" e1;
  Alcotest.(check int) "fresh generation restarts the frontier" 0 (M.total m2)

let content_violation () =
  let m = M.create () in
  M.note_commit m (ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "a"));
  M.observe_event m ~stream:"s@1" (ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "FORGED"));
  Alcotest.(check bool) "content tripped" true (List.mem M.Content (codes m))

let prefix_filter_violation () =
  (* An event outside the stream's declared prefix cannot have come from
     that watch — authenticity, not completeness, so always on. *)
  let m = M.create () in
  M.note_commit m (ev ~rev:1 ~key:"nodes/x" ~op:History.Event.Create (Some "a"));
  M.relax m;
  M.observe_event m ~stream:"s@1" ~prefix:"pods/"
    (ev ~rev:1 ~key:"nodes/x" ~op:History.Event.Create (Some "a"));
  Alcotest.(check bool) "filter breach tripped" true (List.mem M.Content (codes m))

let gap_strict_only () =
  let feed m =
    M.note_commit m (ev ~rev:1 ~key:"pods/a" ~op:History.Event.Create (Some "1"));
    M.note_commit m (ev ~rev:2 ~key:"pods/b" ~op:History.Event.Create (Some "2"));
    M.note_commit m (ev ~rev:3 ~key:"pods/c" ~op:History.Event.Create (Some "3"));
    M.observe_event m ~stream:"s@1" (ev ~rev:1 ~key:"pods/a" ~op:History.Event.Create (Some "1"));
    M.observe_event m ~stream:"s@1" (ev ~rev:3 ~key:"pods/c" ~op:History.Event.Create (Some "3"))
  in
  let strict = M.create () in
  feed strict;
  Alcotest.(check bool) "skipping rev 2 trips strict mode" true (List.mem M.Gap (codes strict));
  let relaxed = M.create () in
  M.relax relaxed;
  feed relaxed;
  Alcotest.(check int) "relaxed mode allows the gap" 0 (M.total relaxed);
  Alcotest.(check bool) "relax is sticky" false (M.strict relaxed)

let future_rev_violation () =
  let m = M.create () in
  M.note_commit m (ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "a"));
  M.observe_advance m ~stream:"s@1" ~rev:5 ();
  Alcotest.(check bool) "future frontier tripped" true (List.mem M.Future_rev (codes m))

let state_divergence_violation () =
  let m = M.create () in
  M.note_commit m (ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "a"));
  M.check_state m ~subject:"cache" ~rev:1 History.State.empty;
  Alcotest.(check bool) "missing binding tripped" true (List.mem M.State_divergence (codes m))

let violations_deduplicate () =
  let fired = ref 0 in
  let m = M.create ~on_violation:(fun _ -> incr fired) () in
  M.note_commit m (ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "a"));
  let forged = ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "FORGED") in
  M.observe_event m ~stream:"s@1" forged;
  let forged2 = ev ~rev:1 ~key:"k" ~op:History.Event.Create (Some "FORGED2") in
  M.observe_event m ~stream:"s@2" forged2;
  Alcotest.(check int) "one distinct (code, subject) per stream" 2
    (List.length (M.violations m));
  Alcotest.(check int) "callback fires once per distinct pair" 2 !fired;
  M.note_commit m (ev ~rev:2 ~key:"k" ~op:History.Event.Update (Some "b"));
  M.observe_event m ~stream:"s@1" (ev ~rev:2 ~key:"k" ~op:History.Event.Update (Some "FORGED"));
  Alcotest.(check int) "repeat occurrences dedup" 2 (List.length (M.violations m));
  Alcotest.(check bool) "but still count" true (M.total m > 2)

let reset_allows_time_travel () =
  (* An informer adopting an older list moves its frontier backwards —
     the paper's time-travel semantics, legal by definition. *)
  let m = M.create () in
  let e1 = ev ~rev:1 ~key:"pods/a" ~op:History.Event.Create (Some "1") in
  let e2 = ev ~rev:2 ~key:"pods/a" ~op:History.Event.Update (Some "2") in
  M.note_commit m e1;
  M.note_commit m e2;
  M.observe_event m ~stream:"s@1" e1;
  M.observe_event m ~stream:"s@1" e2;
  let old_state = History.State.apply History.State.empty e1 in
  M.observe_reset m ~stream:"s@2" ~rev:1 old_state;
  M.observe_event m ~stream:"s@2" e2;
  Alcotest.(check int) "backwards reset is not a violation" 0 (M.total m)

(* --- differential harness: real store vs. sequential model --------- *)

type dop =
  | Put of int
  | Del of int
  | Txn of int * int * int
  | Compact_frac of int
  | Compact_keep of int
  | Grant of int
  | Attach of int * int
  | Keepalive of int
  | Revoke of int
  | Tick of int
  | Expire

let key_of i = if i < 6 then Printf.sprintf "pods/p%d" i else Printf.sprintf "nodes/n%d" (i - 6)

let dop_to_string = function
  | Put k -> Printf.sprintf "put %s" (key_of k)
  | Del k -> Printf.sprintf "del %s" (key_of k)
  | Txn (k, g, k2) -> Printf.sprintf "txn %s guard#%d %s" (key_of k) g (key_of k2)
  | Compact_frac n -> Printf.sprintf "compact %d/10" n
  | Compact_keep n -> Printf.sprintf "compact-keep %d" n
  | Grant ttl -> Printf.sprintf "grant ttl=%d" ttl
  | Attach (l, k) -> Printf.sprintf "attach #%d %s" l (key_of k)
  | Keepalive l -> Printf.sprintf "keepalive #%d" l
  | Revoke l -> Printf.sprintf "revoke #%d" l
  | Tick d -> Printf.sprintf "tick +%d" d
  | Expire -> "expire"

let gen_dop =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun k -> Put k) (int_bound 8));
        (3, map (fun k -> Del k) (int_bound 8));
        (3, map (fun (k, g, k2) -> Txn (k, g, k2)) (triple (int_bound 8) (int_bound 4) (int_bound 8)));
        (1, map (fun n -> Compact_frac n) (int_bound 9));
        (1, map (fun n -> Compact_keep n) (int_bound 10));
        (2, map (fun t -> Grant (1 + t)) (int_bound 4));
        (2, map (fun (l, k) -> Attach (l, k)) (pair (int_bound 5) (int_bound 8)));
        (1, map (fun l -> Keepalive l) (int_bound 5));
        (1, map (fun l -> Revoke l) (int_bound 5));
        (2, map (fun d -> Tick (1 + d)) (int_bound 3));
        (1, return Expire);
      ])

let arb_program =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map dop_to_string ops))
    QCheck.Gen.(list_size (0 -- 80) gen_dop)

(* Assert every observable of the real stack equals the model's. *)
let agree step kv model lease granted now =
  let ck name cond = if not cond then QCheck.Test.fail_reportf "step %d: %s disagrees" step name in
  ck "rev" (Etcdlike.Kv.rev kv = Model.rev model);
  ck "compacted_rev" (Etcdlike.Kv.compacted_rev kv = Model.compacted_rev model);
  ck "bindings" (History.State.bindings (Etcdlike.Kv.state kv) = Model.bindings model);
  ck "range pods/" (Etcdlike.Kv.range kv ~prefix:"pods/" = Model.range model ~prefix:"pods/");
  ck "range all" (Etcdlike.Kv.range kv ~prefix:"" = Model.range model ~prefix:"");
  List.iter
    (fun i ->
      let k = key_of i in
      ck ("get " ^ k) (Etcdlike.Kv.get kv k = Model.get model k))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ];
  let rev = Etcdlike.Kv.rev kv in
  List.iter
    (fun r ->
      ck (Printf.sprintf "since %d" r) (Etcdlike.Kv.since kv ~rev:r = Model.since model ~rev:r))
    [ 0; rev / 2; rev ];
  ck "active leases" (Etcdlike.Lease.active lease = Model.active_leases model);
  List.iter
    (fun id ->
      ck "lease keys" (Etcdlike.Lease.keys lease ~lease:id = Model.lease_keys model ~lease:id);
      ck "ttl remaining"
        (Etcdlike.Lease.ttl_remaining lease ~lease:id ~now = Model.ttl_remaining model ~lease:id ~now))
    granted

let qcheck_store_agrees_with_model =
  QCheck.Test.make ~name:"etcdlike agrees with the sequential model" ~count:120 arb_program
    (fun ops ->
      let kv = Etcdlike.Kv.create () in
      let model = ref Model.empty in
      let lease = Etcdlike.Lease.create () in
      let monitor = M.create () in
      Etcdlike.Kv.on_commit kv (M.note_commit monitor);
      let hub = Etcdlike.Watch.create kv in
      let delivered = ref 0 in
      (match
         Etcdlike.Watch.watch hub ~start_rev:0
           ~deliver:(fun e ->
             incr delivered;
             M.observe_event monitor ~stream:"harness@1" e)
           ()
       with
      | Ok _ -> ()
      | Error _ -> QCheck.Test.fail_report "watch from 0 compacted on an empty store");
      let granted = ref [] in
      let vc = ref 0 in
      let now = ref 0 in
      let fresh () =
        incr vc;
        Printf.sprintf "v%d" !vc
      in
      let slot l =
        match !granted with [] -> 999 | ids -> List.nth ids (l mod List.length ids)
      in
      List.iteri
        (fun step op ->
          (match op with
          | Put k ->
              let v = fresh () in
              let e = Etcdlike.Kv.put kv (key_of k) v in
              let m', e' = Model.put !model (key_of k) v in
              model := m';
              if e <> e' then QCheck.Test.fail_reportf "step %d: put event disagrees" step
          | Del k ->
              let e = Etcdlike.Kv.delete kv (key_of k) in
              let m', e' = Model.delete !model (key_of k) in
              model := m';
              if e <> e' then QCheck.Test.fail_reportf "step %d: delete event disagrees" step
          | Txn (k, g, k2) ->
              let key = key_of k in
              let guard =
                match g with
                | 0 -> Etcdlike.Txn.Exists key
                | 1 -> Etcdlike.Txn.Absent key
                | 2 ->
                    let mr = match Etcdlike.Kv.get kv key with Some (_, r) -> r | None -> 0 in
                    Etcdlike.Txn.Mod_rev_eq (key, mr)
                | 3 -> Etcdlike.Txn.Mod_rev_eq (key, 1)
                | _ -> (
                    match Etcdlike.Kv.get kv key with
                    | Some (v, _) -> Etcdlike.Txn.Value_eq (key, v)
                    | None -> Etcdlike.Txn.Value_eq (key, "nope"))
              in
              let txn =
                {
                  Etcdlike.Txn.guards = [ guard ];
                  success = [ Etcdlike.Txn.Put (key_of k2, fresh ()) ];
                  failure = [ Etcdlike.Txn.Delete (key_of k2) ];
                }
              in
              let o = Etcdlike.Txn.eval kv txn in
              let m', o' = Model.txn !model txn in
              model := m';
              if o <> o' then QCheck.Test.fail_reportf "step %d: txn outcome disagrees" step
          | Compact_frac n ->
              let before = n * Etcdlike.Kv.rev kv / 10 in
              Etcdlike.Kv.compact kv ~before;
              model := Model.compact !model ~before
          | Compact_keep n ->
              Etcdlike.Kv.compact_keep_last kv n;
              model := Model.compact_keep_last !model n
          | Grant ttl ->
              let id = Etcdlike.Lease.grant lease ~ttl ~now:!now in
              let m', id' = Model.grant !model ~ttl ~now:!now in
              model := m';
              if id <> id' then QCheck.Test.fail_reportf "step %d: lease id disagrees" step;
              granted := !granted @ [ id ]
          | Attach (l, k) ->
              let id = slot l in
              Etcdlike.Lease.attach lease ~lease:id ~key:(key_of k);
              model := Model.attach !model ~lease:id ~key:(key_of k)
          | Keepalive l ->
              let id = slot l in
              let ok = Etcdlike.Lease.keepalive lease ~lease:id ~now:!now in
              let m', ok' = Model.keepalive !model ~lease:id ~now:!now in
              model := m';
              if ok <> ok' then QCheck.Test.fail_reportf "step %d: keepalive disagrees" step
          | Revoke l ->
              let id = slot l in
              let keys = Etcdlike.Lease.revoke lease ~lease:id in
              let m', keys' = Model.revoke !model ~lease:id in
              model := m';
              granted := List.filter (fun g -> g <> id) !granted;
              if keys <> keys' then QCheck.Test.fail_reportf "step %d: revoke keys disagree" step;
              (* The store deletes a revoked lease's keys, as etcd does. *)
              List.iter
                (fun k ->
                  ignore (Etcdlike.Kv.delete kv k);
                  model := fst (Model.delete !model k))
                keys
          | Tick d -> now := !now + d
          | Expire ->
              let out = Etcdlike.Lease.expire lease ~now:!now in
              let m', out' = Model.expire !model ~now:!now in
              model := m';
              if out <> out' then QCheck.Test.fail_reportf "step %d: expire disagrees" step;
              granted := List.filter (fun g -> not (List.mem_assoc g out)) !granted;
              List.iter
                (fun (_, keys) ->
                  List.iter
                    (fun k ->
                      ignore (Etcdlike.Kv.delete kv k);
                      model := fst (Model.delete !model k))
                    keys)
                out);
          agree step kv !model lease !granted !now)
        ops;
      (* Every commit reached the watcher, and the watcher's stream kept
         the monitor silent — the real stack conforms to itself. *)
      if !delivered <> Etcdlike.Kv.rev kv then
        QCheck.Test.fail_reportf "delivered %d of %d commits" !delivered (Etcdlike.Kv.rev kv);
      M.check_state monitor ~subject:"harness" ~rev:(Etcdlike.Kv.rev kv) (Etcdlike.Kv.state kv);
      if M.total monitor > 0 then
        QCheck.Test.fail_reportf "monitor tripped: %s"
          (String.concat "; " (List.map M.describe (M.violations monitor)));
      true)

(* --- mutation self-test -------------------------------------------- *)

let selftest_all_mutations_detected () =
  let outcomes = Conformance.Selftest.run () in
  Alcotest.(check int) "control + five mutations" 6 (List.length outcomes);
  List.iter
    (fun (o : Conformance.Selftest.outcome) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s" o.Conformance.Selftest.mutation
           (if o.Conformance.Selftest.tripped then "tripped" else "silent"))
        true (Conformance.Selftest.ok o))
    outcomes

let selftest_stable_across_seeds () =
  List.iter
    (fun seed ->
      List.iter
        (fun (o : Conformance.Selftest.outcome) ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %Ld: %s" seed o.Conformance.Selftest.mutation)
            true (Conformance.Selftest.ok o))
        (Conformance.Selftest.run ~seed ()))
    [ 1L; 7L; 42L ]

(* HBase-boundary mutations: each must trip with its *expected* code —
   a lost one-shot notification is a gap, a truncated master view is a
   state divergence, a forged znode payload is a content violation. *)
let selftest_hbase_mutations_detected () =
  let outcomes = Conformance.Selftest.run_hbase () in
  Alcotest.(check int) "control + three mutations" 4 (List.length outcomes);
  List.iter
    (fun (o : Conformance.Selftest.outcome) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s (codes: %s)" o.Conformance.Selftest.mutation
           (if o.Conformance.Selftest.tripped then "tripped" else "silent")
           (String.concat ","
              (List.map Conformance.Monitor.code_to_string o.Conformance.Selftest.codes)))
        true
        (Conformance.Selftest.hbase_ok o))
    outcomes

let selftest_hbase_stable_across_seeds () =
  List.iter
    (fun seed ->
      List.iter
        (fun (o : Conformance.Selftest.outcome) ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %Ld: %s" seed o.Conformance.Selftest.mutation)
            true
            (Conformance.Selftest.hbase_ok o))
        (Conformance.Selftest.run_hbase ~seed ()))
    [ 1L; 7L; 42L ]

(* --- cluster tier: silence under faults, passivity ----------------- *)

let cluster_test strategy =
  Sieve.Runner.base_test ~config:Kube.Cluster.default_config
    ~workload:(Kube.Workload.pod_churn ~n:2 ())
    ~horizon:5_000_000 strategy

let conf (outcome : Sieve.Runner.outcome) =
  match outcome.Sieve.Runner.conformance with
  | Some c -> c
  | None -> Alcotest.fail "expected a conformance report"

let monitor_silent_under_faults () =
  let fixed =
    [
      Sieve.Strategy.No_perturbation;
      Sieve.Strategy.Crash_restart { victim = "kubelet-1"; at = 1_000_000; downtime = 800_000 };
      Sieve.Strategy.Partition_window
        { a = "kubelet-2"; b = "api-1"; from = 500_000; until = 2_000_000 };
      Sieve.Strategy.staleness ~dst:"scheduler" ~from:0 ~until:3_000_000 ~extra:400_000 ();
    ]
  in
  let random =
    Sieve.Baselines.random_faults ~seed:20260704L
      ~components:[ "kubelet-1"; "kubelet-2"; "scheduler" ]
      ~apiservers:[ "api-1"; "api-2" ] ~horizon:5_000_000 ~n:3
  in
  List.iter
    (fun strategy ->
      let outcome = Sieve.Runner.run_test ~check_conformance:true (cluster_test strategy) in
      let c = conf outcome in
      if c.Sieve.Runner.conf_total > 0 then
        Alcotest.fail
          (Printf.sprintf "monitor tripped under %s: %s"
             (Sieve.Strategy.describe strategy)
             (String.concat "; "
                (List.map Conformance.Monitor.describe c.Sieve.Runner.conf_violations)));
      Alcotest.(check bool)
        (Sieve.Strategy.describe strategy ^ " stays strict")
        true c.Sieve.Runner.conf_strict)
    (fixed @ random)

let drops_relax_but_stay_silent () =
  (* A deliberate observability gap ends strict mode; the always-on
     checks must still hold — the gap is the experiment, nothing else
     may go wrong. *)
  let strategy =
    Sieve.Strategy.observability_gap ~dst:"scheduler" ~from:0 ~until:4_000_000 ()
  in
  let outcome = Sieve.Runner.run_test ~check_conformance:true (cluster_test strategy) in
  let c = conf outcome in
  Alcotest.(check int) "always-on checks silent" 0 c.Sieve.Runner.conf_total

let corpus_reference_runs_conform () =
  List.iter
    (fun case ->
      let outcome =
        Sieve.Runner.run_test ~check_conformance:true (Sieve.Bugs.reference_test_of_case case)
      in
      let c = conf outcome in
      if c.Sieve.Runner.conf_total > 0 then
        Alcotest.fail
          (Printf.sprintf "%s: %s" case.Sieve.Bugs.id
             (String.concat "; "
                (List.map Conformance.Monitor.describe c.Sieve.Runner.conf_violations)));
      Alcotest.(check bool) (case.Sieve.Bugs.id ^ " strict") true c.Sieve.Runner.conf_strict)
    (Sieve.Bugs.all_with_extras ())

let monitor_is_passive () =
  (* Same test, flag on and off: the run's externally visible trajectory
     (trace bytes, oracle verdicts, truth revision) must be identical. *)
  List.iter
    (fun strategy ->
      let test = cluster_test strategy in
      let without = Sieve.Runner.run_test test in
      let with_m = Sieve.Runner.run_test ~check_conformance:true test in
      Alcotest.(check string)
        ("trace bytes unchanged under " ^ Sieve.Strategy.describe strategy)
        (Sieve.Runner.trace_jsonl without)
        (Sieve.Runner.trace_jsonl with_m);
      Alcotest.(check int) "same truth rev" without.Sieve.Runner.truth_rev
        with_m.Sieve.Runner.truth_rev;
      Alcotest.(check int) "same violation count"
        (List.length without.Sieve.Runner.violations)
        (List.length with_m.Sieve.Runner.violations))
    [
      Sieve.Strategy.No_perturbation;
      Sieve.Strategy.Crash_restart { victim = "kubelet-1"; at = 1_000_000; downtime = 800_000 };
    ]

let suites =
  [
    ( "conformance monitor",
      [
        Alcotest.test_case "faithful stream is silent" `Quick faithful_stream_is_silent;
        Alcotest.test_case "density" `Quick density_violation;
        Alcotest.test_case "non-monotone" `Quick non_monotone_violation;
        Alcotest.test_case "content" `Quick content_violation;
        Alcotest.test_case "prefix filter breach" `Quick prefix_filter_violation;
        Alcotest.test_case "gap is strict-only" `Quick gap_strict_only;
        Alcotest.test_case "future rev" `Quick future_rev_violation;
        Alcotest.test_case "state divergence" `Quick state_divergence_violation;
        Alcotest.test_case "violations deduplicate" `Quick violations_deduplicate;
        Alcotest.test_case "reset allows time travel" `Quick reset_allows_time_travel;
      ] );
    ( "conformance differential",
      [ Qcheck_util.to_alcotest qcheck_store_agrees_with_model ] );
    ( "conformance self-test",
      [
        Alcotest.test_case "all mutations detected" `Quick selftest_all_mutations_detected;
        Alcotest.test_case "stable across seeds" `Quick selftest_stable_across_seeds;
        Alcotest.test_case "hbase mutations trip their expected codes" `Quick
          selftest_hbase_mutations_detected;
        Alcotest.test_case "hbase mutations stable across seeds" `Quick
          selftest_hbase_stable_across_seeds;
      ] );
    ( "conformance cluster",
      [
        Alcotest.test_case "silent under faults" `Slow monitor_silent_under_faults;
        Alcotest.test_case "drops relax but stay silent" `Slow drops_relax_but_stay_silent;
        Alcotest.test_case "corpus reference runs conform" `Slow corpus_reference_runs_conform;
        Alcotest.test_case "monitor is passive" `Slow monitor_is_passive;
      ] );
  ]
