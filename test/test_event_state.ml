(* Events and materialized state, including the Figure 3c cancellation
   property of State.diff. *)

open History

let ev rev key op value = Event.make ~rev ~key ~op value

let apply_events events = List.fold_left State.apply State.empty events

let create_then_find () =
  let s = apply_events [ ev 1 "k" Event.Create (Some "v1") ] in
  Alcotest.(check (option (pair string int))) "value and rev" (Some ("v1", 1)) (State.find s "k");
  Alcotest.(check int) "state rev" 1 (State.rev s)

let update_replaces () =
  let s = apply_events [ ev 1 "k" Event.Create (Some "a"); ev 2 "k" Event.Update (Some "b") ] in
  Alcotest.(check (option string)) "updated" (Some "b") (State.get s "k");
  Alcotest.(check int) "rev advanced" 2 (State.rev s)

let delete_removes () =
  let s = apply_events [ ev 1 "k" Event.Create (Some "a"); ev 2 "k" Event.Delete None ] in
  Alcotest.(check bool) "gone" false (State.mem s "k");
  Alcotest.(check int) "rev still advances" 2 (State.rev s)

let delete_absent_tolerated () =
  let s = apply_events [ ev 1 "k" Event.Delete None ] in
  Alcotest.(check int) "cardinal" 0 (State.cardinal s)

let prefix_query () =
  let s =
    apply_events
      [
        ev 1 "pods/a" Event.Create (Some "1");
        ev 2 "nodes/x" Event.Create (Some "2");
        ev 3 "pods/b" Event.Create (Some "3");
      ]
  in
  Alcotest.(check (list string)) "pods only" [ "pods/a"; "pods/b" ]
    (State.keys_with_prefix s ~prefix:"pods/")

let bindings_with_prefix_single_scan () =
  let s =
    apply_events
      [
        ev 1 "pods/a" Event.Create (Some "1");
        ev 2 "nodes/x" Event.Create (Some "2");
        ev 3 "pods/b" Event.Create (Some "3");
        ev 4 "pods/b" Event.Update (Some "3b");
        ev 5 "pods0" Event.Create (Some "past the prefix run");
      ]
  in
  Alcotest.(check (list (pair string (pair string int))))
    "keys, values and mod-revs in one scan"
    [ ("pods/a", ("1", 1)); ("pods/b", ("3b", 4)) ]
    (State.bindings_with_prefix s ~prefix:"pods/");
  Alcotest.(check (list (pair string (pair string int))))
    "empty prefix is all bindings" (State.bindings s)
    (State.bindings_with_prefix s ~prefix:"")

let qcheck_bindings_with_prefix_agrees =
  (* The range scan cut at the first non-prefix key must agree with the
     naive full-keyspace filter for arbitrary key populations. *)
  let key_gen = QCheck.Gen.(map (fun (a, b) -> a ^ b) (pair (oneofl [ "pods/"; "pods"; "nodes/"; "p"; "" ]) (string_size ~gen:(char_range 'a' 'e') (0 -- 3)))) in
  QCheck.Test.make ~name:"bindings_with_prefix = naive filter" ~count:300
    QCheck.(pair (list_of_size Gen.(0 -- 40) (make ~print:Fun.id key_gen)) (oneofl [ ""; "p"; "pods/"; "pods/a"; "nodes/"; "zz" ]))
    (fun (keys, prefix) ->
      let s =
        List.fold_left
          (fun (s, rev) key -> (State.apply s (ev rev key Event.Create (Some key)), rev + 1))
          (State.empty, 1) keys
        |> fst
      in
      let naive =
        List.filter (fun (key, _) -> String.starts_with ~prefix key) (State.bindings s)
      in
      State.bindings_with_prefix s ~prefix = naive)

let bindings_sorted () =
  let s = apply_events [ ev 1 "b" Event.Create (Some "2"); ev 2 "a" Event.Create (Some "1") ] in
  Alcotest.(check (list string)) "sorted keys" [ "a"; "b" ] (State.keys s)

let diff_classifies () =
  let before =
    apply_events [ ev 1 "same" Event.Create (Some "x"); ev 2 "gone" Event.Create (Some "y") ]
  in
  let after =
    apply_events
      [
        ev 1 "same" Event.Create (Some "x");
        ev 3 "new" Event.Create (Some "z");
        ev 4 "same2" Event.Create (Some "w");
      ]
  in
  let after = State.apply after (ev 5 "same2" Event.Update (Some "w2")) in
  let d = State.diff before after in
  Alcotest.(check bool) "gone removed" true (List.mem ("gone", `Removed) d);
  Alcotest.(check bool) "new added" true (List.mem ("new", `Added) d);
  Alcotest.(check bool) "same absent" false (List.mem_assoc "same" d)

let diff_hides_cancelled_event () =
  (* e1 (create) is cancelled by e2 (delete) between two observations:
     the sparse reader's diff is empty — Figure 3c. *)
  let before = State.empty in
  let after =
    apply_events [ ev 1 "ghost" Event.Create (Some "v"); ev 2 "ghost" Event.Delete None ]
  in
  Alcotest.(check int) "no observable change" 0 (List.length (State.diff before after))

let pp_op_strings () =
  Alcotest.(check string) "create" "create" (Event.op_to_string Event.Create);
  Alcotest.(check string) "update" "update" (Event.op_to_string Event.Update);
  Alcotest.(check string) "delete" "delete" (Event.op_to_string Event.Delete);
  Alcotest.(check string) "describe" "@3 delete k" (Event.describe (ev 3 "k" Event.Delete None))

let qcheck_apply_monotone_rev =
  QCheck.Test.make ~name:"state rev is max applied rev" ~count:200
    QCheck.(list_of_size Gen.(0 -- 50) (pair (int_range 1 100) (int_range 0 2)))
    (fun specs ->
      let events =
        List.map
          (fun (rev, op) ->
            let op =
              match op with 0 -> Event.Create | 1 -> Event.Update | _ -> Event.Delete
            in
            ev rev (Printf.sprintf "k%d" (rev mod 5)) op
              (if op = Event.Delete then None else Some "v"))
          specs
      in
      let s = apply_events events in
      State.rev s = List.fold_left (fun acc (e : string Event.t) -> max acc e.Event.rev) 0 events)

let suites =
  [
    ( "event/state",
      [
        Alcotest.test_case "create then find" `Quick create_then_find;
        Alcotest.test_case "update replaces" `Quick update_replaces;
        Alcotest.test_case "delete removes" `Quick delete_removes;
        Alcotest.test_case "delete absent tolerated" `Quick delete_absent_tolerated;
        Alcotest.test_case "prefix query" `Quick prefix_query;
        Alcotest.test_case "bindings_with_prefix single scan" `Quick
          bindings_with_prefix_single_scan;
        Alcotest.test_case "bindings sorted" `Quick bindings_sorted;
        Alcotest.test_case "diff classifies" `Quick diff_classifies;
        Alcotest.test_case "diff hides cancelled event (Fig 3c)" `Quick diff_hides_cancelled_event;
        Alcotest.test_case "op rendering" `Quick pp_op_strings;
        Qcheck_util.to_alcotest qcheck_apply_monotone_rev;
        Qcheck_util.to_alcotest qcheck_bindings_with_prefix_agrees;
      ] );
  ]
