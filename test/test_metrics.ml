(* Counters, gauges, series, histogram percentiles and the JSON
   snapshot. *)

let counters_accumulate () =
  let m = Dsim.Metrics.create () in
  Dsim.Metrics.incr m "a";
  Dsim.Metrics.incr m "a";
  Dsim.Metrics.add m "a" 3;
  Alcotest.(check int) "a=5" 5 (Dsim.Metrics.count m "a");
  Alcotest.(check int) "missing=0" 0 (Dsim.Metrics.count m "nope")

let counters_listing_sorted () =
  let m = Dsim.Metrics.create () in
  Dsim.Metrics.incr m "z";
  Dsim.Metrics.incr m "a";
  Alcotest.(check (list (pair string int))) "sorted" [ ("a", 1); ("z", 1) ]
    (Dsim.Metrics.counters m)

let histogram_stats () =
  let m = Dsim.Metrics.create () in
  List.iter (Dsim.Metrics.observe m "lat") [ 1.0; 2.0; 3.0; 4.0; 100.0 ];
  Alcotest.(check int) "samples" 5 (Dsim.Metrics.samples m "lat");
  Alcotest.(check (float 0.001)) "mean" 22.0 (Dsim.Metrics.mean m "lat");
  Alcotest.(check (float 0.001)) "p50" 3.0 (Dsim.Metrics.percentile m "lat" 0.5);
  Alcotest.(check (float 0.001)) "p99" 100.0 (Dsim.Metrics.percentile m "lat" 0.99)

let empty_histogram_zero () =
  let m = Dsim.Metrics.create () in
  Alcotest.(check (float 0.0)) "mean" 0.0 (Dsim.Metrics.mean m "none");
  Alcotest.(check (float 0.0)) "p99" 0.0 (Dsim.Metrics.percentile m "none" 0.99)

let reset_clears () =
  let m = Dsim.Metrics.create () in
  Dsim.Metrics.incr m "a";
  Dsim.Metrics.observe m "h" 1.0;
  Dsim.Metrics.reset m;
  Alcotest.(check int) "counter cleared" 0 (Dsim.Metrics.count m "a");
  Alcotest.(check int) "histogram cleared" 0 (Dsim.Metrics.samples m "h")

let percentile_extremes () =
  let m = Dsim.Metrics.create () in
  List.iter (Dsim.Metrics.observe m "h") [ 5.0; 1.0; 3.0 ];
  Alcotest.(check (float 0.0)) "p=0 is the minimum" 1.0 (Dsim.Metrics.percentile m "h" 0.0);
  Alcotest.(check (float 0.0)) "p=1 is the maximum" 5.0 (Dsim.Metrics.percentile m "h" 1.0);
  (* Out-of-range probabilities clamp instead of raising. *)
  Alcotest.(check (float 0.0)) "p<0 clamps" 1.0 (Dsim.Metrics.percentile m "h" (-1.0));
  Alcotest.(check (float 0.0)) "p>1 clamps" 5.0 (Dsim.Metrics.percentile m "h" 2.0)

let observe_after_percentile_invalidates_cache () =
  let m = Dsim.Metrics.create () in
  List.iter (Dsim.Metrics.observe m "h") [ 1.0; 2.0; 3.0 ];
  Alcotest.(check (float 0.0)) "before" 3.0 (Dsim.Metrics.percentile m "h" 1.0);
  Dsim.Metrics.observe m "h" 10.0;
  Alcotest.(check (float 0.0)) "after" 10.0 (Dsim.Metrics.percentile m "h" 1.0);
  Alcotest.(check (float 0.001)) "mean tracks" 4.0 (Dsim.Metrics.mean m "h")

let histogram_growth () =
  let m = Dsim.Metrics.create () in
  for i = 1 to 10_000 do
    Dsim.Metrics.observe m "big" (float_of_int i)
  done;
  Alcotest.(check int) "all samples kept" 10_000 (Dsim.Metrics.samples m "big");
  Alcotest.(check (float 0.0)) "max" 10_000.0 (Dsim.Metrics.percentile m "big" 1.0);
  Alcotest.(check (float 0.001)) "mean" 5000.5 (Dsim.Metrics.mean m "big")

let gauges_set_and_add () =
  let m = Dsim.Metrics.create () in
  Dsim.Metrics.set_gauge m "depth" 4.0;
  Dsim.Metrics.add_gauge m "depth" (-1.0);
  Dsim.Metrics.add_gauge m "other" 2.5;
  Alcotest.(check (float 0.0)) "set+add" 3.0 (Dsim.Metrics.gauge m "depth");
  Alcotest.(check (float 0.0)) "missing=0" 0.0 (Dsim.Metrics.gauge m "nope");
  Alcotest.(check (list (pair string (float 0.0)))) "sorted listing"
    [ ("depth", 3.0); ("other", 2.5) ]
    (Dsim.Metrics.gauges m)

let series_chronological () =
  let m = Dsim.Metrics.create () in
  Dsim.Metrics.sample m "lag" ~time:100 1.0;
  Dsim.Metrics.sample m "lag" ~time:200 5.0;
  Dsim.Metrics.sample m "lag" ~time:300 2.0;
  Alcotest.(check (list (pair int (float 0.0)))) "in time order"
    [ (100, 1.0); (200, 5.0); (300, 2.0) ]
    (Dsim.Metrics.series m "lag");
  Alcotest.(check (list string)) "names" [ "lag" ] (Dsim.Metrics.series_names m)

let json_snapshot_parses () =
  let m = Dsim.Metrics.create () in
  Dsim.Metrics.incr m "commits";
  Dsim.Metrics.set_gauge m "lag.api-1" 7.0;
  List.iter (Dsim.Metrics.observe m "latency") [ 500.0; 1200.0 ];
  Dsim.Metrics.sample m "lag.api-1" ~time:100_000 7.0;
  match Dsim.Json.parse (Dsim.Json.to_string (Dsim.Metrics.to_json m)) with
  | Error msg -> Alcotest.failf "snapshot does not parse: %s" msg
  | Ok j ->
      let section name =
        match Dsim.Json.member name j with
        | Some s -> s
        | None -> Alcotest.failf "snapshot lost %s" name
      in
      (match Dsim.Json.member "commits" (section "counters") with
      | Some v -> Alcotest.(check (option int)) "counter" (Some 1) (Dsim.Json.to_int v)
      | None -> Alcotest.fail "counter missing");
      (match Dsim.Json.member "lag.api-1" (section "gauges") with
      | Some v -> Alcotest.(check (option (float 0.0))) "gauge" (Some 7.0) (Dsim.Json.to_float v)
      | None -> Alcotest.fail "gauge missing");
      (match Dsim.Json.member "latency" (section "histograms") with
      | Some h -> (
          match Dsim.Json.member "count" h with
          | Some v -> Alcotest.(check (option int)) "histogram count" (Some 2) (Dsim.Json.to_int v)
          | None -> Alcotest.fail "histogram summary missing count")
      | None -> Alcotest.fail "histogram missing");
      match Dsim.Json.member "lag.api-1" (section "series") with
      | Some (Dsim.Json.List [ Dsim.Json.List [ t; v ] ]) ->
          Alcotest.(check (option int)) "series time" (Some 100_000) (Dsim.Json.to_int t);
          Alcotest.(check (option (float 0.0))) "series value" (Some 7.0) (Dsim.Json.to_float v)
      | _ -> Alcotest.fail "series missing or ill-shaped"

let qcheck_percentile_is_member =
  QCheck.Test.make ~name:"percentile returns an observed sample" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range 0.0 1000.0)) (float_range 0.01 1.0))
    (fun (samples, p) ->
      let m = Dsim.Metrics.create () in
      List.iter (Dsim.Metrics.observe m "h") samples;
      List.mem (Dsim.Metrics.percentile m "h" p) samples)

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "counters accumulate" `Quick counters_accumulate;
        Alcotest.test_case "counters listing sorted" `Quick counters_listing_sorted;
        Alcotest.test_case "histogram stats" `Quick histogram_stats;
        Alcotest.test_case "empty histogram zero" `Quick empty_histogram_zero;
        Alcotest.test_case "reset clears" `Quick reset_clears;
        Alcotest.test_case "percentile extremes" `Quick percentile_extremes;
        Alcotest.test_case "observe invalidates cache" `Quick
          observe_after_percentile_invalidates_cache;
        Alcotest.test_case "histogram growth" `Quick histogram_growth;
        Alcotest.test_case "gauges set and add" `Quick gauges_set_and_add;
        Alcotest.test_case "series chronological" `Quick series_chronological;
        Alcotest.test_case "json snapshot parses" `Quick json_snapshot_parses;
        Qcheck_util.to_alcotest qcheck_percentile_is_member;
      ] );
  ]
