(* The epoch-seal protocol (Section 6.2 in vivo): silent event loss
   becomes a detected integrity failure and is healed by an immediate
   re-list. *)

let sealed config = { config with Kube.Cluster.api_epoch_seal = Some 5 }

let run case config =
  Sieve.Runner.run_test
    (Sieve.Runner.base_test ~config
       ~workload:(Sieve.Bugs.kube_workload case)
       ~horizon:case.Sieve.Bugs.horizon case.Sieve.Bugs.sieve_strategy)

let hit case (o : Sieve.Runner.outcome) =
  List.exists (fun (_, v) -> case.Sieve.Bugs.matches v) o.Sieve.Runner.violations

let seal_detects_and_heals_dropped_event () =
  (* Straight 56261 setup under seals: the dropped node-deletion is
     detected within an epoch and the scheduler re-lists. *)
  let case = Sieve.Bugs.k8s_56261 () in
  let outcome = run case (sealed (Sieve.Bugs.kube_config case)) in
  Alcotest.(check bool) "bug closed" false (hit case outcome);
  let scheduler = Option.get (Kube.Cluster.scheduler (Sieve.Runner.kube_cluster outcome)) in
  Alcotest.(check bool) "a gap was detected" true
    (Kube.Informer.gaps_detected (Kube.Scheduler.nodes_informer scheduler) >= 1)

let seals_close_gap_bugs () =
  List.iter
    (fun id ->
      let case = Option.get (Sieve.Bugs.find id) in
      Alcotest.(check bool) (id ^ " closed by seals") false
        (hit case (run case (sealed (Sieve.Bugs.kube_config case)))))
    [ "K8s-56261"; "CA-398"; "CA-400"; "CA-402"; "EXT-NC"; "EXT-DEP" ]

let seals_do_not_fix_staleness_or_time_travel () =
  (* Seals prove completeness, not freshness: a frozen apiserver seals
     its own stale stream consistently, and delayed events arrive before
     their seal (FIFO). *)
  List.iter
    (fun id ->
      let case = Option.get (Sieve.Bugs.find id) in
      Alcotest.(check bool) (id ^ " rightly still reproduces") true
        (hit case (run case (sealed (Sieve.Bugs.kube_config case)))))
    [ "K8s-59848"; "EXT-RS" ]

let no_false_positives_in_calm_runs () =
  let config = sealed Kube.Cluster.default_config in
  let cluster = Kube.Cluster.create ~config () in
  let oracle = Sieve.Oracle.attach cluster in
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:4 ());
  Kube.Cluster.run cluster ~until:9_000_000;
  Alcotest.(check int) "no violations" 0 (List.length (Sieve.Oracle.violations oracle));
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Kube.Kubelet.name k ^ ": no spurious gaps")
        0
        (Kube.Informer.gaps_detected (Kube.Kubelet.informer k)))
    (Kube.Cluster.kubelets cluster)

let delays_do_not_trip_seals () =
  (* FIFO means a delayed event still precedes its seal: staleness is not
     misreported as loss. *)
  let config = sealed Kube.Cluster.default_config in
  let cluster = Kube.Cluster.create ~config () in
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.staleness ~dst:"kubelet-1" ~from:0 ~until:9_000_000 ~extra:400_000 ());
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:4 ());
  Kube.Cluster.run cluster ~until:9_000_000;
  let kubelet_1 = List.hd (Kube.Cluster.kubelets cluster) in
  Alcotest.(check int) "no gaps reported under pure delay" 0
    (Kube.Informer.gaps_detected (Kube.Kubelet.informer kubelet_1))

let suites =
  [
    ( "seals",
      [
        Alcotest.test_case "seal detects and heals a dropped event" `Quick
          seal_detects_and_heals_dropped_event;
        Alcotest.test_case "seals close all observability-gap bugs" `Slow seals_close_gap_bugs;
        Alcotest.test_case "seals do not fix staleness/time travel" `Slow
          seals_do_not_fix_staleness_or_time_travel;
        Alcotest.test_case "no false positives in calm runs" `Quick
          no_false_positives_in_calm_runs;
        Alcotest.test_case "delays do not trip seals" `Quick delays_do_not_trip_seals;
      ] );
  ]
