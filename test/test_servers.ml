(* The etcd node and the apiserver, exercised over the simulated network. *)

let setup () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let intercept = Kube.Intercept.create () in
  let etcd = Kube.Etcd.create ~net ~intercept () in
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  (engine, net, intercept, etcd)

let call engine net req =
  let result = ref None in
  Dsim.Network.call net ~src:"client" ~dst:"etcd" req (fun r -> result := Some r);
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 2_000_000) engine;
  !result

let etcd_range_and_txn () =
  let engine, net, _, etcd = setup () in
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/a" (Kube.Resource.make_pod "a"));
  (match call engine net (Kube.Messages.Etcd_range { prefix = "pods/" }) with
  | Some (Ok (Kube.Messages.Items { items; rev })) ->
      Alcotest.(check int) "one item" 1 (List.length items);
      Alcotest.(check int) "rev 1" 1 rev
  | _ -> Alcotest.fail "range failed");
  match
    call engine net
      (Kube.Messages.Etcd_txn
         { txn = Kube.Messages.put "pods/b" (Kube.Resource.make_pod "b"); origin = "client"; lease = None })
  with
  | Some (Ok (Kube.Messages.Txn_result { succeeded = true; rev = 2 })) -> ()
  | _ -> Alcotest.fail "txn failed"

let etcd_watch_streams_via_pipe () =
  let engine, net, _, etcd = setup () in
  let received = ref [] in
  let watch =
    Kube.Messages.Etcd_watch
      {
        prefix = Some "pods/";
        start_rev = 0;
        subscriber = "client";
        stream_id = "client#pods";
        deliver =
          (fun item ->
            match item with
            | Kube.Pipe.Event e -> received := e.History.Event.rev :: !received
            | Kube.Pipe.Bookmark _ | Kube.Pipe.Seal _ -> ());
      }
  in
  (match call engine net watch with
  | Some (Ok (Kube.Messages.Watch_ok _)) -> ()
  | _ -> Alcotest.fail "watch failed");
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/a" (Kube.Resource.make_pod "a"));
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "nodes/x" (Kube.Resource.make_node "x"));
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 1_000_000) engine;
  Alcotest.(check (list int)) "pod event only" [ 1 ] (List.rev !received);
  Alcotest.(check (list string)) "subscribed" [ "client#pods" ] (Kube.Etcd.subscribers etcd)

let etcd_watch_window_compaction () =
  let engine, net, _, etcd = setup () in
  let etcd_kv = Kube.Etcd.kv etcd in
  ignore etcd_kv;
  ignore engine;
  ignore net;
  (* Recreate with a tiny window on a fresh engine for isolation. *)
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let intercept = Kube.Intercept.create () in
  let etcd = Kube.Etcd.create ~net ~intercept ~watch_window:2 () in
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  for i = 1 to 6 do
    ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) (Printf.sprintf "k%d" i) (Kube.Resource.make_node "n"))
  done;
  let result = ref None in
  Dsim.Network.call net ~src:"client" ~dst:"etcd"
    (Kube.Messages.Etcd_watch
       {
         prefix = None;
         start_rev = 1;
         subscriber = "client";
         stream_id = "client#all";
         deliver = (fun _ -> ());
       })
    (fun r -> result := Some r);
  Dsim.Engine.run ~until:2_000_000 engine;
  match !result with
  | Some (Ok (Kube.Messages.Watch_compacted { compacted_rev = 4 })) -> ()
  | _ -> Alcotest.fail "expected compacted at 4"

(* Apiserver serving from its cache. *)
let api_setup () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let intercept = Kube.Intercept.create () in
  let etcd = Kube.Etcd.create ~net ~intercept () in
  let api = Kube.Apiserver.create ~net ~intercept ~name:"api-1" ~etcd:"etcd" () in
  Kube.Apiserver.start api;
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Engine.run ~until:100_000 engine;
  (engine, net, etcd, api)

let api_call engine net req =
  let result = ref None in
  Dsim.Network.call net ~src:"client" ~dst:"api-1" req (fun r -> result := Some r);
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 2_000_000) engine;
  !result

let apiserver_becomes_ready_and_caches () =
  let engine, net, etcd, api = api_setup () in
  Alcotest.(check bool) "ready" true (Kube.Apiserver.ready api);
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/a" (Kube.Resource.make_pod "a"));
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 100_000) engine;
  Alcotest.(check int) "cache caught up" 1 (Kube.Apiserver.rev api);
  match api_call engine net (Kube.Messages.Api_list { prefix = "pods/"; quorum = false }) with
  | Some (Ok (Kube.Messages.Items { items; _ })) ->
      Alcotest.(check int) "served from cache" 1 (List.length items)
  | _ -> Alcotest.fail "list failed"

let apiserver_stale_when_partitioned () =
  let engine, net, etcd, _api = api_setup () in
  Dsim.Network.partition net "etcd" "api-1";
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/late" (Kube.Resource.make_pod "late"));
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 300_000) engine;
  (* Cached list misses the new pod; quorum read cannot be served. *)
  (match api_call engine net (Kube.Messages.Api_list { prefix = "pods/"; quorum = false }) with
  | Some (Ok (Kube.Messages.Items { items; _ })) ->
      Alcotest.(check int) "stale cache: no pod" 0 (List.length items)
  | _ -> Alcotest.fail "cached list should still work");
  (* Either the apiserver reports the backend gone, or the whole call
     times out behind it — both are failures to serve a quorum read. *)
  match api_call engine net (Kube.Messages.Api_get { key = "pods/late"; quorum = true }) with
  | Some (Ok Kube.Messages.Backend_unavailable) | Some (Error _) -> ()
  | _ -> Alcotest.fail "quorum read should fail during partition"

let apiserver_txn_forwarded () =
  let engine, net, etcd, _ = api_setup () in
  (match
     api_call engine net
       (Kube.Messages.Api_txn
          { txn = Kube.Messages.put "pods/w" (Kube.Resource.make_pod "w"); origin = "client"; lease = None })
   with
  | Some (Ok (Kube.Messages.Txn_result { succeeded = true; _ })) -> ()
  | _ -> Alcotest.fail "txn failed");
  Alcotest.(check bool) "landed in etcd" true
    (Etcdlike.Kv.get (Kube.Etcd.kv etcd) "pods/w" <> None)

let apiserver_watch_compacted_window () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let intercept = Kube.Intercept.create () in
  let etcd = Kube.Etcd.create ~net ~intercept () in
  let api = Kube.Apiserver.create ~net ~intercept ~name:"api-1" ~etcd:"etcd" ~window_size:2 () in
  Kube.Apiserver.start api;
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Engine.run ~until:100_000 engine;
  for i = 1 to 6 do
    ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) (Printf.sprintf "pods/p%d" i) (Kube.Resource.make_pod "p"))
  done;
  Dsim.Engine.run ~until:400_000 engine;
  let result = ref None in
  Dsim.Network.call net ~src:"client" ~dst:"api-1"
    (Kube.Messages.Api_watch
       {
         prefix = Some "pods/";
         start_rev = 1;
         subscriber = "client";
         stream_id = "client#pods";
         deliver = (fun _ -> ());
       })
    (fun r -> result := Some r);
  Dsim.Engine.run ~until:1_000_000 engine;
  match !result with
  | Some (Ok (Kube.Messages.Watch_compacted _)) -> ()
  | _ -> Alcotest.fail "expected window compaction"

let apiserver_restart_relists () =
  let engine, net, etcd, api = api_setup () in
  ignore api;
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/a" (Kube.Resource.make_pod "a"));
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 100_000) engine;
  Dsim.Network.crash net "api-1";
  Alcotest.(check bool) "not ready while down" false (Kube.Apiserver.ready api);
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/b" (Kube.Resource.make_pod "b"));
  Dsim.Network.restart net "api-1";
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 500_000) engine;
  Alcotest.(check bool) "ready again" true (Kube.Apiserver.ready api);
  Alcotest.(check int) "caught up past restart" 2 (Kube.Apiserver.rev api)

(* Regression for the subscriber-table fan-out: a stream that re-registers
   itself (same stream_id) from inside its own delivery callback replaces
   its table entry while deliveries for it are still in flight. The old
   entry must go silent, the replacement must keep streaming, and the
   fan-out iteration must survive the mutation. *)
let apiserver_reregister_from_delivery () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let intercept = Kube.Intercept.create () in
  let etcd = Kube.Etcd.create ~net ~intercept () in
  let api = Kube.Apiserver.create ~net ~intercept ~name:"api-1" ~etcd:"etcd" () in
  Kube.Apiserver.start api;
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Engine.run ~until:100_000 engine;
  let received = ref [] in
  let reregistered = ref false in
  let rec make_watch ~start_rev =
    Kube.Messages.Api_watch
      {
        prefix = Some "pods/";
        start_rev;
        subscriber = "client";
        stream_id = "client#pods";
        deliver =
          (fun item ->
            match item with
            | Kube.Pipe.Event e ->
                received := e.History.Event.rev :: !received;
                (* Re-subscribe from inside the delivery callback, while
                   this stream's entry is the one being delivered to. *)
                if not !reregistered then begin
                  reregistered := true;
                  Dsim.Network.call net ~src:"client" ~dst:"api-1"
                    (make_watch ~start_rev:e.History.Event.rev)
                    (fun _ -> ())
                end
            | Kube.Pipe.Bookmark _ | Kube.Pipe.Seal _ -> ());
      }
  in
  Dsim.Network.call net ~src:"client" ~dst:"api-1" (make_watch ~start_rev:0) (fun _ -> ());
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 500_000) engine;
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/a" (Kube.Resource.make_pod "a"));
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 500_000) engine;
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/b" (Kube.Resource.make_pod "b"));
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "nodes/x" (Kube.Resource.make_node "x"));
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 1_000_000) engine;
  Alcotest.(check bool) "re-registered" true !reregistered;
  (* rev 1 triggers the re-register; the replacement stream (start_rev 1)
     then carries rev 2; the node event matches neither. No duplicates,
     no lost pod events, exactly one live subscriber. *)
  Alcotest.(check (list int)) "continuous, no duplicates" [ 1; 2 ] (List.rev !received);
  Alcotest.(check int) "single subscriber" 1 (Kube.Apiserver.subscriber_count api)

let suites =
  [
    ( "servers",
      [
        Alcotest.test_case "etcd range and txn over rpc" `Quick etcd_range_and_txn;
        Alcotest.test_case "etcd watch streams via pipe" `Quick etcd_watch_streams_via_pipe;
        Alcotest.test_case "etcd watch window compaction" `Quick etcd_watch_window_compaction;
        Alcotest.test_case "apiserver becomes ready and caches" `Quick
          apiserver_becomes_ready_and_caches;
        Alcotest.test_case "apiserver stale when partitioned" `Quick
          apiserver_stale_when_partitioned;
        Alcotest.test_case "apiserver txn forwarded" `Quick apiserver_txn_forwarded;
        Alcotest.test_case "apiserver watch window compaction" `Quick
          apiserver_watch_compacted_window;
        Alcotest.test_case "apiserver restart relists" `Quick apiserver_restart_relists;
        Alcotest.test_case "apiserver re-register from delivery (regression)" `Quick
          apiserver_reregister_from_delivery;
      ] );
  ]
