(* Structured trace entries: ring-buffer eviction, cause links / chain
   extraction, and the JSONL round-trip. *)

let record t ?cause detail =
  Dsim.Trace.record t ~time:0 ~actor:"a" ~kind:"k" ?cause detail

let emit t ?cause detail = Dsim.Trace.emit t ~time:0 ~actor:"a" ~kind:"k" ?cause detail

let details t = List.map (fun e -> e.Dsim.Trace.detail) (Dsim.Trace.entries t)

let ids_grow_from_one () =
  let t = Dsim.Trace.create () in
  Alcotest.(check int) "first id" 1 (emit t "one");
  Alcotest.(check int) "second id" 2 (emit t "two");
  record t "three";
  Alcotest.(check int) "length" 3 (Dsim.Trace.length t);
  Alcotest.(check int) "recorded" 3 (Dsim.Trace.recorded t);
  Alcotest.(check int) "dropped" 0 (Dsim.Trace.dropped t)

let ring_evicts_oldest_in_order () =
  let t = Dsim.Trace.create ~capacity:3 () in
  List.iter (record t) [ "e1"; "e2"; "e3"; "e4"; "e5" ];
  Alcotest.(check (list string)) "retained suffix" [ "e3"; "e4"; "e5" ] (details t);
  Alcotest.(check int) "length" 3 (Dsim.Trace.length t);
  Alcotest.(check int) "recorded" 5 (Dsim.Trace.recorded t);
  Alcotest.(check int) "dropped" 2 (Dsim.Trace.dropped t);
  Alcotest.(check bool) "evicted id gone" true (Dsim.Trace.find t ~id:1 = None);
  Alcotest.(check bool) "live id found" true (Dsim.Trace.find t ~id:4 <> None)

let ring_capacity_validated () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Dsim.Trace.create ~capacity:0 ()))

let unbounded_mode_never_drops () =
  let t = Dsim.Trace.create () in
  for i = 1 to 1000 do
    record t (string_of_int i)
  done;
  Alcotest.(check int) "all live" 1000 (Dsim.Trace.length t);
  Alcotest.(check int) "none dropped" 0 (Dsim.Trace.dropped t);
  Alcotest.(check bool) "capacity none" true (Dsim.Trace.capacity t = None)

let chain_walks_cause_links () =
  let t = Dsim.Trace.create () in
  let a = emit t "commit" in
  let b = emit t ~cause:a "deliver" in
  let _noise = emit t "unrelated" in
  record t ~cause:b "violation";
  let violation =
    match Dsim.Trace.find_all t ~kind:"k" with
    | entries -> List.nth entries (List.length entries - 1)
  in
  let chain = Dsim.Trace.chain t ~id:violation.Dsim.Trace.id in
  Alcotest.(check (list string))
    "oldest first, noise excluded" [ "commit"; "deliver"; "violation" ]
    (List.map (fun e -> e.Dsim.Trace.detail) chain)

let chain_stops_at_evicted_cause () =
  let t = Dsim.Trace.create ~capacity:2 () in
  let a = emit t "e1" in
  let b = emit t ~cause:a "e2" in
  let c = emit t ~cause:b "e3" in
  (* e1 was evicted by e3: the walk must stop at the ring's horizon. *)
  let chain = Dsim.Trace.chain t ~id:c in
  Alcotest.(check (list string))
    "truncated at horizon" [ "e2"; "e3" ]
    (List.map (fun e -> e.Dsim.Trace.detail) chain)

let chain_survives_cycles () =
  let t = Dsim.Trace.create () in
  (* Forged forward reference making 1 <-> 2 a cycle; chain must still
     terminate. *)
  record t ~cause:2 "e1";
  record t ~cause:1 "e2";
  let chain = Dsim.Trace.chain t ~id:2 in
  Alcotest.(check bool) "terminates, non-empty" true (List.length chain >= 2)

let chain_of_unknown_id_empty () =
  let t = Dsim.Trace.create () in
  record t "only";
  Alcotest.(check int) "empty" 0 (List.length (Dsim.Trace.chain t ~id:99))

let clear_restarts_ids () =
  let t = Dsim.Trace.create () in
  ignore (emit t "x");
  Dsim.Trace.clear t;
  Alcotest.(check int) "ids restart" 1 (emit t "y");
  Alcotest.(check int) "recorded restarts" 1 (Dsim.Trace.recorded t)

let jsonl_round_trip () =
  let t = Dsim.Trace.create () in
  let a = Dsim.Trace.emit t ~time:0 ~actor:"etcd" ~kind:"etcd.commit" "rev 1 \"quoted\"" in
  let b = Dsim.Trace.emit t ~time:120 ~actor:"api-1" ~kind:"pipe.deliver" ~cause:a "ev" in
  Dsim.Trace.record t ~time:5000 ~actor:"oracle" ~kind:"oracle.violation" ~cause:b
    "[K8s-0] control\ncharacters";
  match Dsim.Trace.of_jsonl (Dsim.Trace.to_jsonl t) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok t' ->
      Alcotest.(check bool) "entries preserved" true
        (Dsim.Trace.entries t = Dsim.Trace.entries t');
      (* Ids survive the trip, so chains still resolve on the import. *)
      let violation = List.nth (Dsim.Trace.entries t') 2 in
      Alcotest.(check int) "chain on import" 3
        (List.length (Dsim.Trace.chain t' ~id:violation.Dsim.Trace.id))

let jsonl_rejects_malformed_line () =
  let good = {|{"id":1,"time":0,"actor":"a","kind":"k","detail":"d","cause":null}|} in
  (match Dsim.Trace.of_jsonl (good ^ "\n" ^ "{not json}\n") with
  | Ok _ -> Alcotest.fail "accepted malformed line"
  | Error msg ->
      Alcotest.(check bool) "error names the line" true
        (String.length msg >= 6 && String.equal (String.sub msg 0 6) "line 2"));
  match Dsim.Trace.of_jsonl (good ^ "\n\n" ^ good ^ "\n") with
  | Ok t -> Alcotest.(check int) "blank lines skipped" 2 (Dsim.Trace.length t)
  | Error msg -> Alcotest.failf "rejected blank line: %s" msg

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "ids grow from one" `Quick ids_grow_from_one;
        Alcotest.test_case "ring evicts oldest in order" `Quick ring_evicts_oldest_in_order;
        Alcotest.test_case "ring capacity validated" `Quick ring_capacity_validated;
        Alcotest.test_case "unbounded mode never drops" `Quick unbounded_mode_never_drops;
        Alcotest.test_case "chain walks cause links" `Quick chain_walks_cause_links;
        Alcotest.test_case "chain stops at evicted cause" `Quick chain_stops_at_evicted_cause;
        Alcotest.test_case "chain survives cycles" `Quick chain_survives_cycles;
        Alcotest.test_case "chain of unknown id empty" `Quick chain_of_unknown_id_empty;
        Alcotest.test_case "clear restarts ids" `Quick clear_restarts_ids;
        Alcotest.test_case "jsonl round trip" `Quick jsonl_round_trip;
        Alcotest.test_case "jsonl rejects malformed line" `Quick jsonl_rejects_malformed_line;
      ] );
  ]
