(* Test runner and campaigns. *)

let simple_test strategy =
  Sieve.Runner.base_test ~config:Kube.Cluster.default_config
    ~workload:(Kube.Workload.pod_churn ~n:1 ())
    ~horizon:5_000_000 strategy

let run_test_isolated () =
  let outcome = Sieve.Runner.run_test (simple_test Sieve.Strategy.No_perturbation) in
  Alcotest.(check bool) "committed something" true (outcome.Sieve.Runner.truth_rev > 0);
  Alcotest.(check int) "clean" 0 (List.length outcome.Sieve.Runner.violations)

let reference_events_ordered () =
  let events = Sieve.Runner.reference_events (simple_test Sieve.Strategy.No_perturbation) in
  Alcotest.(check bool) "non-empty" true (events <> []);
  let times = List.map (fun (t, _, _) -> t) events in
  Alcotest.(check (list int)) "chronological" (List.sort compare times) times;
  Alcotest.(check bool) "contains the pod create" true
    (List.exists (fun (_, key, op) -> key = "pods/churn-0" && op = History.Event.Create) events)

let reference_ignores_strategy () =
  (* reference_events must run unperturbed even when the test carries a
     violent strategy. *)
  let test =
    simple_test (Sieve.Strategy.Crash_restart { victim = "kubelet-1"; at = 0; downtime = 10_000_000 })
  in
  let with_strategy = Sieve.Runner.reference_events test in
  let without = Sieve.Runner.reference_events (simple_test Sieve.Strategy.No_perturbation) in
  Alcotest.(check int) "same event count" (List.length without) (List.length with_strategy)

let campaign_stops_at_first_hit () =
  let case = Sieve.Bugs.k8s_56261 () in
  let executed = ref 0 in
  let make_test i =
    incr executed;
    if i = 2 then Sieve.Bugs.test_of_case case else Sieve.Bugs.reference_test_of_case case
  in
  let result = Sieve.Runner.run_campaign ~make_test ~candidates:10 ~target:case.Sieve.Bugs.matches () in
  Alcotest.(check int) "stopped at third test" 3 result.Sieve.Runner.tests_run;
  Alcotest.(check int) "no extra tests built" 3 !executed;
  match result.Sieve.Runner.found with
  | Some (_, _, Sieve.Oracle.Scheduler_livelock _) -> ()
  | _ -> Alcotest.fail "expected livelock found"

let campaign_exhausts_on_miss () =
  let case = Sieve.Bugs.k8s_56261 () in
  let result =
    Sieve.Runner.run_campaign
      ~make_test:(fun _ -> Sieve.Bugs.reference_test_of_case case)
      ~candidates:3 ~target:case.Sieve.Bugs.matches ()
  in
  Alcotest.(check int) "all ran" 3 result.Sieve.Runner.tests_run;
  Alcotest.(check bool) "nothing found" true (result.Sieve.Runner.found = None)

let campaign_reports_all_within_budget () =
  (* With stop_at_first off the campaign spends its whole budget and
     accumulates every matching violation, first hit still in [found]. *)
  let case = Sieve.Bugs.k8s_56261 () in
  let make_test i =
    if i = 1 || i = 3 then Sieve.Bugs.test_of_case case
    else Sieve.Bugs.reference_test_of_case case
  in
  let result =
    Sieve.Runner.run_campaign ~make_test ~candidates:5 ~target:case.Sieve.Bugs.matches
      ~stop_at_first:false ()
  in
  Alcotest.(check int) "full budget spent" 5 result.Sieve.Runner.tests_run;
  Alcotest.(check bool) "several hits" true (List.length result.Sieve.Runner.all_found >= 2);
  (match result.Sieve.Runner.found, result.Sieve.Runner.all_found with
  | Some (_, t1, _), (_, t2, _) :: _ -> Alcotest.(check int) "found is the first hit" t2 t1
  | _ -> Alcotest.fail "expected hits");
  (* The stopping variant's hit is a prefix of the exhaustive list. *)
  let stopped =
    Sieve.Runner.run_campaign ~make_test ~candidates:5 ~target:case.Sieve.Bugs.matches ()
  in
  Alcotest.(check int) "stopping run ends early" 2 stopped.Sieve.Runner.tests_run

let campaign_target_filters () =
  (* The 56261 sieve test produces a livelock; a target looking for
     duplicates must not accept it. *)
  let case = Sieve.Bugs.k8s_56261 () in
  let result =
    Sieve.Runner.run_campaign
      ~make_test:(fun _ -> Sieve.Bugs.test_of_case case)
      ~candidates:2
      ~target:(function Sieve.Oracle.Duplicate_pod _ -> true | _ -> false)
      ()
  in
  Alcotest.(check bool) "not found under wrong target" true (result.Sieve.Runner.found = None)

let suites =
  [
    ( "runner",
      [
        Alcotest.test_case "run_test isolated" `Quick run_test_isolated;
        Alcotest.test_case "reference events ordered" `Quick reference_events_ordered;
        Alcotest.test_case "reference ignores strategy" `Quick reference_ignores_strategy;
        Alcotest.test_case "campaign stops at first hit" `Quick campaign_stops_at_first_hit;
        Alcotest.test_case "campaign exhausts on miss" `Quick campaign_exhausts_on_miss;
        Alcotest.test_case "campaign reports all within budget" `Quick
          campaign_reports_all_within_budget;
        Alcotest.test_case "campaign target filters" `Quick campaign_target_filters;
      ] );
  ]
