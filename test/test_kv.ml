(* The MVCC store core. *)

let put_get_roundtrip () =
  let kv = Etcdlike.Kv.create () in
  let e = Etcdlike.Kv.put kv "k" "v" in
  Alcotest.(check int) "first rev" 1 e.History.Event.rev;
  Alcotest.(check (option (pair string int))) "get" (Some ("v", 1)) (Etcdlike.Kv.get kv "k")

let create_vs_update_op () =
  let kv = Etcdlike.Kv.create () in
  let e1 = Etcdlike.Kv.put kv "k" "a" in
  let e2 = Etcdlike.Kv.put kv "k" "b" in
  Alcotest.(check bool) "create" true (e1.History.Event.op = History.Event.Create);
  Alcotest.(check bool) "update" true (e2.History.Event.op = History.Event.Update);
  Alcotest.(check (option (pair string int))) "mod rev" (Some ("b", 2)) (Etcdlike.Kv.get kv "k")

let delete_semantics () =
  let kv = Etcdlike.Kv.create () in
  ignore (Etcdlike.Kv.put kv "k" "v");
  (match Etcdlike.Kv.delete kv "k" with
  | Some e -> Alcotest.(check bool) "delete op" true (e.History.Event.op = History.Event.Delete)
  | None -> Alcotest.fail "expected delete event");
  Alcotest.(check (option (pair string int))) "gone" None (Etcdlike.Kv.get kv "k");
  Alcotest.(check bool) "deleting absent yields no event" true (Etcdlike.Kv.delete kv "k" = None);
  Alcotest.(check int) "rev counts only real events" 2 (Etcdlike.Kv.rev kv)

let range_by_prefix () =
  let kv = Etcdlike.Kv.create () in
  ignore (Etcdlike.Kv.put kv "pods/a" "1");
  ignore (Etcdlike.Kv.put kv "nodes/x" "2");
  ignore (Etcdlike.Kv.put kv "pods/b" "3");
  let items = Etcdlike.Kv.range kv ~prefix:"pods/" in
  Alcotest.(check (list string)) "keys" [ "pods/a"; "pods/b" ] (List.map (fun (k, _, _) -> k) items);
  Alcotest.(check (list int)) "mod revs" [ 1; 3 ] (List.map (fun (_, _, r) -> r) items)

let listeners_fire_in_order () =
  let kv = Etcdlike.Kv.create () in
  let log = ref [] in
  Etcdlike.Kv.on_commit kv (fun e -> log := ("first", e.History.Event.rev) :: !log);
  Etcdlike.Kv.on_commit kv (fun e -> log := ("second", e.History.Event.rev) :: !log);
  ignore (Etcdlike.Kv.put kv "k" "v");
  Alcotest.(check (list (pair string int))) "registration order" [ ("first", 1); ("second", 1) ]
    (List.rev !log)

let many_listeners_keep_registration_order () =
  (* Pins the notification order across the growable-array registrations
     a cluster boot performs: every commit must visit listeners 0..n-1. *)
  let kv = Etcdlike.Kv.create () in
  let seen = ref [] in
  for i = 0 to 49 do
    Etcdlike.Kv.on_commit kv (fun _ -> seen := i :: !seen)
  done;
  ignore (Etcdlike.Kv.put kv "k" "v");
  Alcotest.(check (list int)) "0..49 in registration order" (List.init 50 Fun.id)
    (List.rev !seen);
  seen := [];
  ignore (Etcdlike.Kv.put kv "k" "v2");
  Alcotest.(check (list int)) "stable on the next commit" (List.init 50 Fun.id)
    (List.rev !seen)

let qcheck_range_agrees_with_naive =
  (* The fused range scan must agree with the pre-PR two-pass
     implementation: prefix-filter all keys, then re-find each one. *)
  QCheck.Test.make ~name:"range = prefix filter + per-key find" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 50) (pair (int_range 0 9) bool))
        (oneofl [ ""; "k"; "k1"; "pods/"; "zz" ]))
    (fun (ops, prefix) ->
      let kv = Etcdlike.Kv.create () in
      List.iter
        (fun (k, is_put) ->
          let key = if k mod 2 = 0 then Printf.sprintf "k%d" k else Printf.sprintf "pods/p%d" k in
          if is_put then ignore (Etcdlike.Kv.put kv key k)
          else ignore (Etcdlike.Kv.delete kv key))
        ops;
      let state = Etcdlike.Kv.state kv in
      let naive =
        History.State.keys state
        |> List.filter (fun key -> String.starts_with ~prefix key)
        |> List.filter_map (fun key ->
               match History.State.find state key with
               | Some (v, mod_rev) -> Some (key, v, mod_rev)
               | None -> None)
      in
      Etcdlike.Kv.range kv ~prefix = naive)

let compaction_flows_through () =
  let kv = Etcdlike.Kv.create () in
  for i = 1 to 10 do
    ignore (Etcdlike.Kv.put kv (Printf.sprintf "k%d" i) "v")
  done;
  Etcdlike.Kv.compact_keep_last kv 2;
  Alcotest.(check int) "compacted rev" 8 (Etcdlike.Kv.compacted_rev kv);
  match Etcdlike.Kv.since kv ~rev:5 with
  | Error (`Compacted 8) -> ()
  | _ -> Alcotest.fail "expected Compacted 8"

let qcheck_rev_equals_mutations =
  QCheck.Test.make ~name:"rev counts committed mutations" ~count:100
    QCheck.(list_of_size Gen.(0 -- 50) (pair (int_range 0 5) bool))
    (fun ops ->
      let kv = Etcdlike.Kv.create () in
      let committed = ref 0 in
      List.iter
        (fun (k, is_put) ->
          let key = Printf.sprintf "k%d" k in
          if is_put then begin
            ignore (Etcdlike.Kv.put kv key "v");
            incr committed
          end
          else if Etcdlike.Kv.delete kv key <> None then incr committed)
        ops;
      Etcdlike.Kv.rev kv = !committed)

let suites =
  [
    ( "kv",
      [
        Alcotest.test_case "put/get roundtrip" `Quick put_get_roundtrip;
        Alcotest.test_case "create vs update op" `Quick create_vs_update_op;
        Alcotest.test_case "delete semantics" `Quick delete_semantics;
        Alcotest.test_case "range by prefix" `Quick range_by_prefix;
        Alcotest.test_case "listeners fire in order" `Quick listeners_fire_in_order;
        Alcotest.test_case "many listeners keep registration order" `Quick
          many_listeners_keep_registration_order;
        Alcotest.test_case "compaction flows through" `Quick compaction_flows_through;
        Qcheck_util.to_alcotest qcheck_rev_equals_mutations;
        Qcheck_util.to_alcotest qcheck_range_agrees_with_naive;
      ] );
  ]
