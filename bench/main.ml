(* Benchmark & experiment harness.

   One entry per paper artifact (see DESIGN.md's experiment index):
     fig1       architecture / cache topology with live revision lags
     fig2       the reproduced Kubernetes-59848 walkthrough
     fig3a      staleness divergence series
     fig3b      time-travel series (view revision moves backwards)
     fig3c      observability gaps (cancelled events, compacted windows)
     bugs       Section 7 results: the five-bug reproduction matrix
     baselines  Sieve planner vs CrashTuner / CoFI / random fault injection
     epochs     Section 6.2: epoch-bounded delivery trade-off
     perf       Section 4.1: cache offload + the HBase-3136/3137 trade-off
     hunt       campaign-engine throughput at 1, 2, 4 worker domains
     lint       static-analysis cost: source lint + hazard-graph build
     store      store-tier hot path vs naive list/filter; BENCH_store.json
     conformance  online-monitor overhead on the hunt hot path; BENCH_conformance.json
     diagnosis  root-cause card cost: corpus sweep + hunt overhead; BENCH_diagnosis.json
     micro      Bechamel micro-benchmarks of the substrate

   `dune exec bench/main.exe` runs everything; pass experiment names to
   run a subset. *)

let sec n = n * 1_000_000
let ms n = n * 1_000

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

(* ------------------------------------------------------------------ *)
(* FIG1: architecture.                                                *)

let fig1 () =
  Sieve.Report.section "FIG1 — architecture: etcd -> apiservers -> components (cached views)";
  let cluster = Kube.Cluster.create () in
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:4 ());
  Kube.Workload.schedule cluster
    (Kube.Workload.cassandra_scale ~dc:"cass" ~steps:[ (0, 2) ] ());
  Kube.Cluster.run cluster ~until:(sec 4);
  let truth_rev = Kube.Cluster.truth_rev cluster in
  Printf.printf "\ncommitted history H at etcd: %d events; %d live objects in S\n" truth_rev
    (History.State.cardinal (Kube.Cluster.truth cluster));
  Sieve.Report.subsection "apiserver caches (S' updated by etcd watch streams)";
  Sieve.Report.table ~header:[ "apiserver"; "cache rev"; "lag"; "subscribers" ]
    (List.map
       (fun api ->
         [
           Kube.Apiserver.name api;
           string_of_int (Kube.Apiserver.rev api);
           string_of_int (truth_rev - Kube.Apiserver.rev api);
           string_of_int (Kube.Apiserver.subscriber_count api);
         ])
       (Kube.Cluster.apiservers cluster));
  Sieve.Report.subsection "components (informer caches fed by apiserver watches)";
  let component_rows =
    List.map
      (fun k ->
        let informer = Kube.Kubelet.informer k in
        [
          Kube.Kubelet.name k;
          "pods/";
          Kube.Informer.current_endpoint informer;
          string_of_int (Kube.Informer.rev informer);
          String.concat "," (Kube.Kubelet.running k);
        ])
      (Kube.Cluster.kubelets cluster)
    @ (match Kube.Cluster.scheduler cluster with
      | Some s ->
          [
            [
              "scheduler";
              "pods/ nodes/";
              Kube.Informer.current_endpoint (Kube.Scheduler.pods_informer s);
              string_of_int (Kube.Informer.rev (Kube.Scheduler.pods_informer s));
              Printf.sprintf "%d binds" (Kube.Scheduler.binds s);
            ];
          ]
      | None -> [])
    @ (match Kube.Cluster.volume_controller cluster with
      | Some v ->
          [
            [
              "volumectl";
              "pods/ pvcs/";
              Kube.Informer.current_endpoint (Kube.Volume_controller.pods_informer v);
              string_of_int (Kube.Informer.rev (Kube.Volume_controller.pods_informer v));
              Printf.sprintf "%d releases" (Kube.Volume_controller.releases v);
            ];
          ]
      | None -> [])
    @
    match Kube.Cluster.operator cluster with
    | Some o ->
        [
          [
            "cassop";
            "cassdcs/ pods/ pvcs/";
            Kube.Informer.current_endpoint (Kube.Cassandra_operator.pods_informer o);
            string_of_int (Kube.Informer.rev (Kube.Cassandra_operator.pods_informer o));
            Printf.sprintf "%d members created" (Kube.Cassandra_operator.member_creates o);
          ];
        ]
    | None -> []
  in
  Sieve.Report.table ~header:[ "component"; "watches"; "upstream"; "view rev"; "state" ]
    component_rows;
  Printf.printf
    "\nEvery component below etcd operates on a partial history H' of H;\n\
     in steady state the lags above are transient (bounded by stream latency).\n"

(* ------------------------------------------------------------------ *)
(* FIG2: Kubernetes-59848 walkthrough.                                *)

let fig2 () =
  Sieve.Report.section "FIG2 — Kubernetes-59848 reproduced (time travel after kubelet restart)";
  let case = Sieve.Bugs.k8s_59848 () in
  Printf.printf "\nstrategy: %s\n" (Sieve.Strategy.describe case.Sieve.Bugs.sieve_strategy);
  let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
  let interesting = [ "workload.step"; "kubelet.run"; "kubelet.stop"; "node.crash";
                      "node.restart"; "net.partition"; "informer.list"; "oracle.violation" ] in
  Printf.printf "\n";
  List.iter
    (fun e ->
      if List.mem e.Dsim.Trace.kind interesting then
        Printf.printf "  [%7.3f s] %-10s %-18s %s\n"
          (float_of_int e.Dsim.Trace.time /. 1e6)
          e.Dsim.Trace.actor e.Dsim.Trace.kind e.Dsim.Trace.detail)
    (Dsim.Trace.entries (Kube.Cluster.trace (Sieve.Runner.kube_cluster outcome)));
  (match outcome.Sieve.Runner.violations with
  | (time, v) :: _ ->
      Printf.printf "\n=> safety violated at %.3f s: %s\n" (float_of_int time /. 1e6)
        (Sieve.Oracle.describe v)
  | [] -> Printf.printf "\n=> (no violation — unexpected)\n");
  List.iter
    (fun k ->
      Printf.printf "   %s finally running: [%s]\n" (Kube.Kubelet.name k)
        (String.concat ", " (Kube.Kubelet.running k)))
    (Kube.Cluster.kubelets (Sieve.Runner.kube_cluster outcome))

(* ------------------------------------------------------------------ *)
(* FIG3a: staleness.                                                  *)

let fig3a () =
  Sieve.Report.section "FIG3a — staleness: (H', S') at api-2 lags (H, S) during a partition";
  let cluster = Kube.Cluster.create () in
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:8 ~spacing:(ms 500) ());
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.Partition_window { a = "etcd"; b = "api-2"; from = sec 2; until = ms 4_500 });
  let divergence = History.Divergence.create () in
  let api_2 = List.nth (Kube.Cluster.apiservers cluster) 1 in
  Dsim.Engine.every (Kube.Cluster.engine cluster) ~period:(ms 250) (fun () ->
      History.Divergence.record divergence
        ~time:(Dsim.Engine.now (Kube.Cluster.engine cluster))
        ~truth_rev:(Kube.Cluster.truth_rev cluster) ~view_rev:(Kube.Apiserver.rev api_2);
      true);
  Kube.Cluster.run cluster ~until:(sec 7);
  Printf.printf "\npartition etcd <-/-> api-2 during [2.0 s, 4.5 s]\n\n";
  Format.printf "%a" History.Divergence.pp_series divergence;
  Sieve.Report.kv
    [
      ("max lag (revisions)", string_of_int (History.Divergence.max_lag divergence));
      ("mean lag", Printf.sprintf "%.2f" (History.Divergence.mean_lag divergence));
      ( "fraction of samples stale",
        Printf.sprintf "%.0f%%" (100.0 *. History.Divergence.stale_fraction divergence) );
    ];
  Printf.printf
    "\nExpected shape: lag 0 before the cut, growing during it, snapping back\n\
     to ~0 after the heal + watchdog re-list.\n"

(* ------------------------------------------------------------------ *)
(* FIG3b: time travel.                                                *)

let fig3b () =
  Sieve.Report.section "FIG3b — time travel: kubelet-1's view revision moves backwards";
  let case = Sieve.Bugs.k8s_59848 () in
  let cluster = Kube.Cluster.create ~config:(Sieve.Bugs.kube_config case) () in
  let divergence = History.Divergence.create () in
  Sieve.Strategy.apply cluster case.Sieve.Bugs.sieve_strategy;
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster (Sieve.Bugs.kube_workload case);
  let kubelet_1 = List.hd (Kube.Cluster.kubelets cluster) in
  Dsim.Engine.every (Kube.Cluster.engine cluster) ~period:(ms 250) (fun () ->
      History.Divergence.record divergence
        ~time:(Dsim.Engine.now (Kube.Cluster.engine cluster))
        ~truth_rev:(Kube.Cluster.truth_rev cluster)
        ~view_rev:(Kube.Informer.rev (Kube.Kubelet.informer kubelet_1));
      true);
  Kube.Cluster.run cluster ~until:(sec 6);
  Printf.printf "\n(kubelet-1 crashes at 3.6 s and re-lists from api-2, frozen since 2.8 s)\n\n";
  Format.printf "%a" History.Divergence.pp_series divergence;
  match History.Divergence.time_travel_points divergence with
  | [] -> Printf.printf "\n=> no backwards movement (unexpected)\n"
  | points ->
      List.iter
        (fun p ->
          Printf.printf "\n=> TIME TRAVEL at %.3f s: view revision fell to %d (truth at %d)\n"
            (float_of_int p.History.Divergence.time /. 1e6)
            p.History.Divergence.view_rev p.History.Divergence.truth_rev)
        points

(* ------------------------------------------------------------------ *)
(* FIG3c: observability gaps.                                         *)

let fig3c () =
  Sieve.Report.section "FIG3c — observability gaps";
  Sieve.Report.subsection "(i) events cancelled in S': sparse reads cannot recover H";
  let cluster = Kube.Cluster.create () in
  let events = ref [] in
  Kube.Etcd.on_commit (Kube.Cluster.etcd cluster) (fun e -> events := e :: !events);
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:5 ~lifetime:(sec 1) ());
  Kube.Cluster.run cluster ~until:(sec 8);
  let history = List.rev !events in
  let shadowed = History.Partial.unobservable_in_state history in
  Printf.printf
    "history H has %d events; %d of them (%.0f%%) are invisible in the final state S\n\
     (a later event on the same key shadows them — every churn pod's\n\
     create/bind/run/mark/delete sequence collapses to nothing).\n"
    (List.length history) (List.length shadowed)
    (pct (List.length shadowed) (List.length history));
  Sieve.Report.subsection "(ii) rolling watch windows: resuming too late fails";
  let rows =
    List.map
      (fun window ->
        let kv = Etcdlike.Kv.create () in
        (* 200 committed events; a subscriber disconnected after rev 40
           tries to resume. *)
        for i = 1 to 200 do
          ignore (Etcdlike.Kv.put kv (Printf.sprintf "k%d" (i mod 37)) "v");
          match window with Some w -> Etcdlike.Kv.compact_keep_last kv w | None -> ()
        done;
        let outcome =
          match Etcdlike.Kv.since kv ~rev:40 with
          | Ok events -> Printf.sprintf "resume ok (%d events replayed)" (List.length events)
          | Error (`Compacted rev) ->
              Printf.sprintf "ERR_COMPACTED (window starts at %d): re-list; gap permanent" rev
        in
        [
          (match window with Some w -> string_of_int w | None -> "unlimited");
          outcome;
        ])
      [ None; Some 180; Some 100; Some 20 ]
  in
  Sieve.Report.table ~header:[ "retained window"; "watch resume from rev 40" ] rows;
  Sieve.Report.subsection "(iii) a dropped notification is undetectable while bookmarks flow";
  let case = Sieve.Bugs.k8s_56261 () in
  let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
  let trace = Kube.Cluster.trace (Sieve.Runner.kube_cluster outcome) in
  Printf.printf
    "dropped 1 node-deletion event to the scheduler: %d stream deaths detected,\n\
     %d total (re-)lists — the gap never heals; violation: %s\n"
    (List.length (Dsim.Trace.find_all trace ~kind:"informer.stream-dead"))
    (List.length (Dsim.Trace.find_all trace ~kind:"informer.list"))
    (match outcome.Sieve.Runner.violations with
    | (_, v) :: _ -> Sieve.Oracle.describe v
    | [] -> "(none)")

(* ------------------------------------------------------------------ *)
(* T-BUGS: the Section 7 matrix.                                      *)

let pattern_name = function
  | `Staleness -> "staleness"
  | `Obs_gap -> "observability gap"
  | `Time_travel -> "time travel"

let bugs () =
  Sieve.Report.section "T-BUGS — Section 7 results: 2 known + 3 new bugs, reproduced";
  let rows cases =
    List.map
      (fun case ->
        let reference = Sieve.Runner.run_test (Sieve.Bugs.reference_test_of_case case) in
        let sieve = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
        let fixed = Sieve.Runner.run_test (Sieve.Bugs.fixed_test_of_case case) in
        let hit (o : Sieve.Runner.outcome) =
          List.find_opt (fun (_, v) -> case.Sieve.Bugs.matches v) o.Sieve.Runner.violations
        in
        [
          case.Sieve.Bugs.id;
          pattern_name case.Sieve.Bugs.pattern;
          (if reference.Sieve.Runner.violations = [] then "clean" else "VIOLATION!");
          (match hit sieve with
          | Some (t, _) -> Printf.sprintf "yes @ %.1f s" (float_of_int t /. 1e6)
          | None -> "NO");
          (match hit fixed with None -> "closed" | Some _ -> "STILL OPEN");
        ])
      cases
  in
  Printf.printf "\n";
  Sieve.Report.table
    ~header:[ "bug"; "pattern (4.2)"; "unperturbed"; "Sieve reproduces"; "with fix" ]
    (rows (Sieve.Bugs.all ()));
  Sieve.Report.subsection
    "extension corpus (bugs in the extra controllers this reproduction adds)";
  Sieve.Report.table
    ~header:[ "bug"; "pattern (4.2)"; "unperturbed"; "Sieve reproduces"; "with fix" ]
    (rows (Sieve.Bugs.extras ()));
  Printf.printf "\nper-bug strategy:\n";
  List.iter
    (fun case ->
      Printf.printf "  %-10s %s\n" case.Sieve.Bugs.id
        (Sieve.Strategy.describe case.Sieve.Bugs.sieve_strategy))
    (Sieve.Bugs.all_with_extras ())

(* ------------------------------------------------------------------ *)
(* T-BASE: planner vs baseline testers.                               *)

let baselines () =
  Sieve.Report.section
    "T-BASE — tests-to-first-reproduction: partial-history planner vs prior heuristics";
  let random_budget = 400 in
  let rows =
    List.map
      (fun case ->
        let config = (Sieve.Bugs.kube_config case) in
        let horizon = case.Sieve.Bugs.horizon in
        let commits = Sieve.Runner.reference_commits (Sieve.Bugs.reference_test_of_case case) in
        let events =
          List.map
            (fun c -> (c.Sieve.Runner.time, c.Sieve.Runner.key, c.Sieve.Runner.op))
            commits
        in
        let components =
          List.map (fun t -> t.Sieve.Planner.component) (Sieve.Planner.targets_of_config config)
        in
        let apiservers =
          List.init config.Kube.Cluster.apiservers (fun i -> Printf.sprintf "api-%d" (i + 1))
        in
        let campaign strategies =
          let arr = Array.of_list strategies in
          let result =
            Sieve.Runner.run_campaign
              ~make_test:(fun i ->
                Sieve.Runner.base_test ~config ~workload:(Sieve.Bugs.kube_workload case) ~horizon arr.(i))
              ~candidates:(Array.length arr) ~target:case.Sieve.Bugs.matches ()
          in
          match result.Sieve.Runner.found with
          | Some _ -> string_of_int result.Sieve.Runner.tests_run
          | None -> Printf.sprintf "miss (%d)" result.Sieve.Runner.tests_run
        in
        [
          case.Sieve.Bugs.id;
          pattern_name case.Sieve.Bugs.pattern;
          campaign
            (List.map
               (fun p -> p.Sieve.Planner.strategy)
               (Sieve.Planner.candidates ~config ~events ~horizon ()));
          campaign
            (List.map
               (fun p -> p.Sieve.Planner.strategy)
               (Sieve.Planner.candidates_causal ~config ~commits ~horizon ()));
          campaign (Sieve.Baselines.crashtuner ~events ~components ());
          campaign (Sieve.Baselines.cofi ~events ~components ~apiservers ());
          campaign
            (Sieve.Baselines.random_faults ~seed:42L ~components ~apiservers ~horizon
               ~n:random_budget);
        ])
      (Sieve.Bugs.all_with_extras ())
  in
  Printf.printf "\n(all approaches share workloads and oracles; numbers are tests until the\n\
                 target bug first fires; 'miss (n)' = not found within n candidates)\n\n";
  Sieve.Report.table
    ~header:
      [ "bug"; "pattern"; "planner"; "planner+causal"; "CrashTuner-like"; "CoFI-like"; "random" ]
    rows;
  Printf.printf
    "\nExpected shape (paper sections 5-7): the partial-history planner finds every\n\
     bug; the crash-recovery heuristic finds none of them; the partition heuristic\n\
     finds only bugs whose buggy logic makes transient divergence permanent; random\n\
     needs many more tests where it succeeds at all.\n";
  (* Why: the perturbation-space cells each approach can even touch
     (measured on the K8s-56261 scenario's space). *)
  Sieve.Report.subsection
    "coverage of the (component x object x pattern) space per approach (56261 scenario)";
  let case = Sieve.Bugs.k8s_56261 () in
  let events = Sieve.Runner.reference_events (Sieve.Bugs.reference_test_of_case case) in
  let config = (Sieve.Bugs.kube_config case) in
  let components =
    List.map (fun t -> t.Sieve.Planner.component) (Sieve.Planner.targets_of_config config)
  in
  let apiservers = [ "api-1"; "api-2" ] in
  let coverage_row name strategies =
    let c = Sieve.Coverage.create ~config ~events in
    List.iter (Sieve.Coverage.note c) strategies;
    let cell pattern =
      let _, covered, total =
        List.find (fun (p, _, _) -> p = pattern) (Sieve.Coverage.by_pattern c)
      in
      Printf.sprintf "%d/%d" covered total
    in
    [
      name;
      cell `Staleness;
      cell `Obs_gap;
      cell `Time_travel;
      Printf.sprintf "%.0f%%" (100.0 *. Sieve.Coverage.ratio c);
    ]
  in
  Sieve.Report.table
    ~header:[ "approach"; "staleness"; "obs-gap"; "time-travel"; "overall" ]
    [
      coverage_row "planner"
        (List.map (fun p -> p.Sieve.Planner.strategy)
           (Sieve.Planner.candidates ~config ~events ~horizon:case.Sieve.Bugs.horizon ()));
      coverage_row "CrashTuner-like" (Sieve.Baselines.crashtuner ~events ~components ());
      coverage_row "CoFI-like" (Sieve.Baselines.cofi ~events ~components ~apiservers ());
      coverage_row "random (400)"
        (Sieve.Baselines.random_faults ~seed:42L ~components ~apiservers
           ~horizon:case.Sieve.Bugs.horizon ~n:random_budget);
    ];
  Printf.printf
    "\nNo amount of crash or partition injection reaches an observability-gap\n\
     cell: those perturbations need event-level suppression, which is exactly\n\
     what the partial-history interceptor adds.\n"

(* ------------------------------------------------------------------ *)
(* T-YIELD: distinct bugs per test budget on one rich workload.       *)

let yield_curve () =
  Sieve.Report.section
    "T-YIELD — distinct bugs found per test budget (one combined workload)";
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.with_replicaset = true;
      with_deployment = true;
    }
  in
  let horizon = sec 12 in
  let workload =
    Kube.Workload.pods_with_claims ~start:(sec 1) ~lifetime:(sec 2) ~n:2 ()
    @ Kube.Workload.cassandra_scale ~start:(ms 1_200) ~dc:"dc" ~steps:[ (0, 2); (ms 2_500, 3) ] ()
    @ Kube.Workload.node_churn ~start:(sec 2) ~node:"node-3" ~pods_after:3 ()
    @ Kube.Workload.deployment_rollout ~start:(ms 1_400) ~dep:"front" ~replicas:2
        ~generations:2 ~gap:(sec 4) ()
  in
  let reference = Sieve.Runner.base_test ~config ~workload ~horizon Sieve.Strategy.No_perturbation in
  let commits = Sieve.Runner.reference_commits reference in
  let events =
    List.map (fun c -> (c.Sieve.Runner.time, c.Sieve.Runner.key, c.Sieve.Runner.op)) commits
  in
  let components =
    List.map (fun t -> t.Sieve.Planner.component) (Sieve.Planner.targets_of_config config)
  in
  let apiservers = [ "api-1"; "api-2" ] in
  let budgets = [ 50; 100; 200; 400 ] in
  let distinct_bugs strategies budget =
    let found = Hashtbl.create 8 in
    List.iteri
      (fun i strategy ->
        if i < budget then
          let outcome =
            Sieve.Runner.run_test (Sieve.Runner.base_test ~config ~workload ~horizon strategy)
          in
          List.iter
            (fun (_, v) -> Hashtbl.replace found (Sieve.Oracle.bug_id v) ())
            outcome.Sieve.Runner.violations)
      strategies;
    Hashtbl.length found
  in
  let row name strategies =
    name :: List.map (fun budget -> string_of_int (distinct_bugs strategies budget)) budgets
  in
  let rows =
    [
      row "planner+causal"
        (List.map (fun p -> p.Sieve.Planner.strategy)
           (Sieve.Planner.candidates_causal ~config ~commits ~horizon ()));
      row "planner"
        (List.map (fun p -> p.Sieve.Planner.strategy)
           (Sieve.Planner.candidates ~config ~events ~horizon ()));
      row "CrashTuner-like" (Sieve.Baselines.crashtuner ~events ~components ());
      row "CoFI-like" (Sieve.Baselines.cofi ~events ~components ~apiservers ());
      row "random"
        (Sieve.Baselines.random_faults ~seed:42L ~components ~apiservers ~horizon ~n:400);
    ]
  in
  Printf.printf
    "\n(distinct bug classes — by oracle id — exposed within the first N tests;\n\
     a claims + Cassandra + node-churn + rollout workload on one cluster)\n\n";
  Sieve.Report.table
    ~header:("approach" :: List.map (fun b -> Printf.sprintf "N=%d" b) budgets)
    rows;
  Printf.printf
    "\nExpected shape: the planner's yield dominates at every budget and the\n\
     causal ranking pulls discoveries earlier; fault-injection baselines\n\
     plateau at the classes reachable without event-level suppression.\n"

(* ------------------------------------------------------------------ *)
(* T-EPOCH: the Section 6.2 programming model.                        *)

let epochs () =
  Sieve.Report.section "T-EPOCH — epoch-bounded delivery: anomalies vs coordination cost";
  let rng = Dsim.Rng.create 2024L in
  let n = 2_000 in
  (* Commit times 1 ms apart; per-event delivery latency is exponential,
     so notifications arrive out of order: the raw consumer observes
     history out of order, the epoch consumer never does. *)
  let commit_time rev = rev * 1_000 in
  let arrival =
    Array.init (n + 1) (fun rev ->
        if rev = 0 then 0
        else commit_time rev + int_of_float (Dsim.Rng.exponential rng ~mean:20_000.0))
  in
  let order = List.init n (fun i -> i + 1) in
  let by_arrival = List.sort (fun a b -> compare arrival.(a) arrival.(b)) order in
  let raw_anomalies = ref 0 and raw_frontier = ref 0 in
  List.iter
    (fun rev -> if rev < !raw_frontier then incr raw_anomalies else raw_frontier := rev)
    by_arrival;
  let raw_latency =
    List.fold_left (fun acc rev -> acc + (arrival.(rev) - commit_time rev)) 0 order
  in
  let rows =
    [
      "raw (no epochs)";
      string_of_int !raw_anomalies;
      Printf.sprintf "%.1f" (float_of_int raw_latency /. float_of_int n /. 1000.0);
    ]
    :: List.map
         (fun g ->
           let deliveries = ref [] in
           let batcher =
             History.Epoch.create ~granularity:g ~deliver:(fun batch ->
                 deliveries := batch :: !deliveries)
           in
           let clock = ref 0 in
           let latency = ref 0 and delivered = ref 0 and anomalies = ref 0 and frontier = ref 0 in
           List.iter
             (fun rev ->
               clock := arrival.(rev);
               History.Epoch.offer batcher
                 (History.Event.make ~rev ~key:"k" ~op:History.Event.Update (Some rev));
               List.iter
                 (fun batch ->
                   List.iter
                     (fun (e : int History.Event.t) ->
                       let rev = e.History.Event.rev in
                       if rev < !frontier then incr anomalies else frontier := rev;
                       latency := !latency + (!clock - commit_time rev);
                       incr delivered)
                     batch)
                 (List.rev !deliveries);
               deliveries := [])
             by_arrival;
           [
             Printf.sprintf "epochs g=%d" g;
             string_of_int !anomalies;
             Printf.sprintf "%.1f"
               (float_of_int !latency /. float_of_int (max 1 !delivered) /. 1000.0);
           ])
         [ 1; 2; 5; 10; 25; 50 ]
  in
  Printf.printf "\n%d events, 1 ms apart; delivery latency ~ Exp(20 ms) per event\n\n" n;
  Sieve.Report.table ~header:[ "consumer"; "order anomalies observed"; "mean latency (ms)" ] rows;
  Printf.printf
    "\nExpected shape: the raw consumer observes many out-of-order (time-traveling)\n\
     events; epoch delivery eliminates them at a latency cost that grows with the\n\
     granularity — the coordination cost the paper predicts for bounding partial\n\
     histories.\n"

(* ------------------------------------------------------------------ *)
(* T-SEAL: the Section 6.2 epoch protocol, in vivo.                   *)

let seals () =
  Sieve.Report.section
    "T-SEAL — epoch seals in vivo: which corpus bugs the 6.2 protocol closes";
  let rows =
    List.map
      (fun case ->
        let run config =
          Sieve.Runner.run_test
            (Sieve.Runner.base_test ~config ~workload:(Sieve.Bugs.kube_workload case)
               ~horizon:case.Sieve.Bugs.horizon case.Sieve.Bugs.sieve_strategy)
        in
        let hit (o : Sieve.Runner.outcome) =
          List.exists (fun (_, v) -> case.Sieve.Bugs.matches v) o.Sieve.Runner.violations
        in
        let plain = run (Sieve.Bugs.kube_config case) in
        let sealed =
          run { (Sieve.Bugs.kube_config case) with Kube.Cluster.api_epoch_seal = Some 5 }
        in
        [
          case.Sieve.Bugs.id;
          pattern_name case.Sieve.Bugs.pattern;
          (if hit plain then "reproduced" else "clean");
          (if hit sealed then "still reproduced" else "CLOSED");
        ])
      (Sieve.Bugs.all_with_extras ())
  in
  (* CA-400/402 are staleness-pattern bugs whose corpus strategies use the
     drop *vector*; show that the pure-delay vector for the same bug
     survives seals. *)
  let delay_variant =
    let case = Sieve.Bugs.ca_402 () in
    let strategy =
      Sieve.Strategy.staleness ~dst:"cassop" ~key_prefix:Kube.Resource.pods_prefix
        ~from:(sec 3) ~until:(sec 5) ~extra:(ms 1_200) ()
    in
    let run config =
      Sieve.Runner.run_test
        (Sieve.Runner.base_test ~config ~workload:(Sieve.Bugs.kube_workload case)
           ~horizon:case.Sieve.Bugs.horizon strategy)
    in
    let hit (o : Sieve.Runner.outcome) =
      List.exists (fun (_, v) -> case.Sieve.Bugs.matches v) o.Sieve.Runner.violations
    in
    let plain = run (Sieve.Bugs.kube_config case) in
    let sealed = run { (Sieve.Bugs.kube_config case) with Kube.Cluster.api_epoch_seal = Some 5 } in
    [
      "CA-402 (delay vector)";
      "staleness";
      (if hit plain then "reproduced" else "clean");
      (if hit sealed then "still reproduced" else "CLOSED");
    ]
  in
  Printf.printf
    "\n(apiserver watch streams seal every 5 revisions and at every bookmark tick;\n\
     a consumer whose event count disagrees with a seal re-lists immediately)\n\n";
  Sieve.Report.table ~header:[ "bug"; "pattern"; "without seals"; "with seals" ]
    (rows @ [ delay_variant ]);
  Printf.printf
    "\nExpected shape: every silent-loss vector closes — a dropped notification\n\
     becomes a detected integrity failure healed within one epoch. Freshness\n\
     failures rightly survive: seals prove *completeness*, not *recency* — a\n\
     frozen apiserver seals its own stale stream consistently (59848), FIFO\n\
     delays arrive before their seal (EXT-RS and CA-402's delay vector). Those\n\
     need monotonicity/quorum medicine — the division of labor section 6.2\n\
     anticipates when it says epochs eliminate staleness and gaps only\n\
     *within* an epoch.\n"

(* ------------------------------------------------------------------ *)
(* T-PERF: why caches exist, and what the HBase fix costs.            *)

let perf_read_offload () =
  Sieve.Report.subsection "(a) read path: apiserver caches shield etcd (section 4.1)";
  let run_mode ~quorum =
    let cluster = Kube.Cluster.create () in
    Kube.Cluster.start cluster;
    Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:4 ());
    let engine = Kube.Cluster.engine cluster in
    let net = Kube.Cluster.net cluster in
    let latencies = ref [] and reads = ref 0 in
    let readers = 8 in
    for r = 1 to readers do
      let name = Printf.sprintf "reader-%d" r in
      Dsim.Network.register net name ~serve:(fun ~src:_ _ _ -> ()) ();
      let api = Printf.sprintf "api-%d" (1 + (r mod 2)) in
      Dsim.Engine.every engine ~period:(ms 20) (fun () ->
          let t0 = Dsim.Engine.now engine in
          Dsim.Network.call net ~src:name ~dst:api
            (Kube.Messages.Api_list { prefix = "pods/"; quorum })
            (fun _ ->
              incr reads;
              latencies := float_of_int (Dsim.Engine.now engine - t0) :: !latencies);
          true)
    done;
    let etcd_before = Kube.Etcd.requests_served (Kube.Cluster.etcd cluster) in
    Kube.Cluster.run cluster ~until:(sec 6);
    let etcd_load = Kube.Etcd.requests_served (Kube.Cluster.etcd cluster) - etcd_before in
    let mean =
      List.fold_left ( +. ) 0.0 !latencies /. float_of_int (max 1 (List.length !latencies))
    in
    (!reads, etcd_load, mean /. 1000.0)
  in
  let cached_reads, cached_etcd, cached_lat = run_mode ~quorum:false in
  let quorum_reads, quorum_etcd, quorum_lat = run_mode ~quorum:true in
  Sieve.Report.table
    ~header:[ "read mode"; "reads served"; "etcd RPCs"; "mean latency (ms)" ]
    [
      [ "apiserver cache (watch-fed)"; string_of_int cached_reads; string_of_int cached_etcd;
        Printf.sprintf "%.2f" cached_lat ];
      [ "quorum (forwarded to etcd)"; string_of_int quorum_reads; string_of_int quorum_etcd;
        Printf.sprintf "%.2f" quorum_lat ];
    ];
  Printf.printf
    "\nExpected shape: cached reads keep etcd load near zero (watch stream only)\n\
     and halve latency; quorum reads put every read on etcd — the bottleneck\n\
     pressure that makes partial histories unavoidable.\n"

let perf_hbase_cas () =
  Sieve.Report.subsection "(b) HBase-3136/3137: CAS on cached state vs sync-before-CAS";
  let run_mode ~quorum_read =
    let cluster = Kube.Cluster.create () in
    (* Make api-1's view of the contended key persistently ~40 ms stale,
       as the HBase report describes for the cached ZooKeeper state. *)
    Sieve.Strategy.apply cluster
      (Sieve.Strategy.Delay_stream
         {
           src = Some "etcd";
           dst = Some "api-1";
           matching = Sieve.Strategy.match_event ~key_prefix:"pods/region" ();
           from = 0;
           until = sec 30;
           extra = ms 40;
         });
    Kube.Cluster.start cluster;
    let engine = Kube.Cluster.engine cluster in
    let net = Kube.Cluster.net cluster in
    (* Background writer: region state changes every 120 ms. *)
    Dsim.Engine.every engine ~period:(ms 120) (fun () ->
        Kube.Workload.create_pod ~node:"node-1" cluster "region";
        Kube.Workload.delete_pod_now cluster "region";
        true);
    Dsim.Network.register net "cas-client" ~serve:(fun ~src:_ _ _ -> ()) ();
    let attempts = ref 0 and successes = ref 0 in
    let etcd = Kube.Cluster.etcd cluster in
    Dsim.Engine.every engine ~period:(ms 60) (fun () ->
        Dsim.Network.call net ~src:"cas-client" ~dst:"api-1"
          (Kube.Messages.Api_get { key = "pods/region"; quorum = quorum_read })
          (function
            | Ok (Kube.Messages.Value { value = Some (_, mod_rev); _ }) ->
                incr attempts;
                Dsim.Network.call net ~src:"cas-client" ~dst:"api-1"
                  (Kube.Messages.Api_txn
                     {
                       txn =
                         Etcdlike.Txn.put_if_unchanged ~key:"pods/region"
                           ~expected_mod_rev:mod_rev
                           (Kube.Resource.make_pod ~node:"node-1" "region");
                       origin = "cas-client";
                       lease = None;
                     })
                  (function
                    | Ok (Kube.Messages.Txn_result { succeeded = true; _ }) -> incr successes
                    | _ -> ())
            | _ -> ());
        true);
    let etcd_before = Kube.Etcd.requests_served etcd in
    Kube.Cluster.run cluster ~until:(sec 10);
    (!attempts, !successes, Kube.Etcd.requests_served etcd - etcd_before)
  in
  let c_att, c_succ, c_load = run_mode ~quorum_read:false in
  let q_att, q_succ, q_load = run_mode ~quorum_read:true in
  Sieve.Report.table
    ~header:[ "CAS read path"; "attempts"; "successes"; "success rate"; "etcd RPCs" ]
    [
      [ "cached read (HBASE-3136)"; string_of_int c_att; string_of_int c_succ;
        Printf.sprintf "%.0f%%" (pct c_succ c_att); string_of_int c_load ];
      [ "sync-before-CAS (HBASE-3137)"; string_of_int q_att; string_of_int q_succ;
        Printf.sprintf "%.0f%%" (pct q_succ q_att); string_of_int q_load ];
    ];
  Printf.printf
    "\nExpected shape: CAS against the stale cache mostly fails (the 3136 bug);\n\
     forcing a sync first restores success at the cost of extra etcd load (the\n\
     3137 regression) — staleness cannot be eliminated for free.\n"

let perf () =
  Sieve.Report.section "T-PERF — the cache/consistency trade-off (sections 4.1, 4.2.1)";
  perf_read_offload ();
  perf_hbase_cas ()

(* ------------------------------------------------------------------ *)
(* ROBUST: reproductions are not knife-edge.                          *)

let robustness () =
  Sieve.Report.section
    "ROBUST — reproductions across seeds and latency distributions";
  let latency_models =
    [
      ("uniform 0.5-2 ms (default)", None);
      ("uniform 2-8 ms", Some (Dsim.Network.Uniform { min = 2_000; max = 8_000 }));
      ("exponential mean 1.5 ms", Some (Dsim.Network.Exponential { mean = 1_500.0; floor = 200 }));
    ]
  in
  let seeds = 10 in
  let rows =
    List.map
      (fun case ->
        case.Sieve.Bugs.id
        :: List.map
             (fun (_, model) ->
               let hits = ref 0 in
               for seed = 1 to seeds do
                 let config =
                   { (Sieve.Bugs.kube_config case) with Kube.Cluster.seed = Int64.of_int seed }
                 in
                 let cluster = Kube.Cluster.create ~config () in
                 (match model with
                 | Some m -> Dsim.Network.set_latency_model (Kube.Cluster.net cluster) m
                 | None -> ());
                 let oracle = Sieve.Oracle.attach cluster in
                 Sieve.Strategy.apply cluster case.Sieve.Bugs.sieve_strategy;
                 Kube.Cluster.start cluster;
                 Kube.Workload.schedule cluster (Sieve.Bugs.kube_workload case);
                 Kube.Cluster.run cluster ~until:case.Sieve.Bugs.horizon;
                 if
                   List.exists (fun (_, v) -> case.Sieve.Bugs.matches v)
                     (Sieve.Oracle.violations oracle)
                 then incr hits
               done;
               Printf.sprintf "%d/%d" !hits seeds)
             latency_models)
      (Sieve.Bugs.all_with_extras ())
  in
  Printf.printf "\n(each cell: seeds on which the corpus strategy reproduces the bug)\n\n";
  Sieve.Report.table ~header:("bug" :: List.map fst latency_models) rows;
  Printf.printf
    "\nExpected shape: near-total reproduction everywhere — the strategies aim at\n\
     structural windows (hundreds of milliseconds), not lucky interleavings, so\n\
     neither the seed nor the latency distribution matters much.\n"

(* ------------------------------------------------------------------ *)
(* SCALE: cluster growth and the cache architecture (section 4.1).    *)

let scale () =
  Sieve.Report.section
    "SCALE — why the architecture looks like this: growth vs store load";
  let run ~nodes =
    let config =
      { Kube.Cluster.default_config with Kube.Cluster.nodes; with_operator = false }
    in
    let cluster = Kube.Cluster.create ~config () in
    Kube.Cluster.start cluster;
    Kube.Workload.schedule cluster
      (Kube.Workload.pod_churn ~start:(sec 1) ~spacing:(ms 50) ~lifetime:(sec 3)
         ~n:(nodes * 2) ());
    let wall_start = Unix.gettimeofday () in
    Kube.Cluster.run cluster ~until:(sec 10);
    let wall = Unix.gettimeofday () -. wall_start in
    let lags =
      List.map
        (fun k ->
          Kube.Cluster.truth_rev cluster - Kube.Informer.rev (Kube.Kubelet.informer k))
        (Kube.Cluster.kubelets cluster)
    in
    let max_lag = List.fold_left max 0 lags in
    ( Kube.Cluster.truth_rev cluster,
      Kube.Etcd.requests_served (Kube.Cluster.etcd cluster),
      max_lag,
      wall )
  in
  let rows =
    List.map
      (fun nodes ->
        let rev, etcd_rpcs, max_lag, wall = run ~nodes in
        [
          string_of_int nodes;
          string_of_int (nodes * 2);
          string_of_int rev;
          string_of_int etcd_rpcs;
          string_of_int max_lag;
          Printf.sprintf "%.2f s" wall;
        ])
      [ 5; 15; 40 ]
  in
  Sieve.Report.table
    ~header:
      [ "nodes"; "pods churned"; "events in H"; "etcd RPCs"; "max view lag"; "wall time" ]
    rows;
  Printf.printf
    "\nExpected shape: the committed history grows with the workload, but etcd's\n\
     request count stays a small multiple of component count (writes + initial\n\
     lists) because every read is absorbed by the cache tiers — the design\n\
     pressure (section 4.1) that makes partial histories unavoidable. Views\n\
     stay in lockstep (lag ~0) in a calm cluster regardless of scale.\n"

(* ------------------------------------------------------------------ *)
(* HBASE: the same patterns in a second infrastructure.               *)

let hbase () =
  Sieve.Report.section
    "HBASE — generality: the same patterns in a ZooKeeper/HBase-style system";
  Sieve.Report.subsection
    "(a) HBASE-3136/3137 on the native system: CAS vs follower replication lag";
  let run ~lag ~sync =
    let engine = Dsim.Engine.create ~seed:13L () in
    let net = Dsim.Network.create engine in
    let zk = Hbaselike.Zk.create ~net ~replication_lag:lag () in
    let master =
      Hbaselike.Master.create ~net ~name:"master-1" ~zk
        ~regions:[ "r1"; "r2"; "r3"; "r4"; "r5"; "r6" ] ~sync_before_cas:sync ()
    in
    let region_servers =
      List.init 3 (fun i ->
          Hbaselike.Regionserver.create ~net ~name:(Printf.sprintf "rs-%d" (i + 1)) ~zk ())
    in
    Hbaselike.Master.start master;
    List.iter Hbaselike.Regionserver.start region_servers;
    Dsim.Engine.run ~until:(sec 6) engine;
    (Hbaselike.Master.transitions master, Hbaselike.Master.cas_failures master,
     Hbaselike.Zk.leader_ops zk)
  in
  let rows =
    List.concat_map
      (fun lag ->
        let bt, bf, bl = run ~lag ~sync:false in
        let ft, ff, fl = run ~lag ~sync:true in
        [
          [ Printf.sprintf "%d ms" (lag / 1000); "cached read (3136)"; string_of_int bt;
            string_of_int bf; string_of_int bl ];
          [ ""; "sync-before-CAS (3137)"; string_of_int ft; string_of_int ff;
            string_of_int fl ];
        ])
      [ ms 10; ms 100; ms 400 ]
  in
  Sieve.Report.table
    ~header:[ "replication lag"; "read path"; "transitions"; "CAS failures"; "leader ops" ]
    rows;
  Printf.printf
    "\nExpected shape: CAS failures grow with follower lag on the cached path and\n\
     stay near zero with sync-before-CAS — which pays for it in leader load.\n";
  Sieve.Report.subsection "(b) HBASE-5755: cached master location after failover";
  let run_5755 ~relookup =
    let engine = Dsim.Engine.create ~seed:13L () in
    let net = Dsim.Network.create engine in
    let zk = Hbaselike.Zk.create ~net () in
    let master =
      Hbaselike.Master.create ~net ~name:"master-1" ~zk ~regions:[ "r1"; "r2" ] ()
    in
    let rs =
      Hbaselike.Regionserver.create ~net ~name:"rs-1" ~zk ~relookup_on_failure:relookup ()
    in
    Hbaselike.Master.start master;
    Hbaselike.Regionserver.start rs;
    Dsim.Engine.run ~until:(sec 2) engine;
    Dsim.Network.crash net "master-1";
    let master2 =
      Hbaselike.Master.create ~net ~name:"master-2" ~zk ~regions:[ "r1"; "r2" ] ()
    in
    Hbaselike.Master.start master2;
    Dsim.Engine.run ~until:(sec 8) engine;
    (Option.value (Hbaselike.Regionserver.cached_master rs) ~default:"-",
     Hbaselike.Regionserver.consecutive_failures rs)
  in
  let stale_master, stale_failures = run_5755 ~relookup:false in
  let fixed_master, fixed_failures = run_5755 ~relookup:true in
  Sieve.Report.table
    ~header:[ "region server"; "believes master is"; "consecutive heartbeat failures" ]
    [
      [ "bug-era (cached forever)"; stale_master; string_of_int stale_failures ];
      [ "fixed (re-lookup on failure)"; fixed_master; string_of_int fixed_failures ];
    ];
  Printf.printf
    "\n'Region server looking for master forever with cached stale data' — the\n\
     reference [27] bug, on a different infrastructure, same staleness pattern.\n"

(* ------------------------------------------------------------------ *)
(* T-LEASE: the lease trade-off (section 4.1).                        *)

let leases () =
  Sieve.Report.section
    "T-LEASE — leases: exclusive access at the price of blocked failover (section 4.1)";
  let run_ttl ttl =
    let config = { Kube.Cluster.default_config with Kube.Cluster.with_operator = false } in
    let cluster = Kube.Cluster.create ~config () in
    Kube.Cluster.start cluster;
    let electors =
      List.init 2 (fun i ->
          Kube.Elector.create
            ~net:(Kube.Cluster.net cluster)
            ~name:(Printf.sprintf "cand-%d" (i + 1))
            ~lock:"controller"
            ~endpoints:(Kube.Cluster.apiserver_names cluster)
            ~ttl ())
    in
    List.iter Kube.Elector.start electors;
    Kube.Cluster.run cluster ~until:(sec 3);
    let leader = List.find Kube.Elector.believes_leader electors in
    Dsim.Network.crash (Kube.Cluster.net cluster) (Kube.Elector.name leader);
    Kube.Cluster.run cluster ~until:(sec 3 + (4 * ttl) + sec 2);
    let standby =
      List.find
        (fun e -> not (String.equal (Kube.Elector.name e) (Kube.Elector.name leader)))
        electors
    in
    let takeover =
      List.find_map (fun (at, gained) -> if gained then Some (at - sec 3) else None)
        (Kube.Elector.transitions standby)
    in
    let lost =
      List.find_map (fun (at, gained) -> if gained then None else Some at)
        (Kube.Elector.transitions leader)
    in
    ( ttl,
      takeover,
      match takeover, lost with
      | Some gained_delta, Some lost_at -> lost_at <= sec 3 + gained_delta
      | _ -> false )
  in
  let rows =
    List.map
      (fun ttl ->
        let ttl, takeover, safe = run_ttl ttl in
        [
          Printf.sprintf "%d ms" (ttl / 1000);
          (match takeover with
          | Some us -> Printf.sprintf "%d ms" (us / 1000)
          | None -> "no takeover");
          (if safe then "no overlap" else "OVERLAP!");
        ])
      [ ms 500; sec 1; sec 2; sec 4 ]
  in
  Printf.printf "\n(active/standby controllers; active crashes at 3 s)\n\n";
  Sieve.Report.table
    ~header:[ "lease TTL"; "standby takeover after crash"; "belief handoff" ] rows;
  Printf.printf
    "\nExpected shape: takeover latency tracks the lease term — the availability\n\
     cost the paper names — while beliefs never overlap (the old holder's local\n\
     deadline is always at or before the store-side expiry). And leases bound\n\
     *who acts*, not *what they see*: the new leader starts from its own cached\n\
     view, which can be just as stale as anyone's.\n"

(* ------------------------------------------------------------------ *)
(* RAFT: the store tier itself (footnote 1 + section 4.1).            *)

let raft () =
  Sieve.Report.section
    "RAFT — the replicated store tier: failover cost and committed-only histories";
  (* (a) Leader failover latency across seeds. *)
  let failover_times =
    List.filter_map
      (fun seed ->
        let engine = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
        let net = Dsim.Network.create engine in
        let group = Raftlite.Group.create ~net ~n:5 () in
        Raftlite.Group.start group;
        Dsim.Engine.run ~until:(sec 2) engine;
        match Raftlite.Group.leader group with
        | None -> None
        | Some leader ->
            let crash_at = Dsim.Engine.now engine in
            Dsim.Network.crash net (Raftlite.Node.id leader);
            let elected_at = ref None in
            Dsim.Engine.every engine ~period:(ms 5) (fun () ->
                (match Raftlite.Group.leader group, !elected_at with
                | Some fresh, None
                  when not (String.equal (Raftlite.Node.id fresh) (Raftlite.Node.id leader)) ->
                    elected_at := Some (Dsim.Engine.now engine)
                | _ -> ());
                true);
            Dsim.Engine.run ~until:(crash_at + sec 3) engine;
            Option.map (fun at -> float_of_int (at - crash_at) /. 1000.0) !elected_at)
      (List.init 30 (fun i -> i + 1))
  in
  let n = List.length failover_times in
  let mean = List.fold_left ( +. ) 0.0 failover_times /. float_of_int (max 1 n) in
  let sorted = List.sort compare failover_times in
  let pick p = List.nth sorted (min (n - 1) (int_of_float (p *. float_of_int n))) in
  Sieve.Report.subsection "(a) leader failover, 5 replicas, 30 seeded runs";
  Sieve.Report.kv
    [
      ("elections completed", Printf.sprintf "%d/30" n);
      ("mean time to new leader", Printf.sprintf "%.0f ms" mean);
      ("median / p90", Printf.sprintf "%.0f ms / %.0f ms" (pick 0.5) (pick 0.9));
    ];
  Printf.printf
    "\n(election timeouts are uniform in [150,300] ms, so the shape to expect is\n\
     a little over one timeout — randomization avoids split votes)\n";
  (* (b) Footnote 1: H contains only committed events; a minority
     leader's replicated-but-uncommitted suffix is NOT a partial
     history and disappears on heal. *)
  Sieve.Report.subsection "(b) a partial history is not a partially-replicated log (footnote 1)";
  let engine = Dsim.Engine.create ~seed:11L () in
  let net = Dsim.Network.create engine in
  let group = Raftlite.Group.create ~net ~n:5 () in
  Raftlite.Group.start group;
  Dsim.Engine.run ~until:(sec 2) engine;
  ignore (Raftlite.Group.propose_via_leader group "committed-1");
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + ms 500) engine;
  let leader = Option.get (Raftlite.Group.leader group) in
  let leader_id = Raftlite.Node.id leader in
  let rest =
    List.filter (fun id -> not (String.equal id leader_id)) (Raftlite.Group.names group)
  in
  let minority_peer = List.hd rest and majority = List.tl rest in
  List.iter
    (fun a -> List.iter (fun b -> Dsim.Network.partition net a b) majority)
    [ leader_id; minority_peer ];
  for i = 1 to 3 do
    ignore (Raftlite.Node.propose leader (Printf.sprintf "doomed-%d" i))
  done;
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + sec 2) engine;
  ignore (Raftlite.Group.propose_via_leader group "committed-2");
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + sec 1) engine;
  Printf.printf "during the partition:\n";
  Printf.printf "  minority leader %s: log length %d, applied (= H view) %d\n" leader_id
    (Raftlite.Node.log_length leader)
    (List.length (Raftlite.Group.applied group leader_id));
  Printf.printf "  committed history H: [%s]\n"
    (String.concat "; " (Raftlite.Group.committed_prefix group));
  Dsim.Network.heal_all net;
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + sec 2) engine;
  Printf.printf "after healing:\n";
  Printf.printf "  %s log length %d (doomed suffix erased by the new leader)\n" leader_id
    (Raftlite.Node.log_length leader);
  Printf.printf "  committed history H everywhere: [%s]\n"
    (String.concat "; " (Raftlite.Group.committed_prefix group));
  Printf.printf
    "\nThe replicated-but-uncommitted suffix was never observable as history:\n\
     H' in the paper's model is a subsequence of *committed* events only.\n"

(* ------------------------------------------------------------------ *)
(* T-MIN: strategy minimization.                                      *)

let minimize () =
  Sieve.Report.section "T-MIN — minimized reproductions: what each bug actually needs";
  let rows =
    List.map
      (fun case ->
        let test = Sieve.Bugs.test_of_case case in
        let minimized, cost =
          Sieve.Minimize.minimize ~test ~target:case.Sieve.Bugs.matches ()
        in
        [
          case.Sieve.Bugs.id;
          Sieve.Strategy.describe minimized.Sieve.Runner.strategy;
          string_of_int cost;
        ])
      (Sieve.Bugs.all_with_extras ())
  in
  Printf.printf "\n";
  Sieve.Report.table ~header:[ "bug"; "locally minimal strategy"; "runs" ] rows;
  Printf.printf
    "\nEverything left in a minimized strategy is load-bearing: the windows say\n\
     *when* the partial history must diverge, the limits say *how little* —\n\
     several bugs need exactly one suppressed or delayed notification.\n"

(* ------------------------------------------------------------------ *)
(* MICRO: Bechamel micro-benchmarks.                                  *)

let micro () =
  Sieve.Report.section "MICRO — substrate micro-benchmarks (Bechamel, wall clock)";
  let open Bechamel in
  let test_kv_put =
    Test.make ~name:"kv.put x100" (Staged.stage (fun () ->
        let kv = Etcdlike.Kv.create () in
        for i = 1 to 100 do
          ignore (Etcdlike.Kv.put kv (Printf.sprintf "k%d" (i mod 10)) i)
        done))
  in
  let test_state_apply =
    let events =
      List.init 100 (fun i ->
          History.Event.make ~rev:(i + 1) ~key:(Printf.sprintf "k%d" (i mod 10))
            ~op:History.Event.Update (Some i))
    in
    Test.make ~name:"state.apply x100" (Staged.stage (fun () ->
        ignore (List.fold_left History.State.apply History.State.empty events)))
  in
  let test_log_since =
    let log = History.Log.create () in
    for i = 1 to 1_000 do
      ignore
        (History.Log.append log ~key:(Printf.sprintf "k%d" (i mod 50)) ~op:History.Event.Update
           (Some i))
    done;
    Test.make ~name:"log.since (1k events)" (Staged.stage (fun () ->
        ignore (History.Log.since log ~rev:500)))
  in
  let test_engine =
    Test.make ~name:"engine: 1k timer events" (Staged.stage (fun () ->
        let e = Dsim.Engine.create () in
        for i = 1 to 1_000 do
          ignore (Dsim.Engine.schedule e ~delay:i (fun () -> ()))
        done;
        Dsim.Engine.run e))
  in
  let test_trace_ring =
    Test.make ~name:"trace: 1k caused emits (ring 256)" (Staged.stage (fun () ->
        let t = Dsim.Trace.create ~capacity:256 () in
        for i = 1 to 1_000 do
          ignore (Dsim.Trace.emit t ~time:i ~actor:"a" ~kind:"k" ~cause:(max 1 (i - 1)) "d")
        done))
  in
  let test_metrics_hist =
    Test.make ~name:"metrics: 1k observes + p99" (Staged.stage (fun () ->
        let m = Dsim.Metrics.create () in
        for i = 1 to 1_000 do
          Dsim.Metrics.observe m "h" (float_of_int (i mod 97))
        done;
        ignore (Dsim.Metrics.percentile m "h" 0.99)))
  in
  let test_trace_jsonl =
    let trace = Dsim.Trace.create () in
    for i = 1 to 1_000 do
      ignore (Dsim.Trace.emit trace ~time:i ~actor:"etcd" ~kind:"etcd.commit" "rev detail")
    done;
    Test.make ~name:"trace: jsonl dump+parse (1k)" (Staged.stage (fun () ->
        match Dsim.Trace.of_jsonl (Dsim.Trace.to_jsonl trace) with
        | Ok _ -> ()
        | Error msg -> failwith msg))
  in
  let test_cluster_second =
    Test.make ~name:"cluster: 1 virtual second" (Staged.stage (fun () ->
        let cluster = Kube.Cluster.create () in
        Kube.Cluster.start cluster;
        Kube.Cluster.run cluster ~until:(sec 1)))
  in
  let test_bug_repro =
    Test.make ~name:"full CA-402 sieve test" (Staged.stage (fun () ->
        ignore (Sieve.Runner.run_test (Sieve.Bugs.test_of_case (Sieve.Bugs.ca_402 ())))))
  in
  let tests =
    [ test_kv_put; test_state_apply; test_log_since; test_engine; test_trace_ring;
      test_metrics_hist; test_trace_jsonl; test_cluster_second; test_bug_repro ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:None () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  Printf.printf "\n";
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            match Analyze.OLS.estimates ols_result with
            | Some (estimate :: _) ->
                [ name; Printf.sprintf "%.1f us/run" (estimate /. 1000.0) ] :: acc
            | _ -> [ name; "?" ] :: acc)
          analyzed [])
      tests
  in
  Sieve.Report.table ~header:[ "benchmark"; "wall time" ] rows

(* ------------------------------------------------------------------ *)
(* HUNT: campaign-engine throughput across worker domains.            *)

let hunt_bench () =
  Sieve.Report.section "HUNT — campaign engine throughput: trials/sec vs worker domains";
  let cases = [ Sieve.Bugs.k8s_56261 (); Sieve.Bugs.ca_402 () ] in
  let budget = 120 in
  let tmp = Filename.get_temp_dir_name () in
  let run jobs =
    let out = Filename.concat tmp (Printf.sprintf "hunt-bench-%d-j%d" (Unix.getpid ()) jobs) in
    let started = Unix.gettimeofday () in
    let summary =
      Hunt.Campaign.run ~jobs ~out ~budget ~seed:42L ~minimize_budget:0 ~cases ()
    in
    let wall = Unix.gettimeofday () -. started in
    (summary, wall)
  in
  let base = ref None in
  let rows =
    List.map
      (fun jobs ->
        let summary, wall = run jobs in
        if !base = None then base := Some wall;
        let speedup = Option.get !base /. Float.max wall 1e-9 in
        [
          string_of_int jobs;
          string_of_int summary.Hunt.Campaign.executed;
          Printf.sprintf "%.2f s" wall;
          Printf.sprintf "%.0f" (float_of_int summary.Hunt.Campaign.executed /. Float.max wall 1e-9);
          Printf.sprintf "%.2fx" speedup;
        ])
      [ 1; 2; 4 ]
  in
  Printf.printf "\n(%d trials over %s; minimization off to isolate trial throughput;\n\
                 recommended domain count on this machine: %d)\n\n"
    budget
    (String.concat " + " (List.map (fun c -> c.Sieve.Bugs.id) cases))
    (Domain.recommended_domain_count ());
  Sieve.Report.table
    ~header:[ "jobs"; "trials"; "wall time"; "trials/sec"; "speedup vs 1 job" ]
    rows;
  Printf.printf
    "\nExpected shape: near-linear scaling while jobs <= cores — trials are\n\
     independent deterministic simulations, so the only serial parts are the\n\
     in-order journal emit and minimization (disabled here). The journals the\n\
     three runs write are byte-identical; parallelism changes wall time only.\n"

(* ------------------------------------------------------------------ *)
(* LINT: static-analysis cost.                                        *)

let lint_bench () =
  Sieve.Report.section
    "LINT — static analysis cost: parse + taint fixpoint + lint + hazard-graph build";
  let dirs =
    List.filter Sys.file_exists
      [
        Filename.concat "lib" "kube";
        Filename.concat "lib" "hbase";
        Filename.concat "lib" "replicated";
      ]
  in
  if dirs = [] then
    Printf.printf "\n(lib/kube not found — run from the repository root)\n"
  else begin
    let paths =
      List.concat_map
        (fun dir ->
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".ml")
          |> List.sort String.compare
          |> List.map (Filename.concat dir))
        dirs
    in
    let time_n n f =
      let started = Unix.gettimeofday () in
      for _ = 1 to n do
        f ()
      done;
      (Unix.gettimeofday () -. started) /. float_of_int n
    in
    (* Parse once up front so the taint row times the dataflow fixpoint
       alone (summaries + propagation), not the compiler frontend. *)
    let parse path =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf (Filename.basename path);
      Parse.implementation lexbuf
    in
    let structures = List.map parse paths in
    let lint_runs = 20 in
    let findings, errors = Analysis.Lint.files paths in
    let lint_wall = time_n lint_runs (fun () -> ignore (Analysis.Lint.files paths)) in
    let taint_runs = 20 in
    let taint_paths =
      List.fold_left
        (fun acc s -> acc + List.length (Analysis.Taint.analyze s).Analysis.Taint.complete)
        0 structures
    in
    let taint_wall =
      time_n taint_runs (fun () ->
          List.iter (fun s -> ignore (Analysis.Taint.analyze s)) structures)
    in
    let config = Sieve.Bugs.kube_config (Sieve.Bugs.ca_402 ()) in
    let hazard_runs = 2_000 in
    let hazards = Analysis.Hazard.of_config config in
    let hazard_wall = time_n hazard_runs (fun () -> ignore (Analysis.Hazard.of_config config)) in
    Printf.printf "\n";
    Sieve.Report.table
      ~header:[ "stage"; "input"; "output"; "wall time" ]
      [
        [
          Printf.sprintf "layer-1 lint, parse included (x%d)" lint_runs;
          Printf.sprintf "%d files" (List.length paths);
          Printf.sprintf "%d findings, %d errors" (List.length findings) (List.length errors);
          Printf.sprintf "%.2f ms/pass" (lint_wall *. 1e3);
        ];
        [
          Printf.sprintf "taint fixpoint alone (x%d)" taint_runs;
          Printf.sprintf "%d parsed structures" (List.length structures);
          Printf.sprintf "%d complete paths" taint_paths;
          Printf.sprintf "%.2f ms/pass" (taint_wall *. 1e3);
        ];
        [
          Printf.sprintf "layer-2 hazard graph (x%d)" hazard_runs;
          "CA-402 config";
          Printf.sprintf "%d hazards" (List.length hazards);
          Printf.sprintf "%.1f us/build" (hazard_wall *. 1e6);
        ];
      ];
    let json =
      Dsim.Json.Obj
        [
          ("schema", Dsim.Json.String "bench-lint/1");
          ("files", Dsim.Json.Int (List.length paths));
          ("findings", Dsim.Json.Int (List.length findings));
          ("taint_paths", Dsim.Json.Int taint_paths);
          ("hazards", Dsim.Json.Int (List.length hazards));
          ("lint_ms_per_pass", Dsim.Json.Float (lint_wall *. 1e3));
          ("taint_ms_per_pass", Dsim.Json.Float (taint_wall *. 1e3));
          ("hazard_us_per_build", Dsim.Json.Float (hazard_wall *. 1e6));
        ]
    in
    let oc = open_out "BENCH_lint.json" in
    output_string oc (Dsim.Json.to_string json);
    output_char oc '\n';
    close_out oc;
    Printf.printf
      "\nwrote BENCH_lint.json. Expected shape: the whole static pass costs\n\
       milliseconds — two orders of magnitude under a single simulated trial —\n\
       and the taint fixpoint is the bulk of it (the parse is most of the rest),\n\
       so hazard-ranked scheduling (`hunt --hazard-rank`) is effectively free\n\
       relative to the trials it saves.\n"
  end

(* ------------------------------------------------------------------ *)
(* STORE: the store-tier hot path, indexed vs the naive reference.    *)

(* Every trial the hunt engine runs is dominated by this tier: watch
   syncs call [Log.since], re-lists call the prefix scan, the etcd
   watch window compacts after every commit. Each microbench times the
   indexed implementation against the pre-PR naive one (full
   list/filter, filter-then-refind), reimplemented here verbatim, and
   [BENCH_store.json] records the trajectory for future PRs to diff. *)

let store_bench () =
  Sieve.Report.section
    "STORE — indexed event window + range scans vs the naive list/filter tier";
  let sizes = [ 1_000; 10_000; 100_000 ] in
  let groups = 50 in
  let key i = Printf.sprintf "r%02d/k%06d" (i mod groups) i in
  let scan_prefix = Printf.sprintf "r%02d/" (groups / 2) in
  let time_per_op reps ops f =
    let started = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. started) /. float_of_int (reps * ops) *. 1e9
  in
  let results = ref [] in
  let rows = ref [] in
  let record ~bench ~n ~ops ~indexed ~naive =
    let speedup = Option.map (fun naive -> naive /. Float.max indexed 1e-3) naive in
    results :=
      Dsim.Json.Obj
        [
          ("bench", Dsim.Json.String bench);
          ("keys", Dsim.Json.Int n);
          ("ops", Dsim.Json.Int ops);
          ("indexed_ns_per_op", Dsim.Json.Float indexed);
          ( "naive_ns_per_op",
            match naive with Some v -> Dsim.Json.Float v | None -> Dsim.Json.Null );
          ( "speedup",
            match speedup with Some v -> Dsim.Json.Float v | None -> Dsim.Json.Null );
        ]
      :: !results;
    rows :=
      [
        bench;
        string_of_int n;
        Printf.sprintf "%.0f ns/op" indexed;
        (match naive with Some v -> Printf.sprintf "%.0f ns/op" v | None -> "-");
        (match speedup with Some v -> Printf.sprintf "%.1fx" v | None -> "-");
      ]
      :: !rows
  in
  List.iter
    (fun n ->
      let reps = max 5 (200_000 / n) in
      (* append: n commits into a fresh store (timed as one pass). *)
      let kv = Etcdlike.Kv.create () in
      let append_ns =
        time_per_op 1 n (fun () ->
            for i = 1 to n do
              ignore (Etcdlike.Kv.put kv (key i) i)
            done)
      in
      record ~bench:"append" ~n ~ops:n ~indexed:append_ns ~naive:None;
      let state = Etcdlike.Kv.state kv in
      (* The pre-PR store kept the retained events as a newest-first
         list; rebuild that representation for the naive timings. *)
      let naive_events = List.rev (History.Log.events (Etcdlike.Kv.history kv)) in
      let naive_since rev =
        List.rev (List.filter (fun (e : int History.Event.t) -> e.History.Event.rev > rev) naive_events)
      in
      let naive_range prefix =
        History.State.keys state
        |> List.filter (fun k -> String.starts_with ~prefix k)
        |> List.filter_map (fun k ->
               match History.State.find state k with
               | Some (v, mod_rev) -> Some (k, v, mod_rev)
               | None -> None)
      in
      (* since: a watch sync fetching the last 1000 events. *)
      let k_since = min 1_000 n in
      let since_rev = n - k_since in
      let since_ns =
        time_per_op reps k_since (fun () ->
            match Etcdlike.Kv.since kv ~rev:since_rev with Ok _ -> () | Error _ -> assert false)
      in
      let since_naive_ns = time_per_op reps k_since (fun () -> ignore (naive_since since_rev)) in
      record ~bench:"since" ~n ~ops:k_since ~indexed:since_ns ~naive:(Some since_naive_ns);
      (* prefix-scan: one component's re-list of its resource prefix. *)
      let k_scan = List.length (Etcdlike.Kv.range kv ~prefix:scan_prefix) in
      let range_ns =
        time_per_op reps k_scan (fun () -> ignore (Etcdlike.Kv.range kv ~prefix:scan_prefix))
      in
      let range_naive_ns = time_per_op reps k_scan (fun () -> ignore (naive_range scan_prefix)) in
      record ~bench:"prefix-scan" ~n ~ops:k_scan ~indexed:range_ns ~naive:(Some range_naive_ns);
      (* watch-backlog: a subscriber re-syncing 64 revisions behind the
         head — the backlog slice plus the per-subscriber prefix filter
         the watch hub applies before delivery. *)
      let k_backlog = min 64 n in
      let backlog_rev = n - k_backlog in
      let deliver backlog =
        List.iter
          (fun e -> if History.Event.matches_prefix (Some scan_prefix) e then ignore (Sys.opaque_identity e))
          backlog
      in
      let backlog_ns =
        time_per_op reps k_backlog (fun () ->
            match Etcdlike.Kv.since kv ~rev:backlog_rev with
            | Ok backlog -> deliver backlog
            | Error _ -> assert false)
      in
      let backlog_naive_ns =
        time_per_op reps k_backlog (fun () -> deliver (naive_since backlog_rev))
      in
      record ~bench:"watch-backlog" ~n ~ops:k_backlog ~indexed:backlog_ns
        ~naive:(Some backlog_naive_ns);
      (* state_at: time travel to the middle of the retained window —
         snapshot + short replay vs full replay. *)
      let mid = n / 2 in
      let state_at_reps = max 3 (reps / 4) in
      let state_at_ns =
        time_per_op state_at_reps 1 (fun () ->
            ignore (History.Log.state_at (Etcdlike.Kv.history kv) ~rev:mid))
      in
      let state_at_naive_ns =
        time_per_op state_at_reps 1 (fun () ->
            ignore
              (List.fold_left History.State.apply History.State.empty
                 (List.rev
                    (List.filter
                       (fun (e : int History.Event.t) -> e.History.Event.rev <= mid)
                       naive_events))))
      in
      record ~bench:"state_at" ~n ~ops:1 ~indexed:state_at_ns ~naive:(Some state_at_naive_ns);
      (* compact: shrink the log to a 1000-event rolling window. *)
      let build () =
        let kv = Etcdlike.Kv.create () in
        for i = 1 to n do
          ignore (Etcdlike.Kv.put kv (key i) i)
        done;
        kv
      in
      let victim = build () in
      let keep = max 100 (n / 10) in
      let dropped = n - keep in
      let compact_ns =
        time_per_op 1 dropped (fun () -> Etcdlike.Kv.compact_keep_last victim keep)
      in
      let compact_naive_ns =
        time_per_op 1 dropped (fun () ->
            let discarded, kept =
              List.partition
                (fun (e : int History.Event.t) -> e.History.Event.rev <= n - keep)
                naive_events
            in
            ignore
              (List.fold_left History.State.apply History.State.empty (List.rev discarded));
            ignore (List.length kept))
      in
      record ~bench:"compact" ~n ~ops:dropped ~indexed:compact_ns ~naive:(Some compact_naive_ns))
    sizes;
  let rows = List.rev !rows in
  Printf.printf "\n";
  Sieve.Report.table
    ~header:[ "bench"; "keys"; "indexed"; "naive (pre-PR)"; "speedup" ]
    rows;
  let json =
    Dsim.Json.Obj
      [
        ("schema", Dsim.Json.String "bench-store/1");
        ("sizes", Dsim.Json.List (List.map (fun n -> Dsim.Json.Int n) sizes));
        ("results", Dsim.Json.List (List.rev !results));
      ]
  in
  let oc = open_out "BENCH_store.json" in
  output_string oc (Dsim.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nwrote BENCH_store.json. Expected shape: since / watch-backlog / prefix-scan\n\
     are O(answer) instead of O(retained events | keyspace), so their speedups\n\
     grow linearly with the store size; append stays O(log n); compact is an\n\
     O(k) window shift that no longer rebuilds the kept suffix.\n"

(* ------------------------------------------------------------------ *)
(* CONFORMANCE: online-monitor overhead on the campaign hot path.     *)

(* The monitor mirrors every commit (never compacting, one persistent
   state snapshot per revision) and re-checks every delivery — the
   worst-credible-cost configuration. The budget and cases match the
   HUNT experiment, so the two baselines agree; BENCH_conformance.json
   records the trajectory for future PRs to diff. *)

let conformance_bench () =
  Sieve.Report.section
    "CONFORMANCE — online subsequence-invariant monitor: campaign overhead";
  let cases = [ Sieve.Bugs.k8s_56261 (); Sieve.Bugs.ca_402 () ] in
  let budget = 120 in
  let tmp = Filename.get_temp_dir_name () in
  let journal_of out =
    let path = Filename.concat out "journal.jsonl" in
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    contents
  in
  let run ~check_conformance label =
    let out =
      Filename.concat tmp (Printf.sprintf "conf-bench-%d-%s" (Unix.getpid ()) label)
    in
    let started = Unix.gettimeofday () in
    let summary =
      Hunt.Campaign.run ~jobs:1 ~out ~budget ~seed:42L ~minimize_budget:0
        ~check_conformance ~cases ()
    in
    let wall = Unix.gettimeofday () -. started in
    (summary, wall, out)
  in
  (* One discarded warm-up run so allocator/page-cache effects don't
     land on whichever arm happens to go first, then 3 interleaved
     off/on pairs with best-of-3 per arm: interleaving keeps slow
     machine drift from billing one arm, and the minimum is the least
     noise-contaminated estimate of the true cost on a sub-second wall. *)
  let (_ : Hunt.Campaign.summary * float * string) = run ~check_conformance:false "warm" in
  let reps = 3 in
  let pairs =
    List.init reps (fun i ->
        ( run ~check_conformance:false (Printf.sprintf "off-%d" i),
          run ~check_conformance:true (Printf.sprintf "on-%d" i) ))
  in
  let best picks =
    List.fold_left
      (fun (bs, bw, bo) (s, w, o) -> if w < bw then (s, w, o) else (bs, bw, bo))
      (List.hd picks) (List.tl picks)
  in
  let base, baseline_s, base_out = best (List.map fst pairs) in
  let conf, conformance_s, conf_out = best (List.map snd pairs) in
  let overhead_pct =
    100.0 *. (conformance_s -. baseline_s) /. Float.max baseline_s 1e-9
  in
  let journal_identical = String.equal (journal_of base_out) (journal_of conf_out) in
  let conf_trials, conf_total, conf_signatures =
    match conf.Hunt.Campaign.conformance with
    | Some c ->
        ( c.Hunt.Campaign.conf_trials,
          c.Hunt.Campaign.conf_total,
          List.length c.Hunt.Campaign.conf_signatures )
    | None -> (0, -1, -1)
  in
  Printf.printf "\n(%d trials over %s, 1 job, minimization off — the HUNT baseline)\n\n"
    budget
    (String.concat " + " (List.map (fun c -> c.Sieve.Bugs.id) cases));
  Sieve.Report.table
    ~header:[ "campaign"; "trials"; "wall time"; "violations"; "journal" ]
    [
      [ "monitor off"; string_of_int base.Hunt.Campaign.executed;
        Printf.sprintf "%.2f s" baseline_s; "-"; "baseline" ];
      [ "monitor on"; string_of_int conf_trials;
        Printf.sprintf "%.2f s" conformance_s; string_of_int conf_total;
        (if journal_identical then "byte-identical" else "DIVERGED!") ];
    ];
  Sieve.Report.kv
    [
      ("overhead", Printf.sprintf "%+.1f%%" overhead_pct);
      ("distinct conformance signatures", string_of_int conf_signatures);
    ];
  let json =
    Dsim.Json.Obj
      [
        ("schema", Dsim.Json.String "bench-conformance/1");
        ("trials", Dsim.Json.Int budget);
        ("baseline_s", Dsim.Json.Float baseline_s);
        ("conformance_s", Dsim.Json.Float conformance_s);
        ("overhead_pct", Dsim.Json.Float overhead_pct);
        ("violations", Dsim.Json.Int conf_total);
        ("journal_identical", Dsim.Json.Bool journal_identical);
      ]
  in
  let oc = open_out "BENCH_conformance.json" in
  output_string oc (Dsim.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nwrote BENCH_conformance.json. Expected shape: zero violations on the\n\
     committed corpus, journal bytes untouched by the flag, and single-digit\n\
     overhead — the mirror is one map insert + one snapshot per commit and the\n\
     checks are O(1) per delivery, so the monitor rides along on every hunt.\n"

(* ------------------------------------------------------------------ *)
(* DIAGNOSIS: root-cause card cost.                                   *)

(* Two numbers matter: what a card costs in isolation (the corpus
   sweep — one tracked re-run plus a causal walk and two static
   analyses per bug), and what `hunt --diagnose` adds to the campaign
   hot path, where divergence tracking rides on every executed trial
   and each finding pays one extra tracked re-run for its card. Budget
   and cases match the HUNT/CONFORMANCE experiments so the baselines
   agree; BENCH_diagnosis.json records the trajectory. *)

let diagnosis_bench () =
  Sieve.Report.section "DIAGNOSIS — root-cause cards: corpus sweep + campaign overhead";
  (* Arm 1: the full-corpus sweep, every card schema-checked. *)
  let corpus = Sieve.Bugs.all_with_extras () in
  let started = Unix.gettimeofday () in
  let cards =
    List.filter_map (fun case -> snd (Diagnosis.Diagnose.diagnose_case case)) corpus
  in
  let corpus_s = Unix.gettimeofday () -. started in
  let cards_valid =
    List.for_all
      (fun c -> Diagnosis.Card.validate (Diagnosis.Card.to_json c) = Ok ())
      cards
  in
  Sieve.Report.table
    ~header:[ "bug"; "divergence"; "rev"; "suspect"; "anti-pattern" ]
    (List.map
       (fun (c : Diagnosis.Card.t) ->
         let d = c.Diagnosis.Card.divergence in
         [
           c.Diagnosis.Card.bug;
           d.Diagnosis.Card.kind;
           string_of_int d.Diagnosis.Card.rev;
           c.Diagnosis.Card.suspect.Diagnosis.Card.component;
           c.Diagnosis.Card.suspect.Diagnosis.Card.anti_pattern;
         ])
       cards);
  Sieve.Report.kv
    [
      ( "corpus sweep",
        Printf.sprintf "%d cards in %.2f s (%.0f ms/card)" (List.length cards) corpus_s
          (1000.0 *. corpus_s /. float_of_int (max 1 (List.length cards))) );
      ("all cards schema-valid", if cards_valid then "yes" else "NO");
    ];
  (* Arm 2: campaign overhead, interleaved off/on pairs, best-of-3. *)
  let cases = [ Sieve.Bugs.k8s_56261 (); Sieve.Bugs.ca_402 () ] in
  let budget = 120 in
  let tmp = Filename.get_temp_dir_name () in
  let journal_of out =
    let path = Filename.concat out "journal.jsonl" in
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    contents
  in
  let run ~diagnose label =
    let out = Filename.concat tmp (Printf.sprintf "diag-bench-%d-%s" (Unix.getpid ()) label) in
    let started = Unix.gettimeofday () in
    let summary =
      Hunt.Campaign.run ~jobs:1 ~out ~budget ~seed:42L ~minimize_budget:0 ~diagnose ~cases ()
    in
    (summary, Unix.gettimeofday () -. started, out)
  in
  let (_ : Hunt.Campaign.summary * float * string) = run ~diagnose:false "warm" in
  let reps = 3 in
  let pairs =
    List.init reps (fun i ->
        ( run ~diagnose:false (Printf.sprintf "off-%d" i),
          run ~diagnose:true (Printf.sprintf "on-%d" i) ))
  in
  let best picks =
    List.fold_left
      (fun (bs, bw, bo) (s, w, o) -> if w < bw then (s, w, o) else (bs, bw, bo))
      (List.hd picks) (List.tl picks)
  in
  let base, baseline_s, base_out = best (List.map fst pairs) in
  let diag, diagnose_s, diag_out = best (List.map snd pairs) in
  let overhead_pct = 100.0 *. (diagnose_s -. baseline_s) /. Float.max baseline_s 1e-9 in
  let journal_identical = String.equal (journal_of base_out) (journal_of diag_out) in
  Printf.printf "\n(%d trials over %s, 1 job, minimization off — the HUNT baseline)\n\n"
    budget
    (String.concat " + " (List.map (fun c -> c.Sieve.Bugs.id) cases));
  Sieve.Report.table
    ~header:[ "campaign"; "trials"; "wall time"; "cards"; "journal" ]
    [
      [ "diagnose off"; string_of_int base.Hunt.Campaign.executed;
        Printf.sprintf "%.2f s" baseline_s; "-"; "baseline" ];
      [ "diagnose on"; string_of_int diag.Hunt.Campaign.executed;
        Printf.sprintf "%.2f s" diagnose_s;
        string_of_int diag.Hunt.Campaign.cards;
        (if journal_identical then "byte-identical" else "DIVERGED!") ];
    ];
  Sieve.Report.kv [ ("overhead", Printf.sprintf "%+.1f%%" overhead_pct) ];
  let json =
    Dsim.Json.Obj
      [
        ("schema", Dsim.Json.String "bench-diagnosis/1");
        ("corpus_cards", Dsim.Json.Int (List.length cards));
        ("corpus_s", Dsim.Json.Float corpus_s);
        ("cards_valid", Dsim.Json.Bool cards_valid);
        ("trials", Dsim.Json.Int budget);
        ("baseline_s", Dsim.Json.Float baseline_s);
        ("diagnose_s", Dsim.Json.Float diagnose_s);
        ("overhead_pct", Dsim.Json.Float overhead_pct);
        ("campaign_cards", Dsim.Json.Int diag.Hunt.Campaign.cards);
        ("journal_identical", Dsim.Json.Bool journal_identical);
      ]
  in
  let oc = open_out "BENCH_diagnosis.json" in
  output_string oc (Dsim.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nwrote BENCH_diagnosis.json. Expected shape: eight valid cards in the\n\
     sweep, journal bytes untouched by the flag, and overhead proportional to\n\
     findings (one tracked re-run per card), not to trials — the monitor's\n\
     divergence tracking itself is O(1) per delivery.\n"

(* ------------------------------------------------------------------ *)
(* REPLICATION: consensus costs of the Raft-backed store.             *)

(* Three numbers per group size: propose->commit latency (virtual time
   from submission to the canonical first apply — what every mutation
   now pays versus the single store's zero), apply throughput (wall
   clock: committed entries applied across all replicas per second of
   real time — the simulator-side cost of replaying consensus), and
   churn recovery (virtual time from leader crash to the next committed
   write, covering detection, election and the proposal retry). *)

let replication_bench () =
  Sieve.Report.section
    "REPLICATION — Raft-lite under the store: commit latency, apply rate, churn recovery";
  let sizes = [ 1; 3; 5 ] in
  let ops = 400 in
  let results = ref [] and rows = ref [] in
  List.iter
    (fun n ->
      let engine = Dsim.Engine.create ~seed:7L () in
      let net = Dsim.Network.create engine in
      let kv : int Replicated.Kv.t = Replicated.Kv.create ~net ~n () in
      Replicated.Kv.start kv;
      Dsim.Engine.run ~until:1_000_000 engine;
      (* Closed loop: one outstanding proposal, the commit callback
         submits the next — latency samples never queue behind each
         other. *)
      let latencies = ref [] in
      let failed = ref 0 in
      let rec submit i =
        if i <= ops then begin
          let t0 = Dsim.Engine.now engine in
          Replicated.Kv.put kv (Printf.sprintf "bench/k%03d" (i mod 64)) i (fun r ->
              (match r with Ok _ -> () | Error `Unavailable -> incr failed);
              latencies := (Dsim.Engine.now engine - t0) :: !latencies;
              submit (i + 1))
        end
      in
      let wall0 = Unix.gettimeofday () in
      submit 1;
      Dsim.Engine.run ~until:(Dsim.Engine.now engine + 60_000_000) engine;
      let wall = Unix.gettimeofday () -. wall0 in
      if List.length !latencies < ops then
        failwith (Printf.sprintf "replication bench: only %d/%d proposals resolved"
                    (List.length !latencies) ops);
      let sorted = List.sort compare !latencies in
      let pct p = List.nth sorted (min (ops - 1) (p * ops / 100)) in
      let p50 = pct 50 and p95 = pct 95 in
      (* Every committed entry is applied once per replica. *)
      let throughput = float_of_int (ops * n) /. Float.max wall 1e-9 in
      (* Churn: kill the current leader mid-stream and time the next
         commit — failure detection + election + proposal retry. *)
      let leader = Option.get (Replicated.Kv.leader kv) in
      Dsim.Network.crash net leader;
      let t0 = Dsim.Engine.now engine in
      let recovered = ref None in
      let attempts = ref 0 in
      (* A client that re-submits on outage: recovery is the time from
         the crash to the first write committed again. Slow elections
         (vote splits past the 2 s proposal deadline) show up as extra
         attempts, not as a lost measurement. *)
      let rec recover_put () =
        incr attempts;
        Replicated.Kv.put kv "bench/recovery" !attempts (fun r ->
            match r with
            | Ok _ -> recovered := Some (Dsim.Engine.now engine - t0)
            | Error `Unavailable -> recover_put ())
      in
      recover_put ();
      if n = 1 then
        ignore
          (Dsim.Engine.schedule engine ~delay:200_000 (fun () ->
               Dsim.Network.restart net leader));
      Dsim.Engine.run ~until:(Dsim.Engine.now engine + 30_000_000) engine;
      let recovery =
        match !recovered with
        | Some us -> us
        | None -> failwith "replication bench: no commit after leader churn"
      in
      rows :=
        [
          string_of_int n;
          Printf.sprintf "%.2f ms" (float_of_int p50 /. 1e3);
          Printf.sprintf "%.2f ms" (float_of_int p95 /. 1e3);
          Printf.sprintf "%.0f applies/s" throughput;
          Printf.sprintf "%.0f ms" (float_of_int recovery /. 1e3);
        ]
        :: !rows;
      results :=
        Dsim.Json.Obj
          [
            ("replicas", Dsim.Json.Int n);
            ("ops", Dsim.Json.Int ops);
            ("failed", Dsim.Json.Int !failed);
            ("commit_latency_p50_us", Dsim.Json.Int p50);
            ("commit_latency_p95_us", Dsim.Json.Int p95);
            ("apply_throughput_per_s", Dsim.Json.Float throughput);
            ("churn_recovery_us", Dsim.Json.Int recovery);
            ("churn_recovery_attempts", Dsim.Json.Int !attempts);
          ]
        :: !results)
    sizes;
  Sieve.Report.table
    ~header:[ "replicas"; "commit p50"; "commit p95"; "apply rate"; "churn recovery" ]
    (List.rev !rows);
  let json =
    Dsim.Json.Obj
      [
        ("schema", Dsim.Json.String "bench-replication/1");
        ("sizes", Dsim.Json.List (List.map (fun n -> Dsim.Json.Int n) sizes));
        ("results", Dsim.Json.List (List.rev !results));
      ]
  in
  let oc = open_out "BENCH_replication.json" in
  output_string oc (Dsim.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nwrote BENCH_replication.json. Expected shape: n=1 commits synchronously\n\
     (latency ~= one gateway round trip), n=3/5 pay a broadcast plus the\n\
     follower-ack quorum; recovery sits in the election-timeout band\n\
     (150-300 ms) plus a proposal retry — vote splits (common at n=5,\n\
     where four near-synchronized candidates collide) can stretch it past\n\
     the 2 s client deadline and cost an extra attempt; the apply rate is\n\
     committed entries replayed across all replicas per wall second.\n"

(* ------------------------------------------------------------------ *)
(* CLUSTER-SCALE: the watch-dispatch tier at production fan-out.      *)

(* Thousands of nodes, 100k+ objects, hundreds of informers: per
   committed event the dispatch tier must answer "which watchers match
   this key?". The indexed walk ({!History.Dispatch}) visits only the
   trie path of the key; the naive walk — what every tier did before
   the index — filters the full watcher table with [matches_prefix],
   paying O(watchers) per commit no matter how few match. *)
let cluster_scale () =
  Sieve.Report.section "CLUSTER-SCALE — indexed watch dispatch vs naive full-table filter";
  let full_sizes =
    [
      (* nodes, objects, informers *)
      (250, 10_000, 64);
      (1_000, 50_000, 160);
      (2_000, 100_000, 320);
      (4_000, 200_000, 640);
    ]
  in
  let sizes =
    (* CLUSTER_SCALE=ci trims to the two small sizes for the CI job;
       the committed BENCH_cluster.json always comes from a full run. *)
    match Sys.getenv_opt "CLUSTER_SCALE" with
    | Some "ci" -> [ List.nth full_sizes 0; List.nth full_sizes 1 ]
    | _ -> full_sizes
  in
  let resource_prefixes =
    [ "pods/"; "nodes/"; "services/"; "deployments/"; "configmaps/"; "secrets/"; "endpoints/" ]
  in
  let results = ref [] in
  let rows = ref [] in
  List.iter
    (fun (nodes, objects, informers) ->
      (* Object keys: pods spread across the nodes, plus the node
         objects themselves (~10% of commits touch nodes/). *)
      let key i =
        if i mod 10 = 0 then Printf.sprintf "nodes/node-%05d" (i / 10 mod nodes)
        else Printf.sprintf "pods/node-%05d/pod-%07d" (i mod nodes) i
      in
      (* Informer population: one match-all audit stream, one broad
         informer per resource kind, and kubelet-style per-node pod
         watchers for the remainder. *)
      let broad = List.length resource_prefixes in
      let informer_prefixes =
        List.init informers (fun i ->
            if i = 0 then None
            else if i <= broad then Some (List.nth resource_prefixes (i - 1))
            else Some (Printf.sprintf "pods/node-%05d/" ((i - broad - 1) mod nodes)))
      in
      let delivered_indexed = ref 0 and delivered_naive = ref 0 in
      let index = History.Dispatch.create () in
      List.iter
        (fun prefix ->
          ignore (History.Dispatch.add index ?prefix (fun () -> incr delivered_indexed)))
        informer_prefixes;
      let naive_watchers =
        List.map (fun p -> (p, fun () -> incr delivered_naive)) informer_prefixes
      in
      let n_events = min objects 40_000 in
      let events =
        Array.init n_events (fun i ->
            History.Event.make ~rev:(i + 1) ~key:(key i) ~op:History.Event.Update (Some i))
      in
      (* Clock resolution is ~1 us, an indexed dispatch is ~100 ns:
         sample latency over 64-event blocks and report per-event ns. *)
      let time_each dispatch =
        let block = 64 in
        let n_blocks = (n_events + block - 1) / block in
        let lat = Array.make n_blocks 0.0 in
        let started = Unix.gettimeofday () in
        for b = 0 to n_blocks - 1 do
          let lo = b * block in
          let hi = min (lo + block) n_events in
          let t0 = Unix.gettimeofday () in
          for i = lo to hi - 1 do
            dispatch events.(i)
          done;
          lat.(b) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int (hi - lo)
        done;
        let wall = Unix.gettimeofday () -. started in
        Array.sort compare lat;
        let pct p = lat.(min (n_blocks - 1) (p * n_blocks / 100)) in
        (pct 50, pct 95, float_of_int n_events /. Float.max wall 1e-9)
      in
      let indexed_p50, indexed_p95, indexed_eps =
        time_each (fun (e : int History.Event.t) ->
            History.Dispatch.iter_matching index ~key:e.History.Event.key (fun _ f -> f ()))
      in
      let naive_p50, naive_p95, naive_eps =
        time_each (fun e ->
            List.iter (fun (p, f) -> if History.Event.matches_prefix p e then f ()) naive_watchers)
      in
      (* The two walks must agree — the bench doubles as an end-to-end
         equivalence check at scale. *)
      if !delivered_indexed <> !delivered_naive then
        failwith
          (Printf.sprintf "dispatch mismatch: indexed delivered %d, naive delivered %d"
             !delivered_indexed !delivered_naive);
      (* Per-tick batching: replay the stream in 256-event ticks through
         the coalescer, stream = watcher handle. Consecutive same-stream
         deliveries collapse into one notification per tick. *)
      let batch : int History.Dispatch.Batch.queue = History.Dispatch.Batch.create () in
      let notifications = ref 0 and batched_deliveries = ref 0 in
      Array.iteri
        (fun i e ->
          History.Dispatch.iter_matching index ~key:e.History.Event.key (fun handle _ ->
              History.Dispatch.Batch.offer batch ~stream:handle e);
          if (i + 1) mod 256 = 0 || i = n_events - 1 then
            History.Dispatch.Batch.flush batch (fun ~stream:_ evs ->
                incr notifications;
                batched_deliveries := !batched_deliveries + List.length evs))
        events;
      let coalescing = float_of_int !batched_deliveries /. float_of_int (max 1 !notifications) in
      let speedup_p50 = naive_p50 /. Float.max indexed_p50 1e-3 in
      let speedup_eps = indexed_eps /. Float.max naive_eps 1e-9 in
      results :=
        Dsim.Json.Obj
          [
            ("nodes", Dsim.Json.Int nodes);
            ("objects", Dsim.Json.Int objects);
            ("informers", Dsim.Json.Int informers);
            ("events", Dsim.Json.Int n_events);
            ("indexed_p50_ns", Dsim.Json.Float indexed_p50);
            ("indexed_p95_ns", Dsim.Json.Float indexed_p95);
            ("indexed_events_per_sec", Dsim.Json.Float indexed_eps);
            ("naive_p50_ns", Dsim.Json.Float naive_p50);
            ("naive_p95_ns", Dsim.Json.Float naive_p95);
            ("naive_events_per_sec", Dsim.Json.Float naive_eps);
            ("speedup_p50", Dsim.Json.Float speedup_p50);
            ("speedup_events_per_sec", Dsim.Json.Float speedup_eps);
            ("batch_notifications", Dsim.Json.Int !notifications);
            ("batch_coalescing", Dsim.Json.Float coalescing);
          ]
        :: !results;
      rows :=
        [
          string_of_int nodes;
          string_of_int objects;
          string_of_int informers;
          Printf.sprintf "%.0f/%.0f ns" indexed_p50 indexed_p95;
          Printf.sprintf "%.0f/%.0f ns" naive_p50 naive_p95;
          Printf.sprintf "%.2fM/s" (indexed_eps /. 1e6);
          Printf.sprintf "%.1fx" speedup_eps;
          Printf.sprintf "%.1f ev/notif" coalescing;
        ]
        :: !rows)
    sizes;
  Printf.printf "\n";
  Sieve.Report.table
    ~header:
      [ "nodes"; "objects"; "informers"; "indexed p50/p95"; "naive p50/p95"; "indexed rate";
        "speedup"; "batching" ]
    (List.rev !rows);
  let json =
    Dsim.Json.Obj
      [
        ("schema", Dsim.Json.String "bench-cluster/1");
        ( "sizes",
          Dsim.Json.List
            (List.map
               (fun (n, o, i) ->
                 Dsim.Json.Obj
                   [
                     ("nodes", Dsim.Json.Int n);
                     ("objects", Dsim.Json.Int o);
                     ("informers", Dsim.Json.Int i);
                   ])
               sizes) );
        ("results", Dsim.Json.List (List.rev !results));
      ]
  in
  let oc = open_out "BENCH_cluster.json" in
  output_string oc (Dsim.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nwrote BENCH_cluster.json. Expected shape: indexed dispatch cost tracks the\n\
     number of *matching* watchers (a few per key), so its latency is flat across\n\
     sizes while the naive walk grows linearly with the informer count — the\n\
     speedup should exceed 10x at the largest size. Batching reports how many\n\
     per-event deliveries collapse into one per-tick notification per stream.\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3a", fig3a);
    ("fig3b", fig3b);
    ("fig3c", fig3c);
    ("bugs", bugs);
    ("baselines", baselines);
    ("yield", yield_curve);
    ("epochs", epochs);
    ("seals", seals);
    ("perf", perf);
    ("robust", robustness);
    ("scale", scale);
    ("hbase", hbase);
    ("leases", leases);
    ("raft", raft);
    ("minimize", minimize);
    ("hunt", hunt_bench);
    ("lint", lint_bench);
    ("store", store_bench);
    ("conformance", conformance_bench);
    ("diagnosis", diagnosis_bench);
    ("replication", replication_bench);
    ("cluster-scale", cluster_scale);
    ("micro", micro);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    match requested with
    | [] -> experiments
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name experiments with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown experiment %S (available: %s)\n" name
                  (String.concat ", " (List.map fst experiments));
                exit 1)
          names
  in
  List.iter (fun (_, f) -> f ()) to_run
