examples/hbase_regions.ml: Dsim Format Hbaselike List Option Printf
