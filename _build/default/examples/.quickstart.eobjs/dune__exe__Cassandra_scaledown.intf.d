examples/cassandra_scaledown.mli:
