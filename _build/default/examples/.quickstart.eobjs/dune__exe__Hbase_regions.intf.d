examples/hbase_regions.mli:
