examples/cassandra_scaledown.ml: Format Kube List Printf Sieve
