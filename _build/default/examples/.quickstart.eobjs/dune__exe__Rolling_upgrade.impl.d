examples/rolling_upgrade.ml: Format Kube List Sieve String
