examples/quickstart.ml: Format History Kube List Sieve String
