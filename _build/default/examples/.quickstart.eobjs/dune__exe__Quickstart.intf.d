examples/quickstart.mli:
