examples/replicated_store.ml: Dsim Etcdlike Format List Option Printf Raftlite String
