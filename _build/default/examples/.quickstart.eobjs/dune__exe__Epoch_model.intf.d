examples/epoch_model.mli:
