examples/epoch_model.ml: Format History List String
