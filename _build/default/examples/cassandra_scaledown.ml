(* Finding an unknown bug automatically: point the planner at a Cassandra
   scale-up/scale-down workload and let it discover the operator bugs
   (cassandra-operator-400/402) without being told where to look.

   Run with: dune exec examples/cassandra_scaledown.exe *)

let () =
  let config = Kube.Cluster.default_config in
  let horizon = 9_000_000 in
  let workload =
    Kube.Workload.cassandra_scale ~start:1_000_000 ~dc:"ring"
      ~steps:[ (0, 2); (2_500_000, 4); (5_000_000, 2) ]
      ()
  in

  (* Step 1: run the workload unperturbed and record the committed
     history — the planner's raw material. *)
  let reference =
    Sieve.Runner.base_test ~name:"reference" ~config ~workload ~horizon
      Sieve.Strategy.No_perturbation
  in
  let events = Sieve.Runner.reference_events reference in
  Format.printf "reference run committed %d events@." (List.length events);

  (* Step 2: enumerate pattern-shaped perturbations around the events
     each component consumes (causally pruned, pattern-interleaved). *)
  let plans = Sieve.Planner.candidates ~config ~events ~horizon () in
  Format.printf "planner proposed %d candidate perturbations@.@." (List.length plans);

  (* Step 3: run candidates until something breaks. No target: we are
     hunting, not reproducing. *)
  let found = ref [] in
  let budget = 200 in
  List.iteri
    (fun i plan ->
      if i < budget && !found = [] then begin
        let outcome =
          Sieve.Runner.run_test
            (Sieve.Runner.base_test ~name:(Printf.sprintf "candidate-%d" i) ~config ~workload
               ~horizon plan.Sieve.Planner.strategy)
        in
        match outcome.Sieve.Runner.violations with
        | [] -> ()
        | violations ->
            found := violations;
            Format.printf "candidate %d broke the operator:@." (i + 1);
            Format.printf "  perturbation: %s@." plan.Sieve.Planner.rationale;
            Format.printf "  strategy:     %s@."
              (Sieve.Strategy.describe plan.Sieve.Planner.strategy);
            List.iter
              (fun (t, v) ->
                Format.printf "  at %.1f s: [%s] %s@." (float_of_int t /. 1e6)
                  (Sieve.Oracle.bug_id v) (Sieve.Oracle.describe v))
              violations
      end)
    plans;
  if !found = [] then Format.printf "nothing found within %d tests@." budget
  else begin
    (* Step 4: confirm the quorum-guard fix closes what we found. *)
    let fixed = { config with Kube.Cluster.operator_fixed = true } in
    let still_broken = ref false in
    List.iteri
      (fun i plan ->
        if i < budget && not !still_broken then
          let outcome =
            Sieve.Runner.run_test
              (Sieve.Runner.base_test ~config:fixed ~workload ~horizon
                 plan.Sieve.Planner.strategy)
          in
          if outcome.Sieve.Runner.violations <> [] then still_broken := true)
      plans;
    Format.printf "@.with quorum guards in the operator: %s@."
      (if !still_broken then "STILL BROKEN" else "no candidate breaks it — fix holds")
  end
