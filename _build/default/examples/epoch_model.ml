(* The partial-history model itself, without the cluster: histories,
   partial histories, views, anomalies and epoch-bounded delivery —
   the paper's Section 3 and Section 6.2 as a library.

   Run with: dune exec examples/epoch_model.exe *)

let () =
  (* Build a small committed history H. *)
  let log = History.Log.create () in
  let commit key op value = ignore (History.Log.append log ~key ~op value) in
  commit "pods/a" History.Event.Create (Some "a-v1");
  commit "pods/b" History.Event.Create (Some "b-v1");
  commit "pods/a" History.Event.Update (Some "a-v2");
  commit "pods/b" History.Event.Delete None;
  commit "pods/c" History.Event.Create (Some "c-v1");
  let h = History.Log.events log in
  Format.printf "H has %d events; S has %d live objects at rev %d@." (List.length h)
    (History.State.cardinal (History.Log.state log))
    (History.Log.rev log);

  (* A partial history H' ⊑ H: drop event 2 and lag behind the head. *)
  let h' = History.Partial.apply_mask h ~mask:[ true; false; true; true ] in
  Format.printf "@.H' observes revisions: %s@."
    (String.concat ", "
       (List.map (fun (e : string History.Event.t) -> string_of_int e.History.Event.rev) h'));
  Format.printf "H' is a valid partial history: %b@." (History.Partial.is_partial_of h' ~of_:h);
  Format.printf "interior gaps (skipped events): revs %s@."
    (String.concat ", " (List.map string_of_int (History.Partial.interior_gaps h' ~of_:h)));
  Format.printf "lag behind the head: %d events@." (History.Partial.lag h' ~of_:h);

  (* Sparse reads of S cannot recover H: shadowed events are invisible. *)
  Format.printf "@.events unobservable from the final state: revs %s@."
    (String.concat ", " (List.map string_of_int (History.Partial.unobservable_in_state h)));

  (* A component view detects its own anomalies. *)
  let view = History.View.create ~actor:"controller" in
  let view, _ = History.View.observe view (List.nth h 4) (* rev 5 *) in
  let _, anomaly = History.View.observe view (List.nth h 0) (* rev 1: replayed past *) in
  (match anomaly with
  | Some a -> Format.printf "@.observing an old event: %a@." History.View.pp_anomaly a
  | None -> Format.printf "@.no anomaly (unexpected)@.");

  (* Restarting and re-listing from a stale snapshot loses H' and moves
     the frontier backwards — the time-travel hazard. *)
  let stale_snapshot =
    History.Partial.state_of (History.Partial.apply_mask h ~mask:[ true; true ])
  in
  let view = History.View.reset_to_state view stale_snapshot in
  Format.printf "after a stale re-list the frontier is rev %d (was 5)@."
    (History.View.rev view);

  (* Epochs (Section 6.2): all-or-nothing delivery per granularity-g
     block of revisions. *)
  let delivered = ref [] in
  let batcher =
    History.Epoch.create ~granularity:2 ~deliver:(fun batch ->
        delivered :=
          !delivered
          @ [
              String.concat "+"
                (List.map
                   (fun (e : string History.Event.t) -> string_of_int e.History.Event.rev)
                   batch);
            ])
  in
  (* Offer out of order: 2, 1, 4, 3 — epochs {1,2} then {3,4} come out
     whole and in order. *)
  List.iter (fun i -> History.Epoch.offer batcher (List.nth h (i - 1))) [ 2; 1; 4; 3 ];
  Format.printf "@.epoch delivery (g=2), offered 2,1,4,3 -> batches: %s@."
    (String.concat "  " !delivered);
  Format.printf "delivered frontier: rev %d@." (History.Epoch.delivered_frontier batcher)
