(* Quickstart: boot a simulated Kubernetes-like cluster, run a workload,
   and inspect the ground truth and the components' cached views.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A cluster is one deterministic simulation: etcd, two apiservers
     (each with a watch-fed cache), three nodes with kubelets, the
     scheduler, the volume controller and the Cassandra operator. *)
  let cluster = Kube.Cluster.create () in

  (* Attach the safety oracle before starting: it mirrors every etcd
     commit and watches component state for the paper's bug patterns. *)
  let oracle = Sieve.Oracle.attach cluster in
  Kube.Cluster.start cluster;

  (* Workloads are data: time-stamped steps. This one creates three
     pods (the scheduler will bind them), then deletes them gracefully. *)
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:3 ~lifetime:2_000_000 ());

  (* And a Cassandra datacenter scaled to two members. *)
  Kube.Workload.schedule cluster
    (Kube.Workload.cassandra_scale ~dc:"demo" ~steps:[ (0, 2) ] ());

  (* Run 6 virtual seconds. Everything — latencies, retries, reconcile
     loops — happens in virtual time; this takes milliseconds of wall
     clock and is bit-for-bit reproducible. *)
  Kube.Cluster.run cluster ~until:6_000_000;

  (* Ground truth: the state S materialized from the history H at etcd. *)
  Format.printf "ground truth after 6 virtual seconds (rev %d):@."
    (Kube.Cluster.truth_rev cluster);
  List.iter
    (fun (key, (value, rev)) ->
      Format.printf "  %-22s @%-3d %a@." key rev Kube.Resource.pp value)
    (History.State.bindings (Kube.Cluster.truth cluster));

  (* Each kubelet's private execution state. *)
  Format.printf "@.kubelets:@.";
  List.iter
    (fun k ->
      Format.printf "  %s runs [%s]@." (Kube.Kubelet.name k)
        (String.concat ", " (Kube.Kubelet.running k)))
    (Kube.Cluster.kubelets cluster);

  (* Every component holds a *partial history* view (H', S'). In a calm
     cluster the views converge to the truth. *)
  Format.printf "@.view frontiers (truth at rev %d):@." (Kube.Cluster.truth_rev cluster);
  List.iter
    (fun api -> Format.printf "  %-10s rev %d@." (Kube.Apiserver.name api) (Kube.Apiserver.rev api))
    (Kube.Cluster.apiservers cluster);

  (* No faults were injected, so the oracle must be quiet. *)
  match Sieve.Oracle.violations oracle with
  | [] -> Format.printf "@.oracle: no safety violations (as expected)@."
  | violations ->
      List.iter
        (fun (t, v) ->
          Format.printf "@.oracle: VIOLATION at %dus: %s@." t (Sieve.Oracle.describe v))
        violations;
      exit 1
