(* Composing the substrates: an etcd-like store replicated by Raft.

   Each replica applies committed commands to its own MVCC store, so the
   group materializes one agreed history H. The example then shows the
   store-tier version of a partial history: a *follower* read can lag the
   leader (the reason etcd forwards linearizable reads through the
   leader), while committed history is never lost across failover.

   Run with: dune exec examples/replicated_store.exe *)

(* Commands are "put key value" strings applied to a per-replica KV. *)
let apply_command kv command =
  match String.split_on_char ' ' command with
  | [ "put"; key; value ] -> ignore (Etcdlike.Kv.put kv key value)
  | _ -> ()

let () =
  let engine = Dsim.Engine.create ~seed:3L () in
  let net = Dsim.Network.create engine in
  let names = [ "store-1"; "store-2"; "store-3" ] in
  let stores = List.map (fun name -> (name, Etcdlike.Kv.create ())) names in
  let nodes =
    List.map
      (fun (name, kv) ->
        let peers = List.filter (fun p -> not (String.equal p name)) names in
        Raftlite.Node.create ~net ~id:name ~peers
          ~on_apply:(fun ~index:_ ~command -> apply_command kv command)
          ())
      stores
  in
  List.iter Raftlite.Node.start nodes;
  Dsim.Engine.run ~until:1_000_000 engine;
  let leader = List.find Raftlite.Node.is_leader nodes in
  Format.printf "leader: %s (term %d)@." (Raftlite.Node.id leader) (Raftlite.Node.term leader);

  (* Write through the leader; commitment replicates to every store. *)
  List.iteri
    (fun i (key, value) ->
      ignore i;
      ignore (Raftlite.Node.propose leader (Printf.sprintf "put %s %s" key value));
      Dsim.Engine.run ~until:(Dsim.Engine.now engine + 200_000) engine)
    [ ("pods/a", "v1"); ("pods/b", "v1"); ("pods/a", "v2") ];

  List.iter
    (fun (name, kv) ->
      Format.printf "%s: rev %d, pods/a = %s@." name (Etcdlike.Kv.rev kv)
        (Option.value (Option.map fst (Etcdlike.Kv.get kv "pods/a")) ~default:"-"))
    stores;

  (* Store-tier partial history: slow one follower's link and read from
     it mid-replication. *)
  let follower =
    List.find (fun n -> not (Raftlite.Node.is_leader n)) nodes
  in
  let follower_kv = List.assoc (Raftlite.Node.id follower) stores in
  Dsim.Network.partition net (Raftlite.Node.id leader) (Raftlite.Node.id follower);
  ignore (Raftlite.Node.propose leader "put pods/c v1");
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 500_000) engine;
  Format.printf "@.while %s is cut off:@." (Raftlite.Node.id follower);
  Format.printf "  follower read of pods/c: %s (stale view)@."
    (Option.value (Option.map fst (Etcdlike.Kv.get follower_kv "pods/c")) ~default:"MISSING");
  let leader_kv = List.assoc (Raftlite.Node.id leader) stores in
  Format.printf "  leader read of pods/c:   %s@."
    (Option.value (Option.map fst (Etcdlike.Kv.get leader_kv "pods/c")) ~default:"MISSING");

  (* Heal; the follower catches up — same H everywhere. *)
  Dsim.Network.heal_all net;
  Dsim.Engine.run ~until:(Dsim.Engine.now engine + 1_000_000) engine;
  Format.printf "@.after healing:@.";
  List.iter
    (fun (name, kv) -> Format.printf "  %s: rev %d@." name (Etcdlike.Kv.rev kv))
    stores;
  Format.printf
    "@.Same lesson one tier down: a follower serves a partial history of the@.\
     leader's log, which is why linearizable reads go through the leader —@.\
     and why serving reads from caches (as apiservers do) reintroduces@.\
     exactly the staleness the store worked so hard to hide.@."
