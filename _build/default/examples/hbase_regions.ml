(* The model generalizes: the same staleness pattern on a second
   infrastructure (ZooKeeper-style ensemble + HBase-style master and
   region servers), reproducing the paper's own HBase examples.

   Run with: dune exec examples/hbase_regions.exe *)

let () =
  let engine = Dsim.Engine.create ~seed:13L () in
  let net = Dsim.Network.create engine in

  (* A ZooKeeper ensemble whose follower replica lags the leader by
     300 ms — the cached state of HBASE-3136. *)
  let zk = Hbaselike.Zk.create ~net ~replication_lag:300_000 () in

  (* The master CASes region transitions against state read from the
     follower. *)
  let master =
    Hbaselike.Master.create ~net ~name:"master-1" ~zk ~regions:[ "r1"; "r2"; "r3" ] ()
  in
  let region_servers =
    List.init 2 (fun i ->
        Hbaselike.Regionserver.create ~net ~name:(Printf.sprintf "rs-%d" (i + 1)) ~zk ())
  in
  Hbaselike.Master.start master;
  List.iter Hbaselike.Regionserver.start region_servers;
  Dsim.Engine.run ~until:6_000_000 engine;

  Format.printf "HBASE-3136 (CAS on cached ZooKeeper state, follower 300 ms stale):@.";
  Format.printf "  region transitions: %d succeeded, %d failed on stale reads@."
    (Hbaselike.Master.transitions master)
    (Hbaselike.Master.cas_failures master);
  Format.printf "  (the paper's §4.2.1 example: staleness fails atomic region changes)@.";

  (* HBASE-5755: fail the master over; the region server's cached master
     location goes stale forever. *)
  Dsim.Network.crash net "master-1";
  let master2 =
    Hbaselike.Master.create ~net ~name:"master-2" ~zk ~regions:[ "r1"; "r2"; "r3" ] ()
  in
  Hbaselike.Master.start master2;
  Dsim.Engine.run ~until:12_000_000 engine;

  Format.printf "@.HBASE-5755 (cached master location after failover):@.";
  List.iter
    (fun rs ->
      Format.printf "  %s believes the master is %s — %d consecutive heartbeat failures@."
        (Hbaselike.Regionserver.name rs)
        (Option.value (Hbaselike.Regionserver.cached_master rs) ~default:"?")
        (Hbaselike.Regionserver.consecutive_failures rs))
    region_servers;
  Format.printf
    "  'region server looking for master forever with cached stale data' [27]@.";

  (* Same scenario with the fix: re-lookup the master in ZooKeeper when
     heartbeats fail. *)
  let rs_fixed =
    Hbaselike.Regionserver.create ~net ~name:"rs-fixed" ~zk ~relookup_on_failure:true ()
  in
  Hbaselike.Regionserver.start rs_fixed;
  Dsim.Engine.run ~until:15_000_000 engine;
  Format.printf "@.with the re-lookup fix:@.";
  Format.printf "  %s believes the master is %s — %d consecutive failures@."
    (Hbaselike.Regionserver.name rs_fixed)
    (Option.value (Hbaselike.Regionserver.cached_master rs_fixed) ~default:"?")
    (Hbaselike.Regionserver.consecutive_failures rs_fixed)
