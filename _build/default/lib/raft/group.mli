(** Convenience wrapper: a whole Raft group on one engine, with the
    cross-replica views a test or experiment needs. *)

type t

val create :
  net:Dsim.Network.t ->
  n:int ->
  ?prefix:string ->
  ?heartbeat_period:int ->
  ?election_timeout_min:int ->
  ?election_timeout_max:int ->
  unit ->
  t
(** [n] replicas named [<prefix>-1 .. <prefix>-n] (default prefix
    ["raft"]), each applying committed commands into a per-replica
    list. *)

val start : t -> unit

val nodes : t -> Node.t list

val node : t -> string -> Node.t option

val names : t -> string list

val leaders : t -> Node.t list
(** Nodes currently believing they are leader (possibly several across
    different terms during churn; at most one per term). *)

val leader : t -> Node.t option
(** The highest-term believer, if any. *)

val propose_via_leader : t -> string -> bool
(** Proposes on the current highest-term leader; [false] when none. *)

val applied : t -> string -> string list
(** Commands the named replica has applied, in order. *)

val committed_prefix : t -> string list
(** The longest applied prefix common to all replicas — with the log
    matching property this is simply the shortest applied log. Raises if
    replicas disagree on a shared index (a safety violation worth
    crashing a test over). *)
