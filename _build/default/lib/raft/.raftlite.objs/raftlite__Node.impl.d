lib/raft/node.ml: Array Dsim Hashtbl List Option Printf
