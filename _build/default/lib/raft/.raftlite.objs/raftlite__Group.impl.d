lib/raft/group.ml: Hashtbl List Node Printf String
