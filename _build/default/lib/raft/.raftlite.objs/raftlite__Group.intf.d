lib/raft/group.mli: Dsim Node
