lib/raft/raftlite.ml: Group Node
