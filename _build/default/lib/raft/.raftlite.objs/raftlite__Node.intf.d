lib/raft/node.mli: Dsim
