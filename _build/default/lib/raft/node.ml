type entry = { term : int; command : string option }

type role = Follower | Candidate | Leader

let role_to_string = function
  | Follower -> "follower"
  | Candidate -> "candidate"
  | Leader -> "leader"

type Dsim.Network.request +=
  | Request_vote of {
      term : int;
      candidate : string;
      last_log_index : int;
      last_log_term : int;
    }
  | Append_entries of {
      term : int;
      leader : string;
      prev_log_index : int;
      prev_log_term : int;
      entries : entry list;
      leader_commit : int;
    }

type Dsim.Network.response +=
  | Vote of { term : int; granted : bool }
  | Append_reply of { term : int; success : bool; match_index : int }

type t = {
  id : string;
  peers : string list;
  net : Dsim.Network.t;
  rng : Dsim.Rng.t;
  heartbeat_period : int;
  election_timeout_min : int;
  election_timeout_max : int;
  on_apply : index:int -> command:string -> unit;
  (* Persistent state: survives crashes (stable storage). *)
  mutable current_term : int;
  mutable voted_for : string option;
  mutable log : entry array;  (* log.(i) is entry at index i+1 *)
  (* Volatile state. *)
  mutable role : role;
  mutable commit_index : int;
  mutable last_applied : int;
  mutable leader_hint : string option;
  mutable election_deadline : int;
  mutable votes : string list;
  next_index : (string, int) Hashtbl.t;
  match_index : (string, int) Hashtbl.t;
}

let id t = t.id

let role t = t.role

let term t = t.current_term

let is_leader t = t.role = Leader

let leader_hint t = t.leader_hint

let log_length t = Array.length t.log

let commit_index t = t.commit_index

let last_applied t = t.last_applied

let log_entries t = Array.to_list t.log

let engine t = Dsim.Network.engine t.net

let now t = Dsim.Engine.now (engine t)

let quorum t = ((List.length t.peers + 1) / 2) + 1

let last_log_index t = Array.length t.log

let last_log_term t = if Array.length t.log = 0 then 0 else t.log.(Array.length t.log - 1).term

let term_at t index = if index = 0 then 0 else t.log.(index - 1).term

let record t detail =
  Dsim.Engine.record (engine t) ~actor:t.id ~kind:"raft" detail

let reset_election_deadline t =
  let spread = max 1 (t.election_timeout_max - t.election_timeout_min + 1) in
  t.election_deadline <- now t + t.election_timeout_min + Dsim.Rng.int t.rng spread

let become_follower t new_term =
  if new_term > t.current_term then begin
    t.current_term <- new_term;
    t.voted_for <- None
  end;
  if t.role <> Follower then record t (Printf.sprintf "-> follower (term %d)" t.current_term);
  t.role <- Follower;
  t.votes <- [];
  reset_election_deadline t

(* Deliver newly committed entries to the state machine, in order.
   Election no-ops are internal and skipped. *)
let apply_committed t =
  while t.last_applied < t.commit_index do
    t.last_applied <- t.last_applied + 1;
    match t.log.(t.last_applied - 1).command with
    | Some command -> t.on_apply ~index:t.last_applied ~command
    | None -> ()
  done

(* Leader: advance the commit index to the highest N replicated on a
   quorum with log[N].term = currentTerm (Raft's commitment rule). *)
let advance_commit t =
  if t.role = Leader then begin
    let candidates = ref [] in
    for n = t.commit_index + 1 to last_log_index t do
      if term_at t n = t.current_term then begin
        let replicas =
          1
          + List.length
              (List.filter
                 (fun peer -> Option.value (Hashtbl.find_opt t.match_index peer) ~default:0 >= n)
                 t.peers)
        in
        if replicas >= quorum t then candidates := n :: !candidates
      end
    done;
    match !candidates with
    | [] -> ()
    | ns ->
        t.commit_index <- List.fold_left max t.commit_index ns;
        apply_committed t
  end

let entries_from t index =
  if index > Array.length t.log then []
  else Array.to_list (Array.sub t.log (index - 1) (Array.length t.log - index + 1))

let send_append t peer =
  let next = Option.value (Hashtbl.find_opt t.next_index peer) ~default:1 in
  let prev_log_index = next - 1 in
  let request =
    Append_entries
      {
        term = t.current_term;
        leader = t.id;
        prev_log_index;
        prev_log_term = term_at t prev_log_index;
        entries = entries_from t next;
        leader_commit = t.commit_index;
      }
  in
  let sent_up_to = last_log_index t in
  let request_term = t.current_term in
  Dsim.Network.call t.net ~src:t.id ~dst:peer ~timeout:(t.heartbeat_period * 2) request
    (function
    | Ok (Append_reply reply) when t.role = Leader && t.current_term = request_term ->
        if reply.term > t.current_term then become_follower t reply.term
        else if reply.success then begin
          Hashtbl.replace t.match_index peer (max reply.match_index sent_up_to);
          Hashtbl.replace t.next_index peer (sent_up_to + 1);
          advance_commit t
        end
        else begin
          (* Log inconsistency: back off and retry on the next beat. *)
          let next = Option.value (Hashtbl.find_opt t.next_index peer) ~default:1 in
          Hashtbl.replace t.next_index peer (max 1 (next - 1))
        end
    | _ -> ())

let broadcast_appends t = List.iter (send_append t) t.peers

let become_leader t =
  t.role <- Leader;
  t.leader_hint <- Some t.id;
  record t (Printf.sprintf "-> LEADER (term %d, log %d)" t.current_term (last_log_index t));
  List.iter
    (fun peer ->
      Hashtbl.replace t.next_index peer (last_log_index t + 1);
      Hashtbl.replace t.match_index peer 0)
    t.peers;
  (* The no-op of Raft §8: a leader can only advance the commit index
     through an entry of its own term, so commit one immediately —
     otherwise predecessors' entries can stay uncommitted at the new
     leader forever on a quiet cluster. *)
  t.log <- Array.append t.log [| { term = t.current_term; command = None } |];
  broadcast_appends t;
  advance_commit t

let start_election t =
  t.current_term <- t.current_term + 1;
  t.role <- Candidate;
  t.voted_for <- Some t.id;
  t.votes <- [ t.id ];
  reset_election_deadline t;
  record t (Printf.sprintf "election (term %d)" t.current_term);
  if List.length t.votes >= quorum t then become_leader t;
  let election_term = t.current_term in
  let request =
    Request_vote
      {
        term = election_term;
        candidate = t.id;
        last_log_index = last_log_index t;
        last_log_term = last_log_term t;
      }
  in
  List.iter
    (fun peer ->
      Dsim.Network.call t.net ~src:t.id ~dst:peer ~timeout:t.election_timeout_min request
        (function
        | Ok (Vote vote) when t.role = Candidate && t.current_term = election_term ->
            if vote.term > t.current_term then become_follower t vote.term
            else if vote.granted && not (List.mem peer t.votes) then begin
              t.votes <- peer :: t.votes;
              if List.length t.votes >= quorum t then become_leader t
            end
        | _ -> ()))
    t.peers

(* A candidate's log is at least as up to date as ours when its last
   entry wins the (term, index) lexicographic comparison. *)
let candidate_log_ok t ~last_log_index:their_index ~last_log_term:their_term =
  their_term > last_log_term t
  || (their_term = last_log_term t && their_index >= last_log_index t)

let handle_request_vote t ~term ~candidate ~last_log_index ~last_log_term reply =
  if term > t.current_term then become_follower t term;
  let granted =
    term = t.current_term
    && (t.voted_for = None || t.voted_for = Some candidate)
    && candidate_log_ok t ~last_log_index ~last_log_term
  in
  if granted then begin
    t.voted_for <- Some candidate;
    reset_election_deadline t
  end;
  reply (Vote { term = t.current_term; granted })

let truncate_and_append t ~prev_log_index entries =
  List.iteri
    (fun offset (entry : entry) ->
      let index = prev_log_index + 1 + offset in
      if index <= Array.length t.log then begin
        if t.log.(index - 1).term <> entry.term then begin
          (* Conflict: drop the entry and everything after it. *)
          t.log <- Array.sub t.log 0 (index - 1);
          t.log <- Array.append t.log [| entry |]
        end
      end
      else t.log <- Array.append t.log [| entry |])
    entries

let handle_append_entries t ~term ~leader ~prev_log_index ~prev_log_term ~entries ~leader_commit
    reply =
  if term < t.current_term then
    reply (Append_reply { term = t.current_term; success = false; match_index = 0 })
  else begin
    become_follower t term;
    t.leader_hint <- Some leader;
    let log_ok =
      prev_log_index = 0
      || (prev_log_index <= Array.length t.log && term_at t prev_log_index = prev_log_term)
    in
    if not log_ok then
      reply (Append_reply { term = t.current_term; success = false; match_index = 0 })
    else begin
      truncate_and_append t ~prev_log_index entries;
      let match_index = prev_log_index + List.length entries in
      if leader_commit > t.commit_index then begin
        t.commit_index <- min leader_commit (last_log_index t);
        apply_committed t
      end;
      reply (Append_reply { term = t.current_term; success = true; match_index })
    end
  end

let serve t ~src:_ request reply =
  match request with
  | Request_vote { term; candidate; last_log_index; last_log_term } ->
      handle_request_vote t ~term ~candidate ~last_log_index ~last_log_term reply
  | Append_entries { term; leader; prev_log_index; prev_log_term; entries; leader_commit } ->
      handle_append_entries t ~term ~leader ~prev_log_index ~prev_log_term ~entries
        ~leader_commit reply
  | _ -> ()

let propose t command =
  if t.role <> Leader then false
  else begin
    t.log <- Array.append t.log [| { term = t.current_term; command = Some command } |];
    broadcast_appends t;
    (* Single-node groups commit immediately. *)
    advance_commit t;
    true
  end

let create ~net ~id ~peers ?(heartbeat_period = 50_000) ?(election_timeout_min = 150_000)
    ?(election_timeout_max = 300_000) ?(on_apply = fun ~index:_ ~command:_ -> ()) () =
  let engine = Dsim.Network.engine net in
  {
    id;
    peers;
    net;
    rng = Dsim.Rng.split (Dsim.Engine.rng engine);
    heartbeat_period;
    election_timeout_min;
    election_timeout_max;
    on_apply;
    current_term = 0;
    voted_for = None;
    log = [||];
    role = Follower;
    commit_index = 0;
    last_applied = 0;
    leader_hint = None;
    election_deadline = 0;
    votes = [];
    next_index = Hashtbl.create 8;
    match_index = Hashtbl.create 8;
  }

let start t =
  Dsim.Network.register t.net t.id ~serve:(serve t) ();
  Dsim.Network.set_lifecycle t.net t.id
    ~on_crash:(fun () ->
      (* Stable storage keeps term/vote/log; leadership and progress
         trackers are volatile. The applied index also survives: the state
         machine is persisted alongside the log in this model. *)
      t.role <- Follower;
      t.votes <- [];
      t.leader_hint <- None)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.id ~serve:(serve t) ();
      reset_election_deadline t);
  reset_election_deadline t;
  (* One driving timer: leaders beat, others watch for election timeout. *)
  Dsim.Engine.every (engine t) ~period:t.heartbeat_period (fun () ->
      if Dsim.Network.is_up t.net t.id then begin
        match t.role with
        | Leader -> broadcast_appends t
        | Follower | Candidate -> if now t >= t.election_deadline then start_election t
      end;
      true)
