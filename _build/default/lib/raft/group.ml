type t = {
  nodes : Node.t list;
  applied : (string, string list ref) Hashtbl.t;  (* id -> applied commands, newest first *)
}

let create ~net ~n ?(prefix = "raft") ?heartbeat_period ?election_timeout_min
    ?election_timeout_max () =
  let names = List.init n (fun i -> Printf.sprintf "%s-%d" prefix (i + 1)) in
  let applied = Hashtbl.create 8 in
  let nodes =
    List.map
      (fun id ->
        let log = ref [] in
        Hashtbl.replace applied id log;
        let peers = List.filter (fun p -> not (String.equal p id)) names in
        Node.create ~net ~id ~peers ?heartbeat_period ?election_timeout_min
          ?election_timeout_max
          ~on_apply:(fun ~index:_ ~command -> log := command :: !log)
          ())
      names
  in
  { nodes; applied }

let start t = List.iter Node.start t.nodes

let nodes t = t.nodes

let names t = List.map Node.id t.nodes

let node t id = List.find_opt (fun n -> String.equal (Node.id n) id) t.nodes

let leaders t = List.filter Node.is_leader t.nodes

let leader t =
  leaders t
  |> List.fold_left
       (fun acc n ->
         match acc with
         | Some best when Node.term best >= Node.term n -> acc
         | _ -> Some n)
       None

let propose_via_leader t command =
  match leader t with Some n -> Node.propose n command | None -> false

let applied t id =
  match Hashtbl.find_opt t.applied id with Some log -> List.rev !log | None -> []

let committed_prefix t =
  let logs = List.map (fun n -> applied t (Node.id n)) t.nodes in
  match logs with
  | [] -> []
  | first :: rest ->
      let shortest =
        List.fold_left (fun acc l -> if List.length l < List.length acc then l else acc) first rest
      in
      List.iteri
        (fun i command ->
          List.iter
            (fun l ->
              if List.length l > i && not (String.equal (List.nth l i) command) then
                invalid_arg
                  (Printf.sprintf "Raft safety violated: replicas disagree at index %d" (i + 1)))
            logs)
        shortest;
      shortest
