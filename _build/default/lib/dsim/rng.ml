type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer (Steele, Lea, Flood; JDK SplittableRandom). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (int64 t) mask) in
  v mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  let unit = Int64.to_float bits /. 9007199254740992.0 in
  unit *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u
