(** Fault plans: deterministic, replayable schedules of crashes, restarts
    and partitions.

    A plan is data, not behaviour, so the random-fault baseline and the
    Sieve strategies both reduce to "generate a plan, apply it, run" and a
    failing plan can be printed, stored and replayed verbatim. *)

type action =
  | Crash of Network.address
  | Restart of Network.address
  | Partition of Network.address * Network.address
  | Heal of Network.address * Network.address
  | Heal_all

val pp_action : Format.formatter -> action -> unit

type plan = (int * action) list
(** Absolute virtual time paired with the action to perform then. *)

val pp_plan : Format.formatter -> plan -> unit

val apply : Network.t -> plan -> unit
(** Schedules every action of the plan on the network's engine. *)

val random_plan :
  Rng.t ->
  nodes:Network.address list ->
  horizon:int ->
  ?crashes:int ->
  ?partitions:int ->
  ?min_downtime:int ->
  ?max_downtime:int ->
  unit ->
  plan
(** Jepsen-style random plan: [crashes] crash/restart pairs and
    [partitions] partition/heal pairs at uniform times within the
    horizon, with downtimes uniform in the given range. Sorted by time. *)
