type t = {
  counts : (string, int ref) Hashtbl.t;
  histograms : (string, float list ref) Hashtbl.t;
}

let create () = { counts = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counts name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counts name r;
      r

let incr t name = Stdlib.incr (counter t name)

let add t name n =
  let r = counter t name in
  r := !r + n

let count t name = match Hashtbl.find_opt t.counts name with Some r -> !r | None -> 0

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.histograms name r;
      r

let observe t name sample =
  let r = histogram t name in
  r := sample :: !r

let samples t name =
  match Hashtbl.find_opt t.histograms name with Some r -> List.length !r | None -> 0

let mean t name =
  match Hashtbl.find_opt t.histograms name with
  | None | Some { contents = [] } -> 0.0
  | Some r ->
      let sum = List.fold_left ( +. ) 0.0 !r in
      sum /. float_of_int (List.length !r)

let percentile t name p =
  match Hashtbl.find_opt t.histograms name with
  | None | Some { contents = [] } -> 0.0
  | Some r ->
      let sorted = List.sort compare !r in
      let n = List.length sorted in
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      let index = min (n - 1) (max 0 (rank - 1)) in
      List.nth sorted index

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.histograms

let pp ppf t =
  List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %d@." name v) (counters t)
