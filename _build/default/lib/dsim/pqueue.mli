(** Minimum priority queue used as the simulator's event heap.

    Keys are [(time, seq)] pairs compared lexicographically; the sequence
    number makes the pop order total and therefore the whole simulation
    deterministic even when many events share a timestamp. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit

val pop : 'a t -> (int * int * 'a) option
(** Removes and returns the minimum [(time, seq, value)]. *)

val peek : 'a t -> (int * int * 'a) option

val clear : 'a t -> unit
