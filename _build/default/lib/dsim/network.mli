(** Message-passing network between simulated nodes.

    Nodes are identified by string addresses. The network models request /
    response RPC with latency, one-way casts (used for watch-event
    streams), symmetric partitions, node crashes and restarts. Crashing a
    node bumps its incarnation number so that in-flight replies addressed
    to the previous incarnation are dropped rather than delivered into the
    restarted process — exactly the asymmetry that lets a restarted
    component re-synchronize from a stale upstream. *)

type address = string

type request = ..
(** Extensible RPC request type; each subsystem adds its own cases. *)

type response = ..

type cast = ..
(** One-way notification payloads (watch events, heartbeats). *)

type error =
  | Timeout  (** no reply within the deadline *)
  | Unreachable  (** destination address was never registered *)

type latency_model =
  | Uniform of { min : int; max : int }
  | Exponential of { mean : float; floor : int }
      (** heavy-tailed delays: [floor + Exp(mean)] microseconds *)

val pp_error : Format.formatter -> error -> unit

type t

val create :
  ?min_latency:int -> ?max_latency:int -> Engine.t -> t
(** One-way message latency is uniform in [\[min_latency, max_latency\]]
    microseconds (defaults 500–2000). *)

val engine : t -> Engine.t

val register :
  t ->
  address ->
  serve:(src:address -> request -> (response -> unit) -> unit) ->
  ?on_cast:(src:address -> cast -> unit) ->
  unit ->
  unit
(** Installs (or replaces, after a restart) the node's handlers. [serve]
    receives a reply continuation which may be invoked asynchronously. *)

val set_lifecycle :
  t -> address -> on_crash:(unit -> unit) -> on_restart:(unit -> unit) -> unit
(** Hooks invoked by {!crash} and {!restart}; components reset volatile
    state in [on_crash] and rebuild caches in [on_restart]. *)

val is_up : t -> address -> bool

val incarnation : t -> address -> int

val crash : t -> address -> unit
(** Marks the node down, bumps its incarnation and runs its [on_crash]
    hook. Messages to or from a down node are dropped at delivery time. *)

val restart : t -> address -> unit
(** Marks the node up again and runs its [on_restart] hook. *)

val partition : t -> address -> address -> unit
(** Cuts the (symmetric) link between two addresses. *)

val heal : t -> address -> address -> unit

val heal_all : t -> unit

val partitioned : t -> address -> address -> bool

val call :
  t ->
  src:address ->
  dst:address ->
  ?timeout:int ->
  request ->
  ((response, error) result -> unit) ->
  unit
(** Asynchronous RPC. The continuation runs exactly once, with [Error
    Timeout] if the request or reply is lost to a partition or crash.
    Default timeout: 1 second of virtual time. *)

val cast : t -> src:address -> dst:address -> cast -> unit
(** Fire-and-forget delivery after one latency sample; silently dropped if
    the link is partitioned or the destination is down at delivery time. *)

val addresses : t -> address list
(** All registered addresses, sorted. *)

val sample_latency : t -> int
(** One latency draw from the network's distribution — for layers (like
    watch-stream pipes) that model their own FIFO delivery on top. *)

val set_latency_model : t -> latency_model -> unit
(** Replaces the delay distribution for all future messages (existing
    in-flight deliveries keep their sampled times). *)
