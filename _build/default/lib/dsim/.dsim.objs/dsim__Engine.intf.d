lib/dsim/engine.mli: Rng Trace
