lib/dsim/trace.ml: Format List String
