lib/dsim/pqueue.ml: Array
