lib/dsim/engine.ml: Pqueue Rng Trace
