lib/dsim/dsim.ml: Engine Fault Metrics Network Pqueue Rng Trace
