lib/dsim/rng.mli:
