lib/dsim/network.mli: Engine Format
