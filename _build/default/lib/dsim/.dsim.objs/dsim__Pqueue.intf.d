lib/dsim/pqueue.mli:
