lib/dsim/fault.ml: Array Engine Format List Network Rng String
