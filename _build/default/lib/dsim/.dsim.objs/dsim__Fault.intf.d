lib/dsim/fault.mli: Format Network Rng
