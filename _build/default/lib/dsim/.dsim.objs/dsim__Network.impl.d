lib/dsim/network.ml: Engine Format Hashtbl List Printf Rng String
