lib/dsim/trace.mli: Format
