(** Lightweight counters and latency histograms for the benchmark
    harness. *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val count : t -> string -> int

val observe : t -> string -> float -> unit
(** Records a sample into the named histogram. *)

val mean : t -> string -> float
(** 0.0 when the histogram is empty. *)

val percentile : t -> string -> float -> float
(** [percentile t name 0.99] is the nearest-rank p99; 0.0 when empty. *)

val samples : t -> string -> int

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
