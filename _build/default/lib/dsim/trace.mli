(** Simulation trace: a time-ordered log of everything observable.

    The trace serves three purposes: it is what the Sieve planner mines for
    perturbation points, it is the evidence printed when an oracle fires
    (the Figure-2-style walkthrough), and it is the reference execution a
    perturbed run is compared against. *)

type entry = {
  time : int;  (** virtual microseconds *)
  actor : string;  (** component that produced the event *)
  kind : string;  (** category, e.g. "watch.deliver", "crash", "read" *)
  detail : string;  (** human-readable payload *)
}

val pp_entry : Format.formatter -> entry -> unit

type t

val create : ?capacity:int -> unit -> t

val record : t -> time:int -> actor:string -> kind:string -> string -> unit

val entries : t -> entry list
(** All entries in chronological (recording) order. *)

val length : t -> int

val clear : t -> unit

val find_all : t -> kind:string -> entry list

val filter : t -> (entry -> bool) -> entry list

val pp : Format.formatter -> t -> unit
(** Prints the whole trace, one entry per line. *)
