(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows from a single seeded
    generator, so a whole campaign is replayable from its seed. [split]
    derives an independent stream, which lets concurrent components draw
    without perturbing each other's sequences. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val pick : t -> 'a array -> 'a
(** Uniform choice. Raises [Invalid_argument] on an empty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for
    arrival processes and latency tails. *)
