type action =
  | Crash of Network.address
  | Restart of Network.address
  | Partition of Network.address * Network.address
  | Heal of Network.address * Network.address
  | Heal_all

let pp_action ppf = function
  | Crash a -> Format.fprintf ppf "crash %s" a
  | Restart a -> Format.fprintf ppf "restart %s" a
  | Partition (a, b) -> Format.fprintf ppf "partition %s %s" a b
  | Heal (a, b) -> Format.fprintf ppf "heal %s %s" a b
  | Heal_all -> Format.pp_print_string ppf "heal-all"

type plan = (int * action) list

let pp_plan ppf plan =
  List.iter (fun (time, action) -> Format.fprintf ppf "@[%8d us: %a@]@." time pp_action action) plan

let run_action net = function
  | Crash a -> Network.crash net a
  | Restart a -> Network.restart net a
  | Partition (a, b) -> Network.partition net a b
  | Heal (a, b) -> Network.heal net a b
  | Heal_all -> Network.heal_all net

let apply net plan =
  let engine = Network.engine net in
  List.iter
    (fun (time, action) ->
      ignore (Engine.schedule_at engine ~time (fun () -> run_action net action)))
    plan

let random_plan rng ~nodes ~horizon ?(crashes = 1) ?(partitions = 1) ?(min_downtime = 50_000)
    ?(max_downtime = 500_000) () =
  let nodes = Array.of_list nodes in
  if Array.length nodes = 0 then []
  else begin
    let downtime () =
      if max_downtime <= min_downtime then min_downtime
      else min_downtime + Rng.int rng (max_downtime - min_downtime + 1)
    in
    let events = ref [] in
    for _ = 1 to crashes do
      let victim = Rng.pick rng nodes in
      let at = Rng.int rng (max 1 horizon) in
      events := (at, Crash victim) :: (at + downtime (), Restart victim) :: !events
    done;
    if Array.length nodes >= 2 then
      for _ = 1 to partitions do
        let a = Rng.pick rng nodes in
        let b = Rng.pick rng nodes in
        if not (String.equal a b) then begin
          let at = Rng.int rng (max 1 horizon) in
          events := (at, Partition (a, b)) :: (at + downtime (), Heal (a, b)) :: !events
        end
      done;
    List.sort (fun (t1, _) (t2, _) -> compare t1 t2) !events
  end
