type entry = { time : int; actor : string; kind : string; detail : string }

let pp_entry ppf e =
  Format.fprintf ppf "[%8d us] %-14s %-22s %s" e.time e.actor e.kind e.detail

type t = { mutable entries : entry list; mutable length : int }

let create ?capacity:_ () = { entries = []; length = 0 }

let record t ~time ~actor ~kind detail =
  t.entries <- { time; actor; kind; detail } :: t.entries;
  t.length <- t.length + 1

let entries t = List.rev t.entries

let length t = t.length

let clear t =
  t.entries <- [];
  t.length <- 0

let find_all t ~kind = List.filter (fun e -> String.equal e.kind kind) (entries t)

let filter t f = List.filter f (entries t)

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
