(** Mini-transactions: etcd's compare-and-swap primitive.

    A transaction evaluates a conjunction of guards against the current
    store and atomically applies the success branch when they all hold,
    else the failure branch. This is the primitive HBase-3136's "atomic
    CAS on cached ZooKeeper state" boils down to, and what controllers
    use for optimistic-concurrency updates keyed on mod-revisions. *)

type 'v cmp =
  | Mod_rev_eq of string * int
      (** the key's mod-revision equals the given value; 0 means absent *)
  | Value_eq of string * 'v
  | Exists of string
  | Absent of string

type 'v op = Put of string * 'v | Delete of string

type 'v t = { guards : 'v cmp list; success : 'v op list; failure : 'v op list }

type 'v outcome = {
  succeeded : bool;
  events : 'v History.Event.t list;  (** events committed by the taken branch *)
  rev : int;  (** store revision after the transaction *)
}

val eval : 'v Kv.t -> 'v t -> 'v outcome
(** Guards and the chosen branch are evaluated with no interleaving —
    the store is single-threaded, so atomicity is structural. *)

val put_if_unchanged : key:string -> expected_mod_rev:int -> 'v -> 'v t
(** The classic optimistic update. *)

val create_if_absent : key:string -> 'v -> 'v t

val delete_if_unchanged : key:string -> expected_mod_rev:int -> 'v t
