type 'v cmp =
  | Mod_rev_eq of string * int
  | Value_eq of string * 'v
  | Exists of string
  | Absent of string

type 'v op = Put of string * 'v | Delete of string

type 'v t = { guards : 'v cmp list; success : 'v op list; failure : 'v op list }

type 'v outcome = { succeeded : bool; events : 'v History.Event.t list; rev : int }

let guard_holds kv = function
  | Mod_rev_eq (key, expected) ->
      let actual = match Kv.get kv key with Some (_, mod_rev) -> mod_rev | None -> 0 in
      actual = expected
  | Value_eq (key, expected) -> (
      match Kv.get kv key with Some (v, _) -> v = expected | None -> false)
  | Exists key -> Kv.get kv key <> None
  | Absent key -> Kv.get kv key = None

let run_op kv = function
  | Put (key, value) -> Some (Kv.put kv key value)
  | Delete key -> Kv.delete kv key

let eval kv t =
  let succeeded = List.for_all (guard_holds kv) t.guards in
  let branch = if succeeded then t.success else t.failure in
  let events = List.filter_map (run_op kv) branch in
  { succeeded; events; rev = Kv.rev kv }

let put_if_unchanged ~key ~expected_mod_rev value =
  { guards = [ Mod_rev_eq (key, expected_mod_rev) ]; success = [ Put (key, value) ]; failure = [] }

let create_if_absent ~key value =
  { guards = [ Absent key ]; success = [ Put (key, value) ]; failure = [] }

let delete_if_unchanged ~key ~expected_mod_rev =
  { guards = [ Mod_rev_eq (key, expected_mod_rev) ]; success = [ Delete key ]; failure = [] }
