(** Watch hub: revision-addressed event streams over the store.

    A watcher names a start revision and an optional key prefix; it first
    receives the retained backlog after that revision, then live events as
    they commit. Asking for a start revision older than the compaction
    frontier fails with [`Compacted] — the client has to fall back to a
    full list + re-watch, losing the intervening events (an observability
    gap by design, cf. Section 4.2.3 and the Kubernetes "efficient watch
    resumption" KEP). *)

type 'v t

val create : 'v Kv.t -> 'v t
(** Attaches to the store's commit stream. Create at most one hub per
    store. *)

type handle

val watch :
  'v t ->
  ?prefix:string ->
  start_rev:int ->
  deliver:('v History.Event.t -> unit) ->
  unit ->
  (handle, [ `Compacted of int ]) result
(** [start_rev] is the last revision the client has already seen; the
    stream begins at [start_rev + 1]. Backlog delivery happens inside
    this call, in revision order. *)

val cancel : 'v t -> handle -> unit

val active : 'v t -> int
(** Number of live watchers. *)

val fan_out : 'v t -> 'v History.Event.t -> unit
(** Pushes one event to every matching watcher — exposed for servers that
    replay events from their own cache rather than from store commits. *)
