type 'v t = {
  history : 'v History.Log.t;
  mutable listeners : ('v History.Event.t -> unit) list;  (* registration order *)
}

let create () = { history = History.Log.create (); listeners = [] }

let rev t = History.Log.rev t.history

let compacted_rev t = History.Log.compacted_rev t.history

let state t = History.Log.state t.history

let history t = t.history

let get t key = History.State.find (state t) key

let range t ~prefix =
  History.State.keys_with_prefix (state t) ~prefix
  |> List.filter_map (fun key ->
         match History.State.find (state t) key with
         | Some (v, mod_rev) -> Some (key, v, mod_rev)
         | None -> None)

let commit t ~key ~op value =
  let event = History.Log.append t.history ~key ~op value in
  List.iter (fun listener -> listener event) t.listeners;
  event

let put t key value =
  let op = if History.State.mem (state t) key then History.Event.Update else History.Event.Create in
  commit t ~key ~op (Some value)

let delete t key =
  if History.State.mem (state t) key then Some (commit t ~key ~op:History.Event.Delete None) else None

let since t ~rev = History.Log.since t.history ~rev

let compact t ~before = History.Log.compact t.history ~before

let compact_keep_last t n = History.Log.compact_keep_last t.history n

let on_commit t listener = t.listeners <- t.listeners @ [ listener ]
