(** Leases: TTL-scoped ownership of keys, as in etcd / Chubby.

    Time is supplied by the caller (the simulator's virtual clock), so the
    module stays pure with respect to real time. When a lease expires or
    is revoked, the keys attached to it are returned for the store to
    delete — that deletion is how session-scoped objects (locks, member
    registrations) vanish when their owner goes silent. *)

type id = int

type t

val create : unit -> t

val grant : t -> ttl:int -> now:int -> id
(** [ttl] in virtual microseconds. *)

val attach : t -> lease:id -> key:string -> unit
(** Unknown lease ids are ignored (the lease may have just expired). *)

val keys : t -> lease:id -> string list

val keepalive : t -> lease:id -> now:int -> bool
(** Refreshes the deadline; [false] if the lease no longer exists. *)

val revoke : t -> lease:id -> string list
(** Removes the lease; returns its keys (to delete). *)

val expire : t -> now:int -> (id * string list) list
(** Removes every lease whose deadline has passed and returns their
    attached keys. Call on a timer. *)

val ttl_remaining : t -> lease:id -> now:int -> int option

val active : t -> int
