lib/etcdlike/txn.mli: History Kv
