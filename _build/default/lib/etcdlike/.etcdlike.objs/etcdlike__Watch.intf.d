lib/etcdlike/watch.mli: History Kv
