lib/etcdlike/txn.ml: History Kv List
