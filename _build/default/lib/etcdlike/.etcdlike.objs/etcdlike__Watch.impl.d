lib/etcdlike/watch.ml: History Kv List String
