lib/etcdlike/lease.mli:
