lib/etcdlike/kv.ml: History List
