lib/etcdlike/lease.ml: Hashtbl List
