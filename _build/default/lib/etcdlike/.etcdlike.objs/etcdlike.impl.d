lib/etcdlike/etcdlike.ml: Kv Lease Txn Watch
