lib/etcdlike/kv.mli: History
