type id = int

type lease = { ttl : int; mutable deadline : int; mutable keys : string list }

type t = { mutable next_id : int; table : (id, lease) Hashtbl.t }

let create () = { next_id = 0; table = Hashtbl.create 16 }

let grant t ~ttl ~now =
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.table t.next_id { ttl; deadline = now + ttl; keys = [] };
  t.next_id

let attach t ~lease ~key =
  match Hashtbl.find_opt t.table lease with
  | Some l -> if not (List.mem key l.keys) then l.keys <- key :: l.keys
  | None -> ()

let keys t ~lease =
  match Hashtbl.find_opt t.table lease with Some l -> List.rev l.keys | None -> []

let keepalive t ~lease ~now =
  match Hashtbl.find_opt t.table lease with
  | Some l ->
      l.deadline <- now + l.ttl;
      true
  | None -> false

let revoke t ~lease =
  let keys = keys t ~lease in
  Hashtbl.remove t.table lease;
  keys

let expire t ~now =
  let expired =
    Hashtbl.fold (fun id l acc -> if l.deadline <= now then (id, List.rev l.keys) :: acc else acc)
      t.table []
  in
  List.iter (fun (id, _) -> Hashtbl.remove t.table id) expired;
  List.sort (fun (a, _) (b, _) -> compare a b) expired

let ttl_remaining t ~lease ~now =
  match Hashtbl.find_opt t.table lease with
  | Some l -> Some (max 0 (l.deadline - now))
  | None -> None

let active t = Hashtbl.length t.table
