(** The strongly-consistent store: the substrate holding [(H, S)].

    {!Kv} is an MVCC revisioned key-value store over {!History.Log};
    {!Txn} provides etcd-style guarded mini-transactions (the CAS
    primitive controllers build optimistic concurrency on); {!Watch}
    serves revision-addressed event streams with compaction windows;
    {!Lease} scopes keys to TTL-renewable sessions. *)

module Kv = Kv
module Txn = Txn
module Watch = Watch
module Lease = Lease
