lib/kube/resource.mli: Format
