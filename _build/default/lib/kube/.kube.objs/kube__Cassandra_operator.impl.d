lib/kube/cassandra_operator.ml: Client Dsim Etcdlike Hashtbl History Informer List Option Printf Resource String
