lib/kube/intercept.mli: Format History Resource
