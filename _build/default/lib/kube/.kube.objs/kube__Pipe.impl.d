lib/kube/pipe.ml: Dsim Format History Intercept Resource
