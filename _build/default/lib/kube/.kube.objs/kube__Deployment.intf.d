lib/kube/deployment.mli: Dsim Informer
