lib/kube/workload.mli: Cluster
