lib/kube/informer.mli: Dsim History Resource
