lib/kube/apiserver.mli: Dsim History Intercept Resource
