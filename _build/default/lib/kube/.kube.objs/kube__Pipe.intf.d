lib/kube/pipe.mli: Dsim History Intercept Resource
