lib/kube/etcd.ml: Dsim Etcdlike Hashtbl History Intercept List Messages Option Pipe Resource String
