lib/kube/volume_controller.ml: Client Dsim Etcdlike History Informer List Resource String
