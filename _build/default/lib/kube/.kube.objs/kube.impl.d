lib/kube/kube.ml: Apiserver Cassandra_operator Client Cluster Deployment Elector Etcd Informer Intercept Kubelet Messages Node_controller Pipe Replicaset Resource Scheduler Volume_controller Workload
