lib/kube/messages.ml: Dsim Etcdlike History List Pipe Resource
