lib/kube/scheduler.ml: Client Dsim Etcdlike Hashtbl History Informer List Option Printf Resource String
