lib/kube/etcd.mli: Dsim Etcdlike History Intercept Resource
