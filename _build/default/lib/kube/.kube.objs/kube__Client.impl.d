lib/kube/client.ml: Array Dsim Messages Option Result
