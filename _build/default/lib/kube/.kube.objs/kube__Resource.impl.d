lib/kube/resource.ml: Format Option Printf String
