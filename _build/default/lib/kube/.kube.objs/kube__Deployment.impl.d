lib/kube/deployment.ml: Client Dsim Hashtbl History Informer List Messages Option Printf Resource String
