lib/kube/apiserver.ml: Dsim Hashtbl History Intercept List Messages Pipe Printf Resource String
