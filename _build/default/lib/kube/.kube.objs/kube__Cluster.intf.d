lib/kube/cluster.mli: Apiserver Cassandra_operator Client Deployment Dsim Etcd History Intercept Kubelet Node_controller Replicaset Resource Scheduler Volume_controller
