lib/kube/elector.ml: Client Dsim Etcdlike List Option Resource
