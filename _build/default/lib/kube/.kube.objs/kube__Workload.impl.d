lib/kube/workload.ml: Client Cluster Dsim Etcdlike List Messages Printf Resource
