lib/kube/cluster.ml: Apiserver Cassandra_operator Client Deployment Dsim Etcd Etcdlike Intercept Kubelet List Node_controller Option Printf Replicaset Resource Scheduler String Volume_controller
