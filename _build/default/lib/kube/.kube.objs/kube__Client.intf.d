lib/kube/client.mli: Dsim Etcdlike Resource
