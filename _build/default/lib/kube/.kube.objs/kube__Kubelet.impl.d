lib/kube/kubelet.ml: Client Dsim Etcdlike Hashtbl History Informer List Resource String
