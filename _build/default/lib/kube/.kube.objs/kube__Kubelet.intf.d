lib/kube/kubelet.mli: Dsim Informer
