lib/kube/node_controller.mli: Dsim Informer
