lib/kube/messages.mli: Dsim Etcdlike History Pipe Resource
