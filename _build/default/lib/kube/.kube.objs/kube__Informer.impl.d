lib/kube/informer.ml: Array Dsim History List Messages Pipe Printf Resource
