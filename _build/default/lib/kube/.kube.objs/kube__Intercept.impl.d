lib/kube/intercept.ml: Format History Resource
