lib/kube/volume_controller.mli: Dsim Informer
