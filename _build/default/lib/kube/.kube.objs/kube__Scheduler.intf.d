lib/kube/scheduler.mli: Dsim Informer
