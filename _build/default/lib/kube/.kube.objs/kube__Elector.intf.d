lib/kube/elector.mli: Dsim
