lib/kube/node_controller.ml: Client Dsim Etcdlike Hashtbl History Informer List Option Printf Resource
