lib/kube/cassandra_operator.mli: Dsim Informer
