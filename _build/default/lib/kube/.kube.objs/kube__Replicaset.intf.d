lib/kube/replicaset.mli: Dsim Informer
