type pod_phase = Pending | Running | Succeeded | Failed

let pp_pod_phase ppf phase =
  Format.pp_print_string ppf
    (match phase with
    | Pending -> "Pending"
    | Running -> "Running"
    | Succeeded -> "Succeeded"
    | Failed -> "Failed")

type pod = {
  pod_name : string;
  node : string option;
  phase : pod_phase;
  deletion_timestamp : int option;
  pvc : string option;
  owner : string option;
  ordinal : int option;
}

type node = { node_name : string; ready : bool }

type pvc = { pvc_name : string; owner_pod : string option }

type cassdc = { dc_name : string; replicas : int }

type rset = { rs_name : string; rs_replicas : int }

type lock = { lock_name : string; holder : string }

type deployment = { dep_name : string; dep_replicas : int; template : int }

type value =
  | Pod of pod
  | Node of node
  | Pvc of pvc
  | Cassdc of cassdc
  | Rset of rset
  | Lock of lock
  | Deployment of deployment

let pp ppf = function
  | Pod p ->
      Format.fprintf ppf "pod{%s node=%s phase=%a%s%s}" p.pod_name
        (Option.value p.node ~default:"-")
        pp_pod_phase p.phase
        (match p.deletion_timestamp with Some ts -> Printf.sprintf " deleting@%d" ts | None -> "")
        (match p.pvc with Some c -> " pvc=" ^ c | None -> "")
  | Node n -> Format.fprintf ppf "node{%s %s}" n.node_name (if n.ready then "ready" else "not-ready")
  | Pvc c ->
      Format.fprintf ppf "pvc{%s owner=%s}" c.pvc_name (Option.value c.owner_pod ~default:"-")
  | Cassdc d -> Format.fprintf ppf "cassdc{%s replicas=%d}" d.dc_name d.replicas
  | Rset r -> Format.fprintf ppf "rset{%s replicas=%d}" r.rs_name r.rs_replicas
  | Lock l -> Format.fprintf ppf "lock{%s held by %s}" l.lock_name l.holder
  | Deployment d ->
      Format.fprintf ppf "deployment{%s replicas=%d template=g%d}" d.dep_name d.dep_replicas
        d.template

let to_string v = Format.asprintf "%a" pp v

let pods_prefix = "pods/"
let nodes_prefix = "nodes/"
let pvcs_prefix = "pvcs/"
let cassdcs_prefix = "cassdcs/"
let rsets_prefix = "rsets/"
let locks_prefix = "locks/"
let deployments_prefix = "deployments/"

let pod_key name = pods_prefix ^ name
let node_key name = nodes_prefix ^ name
let pvc_key name = pvcs_prefix ^ name
let cassdc_key name = cassdcs_prefix ^ name
let rset_key name = rsets_prefix ^ name
let lock_key name = locks_prefix ^ name
let deployment_key name = deployments_prefix ^ name

let kind_of_key key =
  let has_prefix p =
    String.length key >= String.length p && String.equal (String.sub key 0 (String.length p)) p
  in
  if has_prefix pods_prefix then `Pod
  else if has_prefix nodes_prefix then `Node
  else if has_prefix pvcs_prefix then `Pvc
  else if has_prefix cassdcs_prefix then `Cassdc
  else if has_prefix rsets_prefix then `Rset
  else if has_prefix locks_prefix then `Lock
  else if has_prefix deployments_prefix then `Deployment
  else `Other

let name_of_key key =
  match String.index_opt key '/' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let make_pod ?node ?(phase = Pending) ?deletion_timestamp ?pvc ?owner ?ordinal pod_name =
  Pod { pod_name; node; phase; deletion_timestamp; pvc; owner; ordinal }

let make_node ?(ready = true) node_name = Node { node_name; ready }

let make_pvc ?owner_pod pvc_name = Pvc { pvc_name; owner_pod }

let make_cassdc ~replicas dc_name = Cassdc { dc_name; replicas }

let make_rset ~replicas rs_name = Rset { rs_name; rs_replicas = replicas }

let make_lock ~holder lock_name = Lock { lock_name; holder }

let make_deployment ~replicas ~template dep_name =
  Deployment { dep_name; dep_replicas = replicas; template }

let as_pod = function
  | Pod p -> Some p
  | Node _ | Pvc _ | Cassdc _ | Rset _ | Lock _ | Deployment _ -> None

let as_node = function
  | Node n -> Some n
  | Pod _ | Pvc _ | Cassdc _ | Rset _ | Lock _ | Deployment _ -> None

let as_pvc = function
  | Pvc c -> Some c
  | Pod _ | Node _ | Cassdc _ | Rset _ | Lock _ | Deployment _ -> None

let as_cassdc = function
  | Cassdc d -> Some d
  | Pod _ | Node _ | Pvc _ | Rset _ | Lock _ | Deployment _ -> None

let as_rset = function
  | Rset r -> Some r
  | Pod _ | Node _ | Pvc _ | Cassdc _ | Lock _ | Deployment _ -> None

let as_lock = function
  | Lock l -> Some l
  | Pod _ | Node _ | Pvc _ | Cassdc _ | Rset _ | Deployment _ -> None

let as_deployment = function
  | Deployment d -> Some d
  | Pod _ | Node _ | Pvc _ | Cassdc _ | Rset _ | Lock _ -> None
