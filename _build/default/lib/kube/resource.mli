(** Typed cluster objects: the values stored in the etcd-like store.

    The object zoo is the minimum needed to express the paper's five bug
    case studies: pods (with bindings, phases and deletion timestamps),
    nodes, persistent volume claims, and Cassandra datacenters (the
    custom resource reconciled by the Cassandra operator). Keys follow
    the Kubernetes convention of ["<kind-plural>/<name>"]. *)

type pod_phase = Pending | Running | Succeeded | Failed

val pp_pod_phase : Format.formatter -> pod_phase -> unit

type pod = {
  pod_name : string;
  node : string option;  (** binding; [None] while unscheduled *)
  phase : pod_phase;
  deletion_timestamp : int option;
      (** virtual time at which the pod was marked for deletion *)
  pvc : string option;  (** claim this pod mounts *)
  owner : string option;  (** owning controller's object key *)
  ordinal : int option;  (** stable member index for statefulset-like sets *)
}

type node = { node_name : string; ready : bool }

type pvc = { pvc_name : string; owner_pod : string option }

type cassdc = { dc_name : string; replicas : int }
(** Desired member count; the operator reconciles actual members toward
    it. *)

type rset = { rs_name : string; rs_replicas : int }
(** A ReplicaSet-style workload object: keep [rs_replicas] anonymous,
    interchangeable pods alive. *)

type lock = { lock_name : string; holder : string }
(** A coordination object (leader-election record); the key is typically
    lease-attached so it vanishes when the holder goes silent. *)

type deployment = { dep_name : string; dep_replicas : int; template : int }
(** A Deployment-style rollout object: keep [dep_replicas] pods of
    template generation [template] alive, moving between generations with
    a surge-1 / unavailable-0 rolling update via owned ReplicaSets. *)

type value =
  | Pod of pod
  | Node of node
  | Pvc of pvc
  | Cassdc of cassdc
  | Rset of rset
  | Lock of lock
  | Deployment of deployment

val pp : Format.formatter -> value -> unit

val to_string : value -> string

(** {2 Keys} *)

val pod_key : string -> string
val node_key : string -> string
val pvc_key : string -> string
val cassdc_key : string -> string
val rset_key : string -> string
val lock_key : string -> string
val deployment_key : string -> string

val pods_prefix : string
val nodes_prefix : string
val pvcs_prefix : string
val cassdcs_prefix : string
val rsets_prefix : string
val locks_prefix : string
val deployments_prefix : string

val kind_of_key :
  string -> [ `Pod | `Node | `Pvc | `Cassdc | `Rset | `Lock | `Deployment | `Other ]

val name_of_key : string -> string
(** The part after the first ['/']; the key itself when there is none. *)

(** {2 Constructors and accessors} *)

val make_pod :
  ?node:string ->
  ?phase:pod_phase ->
  ?deletion_timestamp:int ->
  ?pvc:string ->
  ?owner:string ->
  ?ordinal:int ->
  string ->
  value

val make_node : ?ready:bool -> string -> value

val make_pvc : ?owner_pod:string -> string -> value

val make_cassdc : replicas:int -> string -> value

val make_rset : replicas:int -> string -> value

val make_lock : holder:string -> string -> value

val make_deployment : replicas:int -> template:int -> string -> value

val as_pod : value -> pod option
val as_node : value -> node option
val as_pvc : value -> pvc option
val as_cassdc : value -> cassdc option
val as_rset : value -> rset option
val as_lock : value -> lock option
val as_deployment : value -> deployment option
