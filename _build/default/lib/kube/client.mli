(** Write/read client used by components: forwards transactions and
    quorum reads to an apiserver, rotating endpoints on failure.

    Writes always reach etcd (apiservers forward them); only *reads* can
    be stale. The client retries a bounded number of times across
    endpoints before reporting the operation unavailable. *)

type t

type outcome = { succeeded : bool; rev : int }

val create :
  net:Dsim.Network.t ->
  owner:string ->
  endpoints:string list ->
  ?retries:int ->
  ?retry_delay:int ->
  unit ->
  t
(** Defaults: 4 retries, 200 ms between attempts. *)

val txn :
  ?lease:int ->
  t ->
  Resource.value Etcdlike.Txn.t ->
  ((outcome, [ `Unavailable ]) result -> unit) ->
  unit
(** Keys written by the success branch are attached to [lease] when
    given. *)

val txn_ : ?lease:int -> t -> Resource.value Etcdlike.Txn.t -> unit
(** Fire-and-forget transaction. *)

val get_quorum :
  t -> string -> (((Resource.value * int) option, [ `Unavailable ]) result -> unit) -> unit
(** Linearizable read, forwarded through an apiserver to etcd. *)

val current_endpoint : t -> string

val lease_grant : t -> ttl:int -> ((int, [ `Unavailable ]) result -> unit) -> unit

val lease_keepalive : t -> lease:int -> ((bool, [ `Unavailable ]) result -> unit) -> unit
(** [Ok false] when the lease no longer exists. *)

val lease_revoke : t -> lease:int -> unit

val list_quorum :
  t ->
  prefix:string ->
  (((string * Resource.value * int) list, [ `Unavailable ]) result -> unit) ->
  unit
(** Linearizable range read, forwarded through an apiserver to etcd. *)
