type t = {
  name : string;
  lock : string;
  net : Dsim.Network.t;
  client : Client.t;
  ttl : int;
  renew_period : int;
  on_elected : unit -> unit;
  on_lost : unit -> unit;
  mutable running : bool;
  mutable lease : int option;
  mutable deadline : int;  (* local belief expires here *)
  mutable believes : bool;
  mutable transitions : (int * bool) list;  (* newest first *)
}

let name t = t.name

let believes_leader t = t.believes

let transitions t = List.rev t.transitions

let engine t = Dsim.Network.engine t.net

let now t = Dsim.Engine.now (engine t)

let record t detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind:"elector" detail

let set_belief t value =
  if t.believes <> value then begin
    t.believes <- value;
    t.transitions <- (now t, value) :: t.transitions;
    record t (if value then "elected leader of " ^ t.lock else "lost leadership of " ^ t.lock);
    if value then t.on_elected () else t.on_lost ()
  end

let step_down t =
  t.lease <- None;
  set_belief t false

(* The belief deadline is anchored at the *send* time of the renewal that
   succeeded: the store's expiry clock starts no earlier than receipt, so
   local belief always dies first. *)
let renew t lease sent_at =
  Client.lease_keepalive t.client ~lease (function
    | Ok true when t.running && t.lease = Some lease ->
        t.deadline <- max t.deadline (sent_at + t.ttl)
    | Ok false when t.running && t.lease = Some lease -> step_down t
    | _ -> ())

let try_acquire t =
  let sent_at = now t in
  Client.lease_grant t.client ~ttl:t.ttl (function
    | Ok lease when t.running && not t.believes ->
        Client.txn ~lease t.client
          (Etcdlike.Txn.create_if_absent ~key:(Resource.lock_key t.lock)
             (Resource.make_lock ~holder:t.name t.lock))
          (function
          | Ok { Client.succeeded = true; _ } when t.running ->
              t.lease <- Some lease;
              t.deadline <- sent_at + t.ttl;
              set_belief t true
          | _ ->
              (* Someone else holds it; return the unused lease. *)
              Client.lease_revoke t.client ~lease)
    | _ -> ())

let tick t =
  if t.running && Dsim.Network.is_up t.net t.name then begin
    match t.lease with
    | Some lease when t.believes ->
        if now t > t.deadline then step_down t else renew t lease (now t)
    | _ -> if not t.believes then try_acquire t
  end

let create ~net ~name ~lock ~endpoints ?(ttl = 2_000_000) ?renew_period
    ?(on_elected = fun () -> ()) ?(on_lost = fun () -> ()) () =
  {
    name;
    lock;
    net;
    client = Client.create ~net ~owner:name ~endpoints ();
    ttl;
    renew_period = Option.value renew_period ~default:(ttl / 4);
    on_elected;
    on_lost;
    running = false;
    lease = None;
    deadline = 0;
    believes = false;
    transitions = [];
  }

let start t =
  if not t.running then begin
    t.running <- true;
    Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
    Dsim.Network.set_lifecycle t.net t.name
      ~on_crash:(fun () -> step_down t)
      ~on_restart:(fun () ->
        Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ());
    Dsim.Engine.every (engine t) ~period:t.renew_period (fun () ->
        tick t;
        t.running)
  end

let stop t =
  t.running <- false;
  (match t.lease with Some lease -> Client.lease_revoke t.client ~lease | None -> ());
  step_down t
