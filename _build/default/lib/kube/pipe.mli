(** FIFO watch-stream channel between an upstream cache and a subscriber.

    Unlike {!Dsim.Network.cast}, deliveries on a pipe never reorder: each
    item becomes deliverable no earlier than the item before it, which is
    the TCP-stream property real watch connections have. The pipe is also
    where the Sieve interceptor sits: every event is submitted to the
    interceptor at send time and can be passed, dropped (the stream stays
    healthy — the subscriber cannot tell an event existed), or delayed
    (pushing back this event and, by FIFO, everything behind it).

    Items blocked by a partition or a down/restarted subscriber at
    delivery time are silently lost; subscribers detect dead streams via
    the periodic {!Bookmark} heartbeats and re-list. *)

type item =
  | Event of Resource.value History.Event.t
  | Bookmark of int
      (** progress notification carrying the upstream's current revision;
          never subject to interception decisions *)
  | Seal of { upto_rev : int; sent : int }
      (** end-of-epoch integrity marker (the Section 6.2 programming
          model): the upstream has sent exactly [sent] matching events on
          this stream since the previous seal, covering revisions up to
          [upto_rev]. Like bookmarks, seals are transport metadata and
          bypass interception — which is the point: a dropped event makes
          the next seal's count disagree with what arrived. *)

type t

val create :
  net:Dsim.Network.t ->
  intercept:Intercept.t ->
  edge:Intercept.edge ->
  deliver:(item -> unit) ->
  unit ->
  t
(** [deliver] runs in the subscriber at delivery time. The pipe captures
    the subscriber's incarnation at creation: if the subscriber restarts,
    remaining deliveries are dropped (the new incarnation must
    re-subscribe, obtaining a fresh pipe). *)

val edge : t -> Intercept.edge

val send : t -> item -> unit
(** Enqueues one item, consulting the interceptor for events. *)

val close : t -> unit
(** Stops all future deliveries. *)

val is_closed : t -> bool
(** True after {!close} or after a delivery was blocked by a partition,
    crash or subscriber restart — any blocked delivery breaks the whole
    stream, as a TCP reset would. *)

val in_flight : t -> int
(** Items sent but not yet delivered or dropped. *)
