(** RPC vocabulary of the control plane.

    Extends the network's open request/response types with the etcd API
    (ranges, transactions, watches) and the apiserver API (lists and gets
    that may be served from the apiserver's cache, forwarded transactions,
    and cache-fed watches). Watch requests carry the subscriber's delivery
    closure; the resulting stream is a {!Pipe} so delivery stays FIFO and
    interceptable. *)

type watch_request = {
  prefix : string option;
  start_rev : int;  (** last revision the subscriber has already seen *)
  subscriber : string;  (** subscriber's network address *)
  stream_id : string;
      (** unique per (subscriber, watched prefix); servers key
          subscriptions by it so one component can hold several watches *)
  deliver : Pipe.item -> unit;
}

type Dsim.Network.request +=
  | Etcd_range of { prefix : string }
  | Etcd_get of { key : string }
  | Etcd_txn of { txn : Resource.value Etcdlike.Txn.t; origin : string; lease : int option }
        (** [origin] is the component that initiated the write (carried
            through apiserver forwarding) — the causality planner's raw
            material. Keys written by the success branch are attached to
            [lease] when given: they vanish when it expires. *)
  | Etcd_lease_grant of { ttl : int }
  | Etcd_lease_keepalive of { lease : int }
  | Etcd_lease_revoke of { lease : int }
  | Etcd_watch of watch_request
  | Api_list of { prefix : string; quorum : bool }
        (** [quorum = false] is served from the apiserver's cache — the
            scalable, possibly stale read path every component uses *)
  | Api_get of { key : string; quorum : bool }
  | Api_txn of { txn : Resource.value Etcdlike.Txn.t; origin : string; lease : int option }
  | Api_lease_grant of { ttl : int }
  | Api_lease_keepalive of { lease : int }
  | Api_lease_revoke of { lease : int }
  | Api_watch of watch_request

type Dsim.Network.response +=
  | Items of { items : (string * Resource.value * int) list; rev : int }
        (** key, value, mod-revision; [rev] is the serving view's revision *)
  | Value of { value : (Resource.value * int) option; rev : int }
  | Txn_result of { succeeded : bool; rev : int }
  | Watch_ok of { rev : int }
  | Watch_compacted of { compacted_rev : int }
        (** requested start revision precedes the server's retained
            window; subscriber must re-list *)
  | Lease_granted of { lease : int }
  | Lease_ok
  | Lease_gone  (** keepalive/attach on an expired or unknown lease *)
  | Backend_unavailable
        (** the apiserver could not reach etcd to serve the request *)

(** {2 Transaction shorthands} *)

val put : string -> Resource.value -> Resource.value Etcdlike.Txn.t
(** Unconditional write. *)

val delete : string -> Resource.value Etcdlike.Txn.t

val items_to_state :
  (string * Resource.value * int) list -> Resource.value History.State.t
(** Rebuilds a materialized state from a list response (used by caches
    after a re-list). The state's revision is the max mod-revision of the
    items; callers should track the response's [rev] separately. *)
