(** Lease-based leader election, as controllers use the coordination API
    for active/standby replication.

    A candidate acquires leadership by writing a lock object guarded by
    [Absent] and attached to a store lease; it renews the lease
    periodically and *believes* it is leader until its conservative local
    deadline (last successful renewal + TTL) passes. When the holder goes
    silent, the store expires the lease, deletes the lock, and the next
    candidate's acquire succeeds.

    This is the trade the paper describes for leases (§4.1): dual
    leadership is prevented — the belief deadline is always at or before
    the store-side expiry, so beliefs never overlap — but failover is
    *blocked until the lease term expires*, and the elected leader's
    cached view of the world can still be arbitrarily stale. *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  lock:string ->
  endpoints:string list ->
  ?ttl:int ->
  ?renew_period:int ->
  ?on_elected:(unit -> unit) ->
  ?on_lost:(unit -> unit) ->
  unit ->
  t
(** [name] is the candidate's network address (used as the lock holder
    id and the client identity). Defaults: TTL 2 s, renewal every
    TTL/4. *)

val start : t -> unit

val stop : t -> unit
(** Graceful resignation: revokes the lease so the lock vanishes
    immediately and a standby can take over without waiting out the
    TTL. *)

val name : t -> string

val believes_leader : t -> bool
(** The candidate's local belief — the quantity that could, in a system
    without guards, act on the world. *)

val transitions : t -> (int * bool) list
(** (time, gained?) belief transitions, oldest first. *)
