type step = { at : int; label : string; action : Cluster.t -> unit }

type t = step list

let schedule cluster steps =
  let engine = Cluster.engine cluster in
  List.iter
    (fun step ->
      ignore
        (Dsim.Engine.schedule_at engine ~time:step.at (fun () ->
             Dsim.Engine.record engine ~actor:"workload" ~kind:"workload.step" step.label;
             step.action cluster)))
    steps

let labels steps = List.map (fun s -> (s.at, s.label)) steps

let create_pod ?pvc ?node cluster pod_name =
  let user = Cluster.user cluster in
  (match pvc with
  | Some pvc_name ->
      Client.txn_ user
        (Etcdlike.Txn.create_if_absent ~key:(Resource.pvc_key pvc_name)
           (Resource.make_pvc ~owner_pod:pod_name pvc_name))
  | None -> ());
  Client.txn_ user
    (Etcdlike.Txn.create_if_absent ~key:(Resource.pod_key pod_name)
       (Resource.make_pod ?node ?pvc pod_name))

let mark_pod_deleted cluster pod_name =
  let user = Cluster.user cluster in
  let key = Resource.pod_key pod_name in
  Client.get_quorum user key (function
    | Ok (Some (Resource.Pod p, mod_rev)) when p.Resource.deletion_timestamp = None ->
        let now = Dsim.Engine.now (Cluster.engine cluster) in
        Client.txn_ user
          (Etcdlike.Txn.put_if_unchanged ~key ~expected_mod_rev:mod_rev
             (Resource.Pod { p with Resource.deletion_timestamp = Some now }))
    | Ok _ | Error `Unavailable -> ())

let delete_pod_now cluster pod_name =
  Client.txn_ (Cluster.user cluster) (Messages.delete (Resource.pod_key pod_name))

let create_node cluster node_name =
  Client.txn_ (Cluster.user cluster)
    (Etcdlike.Txn.create_if_absent ~key:(Resource.node_key node_name)
       (Resource.make_node node_name))

let delete_node cluster node_name =
  Client.txn_ (Cluster.user cluster) (Messages.delete (Resource.node_key node_name))

let set_rset_replicas cluster rs_name replicas =
  Client.txn_ (Cluster.user cluster)
    (Messages.put (Resource.rset_key rs_name) (Resource.make_rset ~replicas rs_name))

let set_deployment cluster dep_name ~replicas ~template =
  Client.txn_ (Cluster.user cluster)
    (Messages.put
       (Resource.deployment_key dep_name)
       (Resource.make_deployment ~replicas ~template dep_name))

let set_cassdc_replicas cluster dc_name replicas =
  Client.txn_ (Cluster.user cluster)
    (Messages.put (Resource.cassdc_key dc_name) (Resource.make_cassdc ~replicas dc_name))

let step at label action = { at; label; action }

let pod_churn ?(start = 1_000_000) ?(spacing = 400_000) ?(lifetime = 3_000_000) ~n () =
  List.concat
    (List.init n (fun i ->
         let name = Printf.sprintf "churn-%d" i in
         let at = start + (i * spacing) in
         [
           step at ("create " ^ name) (fun c -> create_pod c name);
           step (at + lifetime) ("delete " ^ name) (fun c -> mark_pod_deleted c name);
         ]))

let pods_with_claims ?(start = 1_000_000) ?(spacing = 400_000) ?(lifetime = 3_000_000) ~n () =
  List.concat
    (List.init n (fun i ->
         let name = Printf.sprintf "app-%d" i in
         let claim = Printf.sprintf "vol-%d" i in
         let at = start + (i * spacing) in
         [
           step at
             (Printf.sprintf "create %s (claim %s)" name claim)
             (fun c -> create_pod ~pvc:claim c name);
           step (at + lifetime) ("delete " ^ name) (fun c -> mark_pod_deleted c name);
         ]))

let rolling_upgrade ?(start = 1_000_000) ~pod ~from_node ~to_node () =
  [
    step start
      (Printf.sprintf "create %s on %s" pod from_node)
      (fun c -> create_pod ~node:from_node c pod);
    step (start + 2_000_000) (Printf.sprintf "migrate %s: delete on %s" pod from_node) (fun c ->
        delete_pod_now c pod);
    step
      (start + 2_300_000)
      (Printf.sprintf "migrate %s: create on %s" pod to_node)
      (fun c -> create_pod ~node:to_node c pod);
  ]

let node_churn ?(start = 1_000_000) ~node ?(pods_after = 2) () =
  step start ("delete node " ^ node) (fun c -> delete_node c node)
  :: List.init pods_after (fun i ->
         let name = Printf.sprintf "post-%d" i in
         step
           (start + 400_000 + (i * 300_000))
           ("create " ^ name)
           (fun c -> create_pod c name))

let replicaset_scale ?(start = 1_000_000) ~rs ~steps () =
  List.map
    (fun (delay, replicas) ->
      step (start + delay)
        (Printf.sprintf "scale rset %s to %d" rs replicas)
        (fun c -> set_rset_replicas c rs replicas))
    steps

let node_failover ?(start = 1_000_000) ~new_node ~rs ~replicas () =
  [
    step start (Printf.sprintf "create rset %s (%d replicas)" rs replicas) (fun c ->
        set_rset_replicas c rs replicas);
    step (start + 1_500_000) ("add node " ^ new_node) (fun c -> create_node c new_node);
  ]

let deployment_rollout ?(start = 1_000_000) ~dep ~replicas ~generations ~gap () =
  List.map
    (fun generation ->
      step
        (start + ((generation - 1) * gap))
        (Printf.sprintf "roll %s to generation %d" dep generation)
        (fun c -> set_deployment c dep ~replicas ~template:generation))
    (List.init generations (fun i -> i + 1))

let cassandra_scale ?(start = 1_000_000) ~dc ~steps () =
  List.map
    (fun (delay, replicas) ->
      step (start + delay)
        (Printf.sprintf "scale %s to %d" dc replicas)
        (fun c -> set_cassdc_replicas c dc replicas))
    steps
