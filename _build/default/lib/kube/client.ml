type t = {
  net : Dsim.Network.t;
  owner : string;
  endpoints : string array;
  retries : int;
  retry_delay : int;
  mutable index : int;
}

type outcome = { succeeded : bool; rev : int }

let create ~net ~owner ~endpoints ?(retries = 4) ?(retry_delay = 200_000) () =
  if endpoints = [] then invalid_arg "Client.create: no endpoints";
  { net; owner; endpoints = Array.of_list endpoints; retries; retry_delay; index = 0 }

let current_endpoint t = t.endpoints.(t.index mod Array.length t.endpoints)

let engine t = Dsim.Network.engine t.net

let rec attempt t request ~decode ~budget k =
  if budget <= 0 || not (Dsim.Network.is_up t.net t.owner) then k (Error `Unavailable)
  else
    Dsim.Network.call t.net ~src:t.owner ~dst:(current_endpoint t) request (fun response ->
        match Option.bind (Result.to_option response) decode with
        | Some value -> k (Ok value)
        | None ->
            t.index <- t.index + 1;
            ignore
              (Dsim.Engine.schedule (engine t) ~delay:t.retry_delay (fun () ->
                   attempt t request ~decode ~budget:(budget - 1) k)))

let txn ?lease t transaction k =
  let decode = function
    | Messages.Txn_result { succeeded; rev } -> Some { succeeded; rev }
    | _ -> None
  in
  attempt t
    (Messages.Api_txn { txn = transaction; origin = t.owner; lease })
    ~decode ~budget:t.retries k

let txn_ ?lease t transaction = txn ?lease t transaction (fun _ -> ())

let lease_grant t ~ttl k =
  let decode = function Messages.Lease_granted { lease } -> Some lease | _ -> None in
  attempt t (Messages.Api_lease_grant { ttl }) ~decode ~budget:t.retries k

let lease_keepalive t ~lease k =
  let decode = function
    | Messages.Lease_ok -> Some true
    | Messages.Lease_gone -> Some false
    | _ -> None
  in
  attempt t (Messages.Api_lease_keepalive { lease }) ~decode ~budget:2 k

let lease_revoke t ~lease =
  attempt t (Messages.Api_lease_revoke { lease }) ~decode:(fun _ -> Some ()) ~budget:2
    (fun _ -> ())

let get_quorum t key k =
  let decode = function Messages.Value { value; rev = _ } -> Some value | _ -> None in
  attempt t (Messages.Api_get { key; quorum = true }) ~decode ~budget:t.retries k

let list_quorum t ~prefix k =
  let decode = function Messages.Items { items; rev = _ } -> Some items | _ -> None in
  attempt t (Messages.Api_list { prefix; quorum = true }) ~decode ~budget:t.retries k
