type watch_request = {
  prefix : string option;
  start_rev : int;
  subscriber : string;
  stream_id : string;
  deliver : Pipe.item -> unit;
}

type Dsim.Network.request +=
  | Etcd_range of { prefix : string }
  | Etcd_get of { key : string }
  | Etcd_txn of { txn : Resource.value Etcdlike.Txn.t; origin : string; lease : int option }
  | Etcd_lease_grant of { ttl : int }
  | Etcd_lease_keepalive of { lease : int }
  | Etcd_lease_revoke of { lease : int }
  | Etcd_watch of watch_request
  | Api_list of { prefix : string; quorum : bool }
  | Api_get of { key : string; quorum : bool }
  | Api_txn of { txn : Resource.value Etcdlike.Txn.t; origin : string; lease : int option }
  | Api_lease_grant of { ttl : int }
  | Api_lease_keepalive of { lease : int }
  | Api_lease_revoke of { lease : int }
  | Api_watch of watch_request

type Dsim.Network.response +=
  | Items of { items : (string * Resource.value * int) list; rev : int }
  | Value of { value : (Resource.value * int) option; rev : int }
  | Txn_result of { succeeded : bool; rev : int }
  | Watch_ok of { rev : int }
  | Watch_compacted of { compacted_rev : int }
  | Lease_granted of { lease : int }
  | Lease_ok
  | Lease_gone
  | Backend_unavailable

let put key value =
  Etcdlike.Txn.{ guards = []; success = [ Put (key, value) ]; failure = [] }

let delete key = Etcdlike.Txn.{ guards = []; success = [ Delete key ]; failure = [] }

let items_to_state items =
  List.fold_left
    (fun state (key, value, mod_rev) ->
      History.State.apply state
        (History.Event.make ~rev:mod_rev ~key ~op:History.Event.Create (Some value)))
    History.State.empty items
