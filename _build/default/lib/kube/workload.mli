(** Scripted workloads: time-stamped cluster operations.

    A workload is data — a list of labelled steps at absolute virtual
    times — so that the same workload can be replayed under different
    perturbation strategies and its steps can be referenced from a test
    plan. The provided generators cover the scenarios the paper's case
    studies run on: pod churn, rolling upgrades (same-name migration),
    node churn, claim-backed pods, and Cassandra datacenter scaling. *)

type step = { at : int; label : string; action : Cluster.t -> unit }

type t = step list

val schedule : Cluster.t -> t -> unit
(** Installs every step on the cluster's engine. *)

val labels : t -> (int * string) list

(** {2 Primitive actions} (applied at the engine's current time) *)

val create_pod : ?pvc:string -> ?node:string -> Cluster.t -> string -> unit
(** Writes the pod (and its claim when [pvc] is given) through an
    apiserver. Unbound pods wait for the scheduler unless [node] pins
    them. *)

val mark_pod_deleted : Cluster.t -> string -> unit
(** Graceful delete: reads the pod with a quorum get and writes the
    deletion timestamp; the owning kubelet stops it and finalizes. *)

val delete_pod_now : Cluster.t -> string -> unit
(** Force delete: removes the object in one event. *)

val create_node : Cluster.t -> string -> unit

val delete_node : Cluster.t -> string -> unit

val set_cassdc_replicas : Cluster.t -> string -> int -> unit
(** Creates or updates the datacenter spec. *)

val set_rset_replicas : Cluster.t -> string -> int -> unit
(** Creates or updates a ReplicaSet spec. *)

val set_deployment : Cluster.t -> string -> replicas:int -> template:int -> unit
(** Creates or updates a Deployment spec (bumping [template] triggers a
    rolling update). *)

(** {2 Workload generators} *)

val pod_churn : ?start:int -> ?spacing:int -> ?lifetime:int -> n:int -> unit -> t
(** [n] pods named [churn-<i>]: each created, then gracefully deleted
    [lifetime] later. Defaults: start 1 s, spacing 400 ms, lifetime 3 s. *)

val pods_with_claims : ?start:int -> ?spacing:int -> ?lifetime:int -> n:int -> unit -> t
(** Like {!pod_churn} but each pod mounts claim [vol-<i>] (exercises the
    volume controller). *)

val rolling_upgrade : ?start:int -> pod:string -> from_node:string -> to_node:string -> unit -> t
(** Creates [pod] pinned to [from_node], then migrates it: force-delete
    followed 300 ms later by re-creation pinned to [to_node] — the
    Kubernetes-59848 workload. *)

val node_churn : ?start:int -> node:string -> ?pods_after:int -> unit -> t
(** Deletes [node], then creates [pods_after] pods that must be scheduled
    elsewhere — the Kubernetes-56261 workload. Default 2 pods. *)

val cassandra_scale : ?start:int -> dc:string -> steps:(int * int) list -> unit -> t
(** Applies (delay-from-start, replicas) spec changes to datacenter
    [dc]. *)

val replicaset_scale : ?start:int -> rs:string -> steps:(int * int) list -> unit -> t
(** Applies (delay-from-start, replicas) spec changes to ReplicaSet
    [rs]. *)

val deployment_rollout :
  ?start:int -> dep:string -> replicas:int -> generations:int -> gap:int -> unit -> t
(** Creates the deployment at generation 1, then bumps the template
    every [gap] microseconds up to [generations]. *)

val node_failover : ?start:int -> new_node:string -> rs:string -> replicas:int -> unit -> t
(** Creates a ReplicaSet, then adds a fresh node the scheduler will start
    using — the node controller's blind spot if it misses the node's
    creation. *)
