(** HBase-style master: assigns regions to region servers through
    compare-and-set transitions on ZooKeeper state.

    Region servers register under ["rs/<name>"]; regions live under
    ["region/<name>"] holding the assigned server. Each balancing pass
    reads assignments and the live-server set from the *follower*
    (cached, possibly stale — the HBASE-3136 hazard) and repairs
    assignments with CAS at the leader; a stale read makes the CAS fail
    and the transition is retried on the next pass.

    [sync_before_cas] applies the HBASE-3136 fix (sync the follower
    before reading), whose leader-load cost is HBASE-3137.

    The master also publishes its own address at ["master"] so region
    servers can find it — the state behind HBASE-5755. *)

type Dsim.Network.request += Rs_heartbeat of { server : string }
(** Region server liveness ping (served by the master). *)

type Dsim.Network.response += Heartbeat_ack

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  zk:Zk.t ->
  regions:string list ->
  ?sync_before_cas:bool ->
  ?period:int ->
  unit ->
  t
(** Default balancing period: 100 ms. *)

val start : t -> unit
(** Publishes ["master"] = [name] and begins balancing. Serves region
    server heartbeats. *)

val name : t -> string

val transitions : t -> int
(** Successful region transitions. *)

val cas_failures : t -> int
(** Transitions rejected because the read state was stale. *)

val heartbeats_served : t -> int
