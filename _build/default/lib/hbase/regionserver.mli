(** HBase-style region server: registers itself in ZooKeeper, looks up
    the master's address once, and heartbeats it.

    HBASE-5755 ("region server looking for master forever with cached
    stale data"): the master's location is cached at lookup time; after a
    master failover the cached address points at a corpse and the
    bug-era server retries it forever instead of re-reading ZooKeeper.
    [relookup_on_failure] applies the fix. *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  zk:Zk.t ->
  ?relookup_on_failure:bool ->
  ?heartbeat_period:int ->
  unit ->
  t
(** Default heartbeat period: 150 ms. *)

val start : t -> unit

val name : t -> string

val cached_master : t -> string option
(** The master address this server currently believes in. *)

val heartbeats_ok : t -> int

val heartbeat_failures : t -> int

val consecutive_failures : t -> int
(** The HBASE-5755 signature: grows without bound when the cached master
    is dead and no re-lookup happens. *)
