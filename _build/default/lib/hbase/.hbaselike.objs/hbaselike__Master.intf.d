lib/hbase/master.mli: Dsim Zk
