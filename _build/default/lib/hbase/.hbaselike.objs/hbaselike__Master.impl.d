lib/hbase/master.ml: Dsim Hashtbl List Printf String Zk
