lib/hbase/zk.ml: Dsim Etcdlike History List Option
