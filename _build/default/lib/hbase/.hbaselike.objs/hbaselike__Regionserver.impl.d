lib/hbase/regionserver.ml: Dsim List Master Printf String Zk
