lib/hbase/regionserver.mli: Dsim Zk
