lib/hbase/zk.mli: Dsim Etcdlike
