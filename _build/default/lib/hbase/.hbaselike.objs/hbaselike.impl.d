lib/hbase/hbaselike.ml: Master Regionserver Zk
