type t = {
  net : Dsim.Network.t;
  name : string;
  zk : Zk.t;
  relookup_on_failure : bool;
  heartbeat_period : int;
  mutable cached_master : string option;
  mutable heartbeats_ok : int;
  mutable heartbeat_failures : int;
  mutable consecutive_failures : int;
}

let name t = t.name

let cached_master t = t.cached_master

let heartbeats_ok t = t.heartbeats_ok

let heartbeat_failures t = t.heartbeat_failures

let consecutive_failures t = t.consecutive_failures

let engine t = Dsim.Network.engine t.net

let record t detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind:"hbase.rs" detail

let lookup_master t k =
  (* A fresh lookup uses a synced read: finding the coordinator is worth
     a linearizable round-trip. *)
  Zk.read t.zk ~src:t.name ~sync:true "master" (function
    | Ok (Some master, _) ->
        if t.cached_master <> Some master then
          record t (Printf.sprintf "master located at %s" master);
        t.cached_master <- Some master;
        k (Some master)
    | Ok (None, _) | Error `Unavailable -> k None)

(* Join the comma-separated registry (idempotent). *)
let register t =
  Zk.read t.zk ~src:t.name ~sync:true "rs/registry" (function
    | Ok (current, _) ->
        let members =
          match current with
          | Some s -> String.split_on_char ',' s |> List.filter (fun x -> x <> "")
          | None -> []
        in
        if not (List.mem t.name members) then
          Zk.write t.zk ~src:t.name ~key:"rs/registry"
            (String.concat "," (members @ [ t.name ]))
            (fun _ -> ())
    | Error `Unavailable -> ())

let heartbeat t =
  match t.cached_master with
  | None -> lookup_master t (fun _ -> ())
  | Some master ->
      Dsim.Network.call t.net ~src:t.name ~dst:master ~timeout:100_000
        (Master.Rs_heartbeat { server = t.name })
        (function
        | Ok Master.Heartbeat_ack ->
            t.heartbeats_ok <- t.heartbeats_ok + 1;
            t.consecutive_failures <- 0
        | _ ->
            t.heartbeat_failures <- t.heartbeat_failures + 1;
            t.consecutive_failures <- t.consecutive_failures + 1;
            (* The bug-era server keeps hammering the cached address; the
               fixed one asks ZooKeeper where the master is now. *)
            if t.relookup_on_failure then begin
              t.cached_master <- None;
              lookup_master t (fun _ -> ())
            end)

let create ~net ~name ~zk ?(relookup_on_failure = false) ?(heartbeat_period = 150_000) () =
  {
    net;
    name;
    zk;
    relookup_on_failure;
    heartbeat_period;
    cached_master = None;
    heartbeats_ok = 0;
    heartbeat_failures = 0;
    consecutive_failures = 0;
  }

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  register t;
  Dsim.Engine.every (engine t) ~period:t.heartbeat_period (fun () ->
      if Dsim.Network.is_up t.net t.name then heartbeat t;
      true)
