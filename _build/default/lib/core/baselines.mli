(** Baseline testing approaches from the state of the art (Sections 5–6),
    re-expressed as strategy generators over the same workloads and
    oracles so tests-to-first-bug numbers are directly comparable.

    - {!random_faults}: Jepsen-style — crashes and partitions at uniform
      random times (the "randomly generate inputs or faults" strawman).
    - {!crashtuner}: CrashTuner-style — crash a component immediately
      after a meta-info event (node/pod state change) commits, restart it
      shortly after.
    - {!cofi}: CoFI-style — partition a component from its apiserver (or
      an apiserver from etcd) exactly when a state change commits, forcing
      the views on the two sides to diverge, and heal after a window.

    All three inject node-level faults only; none composes a durable
    staleness source with a targeted restart, and none can suppress a
    single notification while leaving the stream healthy — the gap the
    partial-history model exposes. *)

val random_faults :
  seed:int64 ->
  components:string list ->
  apiservers:string list ->
  horizon:int ->
  n:int ->
  Strategy.t list
(** [n] independent random plans, each with one crash/restart and one
    partition window over randomly chosen victims and link endpoints. *)

val crashtuner :
  events:(int * string * History.Event.op) list ->
  components:string list ->
  ?reaction_delay:int ->
  ?downtime:int ->
  unit ->
  Strategy.t list
(** One candidate per (meta-info event, component): crash the component
    [reaction_delay] (default 2 ms) after the event commits. *)

val cofi :
  events:(int * string * History.Event.op) list ->
  components:string list ->
  apiservers:string list ->
  ?window:int ->
  unit ->
  Strategy.t list
(** One candidate per (event, link): partition the link at the event's
    commit time and heal [window] (default 1.2 s) later. Links are every
    component↔apiserver pair plus every apiserver↔etcd pair. *)
