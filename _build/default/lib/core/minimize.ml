let halve_gap ~from ~until = from + ((until - from) / 2)

(* Strictly smaller variants of one node. Time windows shrink from both
   ends; magnitudes halve; combos lose parts. *)
let rec shrink_candidates strategy =
  match strategy with
  | Strategy.No_perturbation -> []
  | Strategy.Combo parts ->
      let drop_one =
        List.mapi
          (fun i _ ->
            let rest = List.filteri (fun j _ -> j <> i) parts in
            match rest with [ single ] -> single | rest -> Strategy.Combo rest)
          parts
      in
      let shrink_one =
        List.concat
          (List.mapi
             (fun i part ->
               List.map
                 (fun part' ->
                   Strategy.Combo (List.mapi (fun j p -> if j = i then part' else p) parts))
                 (shrink_candidates part))
             parts)
      in
      drop_one @ shrink_one
  | Strategy.Drop_events ({ from; until; _ } as d) ->
      let narrower = halve_gap ~from ~until in
      (if until - from > 200_000 then
         [
           Strategy.Drop_events { d with until = narrower };
           Strategy.Drop_events { d with from = narrower };
         ]
       else [])
      @
      (match d.matching.Strategy.limit with
      | None -> [ Strategy.Drop_events { d with matching = { d.matching with Strategy.limit = Some 1 } } ]
      | Some l when l > 1 ->
          [ Strategy.Drop_events { d with matching = { d.matching with Strategy.limit = Some (l / 2) } } ]
      | Some _ -> [])
  | Strategy.Delay_stream ({ from; until; extra; _ } as d) ->
      (if until - from > 200_000 then
         let narrower = halve_gap ~from ~until in
         [
           Strategy.Delay_stream { d with until = narrower };
           Strategy.Delay_stream { d with from = narrower };
         ]
       else [])
      @ (if extra > 100_000 then [ Strategy.Delay_stream { d with extra = extra / 2 } ]
         else [])
  | Strategy.Crash_restart ({ downtime; _ } as c) ->
      if downtime > 50_000 then
        [ Strategy.Crash_restart { c with downtime = downtime / 2 } ]
      else []
  | Strategy.Partition_window ({ from; until; _ } as p) ->
      if until = max_int then
        (* Unbounded cuts shrink to something finite first. *)
        [ Strategy.Partition_window { p with until = from + 8_000_000 } ]
      else if until - from > 200_000 then
        [
          Strategy.Partition_window { p with until = halve_gap ~from ~until };
          Strategy.Partition_window { p with from = halve_gap ~from ~until };
        ]
      else []

let still_fails ~test ~target strategy =
  let outcome = Runner.run_test { test with Runner.strategy } in
  List.exists (fun (_, v) -> target v) outcome.Runner.violations

let minimize ~test ~target ?(budget = 200) () =
  let executions = ref 1 in
  if not (still_fails ~test ~target test.Runner.strategy) then (test, !executions)
  else begin
    let current = ref test.Runner.strategy in
    let progress = ref true in
    while !progress && !executions < budget do
      progress := false;
      let candidates = shrink_candidates !current in
      let rec try_candidates = function
        | [] -> ()
        | candidate :: rest ->
            if !executions >= budget then ()
            else begin
              incr executions;
              if still_fails ~test ~target candidate then begin
                current := candidate;
                progress := true
              end
              else try_candidates rest
            end
      in
      try_candidates candidates
    done;
    ({ test with Runner.strategy = !current }, !executions)
  end
