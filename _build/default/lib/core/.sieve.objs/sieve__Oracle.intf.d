lib/core/oracle.mli: History Kube
