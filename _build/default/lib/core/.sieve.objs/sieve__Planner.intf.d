lib/core/planner.mli: History Kube Runner Strategy
