lib/core/oracle.ml: Dsim Hashtbl History Kube List Option Printf String
