lib/core/report.mli:
