lib/core/sieve.ml: Baselines Bugs Coverage Minimize Oracle Planner Report Runner Strategy
