lib/core/bugs.mli: Kube Oracle Runner Strategy
