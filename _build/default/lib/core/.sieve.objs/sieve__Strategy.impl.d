lib/core/strategy.ml: Dsim Format History Kube List Option Printf String
