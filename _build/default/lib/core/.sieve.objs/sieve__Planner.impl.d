lib/core/planner.ml: Hashtbl History Kube List Printf Runner Strategy String
