lib/core/coverage.mli: History Kube Strategy
