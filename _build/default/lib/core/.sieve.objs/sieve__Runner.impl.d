lib/core/runner.ml: Dsim History Kube List Oracle Strategy
