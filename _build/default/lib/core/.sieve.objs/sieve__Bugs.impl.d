lib/core/bugs.ml: History Kube List Oracle Runner Strategy String
