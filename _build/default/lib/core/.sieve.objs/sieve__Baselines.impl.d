lib/core/baselines.ml: Array Dsim Kube List Strategy
