lib/core/runner.mli: History Kube Oracle Strategy
