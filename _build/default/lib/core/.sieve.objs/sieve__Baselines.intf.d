lib/core/baselines.mli: History Strategy
