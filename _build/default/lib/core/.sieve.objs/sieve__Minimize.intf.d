lib/core/minimize.mli: Oracle Runner Strategy
