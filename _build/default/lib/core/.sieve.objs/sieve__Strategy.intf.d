lib/core/strategy.mli: Format History Kube
