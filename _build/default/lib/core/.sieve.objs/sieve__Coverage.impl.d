lib/core/coverage.ml: Hashtbl List Planner Strategy String
