lib/core/minimize.ml: List Runner Strategy
