type pattern = [ `Staleness | `Obs_gap | `Time_travel ]

let pattern_to_string = function
  | `Staleness -> "staleness"
  | `Obs_gap -> "observability-gap"
  | `Time_travel -> "time-travel"

type cell = { component : string; key : string; pattern : pattern }

type t = {
  targets : Planner.target list;
  keys : string list;  (** distinct reference keys *)
  marked : (cell, unit) Hashtbl.t;
}

let create ~config ~events =
  let keys = List.sort_uniq String.compare (List.map (fun (_, key, _) -> key) events) in
  { targets = Planner.targets_of_config config; keys; marked = Hashtbl.create 128 }

let cells t =
  List.concat_map
    (fun target ->
      List.concat_map
        (fun key ->
          if Planner.consumed_by target key then
            List.map
              (fun pattern -> { component = target.Planner.component; key; pattern })
              [ `Staleness; `Obs_gap; `Time_travel ]
          else [])
        t.keys)
    t.targets

let mark t cell = if List.mem cell (cells t) then Hashtbl.replace t.marked cell ()

let matching_keys t prefix =
  match prefix with
  | None -> t.keys
  | Some p ->
      List.filter
        (fun key ->
          String.length key >= String.length p
          && String.equal (String.sub key 0 (String.length p)) p)
        t.keys

let mark_component_pattern t ~component ~key_prefix pattern =
  List.iter
    (fun key -> mark t { component; key; pattern })
    (matching_keys t key_prefix)

let all_components t = List.map (fun target -> target.Planner.component) t.targets

let is_apiserver name =
  String.length name >= 4 && String.equal (String.sub name 0 4) "api-"

let rec note t (strategy : Strategy.t) =
  match strategy with
  | Strategy.No_perturbation -> ()
  | Strategy.Drop_events { dst; matching; _ } ->
      let components = match dst with Some c -> [ c ] | None -> all_components t in
      List.iter
        (fun component ->
          mark_component_pattern t ~component ~key_prefix:matching.Strategy.key_prefix `Obs_gap)
        components
  | Strategy.Delay_stream { dst; matching; _ } ->
      let components = match dst with Some c -> [ c ] | None -> all_components t in
      List.iter
        (fun component ->
          mark_component_pattern t ~component ~key_prefix:matching.Strategy.key_prefix
            `Staleness)
        components
  | Strategy.Partition_window { a; b; _ } ->
      (* Freezing an apiserver makes every component potentially stale;
         cutting a component's own link makes that component stale. *)
      let components =
        if is_apiserver a || is_apiserver b || String.equal a "etcd" || String.equal b "etcd"
        then all_components t
        else List.filter (fun c -> String.equal c a || String.equal c b) (all_components t)
      in
      List.iter
        (fun component -> mark_component_pattern t ~component ~key_prefix:None `Staleness)
        components
  | Strategy.Crash_restart { victim; _ } ->
      if List.mem victim (all_components t) then
        mark_component_pattern t ~component:victim ~key_prefix:None `Time_travel
  | Strategy.Combo parts -> List.iter (note t) parts

let total t = List.length (cells t)

let covered t = Hashtbl.length t.marked

let ratio t =
  let n = total t in
  if n = 0 then 0.0 else float_of_int (covered t) /. float_of_int n

let by_pattern t =
  List.map
    (fun pattern ->
      let in_pattern = List.filter (fun c -> c.pattern = pattern) (cells t) in
      let done_ = List.filter (Hashtbl.mem t.marked) in_pattern in
      (pattern, List.length done_, List.length in_pattern))
    [ `Staleness; `Obs_gap; `Time_travel ]

let uncovered t =
  cells t
  |> List.filter (fun c -> not (Hashtbl.mem t.marked c))
  |> List.sort compare
