(** Strategy minimization: shrink a failing perturbation to a locally
    minimal one that still triggers the target violation.

    Useful after a campaign: the winning candidate often perturbs more
    than necessary (wide windows, composite faults). Minimization runs a
    greedy delta-debugging loop — drop combo parts, narrow time windows,
    shorten delays and downtimes — re-running the (deterministic) test
    after each proposed shrink and keeping it only if the violation still
    fires. The result explains the bug: everything left is needed. *)

val shrink_candidates : Strategy.t -> Strategy.t list
(** One round of strictly-smaller variants of a strategy (no
    execution). Exposed for testing; {!minimize} drives it. *)

val minimize :
  test:Runner.test ->
  target:(Oracle.violation -> bool) ->
  ?budget:int ->
  unit ->
  Runner.test * int
(** Returns the minimized test and the number of test executions spent.
    [budget] caps executions (default 200). The input test must already
    trigger the target; otherwise it is returned unchanged with cost 1. *)
