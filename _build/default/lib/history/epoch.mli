(** Epoch-bounded partial histories — the programming model hypothesized
    in Section 6.2.

    The history is cut into fixed-size epochs of [granularity] consecutive
    revisions; epoch [k] covers revisions [k*g + 1 .. (k+1)*g]. The
    delivery guarantee is all-or-nothing per epoch: a consumer either sees
    every event of an epoch or none of it, which eliminates staleness and
    observability gaps *within* an epoch at the price of delaying delivery
    until the epoch is complete (the coordination cost the paper
    mentions). *)

val epoch_of : granularity:int -> rev:int -> int
(** Epoch index of a revision (revisions are 1-based; epoch 0 covers
    revisions 1..g). Raises [Invalid_argument] if [granularity <= 0]. *)

val epoch_end : granularity:int -> epoch:int -> int
(** Last revision of the epoch. *)

val deliverable_frontier : granularity:int -> head_rev:int -> int
(** Highest revision that may be exposed to consumers when the committed
    head is [head_rev]: the end of the last *complete* epoch. *)

type 'v t
(** A per-consumer batcher that buffers incoming events and releases them
    in whole-epoch batches, in order. *)

val create : granularity:int -> deliver:('v Event.t list -> unit) -> 'v t

val granularity : 'v t -> int

val offer : 'v t -> 'v Event.t -> unit
(** Buffers the event. When every revision of the oldest outstanding epoch
    has been offered, that epoch is passed to [deliver] as one batch (and
    so on for subsequent already-complete epochs). Events from
    already-delivered epochs are ignored — the transport deduplicates. *)

val buffered : 'v t -> int
(** Events held back waiting for their epoch to complete. *)

val delivered_frontier : 'v t -> int
(** Last revision handed to [deliver]; multiple of the granularity. *)
