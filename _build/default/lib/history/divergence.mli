(** Divergence series: quantifying how far a view [(H', S')] trails the
    ground truth [(H, S)] over time.

    This backs the Figure 3a/3b experiment output: sample the global
    revision and a component's view revision on a clock, then report lag
    statistics and the intervals during which the view was stale. *)

type sample = { time : int; truth_rev : int; view_rev : int }

type t

val create : unit -> t

val record : t -> time:int -> truth_rev:int -> view_rev:int -> unit

val samples : t -> sample list
(** Chronological order. *)

val max_lag : t -> int

val mean_lag : t -> float

val stale_fraction : t -> float
(** Fraction of samples with positive lag. *)

val time_travel_points : t -> sample list
(** Samples where the view revision moved strictly backwards relative to
    the previous sample — the Figure 3b signature. *)

val pp_series : Format.formatter -> t -> unit
(** Prints "time truth_rev view_rev lag" rows, one per sample. *)
