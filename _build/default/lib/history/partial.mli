(** Partial histories [H' ⊑ H]: order-preserving subsequences of the
    committed history.

    Because revisions are unique and strictly increasing in [H], a list of
    events is a partial history of [H] exactly when it is sorted by
    revision and every element appears in [H]. These are the objects the
    Sieve strategies manufacture: a *stale* H' is a strict prefix-lagging
    subsequence, an *incomplete* H' has interior gaps, and a view that
    re-observes its own past is consuming a non-suffix of its previous
    H'. *)

type 'v t = 'v Event.t list
(** Events ordered by ascending revision. *)

val is_ordered : 'v t -> bool
(** Strictly ascending revisions. *)

val is_partial_of : 'v t -> of_:'v Event.t list -> bool
(** Order-preserving-subsequence check (by revision). *)

val is_prefix_of : 'v t -> of_:'v Event.t list -> bool

val apply_mask : 'v Event.t list -> mask:bool list -> 'v t
(** Keeps the events whose mask position is [true]; masks shorter than the
    history leave the tail out, longer masks are truncated. Every value
    produced this way satisfies {!is_partial_of}. *)

val missing_revs : 'v t -> of_:'v Event.t list -> int list
(** Revisions of [of_] absent from the partial history, ascending. *)

val interior_gaps : 'v t -> of_:'v Event.t list -> int list
(** Missing revisions that are *followed* by an observed revision — the
    events a component skipped over (as opposed to merely lagging). *)

val lag : 'v t -> of_:'v Event.t list -> int
(** Number of trailing events of [of_] not yet observed. *)

val last_rev : 'v t -> int
(** 0 when empty. *)

val state_of : 'v t -> 'v State.t
(** Materializes [S'] from [H'] by folding. *)

val unobservable_in_state : 'v Event.t list -> int list
(** Revisions whose effect is invisible in the final state because a later
    event on the same key overwrote or removed it — Figure 3c's cancelled
    events. A sparse reader of [S'] can never learn these happened. *)
