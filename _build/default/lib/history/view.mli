(** A component's local view [(H', S')] with anomaly detection.

    A view is what a service actually holds: the partial history it has
    observed so far and the state materialized from it. [observe] applies
    an incoming event and reports the partial-history anomalies the paper
    names — time travel (the view moves backwards) and skipped events
    (interior gaps relative to what the view itself has seen). *)

type anomaly =
  | Time_travel of { seen_rev : int; got_rev : int }
      (** observed an event older than the view's frontier *)
  | Replay of { rev : int }  (** observed an event a second time *)

val pp_anomaly : Format.formatter -> anomaly -> unit

type 'v t

val create : actor:string -> 'v t

val actor : 'v t -> string

val rev : 'v t -> int
(** The view's frontier: highest revision ever observed. *)

val state : 'v t -> 'v State.t
(** The materialized [S']. *)

val observed : 'v t -> 'v Event.t list
(** The accumulated [H'], oldest first. *)

val observe : 'v t -> 'v Event.t -> 'v t * anomaly option
(** Applies the event to [S'] and appends it to [H'] regardless of
    anomalies — a buggy component does consume time-traveled events; the
    anomaly report is for the observer (oracle), not the component. *)

val reset_to_state : 'v t -> 'v State.t -> 'v t
(** Models a restart that re-lists the current state from some upstream:
    [H'] is discarded (it cannot be recovered from [S]) and [S'] becomes
    the listed snapshot. The frontier becomes the snapshot's revision —
    which may be *lower* than the old frontier if the upstream was stale;
    that is exactly the Kubernetes-59848 hazard. *)

val staleness : 'v t -> against:int -> int
(** [staleness v ~against:h_rev] is [max 0 (h_rev - rev v)]: how many
    committed revisions the view has not seen. *)
