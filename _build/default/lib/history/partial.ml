type 'v t = 'v Event.t list

let revs events = List.map (fun (e : 'v Event.t) -> e.Event.rev) events

let is_ordered events =
  let rec check = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && check rest
  in
  check (revs events)

let is_partial_of partial ~of_ =
  is_ordered partial
  &&
  let full = revs of_ in
  List.for_all (fun r -> List.mem r full) (revs partial)

let is_prefix_of partial ~of_ =
  let rec check p f =
    match p, f with
    | [], _ -> true
    | _, [] -> false
    | (pe : 'v Event.t) :: p', (fe : 'v Event.t) :: f' ->
        pe.Event.rev = fe.Event.rev && check p' f'
  in
  check partial of_

let apply_mask events ~mask =
  let rec go events mask acc =
    match events, mask with
    | [], _ | _, [] -> List.rev acc
    | e :: events', keep :: mask' -> go events' mask' (if keep then e :: acc else acc)
  in
  go events mask []

let missing_revs partial ~of_ =
  let seen = revs partial in
  List.filter (fun r -> not (List.mem r seen)) (revs of_)

let last_rev partial =
  List.fold_left (fun acc (e : 'v Event.t) -> max acc e.Event.rev) 0 partial

let interior_gaps partial ~of_ =
  let horizon = last_rev partial in
  List.filter (fun r -> r < horizon) (missing_revs partial ~of_)

let lag partial ~of_ =
  let horizon = last_rev partial in
  List.length (List.filter (fun r -> r > horizon) (revs of_))

let state_of partial = List.fold_left State.apply State.empty partial

let unobservable_in_state events =
  (* An event is unobservable when a later event targets the same key:
     its value (or its very existence, for create+delete pairs) cannot be
     recovered from the final state alone. *)
  let rec go = function
    | [] -> []
    | (e : 'v Event.t) :: rest ->
        let shadowed =
          List.exists (fun (later : 'v Event.t) -> String.equal later.Event.key e.Event.key) rest
        in
        if shadowed then e.Event.rev :: go rest else go rest
  in
  go events
