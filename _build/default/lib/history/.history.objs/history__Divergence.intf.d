lib/history/divergence.mli: Format
