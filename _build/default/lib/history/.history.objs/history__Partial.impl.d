lib/history/partial.ml: Event List State String
