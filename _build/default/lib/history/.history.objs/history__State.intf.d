lib/history/state.mli: Event
