lib/history/causality.mli: Format
