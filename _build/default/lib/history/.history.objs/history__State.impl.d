lib/history/state.ml: Event List Map Option String
