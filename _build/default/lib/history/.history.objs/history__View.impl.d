lib/history/view.ml: Event Format Hashtbl List State
