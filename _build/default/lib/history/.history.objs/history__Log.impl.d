lib/history/log.ml: Event List State
