lib/history/causality.ml: Format Map String
