lib/history/epoch.mli: Event
