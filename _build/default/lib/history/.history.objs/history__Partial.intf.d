lib/history/partial.mli: Event State
