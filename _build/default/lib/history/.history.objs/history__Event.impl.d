lib/history/event.ml: Format Printf
