lib/history/history.ml: Causality Divergence Epoch Event Log Partial State View
