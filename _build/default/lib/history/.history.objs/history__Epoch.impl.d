lib/history/epoch.ml: Event Hashtbl
