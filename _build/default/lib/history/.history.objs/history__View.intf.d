lib/history/view.mli: Event Format State
