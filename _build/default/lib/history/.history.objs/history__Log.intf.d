lib/history/log.mli: Event State
