lib/history/divergence.ml: Format List
