type 'v t = {
  mutable events : 'v Event.t list;  (* newest first *)
  mutable retained : int;
  mutable rev : int;
  mutable compacted_rev : int;
  mutable base_state : 'v State.t;  (* S as of compacted_rev *)
  mutable state : 'v State.t;
}

let create () =
  {
    events = [];
    retained = 0;
    rev = 0;
    compacted_rev = 0;
    base_state = State.empty;
    state = State.empty;
  }

let append t ~key ~op value =
  t.rev <- t.rev + 1;
  let event = Event.make ~rev:t.rev ~key ~op value in
  t.events <- event :: t.events;
  t.retained <- t.retained + 1;
  t.state <- State.apply t.state event;
  event

let rev t = t.rev

let compacted_rev t = t.compacted_rev

let state t = t.state

let events t = List.rev t.events

let length t = t.retained

let since t ~rev =
  if rev < t.compacted_rev then Error (`Compacted t.compacted_rev)
  else
    let newer = List.filter (fun (e : 'v Event.t) -> e.Event.rev > rev) t.events in
    Ok (List.rev newer)

let state_at t ~rev =
  if rev < t.compacted_rev then None
  else begin
    let prefix = List.filter (fun (e : 'v Event.t) -> e.Event.rev <= rev) (events t) in
    (* Every event in (compacted_rev, rev] is retained, so replaying them
       over the snapshot taken at compaction reconstructs S exactly. *)
    Some (List.fold_left State.apply t.base_state prefix)
  end

let compact t ~before =
  let before = min before t.rev in
  if before > t.compacted_rev then begin
    let discarded, kept =
      List.partition (fun (e : 'v Event.t) -> e.Event.rev <= before) (events t)
    in
    t.base_state <- List.fold_left State.apply t.base_state discarded;
    t.events <- List.rev kept;
    t.retained <- List.length kept;
    t.compacted_rev <- before
  end

let compact_keep_last t n =
  if t.retained > n then compact t ~before:(t.rev - n)
