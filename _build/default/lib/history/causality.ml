module Smap = Map.Make (String)

type t = int Smap.t

let empty = Smap.empty

let get t ~actor = match Smap.find_opt actor t with Some n -> n | None -> 0

let tick t ~actor = Smap.add actor (get t ~actor + 1) t

let merge a b = Smap.union (fun _ x y -> Some (max x y)) a b

let leq a b = Smap.for_all (fun actor n -> n <= get b ~actor) a

type relation = Equal | Before | After | Concurrent

let pp_relation ppf r =
  Format.pp_print_string ppf
    (match r with
    | Equal -> "equal"
    | Before -> "before"
    | After -> "after"
    | Concurrent -> "concurrent")

let relation a b =
  match leq a b, leq b a with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let pp ppf t =
  Format.fprintf ppf "{";
  Smap.iter (fun actor n -> Format.fprintf ppf "%s:%d " actor n) t;
  Format.fprintf ppf "}"

type 'a stamped = { clock : t; item : 'a }

let causally_related a b =
  match relation a.clock b.clock with Concurrent -> false | Equal | Before | After -> true
