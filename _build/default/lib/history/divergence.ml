type sample = { time : int; truth_rev : int; view_rev : int }

type t = { mutable samples : sample list (* newest first *) }

let create () = { samples = [] }

let record t ~time ~truth_rev ~view_rev =
  t.samples <- { time; truth_rev; view_rev } :: t.samples

let samples t = List.rev t.samples

let lag s = max 0 (s.truth_rev - s.view_rev)

let max_lag t = List.fold_left (fun acc s -> max acc (lag s)) 0 t.samples

let mean_lag t =
  match t.samples with
  | [] -> 0.0
  | samples ->
      let sum = List.fold_left (fun acc s -> acc + lag s) 0 samples in
      float_of_int sum /. float_of_int (List.length samples)

let stale_fraction t =
  match t.samples with
  | [] -> 0.0
  | samples ->
      let stale = List.length (List.filter (fun s -> lag s > 0) samples) in
      float_of_int stale /. float_of_int (List.length samples)

let time_travel_points t =
  let rec scan = function
    | a :: (b :: _ as rest) ->
        if b.view_rev < a.view_rev then b :: scan rest else scan rest
    | _ -> []
  in
  scan (samples t)

let pp_series ppf t =
  Format.fprintf ppf "%10s %9s %9s %5s@." "time_us" "truth_rev" "view_rev" "lag";
  List.iter
    (fun s -> Format.fprintf ppf "%10d %9d %9d %5d@." s.time s.truth_rev s.view_rev (lag s))
    (samples t)
