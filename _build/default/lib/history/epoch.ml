let epoch_of ~granularity ~rev =
  if granularity <= 0 then invalid_arg "Epoch.epoch_of: granularity must be positive";
  (rev - 1) / granularity

let epoch_end ~granularity ~epoch = (epoch + 1) * granularity

let deliverable_frontier ~granularity ~head_rev =
  if granularity <= 0 then invalid_arg "Epoch.deliverable_frontier";
  head_rev / granularity * granularity

type 'v t = {
  granularity : int;
  deliver : 'v Event.t list -> unit;
  buffer : (int, 'v Event.t) Hashtbl.t;  (* rev -> event, not yet delivered *)
  mutable frontier : int;  (* last delivered revision *)
}

let create ~granularity ~deliver =
  if granularity <= 0 then invalid_arg "Epoch.create: granularity must be positive";
  { granularity; deliver; buffer = Hashtbl.create 64; frontier = 0 }

let granularity t = t.granularity

let buffered t = Hashtbl.length t.buffer

let delivered_frontier t = t.frontier

let epoch_complete t epoch =
  let first = (epoch * t.granularity) + 1 in
  let last = epoch_end ~granularity:t.granularity ~epoch in
  let rec all rev = rev > last || (Hashtbl.mem t.buffer rev && all (rev + 1)) in
  all first

let release_epoch t epoch =
  let first = (epoch * t.granularity) + 1 in
  let last = epoch_end ~granularity:t.granularity ~epoch in
  let batch = ref [] in
  for rev = last downto first do
    batch := Hashtbl.find t.buffer rev :: !batch;
    Hashtbl.remove t.buffer rev
  done;
  t.frontier <- last;
  t.deliver !batch

let offer t (e : 'v Event.t) =
  if e.Event.rev > t.frontier && not (Hashtbl.mem t.buffer e.Event.rev) then begin
    Hashtbl.replace t.buffer e.Event.rev e;
    let rec drain () =
      let next_epoch = epoch_of ~granularity:t.granularity ~rev:(t.frontier + 1) in
      if epoch_complete t next_epoch && Hashtbl.length t.buffer > 0 then begin
        release_epoch t next_epoch;
        drain ()
      end
    in
    drain ()
  end
