(** Vector clocks for happens-before over named actors.

    Section 7 notes that recording causal relationships between events
    helps the tool pick perturbations that matter: perturbing an event
    causally upstream of a component's action is far likelier to expose a
    bug than perturbing a concurrent one. *)

type t

val empty : t

val tick : t -> actor:string -> t
(** Increments the actor's own component. *)

val get : t -> actor:string -> int

val merge : t -> t -> t
(** Pointwise maximum — the receive rule. *)

type relation = Equal | Before | After | Concurrent

val pp_relation : Format.formatter -> relation -> unit

val relation : t -> t -> relation
(** [relation a b] is [Before] when [a] happens-before [b]. *)

val leq : t -> t -> bool
(** [leq a b] iff every component of [a] ≤ the corresponding one in [b]. *)

val pp : Format.formatter -> t -> unit

type 'a stamped = { clock : t; item : 'a }

val causally_related : 'a stamped -> 'b stamped -> bool
(** True unless the two stamps are concurrent. *)
