type anomaly =
  | Time_travel of { seen_rev : int; got_rev : int }
  | Replay of { rev : int }

let pp_anomaly ppf = function
  | Time_travel { seen_rev; got_rev } ->
      Format.fprintf ppf "time-travel: frontier @%d but observed @%d" seen_rev got_rev
  | Replay { rev } -> Format.fprintf ppf "replay of @%d" rev

type 'v t = {
  actor : string;
  observed : 'v Event.t list;  (* newest first *)
  state : 'v State.t;
  rev : int;
  seen_revs : (int, unit) Hashtbl.t;
}

let create ~actor =
  { actor; observed = []; state = State.empty; rev = 0; seen_revs = Hashtbl.create 64 }

let actor t = t.actor

let rev t = t.rev

let state t = t.state

let observed t = List.rev t.observed

let observe t (e : 'v Event.t) =
  let anomaly =
    if Hashtbl.mem t.seen_revs e.Event.rev then Some (Replay { rev = e.Event.rev })
    else if e.Event.rev < t.rev then Some (Time_travel { seen_rev = t.rev; got_rev = e.Event.rev })
    else None
  in
  let seen_revs = Hashtbl.copy t.seen_revs in
  Hashtbl.replace seen_revs e.Event.rev ();
  let t' =
    {
      t with
      observed = e :: t.observed;
      state = State.apply t.state e;
      rev = max t.rev e.Event.rev;
      seen_revs;
    }
  in
  (t', anomaly)

let reset_to_state t snapshot =
  {
    actor = t.actor;
    observed = [];
    state = snapshot;
    rev = State.rev snapshot;
    seen_revs = Hashtbl.create 64;
  }

let staleness t ~against = max 0 (against - t.rev)
