(* The informer: list+watch sync, stream-death recovery, stale-list
   rejection (the 59848 fix), endpoint rotation. *)

let setup ?(apiservers = 1) () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let intercept = Kube.Intercept.create () in
  let etcd = Kube.Etcd.create ~net ~intercept () in
  let names = List.init apiservers (fun i -> Printf.sprintf "api-%d" (i + 1)) in
  let apis =
    List.map (fun name -> Kube.Apiserver.create ~net ~intercept ~name ~etcd:"etcd" ()) names
  in
  List.iter Kube.Apiserver.start apis;
  Dsim.Network.register net "comp" ~serve:(fun ~src:_ _ _ -> ()) ();
  (engine, net, etcd, names, apis)

let run_for engine us = Dsim.Engine.run ~until:(Dsim.Engine.now engine + us) engine

let syncs_and_streams () =
  let engine, net, etcd, names, _ = setup () in
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/a" (Kube.Resource.make_pod "a"));
  let events = ref [] in
  let informer =
    Kube.Informer.create ~net ~owner:"comp" ~endpoints:names ~prefix:"pods/"
      ~on_event:(fun e -> events := e.History.Event.rev :: !events)
      ()
  in
  Kube.Informer.start informer ();
  run_for engine 1_000_000;
  Alcotest.(check bool) "listed existing pod" true
    (Kube.Informer.get informer "pods/a" <> None);
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/b" (Kube.Resource.make_pod "b"));
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "nodes/n" (Kube.Resource.make_node "n"));
  run_for engine 500_000;
  Alcotest.(check (list int)) "streamed pod event only" [ 2 ] (List.rev !events);
  Alcotest.(check int) "frontier at 2 or beyond" 2 (min 2 (Kube.Informer.rev informer));
  Alcotest.(check bool) "running" true (Kube.Informer.running informer)

let stop_freezes () =
  let engine, net, etcd, names, _ = setup () in
  let informer = Kube.Informer.create ~net ~owner:"comp" ~endpoints:names ~prefix:"pods/" () in
  Kube.Informer.start informer ();
  run_for engine 1_000_000;
  Kube.Informer.stop informer;
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/late" (Kube.Resource.make_pod "late"));
  run_for engine 1_000_000;
  Alcotest.(check bool) "no updates after stop" true
    (Kube.Informer.get informer "pods/late" = None)

let dead_stream_triggers_relist () =
  let engine, net, etcd, names, _ = setup ~apiservers:2 () in
  let informer = Kube.Informer.create ~net ~owner:"comp" ~endpoints:names ~prefix:"pods/" () in
  Kube.Informer.start informer ();
  run_for engine 1_000_000;
  let relists_before = Kube.Informer.relists informer in
  (* Kill the stream from api-1; bookmarks stop; watchdog must rotate to
     api-2 and re-list, catching the event committed meanwhile. *)
  Dsim.Network.partition net "comp" "api-1";
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/during" (Kube.Resource.make_pod "during"));
  run_for engine 3_000_000;
  Alcotest.(check bool) "re-listed" true (Kube.Informer.relists informer > relists_before);
  Alcotest.(check string) "rotated" "api-2" (Kube.Informer.current_endpoint informer);
  Alcotest.(check bool) "caught up" true (Kube.Informer.get informer "pods/during" <> None)

let monotonic_rejects_stale_list () =
  let engine, net, etcd, names, _ = setup ~apiservers:2 () in
  let informer =
    Kube.Informer.create ~net ~owner:"comp" ~endpoints:names ~prefix:"pods/" ~monotonic:true ()
  in
  Kube.Informer.start informer ();
  run_for engine 1_000_000;
  (* Freeze api-2, commit, then force the informer onto api-2: monotonic
     mode must reject api-2's stale list and end up fresh. *)
  Dsim.Network.partition net "etcd" "api-2";
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/new" (Kube.Resource.make_pod "new"));
  run_for engine 500_000;
  Kube.Informer.stop informer;
  Kube.Informer.start informer ~endpoint:1 ();
  run_for engine 3_000_000;
  Alcotest.(check bool) "saw the new pod despite stale endpoint" true
    (Kube.Informer.get informer "pods/new" <> None)

let non_monotonic_adopts_stale_list () =
  let engine, net, etcd, names, _ = setup ~apiservers:2 () in
  let informer = Kube.Informer.create ~net ~owner:"comp" ~endpoints:names ~prefix:"pods/" () in
  Kube.Informer.start informer ();
  run_for engine 1_000_000;
  Dsim.Network.partition net "etcd" "api-2";
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/new" (Kube.Resource.make_pod "new"));
  run_for engine 500_000;
  let frontier_before = Kube.Informer.rev informer in
  Kube.Informer.stop informer;
  Kube.Informer.start informer ~endpoint:1 ();
  run_for engine 500_000;
  (* Time travel: the adopted view is older than what we had. *)
  Alcotest.(check bool) "frontier moved backwards" true
    (Kube.Informer.rev informer < frontier_before);
  Alcotest.(check bool) "stale store misses the pod" true
    (Kube.Informer.get informer "pods/new" = None)

let suites =
  [
    ( "informer",
      [
        Alcotest.test_case "syncs and streams" `Quick syncs_and_streams;
        Alcotest.test_case "stop freezes" `Quick stop_freezes;
        Alcotest.test_case "dead stream triggers relist" `Quick dead_stream_triggers_relist;
        Alcotest.test_case "monotonic rejects stale list (59848 fix)" `Quick
          monotonic_rejects_stale_list;
        Alcotest.test_case "non-monotonic adopts stale list (time travel)" `Quick
          non_monotonic_adopts_stale_list;
      ] );
  ]
