(* Planner: component targets, causal pruning, candidate structure. *)

let targets_cover_components () =
  let targets = Sieve.Planner.targets_of_config Kube.Cluster.default_config in
  let names = List.map (fun t -> t.Sieve.Planner.component) targets in
  List.iter
    (fun expected -> Alcotest.(check bool) expected true (List.mem expected names))
    [ "kubelet-1"; "kubelet-2"; "kubelet-3"; "scheduler"; "volumectl"; "cassop" ]

let targets_respect_disabled () =
  let config =
    { Kube.Cluster.default_config with Kube.Cluster.with_operator = false; with_scheduler = false }
  in
  let names =
    List.map (fun t -> t.Sieve.Planner.component) (Sieve.Planner.targets_of_config config)
  in
  Alcotest.(check bool) "no operator" false (List.mem "cassop" names);
  Alcotest.(check bool) "no scheduler" false (List.mem "scheduler" names)

let consumed_by_filters () =
  let scheduler =
    List.find
      (fun t -> String.equal t.Sieve.Planner.component "scheduler")
      (Sieve.Planner.targets_of_config Kube.Cluster.default_config)
  in
  Alcotest.(check bool) "consumes nodes" true (Sieve.Planner.consumed_by scheduler "nodes/n");
  Alcotest.(check bool) "consumes pods" true (Sieve.Planner.consumed_by scheduler "pods/p");
  Alcotest.(check bool) "ignores claims" false (Sieve.Planner.consumed_by scheduler "pvcs/c")

let events = [ (1_000, "pods/a", History.Event.Create); (2_000, "nodes/n", History.Event.Delete) ]

let candidates_cover_three_patterns () =
  let plans =
    Sieve.Planner.candidates ~config:Kube.Cluster.default_config ~events ~horizon:1_000_000 ()
  in
  let patterns =
    List.sort_uniq compare (List.map (fun p -> Sieve.Strategy.pattern p.Sieve.Planner.strategy) plans)
  in
  Alcotest.(check bool) "obs gap present" true (List.mem `Obs_gap patterns);
  Alcotest.(check bool) "staleness present" true (List.mem `Staleness patterns);
  Alcotest.(check bool) "time travel present" true (List.mem `Time_travel patterns);
  Alcotest.(check bool) "non-empty rationale" true
    (List.for_all (fun p -> p.Sieve.Planner.rationale <> "") plans)

let candidates_prune_by_consumption () =
  (* With only claims changing, kubelets (which watch pods only) must not
     be targeted. *)
  let claim_events = [ (1_000, "pvcs/c", History.Event.Create) ] in
  let plans =
    Sieve.Planner.candidates ~config:Kube.Cluster.default_config ~events:claim_events
      ~horizon:1_000_000 ()
  in
  let mentions_kubelet p =
    let s = Sieve.Strategy.describe p.Sieve.Planner.strategy in
    let has_sub needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    has_sub "kubelet" s
  in
  Alcotest.(check bool) "no kubelet candidates" false (List.exists mentions_kubelet plans)

let duplicate_anchors_collapsed () =
  let duplicated =
    [ (1_000, "pods/a", History.Event.Create); (2_000, "pods/a", History.Event.Create) ]
  in
  let count evs =
    List.length
      (Sieve.Planner.candidates ~config:Kube.Cluster.default_config ~events:evs
         ~horizon:1_000_000 ())
  in
  Alcotest.(check int) "second occurrence adds nothing"
    (count [ (1_000, "pods/a", History.Event.Create) ])
    (count duplicated)

let first_candidates_are_diverse () =
  let plans =
    Sieve.Planner.candidates ~config:Kube.Cluster.default_config ~events ~horizon:1_000_000 ()
  in
  match plans with
  | a :: b :: c :: _ ->
      let ps =
        List.sort_uniq compare
          (List.map (fun p -> Sieve.Strategy.pattern p.Sieve.Planner.strategy) [ a; b; c ])
      in
      Alcotest.(check int) "first three span the patterns" 3 (List.length ps)
  | _ -> Alcotest.fail "expected at least 3 candidates"

let suites =
  [
    ( "planner",
      [
        Alcotest.test_case "targets cover components" `Quick targets_cover_components;
        Alcotest.test_case "targets respect disabled" `Quick targets_respect_disabled;
        Alcotest.test_case "consumed_by filters" `Quick consumed_by_filters;
        Alcotest.test_case "candidates cover three patterns" `Quick
          candidates_cover_three_patterns;
        Alcotest.test_case "candidates prune by consumption" `Quick
          candidates_prune_by_consumption;
        Alcotest.test_case "duplicate anchors collapsed" `Quick duplicate_anchors_collapsed;
        Alcotest.test_case "first candidates are diverse" `Quick first_candidates_are_diverse;
      ] );
  ]
