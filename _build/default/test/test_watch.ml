(* The in-store watch hub: backlog, filters, compaction, cancellation. *)

let collect () =
  let received = ref [] in
  let deliver e = received := e :: !received in
  (received, deliver)

let revs received = List.rev_map (fun (e : string History.Event.t) -> e.History.Event.rev) !received

let live_streaming () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let received, deliver = collect () in
  (match Etcdlike.Watch.watch hub ~start_rev:0 ~deliver () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "watch failed");
  ignore (Etcdlike.Kv.put kv "a" "1");
  ignore (Etcdlike.Kv.put kv "b" "2");
  Alcotest.(check (list int)) "live events" [ 1; 2 ] (revs received)

let backlog_then_live () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  ignore (Etcdlike.Kv.put kv "a" "1");
  ignore (Etcdlike.Kv.put kv "b" "2");
  let received, deliver = collect () in
  (match Etcdlike.Watch.watch hub ~start_rev:1 ~deliver () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "watch failed");
  ignore (Etcdlike.Kv.put kv "c" "3");
  Alcotest.(check (list int)) "backlog(2) + live(3)" [ 2; 3 ] (revs received)

let prefix_filter () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let received, deliver = collect () in
  ignore (Etcdlike.Watch.watch hub ~prefix:"pods/" ~start_rev:0 ~deliver ());
  ignore (Etcdlike.Kv.put kv "pods/a" "1");
  ignore (Etcdlike.Kv.put kv "nodes/x" "2");
  ignore (Etcdlike.Kv.put kv "pods/b" "3");
  Alcotest.(check (list int)) "pods only" [ 1; 3 ] (revs received)

let compacted_start_rejected () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  for i = 1 to 10 do
    ignore (Etcdlike.Kv.put kv (Printf.sprintf "k%d" i) "v")
  done;
  Etcdlike.Kv.compact_keep_last kv 2;
  let _, deliver = collect () in
  match Etcdlike.Watch.watch hub ~start_rev:3 ~deliver () with
  | Error (`Compacted 8) -> ()
  | _ -> Alcotest.fail "expected Compacted 8"

let cancel_stops_delivery () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let received, deliver = collect () in
  (match Etcdlike.Watch.watch hub ~start_rev:0 ~deliver () with
  | Ok handle ->
      ignore (Etcdlike.Kv.put kv "a" "1");
      Etcdlike.Watch.cancel hub handle;
      ignore (Etcdlike.Kv.put kv "b" "2")
  | Error _ -> Alcotest.fail "watch failed");
  Alcotest.(check (list int)) "only first" [ 1 ] (revs received);
  Alcotest.(check int) "no active watchers" 0 (Etcdlike.Watch.active hub)

let no_duplicates_on_fan_out () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let received, deliver = collect () in
  ignore (Etcdlike.Watch.watch hub ~start_rev:0 ~deliver ());
  let e = Etcdlike.Kv.put kv "a" "1" in
  (* Replaying an already-sent event through fan_out must not re-deliver. *)
  Etcdlike.Watch.fan_out hub e;
  Alcotest.(check (list int)) "delivered once" [ 1 ] (revs received)

let multiple_watchers_independent () =
  let kv = Etcdlike.Kv.create () in
  let hub = Etcdlike.Watch.create kv in
  let r1, d1 = collect () in
  let r2, d2 = collect () in
  ignore (Etcdlike.Watch.watch hub ~prefix:"pods/" ~start_rev:0 ~deliver:d1 ());
  ignore (Etcdlike.Watch.watch hub ~prefix:"nodes/" ~start_rev:0 ~deliver:d2 ());
  ignore (Etcdlike.Kv.put kv "pods/a" "1");
  ignore (Etcdlike.Kv.put kv "nodes/x" "2");
  Alcotest.(check (list int)) "watcher 1" [ 1 ] (revs r1);
  Alcotest.(check (list int)) "watcher 2" [ 2 ] (revs r2);
  Alcotest.(check int) "two active" 2 (Etcdlike.Watch.active hub)

let suites =
  [
    ( "watch",
      [
        Alcotest.test_case "live streaming" `Quick live_streaming;
        Alcotest.test_case "backlog then live" `Quick backlog_then_live;
        Alcotest.test_case "prefix filter" `Quick prefix_filter;
        Alcotest.test_case "compacted start rejected" `Quick compacted_start_rejected;
        Alcotest.test_case "cancel stops delivery" `Quick cancel_stops_delivery;
        Alcotest.test_case "no duplicates on fan_out" `Quick no_duplicates_on_fan_out;
        Alcotest.test_case "multiple watchers independent" `Quick multiple_watchers_independent;
      ] );
  ]
