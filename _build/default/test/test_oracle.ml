(* Oracle detection logic, driven by targeted perturbations. *)

let case_runs ~config ~workload ~horizon strategy =
  Sieve.Runner.run_test (Sieve.Runner.base_test ~config ~workload ~horizon strategy)

let violation_metadata () =
  let v = Sieve.Oracle.Duplicate_pod { pod = "p"; kubelets = [ "a"; "b" ] } in
  Alcotest.(check string) "bug id" "K8s-59848" (Sieve.Oracle.bug_id v);
  Alcotest.(check string) "key" "dup:p" (Sieve.Oracle.key v);
  Alcotest.(check bool) "describe" true (String.length (Sieve.Oracle.describe v) > 0);
  Alcotest.(check string) "livelock id" "K8s-56261"
    (Sieve.Oracle.bug_id (Sieve.Oracle.Scheduler_livelock { pod = "p"; node = "n"; failures = 9 }));
  Alcotest.(check string) "leak id" "CA-398"
    (Sieve.Oracle.bug_id (Sieve.Oracle.Pvc_leak { pvc = "v"; owner_pod = "p" }));
  Alcotest.(check string) "decom id" "CA-400"
    (Sieve.Oracle.bug_id (Sieve.Oracle.Wrong_decommission { dc = "d"; marked = 1; live_max = 2 }));
  Alcotest.(check string) "claim id" "CA-402"
    (Sieve.Oracle.bug_id (Sieve.Oracle.Live_claim_deleted { pvc = "v"; owner_pod = "p" }))

let clean_run_no_violations () =
  let outcome =
    case_runs ~config:Kube.Cluster.default_config
      ~workload:(Kube.Workload.pod_churn ~n:3 ())
      ~horizon:8_000_000 Sieve.Strategy.No_perturbation
  in
  Alcotest.(check int) "clean" 0 (List.length outcome.Sieve.Runner.violations)

let mirror_tracks_truth () =
  let cluster = Kube.Cluster.create () in
  let oracle = Sieve.Oracle.attach cluster in
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:2 ());
  Kube.Cluster.run cluster ~until:8_000_000;
  Alcotest.(check (list string)) "mirror = truth"
    (History.State.keys (Kube.Cluster.truth cluster))
    (History.State.keys (Sieve.Oracle.mirror oracle))

let transient_duplicate_not_flagged () =
  (* A short partition makes kubelet-1 miss a deletion; the duplicate
     self-heals when the stream watchdog re-lists. The oracle must stay
     quiet: this is degradation, not the 59848 safety bug. *)
  let config = { Kube.Cluster.default_config with Kube.Cluster.nodes = 2 } in
  let outcome =
    case_runs ~config
      ~workload:
        (Kube.Workload.rolling_upgrade ~start:1_000_000 ~pod:"p1" ~from_node:"node-1"
           ~to_node:"node-2" ())
      ~horizon:8_000_000
      (Sieve.Strategy.Partition_window
         { a = "kubelet-1"; b = "api-1"; from = 2_900_000; until = 3_600_000 })
  in
  Alcotest.(check int) "quiet" 0 (List.length outcome.Sieve.Runner.violations)

let persistent_duplicate_flagged () =
  let case = Sieve.Bugs.k8s_59848 () in
  let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
  match Sieve.Runner.(outcome.violations) with
  | (_, Sieve.Oracle.Duplicate_pod { pod = "p1"; kubelets }) :: _ ->
      Alcotest.(check (list string)) "both kubelets" [ "kubelet-1"; "kubelet-2" ] kubelets
  | _ -> Alcotest.fail "expected duplicate pod violation"

let livelock_requires_missing_node () =
  (* Bind failures against a node that still exists must not count. *)
  let outcome =
    case_runs ~config:Kube.Cluster.default_config
      ~workload:(Kube.Workload.pod_churn ~n:3 ())
      ~horizon:8_000_000 Sieve.Strategy.No_perturbation
  in
  let is_livelock = function Sieve.Oracle.Scheduler_livelock _ -> true | _ -> false in
  Alcotest.(check bool) "no livelock" false
    (List.exists (fun (_, v) -> is_livelock v) outcome.Sieve.Runner.violations)

let leak_needs_grace_period () =
  (* The mark is hidden from volumectl, so the leak is real — but it must
     only be reported after the grace period, not instantly. *)
  let case = Sieve.Bugs.ca_398 () in
  let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
  match
    List.find_opt
      (fun (_, v) -> match v with Sieve.Oracle.Pvc_leak _ -> true | _ -> false)
      outcome.Sieve.Runner.violations
  with
  | Some (time, _) ->
      (* Pod finalized around 3.5 s; grace is 2 s. *)
      Alcotest.(check bool) "after grace" true (time >= 5_000_000)
  | None -> Alcotest.fail "expected leak"

let violations_deduplicated () =
  let case = Sieve.Bugs.k8s_56261 () in
  let outcome = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
  let keys =
    List.map (fun (_, v) -> Sieve.Oracle.key v) outcome.Sieve.Runner.violations
  in
  Alcotest.(check (list string)) "unique keys" (List.sort_uniq compare keys)
    (List.sort compare keys)

let legitimate_claim_deletion_not_flagged () =
  (* Scale down deletes the decommissioned member's claim: legal. *)
  let outcome =
    case_runs ~config:Kube.Cluster.default_config
      ~workload:
        (Kube.Workload.cassandra_scale ~start:1_000_000 ~dc:"dc"
           ~steps:[ (0, 2); (3_000_000, 1) ]
           ())
      ~horizon:10_000_000 Sieve.Strategy.No_perturbation
  in
  Alcotest.(check int) "quiet" 0 (List.length outcome.Sieve.Runner.violations)

let suites =
  [
    ( "oracle",
      [
        Alcotest.test_case "violation metadata" `Quick violation_metadata;
        Alcotest.test_case "clean run has no violations" `Quick clean_run_no_violations;
        Alcotest.test_case "mirror tracks truth" `Quick mirror_tracks_truth;
        Alcotest.test_case "transient duplicate not flagged" `Quick
          transient_duplicate_not_flagged;
        Alcotest.test_case "persistent duplicate flagged" `Quick persistent_duplicate_flagged;
        Alcotest.test_case "livelock requires missing node" `Quick livelock_requires_missing_node;
        Alcotest.test_case "leak needs grace period" `Quick leak_needs_grace_period;
        Alcotest.test_case "violations deduplicated" `Quick violations_deduplicated;
        Alcotest.test_case "legitimate claim deletion not flagged" `Quick
          legitimate_claim_deletion_not_flagged;
      ] );
  ]
