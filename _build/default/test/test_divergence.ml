(* Divergence series statistics. *)

open History

let record_series d specs =
  List.iter (fun (time, truth, view) -> Divergence.record d ~time ~truth_rev:truth ~view_rev:view) specs

let lag_statistics () =
  let d = Divergence.create () in
  record_series d [ (0, 10, 10); (1, 20, 15); (2, 30, 20); (3, 30, 30) ];
  Alcotest.(check int) "max lag" 10 (Divergence.max_lag d);
  Alcotest.(check (float 0.001)) "mean lag" 3.75 (Divergence.mean_lag d);
  Alcotest.(check (float 0.001)) "stale fraction" 0.5 (Divergence.stale_fraction d)

let empty_series () =
  let d = Divergence.create () in
  Alcotest.(check int) "max" 0 (Divergence.max_lag d);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Divergence.mean_lag d);
  Alcotest.(check (float 0.0)) "fraction" 0.0 (Divergence.stale_fraction d)

let view_never_behind () =
  let d = Divergence.create () in
  record_series d [ (0, 5, 9) ];
  Alcotest.(check int) "lag clamped at 0" 0 (Divergence.max_lag d)

let time_travel_points_found () =
  let d = Divergence.create () in
  (* View revision drops from 20 to 12 at t=2 — a restart onto a stale
     source (Figure 3b). *)
  record_series d [ (0, 10, 10); (1, 20, 20); (2, 21, 12); (3, 22, 22) ];
  match Divergence.time_travel_points d with
  | [ p ] ->
      Alcotest.(check int) "at t=2" 2 p.Divergence.time;
      Alcotest.(check int) "view rev 12" 12 p.Divergence.view_rev
  | other -> Alcotest.fail (Printf.sprintf "expected 1 point, got %d" (List.length other))

let monotone_series_has_no_travel () =
  let d = Divergence.create () in
  record_series d [ (0, 1, 1); (1, 2, 2); (2, 3, 3) ];
  Alcotest.(check int) "none" 0 (List.length (Divergence.time_travel_points d))

let samples_in_order () =
  let d = Divergence.create () in
  record_series d [ (5, 1, 1); (6, 2, 2) ];
  Alcotest.(check (list int)) "chronological" [ 5; 6 ]
    (List.map (fun s -> s.Divergence.time) (Divergence.samples d))

let suites =
  [
    ( "divergence",
      [
        Alcotest.test_case "lag statistics" `Quick lag_statistics;
        Alcotest.test_case "empty series" `Quick empty_series;
        Alcotest.test_case "view ahead clamps to 0" `Quick view_never_behind;
        Alcotest.test_case "time travel points found" `Quick time_travel_points_found;
        Alcotest.test_case "monotone series has no travel" `Quick monotone_series_has_no_travel;
        Alcotest.test_case "samples in order" `Quick samples_in_order;
      ] );
  ]
