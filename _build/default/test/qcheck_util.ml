(* Deterministic qcheck: property inputs are part of the repository's
   reproducibility contract, so the generator state is fixed. (The raft
   no-op bug was found by a lucky nondeterministic draw; after fixing it
   we swept the full seed space explicitly and pinned the generator.) *)
let to_alcotest test = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260704 |]) test
