(* Self-stabilization property: with every fix enabled, an arbitrary
   healed fault plan (crashes + partitions) leaves no persistent
   violation, and once the network is quiet every cache converges back
   to the ground truth. This is the system-level qcheck: each case is a
   full cluster run under a random (but seeded, hence reproducible)
   fault schedule. *)

let fixed_config =
  {
    Kube.Cluster.default_config with
    Kube.Cluster.scheduler_fixed = true;
    volume_fixed = true;
    operator_fixed = true;
    kubelet_monotonic = true;
    with_replicaset = true;
    with_node_controller = true;
    with_deployment = true;
    replicaset_fixed = true;
    node_controller_fixed = true;
  }

let components =
  [ "kubelet-1"; "kubelet-2"; "kubelet-3"; "scheduler"; "volumectl"; "cassop"; "rsctl";
    "nodectl"; "depctl"; "api-1"; "api-2" ]

let workload =
  Kube.Workload.pods_with_claims ~start:1_000_000 ~lifetime:2_000_000 ~n:2 ()
  @ Kube.Workload.cassandra_scale ~start:1_200_000 ~dc:"dc" ~steps:[ (0, 2) ] ()
  @ Kube.Workload.replicaset_scale ~start:1_400_000 ~rs:"web" ~steps:[ (0, 2) ] ()
  @ Kube.Workload.deployment_rollout ~start:1_600_000 ~dep:"front" ~replicas:2 ~generations:2
      ~gap:2_000_000 ()

let run_under_faults seed =
  let config = { fixed_config with Kube.Cluster.seed = Int64.of_int (1 + abs seed) } in
  let cluster = Kube.Cluster.create ~config () in
  let oracle = Sieve.Oracle.attach cluster in
  let plan_rng = Dsim.Rng.create (Int64.of_int (97 * (1 + abs seed))) in
  let plan =
    Dsim.Fault.random_plan plan_rng ~nodes:components ~horizon:4_000_000 ~crashes:2
      ~partitions:2 ~min_downtime:100_000 ~max_downtime:800_000 ()
  in
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster workload;
  Dsim.Fault.apply (Kube.Cluster.net cluster) plan;
  (* Belt and braces: everything heals, then a long quiet tail. *)
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:5_000_000 (fun () ->
         Dsim.Network.heal_all (Kube.Cluster.net cluster);
         List.iter (fun c -> Dsim.Network.restart (Kube.Cluster.net cluster) c) components));
  Kube.Cluster.run cluster ~until:14_000_000;
  (cluster, oracle, plan)

let pp_plan plan = Format.asprintf "%a" Dsim.Fault.pp_plan plan

let no_persistent_violations =
  QCheck.Test.make ~name:"all fixes on: healed faults leave no violation" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let _, oracle, plan = run_under_faults seed in
      if Sieve.Oracle.violated oracle then
        QCheck.Test.fail_reportf "violations under plan:@.%s@.%s" (pp_plan plan)
          (String.concat "\n"
             (List.map (fun (_, v) -> Sieve.Oracle.describe v) (Sieve.Oracle.violations oracle)))
      else true)

let caches_converge =
  QCheck.Test.make ~name:"all fixes on: caches converge after quiet period" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let cluster, _, plan = run_under_faults seed in
      let rev = Kube.Cluster.truth_rev cluster in
      let lagging =
        List.filter_map
          (fun api ->
            if Kube.Apiserver.rev api < rev then
              Some (Printf.sprintf "%s at %d < %d" (Kube.Apiserver.name api)
                      (Kube.Apiserver.rev api) rev)
            else None)
          (Kube.Cluster.apiservers cluster)
      in
      if lagging <> [] then
        QCheck.Test.fail_reportf "stale apiservers %s under plan:@.%s"
          (String.concat ", " lagging) (pp_plan plan)
      else true)

let execution_matches_truth =
  QCheck.Test.make ~name:"all fixes on: kubelets run exactly the bound pods" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let cluster, _, plan = run_under_faults seed in
      let truth = Kube.Cluster.truth cluster in
      let expected_for node =
        History.State.fold
          (fun _ (v, _) acc ->
            match v with
            | Kube.Resource.Pod p
              when p.Kube.Resource.node = Some node
                   && p.Kube.Resource.deletion_timestamp = None
                   && p.Kube.Resource.phase <> Kube.Resource.Failed
                   && p.Kube.Resource.phase <> Kube.Resource.Succeeded ->
                p.Kube.Resource.pod_name :: acc
            | _ -> acc)
          truth []
        |> List.sort String.compare
      in
      let mismatches =
        List.filter_map
          (fun k ->
            let want = expected_for (Kube.Kubelet.node_name k) in
            let got = Kube.Kubelet.running k in
            if want <> got then
              Some (Printf.sprintf "%s wants [%s] got [%s]" (Kube.Kubelet.name k)
                      (String.concat "," want) (String.concat "," got))
            else None)
          (Kube.Cluster.kubelets cluster)
      in
      if mismatches <> [] then
        QCheck.Test.fail_reportf "execution drift: %s@.plan:@.%s"
          (String.concat "; " mismatches) (pp_plan plan)
      else true)

let suites =
  [
    ( "convergence",
      [
        Qcheck_util.to_alcotest no_persistent_violations;
        Qcheck_util.to_alcotest caches_converge;
        Qcheck_util.to_alcotest execution_matches_truth;
      ] );
  ]
