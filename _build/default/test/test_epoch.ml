(* Epoch-bounded delivery: frontier arithmetic and all-or-nothing
   batching (the Section 6.2 programming model). *)

open History

let ev rev = Event.make ~rev ~key:(Printf.sprintf "k%d" rev) ~op:Event.Create (Some rev)

let epoch_arithmetic () =
  Alcotest.(check int) "rev 1 -> epoch 0" 0 (Epoch.epoch_of ~granularity:5 ~rev:1);
  Alcotest.(check int) "rev 5 -> epoch 0" 0 (Epoch.epoch_of ~granularity:5 ~rev:5);
  Alcotest.(check int) "rev 6 -> epoch 1" 1 (Epoch.epoch_of ~granularity:5 ~rev:6);
  Alcotest.(check int) "epoch 1 ends at 10" 10 (Epoch.epoch_end ~granularity:5 ~epoch:1);
  Alcotest.(check int) "frontier at head 12" 10
    (Epoch.deliverable_frontier ~granularity:5 ~head_rev:12);
  Alcotest.(check int) "frontier at head 4" 0
    (Epoch.deliverable_frontier ~granularity:5 ~head_rev:4)

let invalid_granularity () =
  Alcotest.check_raises "zero granularity"
    (Invalid_argument "Epoch.epoch_of: granularity must be positive") (fun () ->
      ignore (Epoch.epoch_of ~granularity:0 ~rev:1))

let batches_whole_epochs_in_order () =
  let batches = ref [] in
  let b = Epoch.create ~granularity:3 ~deliver:(fun batch -> batches := batch :: !batches) in
  List.iter (fun rev -> Epoch.offer b (ev rev)) [ 2; 1; 3 ];
  Alcotest.(check int) "one batch" 1 (List.length !batches);
  (match !batches with
  | [ batch ] ->
      Alcotest.(check (list int)) "ordered 1,2,3" [ 1; 2; 3 ]
        (List.map (fun (e : int Event.t) -> e.Event.rev) batch)
  | _ -> assert false);
  Alcotest.(check int) "frontier 3" 3 (Epoch.delivered_frontier b)

let holds_incomplete_epochs () =
  let delivered = ref 0 in
  let b = Epoch.create ~granularity:3 ~deliver:(fun batch -> delivered := !delivered + List.length batch) in
  Epoch.offer b (ev 1);
  Epoch.offer b (ev 3);
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  Alcotest.(check int) "buffered 2" 2 (Epoch.buffered b);
  Epoch.offer b (ev 2);
  Alcotest.(check int) "whole epoch out" 3 !delivered;
  Alcotest.(check int) "buffer drained" 0 (Epoch.buffered b)

let consecutive_epochs_cascade () =
  let batches = ref [] in
  let b = Epoch.create ~granularity:2 ~deliver:(fun batch -> batches := batch :: !batches) in
  (* Fill epoch 1 fully before epoch 0 completes. *)
  List.iter (fun rev -> Epoch.offer b (ev rev)) [ 3; 4; 2 ];
  Alcotest.(check int) "still waiting on rev 1" 0 (List.length !batches);
  Epoch.offer b (ev 1);
  Alcotest.(check int) "both epochs cascade" 2 (List.length !batches);
  Alcotest.(check int) "frontier 4" 4 (Epoch.delivered_frontier b)

let duplicates_ignored () =
  let count = ref 0 in
  let b = Epoch.create ~granularity:2 ~deliver:(fun batch -> count := !count + List.length batch) in
  Epoch.offer b (ev 1);
  Epoch.offer b (ev 1);
  Epoch.offer b (ev 2);
  Epoch.offer b (ev 2);
  Alcotest.(check int) "each rev once" 2 !count

let late_events_from_delivered_epochs_ignored () =
  let count = ref 0 in
  let b = Epoch.create ~granularity:2 ~deliver:(fun batch -> count := !count + List.length batch) in
  List.iter (fun rev -> Epoch.offer b (ev rev)) [ 1; 2 ];
  Epoch.offer b (ev 1);
  Alcotest.(check int) "replay ignored" 2 !count

let qcheck_delivery_multiple_of_granularity =
  QCheck.Test.make ~name:"frontier is always a multiple of granularity" ~count:200
    QCheck.(pair (int_range 1 7) (list_of_size Gen.(0 -- 40) (int_range 1 40)))
    (fun (g, revs) ->
      let b = Epoch.create ~granularity:g ~deliver:(fun _ -> ()) in
      List.iter (fun rev -> Epoch.offer b (ev rev)) revs;
      Epoch.delivered_frontier b mod g = 0)

let qcheck_no_partial_epoch_delivered =
  QCheck.Test.make ~name:"every delivered batch is one complete epoch" ~count:200
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(0 -- 40) (int_range 1 30)))
    (fun (g, revs) ->
      let ok = ref true in
      let b =
        Epoch.create ~granularity:g ~deliver:(fun batch ->
            let rs = List.map (fun (e : int Event.t) -> e.Event.rev) batch in
            match rs with
            | [] -> ok := false
            | first :: _ ->
                let expected = List.init g (fun i -> first + i) in
                if rs <> expected || (first - 1) mod g <> 0 then ok := false)
      in
      List.iter (fun rev -> Epoch.offer b (ev rev)) revs;
      !ok)

let suites =
  [
    ( "epoch",
      [
        Alcotest.test_case "epoch arithmetic" `Quick epoch_arithmetic;
        Alcotest.test_case "invalid granularity" `Quick invalid_granularity;
        Alcotest.test_case "batches whole epochs in order" `Quick batches_whole_epochs_in_order;
        Alcotest.test_case "holds incomplete epochs" `Quick holds_incomplete_epochs;
        Alcotest.test_case "consecutive epochs cascade" `Quick consecutive_epochs_cascade;
        Alcotest.test_case "duplicates ignored" `Quick duplicates_ignored;
        Alcotest.test_case "late replays ignored" `Quick late_events_from_delivered_epochs_ignored;
        Qcheck_util.to_alcotest qcheck_delivery_multiple_of_granularity;
        Qcheck_util.to_alcotest qcheck_no_partial_epoch_delivered;
      ] );
  ]
