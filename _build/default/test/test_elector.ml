(* Lease-based leader election: exclusivity, failover cost, safe belief
   handoff. *)

let setup ?(candidates = 2) ?(ttl = 1_000_000) () =
  let config = { Kube.Cluster.default_config with Kube.Cluster.with_operator = false } in
  let cluster = Kube.Cluster.create ~config () in
  Kube.Cluster.start cluster;
  let electors =
    List.init candidates (fun i ->
        Kube.Elector.create
          ~net:(Kube.Cluster.net cluster)
          ~name:(Printf.sprintf "cand-%d" (i + 1))
          ~lock:"controller" ~endpoints:(Kube.Cluster.apiserver_names cluster) ~ttl ())
  in
  List.iter Kube.Elector.start electors;
  (cluster, electors)

let believers electors = List.filter Kube.Elector.believes_leader electors

let run_to cluster t = Kube.Cluster.run cluster ~until:t

let single_candidate_elected () =
  let cluster, electors = setup ~candidates:1 () in
  run_to cluster 2_000_000;
  Alcotest.(check int) "leader" 1 (List.length (believers electors));
  (* Lock object visible in the store. *)
  match History.State.get (Kube.Cluster.truth cluster) (Kube.Resource.lock_key "controller") with
  | Some (Kube.Resource.Lock l) ->
      Alcotest.(check string) "holder" "cand-1" l.Kube.Resource.holder
  | _ -> Alcotest.fail "lock object missing"

let exclusive_leadership () =
  let cluster, electors = setup ~candidates:3 () in
  run_to cluster 3_000_000;
  Alcotest.(check int) "exactly one believer" 1 (List.length (believers electors))

let renewal_keeps_leadership () =
  let cluster, electors = setup ~candidates:2 ~ttl:500_000 () in
  run_to cluster 5_000_000;
  (* Leadership never changed hands in a calm run despite a short TTL. *)
  let total_transitions =
    List.fold_left (fun acc e -> acc + List.length (Kube.Elector.transitions e)) 0 electors
  in
  Alcotest.(check int) "one election total" 1 total_transitions

let crash_failover_within_ttl () =
  let ttl = 1_000_000 in
  let cluster, electors = setup ~candidates:2 ~ttl () in
  run_to cluster 2_000_000;
  let leader = List.hd (believers electors) in
  let crash_at = 2_000_000 in
  Dsim.Network.crash (Kube.Cluster.net cluster) (Kube.Elector.name leader);
  run_to cluster 8_000_000;
  let standby =
    List.find (fun e -> not (String.equal (Kube.Elector.name e) (Kube.Elector.name leader)))
      electors
  in
  Alcotest.(check bool) "standby took over" true (Kube.Elector.believes_leader standby);
  match List.find_opt snd (Kube.Elector.transitions standby) with
  | Some (at, _) ->
      let takeover = at - crash_at in
      Alcotest.(check bool)
        (Printf.sprintf "takeover %dms blocked by lease term" (takeover / 1000))
        true
        (takeover >= ttl / 2 && takeover <= (3 * ttl) + 500_000)
  | None -> Alcotest.fail "standby never elected"

let graceful_stop_is_fast () =
  let ttl = 2_000_000 in
  let cluster, electors = setup ~candidates:2 ~ttl () in
  run_to cluster 2_500_000;
  let leader = List.hd (believers electors) in
  let resigned_at = 2_500_000 in
  Kube.Elector.stop leader;
  run_to cluster 4_500_000;
  let standby =
    List.find (fun e -> not (String.equal (Kube.Elector.name e) (Kube.Elector.name leader)))
      electors
  in
  Alcotest.(check bool) "standby took over" true (Kube.Elector.believes_leader standby);
  match List.find_opt snd (Kube.Elector.transitions standby) with
  | Some (at, _) ->
      Alcotest.(check bool) "takeover well under the TTL" true (at - resigned_at < ttl)
  | None -> Alcotest.fail "standby never elected"

(* The paper's lease trade-off: a partitioned leader's *belief* dies at
   its local deadline, at or before the store-side expiry — so beliefs
   never overlap — but the lock stays blocked for up to a TTL. *)
let beliefs_never_overlap_under_partition () =
  let ttl = 1_000_000 in
  let cluster, electors = setup ~candidates:2 ~ttl () in
  run_to cluster 2_000_000;
  let leader = List.hd (believers electors) in
  let net = Kube.Cluster.net cluster in
  (* Cut the leader from both apiservers: renewals stop, belief times out. *)
  List.iter
    (fun api -> Dsim.Network.partition net (Kube.Elector.name leader) api)
    (Kube.Cluster.apiserver_names cluster);
  run_to cluster 9_000_000;
  let standby =
    List.find (fun e -> not (String.equal (Kube.Elector.name e) (Kube.Elector.name leader)))
      electors
  in
  Alcotest.(check bool) "old leader stepped down" false (Kube.Elector.believes_leader leader);
  Alcotest.(check bool) "standby leads" true (Kube.Elector.believes_leader standby);
  let lost_at =
    List.find_map (fun (at, gained) -> if gained then None else Some at)
      (Kube.Elector.transitions leader)
  in
  let gained_at = List.find_map (fun (at, gained) -> if gained then Some at else None)
      (Kube.Elector.transitions standby)
  in
  match lost_at, gained_at with
  | Some lost, Some gained ->
      Alcotest.(check bool)
        (Printf.sprintf "belief handoff safe (lost %dms <= gained %dms)" (lost / 1000)
           (gained / 1000))
        true (lost <= gained)
  | _ -> Alcotest.fail "missing transitions"

let suites =
  [
    ( "elector",
      [
        Alcotest.test_case "single candidate elected" `Quick single_candidate_elected;
        Alcotest.test_case "exclusive leadership" `Quick exclusive_leadership;
        Alcotest.test_case "renewal keeps leadership" `Quick renewal_keeps_leadership;
        Alcotest.test_case "crash failover within lease term" `Quick crash_failover_within_ttl;
        Alcotest.test_case "graceful stop is fast" `Quick graceful_stop_is_fast;
        Alcotest.test_case "beliefs never overlap under partition" `Quick
          beliefs_never_overlap_under_partition;
      ] );
  ]
