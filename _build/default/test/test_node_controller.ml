(* Node controller: legitimate failover vs stale-view evictions. *)

let boot ?(quorum_guard = false) () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.with_node_controller = true;
      node_controller_fixed = quorum_guard;
    }
  in
  let cluster = Kube.Cluster.create ~config () in
  Kube.Cluster.start cluster;
  cluster

let pod_phase cluster name =
  match History.State.get (Kube.Cluster.truth cluster) (Kube.Resource.pod_key name) with
  | Some (Kube.Resource.Pod p) -> Some p.Kube.Resource.phase
  | _ -> None

let fails_pods_of_deleted_node () =
  let cluster = boot () in
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.create_pod ~node:"node-2" cluster "victim"));
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:2_500_000 (fun () ->
         Kube.Workload.delete_node cluster "node-2"));
  Kube.Cluster.run cluster ~until:6_000_000;
  Alcotest.(check (option bool)) "pod failed" (Some true)
    (Option.map (fun p -> p = Kube.Resource.Failed) (pod_phase cluster "victim"));
  let nc = Option.get (Kube.Cluster.node_controller cluster) in
  Alcotest.(check (list (pair string string))) "eviction recorded" [ ("victim", "node-2") ]
    (Kube.Node_controller.evictions nc);
  (* The kubelet stopped the failed pod. *)
  match Kube.Cluster.kubelet_for_node cluster "node-2" with
  | Some k -> Alcotest.(check bool) "stopped" false (Kube.Kubelet.is_running k "victim")
  | None -> Alcotest.fail "kubelet missing"

let leaves_healthy_pods_alone () =
  let cluster = boot () in
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.create_pod ~node:"node-1" cluster "healthy"));
  Kube.Cluster.run cluster ~until:5_000_000;
  Alcotest.(check (option bool)) "still running" (Some true)
    (Option.map (fun p -> p = Kube.Resource.Running) (pod_phase cluster "healthy"));
  let nc = Option.get (Kube.Cluster.node_controller cluster) in
  Alcotest.(check int) "no evictions" 0 (List.length (Kube.Node_controller.evictions nc))

let strikes_protect_against_blips () =
  (* The node view must miss the node on several consecutive passes; a
     freshly created binding to a node the controller has not yet seen
     does not get shot within one pass. *)
  let cluster = boot () in
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.create_node cluster "node-9"));
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_050_000 (fun () ->
         Kube.Workload.create_pod ~node:"node-9" cluster "early"));
  Kube.Cluster.run cluster ~until:5_000_000;
  let nc = Option.get (Kube.Cluster.node_controller cluster) in
  Alcotest.(check int) "no evictions for the race" 0
    (List.length (Kube.Node_controller.evictions nc))

let blind_spot_evicts_healthy_pod () =
  let cluster = boot () in
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.observability_gap ~dst:"nodectl" ~key_prefix:"nodes/node-9" ~from:0
       ~until:8_000_000 ());
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.create_node cluster "node-9"));
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:2_000_000 (fun () ->
         Kube.Workload.create_pod ~node:"node-9" cluster "unlucky"));
  Kube.Cluster.run cluster ~until:6_000_000;
  Alcotest.(check (option bool)) "healthy pod failed" (Some true)
    (Option.map (fun p -> p = Kube.Resource.Failed) (pod_phase cluster "unlucky"))

let quorum_guard_aborts () =
  let cluster = boot ~quorum_guard:true () in
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.observability_gap ~dst:"nodectl" ~key_prefix:"nodes/node-9" ~from:0
       ~until:8_000_000 ());
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.create_node cluster "node-9"));
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:2_000_000 (fun () ->
         Kube.Workload.create_pod ~node:"node-9" cluster "lucky"));
  Kube.Cluster.run cluster ~until:6_000_000;
  Alcotest.(check (option bool)) "pod untouched" (Some false)
    (Option.map (fun p -> p = Kube.Resource.Failed) (pod_phase cluster "lucky"));
  let nc = Option.get (Kube.Cluster.node_controller cluster) in
  Alcotest.(check int) "no evictions" 0 (List.length (Kube.Node_controller.evictions nc))

let suites =
  [
    ( "node-controller",
      [
        Alcotest.test_case "fails pods of deleted node" `Quick fails_pods_of_deleted_node;
        Alcotest.test_case "leaves healthy pods alone" `Quick leaves_healthy_pods_alone;
        Alcotest.test_case "strikes protect against blips" `Quick strikes_protect_against_blips;
        Alcotest.test_case "blind spot evicts healthy pod" `Quick blind_spot_evicts_healthy_pod;
        Alcotest.test_case "quorum guard aborts wrongful eviction" `Quick quorum_guard_aborts;
      ] );
  ]
