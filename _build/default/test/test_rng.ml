(* Determinism and distribution sanity for the SplitMix64 generator. *)

let draw_n rng n f = List.init n (fun _ -> f rng)

let same_seed_same_stream () =
  let a = Dsim.Rng.create 7L and b = Dsim.Rng.create 7L in
  Alcotest.(check (list int64))
    "identical streams"
    (draw_n a 32 Dsim.Rng.int64)
    (draw_n b 32 Dsim.Rng.int64)

let different_seed_different_stream () =
  let a = Dsim.Rng.create 7L and b = Dsim.Rng.create 8L in
  Alcotest.(check bool)
    "streams differ" false
    (draw_n a 8 Dsim.Rng.int64 = draw_n b 8 Dsim.Rng.int64)

let copy_is_independent () =
  let a = Dsim.Rng.create 7L in
  let b = Dsim.Rng.copy a in
  let from_a = draw_n a 8 Dsim.Rng.int64 in
  let from_b = draw_n b 8 Dsim.Rng.int64 in
  Alcotest.(check (list int64)) "copy replays the same stream" from_a from_b

let split_diverges () =
  let a = Dsim.Rng.create 7L in
  let child = Dsim.Rng.split a in
  Alcotest.(check bool)
    "child stream differs from parent" false
    (draw_n a 8 Dsim.Rng.int64 = draw_n child 8 Dsim.Rng.int64)

let int_bound_zero_rejected () =
  let rng = Dsim.Rng.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Dsim.Rng.int rng 0))

let pick_empty_rejected () =
  let rng = Dsim.Rng.create 1L in
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Dsim.Rng.pick rng [||]))

let chance_extremes () =
  let rng = Dsim.Rng.create 1L in
  Alcotest.(check bool) "p=0 never" false (Dsim.Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Dsim.Rng.chance rng 1.0)

let shuffle_is_permutation () =
  let rng = Dsim.Rng.create 3L in
  let a = Array.init 50 (fun i -> i) in
  Dsim.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted

let exponential_mean () =
  let rng = Dsim.Rng.create 11L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dsim.Rng.exponential rng ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f within 5%% of 5.0" mean)
    true
    (abs_float (mean -. 5.0) < 0.25)

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"int stays in [0, bound)" ~count:500
    QCheck.(pair int64 (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Dsim.Rng.create seed in
      let v = Dsim.Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_float_in_bounds =
  QCheck.Test.make ~name:"float stays in [0, bound)" ~count:500
    QCheck.(pair int64 (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let rng = Dsim.Rng.create seed in
      let v = Dsim.Rng.float rng bound in
      v >= 0.0 && v < bound)

let qcheck_pick_member =
  QCheck.Test.make ~name:"pick returns a member" ~count:200
    QCheck.(pair int64 (list_of_size Gen.(1 -- 20) small_int))
    (fun (seed, l) ->
      let rng = Dsim.Rng.create seed in
      List.mem (Dsim.Rng.pick_list rng l) l)

let suites =
  [
    ( "rng",
      [
        Alcotest.test_case "same seed, same stream" `Quick same_seed_same_stream;
        Alcotest.test_case "different seed, different stream" `Quick
          different_seed_different_stream;
        Alcotest.test_case "copy is independent" `Quick copy_is_independent;
        Alcotest.test_case "split diverges" `Quick split_diverges;
        Alcotest.test_case "int bound 0 rejected" `Quick int_bound_zero_rejected;
        Alcotest.test_case "pick on empty rejected" `Quick pick_empty_rejected;
        Alcotest.test_case "chance extremes" `Quick chance_extremes;
        Alcotest.test_case "shuffle is a permutation" `Quick shuffle_is_permutation;
        Alcotest.test_case "exponential mean" `Slow exponential_mean;
        Qcheck_util.to_alcotest qcheck_int_in_bounds;
        Qcheck_util.to_alcotest qcheck_float_in_bounds;
        Qcheck_util.to_alcotest qcheck_pick_member;
      ] );
  ]
