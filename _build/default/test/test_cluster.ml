(* Cluster assembly and steady-state convergence. *)

let default_boot () =
  let cluster = Kube.Cluster.create () in
  Kube.Cluster.start cluster;
  cluster

let topology_matches_config () =
  let config = { Kube.Cluster.default_config with Kube.Cluster.apiservers = 3; nodes = 4 } in
  let cluster = Kube.Cluster.create ~config () in
  Alcotest.(check (list string)) "apiservers" [ "api-1"; "api-2"; "api-3" ]
    (Kube.Cluster.apiserver_names cluster);
  Alcotest.(check (list string)) "nodes" [ "node-1"; "node-2"; "node-3"; "node-4" ]
    (Kube.Cluster.node_names cluster);
  Alcotest.(check int) "kubelets" 4 (List.length (Kube.Cluster.kubelets cluster))

let start_seeds_nodes () =
  let cluster = default_boot () in
  Kube.Cluster.run cluster ~until:100_000;
  Alcotest.(check int) "node objects committed" 3
    (List.length
       (History.State.keys_with_prefix (Kube.Cluster.truth cluster) ~prefix:"nodes/"))

let disabled_components_absent () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.with_scheduler = false;
      with_volume_controller = false;
      with_operator = false;
    }
  in
  let cluster = Kube.Cluster.create ~config () in
  Alcotest.(check bool) "no scheduler" true (Kube.Cluster.scheduler cluster = None);
  Alcotest.(check bool) "no volumectl" true (Kube.Cluster.volume_controller cluster = None);
  Alcotest.(check bool) "no operator" true (Kube.Cluster.operator cluster = None)

let apiservers_converge_to_truth () =
  let cluster = default_boot () in
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:2 ());
  Kube.Cluster.run cluster ~until:9_000_000;
  let rev = Kube.Cluster.truth_rev cluster in
  List.iter
    (fun api ->
      Alcotest.(check bool)
        (Printf.sprintf "%s caught up (rev %d vs %d)" (Kube.Apiserver.name api)
           (Kube.Apiserver.rev api) rev)
        true
        (Kube.Apiserver.rev api >= rev - 1))
    (Kube.Cluster.apiservers cluster)

let unperturbed_run_is_quiet () =
  (* No faults, busy workload: the trace must contain no stream deaths,
     no resyncs beyond the initial lists, no pipe breaks. *)
  let cluster = default_boot () in
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:4 ());
  Kube.Cluster.run cluster ~until:9_000_000;
  let trace = Kube.Cluster.trace cluster in
  Alcotest.(check int) "no dead streams" 0
    (List.length (Dsim.Trace.find_all trace ~kind:"informer.stream-dead"));
  Alcotest.(check int) "no broken pipes" 0
    (List.length (Dsim.Trace.find_all trace ~kind:"pipe.broken"));
  Alcotest.(check int) "no apiserver resyncs" 0
    (List.length (Dsim.Trace.find_all trace ~kind:"api.resync"))

let deterministic_cluster_runs () =
  let digest () =
    let cluster = default_boot () in
    Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:3 ());
    Kube.Cluster.run cluster ~until:6_000_000;
    ( Kube.Cluster.truth_rev cluster,
      List.map
        (fun e -> (e.Dsim.Trace.time, e.Dsim.Trace.kind, e.Dsim.Trace.detail))
        (Dsim.Trace.entries (Kube.Cluster.trace cluster)) )
  in
  let a = digest () and b = digest () in
  Alcotest.(check int) "same final rev" (fst a) (fst b);
  Alcotest.(check bool) "identical traces" true (snd a = snd b)

let different_seeds_differ () =
  let rev_with seed =
    let config = { Kube.Cluster.default_config with Kube.Cluster.seed } in
    let cluster = Kube.Cluster.create ~config () in
    Kube.Cluster.start cluster;
    Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:3 ());
    Kube.Cluster.run cluster ~until:6_000_000;
    List.map
      (fun e -> e.Dsim.Trace.time)
      (Dsim.Trace.entries (Kube.Cluster.trace cluster))
  in
  Alcotest.(check bool) "timings shift with seed" true (rev_with 1L <> rev_with 77L)

let suites =
  [
    ( "cluster",
      [
        Alcotest.test_case "topology matches config" `Quick topology_matches_config;
        Alcotest.test_case "start seeds nodes" `Quick start_seeds_nodes;
        Alcotest.test_case "disabled components absent" `Quick disabled_components_absent;
        Alcotest.test_case "apiservers converge to truth" `Quick apiservers_converge_to_truth;
        Alcotest.test_case "unperturbed run is quiet" `Quick unperturbed_run_is_quiet;
        Alcotest.test_case "deterministic cluster runs" `Quick deterministic_cluster_runs;
        Alcotest.test_case "different seeds differ" `Quick different_seeds_differ;
      ] );
  ]
