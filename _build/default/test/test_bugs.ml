(* The crown tests: every case-study bug (i) does not fire unperturbed,
   (ii) reproduces deterministically under its Sieve strategy, and
   (iii) stays closed when the corresponding fix is enabled. Also the
   baseline generators. *)

let hit case (outcome : Sieve.Runner.outcome) =
  List.exists (fun (_, v) -> case.Sieve.Bugs.matches v) outcome.Sieve.Runner.violations

let check_case case () =
  let reference = Sieve.Runner.run_test (Sieve.Bugs.reference_test_of_case case) in
  Alcotest.(check int) "reference run clean" 0 (List.length reference.Sieve.Runner.violations);
  let sieve = Sieve.Runner.run_test (Sieve.Bugs.test_of_case case) in
  Alcotest.(check bool) "sieve strategy reproduces the bug" true (hit case sieve);
  let fixed = Sieve.Runner.run_test (Sieve.Bugs.fixed_test_of_case case) in
  Alcotest.(check bool) "fix closes the bug" false (hit case fixed)

let corpus_metadata () =
  let cases = Sieve.Bugs.all () in
  Alcotest.(check int) "five cases" 5 (List.length cases);
  Alcotest.(check (list string)) "ids"
    [ "K8s-59848"; "K8s-56261"; "CA-398"; "CA-400"; "CA-402" ]
    (List.map (fun c -> c.Sieve.Bugs.id) cases);
  (* Two known Kubernetes bugs + three new operator bugs, as in §7. *)
  Alcotest.(check bool) "find works" true (Sieve.Bugs.find "CA-400" <> None);
  Alcotest.(check bool) "find misses unknown" true (Sieve.Bugs.find "nope" = None)

let patterns_cover_section_4_2 () =
  let patterns = List.map (fun c -> c.Sieve.Bugs.pattern) (Sieve.Bugs.all ()) in
  Alcotest.(check bool) "staleness represented" true (List.mem `Staleness patterns);
  Alcotest.(check bool) "obs gap represented" true (List.mem `Obs_gap patterns);
  Alcotest.(check bool) "time travel represented" true (List.mem `Time_travel patterns)

let reproduction_is_deterministic () =
  let case = Sieve.Bugs.ca_402 () in
  let time () =
    match (Sieve.Runner.run_test (Sieve.Bugs.test_of_case case)).Sieve.Runner.violations with
    | (t, _) :: _ -> t
    | [] -> -1
  in
  let t1 = time () in
  Alcotest.(check bool) "found" true (t1 > 0);
  Alcotest.(check int) "identical timing across runs" t1 (time ())

(* Baseline generators. *)
let random_baseline_shape () =
  let strategies =
    Sieve.Baselines.random_faults ~seed:1L ~components:[ "c1"; "c2" ]
      ~apiservers:[ "api-1" ] ~horizon:1_000_000 ~n:25
  in
  Alcotest.(check int) "n strategies" 25 (List.length strategies);
  List.iter
    (fun s ->
      match s with
      | Sieve.Strategy.Combo [ Sieve.Strategy.Crash_restart _; Sieve.Strategy.Partition_window _ ] ->
          ()
      | _ -> Alcotest.fail "expected crash+partition combos")
    strategies;
  let again =
    Sieve.Baselines.random_faults ~seed:1L ~components:[ "c1"; "c2" ] ~apiservers:[ "api-1" ]
      ~horizon:1_000_000 ~n:25
  in
  Alcotest.(check bool) "seeded determinism" true (strategies = again)

let crashtuner_targets_meta_info () =
  let events =
    [
      (100, "pods/a", History.Event.Create);
      (200, "pvcs/c", History.Event.Create);
      (300, "nodes/n", History.Event.Delete);
    ]
  in
  let strategies = Sieve.Baselines.crashtuner ~events ~components:[ "x" ] () in
  (* Only the pod and node events are meta-info: 2 candidates. *)
  Alcotest.(check int) "two candidates" 2 (List.length strategies);
  List.iter
    (fun s ->
      match s with
      | Sieve.Strategy.Crash_restart { victim = "x"; at; _ } ->
          Alcotest.(check bool) "crash right after commit" true (at = 2_100 || at = 2_300)
      | _ -> Alcotest.fail "expected crash/restart")
    strategies

let cofi_partitions_links () =
  let events = [ (100, "pods/a", History.Event.Create) ] in
  let strategies =
    Sieve.Baselines.cofi ~events ~components:[ "c1"; "c2" ] ~apiservers:[ "api-1"; "api-2" ] ()
  in
  (* links: 2 components x 2 apiservers + 2 etcd links = 6. *)
  Alcotest.(check int) "six links" 6 (List.length strategies);
  List.iter
    (fun s ->
      match s with
      | Sieve.Strategy.Partition_window { from = 100; until; _ } ->
          Alcotest.(check int) "window" 1_200_100 until
      | _ -> Alcotest.fail "expected partition windows")
    strategies

let suites =
  let case_tests =
    List.map
      (fun case ->
        Alcotest.test_case
          (Printf.sprintf "%s: ref clean, sieve reproduces, fix closes" case.Sieve.Bugs.id)
          `Slow (check_case case))
      (Sieve.Bugs.all ())
  in
  [
    ( "bugs",
      case_tests
      @ [
          Alcotest.test_case "corpus metadata" `Quick corpus_metadata;
          Alcotest.test_case "patterns cover section 4.2" `Quick patterns_cover_section_4_2;
          Alcotest.test_case "reproduction is deterministic" `Slow reproduction_is_deterministic;
          Alcotest.test_case "random baseline shape" `Quick random_baseline_shape;
          Alcotest.test_case "crashtuner targets meta-info" `Quick crashtuner_targets_meta_info;
          Alcotest.test_case "cofi partitions links" `Quick cofi_partitions_links;
        ] );
  ]
