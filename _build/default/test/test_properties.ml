(* System-level properties under *adversarial* interception (not just
   faults): whatever the interceptor does to notification streams, some
   invariants must hold because they are enforced by guarded writes and
   ground-truth checks, not by views. *)

let random_policy seed =
  (* A deterministic pseudo-random pass/drop/delay policy over events. *)
  let rng = Dsim.Rng.create (Int64.of_int (7 + abs seed)) in
  fun (_ : Kube.Intercept.edge) (_ : Kube.Resource.value History.Event.t) ->
    let roll = Dsim.Rng.int rng 10 in
    if roll < 6 then Kube.Intercept.Pass
    else if roll < 8 then Kube.Intercept.Drop
    else Kube.Intercept.Delay (Dsim.Rng.int rng 800_000)

let run_adversarial seed =
  let config = { Kube.Cluster.default_config with Kube.Cluster.seed = Int64.of_int (1 + abs seed) } in
  let cluster = Kube.Cluster.create ~config () in
  Kube.Intercept.set_policy (Kube.Cluster.intercept cluster) (random_policy seed);
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:4 ());
  Kube.Workload.schedule cluster
    (Kube.Workload.cassandra_scale ~dc:"dc" ~steps:[ (0, 2); (3_000_000, 3) ] ());
  Kube.Cluster.run cluster ~until:10_000_000;
  cluster

(* Guarded writes cannot be forged by stale views: every pod binding in
   the ground truth names a node that existed when the bind committed —
   under arbitrary event suppression, the scheduler can *fail* to place
   pods, but can never place one on a node that was never created. *)
let bindings_name_real_nodes =
  QCheck.Test.make ~name:"bindings always name once-real nodes (any interception)" ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let cluster = run_adversarial seed in
      let truth = Kube.Cluster.truth cluster in
      History.State.fold
        (fun _ (v, _) acc ->
          acc
          &&
          match v with
          | Kube.Resource.Pod { Kube.Resource.node = Some n; _ } ->
              List.mem n (Kube.Cluster.node_names cluster)
          | _ -> true)
        truth true)

(* Kubelets only ever run pods that were at some point bound to their
   node in the committed history: execution is driven by views, but the
   views are partial histories of H — never fabrications. *)
let kubelets_run_only_assigned_pods =
  QCheck.Test.make ~name:"kubelets run only pods H ever assigned to them" ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let config =
        { Kube.Cluster.default_config with Kube.Cluster.seed = Int64.of_int (1 + abs seed) }
      in
      let cluster = Kube.Cluster.create ~config () in
      (* Record every (pod, node) assignment H ever committed. *)
      let assigned = Hashtbl.create 64 in
      Kube.Etcd.on_commit (Kube.Cluster.etcd cluster) (fun e ->
          match e.History.Event.value with
          | Some (Kube.Resource.Pod { Kube.Resource.pod_name; node = Some n; _ }) ->
              Hashtbl.replace assigned (pod_name, n) ()
          | _ -> ());
      Kube.Intercept.set_policy (Kube.Cluster.intercept cluster) (random_policy seed);
      Kube.Cluster.start cluster;
      Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:4 ());
      Kube.Cluster.run cluster ~until:10_000_000;
      List.for_all
        (fun kubelet ->
          List.for_all
            (fun pod -> Hashtbl.mem assigned (pod, Kube.Kubelet.node_name kubelet))
            (Kube.Kubelet.running kubelet))
        (Kube.Cluster.kubelets cluster))

(* A monotonic (59848-fixed) informer's view revision never moves
   backwards, across arbitrary crash/restart/partition schedules. *)
let monotonic_views_never_travel =
  QCheck.Test.make ~name:"monotonic informers never time-travel (any faults)" ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let config =
        {
          Kube.Cluster.default_config with
          Kube.Cluster.seed = Int64.of_int (1 + abs seed);
          kubelet_monotonic = true;
        }
      in
      let cluster = Kube.Cluster.create ~config () in
      Kube.Cluster.start cluster;
      Kube.Workload.schedule cluster (Kube.Workload.pod_churn ~n:3 ());
      let plan_rng = Dsim.Rng.create (Int64.of_int (97 * (1 + abs seed))) in
      let components = [ "kubelet-1"; "kubelet-2"; "kubelet-3"; "api-1"; "api-2" ] in
      Dsim.Fault.apply (Kube.Cluster.net cluster)
        (Dsim.Fault.random_plan plan_rng ~nodes:components ~horizon:6_000_000 ~crashes:3
           ~partitions:2 ());
      (* Sample every kubelet's frontier and fail on any regression. *)
      let ok = ref true in
      let last = Hashtbl.create 8 in
      Dsim.Engine.every (Kube.Cluster.engine cluster) ~period:50_000 (fun () ->
          List.iter
            (fun k ->
              let rev = Kube.Informer.rev (Kube.Kubelet.informer k) in
              let name = Kube.Kubelet.name k in
              (match Hashtbl.find_opt last name with
              | Some previous when rev < previous -> ok := false
              | _ -> ());
              Hashtbl.replace last name rev)
            (Kube.Cluster.kubelets cluster);
          true);
      Kube.Cluster.run cluster ~until:10_000_000;
      !ok)

(* Dropped events can starve progress but never corrupt: the Cassandra
   operator under arbitrary interception never produces two live members
   with the same ordinal in the ground truth. *)
let no_duplicate_ordinals =
  QCheck.Test.make ~name:"operator never creates duplicate ordinals (any interception)"
    ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let cluster = run_adversarial seed in
      let truth = Kube.Cluster.truth cluster in
      let ordinals = Hashtbl.create 16 in
      let ok = ref true in
      History.State.fold
        (fun _ (v, _) () ->
          match v with
          | Kube.Resource.Pod
              { Kube.Resource.owner = Some owner; ordinal = Some i; deletion_timestamp = None; _ }
            ->
              if Hashtbl.mem ordinals (owner, i) then ok := false
              else Hashtbl.replace ordinals (owner, i) ()
          | _ -> ())
        truth ();
      !ok)

let suites =
  [
    ( "properties",
      [
        Qcheck_util.to_alcotest bindings_name_real_nodes;
        Qcheck_util.to_alcotest kubelets_run_only_assigned_pods;
        Qcheck_util.to_alcotest monotonic_views_never_travel;
        Qcheck_util.to_alcotest no_duplicate_ordinals;
      ] );
  ]
