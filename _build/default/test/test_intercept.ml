(* Interceptor, trace and report plumbing. *)

let ev key = History.Event.make ~rev:1 ~key ~op:History.Event.Create (Some (Kube.Resource.make_node "n"))

let default_passes () =
  let i = Kube.Intercept.create () in
  Alcotest.(check bool) "pass" true
    (Kube.Intercept.decide i { Kube.Intercept.src = "a"; dst = "b" } (ev "k")
    = Kube.Intercept.Pass)

let policy_applies_and_clears () =
  let i = Kube.Intercept.create () in
  Kube.Intercept.set_policy i (fun _ _ -> Kube.Intercept.Drop);
  let edge = { Kube.Intercept.src = "a"; dst = "b" } in
  Alcotest.(check bool) "drop" true (Kube.Intercept.decide i edge (ev "k") = Kube.Intercept.Drop);
  Kube.Intercept.clear i;
  Alcotest.(check bool) "pass again" true
    (Kube.Intercept.decide i edge (ev "k") = Kube.Intercept.Pass)

let observer_sees_decisions () =
  let i = Kube.Intercept.create () in
  let seen = ref [] in
  Kube.Intercept.set_observer i (fun edge _ decision ->
      seen := (edge.Kube.Intercept.dst, decision) :: !seen);
  Kube.Intercept.set_policy i (fun _ _ -> Kube.Intercept.Delay 5);
  ignore (Kube.Intercept.decide i { Kube.Intercept.src = "a"; dst = "b" } (ev "k"));
  Alcotest.(check bool) "observed" true (!seen = [ ("b", Kube.Intercept.Delay 5) ])

let decision_printing () =
  Alcotest.(check string) "pass" "pass"
    (Format.asprintf "%a" Kube.Intercept.pp_decision Kube.Intercept.Pass);
  Alcotest.(check string) "drop" "drop"
    (Format.asprintf "%a" Kube.Intercept.pp_decision Kube.Intercept.Drop);
  Alcotest.(check string) "edge" "a->b"
    (Format.asprintf "%a" Kube.Intercept.pp_edge { Kube.Intercept.src = "a"; dst = "b" })

(* Trace store. *)
let trace_filters_and_orders () =
  let tr = Dsim.Trace.create () in
  Dsim.Trace.record tr ~time:5 ~actor:"x" ~kind:"a" "one";
  Dsim.Trace.record tr ~time:6 ~actor:"y" ~kind:"b" "two";
  Dsim.Trace.record tr ~time:7 ~actor:"x" ~kind:"a" "three";
  Alcotest.(check int) "length" 3 (Dsim.Trace.length tr);
  Alcotest.(check (list string)) "find_all by kind" [ "one"; "three" ]
    (List.map (fun e -> e.Dsim.Trace.detail) (Dsim.Trace.find_all tr ~kind:"a"));
  Alcotest.(check (list int)) "chronological" [ 5; 6; 7 ]
    (List.map (fun e -> e.Dsim.Trace.time) (Dsim.Trace.entries tr));
  Alcotest.(check int) "filter by actor" 2
    (List.length (Dsim.Trace.filter tr (fun e -> e.Dsim.Trace.actor = "x")));
  Dsim.Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Dsim.Trace.length tr)

(* Report table sanity. *)
let report_rejects_ragged_rows () =
  Alcotest.check_raises "ragged" (Invalid_argument "Report.table: ragged row") (fun () ->
      Sieve.Report.table ~header:[ "a"; "b" ] [ [ "only-one" ] ])

let suites =
  [
    ( "intercept/trace/report",
      [
        Alcotest.test_case "default passes" `Quick default_passes;
        Alcotest.test_case "policy applies and clears" `Quick policy_applies_and_clears;
        Alcotest.test_case "observer sees decisions" `Quick observer_sees_decisions;
        Alcotest.test_case "decision printing" `Quick decision_printing;
        Alcotest.test_case "trace filters and orders" `Quick trace_filters_and_orders;
        Alcotest.test_case "report rejects ragged rows" `Quick report_rejects_ragged_rows;
      ] );
  ]
