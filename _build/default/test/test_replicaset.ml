(* ReplicaSet controller: scale up/down, replacement, expectations. *)

let boot ?(expectations = false) () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.with_replicaset = true;
      replicaset_fixed = expectations;
    }
  in
  let cluster = Kube.Cluster.create ~config () in
  Kube.Cluster.start cluster;
  cluster

let live_members cluster rs =
  History.State.fold
    (fun _ (v, _) acc ->
      match v with
      | Kube.Resource.Pod p
        when p.Kube.Resource.owner = Some (Kube.Resource.rset_key rs)
             && p.Kube.Resource.deletion_timestamp = None
             && p.Kube.Resource.phase <> Kube.Resource.Failed ->
          acc + 1
      | _ -> acc)
    (Kube.Cluster.truth cluster) 0

let maintains_replicas () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.replicaset_scale ~start:1_000_000 ~rs:"web" ~steps:[ (0, 3) ] ());
  Kube.Cluster.run cluster ~until:5_000_000;
  Alcotest.(check int) "three live pods" 3 (live_members cluster "web");
  (* All scheduled and running. *)
  let running =
    List.concat_map Kube.Kubelet.running (Kube.Cluster.kubelets cluster)
    |> List.filter (fun pod -> String.length pod >= 4 && String.sub pod 0 4 = "web-")
  in
  Alcotest.(check int) "three running" 3 (List.length running)

let scales_down () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.replicaset_scale ~start:1_000_000 ~rs:"web" ~steps:[ (0, 4); (3_000_000, 1) ] ());
  Kube.Cluster.run cluster ~until:8_000_000;
  Alcotest.(check int) "one survivor" 1 (live_members cluster "web");
  let rs = Option.get (Kube.Cluster.replicaset cluster) in
  Alcotest.(check bool) "recorded deletions" true (Kube.Replicaset.deletes rs >= 3)

let replaces_deleted_pod () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.replicaset_scale ~start:1_000_000 ~rs:"web" ~steps:[ (0, 2) ] ());
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:3_000_000 (fun () ->
         Kube.Workload.mark_pod_deleted cluster "web-0"));
  Kube.Cluster.run cluster ~until:7_000_000;
  Alcotest.(check int) "still two live pods" 2 (live_members cluster "web");
  Alcotest.(check bool) "web-0 was replaced (fresh name)" false
    (History.State.mem (Kube.Cluster.truth cluster) (Kube.Resource.pod_key "web-0"))

let stale_view_overprovisions () =
  (* Without expectations, a lagging pod view causes creation bursts. *)
  let cluster = boot () in
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.staleness ~dst:"rsctl" ~key_prefix:"pods/" ~from:900_000 ~until:2_400_000
       ~extra:1_500_000 ());
  Kube.Workload.schedule cluster
    (Kube.Workload.replicaset_scale ~start:1_000_000 ~rs:"web" ~steps:[ (0, 3) ] ());
  Kube.Cluster.run cluster ~until:2_300_000;
  Alcotest.(check bool)
    (Printf.sprintf "over-provisioned mid-run (%d live)" (live_members cluster "web"))
    true
    (live_members cluster "web" > 6);
  (* ... and self-heals once the view catches up. *)
  Kube.Cluster.run cluster ~until:7_000_000;
  Alcotest.(check int) "converged back to 3" 3 (live_members cluster "web")

let expectations_prevent_overprovision () =
  let cluster = boot ~expectations:true () in
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.staleness ~dst:"rsctl" ~key_prefix:"pods/" ~from:900_000 ~until:2_400_000
       ~extra:1_500_000 ());
  Kube.Workload.schedule cluster
    (Kube.Workload.replicaset_scale ~start:1_000_000 ~rs:"web" ~steps:[ (0, 3) ] ());
  Kube.Cluster.run cluster ~until:7_000_000;
  let rs = Option.get (Kube.Cluster.replicaset cluster) in
  Alcotest.(check int) "exactly three creations ever" 3 (Kube.Replicaset.creates rs);
  Alcotest.(check int) "three live" 3 (live_members cluster "web")

let failed_pods_replaced () =
  (* A Failed pod does not count as live; the controller replaces it. *)
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.with_replicaset = true;
      with_node_controller = true;
    }
  in
  let cluster = Kube.Cluster.create ~config () in
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster
    (Kube.Workload.replicaset_scale ~start:1_000_000 ~rs:"web" ~steps:[ (0, 2) ] ());
  (* Delete a node under a running pod: the node controller fails the
     pod, the ReplicaSet replaces it elsewhere. *)
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:3_000_000 (fun () ->
         match
           History.State.get (Kube.Cluster.truth cluster) (Kube.Resource.pod_key "web-0")
         with
         | Some (Kube.Resource.Pod { Kube.Resource.node = Some n; _ }) ->
             Kube.Workload.delete_node cluster n
         | _ -> ()));
  Kube.Cluster.run cluster ~until:9_000_000;
  Alcotest.(check int) "two live replicas again" 2 (live_members cluster "web")

let suites =
  [
    ( "replicaset",
      [
        Alcotest.test_case "maintains replicas" `Quick maintains_replicas;
        Alcotest.test_case "scales down" `Quick scales_down;
        Alcotest.test_case "replaces deleted pod" `Quick replaces_deleted_pod;
        Alcotest.test_case "stale view over-provisions (then heals)" `Quick
          stale_view_overprovisions;
        Alcotest.test_case "expectations prevent over-provisioning" `Quick
          expectations_prevent_overprovision;
        Alcotest.test_case "failed pods replaced (node loss failover)" `Quick
          failed_pods_replaced;
      ] );
  ]
