(* Strategy construction, classification, and interceptor compilation. *)

let ev rev key op = History.Event.make ~rev ~key ~op (Some (Kube.Resource.make_node "n"))

let pattern_classification () =
  let check name expected strategy =
    Alcotest.(check bool) name true (Sieve.Strategy.pattern strategy = expected)
  in
  check "none" `None Sieve.Strategy.No_perturbation;
  check "staleness/delay" `Staleness
    (Sieve.Strategy.staleness ~dst:"c" ~from:0 ~until:10 ~extra:5 ());
  check "staleness/partition" `Staleness
    (Sieve.Strategy.Partition_window { a = "x"; b = "y"; from = 0; until = 1 });
  check "obs gap" `Obs_gap (Sieve.Strategy.observability_gap ~dst:"c" ~from:0 ~until:10 ());
  check "crash alone" `Time_travel
    (Sieve.Strategy.Crash_restart { victim = "c"; at = 0; downtime = 1 });
  check "time travel combo" `Time_travel
    (Sieve.Strategy.time_travel ~stale_api:"api-2" ~victim:"c" ~stale_from:0 ~crash_at:5 ());
  check "mixed" `Mixed
    (Sieve.Strategy.Combo
       [
         Sieve.Strategy.observability_gap ~dst:"c" ~from:0 ~until:1 ();
         Sieve.Strategy.staleness ~dst:"c" ~from:0 ~until:1 ~extra:1 ();
       ])

let describe_is_total () =
  let strategies =
    [
      Sieve.Strategy.No_perturbation;
      Sieve.Strategy.staleness ~src:"etcd" ~dst:"api-1" ~from:0 ~until:10 ~extra:5 ();
      Sieve.Strategy.observability_gap ~dst:"c" ~key_prefix:"pods/" ~op:History.Event.Delete
        ~limit:1 ~from:0 ~until:10 ();
      Sieve.Strategy.time_travel ~stale_api:"api-2" ~victim:"kubelet-1" ~stale_from:0 ~crash_at:5
        ~downtime:2 ~heal_at:100 ();
    ]
  in
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty" true (Sieve.Strategy.describe s <> ""))
    strategies

(* Compile a strategy onto a cluster and probe the interceptor directly. *)
let decide cluster edge event =
  Kube.Intercept.decide (Kube.Cluster.intercept cluster) edge event

let drop_rule_matches_scope () =
  let cluster = Kube.Cluster.create () in
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.observability_gap ~dst:"scheduler" ~key_prefix:"nodes/"
       ~op:History.Event.Delete ~from:0 ~until:1_000_000 ());
  let to_scheduler = Kube.Intercept.{ src = "api-1"; dst = "scheduler" } in
  let to_kubelet = Kube.Intercept.{ src = "api-1"; dst = "kubelet-1" } in
  Alcotest.(check bool) "drops matching" true
    (decide cluster to_scheduler (ev 1 "nodes/n" History.Event.Delete) = Kube.Intercept.Drop);
  Alcotest.(check bool) "passes other op" true
    (decide cluster to_scheduler (ev 2 "nodes/n" History.Event.Create) = Kube.Intercept.Pass);
  Alcotest.(check bool) "passes other key" true
    (decide cluster to_scheduler (ev 3 "pods/p" History.Event.Delete) = Kube.Intercept.Pass);
  Alcotest.(check bool) "passes other dst" true
    (decide cluster to_kubelet (ev 4 "nodes/n" History.Event.Delete) = Kube.Intercept.Pass)

let limit_caps_matches () =
  let cluster = Kube.Cluster.create () in
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.observability_gap ~dst:"c" ~limit:2 ~from:0 ~until:1_000_000 ());
  let edge = Kube.Intercept.{ src = "api-1"; dst = "c" } in
  Alcotest.(check bool) "1st dropped" true
    (decide cluster edge (ev 1 "k" History.Event.Create) = Kube.Intercept.Drop);
  Alcotest.(check bool) "2nd dropped" true
    (decide cluster edge (ev 2 "k" History.Event.Create) = Kube.Intercept.Drop);
  Alcotest.(check bool) "3rd passes" true
    (decide cluster edge (ev 3 "k" History.Event.Create) = Kube.Intercept.Pass)

let window_respected () =
  let cluster = Kube.Cluster.create () in
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.staleness ~dst:"c" ~from:100_000 ~until:200_000 ~extra:50_000 ());
  let edge = Kube.Intercept.{ src = "api-1"; dst = "c" } in
  (* Engine clock is 0: outside the window, rule dormant. *)
  Alcotest.(check bool) "before window passes" true
    (decide cluster edge (ev 1 "k" History.Event.Create) = Kube.Intercept.Pass);
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:150_000 (fun () ->
         Alcotest.(check bool) "inside window delays" true
           (decide cluster edge (ev 2 "k" History.Event.Create) = Kube.Intercept.Delay 50_000)));
  Kube.Cluster.run cluster ~until:150_000

let faults_scheduled () =
  let cluster = Kube.Cluster.create () in
  Kube.Cluster.start cluster;
  Sieve.Strategy.apply cluster
    (Sieve.Strategy.Combo
       [
         Sieve.Strategy.Crash_restart { victim = "kubelet-1"; at = 100_000; downtime = 50_000 };
         Sieve.Strategy.Partition_window { a = "etcd"; b = "api-2"; from = 80_000; until = 120_000 };
       ]);
  let net = Kube.Cluster.net cluster in
  Kube.Cluster.run cluster ~until:110_000;
  Alcotest.(check bool) "victim down" false (Dsim.Network.is_up net "kubelet-1");
  Alcotest.(check bool) "link cut" true (Dsim.Network.partitioned net "etcd" "api-2");
  Kube.Cluster.run cluster ~until:200_000;
  Alcotest.(check bool) "victim back" true (Dsim.Network.is_up net "kubelet-1");
  Alcotest.(check bool) "link healed" false (Dsim.Network.partitioned net "etcd" "api-2")

let suites =
  [
    ( "strategy",
      [
        Alcotest.test_case "pattern classification" `Quick pattern_classification;
        Alcotest.test_case "describe is total" `Quick describe_is_total;
        Alcotest.test_case "drop rule matches scope" `Quick drop_rule_matches_scope;
        Alcotest.test_case "limit caps matches" `Quick limit_caps_matches;
        Alcotest.test_case "window respected" `Quick window_respected;
        Alcotest.test_case "faults scheduled" `Quick faults_scheduled;
      ] );
  ]
