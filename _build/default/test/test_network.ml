(* RPC, casts, partitions, crashes and incarnation semantics. *)

type Dsim.Network.request += Ping of int
type Dsim.Network.response += Pong of int
type Dsim.Network.cast += Note of string

let make () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  (engine, net)

let echo_server net name =
  Dsim.Network.register net name
    ~serve:(fun ~src:_ req reply -> match req with Ping n -> reply (Pong n) | _ -> ())
    ()

let rpc_roundtrip () =
  let engine, net = make () in
  echo_server net "server";
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  let got = ref None in
  Dsim.Network.call net ~src:"client" ~dst:"server" (Ping 7) (fun r -> got := Some r);
  Dsim.Engine.run engine;
  match !got with
  | Some (Ok (Pong 7)) -> ()
  | _ -> Alcotest.fail "expected Pong 7"

let rpc_latency_is_positive () =
  let engine, net = make () in
  echo_server net "server";
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  let finished_at = ref 0 in
  Dsim.Network.call net ~src:"client" ~dst:"server" (Ping 1) (fun _ ->
      finished_at := Dsim.Engine.now engine);
  Dsim.Engine.run engine;
  Alcotest.(check bool) "took at least two hops" true (!finished_at >= 1_000)

let unknown_destination () =
  let engine, net = make () in
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  let got = ref None in
  Dsim.Network.call net ~src:"client" ~dst:"nobody" (Ping 1) (fun r -> got := Some r);
  Dsim.Engine.run engine;
  match !got with
  | Some (Error Dsim.Network.Unreachable) -> ()
  | _ -> Alcotest.fail "expected Unreachable"

let partition_times_out () =
  let engine, net = make () in
  echo_server net "server";
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.partition net "client" "server";
  let got = ref None in
  Dsim.Network.call net ~src:"client" ~dst:"server" ~timeout:50_000 (Ping 1) (fun r ->
      got := Some r);
  Dsim.Engine.run engine;
  match !got with
  | Some (Error Dsim.Network.Timeout) -> ()
  | _ -> Alcotest.fail "expected Timeout"

let heal_restores () =
  let engine, net = make () in
  echo_server net "server";
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.partition net "client" "server";
  Dsim.Network.heal net "client" "server";
  let ok = ref false in
  Dsim.Network.call net ~src:"client" ~dst:"server" (Ping 1) (fun r -> ok := Result.is_ok r);
  Dsim.Engine.run engine;
  Alcotest.(check bool) "healed" true !ok

let down_server_times_out () =
  let engine, net = make () in
  echo_server net "server";
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.crash net "server";
  let got = ref None in
  Dsim.Network.call net ~src:"client" ~dst:"server" ~timeout:50_000 (Ping 1) (fun r ->
      got := Some r);
  Dsim.Engine.run engine;
  match !got with
  | Some (Error Dsim.Network.Timeout) -> ()
  | _ -> Alcotest.fail "expected Timeout for down server"

let restarted_caller_never_sees_reply () =
  let engine, net = make () in
  (* Server replies after a long think; the caller restarts meanwhile. *)
  Dsim.Network.register net "server"
    ~serve:(fun ~src:_ req reply ->
      match req with
      | Ping n -> ignore (Dsim.Engine.schedule engine ~delay:100_000 (fun () -> reply (Pong n)))
      | _ -> ())
    ();
  Dsim.Network.register net "client" ~serve:(fun ~src:_ _ _ -> ()) ();
  let outcomes = ref [] in
  Dsim.Network.call net ~src:"client" ~dst:"server" ~timeout:400_000 (Ping 1) (fun r ->
      outcomes := r :: !outcomes);
  ignore (Dsim.Engine.schedule engine ~delay:20_000 (fun () -> Dsim.Network.crash net "client"));
  ignore (Dsim.Engine.schedule engine ~delay:30_000 (fun () -> Dsim.Network.restart net "client"));
  Dsim.Engine.run engine;
  match !outcomes with
  | [ Error Dsim.Network.Timeout ] -> ()
  | _ -> Alcotest.fail "reply should have been dropped (new incarnation), leaving a timeout"

let crash_bumps_incarnation_and_hooks () =
  let _, net = make () in
  let crashes = ref 0 and restarts = ref 0 in
  Dsim.Network.register net "n" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.set_lifecycle net "n"
    ~on_crash:(fun () -> incr crashes)
    ~on_restart:(fun () -> incr restarts);
  Alcotest.(check int) "inc 0" 0 (Dsim.Network.incarnation net "n");
  Dsim.Network.crash net "n";
  Dsim.Network.crash net "n" (* idempotent while down *);
  Alcotest.(check int) "inc 1" 1 (Dsim.Network.incarnation net "n");
  Alcotest.(check bool) "down" false (Dsim.Network.is_up net "n");
  Alcotest.(check int) "one crash hook" 1 !crashes;
  Dsim.Network.restart net "n";
  Dsim.Network.restart net "n";
  Alcotest.(check bool) "up" true (Dsim.Network.is_up net "n");
  Alcotest.(check int) "one restart hook" 1 !restarts

let cast_delivery_and_partition () =
  let engine, net = make () in
  let received = ref [] in
  Dsim.Network.register net "sink"
    ~serve:(fun ~src:_ _ _ -> ())
    ~on_cast:(fun ~src:_ c -> match c with Note s -> received := s :: !received | _ -> ())
    ();
  Dsim.Network.register net "src" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.cast net ~src:"src" ~dst:"sink" (Note "one");
  Dsim.Engine.run engine;
  Dsim.Network.partition net "src" "sink";
  Dsim.Network.cast net ~src:"src" ~dst:"sink" (Note "lost");
  Dsim.Engine.run engine;
  Alcotest.(check (list string)) "only pre-partition cast" [ "one" ] !received

let heal_all_clears_every_cut () =
  let _, net = make () in
  Dsim.Network.partition net "a" "b";
  Dsim.Network.partition net "c" "d";
  Dsim.Network.heal_all net;
  Alcotest.(check bool) "ab healed" false (Dsim.Network.partitioned net "a" "b");
  Alcotest.(check bool) "cd healed" false (Dsim.Network.partitioned net "c" "d")

let partition_is_symmetric () =
  let _, net = make () in
  Dsim.Network.partition net "a" "b";
  Alcotest.(check bool) "b-a also cut" true (Dsim.Network.partitioned net "b" "a")

let latency_models_sample_in_range () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create ~min_latency:100 ~max_latency:200 engine in
  for _ = 1 to 100 do
    let l = Dsim.Network.sample_latency net in
    Alcotest.(check bool) "uniform in range" true (l >= 100 && l <= 200)
  done;
  Dsim.Network.set_latency_model net
    (Dsim.Network.Exponential { mean = 1_000.0; floor = 50 });
  for _ = 1 to 100 do
    Alcotest.(check bool) "exponential above floor" true
      (Dsim.Network.sample_latency net >= 50)
  done

let addresses_sorted () =
  let _, net = make () in
  List.iter (fun n -> Dsim.Network.register net n ~serve:(fun ~src:_ _ _ -> ()) ())
    [ "zeta"; "alpha"; "mid" ];
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ] (Dsim.Network.addresses net)

let suites =
  [
    ( "network",
      [
        Alcotest.test_case "rpc roundtrip" `Quick rpc_roundtrip;
        Alcotest.test_case "rpc latency positive" `Quick rpc_latency_is_positive;
        Alcotest.test_case "unknown destination" `Quick unknown_destination;
        Alcotest.test_case "partition times out" `Quick partition_times_out;
        Alcotest.test_case "heal restores" `Quick heal_restores;
        Alcotest.test_case "down server times out" `Quick down_server_times_out;
        Alcotest.test_case "restarted caller never sees reply" `Quick
          restarted_caller_never_sees_reply;
        Alcotest.test_case "crash bumps incarnation and hooks" `Quick
          crash_bumps_incarnation_and_hooks;
        Alcotest.test_case "cast delivery and partition" `Quick cast_delivery_and_partition;
        Alcotest.test_case "heal_all clears every cut" `Quick heal_all_clears_every_cut;
        Alcotest.test_case "partition is symmetric" `Quick partition_is_symmetric;
        Alcotest.test_case "latency models sample in range" `Quick
          latency_models_sample_in_range;
        Alcotest.test_case "addresses sorted" `Quick addresses_sorted;
      ] );
  ]
