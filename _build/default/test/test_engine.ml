(* Virtual clock and event-loop semantics. *)

let runs_in_time_order () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Dsim.Engine.schedule e ~delay:300 (note "c"));
  ignore (Dsim.Engine.schedule e ~delay:100 (note "a"));
  ignore (Dsim.Engine.schedule e ~delay:200 (note "b"));
  Dsim.Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let clock_advances_to_event_time () =
  let e = Dsim.Engine.create () in
  let seen = ref (-1) in
  ignore (Dsim.Engine.schedule e ~delay:5_000 (fun () -> seen := Dsim.Engine.now e));
  Dsim.Engine.run e;
  Alcotest.(check int) "now at fire time" 5_000 !seen

let same_time_fifo () =
  let e = Dsim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Dsim.Engine.schedule e ~delay:100 (fun () -> log := i :: !log))
  done;
  Dsim.Engine.run e;
  Alcotest.(check (list int)) "fifo for equal timestamps" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let cancel_prevents_fire () =
  let e = Dsim.Engine.create () in
  let fired = ref false in
  let timer = Dsim.Engine.schedule e ~delay:10 (fun () -> fired := true) in
  Dsim.Engine.cancel timer;
  Dsim.Engine.run e;
  Alcotest.(check bool) "not fired" false !fired

let run_until_stops () =
  let e = Dsim.Engine.create () in
  let count = ref 0 in
  ignore (Dsim.Engine.schedule e ~delay:100 (fun () -> incr count));
  ignore (Dsim.Engine.schedule e ~delay:200 (fun () -> incr count));
  ignore (Dsim.Engine.schedule e ~delay:900 (fun () -> incr count));
  Dsim.Engine.run ~until:500 e;
  Alcotest.(check int) "two of three fired" 2 !count;
  Alcotest.(check int) "clock at horizon" 500 (Dsim.Engine.now e);
  Dsim.Engine.run ~until:1_000 e;
  Alcotest.(check int) "third fired on resume" 3 !count

let events_at_horizon_fire () =
  let e = Dsim.Engine.create () in
  let fired = ref false in
  ignore (Dsim.Engine.schedule e ~delay:500 (fun () -> fired := true));
  Dsim.Engine.run ~until:500 e;
  Alcotest.(check bool) "boundary event fires" true !fired

let nested_scheduling () =
  let e = Dsim.Engine.create () in
  let times = ref [] in
  ignore
    (Dsim.Engine.schedule e ~delay:10 (fun () ->
         ignore
           (Dsim.Engine.schedule e ~delay:10 (fun () -> times := Dsim.Engine.now e :: !times))));
  Dsim.Engine.run e;
  Alcotest.(check (list int)) "fires at 20" [ 20 ] !times

let schedule_in_past_clamps () =
  let e = Dsim.Engine.create () in
  ignore (Dsim.Engine.schedule e ~delay:100 (fun () -> ()));
  Dsim.Engine.run e;
  let fired_at = ref (-1) in
  ignore (Dsim.Engine.schedule_at e ~time:5 (fun () -> fired_at := Dsim.Engine.now e));
  Dsim.Engine.run e;
  Alcotest.(check int) "clamped to now" 100 !fired_at

let every_repeats_until_false () =
  let e = Dsim.Engine.create () in
  let count = ref 0 in
  Dsim.Engine.every e ~period:100 (fun () ->
      incr count;
      !count < 5);
  Dsim.Engine.run e;
  Alcotest.(check int) "five ticks" 5 !count

let max_events_bounds_run () =
  let e = Dsim.Engine.create () in
  let count = ref 0 in
  Dsim.Engine.every e ~period:10 (fun () ->
      incr count;
      true);
  Dsim.Engine.run ~max_events:7 e;
  Alcotest.(check int) "bounded" 7 !count

let trace_records_at_now () =
  let e = Dsim.Engine.create () in
  ignore
    (Dsim.Engine.schedule e ~delay:42 (fun () ->
         Dsim.Engine.record e ~actor:"me" ~kind:"k" "detail"));
  Dsim.Engine.run e;
  match Dsim.Trace.entries (Dsim.Engine.trace e) with
  | [ entry ] ->
      Alcotest.(check int) "time" 42 entry.Dsim.Trace.time;
      Alcotest.(check string) "actor" "me" entry.Dsim.Trace.actor
  | other -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length other))

let deterministic_replay () =
  let run () =
    let e = Dsim.Engine.create ~seed:99L () in
    let log = ref [] in
    Dsim.Engine.every e ~period:10 (fun () ->
        log := Dsim.Rng.int (Dsim.Engine.rng e) 1000 :: !log;
        List.length !log < 20);
    Dsim.Engine.run e;
    !log
  in
  Alcotest.(check (list int)) "replay identical" (run ()) (run ())

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "runs in time order" `Quick runs_in_time_order;
        Alcotest.test_case "clock advances to event time" `Quick clock_advances_to_event_time;
        Alcotest.test_case "same time fifo" `Quick same_time_fifo;
        Alcotest.test_case "cancel prevents fire" `Quick cancel_prevents_fire;
        Alcotest.test_case "run ~until stops and resumes" `Quick run_until_stops;
        Alcotest.test_case "events at horizon fire" `Quick events_at_horizon_fire;
        Alcotest.test_case "nested scheduling" `Quick nested_scheduling;
        Alcotest.test_case "schedule in past clamps to now" `Quick schedule_in_past_clamps;
        Alcotest.test_case "every repeats until false" `Quick every_repeats_until_false;
        Alcotest.test_case "max_events bounds run" `Quick max_events_bounds_run;
        Alcotest.test_case "trace records at now" `Quick trace_records_at_now;
        Alcotest.test_case "deterministic replay" `Quick deterministic_replay;
      ] );
  ]
