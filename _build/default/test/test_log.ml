(* The committed history log: revisions, since, compaction, state_at. *)

open History

let fill log n =
  for i = 1 to n do
    ignore (Log.append log ~key:(Printf.sprintf "k%d" i) ~op:Event.Create (Some i))
  done

let revisions_dense () =
  let log = Log.create () in
  fill log 5;
  Alcotest.(check int) "rev" 5 (Log.rev log);
  Alcotest.(check (list int)) "dense 1..5" [ 1; 2; 3; 4; 5 ]
    (List.map (fun (e : int Event.t) -> e.Event.rev) (Log.events log))

let state_tracks_events () =
  let log = Log.create () in
  ignore (Log.append log ~key:"a" ~op:Event.Create (Some 1));
  ignore (Log.append log ~key:"a" ~op:Event.Delete None);
  Alcotest.(check bool) "a deleted" false (State.mem (Log.state log) "a");
  Alcotest.(check int) "rev 2" 2 (Log.rev log)

let since_returns_suffix () =
  let log = Log.create () in
  fill log 5;
  match Log.since log ~rev:3 with
  | Ok events ->
      Alcotest.(check (list int)) "revs 4,5" [ 4; 5 ]
        (List.map (fun (e : int Event.t) -> e.Event.rev) events)
  | Error _ -> Alcotest.fail "unexpected compaction"

let since_zero_is_everything () =
  let log = Log.create () in
  fill log 3;
  match Log.since log ~rev:0 with
  | Ok events -> Alcotest.(check int) "all three" 3 (List.length events)
  | Error _ -> Alcotest.fail "unexpected compaction"

let compaction_rejects_old_since () =
  let log = Log.create () in
  fill log 10;
  Log.compact log ~before:6;
  Alcotest.(check int) "compacted_rev" 6 (Log.compacted_rev log);
  Alcotest.(check int) "retained" 4 (Log.length log);
  (match Log.since log ~rev:3 with
  | Error (`Compacted 6) -> ()
  | _ -> Alcotest.fail "expected Compacted 6");
  match Log.since log ~rev:6 with
  | Ok events -> Alcotest.(check int) "boundary ok" 4 (List.length events)
  | Error _ -> Alcotest.fail "rev = compacted_rev must still be servable"

let compact_keep_last () =
  let log = Log.create () in
  fill log 10;
  Log.compact_keep_last log 3;
  Alcotest.(check int) "kept 3" 3 (Log.length log);
  Alcotest.(check int) "compacted at 7" 7 (Log.compacted_rev log)

let state_at_replays () =
  let log = Log.create () in
  ignore (Log.append log ~key:"a" ~op:Event.Create (Some 1));
  ignore (Log.append log ~key:"b" ~op:Event.Create (Some 2));
  ignore (Log.append log ~key:"a" ~op:Event.Delete None);
  (match Log.state_at log ~rev:2 with
  | Some s ->
      Alcotest.(check bool) "a present at rev 2" true (State.mem s "a");
      Alcotest.(check bool) "b present at rev 2" true (State.mem s "b")
  | None -> Alcotest.fail "rev 2 should be reconstructable");
  match Log.state_at log ~rev:3 with
  | Some s -> Alcotest.(check bool) "a gone at rev 3" false (State.mem s "a")
  | None -> Alcotest.fail "rev 3 should be reconstructable"

let state_at_respects_compaction () =
  let log = Log.create () in
  fill log 10;
  Log.compact log ~before:5;
  Alcotest.(check bool) "rev 4 lost" true (Log.state_at log ~rev:4 = None);
  match Log.state_at log ~rev:7 with
  | Some s ->
      (* Snapshot + replay must equal the full-history fold. *)
      Alcotest.(check int) "7 keys live" 7 (State.cardinal s)
  | None -> Alcotest.fail "rev 7 reconstructable from snapshot"

let compact_beyond_head_clamps () =
  let log = Log.create () in
  fill log 3;
  Log.compact log ~before:100;
  Alcotest.(check int) "clamped to head" 3 (Log.compacted_rev log);
  Alcotest.(check int) "nothing retained" 0 (Log.length log);
  Alcotest.(check int) "state survives compaction" 3 (State.cardinal (Log.state log))

let qcheck_since_partition =
  QCheck.Test.make ~name:"since splits history at rev" ~count:200
    QCheck.(pair (int_range 0 60) (int_range 0 60))
    (fun (n, rev) ->
      let log = Log.create () in
      fill log n;
      match Log.since log ~rev with
      | Ok events -> List.length events = max 0 (n - rev)
      | Error _ -> false)

let suites =
  [
    ( "log",
      [
        Alcotest.test_case "revisions dense" `Quick revisions_dense;
        Alcotest.test_case "state tracks events" `Quick state_tracks_events;
        Alcotest.test_case "since returns suffix" `Quick since_returns_suffix;
        Alcotest.test_case "since zero is everything" `Quick since_zero_is_everything;
        Alcotest.test_case "compaction rejects old since" `Quick compaction_rejects_old_since;
        Alcotest.test_case "compact_keep_last" `Quick compact_keep_last;
        Alcotest.test_case "state_at replays" `Quick state_at_replays;
        Alcotest.test_case "state_at respects compaction" `Quick state_at_respects_compaction;
        Alcotest.test_case "compact beyond head clamps" `Quick compact_beyond_head_clamps;
        Qcheck_util.to_alcotest qcheck_since_partition;
      ] );
  ]
