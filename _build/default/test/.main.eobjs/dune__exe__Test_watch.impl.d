test/test_watch.ml: Alcotest Etcdlike History List Printf
