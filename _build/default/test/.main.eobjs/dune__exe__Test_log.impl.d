test/test_log.ml: Alcotest Event History List Log Printf QCheck Qcheck_util State
