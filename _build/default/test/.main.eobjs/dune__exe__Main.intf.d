test/main.mli:
