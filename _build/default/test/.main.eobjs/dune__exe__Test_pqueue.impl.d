test/test_pqueue.ml: Alcotest Dsim Gen List QCheck Qcheck_util
