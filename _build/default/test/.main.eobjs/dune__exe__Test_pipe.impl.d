test/test_pipe.ml: Alcotest Dsim History Kube List
