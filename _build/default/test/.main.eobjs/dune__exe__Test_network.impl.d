test/test_network.ml: Alcotest Dsim List Result
