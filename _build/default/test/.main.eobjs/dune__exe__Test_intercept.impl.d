test/test_intercept.ml: Alcotest Dsim Format History Kube List Sieve
