test/test_txn.ml: Alcotest Etcdlike List Option
