test/test_oracle.ml: Alcotest History Kube List Sieve String
