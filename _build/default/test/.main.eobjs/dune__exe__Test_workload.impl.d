test/test_workload.ml: Alcotest Dsim History Kube List String
