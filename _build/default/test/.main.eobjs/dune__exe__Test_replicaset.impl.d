test/test_replicaset.ml: Alcotest Dsim History Kube List Option Printf Sieve String
