test/test_bugs.ml: Alcotest History List Printf Sieve
