test/test_event_state.ml: Alcotest Event Gen History List Printf QCheck Qcheck_util State
