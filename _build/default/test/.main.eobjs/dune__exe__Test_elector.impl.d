test/test_elector.ml: Alcotest Dsim History Kube List Printf String
