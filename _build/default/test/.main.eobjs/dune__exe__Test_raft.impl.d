test/test_raft.ml: Alcotest Dsim Int64 List Option Printf QCheck Qcheck_util Raftlite String
