test/test_runner.ml: Alcotest History Kube List Sieve
