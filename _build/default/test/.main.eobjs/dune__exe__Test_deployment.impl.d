test/test_deployment.ml: Alcotest Dsim History Kube List Option Printf String
