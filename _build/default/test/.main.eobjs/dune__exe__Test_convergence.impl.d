test/test_convergence.ml: Dsim Format History Int64 Kube List Printf QCheck Qcheck_util Sieve String
