test/test_servers.ml: Alcotest Dsim Etcdlike History Kube List Printf
