test/test_seals.ml: Alcotest Kube List Option Sieve
