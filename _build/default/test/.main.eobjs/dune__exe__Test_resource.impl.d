test/test_resource.ml: Alcotest Kube List
