test/test_informer.ml: Alcotest Dsim Etcdlike History Kube List Printf
