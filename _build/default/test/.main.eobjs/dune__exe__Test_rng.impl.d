test/test_rng.ml: Alcotest Array Dsim Gen List Printf QCheck Qcheck_util
