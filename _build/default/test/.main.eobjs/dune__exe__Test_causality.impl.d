test/test_causality.ml: Alcotest Causality History List QCheck Qcheck_util
