test/test_fault.ml: Alcotest Dsim List
