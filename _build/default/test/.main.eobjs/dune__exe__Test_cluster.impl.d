test/test_cluster.ml: Alcotest Dsim History Kube List Printf
