test/test_strategy.ml: Alcotest Dsim History Kube List Sieve
