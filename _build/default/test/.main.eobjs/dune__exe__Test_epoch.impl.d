test/test_epoch.ml: Alcotest Epoch Event Gen History List Printf QCheck Qcheck_util
