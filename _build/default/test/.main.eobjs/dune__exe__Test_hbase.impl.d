test/test_hbase.ml: Alcotest Dsim Etcdlike Hbaselike List Printf
