test/test_components.ml: Alcotest Dsim History Kube List Option Printf String
