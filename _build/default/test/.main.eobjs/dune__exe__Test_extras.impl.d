test/test_extras.ml: Alcotest Array Kube List Printf Sieve
