test/test_kv.ml: Alcotest Etcdlike Gen History List Printf QCheck Qcheck_util
