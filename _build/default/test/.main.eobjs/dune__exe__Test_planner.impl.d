test/test_planner.ml: Alcotest History Kube List Sieve String
