test/test_metrics.ml: Alcotest Dsim Gen List QCheck Qcheck_util
