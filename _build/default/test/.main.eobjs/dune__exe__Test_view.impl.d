test/test_view.ml: Alcotest Event Gen History List QCheck Qcheck_util State View
