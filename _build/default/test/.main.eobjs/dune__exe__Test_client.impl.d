test/test_client.ml: Alcotest Dsim Etcdlike Kube List Option
