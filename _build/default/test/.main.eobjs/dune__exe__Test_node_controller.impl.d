test/test_node_controller.ml: Alcotest Dsim History Kube List Option Sieve
