test/test_coverage.ml: Alcotest History Kube List Printf Sieve String
