test/test_partial.ml: Alcotest Event History List Partial QCheck Qcheck_util State
