test/qcheck_util.ml: QCheck_alcotest Random
