test/test_properties.ml: Dsim Hashtbl History Int64 Kube List QCheck Qcheck_util
