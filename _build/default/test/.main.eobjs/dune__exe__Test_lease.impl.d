test/test_lease.ml: Alcotest Etcdlike List
