test/test_divergence.ml: Alcotest Divergence History List Printf
