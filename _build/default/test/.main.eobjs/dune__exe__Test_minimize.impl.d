test/test_minimize.ml: Alcotest List Sieve
