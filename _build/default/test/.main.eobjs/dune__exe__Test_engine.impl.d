test/test_engine.ml: Alcotest Dsim List Printf
