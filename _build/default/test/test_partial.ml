(* Partial histories: subsequence structure, gaps, lag, unobservability. *)

open History

let ev rev key op = Event.make ~rev ~key ~op (if op = Event.Delete then None else Some rev)

let full =
  [
    ev 1 "a" Event.Create;
    ev 2 "b" Event.Create;
    ev 3 "a" Event.Update;
    ev 4 "b" Event.Delete;
    ev 5 "c" Event.Create;
  ]

let mask_keeps_subsequence () =
  let partial = Partial.apply_mask full ~mask:[ true; false; true; false; true ] in
  Alcotest.(check (list int)) "revs 1,3,5" [ 1; 3; 5 ]
    (List.map (fun (e : int Event.t) -> e.Event.rev) partial);
  Alcotest.(check bool) "is partial" true (Partial.is_partial_of partial ~of_:full)

let mask_shorter_than_history () =
  let partial = Partial.apply_mask full ~mask:[ true ] in
  Alcotest.(check int) "only first kept" 1 (List.length partial)

let prefix_detection () =
  let p = Partial.apply_mask full ~mask:[ true; true ] in
  Alcotest.(check bool) "prefix" true (Partial.is_prefix_of p ~of_:full);
  let q = Partial.apply_mask full ~mask:[ true; false; true ] in
  Alcotest.(check bool) "not prefix" false (Partial.is_prefix_of q ~of_:full)

let unordered_rejected () =
  let scrambled = [ ev 3 "a" Event.Update; ev 1 "a" Event.Create ] in
  Alcotest.(check bool) "unordered" false (Partial.is_ordered scrambled);
  Alcotest.(check bool) "not a partial history" false
    (Partial.is_partial_of scrambled ~of_:full)

let missing_and_gaps () =
  let partial = Partial.apply_mask full ~mask:[ true; false; true; false; false ] in
  Alcotest.(check (list int)) "missing" [ 2; 4; 5 ] (Partial.missing_revs partial ~of_:full);
  (* 2 is an interior gap (3 was observed after it); 4 and 5 are pure lag. *)
  Alcotest.(check (list int)) "interior gaps" [ 2 ] (Partial.interior_gaps partial ~of_:full);
  Alcotest.(check int) "lag" 2 (Partial.lag partial ~of_:full)

let state_of_folds () =
  let partial = Partial.apply_mask full ~mask:[ true; true; true; true; true ] in
  let s = Partial.state_of partial in
  Alcotest.(check bool) "b deleted" false (State.mem s "b");
  Alcotest.(check bool) "a live" true (State.mem s "a")

let unobservable_shadowed_events () =
  (* a@1 shadowed by a@3; b@2 shadowed by b@4 (delete); 3,4,5 visible. *)
  Alcotest.(check (list int)) "shadowed" [ 1; 2 ] (Partial.unobservable_in_state full)

let last_rev_empty () =
  Alcotest.(check int) "empty = 0" 0 (Partial.last_rev []);
  Alcotest.(check int) "lag of empty = full length" 5 (Partial.lag [] ~of_:full)

let gen_mask n = QCheck.Gen.(list_size (pure n) bool)

let qcheck_mask_always_partial =
  QCheck.Test.make ~name:"apply_mask yields a valid partial history" ~count:300
    (QCheck.make (gen_mask 5))
    (fun mask -> Partial.is_partial_of (Partial.apply_mask full ~mask) ~of_:full)

let qcheck_missing_plus_kept_is_full =
  QCheck.Test.make ~name:"kept + missing = full" ~count:300
    (QCheck.make (gen_mask 5))
    (fun mask ->
      let partial = Partial.apply_mask full ~mask in
      List.length partial + List.length (Partial.missing_revs partial ~of_:full)
      = List.length full)

let qcheck_prefix_has_no_interior_gaps =
  QCheck.Test.make ~name:"prefixes have no interior gaps" ~count:100
    QCheck.(int_range 0 5)
    (fun n ->
      let mask = List.init 5 (fun i -> i < n) in
      let partial = Partial.apply_mask full ~mask in
      Partial.interior_gaps partial ~of_:full = [])

let suites =
  [
    ( "partial",
      [
        Alcotest.test_case "mask keeps subsequence" `Quick mask_keeps_subsequence;
        Alcotest.test_case "mask shorter than history" `Quick mask_shorter_than_history;
        Alcotest.test_case "prefix detection" `Quick prefix_detection;
        Alcotest.test_case "unordered rejected" `Quick unordered_rejected;
        Alcotest.test_case "missing and gaps" `Quick missing_and_gaps;
        Alcotest.test_case "state_of folds" `Quick state_of_folds;
        Alcotest.test_case "unobservable shadowed events" `Quick unobservable_shadowed_events;
        Alcotest.test_case "empty partials" `Quick last_rev_empty;
        Qcheck_util.to_alcotest qcheck_mask_always_partial;
        Qcheck_util.to_alcotest qcheck_missing_plus_kept_is_full;
        Qcheck_util.to_alcotest qcheck_prefix_has_no_interior_gaps;
      ] );
  ]
