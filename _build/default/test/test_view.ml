(* Component views: observation, anomalies, restart semantics. *)

open History

let ev rev key op value = Event.make ~rev ~key ~op value

let observe_all view events =
  List.fold_left
    (fun (view, anomalies) e ->
      let view, a = View.observe view e in
      (view, match a with Some a -> a :: anomalies | None -> anomalies))
    (view, []) events

let in_order_observation_clean () =
  let view = View.create ~actor:"c" in
  let view, anomalies =
    observe_all view
      [ ev 1 "a" Event.Create (Some "x"); ev 2 "b" Event.Create (Some "y") ]
  in
  Alcotest.(check int) "no anomalies" 0 (List.length anomalies);
  Alcotest.(check int) "frontier" 2 (View.rev view);
  Alcotest.(check int) "observed H' length" 2 (List.length (View.observed view));
  Alcotest.(check string) "actor" "c" (View.actor view)

let skipping_is_allowed () =
  (* A partial history may skip events; that alone is not an anomaly the
     view can detect (it cannot know rev 2 existed). *)
  let view = View.create ~actor:"c" in
  let _, anomalies =
    observe_all view [ ev 1 "a" Event.Create (Some "x"); ev 3 "b" Event.Create (Some "y") ]
  in
  Alcotest.(check int) "no anomaly for gap" 0 (List.length anomalies)

let time_travel_detected () =
  let view = View.create ~actor:"c" in
  let view, _ = View.observe view (ev 5 "a" Event.Create (Some "x")) in
  let _, anomaly = View.observe view (ev 3 "b" Event.Create (Some "y")) in
  match anomaly with
  | Some (View.Time_travel { seen_rev = 5; got_rev = 3 }) -> ()
  | _ -> Alcotest.fail "expected time travel"

let replay_detected () =
  let view = View.create ~actor:"c" in
  let e = ev 4 "a" Event.Create (Some "x") in
  let view, _ = View.observe view e in
  let _, anomaly = View.observe view e in
  match anomaly with
  | Some (View.Replay { rev = 4 }) -> ()
  | _ -> Alcotest.fail "expected replay"

let anomalous_events_still_applied () =
  let view = View.create ~actor:"c" in
  let view, _ = View.observe view (ev 5 "a" Event.Create (Some "new")) in
  let view, _ = View.observe view (ev 3 "a" Event.Update (Some "old")) in
  (* The buggy component does consume it: last writer wins in its S'. *)
  Alcotest.(check (option string)) "stale value applied" (Some "old")
    (State.get (View.state view) "a")

let reset_discards_history () =
  let view = View.create ~actor:"c" in
  let view, _ = View.observe view (ev 9 "a" Event.Create (Some "x")) in
  let snapshot = State.apply State.empty (ev 4 "b" Event.Create (Some "y")) in
  let view = View.reset_to_state view snapshot in
  Alcotest.(check int) "H' gone" 0 (List.length (View.observed view));
  Alcotest.(check int) "frontier moved backwards" 4 (View.rev view);
  Alcotest.(check bool) "new state adopted" true (State.mem (View.state view) "b")

let staleness_measure () =
  let view = View.create ~actor:"c" in
  let view, _ = View.observe view (ev 3 "a" Event.Create (Some "x")) in
  Alcotest.(check int) "lag 7" 7 (View.staleness view ~against:10);
  Alcotest.(check int) "never negative" 0 (View.staleness view ~against:1)

let qcheck_frontier_is_max_observed =
  QCheck.Test.make ~name:"frontier = max observed rev" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 100))
    (fun revs ->
      let view = View.create ~actor:"c" in
      let view, _ =
        List.fold_left
          (fun (v, _) rev -> View.observe v (ev rev "k" Event.Update (Some "v")))
          (view, None) revs
      in
      View.rev view = List.fold_left max 0 revs)

let suites =
  [
    ( "view",
      [
        Alcotest.test_case "in-order observation clean" `Quick in_order_observation_clean;
        Alcotest.test_case "skipping is allowed" `Quick skipping_is_allowed;
        Alcotest.test_case "time travel detected" `Quick time_travel_detected;
        Alcotest.test_case "replay detected" `Quick replay_detected;
        Alcotest.test_case "anomalous events still applied" `Quick anomalous_events_still_applied;
        Alcotest.test_case "reset discards history (restart)" `Quick reset_discards_history;
        Alcotest.test_case "staleness measure" `Quick staleness_measure;
        Qcheck_util.to_alcotest qcheck_frontier_is_max_observed;
      ] );
  ]
