(* Typed cluster objects and their key scheme. *)

let key_construction () =
  Alcotest.(check string) "pod" "pods/web-0" (Kube.Resource.pod_key "web-0");
  Alcotest.(check string) "node" "nodes/n1" (Kube.Resource.node_key "n1");
  Alcotest.(check string) "pvc" "pvcs/data" (Kube.Resource.pvc_key "data");
  Alcotest.(check string) "cassdc" "cassdcs/dc1" (Kube.Resource.cassdc_key "dc1")

let kind_dispatch () =
  let kind key =
    match Kube.Resource.kind_of_key key with
    | `Pod -> "pod"
    | `Node -> "node"
    | `Pvc -> "pvc"
    | `Cassdc -> "cassdc"
    | `Rset -> "rset"
    | `Lock -> "lock"
    | `Deployment -> "deployment"
    | `Other -> "other"
  in
  Alcotest.(check string) "pod" "pod" (kind "pods/a");
  Alcotest.(check string) "node" "node" (kind "nodes/a");
  Alcotest.(check string) "pvc" "pvc" (kind "pvcs/a");
  Alcotest.(check string) "cassdc" "cassdc" (kind "cassdcs/a");
  Alcotest.(check string) "rset" "rset" (kind "rsets/a");
  Alcotest.(check string) "lock" "lock" (kind "locks/a");
  Alcotest.(check string) "deployment" "deployment" (kind "deployments/a");
  Alcotest.(check string) "other" "other" (kind "leases/a")

let name_extraction () =
  Alcotest.(check string) "strips kind" "web-0" (Kube.Resource.name_of_key "pods/web-0");
  Alcotest.(check string) "no slash" "raw" (Kube.Resource.name_of_key "raw")

let pod_constructor_defaults () =
  match Kube.Resource.make_pod "p" with
  | Kube.Resource.Pod p ->
      Alcotest.(check (option string)) "unbound" None p.Kube.Resource.node;
      Alcotest.(check bool) "pending" true (p.Kube.Resource.phase = Kube.Resource.Pending);
      Alcotest.(check (option int)) "no mark" None p.Kube.Resource.deletion_timestamp
  | _ -> Alcotest.fail "expected pod"

let pod_constructor_options () =
  match
    Kube.Resource.make_pod ~node:"n" ~phase:Kube.Resource.Running ~deletion_timestamp:9
      ~pvc:"c" ~owner:"cassdcs/dc" ~ordinal:3 "p"
  with
  | Kube.Resource.Pod p ->
      Alcotest.(check (option string)) "node" (Some "n") p.Kube.Resource.node;
      Alcotest.(check (option int)) "marked" (Some 9) p.Kube.Resource.deletion_timestamp;
      Alcotest.(check (option string)) "claim" (Some "c") p.Kube.Resource.pvc;
      Alcotest.(check (option int)) "ordinal" (Some 3) p.Kube.Resource.ordinal
  | _ -> Alcotest.fail "expected pod"

let accessors_filter_kinds () =
  let pod = Kube.Resource.make_pod "p" in
  let node = Kube.Resource.make_node "n" in
  Alcotest.(check bool) "as_pod pod" true (Kube.Resource.as_pod pod <> None);
  Alcotest.(check bool) "as_pod node" true (Kube.Resource.as_pod node = None);
  Alcotest.(check bool) "as_node node" true (Kube.Resource.as_node node <> None);
  Alcotest.(check bool) "as_pvc pvc" true
    (Kube.Resource.as_pvc (Kube.Resource.make_pvc "c") <> None);
  Alcotest.(check bool) "as_cassdc dc" true
    (Kube.Resource.as_cassdc (Kube.Resource.make_cassdc ~replicas:3 "d") <> None)

let printing_is_total () =
  let values =
    [
      Kube.Resource.make_pod ~node:"n" ~deletion_timestamp:5 ~pvc:"c" "p";
      Kube.Resource.make_node ~ready:false "n";
      Kube.Resource.make_pvc ~owner_pod:"p" "c";
      Kube.Resource.make_cassdc ~replicas:2 "d";
    ]
  in
  List.iter (fun v -> Alcotest.(check bool) "non-empty" true (Kube.Resource.to_string v <> ""))
    values

let suites =
  [
    ( "resource",
      [
        Alcotest.test_case "key construction" `Quick key_construction;
        Alcotest.test_case "kind dispatch" `Quick kind_dispatch;
        Alcotest.test_case "name extraction" `Quick name_extraction;
        Alcotest.test_case "pod constructor defaults" `Quick pod_constructor_defaults;
        Alcotest.test_case "pod constructor options" `Quick pod_constructor_options;
        Alcotest.test_case "accessors filter kinds" `Quick accessors_filter_kinds;
        Alcotest.test_case "printing is total" `Quick printing_is_total;
      ] );
  ]
