(* Fault plans: application and random generation. *)

let plan_applies_in_order () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  Dsim.Network.register net "a" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.register net "b" ~serve:(fun ~src:_ _ _ -> ()) ();
  let plan =
    [
      (100, Dsim.Fault.Crash "a");
      (200, Dsim.Fault.Partition ("a", "b"));
      (300, Dsim.Fault.Restart "a");
      (400, Dsim.Fault.Heal ("a", "b"));
    ]
  in
  Dsim.Fault.apply net plan;
  Dsim.Engine.run ~until:150 engine;
  Alcotest.(check bool) "a down at 150" false (Dsim.Network.is_up net "a");
  Dsim.Engine.run ~until:250 engine;
  Alcotest.(check bool) "cut at 250" true (Dsim.Network.partitioned net "a" "b");
  Dsim.Engine.run ~until:500 engine;
  Alcotest.(check bool) "a back" true (Dsim.Network.is_up net "a");
  Alcotest.(check bool) "healed" false (Dsim.Network.partitioned net "a" "b")

let heal_all_action () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  Dsim.Network.partition net "x" "y";
  Dsim.Fault.apply net [ (10, Dsim.Fault.Heal_all) ];
  Dsim.Engine.run engine;
  Alcotest.(check bool) "healed" false (Dsim.Network.partitioned net "x" "y")

let random_plan_sorted_and_paired () =
  let rng = Dsim.Rng.create 5L in
  let plan =
    Dsim.Fault.random_plan rng ~nodes:[ "a"; "b"; "c" ] ~horizon:1_000_000 ~crashes:3
      ~partitions:2 ()
  in
  let times = List.map fst plan in
  Alcotest.(check (list int)) "sorted" (List.sort compare times) times;
  let crashes =
    List.filter (fun (_, a) -> match a with Dsim.Fault.Crash _ -> true | _ -> false) plan
  in
  let restarts =
    List.filter (fun (_, a) -> match a with Dsim.Fault.Restart _ -> true | _ -> false) plan
  in
  Alcotest.(check int) "each crash has a restart" (List.length crashes) (List.length restarts)

let random_plan_deterministic () =
  let gen () =
    Dsim.Fault.random_plan (Dsim.Rng.create 9L) ~nodes:[ "a"; "b" ] ~horizon:500_000 ()
  in
  Alcotest.(check bool) "same seed same plan" true (gen () = gen ())

let random_plan_empty_nodes () =
  let rng = Dsim.Rng.create 1L in
  Alcotest.(check bool) "no nodes, no plan" true
    (Dsim.Fault.random_plan rng ~nodes:[] ~horizon:100 () = [])

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "plan applies in order" `Quick plan_applies_in_order;
        Alcotest.test_case "heal_all action" `Quick heal_all_action;
        Alcotest.test_case "random plan sorted and paired" `Quick random_plan_sorted_and_paired;
        Alcotest.test_case "random plan deterministic" `Quick random_plan_deterministic;
        Alcotest.test_case "random plan with no nodes" `Quick random_plan_empty_nodes;
      ] );
  ]
