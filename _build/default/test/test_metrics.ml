(* Counters and histogram percentiles. *)

let counters_accumulate () =
  let m = Dsim.Metrics.create () in
  Dsim.Metrics.incr m "a";
  Dsim.Metrics.incr m "a";
  Dsim.Metrics.add m "a" 3;
  Alcotest.(check int) "a=5" 5 (Dsim.Metrics.count m "a");
  Alcotest.(check int) "missing=0" 0 (Dsim.Metrics.count m "nope")

let counters_listing_sorted () =
  let m = Dsim.Metrics.create () in
  Dsim.Metrics.incr m "z";
  Dsim.Metrics.incr m "a";
  Alcotest.(check (list (pair string int))) "sorted" [ ("a", 1); ("z", 1) ]
    (Dsim.Metrics.counters m)

let histogram_stats () =
  let m = Dsim.Metrics.create () in
  List.iter (Dsim.Metrics.observe m "lat") [ 1.0; 2.0; 3.0; 4.0; 100.0 ];
  Alcotest.(check int) "samples" 5 (Dsim.Metrics.samples m "lat");
  Alcotest.(check (float 0.001)) "mean" 22.0 (Dsim.Metrics.mean m "lat");
  Alcotest.(check (float 0.001)) "p50" 3.0 (Dsim.Metrics.percentile m "lat" 0.5);
  Alcotest.(check (float 0.001)) "p99" 100.0 (Dsim.Metrics.percentile m "lat" 0.99)

let empty_histogram_zero () =
  let m = Dsim.Metrics.create () in
  Alcotest.(check (float 0.0)) "mean" 0.0 (Dsim.Metrics.mean m "none");
  Alcotest.(check (float 0.0)) "p99" 0.0 (Dsim.Metrics.percentile m "none" 0.99)

let reset_clears () =
  let m = Dsim.Metrics.create () in
  Dsim.Metrics.incr m "a";
  Dsim.Metrics.observe m "h" 1.0;
  Dsim.Metrics.reset m;
  Alcotest.(check int) "counter cleared" 0 (Dsim.Metrics.count m "a");
  Alcotest.(check int) "histogram cleared" 0 (Dsim.Metrics.samples m "h")

let qcheck_percentile_is_member =
  QCheck.Test.make ~name:"percentile returns an observed sample" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range 0.0 1000.0)) (float_range 0.01 1.0))
    (fun (samples, p) ->
      let m = Dsim.Metrics.create () in
      List.iter (Dsim.Metrics.observe m "h") samples;
      List.mem (Dsim.Metrics.percentile m "h" p) samples)

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "counters accumulate" `Quick counters_accumulate;
        Alcotest.test_case "counters listing sorted" `Quick counters_listing_sorted;
        Alcotest.test_case "histogram stats" `Quick histogram_stats;
        Alcotest.test_case "empty histogram zero" `Quick empty_histogram_zero;
        Alcotest.test_case "reset clears" `Quick reset_clears;
        Qcheck_util.to_alcotest qcheck_percentile_is_member;
      ] );
  ]
