(* Component behaviour on a full cluster: kubelet lifecycle, scheduler
   binding and eviction, volume release, operator scaling. *)

let boot ?(config = Kube.Cluster.default_config) () =
  let cluster = Kube.Cluster.create ~config () in
  Kube.Cluster.start cluster;
  cluster

let run_to cluster t = Kube.Cluster.run cluster ~until:t

let truth_pod cluster name =
  match History.State.get (Kube.Cluster.truth cluster) (Kube.Resource.pod_key name) with
  | Some (Kube.Resource.Pod p) -> Some p
  | _ -> None

let kubelet_runs_pinned_pod () =
  let cluster = boot () in
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.create_pod ~node:"node-1" cluster "p"));
  run_to cluster 2_000_000;
  match Kube.Cluster.kubelet_for_node cluster "node-1" with
  | Some k ->
      Alcotest.(check bool) "running" true (Kube.Kubelet.is_running k "p");
      Alcotest.(check int) "one start" 1 (Kube.Kubelet.starts k);
      (match truth_pod cluster "p" with
      | Some p ->
          Alcotest.(check bool) "status Running" true (p.Kube.Resource.phase = Kube.Resource.Running)
      | None -> Alcotest.fail "pod missing")
  | None -> Alcotest.fail "kubelet missing"

let scheduler_binds_pending_pod () =
  let cluster = boot () in
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.create_pod cluster "floating"));
  run_to cluster 3_000_000;
  match truth_pod cluster "floating" with
  | Some p ->
      Alcotest.(check bool) "bound somewhere" true (p.Kube.Resource.node <> None);
      let node = Option.get p.Kube.Resource.node in
      (match Kube.Cluster.kubelet_for_node cluster node with
      | Some k -> Alcotest.(check bool) "its kubelet runs it" true (Kube.Kubelet.is_running k "floating")
      | None -> Alcotest.fail "no kubelet for chosen node")
  | None -> Alcotest.fail "pod missing"

let graceful_delete_finalizes () =
  let cluster = boot () in
  let engine = Kube.Cluster.engine cluster in
  ignore
    (Dsim.Engine.schedule_at engine ~time:1_000_000 (fun () ->
         Kube.Workload.create_pod ~node:"node-1" cluster "doomed"));
  ignore
    (Dsim.Engine.schedule_at engine ~time:2_000_000 (fun () ->
         Kube.Workload.mark_pod_deleted cluster "doomed"));
  run_to cluster 4_000_000;
  Alcotest.(check bool) "object removed" true (truth_pod cluster "doomed" = None);
  match Kube.Cluster.kubelet_for_node cluster "node-1" with
  | Some k -> Alcotest.(check bool) "stopped" false (Kube.Kubelet.is_running k "doomed")
  | None -> Alcotest.fail "kubelet missing"

let migration_moves_execution () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.rolling_upgrade ~start:1_000_000 ~pod:"m" ~from_node:"node-1"
       ~to_node:"node-2" ());
  run_to cluster 6_000_000;
  let k1 = Option.get (Kube.Cluster.kubelet_for_node cluster "node-1") in
  let k2 = Option.get (Kube.Cluster.kubelet_for_node cluster "node-2") in
  Alcotest.(check bool) "left node-1" false (Kube.Kubelet.is_running k1 "m");
  Alcotest.(check bool) "arrived node-2" true (Kube.Kubelet.is_running k2 "m")

let fixed_scheduler_evicts_deleted_node () =
  let config = { Kube.Cluster.default_config with Kube.Cluster.scheduler_fixed = true } in
  let cluster = boot ~config () in
  (* Hide the node deletion from the scheduler, as the Sieve strategy
     would: the fixed scheduler must recover via bind-failure eviction. *)
  Kube.Intercept.set_policy (Kube.Cluster.intercept cluster) (fun edge e ->
      if
        String.equal edge.Kube.Intercept.dst "scheduler"
        && String.equal e.History.Event.key "nodes/node-2"
        && e.History.Event.op = History.Event.Delete
      then Kube.Intercept.Drop
      else Kube.Intercept.Pass);
  Kube.Workload.schedule cluster (Kube.Workload.node_churn ~start:1_500_000 ~node:"node-2" ~pods_after:6 ());
  run_to cluster 8_000_000;
  let scheduler = Option.get (Kube.Cluster.scheduler cluster) in
  Alcotest.(check bool) "node evicted from cache" false
    (List.mem "node-2" (Kube.Scheduler.cached_nodes scheduler));
  (* All pods eventually land on surviving nodes. *)
  List.iter
    (fun i ->
      match truth_pod cluster (Printf.sprintf "post-%d" i) with
      | Some p ->
          Alcotest.(check bool) "bound to a live node" true
            (match p.Kube.Resource.node with Some n -> n <> "node-2" | None -> false)
      | None -> Alcotest.fail "pod missing")
    [ 0; 1; 2; 3; 4; 5 ]

let volume_controller_releases_on_mark () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.pods_with_claims ~start:1_000_000 ~lifetime:1_500_000 ~n:1 ());
  run_to cluster 6_000_000;
  Alcotest.(check bool) "claim released" false
    (History.State.mem (Kube.Cluster.truth cluster) (Kube.Resource.pvc_key "vol-0"));
  let v = Option.get (Kube.Cluster.volume_controller cluster) in
  Alcotest.(check int) "one release" 1 (Kube.Volume_controller.releases v)

let operator_scales_up_and_down () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.cassandra_scale ~start:1_000_000 ~dc:"dc"
       ~steps:[ (0, 3); (4_000_000, 1) ]
       ());
  run_to cluster 12_000_000;
  let truth = Kube.Cluster.truth cluster in
  let members =
    History.State.keys_with_prefix truth ~prefix:"pods/dc-" |> List.length
  in
  Alcotest.(check int) "scaled down to 1" 1 members;
  Alcotest.(check bool) "member 0 survives" true
    (History.State.mem truth (Kube.Resource.pod_key "dc-0"));
  (* Decommissions took the highest ordinals first. *)
  let operator = Option.get (Kube.Cluster.operator cluster) in
  Alcotest.(check (list (pair string int))) "decommission order"
    [ ("dc", 2); ("dc", 1) ]
    (Kube.Cassandra_operator.decommissions operator);
  (* Claims of decommissioned members were garbage collected. *)
  Alcotest.(check bool) "data-dc-2 gone" false
    (History.State.mem truth (Kube.Resource.pvc_key "data-dc-2"));
  Alcotest.(check bool) "data-dc-0 kept" true
    (History.State.mem truth (Kube.Resource.pvc_key "data-dc-0"))

let crashed_kubelet_keeps_containers () =
  let cluster = boot () in
  let engine = Kube.Cluster.engine cluster in
  let net = Kube.Cluster.net cluster in
  ignore
    (Dsim.Engine.schedule_at engine ~time:1_000_000 (fun () ->
         Kube.Workload.create_pod ~node:"node-1" cluster "p"));
  ignore (Dsim.Engine.schedule_at engine ~time:2_000_000 (fun () -> Dsim.Network.crash net "kubelet-1"));
  run_to cluster 2_500_000;
  let k1 = Option.get (Kube.Cluster.kubelet_for_node cluster "node-1") in
  Alcotest.(check bool) "containers survive the kubelet" true (Kube.Kubelet.is_running k1 "p");
  ignore (Dsim.Engine.schedule_at engine ~time:2_600_000 (fun () -> Dsim.Network.restart net "kubelet-1"));
  run_to cluster 5_000_000;
  Alcotest.(check bool) "still running after restart reconcile" true
    (Kube.Kubelet.is_running k1 "p")

let suites =
  [
    ( "components",
      [
        Alcotest.test_case "kubelet runs pinned pod" `Quick kubelet_runs_pinned_pod;
        Alcotest.test_case "scheduler binds pending pod" `Quick scheduler_binds_pending_pod;
        Alcotest.test_case "graceful delete finalizes" `Quick graceful_delete_finalizes;
        Alcotest.test_case "migration moves execution" `Quick migration_moves_execution;
        Alcotest.test_case "fixed scheduler evicts deleted node" `Quick
          fixed_scheduler_evicts_deleted_node;
        Alcotest.test_case "volume controller releases on mark" `Quick
          volume_controller_releases_on_mark;
        Alcotest.test_case "operator scales up and down" `Quick operator_scales_up_and_down;
        Alcotest.test_case "crashed kubelet keeps containers" `Quick
          crashed_kubelet_keeps_containers;
      ] );
  ]
