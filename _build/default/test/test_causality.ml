(* Vector clocks: the happens-before lattice. *)

open History

let tick actor clock = Causality.tick clock ~actor

let before_after () =
  let a = Causality.empty |> tick "x" in
  let b = a |> tick "x" in
  Alcotest.(check bool) "a <= b" true (Causality.leq a b);
  Alcotest.(check bool) "b </= a" false (Causality.leq b a);
  (match Causality.relation a b with
  | Causality.Before -> ()
  | _ -> Alcotest.fail "expected Before");
  match Causality.relation b a with
  | Causality.After -> ()
  | _ -> Alcotest.fail "expected After"

let concurrent () =
  let a = Causality.empty |> tick "x" in
  let b = Causality.empty |> tick "y" in
  match Causality.relation a b with
  | Causality.Concurrent -> ()
  | _ -> Alcotest.fail "expected Concurrent"

let equal () =
  let a = Causality.empty |> tick "x" |> tick "y" in
  let b = Causality.empty |> tick "y" |> tick "x" in
  match Causality.relation a b with
  | Causality.Equal -> ()
  | _ -> Alcotest.fail "expected Equal"

let merge_is_lub () =
  let a = Causality.empty |> tick "x" |> tick "x" in
  let b = Causality.empty |> tick "y" in
  let m = Causality.merge a b in
  Alcotest.(check bool) "a <= m" true (Causality.leq a m);
  Alcotest.(check bool) "b <= m" true (Causality.leq b m);
  Alcotest.(check int) "x component" 2 (Causality.get m ~actor:"x");
  Alcotest.(check int) "y component" 1 (Causality.get m ~actor:"y")

let message_passing_orders () =
  (* send on x, receive on y: the receive is after the send. *)
  let send = Causality.empty |> tick "x" in
  let receive = Causality.merge send Causality.empty |> tick "y" in
  match Causality.relation send receive with
  | Causality.Before -> ()
  | _ -> Alcotest.fail "send happens-before receive"

let stamped_relatedness () =
  let ca = Causality.empty |> tick "x" in
  let cb = ca |> tick "x" in
  let cc = Causality.empty |> tick "y" in
  let a = { Causality.clock = ca; item = 1 } in
  let b = { Causality.clock = cb; item = 2 } in
  let c = { Causality.clock = cc; item = 3 } in
  Alcotest.(check bool) "related" true (Causality.causally_related a b);
  Alcotest.(check bool) "unrelated" false (Causality.causally_related a c)

let gen_clock =
  QCheck.Gen.(
    map
      (fun pairs ->
        List.fold_left
          (fun clock (actor, n) ->
            let rec times c = function 0 -> c | k -> times (Causality.tick c ~actor) (k - 1) in
            times clock n)
          Causality.empty pairs)
      (list_size (0 -- 4) (pair (oneofl [ "a"; "b"; "c" ]) (0 -- 3))))

let arb_clock = QCheck.make gen_clock

let qcheck_leq_reflexive =
  QCheck.Test.make ~name:"leq reflexive" ~count:200 arb_clock (fun c -> Causality.leq c c)

let qcheck_merge_upper_bound =
  QCheck.Test.make ~name:"merge is an upper bound" ~count:200 (QCheck.pair arb_clock arb_clock)
    (fun (a, b) ->
      let m = Causality.merge a b in
      Causality.leq a m && Causality.leq b m)

let qcheck_relation_antisymmetric =
  QCheck.Test.make ~name:"Before and After are mutually exclusive" ~count:200
    (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      match Causality.relation a b, Causality.relation b a with
      | Causality.Before, Causality.After
      | Causality.After, Causality.Before
      | Causality.Equal, Causality.Equal
      | Causality.Concurrent, Causality.Concurrent ->
          true
      | _ -> false)

let suites =
  [
    ( "causality",
      [
        Alcotest.test_case "before/after" `Quick before_after;
        Alcotest.test_case "concurrent" `Quick concurrent;
        Alcotest.test_case "equal" `Quick equal;
        Alcotest.test_case "merge is lub" `Quick merge_is_lub;
        Alcotest.test_case "message passing orders" `Quick message_passing_orders;
        Alcotest.test_case "stamped relatedness" `Quick stamped_relatedness;
        Qcheck_util.to_alcotest qcheck_leq_reflexive;
        Qcheck_util.to_alcotest qcheck_merge_upper_bound;
        Qcheck_util.to_alcotest qcheck_relation_antisymmetric;
      ] );
  ]
