(* Workload generators: step structure and primitive actions. *)

let boot () =
  let cluster = Kube.Cluster.create () in
  Kube.Cluster.start cluster;
  cluster

let churn_steps_paired () =
  let w = Kube.Workload.pod_churn ~start:100 ~spacing:10 ~lifetime:50 ~n:3 () in
  Alcotest.(check int) "two steps per pod" 6 (List.length w);
  let labels = Kube.Workload.labels w in
  Alcotest.(check bool) "has create churn-0" true (List.mem_assoc 100 labels);
  (* Creation at start + i*spacing; deletion lifetime later. *)
  Alcotest.(check (list int)) "times" [ 100; 110; 120; 150; 160; 170 ]
    (List.sort compare (List.map fst labels))

let claims_workload_names () =
  let w = Kube.Workload.pods_with_claims ~n:2 () in
  let text = String.concat " " (List.map snd (Kube.Workload.labels w)) in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions claim vol-0" true (contains "vol-0");
  Alcotest.(check bool) "mentions app-1" true (contains "app-1")

let rolling_upgrade_ordering () =
  let w = Kube.Workload.rolling_upgrade ~start:1_000 ~pod:"p" ~from_node:"a" ~to_node:"b" () in
  let times = List.map fst (Kube.Workload.labels w) in
  Alcotest.(check (list int)) "create, delete, recreate" (List.sort compare times) times;
  Alcotest.(check int) "three steps" 3 (List.length w)

let create_pod_unpinned_gets_scheduled () =
  let cluster = boot () in
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.create_pod cluster "loose"));
  Kube.Cluster.run cluster ~until:3_000_000;
  match History.State.get (Kube.Cluster.truth cluster) "pods/loose" with
  | Some (Kube.Resource.Pod p) -> Alcotest.(check bool) "bound" true (p.Kube.Resource.node <> None)
  | _ -> Alcotest.fail "pod missing"

let create_pod_with_claim_creates_both () =
  let cluster = boot () in
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.create_pod ~pvc:"data" cluster "app"));
  Kube.Cluster.run cluster ~until:2_000_000;
  let truth = Kube.Cluster.truth cluster in
  Alcotest.(check bool) "pod" true (History.State.mem truth "pods/app");
  match History.State.get truth "pvcs/data" with
  | Some (Kube.Resource.Pvc c) ->
      Alcotest.(check (option string)) "owner" (Some "app") c.Kube.Resource.owner_pod
  | _ -> Alcotest.fail "claim missing"

let mark_pod_deleted_noop_when_absent () =
  let cluster = boot () in
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:1_000_000 (fun () ->
         Kube.Workload.mark_pod_deleted cluster "ghost"));
  Kube.Cluster.run cluster ~until:2_000_000;
  Alcotest.(check bool) "still absent" false
    (History.State.mem (Kube.Cluster.truth cluster) "pods/ghost")

let node_lifecycle_actions () =
  let cluster = boot () in
  let engine = Kube.Cluster.engine cluster in
  ignore (Dsim.Engine.schedule_at engine ~time:1_000_000 (fun () ->
      Kube.Workload.create_node cluster "extra"));
  ignore (Dsim.Engine.schedule_at engine ~time:2_000_000 (fun () ->
      Kube.Workload.delete_node cluster "node-3"));
  Kube.Cluster.run cluster ~until:3_000_000;
  let truth = Kube.Cluster.truth cluster in
  Alcotest.(check bool) "extra created" true (History.State.mem truth "nodes/extra");
  Alcotest.(check bool) "node-3 deleted" false (History.State.mem truth "nodes/node-3")

let spec_scaling_actions () =
  let cluster = boot () in
  let engine = Kube.Cluster.engine cluster in
  ignore (Dsim.Engine.schedule_at engine ~time:1_000_000 (fun () ->
      Kube.Workload.set_cassdc_replicas cluster "dc" 2));
  ignore (Dsim.Engine.schedule_at engine ~time:1_100_000 (fun () ->
      Kube.Workload.set_rset_replicas cluster "rs" 4));
  Kube.Cluster.run cluster ~until:2_000_000;
  let truth = Kube.Cluster.truth cluster in
  (match History.State.get truth "cassdcs/dc" with
  | Some (Kube.Resource.Cassdc d) -> Alcotest.(check int) "dc replicas" 2 d.Kube.Resource.replicas
  | _ -> Alcotest.fail "cassdc missing");
  match History.State.get truth "rsets/rs" with
  | Some (Kube.Resource.Rset r) -> Alcotest.(check int) "rs replicas" 4 r.Kube.Resource.rs_replicas
  | _ -> Alcotest.fail "rset missing"

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "churn steps paired" `Quick churn_steps_paired;
        Alcotest.test_case "claims workload names" `Quick claims_workload_names;
        Alcotest.test_case "rolling upgrade ordering" `Quick rolling_upgrade_ordering;
        Alcotest.test_case "unpinned pod gets scheduled" `Quick
          create_pod_unpinned_gets_scheduled;
        Alcotest.test_case "pod with claim creates both" `Quick
          create_pod_with_claim_creates_both;
        Alcotest.test_case "mark absent pod is a no-op" `Quick mark_pod_deleted_noop_when_absent;
        Alcotest.test_case "node lifecycle actions" `Quick node_lifecycle_actions;
        Alcotest.test_case "spec scaling actions" `Quick spec_scaling_actions;
      ] );
  ]
