(* Perturbation-space coverage accounting. *)

let events =
  [
    (1_000, "pods/a", History.Event.Create);
    (2_000, "nodes/n", History.Event.Delete);
    (3_000, "pvcs/c", History.Event.Create);
  ]

let space () = Sieve.Coverage.create ~config:Kube.Cluster.default_config ~events

let space_shape () =
  let c = space () in
  (* Components consuming each key: pods/a -> kubelets(3) + scheduler +
     volumectl + cassop = 6; nodes/n -> scheduler = 1; pvcs/c ->
     volumectl + cassop = 2. Times 3 patterns. *)
  Alcotest.(check int) "total cells" ((6 + 1 + 2) * 3) (Sieve.Coverage.total c);
  Alcotest.(check int) "nothing covered" 0 (Sieve.Coverage.covered c);
  Alcotest.(check (float 0.001)) "ratio 0" 0.0 (Sieve.Coverage.ratio c)

let drop_marks_gap_cells () =
  let c = space () in
  Sieve.Coverage.note c
    (Sieve.Strategy.observability_gap ~dst:"scheduler" ~key_prefix:"nodes/n" ~from:0 ~until:1 ());
  Alcotest.(check int) "one cell" 1 (Sieve.Coverage.covered c);
  match Sieve.Coverage.by_pattern c with
  | [ (`Staleness, 0, _); (`Obs_gap, 1, _); (`Time_travel, 0, _) ] -> ()
  | _ -> Alcotest.fail "expected a single obs-gap cell"

let unscoped_drop_marks_all_consumed () =
  let c = space () in
  Sieve.Coverage.note c (Sieve.Strategy.observability_gap ~dst:"cassop" ~from:0 ~until:1 ());
  (* cassop consumes pods/a and pvcs/c. *)
  Alcotest.(check int) "two cells" 2 (Sieve.Coverage.covered c)

let crash_marks_time_travel () =
  let c = space () in
  Sieve.Coverage.note c (Sieve.Strategy.Crash_restart { victim = "kubelet-1"; at = 0; downtime = 1 });
  (* kubelet-1 consumes pods/a only. *)
  match Sieve.Coverage.by_pattern c with
  | [ (`Staleness, 0, _); (`Obs_gap, 0, _); (`Time_travel, 1, _) ] -> ()
  | _ -> Alcotest.fail "expected one time-travel cell"

let apiserver_partition_marks_everyone_stale () =
  let c = space () in
  Sieve.Coverage.note c
    (Sieve.Strategy.Partition_window { a = "etcd"; b = "api-2"; from = 0; until = 1 });
  (* Every (component, key) pair gets its staleness cell: 9 pairs. *)
  match Sieve.Coverage.by_pattern c with
  | [ (`Staleness, 9, 9); (`Obs_gap, 0, _); (`Time_travel, 0, _) ] -> ()
  | other ->
      Alcotest.fail
        (String.concat ", "
           (List.map
              (fun (p, d, t) ->
                Printf.sprintf "%s %d/%d" (Sieve.Coverage.pattern_to_string p) d t)
              other))

let planner_covers_everything () =
  let c = space () in
  List.iter
    (fun plan -> Sieve.Coverage.note c plan.Sieve.Planner.strategy)
    (Sieve.Planner.candidates ~config:Kube.Cluster.default_config ~events ~horizon:1_000_000 ());
  Alcotest.(check (float 0.001)) "full coverage" 1.0 (Sieve.Coverage.ratio c);
  Alcotest.(check int) "no uncovered cells" 0 (List.length (Sieve.Coverage.uncovered c))

let baselines_cannot_touch_gap_cells () =
  let c = space () in
  let components =
    List.map (fun t -> t.Sieve.Planner.component)
      (Sieve.Planner.targets_of_config Kube.Cluster.default_config)
  in
  List.iter (Sieve.Coverage.note c)
    (Sieve.Baselines.crashtuner ~events ~components ()
    @ Sieve.Baselines.cofi ~events ~components ~apiservers:[ "api-1"; "api-2" ] ()
    @ Sieve.Baselines.random_faults ~seed:1L ~components ~apiservers:[ "api-1"; "api-2" ]
        ~horizon:1_000_000 ~n:50);
  match List.assoc_opt `Obs_gap (List.map (fun (p, d, t) -> (p, (d, t))) (Sieve.Coverage.by_pattern c)) with
  | Some (0, total) when total > 0 -> ()
  | _ -> Alcotest.fail "fault injection must not reach observability-gap cells"

let suites =
  [
    ( "coverage",
      [
        Alcotest.test_case "space shape" `Quick space_shape;
        Alcotest.test_case "drop marks gap cells" `Quick drop_marks_gap_cells;
        Alcotest.test_case "unscoped drop marks all consumed" `Quick
          unscoped_drop_marks_all_consumed;
        Alcotest.test_case "crash marks time travel" `Quick crash_marks_time_travel;
        Alcotest.test_case "apiserver partition marks everyone stale" `Quick
          apiserver_partition_marks_everyone_stale;
        Alcotest.test_case "planner covers everything" `Quick planner_covers_everything;
        Alcotest.test_case "baselines cannot touch gap cells" `Quick
          baselines_cannot_touch_gap_cells;
      ] );
  ]
