(* Leases: TTLs against the virtual clock. *)

let grant_and_expire () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:100 ~now:0 in
  Etcdlike.Lease.attach l ~lease:id ~key:"locks/a";
  Etcdlike.Lease.attach l ~lease:id ~key:"locks/b";
  Alcotest.(check int) "one lease" 1 (Etcdlike.Lease.active l);
  Alcotest.(check (list (pair int (list string)))) "expired keys"
    [ (id, [ "locks/a"; "locks/b" ]) ]
    (Etcdlike.Lease.expire l ~now:100);
  Alcotest.(check int) "lease gone" 0 (Etcdlike.Lease.active l)

let keepalive_extends () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:100 ~now:0 in
  Alcotest.(check bool) "keepalive ok" true (Etcdlike.Lease.keepalive l ~lease:id ~now:80);
  Alcotest.(check int) "not expired at 150" 0 (List.length (Etcdlike.Lease.expire l ~now:150));
  Alcotest.(check int) "expired at 180" 1 (List.length (Etcdlike.Lease.expire l ~now:180))

let keepalive_after_expiry_fails () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:10 ~now:0 in
  ignore (Etcdlike.Lease.expire l ~now:50);
  Alcotest.(check bool) "dead lease" false (Etcdlike.Lease.keepalive l ~lease:id ~now:60)

let revoke_returns_keys () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:1000 ~now:0 in
  Etcdlike.Lease.attach l ~lease:id ~key:"k";
  Alcotest.(check (list string)) "keys back" [ "k" ] (Etcdlike.Lease.revoke l ~lease:id);
  Alcotest.(check int) "gone" 0 (Etcdlike.Lease.active l)

let attach_unknown_ignored () =
  let l = Etcdlike.Lease.create () in
  Etcdlike.Lease.attach l ~lease:42 ~key:"k";
  Alcotest.(check (list string)) "nothing attached" [] (Etcdlike.Lease.keys l ~lease:42)

let attach_is_idempotent () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:10 ~now:0 in
  Etcdlike.Lease.attach l ~lease:id ~key:"k";
  Etcdlike.Lease.attach l ~lease:id ~key:"k";
  Alcotest.(check (list string)) "single binding" [ "k" ] (Etcdlike.Lease.keys l ~lease:id)

let ttl_remaining_reports () =
  let l = Etcdlike.Lease.create () in
  let id = Etcdlike.Lease.grant l ~ttl:100 ~now:0 in
  Alcotest.(check (option int)) "75 left" (Some 75) (Etcdlike.Lease.ttl_remaining l ~lease:id ~now:25);
  Alcotest.(check (option int)) "clamped" (Some 0)
    (Etcdlike.Lease.ttl_remaining l ~lease:id ~now:500);
  Alcotest.(check (option int)) "unknown lease" None
    (Etcdlike.Lease.ttl_remaining l ~lease:999 ~now:0)

let distinct_ids () =
  let l = Etcdlike.Lease.create () in
  let a = Etcdlike.Lease.grant l ~ttl:10 ~now:0 in
  let b = Etcdlike.Lease.grant l ~ttl:10 ~now:0 in
  Alcotest.(check bool) "fresh ids" true (a <> b)

let suites =
  [
    ( "lease",
      [
        Alcotest.test_case "grant and expire" `Quick grant_and_expire;
        Alcotest.test_case "keepalive extends" `Quick keepalive_extends;
        Alcotest.test_case "keepalive after expiry fails" `Quick keepalive_after_expiry_fails;
        Alcotest.test_case "revoke returns keys" `Quick revoke_returns_keys;
        Alcotest.test_case "attach unknown ignored" `Quick attach_unknown_ignored;
        Alcotest.test_case "attach is idempotent" `Quick attach_is_idempotent;
        Alcotest.test_case "ttl remaining reports" `Quick ttl_remaining_reports;
        Alcotest.test_case "distinct ids" `Quick distinct_ids;
      ] );
  ]
