(* The component write/read client: retries, rotation, quorum reads,
   lease operations. *)

let setup () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  let intercept = Kube.Intercept.create () in
  let etcd = Kube.Etcd.create ~net ~intercept () in
  let apis =
    List.map
      (fun name ->
        let api = Kube.Apiserver.create ~net ~intercept ~name ~etcd:"etcd" () in
        Kube.Apiserver.start api;
        api)
      [ "api-1"; "api-2" ]
  in
  Dsim.Network.register net "comp" ~serve:(fun ~src:_ _ _ -> ()) ();
  let client = Kube.Client.create ~net ~owner:"comp" ~endpoints:[ "api-1"; "api-2" ] () in
  Dsim.Engine.run ~until:100_000 engine;
  (engine, net, etcd, apis, client)

let run_for engine us = Dsim.Engine.run ~until:(Dsim.Engine.now engine + us) engine

let txn_reaches_etcd () =
  let engine, _, etcd, _, client = setup () in
  let result = ref None in
  Kube.Client.txn client (Kube.Messages.put "pods/a" (Kube.Resource.make_pod "a")) (fun r ->
      result := Some r);
  run_for engine 500_000;
  (match !result with
  | Some (Ok { Kube.Client.succeeded = true; rev }) -> Alcotest.(check int) "rev 1" 1 rev
  | _ -> Alcotest.fail "txn failed");
  Alcotest.(check bool) "in etcd" true (Etcdlike.Kv.get (Kube.Etcd.kv etcd) "pods/a" <> None)

let rotates_past_dead_endpoint () =
  let engine, net, etcd, _, client = setup () in
  Dsim.Network.crash net "api-1";
  Kube.Client.txn_ client (Kube.Messages.put "pods/b" (Kube.Resource.make_pod "b"));
  run_for engine 5_000_000;
  Alcotest.(check bool) "committed via api-2" true
    (Etcdlike.Kv.get (Kube.Etcd.kv etcd) "pods/b" <> None)

let reports_unavailable_when_all_dead () =
  let engine, net, _, _, client = setup () in
  Dsim.Network.crash net "api-1";
  Dsim.Network.crash net "api-2";
  let result = ref None in
  Kube.Client.txn client (Kube.Messages.put "pods/c" (Kube.Resource.make_pod "c")) (fun r ->
      result := Some r);
  run_for engine 10_000_000;
  match !result with
  | Some (Error `Unavailable) -> ()
  | _ -> Alcotest.fail "expected Unavailable"

let quorum_get_reads_truth () =
  let engine, _, etcd, _, client = setup () in
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "nodes/n" (Kube.Resource.make_node "n"));
  let result = ref None in
  Kube.Client.get_quorum client "nodes/n" (fun r -> result := Some r);
  run_for engine 500_000;
  match !result with
  | Some (Ok (Some (Kube.Resource.Node _, 1))) -> ()
  | _ -> Alcotest.fail "expected the node at mod rev 1"

let list_quorum_reads_truth () =
  let engine, _, etcd, _, client = setup () in
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/x" (Kube.Resource.make_pod "x"));
  ignore (Etcdlike.Kv.put (Kube.Etcd.kv etcd) "pods/y" (Kube.Resource.make_pod "y"));
  let result = ref None in
  Kube.Client.list_quorum client ~prefix:"pods/" (fun r -> result := Some r);
  run_for engine 500_000;
  match !result with
  | Some (Ok items) -> Alcotest.(check int) "two pods" 2 (List.length items)
  | _ -> Alcotest.fail "list failed"

let lease_lifecycle () =
  let engine, _, etcd, _, client = setup () in
  let lease = ref None in
  Kube.Client.lease_grant client ~ttl:1_000_000 (function
    | Ok id -> lease := Some id
    | Error _ -> ());
  run_for engine 300_000;
  let id = Option.get !lease in
  (* Attach a key via a leased txn. *)
  let ok = ref false in
  Kube.Client.txn ~lease:id client
    (Etcdlike.Txn.create_if_absent ~key:"locks/t" (Kube.Resource.make_lock ~holder:"comp" "t"))
    (fun r -> ok := (match r with Ok { Kube.Client.succeeded = true; _ } -> true | _ -> false));
  run_for engine 300_000;
  Alcotest.(check bool) "acquired" true !ok;
  Alcotest.(check bool) "key exists" true (Etcdlike.Kv.get (Kube.Etcd.kv etcd) "locks/t" <> None);
  (* Keepalive works while alive. *)
  let alive = ref None in
  Kube.Client.lease_keepalive client ~lease:id (function
    | Ok v -> alive := Some v
    | Error _ -> ());
  run_for engine 300_000;
  Alcotest.(check (option bool)) "keepalive ok" (Some true) !alive;
  (* Stop renewing: the store expires the lease and deletes the key. *)
  run_for engine 2_500_000;
  Alcotest.(check bool) "key expired away" true
    (Etcdlike.Kv.get (Kube.Etcd.kv etcd) "locks/t" = None);
  let gone = ref None in
  Kube.Client.lease_keepalive client ~lease:id (function
    | Ok v -> gone := Some v
    | Error _ -> ());
  run_for engine 300_000;
  Alcotest.(check (option bool)) "keepalive reports gone" (Some false) !gone

let lease_revoke_deletes_keys () =
  let engine, _, etcd, _, client = setup () in
  let lease = ref None in
  Kube.Client.lease_grant client ~ttl:10_000_000 (function
    | Ok id -> lease := Some id
    | Error _ -> ());
  run_for engine 300_000;
  let id = Option.get !lease in
  Kube.Client.txn_ ~lease:id client
    (Etcdlike.Txn.create_if_absent ~key:"locks/r" (Kube.Resource.make_lock ~holder:"comp" "r"));
  run_for engine 300_000;
  Kube.Client.lease_revoke client ~lease:id;
  run_for engine 300_000;
  Alcotest.(check bool) "key revoked away" true
    (Etcdlike.Kv.get (Kube.Etcd.kv etcd) "locks/r" = None)

let suites =
  [
    ( "client",
      [
        Alcotest.test_case "txn reaches etcd" `Quick txn_reaches_etcd;
        Alcotest.test_case "rotates past dead endpoint" `Quick rotates_past_dead_endpoint;
        Alcotest.test_case "reports unavailable when all dead" `Quick
          reports_unavailable_when_all_dead;
        Alcotest.test_case "quorum get reads truth" `Quick quorum_get_reads_truth;
        Alcotest.test_case "list quorum reads truth" `Quick list_quorum_reads_truth;
        Alcotest.test_case "lease lifecycle" `Quick lease_lifecycle;
        Alcotest.test_case "lease revoke deletes keys" `Quick lease_revoke_deletes_keys;
      ] );
  ]
