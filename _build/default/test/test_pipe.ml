(* FIFO watch-stream pipes: ordering, interception, stream breakage. *)

let ev rev key = History.Event.make ~rev ~key ~op:History.Event.Create (Some (Kube.Resource.make_node key))

let setup () =
  let engine = Dsim.Engine.create () in
  let net = Dsim.Network.create engine in
  Dsim.Network.register net "up" ~serve:(fun ~src:_ _ _ -> ()) ();
  Dsim.Network.register net "down" ~serve:(fun ~src:_ _ _ -> ()) ();
  let intercept = Kube.Intercept.create () in
  let received = ref [] in
  let pipe =
    Kube.Pipe.create ~net ~intercept
      ~edge:Kube.Intercept.{ src = "up"; dst = "down" }
      ~deliver:(fun item -> received := item :: !received)
      ()
  in
  (engine, net, intercept, pipe, received)

let revs received =
  List.rev_map
    (function
      | Kube.Pipe.Event e -> e.History.Event.rev
      | Kube.Pipe.Bookmark r -> -r
      | Kube.Pipe.Seal { upto_rev; _ } -> -(1000 + upto_rev))
    !received

let fifo_ordering () =
  let engine, _, _, pipe, received = setup () in
  for i = 1 to 10 do
    Kube.Pipe.send pipe (Kube.Pipe.Event (ev i "k"))
  done;
  Dsim.Engine.run engine;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (revs received)

let delay_preserves_fifo () =
  let engine, _, intercept, pipe, received = setup () in
  (* Delay only rev 1; rev 2 must still arrive after it. *)
  Kube.Intercept.set_policy intercept (fun _ e ->
      if e.History.Event.rev = 1 then Kube.Intercept.Delay 500_000 else Kube.Intercept.Pass);
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 1 "k"));
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 2 "k"));
  Dsim.Engine.run engine;
  Alcotest.(check (list int)) "still 1 then 2" [ 1; 2 ] (revs received);
  Alcotest.(check bool) "took the delay" true (Dsim.Engine.now engine >= 500_000)

let drop_is_silent_and_stream_survives () =
  let engine, _, intercept, pipe, received = setup () in
  Kube.Intercept.set_policy intercept (fun _ e ->
      if e.History.Event.rev = 2 then Kube.Intercept.Drop else Kube.Intercept.Pass);
  List.iter (fun i -> Kube.Pipe.send pipe (Kube.Pipe.Event (ev i "k"))) [ 1; 2; 3 ];
  Dsim.Engine.run engine;
  Alcotest.(check (list int)) "2 silently missing" [ 1; 3 ] (revs received);
  Alcotest.(check bool) "pipe healthy" false (Kube.Pipe.is_closed pipe)

let bookmarks_bypass_interceptor () =
  let engine, _, intercept, pipe, received = setup () in
  Kube.Intercept.set_policy intercept (fun _ _ -> Kube.Intercept.Drop);
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 1 "k"));
  Kube.Pipe.send pipe (Kube.Pipe.Bookmark 7);
  Dsim.Engine.run engine;
  Alcotest.(check (list int)) "only the bookmark" [ -7 ] (revs received)

let partition_breaks_stream () =
  let engine, net, _, pipe, received = setup () in
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 1 "k"));
  Dsim.Engine.run engine;
  Dsim.Network.partition net "up" "down";
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 2 "k"));
  Dsim.Engine.run engine;
  Alcotest.(check (list int)) "only pre-partition" [ 1 ] (revs received);
  Alcotest.(check bool) "stream broken, not leaky" true (Kube.Pipe.is_closed pipe);
  (* Healing does not resurrect a broken stream. *)
  Dsim.Network.heal net "up" "down";
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 3 "k"));
  Dsim.Engine.run engine;
  Alcotest.(check (list int)) "still only 1" [ 1 ] (revs received)

let subscriber_restart_breaks_stream () =
  let engine, net, _, pipe, received = setup () in
  Dsim.Network.crash net "down";
  Dsim.Network.restart net "down";
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 1 "k"));
  Dsim.Engine.run engine;
  Alcotest.(check int) "nothing delivered to new incarnation" 0 (List.length !received);
  Alcotest.(check bool) "broken" true (Kube.Pipe.is_closed pipe)

let close_stops_sends () =
  let engine, _, _, pipe, received = setup () in
  Kube.Pipe.close pipe;
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 1 "k"));
  Dsim.Engine.run engine;
  Alcotest.(check int) "no delivery" 0 (List.length !received)

let in_flight_counts () =
  let engine, _, _, pipe, _ = setup () in
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 1 "k"));
  Kube.Pipe.send pipe (Kube.Pipe.Event (ev 2 "k"));
  Alcotest.(check int) "two queued" 2 (Kube.Pipe.in_flight pipe);
  Dsim.Engine.run engine;
  Alcotest.(check int) "drained" 0 (Kube.Pipe.in_flight pipe)

let suites =
  [
    ( "pipe",
      [
        Alcotest.test_case "fifo ordering" `Quick fifo_ordering;
        Alcotest.test_case "delay preserves fifo" `Quick delay_preserves_fifo;
        Alcotest.test_case "drop is silent; stream survives" `Quick
          drop_is_silent_and_stream_survives;
        Alcotest.test_case "bookmarks bypass interceptor" `Quick bookmarks_bypass_interceptor;
        Alcotest.test_case "partition breaks stream" `Quick partition_breaks_stream;
        Alcotest.test_case "subscriber restart breaks stream" `Quick
          subscriber_restart_breaks_stream;
        Alcotest.test_case "close stops sends" `Quick close_stops_sends;
        Alcotest.test_case "in_flight counts" `Quick in_flight_counts;
      ] );
  ]
