(* Deployment controller: two-level rollouts through the store, the
   zero-downtime invariant, and orphan cleanup. *)

let boot () =
  let config =
    {
      Kube.Cluster.default_config with
      Kube.Cluster.with_replicaset = true;
      with_deployment = true;
    }
  in
  let cluster = Kube.Cluster.create ~config () in
  Kube.Cluster.start cluster;
  cluster

let running_pods cluster =
  History.State.fold
    (fun _ (v, _) acc ->
      match v with
      | Kube.Resource.Pod
          { Kube.Resource.phase = Kube.Resource.Running; deletion_timestamp = None; _ } ->
          acc + 1
      | _ -> acc)
    (Kube.Cluster.truth cluster) 0

let generation_pods cluster dep generation =
  History.State.keys_with_prefix (Kube.Cluster.truth cluster) ~prefix:"pods/"
  |> List.filter (fun key ->
         let p = Printf.sprintf "pods/%s-g%d-" dep generation in
         String.length key >= String.length p && String.sub key 0 (String.length p) = p)
  |> List.length

let initial_rollout_reaches_replicas () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.deployment_rollout ~start:1_000_000 ~dep:"web" ~replicas:3 ~generations:1
       ~gap:0 ());
  Kube.Cluster.run cluster ~until:6_000_000;
  Alcotest.(check int) "three g1 pods" 3 (generation_pods cluster "web" 1);
  Alcotest.(check int) "three running" 3 (running_pods cluster)

let rolling_update_replaces_generation () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.deployment_rollout ~start:1_000_000 ~dep:"web" ~replicas:3 ~generations:2
       ~gap:5_000_000 ());
  Kube.Cluster.run cluster ~until:14_000_000;
  Alcotest.(check int) "g1 drained" 0 (generation_pods cluster "web" 1);
  Alcotest.(check int) "g2 serving" 3 (generation_pods cluster "web" 2);
  (* The old generation's ReplicaSet object is retired. *)
  Alcotest.(check bool) "g1 rset gone" false
    (History.State.mem (Kube.Cluster.truth cluster) (Kube.Resource.rset_key "web-g1"));
  let d = Option.get (Kube.Cluster.deployment cluster) in
  Alcotest.(check int) "one rollout recorded" 1 (Kube.Deployment.rollouts_completed d)

let rollout_has_zero_downtime () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.deployment_rollout ~start:1_000_000 ~dep:"web" ~replicas:3 ~generations:3
       ~gap:5_000_000 ());
  let min_running = ref max_int in
  Dsim.Engine.every (Kube.Cluster.engine cluster) ~period:100_000 (fun () ->
      (* After the initial ramp, availability must never dip. *)
      if Dsim.Engine.now (Kube.Cluster.engine cluster) > 3_000_000 then
        min_running := min !min_running (running_pods cluster);
      true);
  Kube.Cluster.run cluster ~until:16_000_000;
  Alcotest.(check bool)
    (Printf.sprintf "never below 3 running (min %d)" !min_running)
    true (!min_running >= 3)

let orphan_pods_collected () =
  (* Deleting an rset object directly leaves its pods ownerless; the
     ReplicaSet controller's GC reaps them after the strike window. *)
  let config =
    { Kube.Cluster.default_config with Kube.Cluster.with_replicaset = true }
  in
  let cluster = Kube.Cluster.create ~config () in
  Kube.Cluster.start cluster;
  Kube.Workload.schedule cluster
    (Kube.Workload.replicaset_scale ~start:1_000_000 ~rs:"solo" ~steps:[ (0, 2) ] ());
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:3_000_000 (fun () ->
         Kube.Client.txn_ (Kube.Cluster.user cluster)
           (Kube.Messages.delete (Kube.Resource.rset_key "solo"))));
  Kube.Cluster.run cluster ~until:9_000_000;
  Alcotest.(check int) "orphans reaped" 0
    (List.length
       (History.State.keys_with_prefix (Kube.Cluster.truth cluster) ~prefix:"pods/solo-"))

let controller_crash_mid_rollout_recovers () =
  let cluster = boot () in
  Kube.Workload.schedule cluster
    (Kube.Workload.deployment_rollout ~start:1_000_000 ~dep:"web" ~replicas:3 ~generations:2
       ~gap:4_000_000 ());
  let net = Kube.Cluster.net cluster in
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:5_500_000 (fun () ->
         Dsim.Network.crash net "depctl"));
  ignore
    (Dsim.Engine.schedule_at (Kube.Cluster.engine cluster) ~time:6_500_000 (fun () ->
         Dsim.Network.restart net "depctl"));
  Kube.Cluster.run cluster ~until:16_000_000;
  Alcotest.(check int) "g2 serving despite the crash" 3 (generation_pods cluster "web" 2);
  Alcotest.(check int) "g1 drained" 0 (generation_pods cluster "web" 1)

let suites =
  [
    ( "deployment",
      [
        Alcotest.test_case "initial rollout reaches replicas" `Quick
          initial_rollout_reaches_replicas;
        Alcotest.test_case "rolling update replaces generation" `Quick
          rolling_update_replaces_generation;
        Alcotest.test_case "rollout has zero downtime" `Quick rollout_has_zero_downtime;
        Alcotest.test_case "orphan pods collected" `Quick orphan_pods_collected;
        Alcotest.test_case "controller crash mid-rollout recovers" `Quick
          controller_crash_mid_rollout_recovers;
      ] );
  ]
