(** Online subsequence-invariant monitor.

    The paper's foundation (Section 3) is a definition, not a bug oracle:
    every component's observed view [(H', S')] must be a *subsequence* of
    the committed history [(H, S)]. The simulator reproduces bugs by
    manufacturing legal-but-unfortunate subsequences — so a simulator
    defect that produced an *illegal* view (an event the store never
    committed, a cache claiming a revision it never reached) would
    silently invalidate every campaign run on top of it. This monitor
    checks the invariant itself, online, against a private mirror of the
    committed history.

    The monitor maintains its own never-compacted mirror of [H] (fed by
    {!note_commit}) plus one persistent state snapshot per revision, so
    [S] at any claimed revision is an O(1) lookup. Observations arrive
    from read-only {!Kube.Tap}s (or directly, in store-tier harnesses)
    and are checked in two tiers:

    {b Always on} — violated only by a simulator defect, regardless of
    what faults are injected:
    - {e density}: commits arrive with consecutive revisions 1, 2, 3, …
    - {e future revision}: no view may claim a revision beyond the
      committed frontier, and no cached binding may carry a mod-revision
      above the view's claimed revision;
    - {e monotonicity}: within one stream generation, delivered event
      revisions strictly increase;
    - {e authenticity}: every delivered event equals the committed event
      at its revision (key, op, value), respects the stream's key-prefix
      filter, and every cached binding [(k, (v, mod_rev))] matches a
      committed create/update of [k] with value [v] at [mod_rev].

    {b Strict mode} — additionally assumes no event was deliberately
    dropped (interceptor [Drop]); {!relax} is called on the first drop:
    - {e completeness}: a delivered event or frontier advance may not
      skip a committed event matching the stream's filter;
    - {e state equality}: a cache claiming revision [r] equals the
      committed state at [r], restricted to the stream's prefix.

    Delays, partitions and crash/restarts all {e preserve} strict-mode
    validity: pipes are FIFO, broken streams force a re-list, and a
    re-list is a stream reset, not a violation. Informer time travel
    (adopting a stale list) is likewise a reset — the bug-era semantics
    the simulator exists to study, not a conformance failure.

    The monitor is passive: it draws no randomness, schedules no work and
    writes nothing to the cluster, so an attached monitor leaves the
    simulation's trajectory and journal bytes untouched (violations are
    surfaced through a caller-supplied callback). *)

type code =
  | Density  (** a commit skipped or repeated a revision *)
  | Future_rev  (** a view claimed a revision the store never reached *)
  | Non_monotone  (** delivered event revisions went backwards in-stream *)
  | Gap  (** strict: a matching committed event was skipped *)
  | Content  (** a delivered event differs from the committed event *)
  | State_divergence  (** a cached state contradicts the committed history *)

val code_to_string : code -> string

type violation = {
  code : code;
  subject : string;  (** the stream or component that misbehaved *)
  rev : int;  (** revision at which the violation was detected *)
  detail : string;
}

val describe : violation -> string

type divergence_kind =
  | Skip  (** the stream's frontier jumped over a matching committed event *)
  | Rewind  (** a re-list adopted a revision behind the stream's past frontier *)
  | Lag  (** committed events aged past the grace period undelivered *)

val divergence_kind_to_string : divergence_kind -> string

type divergence = {
  d_stream : string;
      (** base stream name — the ['@'generation] suffix is stripped, so a
          record names the consumer, not one of its incarnations *)
  d_kind : divergence_kind;
  d_rev : int;  (** first committed revision the view missed or re-adopted at *)
  d_key : string;  (** key of the missed committed event, or the stream's prefix *)
  d_frontier : int;  (** the stream's frontier when the divergence was detected *)
  d_detail : string;
}
(** A stream's {e divergence point}: the first delivery (or absence of
    one) where its observed [(H', S')] left the committed subsequence.
    One record per base stream, the earliest detection kept — except that
    a [Lag] upgrades to [Skip] if the frontier later jumps the delayed
    revision. *)

type 'v t

val create :
  ?strict:bool -> ?track_divergence:bool -> ?on_violation:(violation -> unit) -> unit -> 'v t
(** [strict] (default true) enables the completeness and state-equality
    checks; [on_violation] fires once per distinct (code, subject) pair,
    at the first occurrence. [track_divergence] (default false) records
    each stream's divergence point — independently of strict mode, so the
    {e expected} gaps of a fault-injection run are still pinpointed after
    {!relax}. *)

val strict : 'v t -> bool

val relax : 'v t -> unit
(** Permanently drops to the always-on checks — call when an interceptor
    starts dropping events, after which gaps and divergent caches are the
    *intended* experiment, not a defect. *)

val note_commit : 'v t -> 'v History.Event.t -> unit
(** Feed every committed event, in commit order (register on
    [Kv.on_commit] / [Etcd.on_commit] before any consumer). *)

val mirror_rev : 'v t -> int
(** Revisions mirrored so far. *)

val observe_event : 'v t -> stream:string -> ?prefix:string -> 'v History.Event.t -> unit
(** A consumer applied a delivered watch event. [stream] must be unique
    per (component, upstream, generation) — a new generation is a new
    stream. *)

val observe_advance : 'v t -> stream:string -> ?prefix:string -> rev:int -> unit -> unit
(** The stream's frontier advanced to [rev] without a state change
    (bookmark, or an epoch seal whose counts agreed). *)

val observe_reset : 'v t -> stream:string -> ?prefix:string -> rev:int -> 'v History.State.t -> unit
(** The consumer rebuilt its cache from a list response claiming [rev].
    Resets the stream's frontier — backwards movement here is informer
    time travel, which is legal (if regrettable) behaviour. *)

val check_state : 'v t -> subject:string -> ?prefix:string -> rev:int -> 'v History.State.t -> unit
(** Spot-check a cache against the mirror: binding authenticity always;
    exact equality with the committed state at [rev] (restricted to
    [prefix]) in strict mode. *)

val violations : 'v t -> violation list
(** Distinct violations (first occurrence per (code, subject)), in
    detection order. *)

val total : 'v t -> int
(** Total violation occurrences, including deduplicated repeats. *)

val tracking : 'v t -> bool
(** Whether divergence tracking was requested at {!create}. *)

val divergences : 'v t -> divergence list
(** Divergence points recorded so far, in detection order. Empty unless
    created with [~track_divergence:true]. *)

val divergence_of : 'v t -> string -> divergence option
(** The divergence point of one stream (matched on the base name, with
    or without the ['@'generation] suffix). *)

val note_lag : 'v t -> stream:string -> rev:int -> key:string -> string -> unit
(** Record a [Lag] divergence: the committed event at [rev] (key [key],
    matching the stream's filter) is past due. Pure delay never trips the
    frontier checks — FIFO pipes keep the subsequence intact — so lag is
    measured from outside ({!Hooks} ages the first undelivered event
    against the engine clock) and reported here. Ignored when the stream
    already has a divergence record. *)

val note_rewind : 'v t -> stream:string -> rev:int -> key:string -> string -> unit
(** Record a [Rewind] divergence reported from outside the frontier
    checks: a replica whose local revision numbering has left the
    committed domain (e.g. a post-compaction full resync on a store that
    assigns its own revisions). Upgrades an existing [Lag] record on the
    same stream in place — the lag was merely the cause; the rewind is
    the divergence — and is ignored if the stream already diverged some
    other way. *)

val first_undelivered : 'v t -> ?prefix:string -> after:int -> unit -> 'v History.Event.t option
(** The first committed event matching [prefix] with revision strictly
    above [after] — what a stream whose frontier sits at [after] is
    still owed. *)

val committed_at : 'v t -> int -> 'v History.Event.t option
(** The committed event at a revision, if the mirror holds it. *)
