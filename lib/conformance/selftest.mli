(** Mutation self-test: proof the monitor has teeth.

    A monitor that never fires is indistinguishable from a monitor that
    checks nothing, so the conformance layer ships with its own killers:
    a committed history is generated, then replayed to a simulated
    consumer with one deliberate perturbation — a dropped delivery, two
    reordered deliveries, a stale cache claiming a fresh revision, a
    corrupted event value, a frontier beyond the committed history — and
    each perturbation must trip the monitor (while the unperturbed
    control replay must not).

    Deterministic for a given seed; a soak runs many derived seeds. The
    perturbations are constructed to be detectable for {e every} seed
    (e.g. the dropped event is never the last one, so a later delivery
    always exposes the gap). *)

type outcome = {
  mutation : string;  (** ["control"] or one of {!mutations} *)
  tripped : bool;  (** the monitor reported at least one violation *)
  codes : Monitor.code list;  (** distinct violation codes, detection order *)
}

val mutations : string list
(** The perturbations, excluding the control. *)

val ok : outcome -> bool
(** Control must stay silent; every mutation must trip. *)

val run : ?seed:int64 -> ?events:int -> unit -> outcome list
(** Generates a history of roughly [events] commits (default 40; puts and
    deletes over a small key pool) through a real {!Etcdlike.Kv}, then
    replays it against a fresh monitor once per perturbation. The control
    outcome is first. *)

(** {2 HBase-boundary mutations}

    The same teeth, ground against the ZooKeeper delivery boundary: a
    one-shot watch notification lost between fire and re-arm, a master
    region map assembled from a truncated catch-up pull while claiming
    the leader's head revision, and a forged znode payload. These pin
    the exact violation {e code} each defect must surface as — a monitor
    that fires the wrong alarm would misdirect every diagnosis card
    built on it. *)

val hbase_mutations : string list
(** The HBase-boundary perturbations, excluding the control. *)

val hbase_expected_code : string -> Monitor.code option
(** The code each HBase mutation must trip:
    ["drop-zk-notify"] → [Gap], ["stale-region-map"] →
    [State_divergence], ["forge-znode"] → [Content]. *)

val hbase_ok : outcome -> bool
(** Control must stay silent; every mutation must trip {e with} its
    expected code among the distinct codes reported. *)

val run_hbase : ?seed:int64 -> ?events:int -> unit -> outcome list
(** Like {!run}, over znode-flavored keys ([region/*], [rs/registry])
    with the HBase-boundary perturbations. The control outcome is
    first. *)
