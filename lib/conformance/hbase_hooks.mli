(** Conformance taps for the HBase substrate: one {!Monitor} threaded
    through the ZooKeeper delivery boundaries.

    The monitored stream is leader→follower replication — the follower's
    observed [(H', S')] against the leader's committed [(H, S)] — plus
    periodic state spot-checks of the follower replica at its claimed
    frontier. One-shot watch deliveries are {e not} frontier-checked:
    losing the events between a firing and the re-arm is the protocol's
    documented behaviour (the §4.2.3 observability gap under study), not
    a simulator defect. *)

type t

val attach :
  ?strict:bool -> ?track_divergence:bool -> ?lag_grace:int -> ?check_period:int ->
  Hbaselike.Cluster.t -> t
(** Attach after {!Hbaselike.Cluster.create}, before [start]. Strict mode
    relaxes automatically at the first interceptor [Drop]. *)

val monitor : t -> string Monitor.t

val violations : t -> Monitor.violation list

val total : t -> int

val divergences : t -> Monitor.divergence list

val finish : t -> unit
(** Final sweep; call once the run is over. *)
