(** Cluster wiring for the {!Monitor}.

    [attach] threads one monitor through every cache boundary the paper
    names: the store's commit stream ([Etcd.on_commit] feeds the mirror —
    the {e canonical} leader-committed stream when the store is
    replicated), each apiserver watch cache and every component informer
    (via the read-only {!Kube.Tap}s), plus a periodic state spot-check of
    every cache against the committed history. Under a replicated store
    each replica's applied state machine is swept too, as stream
    ["<replica><-raft"]: replication lag registers as a [Lag] divergence
    off the canonical history, and a non-deterministic apply trips
    [State_divergence] — followers must be stale, never wrong. The interceptor's observer slot
    is used to {!Monitor.relax} the monitor the first time a strategy
    *drops* an event — from then on gaps and divergent caches are the
    experiment, not a defect — while delays, partitions and
    crash/restarts keep strict mode (FIFO pipes and re-list recovery
    preserve the strong invariants).

    Attach after {!Kube.Cluster.create} and before {!Kube.Cluster.start},
    so the mirror sees the seeding commits. The monitor is passive: it
    draws no randomness and emits trace/metrics records only when a
    violation fires, so attaching it leaves a correct run's trajectory,
    trace and journal byte-identical. *)

type t

val attach :
  ?strict:bool ->
  ?track_divergence:bool ->
  ?lag_grace:int ->
  ?check_period:int ->
  Kube.Cluster.t ->
  t
(** [check_period] (default 500 ms of virtual time) is the cadence of the
    periodic per-cache state check; each sweep skips caches whose claimed
    revision and tap activity are unchanged since their last full check,
    so quiet components cost nothing. Violations are recorded in the
    trace as ["conformance.violation"] entries and counted in the
    ["conformance.violations"] metric.

    [track_divergence] (default false) additionally records each
    stream's divergence point ({!Monitor.divergence}): skips and rewinds
    are caught at the taps, and each sweep ages the first undelivered
    committed event of every stream against the engine clock, reporting
    a [Lag] divergence once it exceeds [lag_grace] (default 250 ms of
    virtual time — above transport latency, below any injected delay
    worth diagnosing). Tracking draws no randomness and schedules
    nothing extra, so it leaves the run's trajectory and trace
    unchanged. *)

val finish : t -> unit
(** Run one final state check over every cache — call after the run so
    short horizons that never reached a periodic check are still
    verified. *)

val monitor : t -> Kube.Resource.value Monitor.t

val violations : t -> Monitor.violation list

val total : t -> int

val divergences : t -> Monitor.divergence list
(** Divergence points recorded so far ({!Monitor.divergences}); empty
    unless attached with [~track_divergence:true]. *)
