type outcome = { mutation : string; tripped : bool; codes : Monitor.code list }

let mutations =
  [ "drop-event"; "reorder-deliveries"; "stale-cache"; "corrupt-value"; "future-claim" ]

let ok o = if String.equal o.mutation "control" then not o.tripped else o.tripped

let distinct_codes violations =
  List.fold_left
    (fun acc (v : Monitor.violation) -> if List.mem v.Monitor.code acc then acc else acc @ [ v.Monitor.code ])
    [] violations

(* A committed history with enough texture to perturb: puts and deletes
   over a small key pool, through the real store so ops/mod-revs are the
   production ones. *)
let pod_keys = Array.init 6 (fun i -> Printf.sprintf "pods/p%d" i)

let generate_history rng ?(keys = pod_keys) ~events () =
  let kv : string Etcdlike.Kv.t = Etcdlike.Kv.create () in
  let counter = ref 0 in
  while Etcdlike.Kv.rev kv < events do
    let key = Dsim.Rng.pick rng keys in
    if Dsim.Rng.chance rng 0.3 then ignore (Etcdlike.Kv.delete kv key)
    else begin
      incr counter;
      ignore (Etcdlike.Kv.put kv key (Printf.sprintf "v%d" !counter))
    end
  done;
  match Etcdlike.Kv.since kv ~rev:0 with Ok events -> events | Error _ -> assert false

(* Replays [delivered] to a consumer stream, building its cache the way
   an informer does, then spot-checks the final cache at [claim]. *)
let replay monitor ~committed ~delivered ~claim ~skip_in_state =
  List.iter (Monitor.note_commit monitor) committed;
  let state =
    List.fold_left
      (fun state (e : string History.Event.t) ->
        Monitor.observe_event monitor ~stream:"selftest" e;
        if List.mem e.History.Event.rev skip_in_state then state else History.State.apply state e)
      History.State.empty delivered
  in
  Monitor.check_state monitor ~subject:"selftest" ~rev:claim state

let run ?(seed = 20260704L) ?(events = 40) () =
  let rng = Dsim.Rng.create seed in
  let committed = generate_history rng ~events () in
  let n = List.length committed in
  assert (n >= 10);
  let last_rev = (List.nth committed (n - 1)).History.Event.rev in
  (* Never the last event, so a later delivery always exposes the hole. *)
  let k = Dsim.Rng.int rng (n - 1) in
  let arr = Array.of_list committed in
  let one mutation =
    let monitor = Monitor.create () in
    (match mutation with
    | "control" ->
        replay monitor ~committed ~delivered:committed ~claim:last_rev ~skip_in_state:[]
    | "drop-event" ->
        let delivered = List.filteri (fun i _ -> i <> k) committed in
        replay monitor ~committed ~delivered ~claim:last_rev
          ~skip_in_state:[ arr.(k).History.Event.rev ]
    | "reorder-deliveries" ->
        let delivered =
          List.concat
            (List.mapi
               (fun i e -> if i = k then [ arr.(k + 1); e ] else if i = k + 1 then [] else [ e ])
               committed)
        in
        replay monitor ~committed ~delivered ~claim:last_rev ~skip_in_state:[]
    | "stale-cache" ->
        (* Every event delivered, but the cache missed applying the final
           one while still claiming the full revision — skipping the last
           event (rather than a random one) guarantees the divergence is
           never papered over by a later write to the same key. *)
        replay monitor ~committed ~delivered:committed ~claim:last_rev
          ~skip_in_state:[ last_rev ]
    | "corrupt-value" ->
        let delivered =
          List.mapi
            (fun i (e : string History.Event.t) ->
              if i = k then { e with History.Event.value = Some "corrupted-by-selftest" } else e)
            committed
        in
        replay monitor ~committed ~delivered ~claim:last_rev ~skip_in_state:[]
    | "future-claim" ->
        List.iter (Monitor.note_commit monitor) committed;
        List.iter (Monitor.observe_event monitor ~stream:"selftest") committed;
        Monitor.observe_advance monitor ~stream:"selftest" ~rev:(last_rev + 5) ()
    | _ -> invalid_arg ("Selftest.run: unknown mutation " ^ mutation));
    let violations = Monitor.violations monitor in
    { mutation; tripped = violations <> []; codes = distinct_codes violations }
  in
  List.map one ("control" :: mutations)

(* --- HBase-boundary mutations -------------------------------------- *)

let hbase_mutations = [ "drop-zk-notify"; "stale-region-map"; "forge-znode" ]

(* Unlike the kube set — which only requires each mutation to trip — the
   HBase set pins the *code* each boundary defect must surface as: a
   lost one-shot notification is a [Gap], a truncated master view
   claiming the head revision is a [State_divergence], and a forged
   znode payload is a [Content] violation. A monitor that fires the
   wrong alarm would pass the weaker check and still misdirect every
   diagnosis built on it. *)
let hbase_expected_code = function
  | "drop-zk-notify" -> Some Monitor.Gap
  | "stale-region-map" -> Some Monitor.State_divergence
  | "forge-znode" -> Some Monitor.Content
  | _ -> None

let hbase_ok o =
  if String.equal o.mutation "control" then not o.tripped
  else
    o.tripped
    &&
    match hbase_expected_code o.mutation with
    | Some code -> List.mem code o.codes
    | None -> true

let znode_keys =
  [| "region/r0"; "region/r1"; "region/r2"; "region/r3"; "rs/registry" |]

let run_hbase ?(seed = 20260704L) ?(events = 40) () =
  let rng = Dsim.Rng.create seed in
  let committed = generate_history rng ~keys:znode_keys ~events () in
  let n = List.length committed in
  assert (n >= 10);
  let last_rev = (List.nth committed (n - 1)).History.Event.rev in
  (* Never the last event, so a later delivery always exposes the hole. *)
  let k = Dsim.Rng.int rng (n - 1) in
  let arr = Array.of_list committed in
  let one mutation =
    let monitor = Monitor.create () in
    (match mutation with
    | "control" ->
        replay monitor ~committed ~delivered:committed ~claim:last_rev ~skip_in_state:[]
    | "drop-zk-notify" ->
        (* The znode's one-shot watch was consumed at event [k]'s commit
           and the notification never arrived: everything after still
           flows (the re-arm succeeded), but [k] is lost between fire
           and re-arm. *)
        let delivered = List.filteri (fun i _ -> i <> k) committed in
        replay monitor ~committed ~delivered ~claim:last_rev
          ~skip_in_state:[ arr.(k).History.Event.rev ]
    | "stale-region-map" ->
        (* A catch-up pull stopped one event short, but the master's
           region map claims the leader's head revision anyway. The
           final commit is a real commit, so the truncated map can never
           coincide with the committed head state. *)
        let delivered = List.filteri (fun i _ -> i < n - 1) committed in
        replay monitor ~committed ~delivered ~claim:last_rev ~skip_in_state:[]
    | "forge-znode" ->
        (* The delivered znode payload differs from the committed one. *)
        let delivered =
          List.mapi
            (fun i (e : string History.Event.t) ->
              if i = k then { e with History.Event.value = Some "forged-by-selftest" } else e)
            committed
        in
        replay monitor ~committed ~delivered ~claim:last_rev ~skip_in_state:[]
    | _ -> invalid_arg ("Selftest.run_hbase: unknown mutation " ^ mutation));
    let violations = Monitor.violations monitor in
    { mutation; tripped = violations <> []; codes = distinct_codes violations }
  in
  List.map one ("control" :: hbase_mutations)
