(** Conformance layer: the paper's subsequence invariant, checked online.

    {!Monitor} maintains a private mirror of the committed history and
    verifies every observed view [(H', S')] against it; {!Hooks} threads
    one monitor through a whole {!Kube.Cluster}'s cache boundaries;
    {!Model} is the pure sequential reference the differential qcheck
    harness drives against the real {!Etcdlike} stack; {!Selftest} is the
    mutation suite proving the monitor actually fires. *)

module Monitor = Monitor
module Model = Model
module Hooks = Hooks
module Hbase_hooks = Hbase_hooks
module Handle = Handle
module Selftest = Selftest
