type code = Density | Future_rev | Non_monotone | Gap | Content | State_divergence

let code_to_string = function
  | Density -> "density"
  | Future_rev -> "future-rev"
  | Non_monotone -> "non-monotone"
  | Gap -> "gap"
  | Content -> "content"
  | State_divergence -> "state-divergence"

type violation = { code : code; subject : string; rev : int; detail : string }

let describe v =
  Printf.sprintf "[%s] %s @%d: %s" (code_to_string v.code) v.subject v.rev v.detail

type stream = { mutable frontier : int }

type divergence_kind = Skip | Rewind | Lag

let divergence_kind_to_string = function Skip -> "skip" | Rewind -> "rewind" | Lag -> "lag"

type divergence = {
  d_stream : string;  (* base stream name, generation suffix stripped *)
  d_kind : divergence_kind;
  d_rev : int;
  d_key : string;
  d_frontier : int;
  d_detail : string;
}

type 'v t = {
  mutable strict_mode : bool;
  track : bool;
  on_violation : violation -> unit;
  (* Mirror of the committed history: the event at revision r sits at
     window offset r-1, and states.(r-1) is S after applying it. The
     mirror never compacts (snapshots are persistent maps sharing
     structure, so a snapshot per revision is cheap), which keeps every
     check an O(1) lookup even after the store compacts its own log. *)
  window : 'v History.Window.t;
  mutable states : 'v History.State.t array;
  mutable n_revs : int;
  streams : (string, stream) Hashtbl.t;
  seen : (code * string, unit) Hashtbl.t;
  mutable violations : violation list;  (* newest first *)
  mutable total : int;
  (* Divergence-point record, one per base stream (the '@generation'
     suffix stripped, so a re-listed informer keeps its record): the
     first delivery where the stream's observed (H', S') left the
     committed subsequence. *)
  divs : (string, divergence) Hashtbl.t;
  mutable divs_order : divergence list;  (* newest first *)
  base_frontiers : (string, int) Hashtbl.t;  (* base stream -> max frontier ever *)
}

let create ?(strict = true) ?(track_divergence = false) ?(on_violation = fun _ -> ()) () =
  {
    strict_mode = strict;
    track = track_divergence;
    on_violation;
    window = History.Window.create ();
    states = [||];
    n_revs = 0;
    streams = Hashtbl.create 32;
    seen = Hashtbl.create 16;
    violations = [];
    total = 0;
    divs = Hashtbl.create 8;
    divs_order = [];
    base_frontiers = Hashtbl.create 32;
  }

let strict t = t.strict_mode

let relax t = t.strict_mode <- false

let tracking t = t.track

(* Generations partition a stream's life for frontier monotonicity, but
   a divergence belongs to the consumer, not the incarnation. *)
let base_of stream =
  match String.index_opt stream '@' with Some i -> String.sub stream 0 i | None -> stream

let divergences t = List.rev t.divs_order

let divergence_of t stream = Hashtbl.find_opt t.divs (base_of stream)

let record_divergence t ~stream ~kind ~rev ~key ~frontier detail =
  if t.track then begin
    let base = base_of stream in
    match Hashtbl.find_opt t.divs base with
    | None ->
        let d =
          { d_stream = base; d_kind = kind; d_rev = rev; d_key = key; d_frontier = frontier;
            d_detail = detail }
        in
        Hashtbl.add t.divs base d;
        t.divs_order <- d :: t.divs_order
    | Some prior when prior.d_kind = Lag && kind = Skip ->
        (* A lagging stream whose frontier later jumps the delayed event
           was not merely slow: upgrade in place, keeping the earliest
           revision and the record's detection-order slot. *)
        let d =
          if rev <= prior.d_rev then
            { prior with d_kind = Skip; d_rev = rev; d_key = key; d_frontier = frontier;
              d_detail = detail }
          else { prior with d_kind = Skip }
        in
        Hashtbl.replace t.divs base d;
        t.divs_order <- List.map (fun e -> if e == prior then d else e) t.divs_order
    | Some prior when prior.d_kind = Lag && kind = Rewind ->
        (* A lagging stream that then re-lists into a different revision
           numbering has left the committed order entirely; the rewind
           subsumes the lag that caused it.  The rewind's own revision and
           detail carry the story, but the record keeps its slot. *)
        let d = { prior with d_kind = Rewind; d_rev = rev; d_key = key; d_frontier = frontier;
                  d_detail = detail }
        in
        Hashtbl.replace t.divs base d;
        t.divs_order <- List.map (fun e -> if e == prior then d else e) t.divs_order
    | Some _ -> ()
  end

let note_frontier t ~stream rev =
  if t.track then begin
    let base = base_of stream in
    let prev = Option.value (Hashtbl.find_opt t.base_frontiers base) ~default:0 in
    if rev > prev then Hashtbl.replace t.base_frontiers base rev
  end

let mirror_rev t = t.n_revs

let violations t = List.rev t.violations

let total t = t.total

let report t ~code ~subject ~rev detail =
  t.total <- t.total + 1;
  if not (Hashtbl.mem t.seen (code, subject)) then begin
    Hashtbl.add t.seen (code, subject) ();
    let v = { code; subject; rev; detail } in
    t.violations <- v :: t.violations;
    t.on_violation v
  end

let event_at t rev = History.Window.get t.window (rev - 1)

let state_at t rev = if rev <= 0 then History.State.empty else t.states.(rev - 1)

let push_state t state =
  let capacity = Array.length t.states in
  if t.n_revs = capacity then begin
    let next = Array.make (max 64 (2 * capacity)) state in
    Array.blit t.states 0 next 0 t.n_revs;
    t.states <- next
  end;
  t.states.(t.n_revs) <- state;
  t.n_revs <- t.n_revs + 1

let note_commit t (e : 'v History.Event.t) =
  if e.History.Event.rev <> t.n_revs + 1 then
    report t ~code:Density ~subject:"store" ~rev:e.History.Event.rev
      (Printf.sprintf "committed revision %d where %d was expected" e.History.Event.rev
         (t.n_revs + 1));
  History.Window.push t.window e;
  push_state t (History.State.apply (state_at t t.n_revs) e)

let stream_of t name =
  match Hashtbl.find_opt t.streams name with
  | Some s -> s
  | None ->
      let s = { frontier = 0 } in
      Hashtbl.add t.streams name s;
      s

let same_event (a : 'v History.Event.t) (b : 'v History.Event.t) =
  a.History.Event.rev = b.History.Event.rev
  && String.equal a.History.Event.key b.History.Event.key
  && a.History.Event.op = b.History.Event.op
  && a.History.Event.value = b.History.Event.value

(* First committed event matching [prefix] with revision in (lo, hi),
   both bounds exclusive and clamped to the mirror. *)
let first_skipped t ?prefix ~lo ~hi () =
  let hi = min hi (t.n_revs + 1) in
  let rec scan r =
    if r >= hi then None
    else
      let e = event_at t r in
      if History.Event.matches_prefix prefix e then Some e else scan (r + 1)
  in
  scan (max 1 (lo + 1))

let observe_event t ~stream ?prefix (e : 'v History.Event.t) =
  let s = stream_of t stream in
  let rev = e.History.Event.rev in
  if rev > t.n_revs then
    report t ~code:Future_rev ~subject:stream ~rev
      (Printf.sprintf "delivered event at revision %d; store has only committed %d" rev t.n_revs)
  else begin
    let committed = event_at t rev in
    if not (same_event committed e) then
      report t ~code:Content ~subject:stream ~rev
        (Printf.sprintf "delivered %s differs from committed %s" (History.Event.describe e)
           (History.Event.describe committed))
  end;
  if not (History.Event.matches_prefix prefix e) then
    report t ~code:Content ~subject:stream ~rev
      (Printf.sprintf "%s delivered outside the stream's prefix filter"
         (History.Event.describe e));
  if rev <= s.frontier then
    report t ~code:Non_monotone ~subject:stream ~rev
      (Printf.sprintf "delivered revision %d at or behind the stream frontier %d" rev s.frontier)
  else begin
    (if t.strict_mode || t.track then
       match first_skipped t ?prefix ~lo:s.frontier ~hi:rev () with
       | Some skipped ->
           if t.strict_mode then
             report t ~code:Gap ~subject:stream ~rev
               (Printf.sprintf "stream skipped committed %s" (History.Event.describe skipped));
           record_divergence t ~stream ~kind:Skip ~rev:skipped.History.Event.rev
             ~key:skipped.History.Event.key ~frontier:s.frontier
             (Printf.sprintf "delivery at revision %d jumped over committed %s" rev
                (History.Event.describe skipped))
       | None -> ());
    s.frontier <- rev;
    note_frontier t ~stream rev
  end

let observe_advance t ~stream ?prefix ~rev () =
  let s = stream_of t stream in
  if rev > t.n_revs then
    report t ~code:Future_rev ~subject:stream ~rev
      (Printf.sprintf "frontier advanced to revision %d; store has only committed %d" rev
         t.n_revs)
  else if rev > s.frontier then begin
    (if t.strict_mode || t.track then
       (* Advance means "nothing matching in (frontier, rev] was or will
          be delivered" — so anything matching there was skipped. *)
       match first_skipped t ?prefix ~lo:s.frontier ~hi:(rev + 1) () with
       | Some skipped ->
           if t.strict_mode then
             report t ~code:Gap ~subject:stream ~rev
               (Printf.sprintf "frontier advanced over committed %s"
                  (History.Event.describe skipped));
           record_divergence t ~stream ~kind:Skip ~rev:skipped.History.Event.rev
             ~key:skipped.History.Event.key ~frontier:s.frontier
             (Printf.sprintf "frontier advance to %d jumped over committed %s" rev
                (History.Event.describe skipped))
       | None -> ());
    s.frontier <- rev;
    note_frontier t ~stream rev
  end

let bindings_under prefix state =
  match prefix with
  | None -> History.State.bindings state
  | Some prefix -> History.State.bindings_with_prefix state ~prefix

(* Every binding a view exposes must trace to a committed create/update:
   true under any fault we can inject (drops lose events and stale lists
   resurrect old states, but neither invents a binding), so this stays on
   even when strict mode is off. *)
let check_bindings t ~subject ?prefix ~rev state =
  List.iter
    (fun (key, (value, mod_rev)) ->
      if mod_rev > rev then
        report t ~code:Future_rev ~subject ~rev
          (Printf.sprintf "binding %s carries mod-revision %d beyond the claimed revision %d" key
             mod_rev rev)
      else if mod_rev > t.n_revs then
        report t ~code:Future_rev ~subject ~rev
          (Printf.sprintf "binding %s carries mod-revision %d beyond the committed %d" key mod_rev
             t.n_revs)
      else if mod_rev < 1 then
        report t ~code:State_divergence ~subject ~rev
          (Printf.sprintf "binding %s carries impossible mod-revision %d" key mod_rev)
      else
        let e = event_at t mod_rev in
        if
          (not (String.equal e.History.Event.key key))
          || e.History.Event.op = History.Event.Delete
          || e.History.Event.value <> Some value
        then
          report t ~code:State_divergence ~subject ~rev
            (Printf.sprintf "binding %s@%d does not match committed %s" key mod_rev
               (History.Event.describe e)))
    (bindings_under prefix state)

let check_state t ~subject ?prefix ~rev state =
  if rev > t.n_revs then
    report t ~code:Future_rev ~subject ~rev
      (Printf.sprintf "cache claims revision %d; store has only committed %d" rev t.n_revs)
  else begin
    check_bindings t ~subject ?prefix ~rev state;
    if t.strict_mode then begin
      let expected = bindings_under prefix (state_at t rev) in
      let actual = bindings_under prefix state in
      if expected <> actual then begin
        let missing =
          List.filter (fun (k, _) -> not (List.mem_assoc k actual)) expected |> List.length
        and extra =
          List.filter (fun (k, _) -> not (List.mem_assoc k expected)) actual |> List.length
        in
        report t ~code:State_divergence ~subject ~rev
          (Printf.sprintf
             "cache at claimed revision %d differs from the committed state (%d bindings vs %d \
              expected; %d missing, %d extra)"
             rev (List.length actual) (List.length expected) missing extra)
      end
    end
  end

let observe_reset t ~stream ?prefix ~rev state =
  let s = stream_of t stream in
  (* A reset is a legal discontinuity: the frontier may move backwards
     (informer time travel). The adopted state still has to be authentic
     — and, in strict mode, exactly the committed state at [rev]. *)
  (if t.track then
     let prev = Option.value (Hashtbl.find_opt t.base_frontiers (base_of stream)) ~default:0 in
     if rev < prev then
       record_divergence t ~stream ~kind:Rewind ~rev ~key:(Option.value prefix ~default:"")
         ~frontier:prev
         (Printf.sprintf "re-listed at revision %d behind the stream's previous frontier %d" rev
            prev));
  s.frontier <- rev;
  note_frontier t ~stream rev;
  check_state t ~subject:stream ?prefix ~rev state

(* Pure delay never trips the frontier checks above (FIFO pipes keep the
   subsequence intact), so staleness-by-lag is reported from outside: the
   sweep in {!Hooks} measures the age of the first undelivered committed
   event and calls this when it exceeds the grace period. *)
let note_lag t ~stream ~rev ~key detail =
  let frontier =
    Option.value (Hashtbl.find_opt t.base_frontiers (base_of stream)) ~default:0
  in
  record_divergence t ~stream ~kind:Lag ~rev ~key ~frontier detail

(* Revision-domain time travel is likewise invisible to the frontier
   checks: a full-state resync is a legal reset, yet if the replica keeps
   numbering events in its own local domain the observed history has
   stepped outside the committed one. The substrate hooks detect the
   drift (they can see both numbering domains) and report it here. *)
let note_rewind t ~stream ~rev ~key detail =
  let frontier =
    Option.value (Hashtbl.find_opt t.base_frontiers (base_of stream)) ~default:0
  in
  record_divergence t ~stream ~kind:Rewind ~rev ~key ~frontier detail

let first_undelivered t ?prefix ~after () = first_skipped t ?prefix ~lo:after ~hi:(t.n_revs + 1) ()

let committed_at t rev = if rev >= 1 && rev <= t.n_revs then Some (event_at t rev) else None
