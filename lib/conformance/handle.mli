(** Substrate-erased view of an attached conformance monitor.

    {!Monitor} is polymorphic in the store's value type; a runner outcome
    must not be. Everything diagnosis and reporting need — violations,
    divergence points, a rendering of the committed event at a revision —
    is monomorphic, so this handle closes over the typed hooks and
    exposes only that. *)

type t

val of_kube : Hooks.t -> t

val of_hbase : Hbase_hooks.t -> t

val violations : t -> Monitor.violation list

val total : t -> int

val strict : t -> bool

val divergences : t -> Monitor.divergence list

val committed_describe : t -> int -> string option
(** [describe] of the committed event at a revision, if mirrored. *)

val finish : t -> unit
