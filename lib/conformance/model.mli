(** Pure sequential reference model of the etcd-like store.

    A deliberately naive re-implementation of {!Etcdlike} — an ordered
    map plus an append-only event list plus an association list of leases
    — written against the documented semantics, not the production code,
    so the two can disagree. The differential harness drives qcheck-
    generated operation programs through both and asserts they agree on
    every observable: revisions, events, bindings, transaction outcomes,
    lease bookkeeping and compaction boundaries.

    The model is persistent (every operation returns a new model), which
    is what makes it trivially correct to snapshot mid-program. *)

type 'v t

val empty : 'v t

(** {2 Store} *)

val rev : 'v t -> int

val compacted_rev : 'v t -> int

val get : 'v t -> string -> ('v * int) option

val bindings : 'v t -> (string * ('v * int)) list
(** Sorted by key. *)

val range : 'v t -> prefix:string -> (string * 'v * int) list

val put : 'v t -> string -> 'v -> 'v t * 'v History.Event.t

val delete : 'v t -> string -> 'v t * 'v History.Event.t option

val events : 'v t -> 'v History.Event.t list
(** Retained (non-compacted) events, oldest first. *)

val since : 'v t -> rev:int -> ('v History.Event.t list, [ `Compacted of int ]) result

val compact : 'v t -> before:int -> 'v t

val compact_keep_last : 'v t -> int -> 'v t

(** {2 Transactions} *)

val txn : 'v t -> 'v Etcdlike.Txn.t -> 'v t * 'v Etcdlike.Txn.outcome

(** {2 Leases} *)

val grant : 'v t -> ttl:int -> now:int -> 'v t * Etcdlike.Lease.id

val attach : 'v t -> lease:Etcdlike.Lease.id -> key:string -> 'v t

val lease_keys : 'v t -> lease:Etcdlike.Lease.id -> string list

val keepalive : 'v t -> lease:Etcdlike.Lease.id -> now:int -> 'v t * bool

val revoke : 'v t -> lease:Etcdlike.Lease.id -> 'v t * string list

val expire : 'v t -> now:int -> 'v t * (Etcdlike.Lease.id * string list) list

val ttl_remaining : 'v t -> lease:Etcdlike.Lease.id -> now:int -> int option

val active_leases : 'v t -> int
