(* The monitor is polymorphic in the store's value type, which would
   force every consumer of a runner outcome to be substrate-typed too.
   Nothing downstream ever looks at a committed value directly — cards
   and reports only need violation/divergence records (monomorphic) and
   a rendering of the committed event at a revision — so a closure
   record erases the type where the substrate is still known. *)
type t = {
  violations : unit -> Monitor.violation list;
  total : unit -> int;
  strict : unit -> bool;
  divergences : unit -> Monitor.divergence list;
  committed_describe : int -> string option;
  finish : unit -> unit;
}

let violations t = t.violations ()

let total t = t.total ()

let strict t = t.strict ()

let divergences t = t.divergences ()

let committed_describe t rev = t.committed_describe rev

let finish t = t.finish ()

let of_kube hooks =
  let monitor = Hooks.monitor hooks in
  {
    violations = (fun () -> Monitor.violations monitor);
    total = (fun () -> Monitor.total monitor);
    strict = (fun () -> Monitor.strict monitor);
    divergences = (fun () -> Monitor.divergences monitor);
    committed_describe =
      (fun rev -> Option.map History.Event.describe (Monitor.committed_at monitor rev));
    finish = (fun () -> Hooks.finish hooks);
  }

let of_hbase hooks =
  let monitor = Hbase_hooks.monitor hooks in
  {
    violations = (fun () -> Monitor.violations monitor);
    total = (fun () -> Monitor.total monitor);
    strict = (fun () -> Monitor.strict monitor);
    divergences = (fun () -> Monitor.divergences monitor);
    committed_describe =
      (fun rev -> Option.map History.Event.describe (Monitor.committed_at monitor rev));
    finish = (fun () -> Hbase_hooks.finish hooks);
  }
