type t = {
  cluster : Kube.Cluster.t;
  monitor : Kube.Resource.value Monitor.t;
  (* Tap callbacks per component: every cache mutation fires a tap, so a
     component whose (rev, activity) pair is unchanged since the last
     sweep provably has the same cache — its re-check is skipped. *)
  activity : (string, int) Hashtbl.t;
  checked : (string, int * int) Hashtbl.t;  (* subject -> (rev, activity) at last full check *)
  (* Divergence tracking: commit times by revision, so the sweep can age
     the first undelivered event of every stream against the clock. *)
  commit_times : (int, int) Hashtbl.t;
  lag_grace : int;
}

let monitor t = t.monitor

let violations t = Monitor.violations t.monitor

let total t = Monitor.total t.monitor

let divergences t = Monitor.divergences t.monitor

(* A new generation is a new stream: frontiers must not be compared
   across a crash or a gap-triggered re-list. *)
let stream_key (view : Kube.Tap.view) =
  view.Kube.Tap.stream ^ "@" ^ string_of_int view.Kube.Tap.generation

let note_activity t (view : Kube.Tap.view) =
  let c = view.Kube.Tap.component in
  Hashtbl.replace t.activity c (1 + try Hashtbl.find t.activity c with Not_found -> 0)

let tap_of t =
  let monitor = t.monitor in
  {
    Kube.Tap.on_event =
      (fun view e ->
        note_activity t view;
        Monitor.observe_event monitor ~stream:(stream_key view) ?prefix:view.Kube.Tap.prefix e);
    on_advance =
      (fun view _rev ->
        note_activity t view;
        Monitor.observe_advance monitor ~stream:(stream_key view) ?prefix:view.Kube.Tap.prefix
          ~rev:view.Kube.Tap.rev ());
    on_reset =
      (fun view ->
        note_activity t view;
        Monitor.observe_reset monitor ~stream:(stream_key view) ?prefix:view.Kube.Tap.prefix
          ~rev:view.Kube.Tap.rev view.Kube.Tap.state);
  }

(* Re-checking an unchanged cache against an unchanged claim is pure
   waste: skip a subject when both its claimed revision and its tap
   activity count match the last fully-performed check. The signature is
   only recorded when the check actually ran to completion (the claimed
   revision was inside the mirror), so a future-rev claim is re-examined
   once the mirror catches up. *)
let check_state_cached t ~component ~subject ?prefix ~rev state =
  let sig_now = (rev, try Hashtbl.find t.activity component with Not_found -> 0) in
  if Hashtbl.find_opt t.checked subject <> Some sig_now then begin
    Monitor.check_state t.monitor ~subject ?prefix ~rev state;
    if rev <= Monitor.mirror_rev t.monitor then Hashtbl.replace t.checked subject sig_now
  end

(* Pure delay is invisible to the frontier checks (FIFO pipes preserve
   the subsequence), so staleness-by-lag is measured here: a stream whose
   first undelivered matching event has aged past the grace period is
   diverging — its decisions run on a view the store has left behind. The
   grace sits well above transport latency and below any injected delay
   worth diagnosing. *)
let lag_sweep t =
  if Monitor.tracking t.monitor then begin
    let now = Dsim.Engine.now (Kube.Cluster.engine t.cluster) in
    let flag ~stream ?prefix ~frontier () =
      match Monitor.first_undelivered t.monitor ?prefix ~after:frontier () with
      | Some e ->
          let rev = e.History.Event.rev in
          (match Hashtbl.find_opt t.commit_times rev with
          | Some at when now - at > t.lag_grace ->
              Monitor.note_lag t.monitor ~stream ~rev ~key:e.History.Event.key
                (Printf.sprintf "committed %s still undelivered after %d us"
                   (History.Event.describe e) (now - at))
          | Some _ | None -> ())
      | None -> ()
    in
    let etcd_name = Kube.Etcd.name (Kube.Cluster.etcd t.cluster) in
    (* Replicated backend: each replica's applied frontier is a stream
       off the canonical (leader-committed) history — replication lag
       registers as a Lag divergence on ["<replica><-raft"], exactly like
       a consumer cache falling behind. Empty for the single backend. *)
    List.iter
      (fun (id, rev) -> flag ~stream:(id ^ "<-raft") ~frontier:rev ())
      (Kube.Etcd.replica_revs (Kube.Cluster.etcd t.cluster));
    List.iter
      (fun a ->
        if Kube.Apiserver.ready a then
          flag ~stream:(Kube.Apiserver.name a ^ "<-" ^ etcd_name) ~frontier:(Kube.Apiserver.rev a)
            ())
      (Kube.Cluster.apiservers t.cluster);
    List.iter
      (fun i ->
        if Kube.Informer.running i then
          flag
            ~stream:(Kube.Informer.owner i ^ "#" ^ Kube.Informer.prefix i)
            ~prefix:(Kube.Informer.prefix i) ~frontier:(Kube.Informer.rev i) ())
      (Kube.Cluster.informers t.cluster)
  end

let check_sweep t =
  (* Replica state machines must be stale-but-never-wrong: each one's
     applied store is checked against the committed history at exactly
     its claimed revision, so a non-deterministic apply trips
     State_divergence while honest lag stays silent. *)
  Option.iter
    (fun rkv ->
      List.iter
        (fun id ->
          match Replicated.Kv.replica_store rkv id with
          | Some store ->
              check_state_cached t ~component:id ~subject:(id ^ "<-raft")
                ~rev:(Etcdlike.Kv.rev store) (Etcdlike.Kv.state store)
          | None -> ())
        (Replicated.Kv.replica_ids rkv))
    (Kube.Etcd.replicated_kv (Kube.Cluster.etcd t.cluster));
  List.iter
    (fun a ->
      check_state_cached t ~component:(Kube.Apiserver.name a) ~subject:(Kube.Apiserver.name a)
        ~rev:(Kube.Apiserver.rev a) (Kube.Apiserver.cache a))
    (Kube.Cluster.apiservers t.cluster);
  List.iter
    (fun i ->
      if Kube.Informer.running i then
        check_state_cached t ~component:(Kube.Informer.owner i)
          ~subject:(Kube.Informer.owner i ^ "#" ^ Kube.Informer.prefix i)
          ~prefix:(Kube.Informer.prefix i) ~rev:(Kube.Informer.rev i) (Kube.Informer.store i))
    (Kube.Cluster.informers t.cluster);
  lag_sweep t

let finish t = check_sweep t

let attach ?strict ?(track_divergence = false) ?(lag_grace = 250_000) ?(check_period = 500_000)
    cluster =
  let engine = Kube.Cluster.engine cluster in
  let metrics = Dsim.Engine.metrics engine in
  let on_violation v =
    Dsim.Metrics.incr metrics "conformance.violations";
    Dsim.Engine.record engine ~actor:"conformance" ~kind:"conformance.violation"
      (Monitor.describe v)
  in
  let monitor = Monitor.create ?strict ~track_divergence ~on_violation () in
  let t =
    {
      cluster;
      monitor;
      activity = Hashtbl.create 16;
      checked = Hashtbl.create 16;
      commit_times = Hashtbl.create 64;
      lag_grace;
    }
  in
  (* Before the consumers: commit listeners run in registration order,
     and the mirror must already hold an event when its delivery taps
     fire. [Cluster.create] registered etcd's own hub first, so the
     mirror sits between the store and every watch stream. *)
  Kube.Etcd.on_commit (Kube.Cluster.etcd cluster) (Monitor.note_commit monitor);
  if track_divergence then
    Kube.Etcd.on_commit (Kube.Cluster.etcd cluster) (fun e ->
        Hashtbl.replace t.commit_times e.History.Event.rev (Dsim.Engine.now engine));
  let tap = Some (tap_of t) in
  List.iter (fun a -> Kube.Apiserver.set_tap a tap) (Kube.Cluster.apiservers cluster);
  (* Informers are created by [Cluster.start], which runs after attach:
     install their taps at the first engine dispatch. [set_tap] replays
     any list the informer adopted in between as a reset, so the
     monitor's frontiers start at the adopted revision. *)
  ignore
    (Dsim.Engine.schedule engine ~delay:0 (fun () ->
         List.iter (fun i -> Kube.Informer.set_tap i tap) (Kube.Cluster.informers cluster)));
  (* The first deliberate drop ends strict mode: from then on the run is
     *supposed* to contain gaps and stale caches. Delays and partitions
     keep it — FIFO pipes and re-list recovery preserve completeness. *)
  Kube.Intercept.set_observer (Kube.Cluster.intercept cluster) (fun _edge _event decision ->
      match decision with Kube.Intercept.Drop -> Monitor.relax monitor | _ -> ());
  Dsim.Engine.every engine ~period:check_period (fun () ->
      check_sweep t;
      true);
  t
