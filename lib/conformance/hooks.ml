type t = {
  cluster : Kube.Cluster.t;
  monitor : Kube.Resource.value Monitor.t;
  (* Tap callbacks per component: every cache mutation fires a tap, so a
     component whose (rev, activity) pair is unchanged since the last
     sweep provably has the same cache — its re-check is skipped. *)
  activity : (string, int) Hashtbl.t;
  checked : (string, int * int) Hashtbl.t;  (* subject -> (rev, activity) at last full check *)
}

let monitor t = t.monitor

let violations t = Monitor.violations t.monitor

let total t = Monitor.total t.monitor

(* A new generation is a new stream: frontiers must not be compared
   across a crash or a gap-triggered re-list. *)
let stream_key (view : Kube.Tap.view) =
  view.Kube.Tap.stream ^ "@" ^ string_of_int view.Kube.Tap.generation

let note_activity t (view : Kube.Tap.view) =
  let c = view.Kube.Tap.component in
  Hashtbl.replace t.activity c (1 + try Hashtbl.find t.activity c with Not_found -> 0)

let tap_of t =
  let monitor = t.monitor in
  {
    Kube.Tap.on_event =
      (fun view e ->
        note_activity t view;
        Monitor.observe_event monitor ~stream:(stream_key view) ?prefix:view.Kube.Tap.prefix e);
    on_advance =
      (fun view _rev ->
        note_activity t view;
        Monitor.observe_advance monitor ~stream:(stream_key view) ?prefix:view.Kube.Tap.prefix
          ~rev:view.Kube.Tap.rev ());
    on_reset =
      (fun view ->
        note_activity t view;
        Monitor.observe_reset monitor ~stream:(stream_key view) ?prefix:view.Kube.Tap.prefix
          ~rev:view.Kube.Tap.rev view.Kube.Tap.state);
  }

(* Re-checking an unchanged cache against an unchanged claim is pure
   waste: skip a subject when both its claimed revision and its tap
   activity count match the last fully-performed check. The signature is
   only recorded when the check actually ran to completion (the claimed
   revision was inside the mirror), so a future-rev claim is re-examined
   once the mirror catches up. *)
let check_state_cached t ~component ~subject ?prefix ~rev state =
  let sig_now = (rev, try Hashtbl.find t.activity component with Not_found -> 0) in
  if Hashtbl.find_opt t.checked subject <> Some sig_now then begin
    Monitor.check_state t.monitor ~subject ?prefix ~rev state;
    if rev <= Monitor.mirror_rev t.monitor then Hashtbl.replace t.checked subject sig_now
  end

let check_sweep t =
  List.iter
    (fun a ->
      check_state_cached t ~component:(Kube.Apiserver.name a) ~subject:(Kube.Apiserver.name a)
        ~rev:(Kube.Apiserver.rev a) (Kube.Apiserver.cache a))
    (Kube.Cluster.apiservers t.cluster);
  List.iter
    (fun i ->
      if Kube.Informer.running i then
        check_state_cached t ~component:(Kube.Informer.owner i)
          ~subject:(Kube.Informer.owner i ^ "#" ^ Kube.Informer.prefix i)
          ~prefix:(Kube.Informer.prefix i) ~rev:(Kube.Informer.rev i) (Kube.Informer.store i))
    (Kube.Cluster.informers t.cluster)

let finish t = check_sweep t

let attach ?strict ?(check_period = 500_000) cluster =
  let engine = Kube.Cluster.engine cluster in
  let metrics = Dsim.Engine.metrics engine in
  let on_violation v =
    Dsim.Metrics.incr metrics "conformance.violations";
    Dsim.Engine.record engine ~actor:"conformance" ~kind:"conformance.violation"
      (Monitor.describe v)
  in
  let monitor = Monitor.create ?strict ~on_violation () in
  let t = { cluster; monitor; activity = Hashtbl.create 16; checked = Hashtbl.create 16 } in
  (* Before the consumers: commit listeners run in registration order,
     and the mirror must already hold an event when its delivery taps
     fire. [Cluster.create] registered etcd's own hub first, so the
     mirror sits between the store and every watch stream. *)
  Kube.Etcd.on_commit (Kube.Cluster.etcd cluster) (Monitor.note_commit monitor);
  let tap = Some (tap_of t) in
  List.iter (fun a -> Kube.Apiserver.set_tap a tap) (Kube.Cluster.apiservers cluster);
  (* Informers are created by [Cluster.start], which runs after attach:
     install their taps at the first engine dispatch. [set_tap] replays
     any list the informer adopted in between as a reset, so the
     monitor's frontiers start at the adopted revision. *)
  ignore
    (Dsim.Engine.schedule engine ~delay:0 (fun () ->
         List.iter (fun i -> Kube.Informer.set_tap i tap) (Kube.Cluster.informers cluster)));
  (* The first deliberate drop ends strict mode: from then on the run is
     *supposed* to contain gaps and stale caches. Delays and partitions
     keep it — FIFO pipes and re-list recovery preserve completeness. *)
  Kube.Intercept.set_observer (Kube.Cluster.intercept cluster) (fun _edge _event decision ->
      match decision with Kube.Intercept.Drop -> Monitor.relax monitor | _ -> ());
  Dsim.Engine.every engine ~period:check_period (fun () ->
      check_sweep t;
      true);
  t
