type t = {
  cluster : Hbaselike.Cluster.t;
  monitor : string Monitor.t;
  (* Activity per subject: follower applies and resyncs bump it, so a
     sweep can skip re-checking a replica whose (rev, activity) pair is
     unchanged since the last completed check. *)
  activity : (string, int) Hashtbl.t;
  checked : (string, int * int) Hashtbl.t;
  commit_times : (int, int) Hashtbl.t;
  lag_grace : int;
}

let monitor t = t.monitor

let violations t = Monitor.violations t.monitor

let total t = Monitor.total t.monitor

let divergences t = Monitor.divergences t.monitor

(* The only monitored event stream is ZooKeeper replication: the
   follower's applied frontier against the leader-committed history.
   Region-server watch streams are deliberately NOT event streams here:
   one-shot watches drop everything between a firing and the re-arm by
   design, so feeding them to the frontier checks would flag the
   protocol, not a defect. Their views are covered by the region-map
   state checks instead. *)
let repl_stream t =
  let zk = Hbaselike.Cluster.zk t.cluster in
  Hbaselike.Zk.follower zk ^ "<-" ^ Hbaselike.Zk.leader zk

let note_activity t subject =
  Hashtbl.replace t.activity subject
    (1 + try Hashtbl.find t.activity subject with Not_found -> 0)

let check_state_cached t ~subject ~rev state =
  let sig_now = (rev, try Hashtbl.find t.activity subject with Not_found -> 0) in
  if Hashtbl.find_opt t.checked subject <> Some sig_now then begin
    Monitor.check_state t.monitor ~subject ~rev state;
    if rev <= Monitor.mirror_rev t.monitor then Hashtbl.replace t.checked subject sig_now
  end

(* Replication delay is FIFO, so pure staleness never trips the frontier
   checks; age the first undelivered committed event against the clock
   instead, exactly like the kube sweep. *)
let lag_sweep t =
  if Monitor.tracking t.monitor then begin
    let zk = Hbaselike.Cluster.zk t.cluster in
    let now = Dsim.Engine.now (Hbaselike.Cluster.engine t.cluster) in
    let frontier = Hbaselike.Zk.follower_caught_up_to zk in
    match Monitor.first_undelivered t.monitor ~after:frontier () with
    | Some e -> (
        let rev = e.History.Event.rev in
        match Hashtbl.find_opt t.commit_times rev with
        | Some at when now - at > t.lag_grace ->
            Monitor.note_lag t.monitor ~stream:(repl_stream t) ~rev ~key:e.History.Event.key
              (Printf.sprintf "committed %s still undelivered after %d us"
                 (History.Event.describe e) (now - at))
        | Some _ | None -> ())
    | None -> ()
  end

let check_sweep t =
  let zk = Hbaselike.Cluster.zk t.cluster in
  (* The follower must be stale-but-never-wrong: its materialized state
     is compared against the committed history at exactly its claimed
     leader frontier, so honest replication lag stays silent while a
     divergent apply (or a post-compaction resync that rewrote history)
     trips State_divergence. *)
  check_state_cached t ~subject:(Hbaselike.Zk.follower zk)
    ~rev:(Hbaselike.Zk.follower_caught_up_to zk)
    (Hbaselike.Zk.observed_state zk);
  lag_sweep t

let finish t = check_sweep t

let attach ?strict ?(track_divergence = false) ?(lag_grace = 250_000) ?(check_period = 500_000)
    cluster =
  let engine = Hbaselike.Cluster.engine cluster in
  let metrics = Dsim.Engine.metrics engine in
  let on_violation v =
    Dsim.Metrics.incr metrics "conformance.violations";
    Dsim.Engine.record engine ~actor:"conformance" ~kind:"conformance.violation"
      (Monitor.describe v)
  in
  let monitor = Monitor.create ?strict ~track_divergence ~on_violation () in
  let t =
    {
      cluster;
      monitor;
      activity = Hashtbl.create 16;
      checked = Hashtbl.create 16;
      commit_times = Hashtbl.create 64;
      lag_grace;
    }
  in
  let zk = Hbaselike.Cluster.zk cluster in
  let leader_kv = Hbaselike.Zk.leader_kv zk in
  (* Mirror feed: the dispatch listeners [Zk.create] registered only
     enqueue network casts, so the mirror holds every commit before any
     delivery is observed. *)
  Etcdlike.Kv.on_commit leader_kv (Monitor.note_commit monitor);
  if track_divergence then
    Etcdlike.Kv.on_commit leader_kv (fun e ->
        Hashtbl.replace t.commit_times e.History.Event.rev (Dsim.Engine.now engine));
  let follower = Hbaselike.Zk.follower zk in
  Hbaselike.Zk.on_follower_apply zk (fun e ->
      note_activity t follower;
      Monitor.observe_event monitor ~stream:(repl_stream t) e);
  Hbaselike.Zk.on_follower_resync zk (fun rev ->
      note_activity t follower;
      Monitor.observe_reset monitor ~stream:(repl_stream t) ~rev
        (Hbaselike.Zk.observed_state zk);
      (* The reset itself is legal (full state transfer), but it leaves
         the replica numbering events in its own local domain. If readers
         observe that domain, the observed history has stepped outside
         the committed one: revision-level time travel the frontier
         checks cannot see, because both histories keep moving forward in
         their own numbering. *)
      let local = Hbaselike.Zk.follower_rev zk in
      if (not (Hbaselike.Zk.serves_leader_revs zk)) && local <> rev then
        Monitor.note_rewind monitor ~stream:(repl_stream t) ~rev:local ~key:""
          (Printf.sprintf
             "post-compaction resync left local numbering at revision %d while the \
              committed history is at %d; follower reads now report revisions from a \
              drifted domain"
             local rev));
  (* First deliberate drop ends strict mode: gaps become the experiment. *)
  History.Intercept.set_observer (Hbaselike.Cluster.intercept cluster)
    (fun _edge _event decision ->
      match decision with History.Intercept.Drop -> Monitor.relax monitor | _ -> ());
  Dsim.Engine.every engine ~period:check_period (fun () ->
      check_sweep t;
      true);
  t
