module SMap = Map.Make (String)
module IMap = Map.Make (Int)

type lease = { ttl : int; deadline : int; lkeys : string list (* newest first *) }

type 'v t = {
  rev : int;
  compacted : int;
  store : ('v * int) SMap.t;
  log : 'v History.Event.t list;  (* newest first; revisions in (compacted, rev] *)
  leases : lease IMap.t;
  next_lease : int;
}

let empty =
  { rev = 0; compacted = 0; store = SMap.empty; log = []; leases = IMap.empty; next_lease = 0 }

let rev t = t.rev

let compacted_rev t = t.compacted

let get t key = SMap.find_opt key t.store

let bindings t = SMap.bindings t.store

let range t ~prefix =
  SMap.bindings t.store
  |> List.filter_map (fun (key, (v, mod_rev)) ->
         if String.starts_with ~prefix key then Some (key, v, mod_rev) else None)

let events t = List.rev t.log

let put t key value =
  let rev = t.rev + 1 in
  let op = if SMap.mem key t.store then History.Event.Update else History.Event.Create in
  let event = History.Event.make ~rev ~key ~op (Some value) in
  ({ t with rev; store = SMap.add key (value, rev) t.store; log = event :: t.log }, event)

let delete t key =
  if not (SMap.mem key t.store) then (t, None)
  else begin
    let rev = t.rev + 1 in
    let event = History.Event.make ~rev ~key ~op:History.Event.Delete None in
    ({ t with rev; store = SMap.remove key t.store; log = event :: t.log }, Some event)
  end

let since t ~rev =
  if rev < t.compacted then Error (`Compacted t.compacted)
  else Ok (List.filter (fun (e : _ History.Event.t) -> e.History.Event.rev > rev) (events t))

let compact t ~before =
  let before = min before t.rev in
  if before <= t.compacted then t
  else
    {
      t with
      compacted = before;
      log = List.filter (fun (e : _ History.Event.t) -> e.History.Event.rev > before) t.log;
    }

let compact_keep_last t n =
  if List.length t.log > n then compact t ~before:(t.rev - n) else t

(* Transactions: guards against the current bindings, then the chosen
   branch's operations in order, each with put/delete semantics. *)
let eval_cmp t (cmp : 'v Etcdlike.Txn.cmp) =
  match cmp with
  | Etcdlike.Txn.Mod_rev_eq (key, expected) ->
      let actual = match get t key with Some (_, mod_rev) -> mod_rev | None -> 0 in
      actual = expected
  | Etcdlike.Txn.Value_eq (key, expected) -> (
      match get t key with Some (v, _) -> v = expected | None -> false)
  | Etcdlike.Txn.Exists key -> SMap.mem key t.store
  | Etcdlike.Txn.Absent key -> not (SMap.mem key t.store)

let txn t (txn : 'v Etcdlike.Txn.t) =
  let succeeded = List.for_all (eval_cmp t) txn.Etcdlike.Txn.guards in
  let branch = if succeeded then txn.Etcdlike.Txn.success else txn.Etcdlike.Txn.failure in
  let t, rev_events =
    List.fold_left
      (fun (t, acc) op ->
        match op with
        | Etcdlike.Txn.Put (key, value) ->
            let t, e = put t key value in
            (t, e :: acc)
        | Etcdlike.Txn.Delete key -> (
            match delete t key with t, Some e -> (t, e :: acc) | t, None -> (t, acc)))
      (t, []) branch
  in
  (t, { Etcdlike.Txn.succeeded; events = List.rev rev_events; rev = t.rev })

let grant t ~ttl ~now =
  let id = t.next_lease + 1 in
  ( {
      t with
      next_lease = id;
      leases = IMap.add id { ttl; deadline = now + ttl; lkeys = [] } t.leases;
    },
    id )

let attach t ~lease ~key =
  match IMap.find_opt lease t.leases with
  | Some l when not (List.mem key l.lkeys) ->
      { t with leases = IMap.add lease { l with lkeys = key :: l.lkeys } t.leases }
  | _ -> t

let lease_keys t ~lease =
  match IMap.find_opt lease t.leases with Some l -> List.rev l.lkeys | None -> []

let keepalive t ~lease ~now =
  match IMap.find_opt lease t.leases with
  | Some l -> ({ t with leases = IMap.add lease { l with deadline = now + l.ttl } t.leases }, true)
  | None -> (t, false)

let revoke t ~lease =
  let keys = lease_keys t ~lease in
  ({ t with leases = IMap.remove lease t.leases }, keys)

let expire t ~now =
  let expired =
    IMap.fold
      (fun id l acc -> if l.deadline <= now then (id, List.rev l.lkeys) :: acc else acc)
      t.leases []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  ( { t with leases = List.fold_left (fun m (id, _) -> IMap.remove id m) t.leases expired },
    expired )

let ttl_remaining t ~lease ~now =
  match IMap.find_opt lease t.leases with
  | Some l -> Some (max 0 (l.deadline - now))
  | None -> None

let active_leases t = IMap.cardinal t.leases
