let order coverage (plans : Sieve.Planner.plan array) =
  let n = Array.length plans in
  let pending = Array.make n true in
  let out = ref [] in
  for _ = 1 to n do
    (* Greedy max-gain; gain starts at -1 so the first pending candidate
       wins ties and zero-gain rounds, preserving the planner's own
       (causal) ranking within equivalence classes. *)
    let best = ref (-1) and best_gain = ref (-1) in
    for i = 0 to n - 1 do
      if pending.(i) then begin
        let g = Sieve.Coverage.gain coverage plans.(i).Sieve.Planner.strategy in
        if g > !best_gain then begin
          best := i;
          best_gain := g
        end
      end
    done;
    pending.(!best) <- false;
    Sieve.Coverage.note coverage plans.(!best).Sieve.Planner.strategy;
    out := !best :: !out
  done;
  List.rev !out
