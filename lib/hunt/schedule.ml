let order ?priority coverage (plans : Sieve.Planner.plan array) =
  let n = Array.length plans in
  let prio =
    match priority with
    | None -> Array.make n 0
    | Some f -> Array.init n (fun i -> f plans.(i))
  in
  let pending = Array.make n true in
  let out = ref [] in
  for _ = 1 to n do
    (* Greedy max over (priority, gain), lexicographically; both start
       below any real value so the first pending candidate wins ties and
       zero rounds, preserving the planner's own (causal) ranking within
       equivalence classes. *)
    let best = ref (-1) and best_key = ref (min_int, -1) in
    for i = 0 to n - 1 do
      if pending.(i) then begin
        let key = (prio.(i), Sieve.Coverage.gain coverage plans.(i).Sieve.Planner.strategy) in
        if key > !best_key then begin
          best := i;
          best_key := key
        end
      end
    done;
    pending.(!best) <- false;
    Sieve.Coverage.note coverage plans.(!best).Sieve.Planner.strategy;
    out := !best :: !out
  done;
  List.rev !out
