let component_of (v : Sieve.Oracle.violation) =
  match v with
  | Sieve.Oracle.Duplicate_pod { kubelets; _ } ->
      String.concat "+" (List.sort String.compare kubelets)
  | Sieve.Oracle.Scheduler_livelock _ -> "scheduler"
  | Sieve.Oracle.Pvc_leak _ -> "volumectl"
  | Sieve.Oracle.Wrong_decommission _ -> "cassop"
  | Sieve.Oracle.Live_claim_deleted _ -> "cassop"
  | Sieve.Oracle.Replica_surplus _ -> "rsctl"
  | Sieve.Oracle.Healthy_pod_failed _ -> "nodectl"
  | Sieve.Oracle.Rollout_wedged _ -> "depctl"
  | Sieve.Oracle.Region_stale_assign _ | Sieve.Oracle.Region_cas_wedged _ -> "master-1"
  | Sieve.Oracle.Region_double_serve { servers; _ } ->
      String.concat "+" (List.sort String.compare servers)

let of_violation v =
  Printf.sprintf "%s/%s/%s" (Sieve.Oracle.bug_id v) (component_of v) (Sieve.Oracle.key v)

let to_dirname s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' | '_' -> c | _ -> '_')
    s

let of_conformance (v : Conformance.Monitor.violation) =
  let subject =
    match String.index_opt v.Conformance.Monitor.subject '@' with
    | Some i -> String.sub v.Conformance.Monitor.subject 0 i
    | None -> v.Conformance.Monitor.subject
  in
  Printf.sprintf "conformance/%s/%s"
    (Conformance.Monitor.code_to_string v.Conformance.Monitor.code)
    subject
