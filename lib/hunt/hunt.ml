(** Hunt: the parallel, persistent, coverage-guided campaign engine.

    {!Runner.run_campaign} is a sequential in-memory loop that forgets
    everything at exit; Hunt is what Section 7's "campaigns of deliberate
    perturbations" need at scale. {!Pool} fans trials out across OCaml 5
    domains (every trial is an independent deterministic simulation);
    {!Journal} persists every result crash-safely as JSONL; {!Schedule}
    dispatches candidates by coverage gain over the (component × object
    × pattern) space; {!Signature} deduplicates violations into
    findings; {!Campaign} ties it together — resumable, byte-for-byte
    reproducible across job counts, minimizing each new finding and
    emitting a self-contained artifact directory for it. *)

module Signature = Signature
module Journal = Journal
module Pool = Pool
module Schedule = Schedule
module Campaign = Campaign
