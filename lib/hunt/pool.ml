let map_ordered (type b) ~jobs ~(tasks : 'a array) ~(f : int -> 'a -> b)
    ~(emit : int -> b -> unit) =
  let n = Array.length tasks in
  if n = 0 then ()
  else if jobs <= 1 then
    for i = 0 to n - 1 do
      emit i (f i tasks.(i))
    done
  else begin
    let mutex = Mutex.create () in
    let completed = Condition.create () in
    let next = ref 0 in
    let results : b option array = Array.make n None in
    let failure : exn option ref = ref None in
    let worker () =
      let rec loop () =
        Mutex.lock mutex;
        let i = !next in
        if i >= n || !failure <> None then Mutex.unlock mutex
        else begin
          incr next;
          Mutex.unlock mutex;
          (match f i tasks.(i) with
          | result ->
              Mutex.lock mutex;
              results.(i) <- Some result;
              Condition.broadcast completed;
              Mutex.unlock mutex
          | exception exn ->
              Mutex.lock mutex;
              if !failure = None then failure := Some exn;
              Condition.broadcast completed;
              Mutex.unlock mutex);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    let raised =
      try
        for i = 0 to n - 1 do
          Mutex.lock mutex;
          while results.(i) = None && !failure = None do
            Condition.wait completed mutex
          done;
          let result = results.(i) in
          results.(i) <- None;
          let fail = !failure in
          Mutex.unlock mutex;
          match fail, result with
          | Some exn, _ -> raise exn
          | None, Some result -> emit i result
          | None, None -> assert false
        done;
        None
      with exn ->
        (* Let workers drain: claiming is cheap and each claimed task
           completes, so join below terminates. *)
        Mutex.lock mutex;
        if !failure = None then failure := Some exn;
        Mutex.unlock mutex;
        Some exn
    in
    List.iter Domain.join domains;
    match raised with Some exn -> raise exn | None -> ()
  end
