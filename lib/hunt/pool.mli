(** Deterministic fan-out over OCaml 5 domains.

    Trials are embarrassingly parallel (each one is an independent,
    hermetic simulation), but the campaign's bookkeeping — journal
    appends, deduplication, minimization — must be sequential and
    order-stable so that a [--jobs 4] run produces a byte-identical
    journal to a [--jobs 1] run. The pool therefore separates the two:
    [f] runs on worker domains in whatever order the scheduler reaches
    tasks, while [emit] runs on the calling domain, strictly in task
    order, through a reorder buffer. *)

val map_ordered :
  jobs:int -> tasks:'a array -> f:(int -> 'a -> 'b) -> emit:(int -> 'b -> unit) -> unit
(** [map_ordered ~jobs ~tasks ~f ~emit] computes [f i tasks.(i)] on up
    to [jobs] worker domains and calls [emit i result] for [i = 0, 1,
    ...] in index order on the calling domain. [jobs <= 1] degrades to a
    plain sequential loop (no domains spawned). [f] must not share
    mutable state across tasks; [emit] may. If [f] or [emit] raises, the
    first exception is re-raised on the calling domain after all workers
    have stopped. *)
