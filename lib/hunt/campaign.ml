type trial = {
  index : int;
  case_id : string;
  origin : string;
  seed : int64;
  test : Sieve.Runner.test;
}

type planned = {
  trials : trial array;
  space : (string * int * int) list;
}

type finding = {
  signature : string;
  bug : string;
  case_id : string;
  trial : int;
  time : int;
  detail : string;
  strategy : string;
  minimized : string;
  shrink_runs : int;
}

type progress = { trials_done : int; total : int; replayed : int; findings : int }

type conformance_summary = {
  conf_trials : int;
  conf_total : int;
  conf_signatures : string list;
}

type summary = {
  trials : int;
  executed : int;
  replayed : int;
  with_violations : int;
  findings : finding list;
  space : (string * int * int) list;
  journal : string;
  conformance : conformance_summary option;
  cards : int;
}

(* --- planning ------------------------------------------------------ *)

type planned_case = {
  case : Sieve.Bugs.case;
  events : (int * string * History.Event.op) list;
  components : string list;
  apiservers : string list;
  scheduled : (int * Sieve.Planner.plan) list;  (* dispatch order *)
}

(* Coverage over the case's substrate; used both for scheduling and the
   explored-space report. *)
let coverage_of_case (case : Sieve.Bugs.case) ~events =
  match case.Sieve.Bugs.spec with
  | Sieve.Substrate.Kube { config; _ } -> Sieve.Coverage.create ~config ~events
  | Sieve.Substrate.Hbase { config; _ } -> Sieve.Coverage.create_hbase ~config ~events

let plan_case ?(hazard_rank = false) (case : Sieve.Bugs.case) =
  let horizon = case.Sieve.Bugs.horizon in
  let commits = Sieve.Runner.reference_commits (Sieve.Bugs.reference_test_of_case case) in
  let events =
    List.map (fun c -> (c.Sieve.Runner.time, c.Sieve.Runner.key, c.Sieve.Runner.op)) commits
  in
  (* With hazard ranking the static hazard graph enters as a
     lexicographic priority above coverage gain in the scheduler. It is
     deliberately NOT also passed as a planner boost here: the boost
     reshuffles the candidate pool, and the pool's causal order is the
     tie-break among equal-(priority, gain) trials — reordering it
     measurably delays some exposures (cassandra-operator-402 in the
     regression corpus). Direct Planner users can still opt into
     [Analysis.Hazard.boost]. *)
  let hazards, plans, targets, apiservers =
    match case.Sieve.Bugs.spec with
    | Sieve.Substrate.Kube { config; _ } ->
        ( (if hazard_rank then Analysis.Hazard.of_config config else []),
          Array.of_list (Sieve.Planner.candidates_causal ~config ~commits ~horizon ()),
          Sieve.Planner.targets_of_config config,
          List.init config.Kube.Cluster.apiservers (fun i -> Printf.sprintf "api-%d" (i + 1)) )
    | Sieve.Substrate.Hbase { config; _ } ->
        ( (if hazard_rank then
             Analysis.Hazard.of_footprints (Analysis.Footprint.of_hbase_config config)
           else []),
          Array.of_list (Sieve.Planner.candidates_causal_hbase ~config ~commits ~horizon ()),
          Sieve.Planner.targets_hbase config,
          (* The explore baseline's "apiserver" endpoints are the store
             addresses consumers actually talk to here. *)
          [ "zk-leader"; "zk-follower" ] )
  in
  let coverage = coverage_of_case case ~events in
  let priority =
    if hazard_rank then Some (Analysis.Hazard.plan_score hazards coverage) else None
  in
  let scheduled = List.map (fun i -> (i, plans.(i))) (Schedule.order ?priority coverage plans) in
  let components = List.map (fun t -> t.Sieve.Planner.component) targets in
  { case; events; components; apiservers; scheduled }

(* Round-robin across cases so early trials are diverse even when one
   case dominates the candidate count. *)
let round_robin queues =
  let out = ref [] in
  let continue = ref true in
  while !continue do
    continue := false;
    List.iter
      (fun queue ->
        match !queue with
        | [] -> ()
        | slot :: rest ->
            queue := rest;
            continue := true;
            out := slot :: !out)
      queues
  done;
  List.rev !out

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let plan ?budget ?(seed = 42L) ?(hazard_rank = false) ~cases () =
  let planned_cases = List.map (plan_case ~hazard_rank) cases in
  let planner_slots =
    round_robin
      (List.map
         (fun pc ->
           ref
             (List.map
                (fun (k, (p : Sieve.Planner.plan)) ->
                  (pc, Printf.sprintf "planner#%d" k, Some p.Sieve.Planner.strategy))
                pc.scheduled))
         planned_cases)
  in
  let slots =
    match budget with
    | None -> planner_slots
    | Some b when b <= List.length planner_slots -> take b planner_slots
    | Some b ->
        (* Budget beyond the planner's candidates: keep hunting with
           random-fault exploration trials whose strategies derive from
           the per-trial seed alone, so they too are order-independent. *)
        let extra = b - List.length planner_slots in
        let case_cycle = Array.of_list planned_cases in
        let explore =
          List.init extra (fun j ->
              (case_cycle.(j mod Array.length case_cycle), "explore", None))
        in
        planner_slots @ explore
  in
  let n = List.length slots in
  (* Per-trial seeds: split the campaign generator once per trial, in
     index order, before anything runs. A trial's seed depends only on
     (campaign seed, index) — never on completion order — which is what
     makes resumed and reordered campaigns reproduce exactly. *)
  let rng = Dsim.Rng.create seed in
  let seeds = Array.make n 0L in
  for i = 0 to n - 1 do
    seeds.(i) <- Dsim.Rng.int64 (Dsim.Rng.split rng)
  done;
  let trials =
    Array.of_list
      (List.mapi
         (fun index (pc, origin, strategy) ->
           let case = pc.case in
           let origin =
             if strategy = None then Printf.sprintf "explore#%d" index else origin
           in
           let strategy =
             match strategy with
             | Some s -> s
             | None ->
                 List.hd
                   (Sieve.Baselines.random_faults ~seed:seeds.(index)
                      ~components:pc.components ~apiservers:pc.apiservers
                      ~horizon:case.Sieve.Bugs.horizon ~n:1)
           in
           {
             index;
             case_id = case.Sieve.Bugs.id;
             origin;
             seed = seeds.(index);
             test =
               {
                 Sieve.Runner.name = Printf.sprintf "%s:%s" case.Sieve.Bugs.id origin;
                 spec = case.Sieve.Bugs.spec;
                 horizon = case.Sieve.Bugs.horizon;
                 strategy;
               };
           })
         slots)
  in
  let space =
    List.map
      (fun pc ->
        let coverage = coverage_of_case pc.case ~events:pc.events in
        Array.iter
          (fun (t : trial) ->
            if String.equal t.case_id pc.case.Sieve.Bugs.id then
              Sieve.Coverage.note coverage t.test.Sieve.Runner.strategy)
          trials;
        (pc.case.Sieve.Bugs.id, Sieve.Coverage.covered coverage, Sieve.Coverage.total coverage))
      planned_cases
  in
  { trials; space }

(* --- filesystem helpers ------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* --- running ------------------------------------------------------- *)

type worker_result =
  | Replayed of Journal.violation_record list
  | Ran of (int * Sieve.Oracle.violation) list * Sieve.Runner.conformance option

let finding_of_journal (f : Journal.entry) =
  match f with
  | Journal.Finding { signature; trial; case; time; bug; detail; strategy; minimized; shrink_runs }
    ->
      { signature; bug; case_id = case; trial; time; detail; strategy; minimized; shrink_runs }
  | _ -> invalid_arg "finding_of_journal"

let emit_artifact ~out ~(finding : finding) ~(test : Sieve.Runner.test) =
  let dir =
    Filename.concat (Filename.concat out "findings") (Signature.to_dirname finding.signature)
  in
  mkdir_p dir;
  let outcome = Sieve.Runner.run_test test in
  write_file
    (Filename.concat dir "artifact.json")
    (Dsim.Json.to_string (Sieve.Runner.artifact outcome) ^ "\n");
  write_file
    (Filename.concat dir "finding.json")
    (Dsim.Json.to_string
       (Dsim.Json.Obj
          [
            ("signature", Dsim.Json.String finding.signature);
            ("bug", Dsim.Json.String finding.bug);
            ("case", Dsim.Json.String finding.case_id);
            ("trial", Dsim.Json.Int finding.trial);
            ("time", Dsim.Json.Int finding.time);
            ("detail", Dsim.Json.String finding.detail);
            ("strategy", Dsim.Json.String finding.strategy);
            ("minimized", Dsim.Json.String finding.minimized);
            ("shrink_runs", Dsim.Json.Int finding.shrink_runs);
          ])
    ^ "\n")

(* A card re-runs the minimized reproduction with divergence tracking —
   deliberately a separate run from [emit_artifact]'s, so artifact.json
   stays byte-identical whether or not --diagnose was given. *)
let card_path ~out ~(finding : finding) =
  Filename.concat
    (Filename.concat (Filename.concat out "findings") (Signature.to_dirname finding.signature))
    "card.json"

let emit_card ~out ~(finding : finding) ~(test : Sieve.Runner.test) =
  let path = card_path ~out ~finding in
  mkdir_p (Filename.dirname path);
  let outcome = Sieve.Runner.run_test ~diagnose:true test in
  let target v = String.equal (Signature.of_violation v) finding.signature in
  match Diagnosis.Diagnose.of_outcome ~target ~minimized:finding.minimized outcome with
  | Some card ->
      write_file path (Dsim.Json.to_string (Diagnosis.Card.to_json card) ^ "\n");
      true
  | None -> false

let run ?(jobs = 1) ?(out = "_hunt") ?(resume = false) ?budget ?(seed = 42L)
    ?(minimize_budget = 200) ?hazard_rank ?(check_conformance = false) ?(diagnose = false)
    ?on_progress ~cases () =
  let ({ trials; space } : planned) = plan ?budget ~seed ?hazard_rank ~cases () in
  let n = Array.length trials in
  let case_ids = List.map (fun (c : Sieve.Bugs.case) -> c.Sieve.Bugs.id) cases in
  mkdir_p out;
  let journal_path = Filename.concat out "journal.jsonl" in
  let replayed_entries, writer =
    if resume then Journal.open_resume ~path:journal_path
    else ([], Journal.create ~path:journal_path)
  in
  let done_trials : (int, Journal.entry) Hashtbl.t = Hashtbl.create 97 in
  let journal_findings : (string, Journal.entry) Hashtbl.t = Hashtbl.create 17 in
  let header_seen = ref false in
  List.iter
    (fun entry ->
      match entry with
      | Journal.Header h ->
          header_seen := true;
          if h.seed <> seed || h.trials <> n || h.cases <> case_ids then
            failwith
              (Printf.sprintf
                 "hunt: %s was journaled by a different campaign (seed %Ld/%Ld, trials %d/%d); \
                  use a fresh --out or matching parameters"
                 journal_path h.seed seed h.trials n)
      | Journal.Trial t ->
          if t.trial >= 0 && t.trial < n then begin
            (* The header cannot see ordering knobs like --hazard-rank, but
               the journaled strategy text can: a journal whose trial N ran
               a different strategy than this plan's trial N was produced
               by a differently-ordered campaign, and replaying it would
               silently misattribute results. *)
            let planned_strategy =
              Sieve.Strategy.describe trials.(t.trial).test.Sieve.Runner.strategy
            in
            if not (String.equal t.strategy planned_strategy) then
              failwith
                (Printf.sprintf
                   "hunt: %s trial %d was journaled with a different strategy than this \
                    campaign plans (ordering flags such as --hazard-rank must match the \
                    original run); use a fresh --out"
                   journal_path t.trial);
            Hashtbl.replace done_trials t.trial entry
          end
      | Journal.Finding f -> Hashtbl.replace journal_findings f.signature entry)
    replayed_entries;
  if not !header_seen then
    Journal.append writer (Journal.Header { version = 1; seed; trials = n; cases = case_ids });
  (* Workers run trials not present in the journal; everything stateful
     (journal appends, dedup, minimize, artifacts, progress) happens in
     [settle], on this domain, in trial order. *)
  let work index trial =
    match Hashtbl.find_opt done_trials index with
    | Some (Journal.Trial { violations; _ }) -> Replayed violations
    | Some _ | None ->
        let outcome = Sieve.Runner.run_test ~check_conformance trial.test in
        Ran (outcome.Sieve.Runner.violations, outcome.Sieve.Runner.conformance)
  in
  let executed = ref 0 in
  let replayed = ref 0 in
  let with_violations = ref 0 in
  (* Conformance results stay out of the journal on purpose: the journal
     is pinned byte-identical across job counts, resumes and the
     --check-conformance flag itself. *)
  let conf_trials = ref 0 in
  let conf_total = ref 0 in
  let conf_signatures : (string, unit) Hashtbl.t = Hashtbl.create 7 in
  let conf_signatures_rev = ref [] in
  let known : (string, unit) Hashtbl.t = Hashtbl.create 17 in
  let findings_rev = ref [] in
  let cards = ref 0 in
  (* Cards stay out of the journal for the same reason conformance
     results do: the journal is pinned byte-identical across job counts,
     resumes and the --diagnose flag itself. *)
  let minimize_for ~(trial : trial) signature =
    if minimize_budget > 0 then
      let target v = String.equal (Signature.of_violation v) signature in
      fst (Sieve.Minimize.minimize ~test:trial.test ~target ~budget:minimize_budget ())
    else trial.test
  in
  let settle index result =
    let trial = trials.(index) in
    let strategy = Sieve.Strategy.describe trial.test.Sieve.Runner.strategy in
    let records =
      match result with
      | Replayed records ->
          incr replayed;
          records
      | Ran (violations, conformance) ->
          incr executed;
          (match conformance with
          | None -> ()
          | Some c ->
              incr conf_trials;
              conf_total := !conf_total + c.Sieve.Runner.conf_total;
              List.iter
                (fun v ->
                  let s = Signature.of_conformance v in
                  if not (Hashtbl.mem conf_signatures s) then begin
                    Hashtbl.replace conf_signatures s ();
                    conf_signatures_rev := s :: !conf_signatures_rev
                  end)
                c.Sieve.Runner.conf_violations);
          let records =
            List.map
              (fun (time, v) ->
                {
                  Journal.time;
                  bug = Sieve.Oracle.bug_id v;
                  signature = Signature.of_violation v;
                  detail = Sieve.Oracle.describe v;
                })
              violations
          in
          Journal.append writer
            (Journal.Trial
               {
                 trial = index;
                 case = trial.case_id;
                 origin = trial.origin;
                 seed = trial.seed;
                 strategy;
                 violations = records;
               });
          records
    in
    if records <> [] then incr with_violations;
    List.iter
      (fun (r : Journal.violation_record) ->
        if not (Hashtbl.mem known r.signature) then begin
          Hashtbl.replace known r.signature ();
          let finding =
            match Hashtbl.find_opt journal_findings r.signature with
            | Some entry ->
                let finding = finding_of_journal entry in
                (* Resume: the finding replays from the journal, but a
                   lost (or newly requested) card is recomputed — the
                   minimizer is deterministic, so the reproduction it
                   re-derives matches the journaled one. *)
                if diagnose then begin
                  if Sys.file_exists (card_path ~out ~finding) then incr cards
                  else if
                    emit_card ~out ~finding ~test:(minimize_for ~trial r.signature)
                  then incr cards
                end;
                finding
            | None ->
                (* A new distinct violation: shrink its reproduction and
                   drop a self-contained artifact directory, then journal
                   the finding. Artifact first — if we crash in between,
                   resume recomputes both; the journal stays the source
                   of truth. *)
                let target v = String.equal (Signature.of_violation v) r.signature in
                let minimized_test, shrink_runs =
                  if minimize_budget > 0 then
                    Sieve.Minimize.minimize ~test:trial.test ~target ~budget:minimize_budget ()
                  else (trial.test, 0)
                in
                let finding =
                  {
                    signature = r.signature;
                    bug = r.bug;
                    case_id = trial.case_id;
                    trial = index;
                    time = r.time;
                    detail = r.detail;
                    strategy;
                    minimized =
                      Sieve.Strategy.describe minimized_test.Sieve.Runner.strategy;
                    shrink_runs;
                  }
                in
                emit_artifact ~out ~finding ~test:minimized_test;
                if diagnose && emit_card ~out ~finding ~test:minimized_test then incr cards;
                Journal.append writer
                  (Journal.Finding
                     {
                       signature = finding.signature;
                       trial = finding.trial;
                       case = finding.case_id;
                       time = finding.time;
                       bug = finding.bug;
                       detail = finding.detail;
                       strategy = finding.strategy;
                       minimized = finding.minimized;
                       shrink_runs = finding.shrink_runs;
                     });
                finding
          in
          findings_rev := finding :: !findings_rev
        end)
      records;
    match on_progress with
    | None -> ()
    | Some notify ->
        notify
          {
            trials_done = index + 1;
            total = n;
            replayed = !replayed;
            findings = List.length !findings_rev;
          }
  in
  Fun.protect
    ~finally:(fun () -> Journal.close writer)
    (fun () -> Pool.map_ordered ~jobs ~tasks:trials ~f:work ~emit:settle);
  {
    trials = n;
    executed = !executed;
    replayed = !replayed;
    with_violations = !with_violations;
    findings = List.rev !findings_rev;
    space;
    journal = journal_path;
    conformance =
      (if check_conformance then
         Some
           {
             conf_trials = !conf_trials;
             conf_total = !conf_total;
             conf_signatures = List.rev !conf_signatures_rev;
           }
       else None);
    cards = !cards;
  }
