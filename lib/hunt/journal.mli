(** Crash-safe on-disk campaign journal.

    One JSONL file ({!Dsim.Json} records, one per line) holds everything
    a campaign ever learned: a header identifying the campaign, one
    record per completed trial, and one record per distinct finding.
    Appends are flushed per record, and readers accept only the longest
    prefix of well-formed, newline-terminated records — so a campaign
    killed mid-append loses at most the record being written, never the
    journal. {!open_resume} truncates that torn tail before appending,
    which keeps a resumed journal byte-identical to an uninterrupted
    run's. *)

type violation_record = { time : int; bug : string; signature : string; detail : string }

type entry =
  | Header of { version : int; seed : int64; trials : int; cases : string list }
      (** campaign identity: derivation seed, planned trial count and
          case ids — resume refuses a journal whose header disagrees *)
  | Trial of {
      trial : int;  (** schedule position; journal order == trial order *)
      case : string;
      origin : string;  (** ["planner#k"] or ["explore"] *)
      seed : int64;  (** per-trial seed derived via {!Dsim.Rng.split} *)
      strategy : string;
      violations : violation_record list;
    }
  | Finding of {
      signature : string;
      trial : int;  (** the trial that first exposed it *)
      case : string;
      time : int;
      bug : string;
      detail : string;
      strategy : string;  (** the exposing trial's full strategy *)
      minimized : string;  (** after {!Sieve.Minimize.minimize} *)
      shrink_runs : int;
    }

val entry_to_json : entry -> Dsim.Json.t

val entry_of_json : Dsim.Json.t -> entry option

val load : string -> entry list * int
(** [load path] decodes the longest valid record prefix and returns it
    with its byte length. A missing file is an empty journal; a torn or
    corrupt record ends the prefix (nothing after it is trusted). *)

type writer

val create : path:string -> writer
(** Fresh journal (truncates any existing file). *)

val open_resume : path:string -> entry list * writer
(** The journal's valid records, plus a writer positioned exactly after
    them (any torn tail is cut off the file). *)

val append : writer -> entry -> unit
(** Appends one record and flushes it to the OS. *)

val close : writer -> unit

val path : writer -> string
