(** The campaign driver: parallel, persistent, resumable, coverage-guided.

    A campaign turns a set of corpus cases into one global trial list:
    per case, the causal planner's candidates are ordered by coverage
    gain ({!Schedule.order}), then cases are interleaved round-robin; a
    budget beyond the candidate count is filled with seed-derived
    random-fault exploration trials. Per-trial seeds are split off the
    campaign seed by index ({!Dsim.Rng.split}), so nothing depends on
    completion order.

    Trials execute on worker domains ({!Pool.map_ordered}); results
    settle on the driver domain in trial order, appending to the
    {!Journal} as they go. The first trial to expose each distinct
    violation signature ({!Signature.of_violation}) becomes a finding:
    its strategy is shrunk with {!Sieve.Minimize.minimize} and a
    self-contained artifact directory
    ([OUT/findings/<signature>/{artifact,finding}.json], via
    {!Sieve.Runner.artifact}) is emitted. Later trials hitting the same
    signature deduplicate against it.

    Because trials are deterministic, seeds are index-derived, and the
    journal is written in trial order, the journal is byte-identical
    across job counts — and a resumed campaign (which replays the
    journal, skips completed trials and recomputes any finding whose
    record was lost to a crash) converges on the same bytes as an
    uninterrupted run. *)

type trial = {
  index : int;  (** schedule position == journal position *)
  case_id : string;
  origin : string;  (** ["planner#k"] (candidate rank) or ["explore#i"] *)
  seed : int64;  (** split off the campaign seed, by index *)
  test : Sieve.Runner.test;
}

type planned = {
  trials : trial array;
  space : (string * int * int) list;
      (** per case: (id, cells covered by the planned trials, total) *)
}

val plan :
  ?budget:int ->
  ?seed:int64 ->
  ?hazard_rank:bool ->
  cases:Sieve.Bugs.case list ->
  unit ->
  planned
(** Builds the trial list without running anything (beyond the per-case
    reference executions the planner needs). [budget] defaults to
    exactly the planner's candidates; smaller truncates the
    coverage-ordered list, larger appends exploration trials. With
    [hazard_rank] (default false) the static hazard graph
    ({!Analysis.Hazard.of_config}) is ranked lexicographically above
    coverage gain when ordering dispatch, so candidates implicating
    statically hazardous (component, key, pattern) cells run first while
    the candidate pool keeps its causal order as the tie-break. Pure in
    its arguments: equal inputs yield equal plans. *)

type finding = {
  signature : string;
  bug : string;
  case_id : string;
  trial : int;
  time : int;  (** virtual time of the violation in the exposing trial *)
  detail : string;
  strategy : string;
  minimized : string;
  shrink_runs : int;
}

type progress = { trials_done : int; total : int; replayed : int; findings : int }

type conformance_summary = {
  conf_trials : int;  (** executed trials that ran with the monitor *)
  conf_total : int;  (** conformance violation occurrences across them *)
  conf_signatures : string list;
      (** distinct {!Signature.of_conformance} ids, discovery order *)
}

type summary = {
  trials : int;
  executed : int;
  replayed : int;  (** skipped: replayed from the journal on resume *)
  with_violations : int;
  findings : finding list;  (** discovery order *)
  space : (string * int * int) list;
  journal : string;  (** journal path *)
  conformance : conformance_summary option;  (** [Some] iff [check_conformance] *)
  cards : int;  (** diagnosis cards attached to findings ([diagnose] only) *)
}

val run :
  ?jobs:int ->
  ?out:string ->
  ?resume:bool ->
  ?budget:int ->
  ?seed:int64 ->
  ?minimize_budget:int ->
  ?hazard_rank:bool ->
  ?check_conformance:bool ->
  ?diagnose:bool ->
  ?on_progress:(progress -> unit) ->
  cases:Sieve.Bugs.case list ->
  unit ->
  summary
(** Runs the campaign. [jobs] worker domains (default 1); [out] is the
    artifact directory (default ["_hunt"]), holding [journal.jsonl] and
    [findings/]. With [resume] the existing journal's completed trials
    are skipped (the header must match the campaign and every journaled
    trial's strategy must match the plan's — ordering flags like
    [hazard_rank] included — else the run fails with a clear error);
    without it any existing journal is overwritten. [minimize_budget]
    caps shrink executions per finding (default 200; [0] skips
    minimization). [hazard_rank] orders dispatch by the static hazard
    graph (see {!plan}). With [check_conformance] (default false) every
    executed trial also runs the online subsequence-invariant monitor
    ({!Sieve.Runner.run_test}'s [check_conformance]); results are
    aggregated into {!summary.conformance} and deliberately kept {e out}
    of the journal and artifacts, so journal bytes are identical with and
    without the flag. With [diagnose] (default false) every finding gets
    a [card.json] root-cause card ({!Diagnosis.Card}) next to its
    artifact, computed from a re-run of the minimized reproduction with
    divergence tracking; like conformance results, cards stay out of the
    journal, so journal bytes are identical with and without the flag
    (on resume, findings whose card is missing get one recomputed).
    [on_progress] fires after every settled trial, on the driver
    domain. *)
