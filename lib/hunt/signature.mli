(** Stable violation signatures for finding deduplication.

    Two trials that expose "the same bug on the same object through the
    same component" must collapse to one finding, however different
    their strategies were. The signature is [bug-id/component/key]:
    {!Sieve.Oracle.bug_id} names the bug class, {!component_of} the
    acting component, and {!Sieve.Oracle.key} the principal object —
    together a stable identity that survives re-runs, re-orderings and
    campaign resumes. *)

val component_of : Sieve.Oracle.violation -> string
(** The component whose partial history produced the violation (for
    duplicate pods: the sorted kubelet set, so ordering is stable). *)

val of_violation : Sieve.Oracle.violation -> string
(** ["bug-id/component/key"], e.g.
    ["K8s-56261/scheduler/livelock:post-1:node-2"]. *)

val of_conformance : Conformance.Monitor.violation -> string
(** ["conformance/code/subject"], with the subject's ["@generation"]
    suffix stripped so repeated violations of the same stream across
    restarts (and across trials) collapse to one id. *)

val to_dirname : string -> string
(** Filesystem-safe rendering of a signature (for per-finding artifact
    directories): every byte outside [\[A-Za-z0-9._-\]] becomes ['_']. *)
