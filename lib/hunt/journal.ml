type violation_record = { time : int; bug : string; signature : string; detail : string }

type entry =
  | Header of { version : int; seed : int64; trials : int; cases : string list }
  | Trial of {
      trial : int;
      case : string;
      origin : string;
      seed : int64;
      strategy : string;
      violations : violation_record list;
    }
  | Finding of {
      signature : string;
      trial : int;
      case : string;
      time : int;
      bug : string;
      detail : string;
      strategy : string;
      minimized : string;
      shrink_runs : int;
    }

(* Seeds are raw 64-bit values; OCaml's [int] (and Json.Int) only holds
   63 bits, so they travel as decimal strings. *)
let json_of_seed seed = Dsim.Json.String (Int64.to_string seed)

let entry_to_json = function
  | Header { version; seed; trials; cases } ->
      Dsim.Json.Obj
        [
          ("hunt", Dsim.Json.Int version);
          ("seed", json_of_seed seed);
          ("trials", Dsim.Json.Int trials);
          ("cases", Dsim.Json.List (List.map (fun c -> Dsim.Json.String c) cases));
        ]
  | Trial { trial; case; origin; seed; strategy; violations } ->
      Dsim.Json.Obj
        [
          ("trial", Dsim.Json.Int trial);
          ("case", Dsim.Json.String case);
          ("origin", Dsim.Json.String origin);
          ("seed", json_of_seed seed);
          ("strategy", Dsim.Json.String strategy);
          ( "violations",
            Dsim.Json.List
              (List.map
                 (fun r ->
                   Dsim.Json.Obj
                     [
                       ("time", Dsim.Json.Int r.time);
                       ("bug", Dsim.Json.String r.bug);
                       ("sig", Dsim.Json.String r.signature);
                       ("detail", Dsim.Json.String r.detail);
                     ])
                 violations) );
        ]
  | Finding { signature; trial; case; time; bug; detail; strategy; minimized; shrink_runs } ->
      Dsim.Json.Obj
        [
          ("finding", Dsim.Json.String signature);
          ("trial", Dsim.Json.Int trial);
          ("case", Dsim.Json.String case);
          ("time", Dsim.Json.Int time);
          ("bug", Dsim.Json.String bug);
          ("detail", Dsim.Json.String detail);
          ("strategy", Dsim.Json.String strategy);
          ("minimized", Dsim.Json.String minimized);
          ("shrink_runs", Dsim.Json.Int shrink_runs);
        ]

let ( let* ) = Option.bind

let field_str name j = let* f = Dsim.Json.member name j in Dsim.Json.to_str f
let field_int name j = let* f = Dsim.Json.member name j in Dsim.Json.to_int f

let field_seed j =
  let* s = field_str "seed" j in
  Int64.of_string_opt s

let violation_of_json j =
  let* time = field_int "time" j in
  let* bug = field_str "bug" j in
  let* signature = field_str "sig" j in
  let* detail = field_str "detail" j in
  Some { time; bug; signature; detail }

let entry_of_json j =
  match Dsim.Json.member "hunt" j with
  | Some _ ->
      let* version = field_int "hunt" j in
      let* seed = field_seed j in
      let* trials = field_int "trials" j in
      let* cases = Dsim.Json.member "cases" j in
      let* cases = Dsim.Json.to_list cases in
      let cases = List.filter_map Dsim.Json.to_str cases in
      Some (Header { version; seed; trials; cases })
  | None -> (
      match Dsim.Json.member "finding" j with
      | Some _ ->
          let* signature = field_str "finding" j in
          let* trial = field_int "trial" j in
          let* case = field_str "case" j in
          let* time = field_int "time" j in
          let* bug = field_str "bug" j in
          let* detail = field_str "detail" j in
          let* strategy = field_str "strategy" j in
          let* minimized = field_str "minimized" j in
          let* shrink_runs = field_int "shrink_runs" j in
          Some (Finding { signature; trial; case; time; bug; detail; strategy; minimized; shrink_runs })
      | None ->
          let* trial = field_int "trial" j in
          let* case = field_str "case" j in
          let* origin = field_str "origin" j in
          let* seed = field_seed j in
          let* strategy = field_str "strategy" j in
          let* violations = Dsim.Json.member "violations" j in
          let* violations = Dsim.Json.to_list violations in
          let violations = List.filter_map violation_of_json violations in
          Some (Trial { trial; case; origin; seed; strategy; violations }))

let entry_of_line line =
  match Dsim.Json.parse line with
  | Error _ -> None
  | Ok j -> entry_of_json j

(* --- reading ------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* A record is valid only if it parses AND is newline-terminated: a
   crash mid-append leaves a partial last line, which must not count.
   Returns the decoded valid prefix and its byte length. *)
let load path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let contents = read_file path in
    let total = String.length contents in
    let entries = ref [] in
    let valid = ref 0 in
    let pos = ref 0 in
    (try
       while !pos < total do
         match String.index_from_opt contents !pos '\n' with
         | None -> raise Exit (* unterminated tail: a torn append *)
         | Some nl ->
             let line = String.sub contents !pos (nl - !pos) in
             (match entry_of_line line with
             | None -> raise Exit (* torn or corrupt record: stop here *)
             | Some entry ->
                 entries := entry :: !entries;
                 valid := nl + 1;
                 pos := nl + 1)
       done
     with Exit -> ());
    (List.rev !entries, !valid)
  end

(* --- writing ------------------------------------------------------- *)

type writer = { oc : out_channel; path : string }

let path w = w.path

let create ~path =
  let oc = open_out_bin path in
  { oc; path }

let append w entry =
  output_string w.oc (Dsim.Json.to_string (entry_to_json entry));
  output_char w.oc '\n';
  flush w.oc

let close w = close_out w.oc

let open_resume ~path =
  let entries, valid = load path in
  (* Drop any torn tail so appends always start at a record boundary —
     this is what makes the resumed journal byte-identical to an
     uninterrupted run's. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Unix.ftruncate fd valid;
  ignore (Unix.lseek fd valid Unix.SEEK_SET);
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_out oc true;
  (entries, { oc; path })
