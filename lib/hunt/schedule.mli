(** Coverage-guided dispatch ordering.

    Section 6.2 makes coverage of the (component × object × pattern)
    space the limiting factor of a campaign; the scheduler turns that
    into the dispatch policy. Candidates are dispatched greedily by how
    many still-uncovered cells they would touch ({!Sieve.Coverage.gain}),
    each dispatch feeding {!Sieve.Coverage.note} so later picks see the
    shrunken frontier; ties — and the zero-gain tail — fall back to the
    planner's own causal ranking. The order is a pure function of the
    candidate list, so it is identical across job counts and resumes.

    An optional [priority] (in practice {!Analysis.Hazard.plan_score}:
    the static hazard severity of the cells a candidate exercises) is
    ranked lexicographically above coverage gain, so hazard-implicated
    candidates dispatch first and coverage greed breaks ties among
    equals. [priority] is evaluated once per candidate, up front. *)

val order :
  ?priority:(Sieve.Planner.plan -> int) ->
  Sieve.Coverage.t ->
  Sieve.Planner.plan array ->
  int list
(** Dispatch order as indices into the array (a permutation of
    [0 .. n-1]). Marks every candidate into the given coverage as a side
    effect. *)
