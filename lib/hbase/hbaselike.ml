(** A second infrastructure on the same substrates: ZooKeeper-style
    ensemble + HBase-style control plane.

    {!Zk} is a leader/follower pair where the follower replica lags by a
    configurable replication delay (a store-tier partial history);
    {!Master} performs CAS region transitions against state read from
    the follower (HBASE-3136/3137); {!Regionserver} caches the master's
    location from ZooKeeper (HBASE-5755). *)

module Zk = Zk
module Master = Master
module Regionserver = Regionserver
module Cluster = Cluster
