type Dsim.Network.request += Rs_heartbeat of { server : string }
type Dsim.Network.response += Heartbeat_ack

type t = {
  net : Dsim.Network.t;
  name : string;
  zk : Zk.t;
  regions : string list;
  sync_before_cas : bool;
  period : int;
  mutable transitions : int;
  mutable cas_failures : int;
  mutable heartbeats_served : int;
}

let name t = t.name

let transitions t = t.transitions

let cas_failures t = t.cas_failures

let heartbeats_served t = t.heartbeats_served

let engine t = Dsim.Network.engine t.net

let record t detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind:"hbase.master" detail

(* One region repair: read the assignment and the live-server set from
   the follower, reassign only when the region is unassigned or parked on
   a server that left the registry, CAS the transition at the leader. A
   stale follower makes the CAS fail (HBASE-3136) — or, worse, makes the
   dead assignment look healthy so no repair is ever attempted. *)
let balance_region t region live_servers =
  match live_servers with
  | [] -> ()
  | servers ->
      Zk.read t.zk ~src:t.name ~sync:t.sync_before_cas ("region/" ^ region) (function
        | Ok (current, mod_rev) ->
            let needs_assign =
              match current with
              | None -> true
              | Some server -> not (List.mem server servers)
            in
            if needs_assign then
              let desired =
                List.nth servers (Hashtbl.hash region mod List.length servers)
              in
              Zk.cas t.zk ~src:t.name ~key:("region/" ^ region) ~expected_mod_rev:mod_rev
                (Some desired) (function
                | Ok true ->
                    t.transitions <- t.transitions + 1;
                    record t (Printf.sprintf "%s -> %s" region desired)
                | Ok false ->
                    t.cas_failures <- t.cas_failures + 1;
                    record t (Printf.sprintf "CAS failed for %s (stale read)" region)
                | Error `Unavailable -> ())
        | Error `Unavailable -> ())

let balance_pass t =
  (* The live-server set also comes from the (possibly stale) follower. *)
  let kv = Zk.leader_kv t.zk in
  ignore kv;
  Zk.read t.zk ~src:t.name ~sync:t.sync_before_cas "rs/registry" (function
    | Ok (Some registry, _) ->
        let servers = String.split_on_char ',' registry |> List.filter (fun s -> s <> "") in
        List.iter (fun region -> balance_region t region servers) t.regions
    | Ok (None, _) | Error `Unavailable -> ())

let serve t ~src:_ request reply =
  match request with
  | Rs_heartbeat { server = _ } ->
      t.heartbeats_served <- t.heartbeats_served + 1;
      reply Heartbeat_ack
  | _ -> ()

let create ~net ~name ~zk ~regions ?(sync_before_cas = false) ?(period = 100_000) () =
  {
    net;
    name;
    zk;
    regions;
    sync_before_cas;
    period;
    transitions = 0;
    cas_failures = 0;
    heartbeats_served = 0;
  }

let start t =
  Dsim.Network.register t.net t.name ~serve:(serve t) ();
  Zk.write t.zk ~src:t.name ~key:"master" t.name (fun _ -> ());
  Dsim.Engine.every (engine t) ~period:t.period (fun () ->
      if Dsim.Network.is_up t.net t.name then balance_pass t;
      true)
