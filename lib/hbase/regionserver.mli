(** HBase-style region server: registers itself in ZooKeeper, tracks its
    region assignments through one-shot znode watches, looks up the
    master's address once, and heartbeats it.

    HBASE-5755 ("region server looking for master forever with cached
    stale data"): the master's location is cached at lookup time; after a
    master failover the cached address points at a corpse and the
    bug-era server retries it forever instead of re-reading ZooKeeper.
    [relookup_on_failure] applies the fix.

    The serving set is one-shot-watch driven: each ["region/<r>"] key in
    [watched_regions] is armed at start; when a watch fires, the bug-era
    server adopts the event's payload and re-arms blind, so an
    assignment committed between the firing and the re-arm is never
    observed (it keeps serving a region it lost, or never starts serving
    one it gained). [rearm_then_read] applies the fix: re-arm first,
    adopt the value the re-arm returns. *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  zk:Zk.t ->
  ?relookup_on_failure:bool ->
  ?rearm_then_read:bool ->
  ?watched_regions:string list ->
  ?heartbeat_period:int ->
  unit ->
  t
(** Default heartbeat period: 150 ms. *)

val start : t -> unit

val name : t -> string

val serving : t -> string list
(** Regions this server currently believes it serves, sorted. *)

val is_serving : t -> string -> bool

val cached_master : t -> string option
(** The master address this server currently believes in. *)

val heartbeats_ok : t -> int

val heartbeat_failures : t -> int

val consecutive_failures : t -> int
(** The HBASE-5755 signature: grows without bound when the cached master
    is dead and no re-lookup happens. *)
