(** ZooKeeper-style ensemble: a leader serving linearizable writes,
    compare-and-set and one-shot watches, and a follower serving reads
    from a replica that lags by a configurable replication delay.

    This is the substrate of the paper's HBase examples (§4.2.1): region
    transitions CAS against state *read from a follower's cache*
    (HBASE-3136), and the fix — forcing a [sync] before reading — trades
    leader load for freshness (HBASE-3137). One-shot watches are the
    §4.2.3 observability-gap generator: a registration is consumed when
    the event commits, so anything committed between the firing and the
    client's re-arm is invisible. The same partial-history model, one
    infrastructure over: the follower's replica is an [(H', S')] of the
    leader's [(H, S)].

    Values are strings; keys are free-form paths. *)

type Dsim.Network.cast +=
  | Zk_notify of { key : string; event : string History.Event.t }
        (** One-shot watch firing, delivered to the watcher's
            [on_cast] handler after one network latency. *)

type hub_order = Replication_first | Watches_first

type t

val create :
  net:Dsim.Network.t ->
  ?leader:string ->
  ?follower:string ->
  ?replication_lag:int ->
  ?compaction_window:int ->
  ?follower_leader_revs:bool ->
  ?hub_order:hub_order ->
  ?intercept:string History.Intercept.t ->
  unit ->
  t
(** Defaults: nodes ["zk-leader"] / ["zk-follower"], replication lag
    10 ms. The follower applies each committed leader event
    [replication_lag] later (in order). [compaction_window] bounds the
    leader's retained event log (default: unbounded); a follower whose
    catch-up pull lands below the compaction frontier receives a full
    state snapshot instead of events — {e not} an empty event list, so
    compaction is never mistaken for being caught up.

    [follower_leader_revs] (default off — the buggy era) makes follower
    reads report each key's {e leader} mod-revision from the replicated
    side table instead of the replica's local numbering, which drifts
    permanently after a post-compaction resync.

    [hub_order] picks the registration order of the replication stream
    and the watch notifier on the leader's dispatch hub; semantics must
    not depend on it. [intercept] is consulted on every delivery edge
    (replication and watch notifications); pass the cluster's shared
    interceptor so testing strategies can reach these edges. *)

val leader : t -> string

val follower : t -> string

val leader_kv : t -> string Etcdlike.Kv.t
(** Ground truth, for oracles and seeding. *)

val leader_hub : t -> string Etcdlike.Watch.t
(** The leader's watch hub. Follower replication is one watcher on it;
    tests and oracles may register more. *)

val follower_kv : t -> string Etcdlike.Kv.t
(** The replica's materialized state — the follower's [S'], for the
    conformance monitor's state checks. *)

val intercept : t -> string History.Intercept.t

val follower_rev : t -> int
(** The follower replica's applied revision in its {e local} numbering. *)

val follower_caught_up_to : t -> int
(** The leader revision the replica has applied up to — the follower's
    frontier in the committed history's numbering. *)

val serves_leader_revs : t -> bool
(** Whether follower reads report leader mod-revisions (the fixed era).
    When false, readers observe the replica's local numbering — which
    drifts from the committed domain after a post-compaction resync. *)

val observed_state : t -> string History.State.t
(** The follower's state in the revision domain {!read} serves — the
    observed (H', S') a conformance check must judge. Equal to the raw
    replica state in the buggy era; carries leader mod-revisions under
    [follower_leader_revs]. *)

val leader_ops : t -> int
(** Requests the leader has served — the load the HBASE-3137 fix
    inflates. *)

val follower_resyncs : t -> int
(** Full state transfers the follower performed after pulling below the
    leader's compaction frontier. *)

val origin_of_rev : t -> int -> string
(** Which client's request committed the revision ("boot" for seeds). *)

val commit_trace_id : t -> rev:int -> int option
(** Trace entry id of the leader commit at [rev]. *)

(** {2 Delivery-boundary taps} (read-only; for the conformance monitor) *)

val on_follower_apply : t -> (string History.Event.t -> unit) -> unit
(** Fires after the replica applies a committed leader event, via the
    replication stream or a sync-read catch-up pull. *)

val on_follower_resync : t -> (int -> unit) -> unit
(** Fires after a full state transfer, with the leader revision the
    replica jumped to. *)

val on_follower_read : t -> (src:string -> key:string -> unit) -> unit
(** Fires when the follower serves a read, before the reply is sent. *)

(** {2 Client operations} (asynchronous, over the network) *)

val read :
  t ->
  src:string ->
  ?sync:bool ->
  string ->
  ((string option * int, [ `Unavailable ]) result -> unit) ->
  unit
(** Reads from the *follower*. Returns the value and the mod-revision the
    follower sees. With [sync:true] the follower first catches up with
    the leader (one extra leader round-trip — the HBASE-3137 cost). *)

val cas :
  t ->
  src:string ->
  key:string ->
  expected_mod_rev:int ->
  string option ->
  ((bool, [ `Unavailable ]) result -> unit) ->
  unit
(** Linearizable compare-and-set at the leader: writes (or deletes, when
    the value is [None]) only if the key's mod-revision still matches. *)

val write :
  t -> src:string -> key:string -> string -> ((unit, [ `Unavailable ]) result -> unit) -> unit
(** Unconditional write at the leader. *)

val arm_watch :
  t ->
  src:string ->
  string ->
  ((string option * int, [ `Unavailable ]) result -> unit) ->
  unit
(** Arms (or re-arms) a one-shot watch on the key at the leader and
    returns the current value — ZooKeeper's [getData(watch=true)]. The
    next commit on the key consumes the registration and delivers a
    {!Zk_notify} cast to [src]; events between that firing and the next
    re-arm are lost to the client. *)
