(** ZooKeeper-style ensemble: a leader serving linearizable writes and
    compare-and-set, and a follower serving reads from a replica that
    lags by a configurable replication delay.

    This is the substrate of the paper's HBase examples (§4.2.1): region
    transitions CAS against state *read from a follower's cache*
    (HBASE-3136), and the fix — forcing a [sync] before reading — trades
    leader load for freshness (HBASE-3137). The same partial-history
    model, one infrastructure over: the follower's replica is an
    [(H', S')] of the leader's [(H, S)].

    Values are strings; keys are free-form paths. *)

type t

val create :
  net:Dsim.Network.t ->
  ?leader:string ->
  ?follower:string ->
  ?replication_lag:int ->
  ?compaction_window:int ->
  unit ->
  t
(** Defaults: nodes ["zk-leader"] / ["zk-follower"], replication lag
    10 ms. The follower applies each committed leader event
    [replication_lag] later (in order). [compaction_window] bounds the
    leader's retained event log (default: unbounded); a follower whose
    catch-up pull lands below the compaction frontier receives a full
    state snapshot instead of events — {e not} an empty event list, so
    compaction is never mistaken for being caught up. *)

val leader : t -> string

val follower : t -> string

val leader_kv : t -> string Etcdlike.Kv.t
(** Ground truth, for oracles and seeding. *)

val leader_hub : t -> string Etcdlike.Watch.t
(** The leader's watch hub. Follower replication is one watcher on it;
    tests and oracles may register more. *)

val follower_rev : t -> int
(** The follower replica's applied revision (≤ leader rev). *)

val leader_ops : t -> int
(** Requests the leader has served — the load the HBASE-3137 fix
    inflates. *)

val follower_resyncs : t -> int
(** Full state transfers the follower performed after pulling below the
    leader's compaction frontier. *)

(** {2 Client operations} (asynchronous, over the network) *)

val read :
  t ->
  src:string ->
  ?sync:bool ->
  string ->
  ((string option * int, [ `Unavailable ]) result -> unit) ->
  unit
(** Reads from the *follower*. Returns the value and the mod-revision the
    follower sees. With [sync:true] the follower first catches up with
    the leader (one extra leader round-trip — the HBASE-3137 cost). *)

val cas :
  t ->
  src:string ->
  key:string ->
  expected_mod_rev:int ->
  string option ->
  ((bool, [ `Unavailable ]) result -> unit) ->
  unit
(** Linearizable compare-and-set at the leader: writes (or deletes, when
    the value is [None]) only if the key's mod-revision still matches. *)

val write :
  t -> src:string -> key:string -> string -> ((unit, [ `Unavailable ]) result -> unit) -> unit
(** Unconditional write at the leader. *)
