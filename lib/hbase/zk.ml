type Dsim.Network.request +=
  | Zk_read of { key : string; sync : bool }
  | Zk_cas of { key : string; expected_mod_rev : int; value : string option }
  | Zk_write of { key : string; value : string }
  | Zk_pull of { since : int }  (* follower catching up with the leader *)
  | Zk_watch of { key : string }  (* arm a one-shot watch, reply with the current value *)

type Dsim.Network.response +=
  | Zk_value of { value : (string * int) option; rev : int }
  | Zk_cas_result of bool
  | Zk_written
  | Zk_events of string History.Event.t list
  | Zk_compacted of {
      compacted_rev : int;
      snapshot : (string * string * int) list;  (* key, value, leader mod-revision *)
      rev : int;
    }
        (** The puller is below the compaction frontier: the intervening
            events are gone, so catch-up must be a full state transfer. *)

type Dsim.Network.cast +=
  | Zk_notify of { key : string; event : string History.Event.t }
        (** One-shot watch firing: consumed at commit, delivered after one
            network latency. The client must re-arm to hear anything more. *)

type hub_order = Replication_first | Watches_first

type t = {
  net : Dsim.Network.t;
  leader_name : string;
  follower_name : string;
  replication_lag : int;
  compaction_window : int option;
  follower_leader_revs : bool;
  intercept : string History.Intercept.t;
  leader_kv : string Etcdlike.Kv.t;
  leader_hub : string Etcdlike.Watch.t;  (* indexed fan-out over leader commits *)
  follower_kv : string Etcdlike.Kv.t;  (* replica applied with lag *)
  fl_revs : (string, int) Hashtbl.t;  (* key -> leader mod-rev, as replicated *)
  watches : (string, string list) Hashtbl.t;  (* key -> armed one-shot watchers *)
  origins : (int, string) Hashtbl.t;  (* leader revision -> originating client *)
  commit_ids : (int, int) Hashtbl.t;  (* leader revision -> trace entry id *)
  mutable caught_up_to : int;  (* leader revision the replica has applied *)
  mutable repl_ready_at : int;  (* FIFO frontier of the replication stream *)
  mutable leader_ops : int;
  mutable follower_resyncs : int;
  mutable tap_apply : string History.Event.t -> unit;
  mutable tap_resync : int -> unit;
  mutable tap_read : src:string -> key:string -> unit;
}

let leader t = t.leader_name

let follower t = t.follower_name

let leader_kv t = t.leader_kv

let leader_hub t = t.leader_hub

let follower_kv t = t.follower_kv

let intercept t = t.intercept

let follower_rev t = History.State.rev (Etcdlike.Kv.state t.follower_kv)

let follower_caught_up_to t = t.caught_up_to

let serves_leader_revs t = t.follower_leader_revs

(* The follower's state as readers observe it: values from the replica,
   mod-revisions from whichever numbering domain [follower_read] serves.
   This is the (H', S') a conformance check must judge — the replica's
   raw local revisions are an implementation detail that stops matching
   the committed numbering after a post-compaction resync. *)
let observed_state t =
  let serving =
    List.map
      (fun (key, (v, local_rev)) ->
        let rev =
          if t.follower_leader_revs then
            Option.value (Hashtbl.find_opt t.fl_revs key) ~default:local_rev
          else local_rev
        in
        (key, v, rev))
      (History.State.bindings (Etcdlike.Kv.state t.follower_kv))
  in
  List.fold_left
    (fun s (key, v, rev) ->
      History.State.apply s (History.Event.make ~rev ~key ~op:History.Event.Create (Some v)))
    History.State.empty
    (List.sort (fun (_, _, a) (_, _, b) -> compare a b) serving)

let leader_ops t = t.leader_ops

let follower_resyncs t = t.follower_resyncs

let engine t = Dsim.Network.engine t.net

let origin_of_rev t rev = Option.value (Hashtbl.find_opt t.origins rev) ~default:"boot"

let commit_trace_id t ~rev = Hashtbl.find_opt t.commit_ids rev

let on_follower_apply t f = t.tap_apply <- f

let on_follower_resync t f = t.tap_resync <- f

let on_follower_read t f = t.tap_read <- f

(* Events the follower has not yet applied, by revision. The side table
   remembers each key's *leader* mod-revision: the replica assigns its own
   local revisions, and after a post-compaction resync the two numbering
   domains drift apart for good — serving leader revisions to readers is
   the HBASE-3136-family fix gated by [follower_leader_revs]. *)
let follower_apply t (e : string History.Event.t) =
  (match e.History.Event.op, e.History.Event.value with
  | History.Event.Delete, _ ->
      Hashtbl.remove t.fl_revs e.History.Event.key;
      ignore (Etcdlike.Kv.delete t.follower_kv e.History.Event.key)
  | (History.Event.Create | History.Event.Update), Some v ->
      Hashtbl.replace t.fl_revs e.History.Event.key e.History.Event.rev;
      ignore (Etcdlike.Kv.put t.follower_kv e.History.Event.key v)
  | (History.Event.Create | History.Event.Update), None -> ());
  t.tap_apply e

let leader_snapshot t =
  History.State.bindings_with_prefix (Etcdlike.Kv.state t.leader_kv) ~prefix:""
  |> List.map (fun (key, (v, mod_rev)) -> (key, v, mod_rev))

let note_origin t ~src (e : string History.Event.t) =
  Hashtbl.replace t.origins e.History.Event.rev src

(* One-shot watch dispatch: every registration on the key is consumed at
   commit time; whether the notification reaches the watcher is the
   interceptor's call (and the network's — a crashed watcher just misses
   it). Anything committed between this firing and the client's re-arm is
   invisible to the client: the protocol's built-in observability gap. *)
let fire_watches t (e : string History.Event.t) =
  let key = e.History.Event.key in
  match Hashtbl.find_opt t.watches key with
  | None | Some [] -> ()
  | Some dsts ->
      Hashtbl.remove t.watches key;
      List.iter
        (fun dst ->
          let edge = { History.Intercept.src = t.leader_name; dst } in
          let notify () = Dsim.Network.cast t.net ~src:t.leader_name ~dst (Zk_notify { key; event = e }) in
          match History.Intercept.decide t.intercept edge e with
          | History.Intercept.Drop ->
              Dsim.Engine.record (engine t) ~actor:dst ~kind:"pipe.drop"
                (Printf.sprintf "%s->%s %s" t.leader_name dst (History.Event.describe e))
          | History.Intercept.Pass -> notify ()
          | History.Intercept.Delay d -> ignore (Dsim.Engine.schedule (engine t) ~delay:d notify))
        dsts

(* The follower replica's revisions differ from the leader's (it assigns
   its own), so track the leader revision it has caught up to. *)
let serve_leader t ~src request reply =
  t.leader_ops <- t.leader_ops + 1;
  match request with
  | Zk_cas { key; expected_mod_rev; value } ->
      let outcome =
        match value with
        | Some v ->
            Etcdlike.Txn.eval t.leader_kv
              (Etcdlike.Txn.put_if_unchanged ~key ~expected_mod_rev v)
        | None ->
            Etcdlike.Txn.eval t.leader_kv
              (Etcdlike.Txn.delete_if_unchanged ~key ~expected_mod_rev)
      in
      List.iter (note_origin t ~src) outcome.Etcdlike.Txn.events;
      reply (Zk_cas_result outcome.Etcdlike.Txn.succeeded)
  | Zk_write { key; value } ->
      let e = Etcdlike.Kv.put t.leader_kv key value in
      note_origin t ~src e;
      reply Zk_written
  | Zk_read { key; sync = _ } ->
      (* Reads addressed directly at the leader are linearizable. *)
      reply (Zk_value { value = Etcdlike.Kv.get t.leader_kv key; rev = Etcdlike.Kv.rev t.leader_kv })
  | Zk_watch { key } ->
      (* getData(watch=true): arm (replacing any prior registration by the
         same client) and return the current value in the same breath. *)
      let armed = Option.value (Hashtbl.find_opt t.watches key) ~default:[] in
      Hashtbl.replace t.watches key (List.filter (fun d -> not (String.equal d src)) armed @ [ src ]);
      reply (Zk_value { value = Etcdlike.Kv.get t.leader_kv key; rev = Etcdlike.Kv.rev t.leader_kv })
  | Zk_pull { since } -> (
      match Etcdlike.Kv.since t.leader_kv ~rev:since with
      | Ok events -> reply (Zk_events events)
      | Error (`Compacted compacted_rev) ->
          (* Not an empty event list: an empty list means "caught up",
             and a puller below the compaction frontier is anything but.
             Ship the full leader state so the follower can resync. *)
          reply
            (Zk_compacted
               { compacted_rev; snapshot = leader_snapshot t; rev = Etcdlike.Kv.rev t.leader_kv }))
  | _ -> ()

let follower_read t ~src key =
  t.tap_read ~src ~key;
  let value =
    match Etcdlike.Kv.get t.follower_kv key with
    | None -> None
    | Some (v, local_rev) ->
        if t.follower_leader_revs then
          Some (v, Option.value (Hashtbl.find_opt t.fl_revs key) ~default:local_rev)
        else Some (v, local_rev)
  in
  Zk_value { value; rev = follower_rev t }

(* Full state transfer: make the replica's bindings equal the snapshot
   (its own revision counter keeps advancing — revisions are local), and
   advance the catch-up frontier past everything the snapshot covers. *)
let follower_resync t ~snapshot ~rev =
  let current =
    History.State.bindings_with_prefix (Etcdlike.Kv.state t.follower_kv) ~prefix:""
  in
  List.iter
    (fun (key, _) ->
      if not (List.exists (fun (k, _, _) -> String.equal k key) snapshot) then begin
        Hashtbl.remove t.fl_revs key;
        ignore (Etcdlike.Kv.delete t.follower_kv key)
      end)
    current;
  List.iter
    (fun (key, v, mod_rev) ->
      Hashtbl.replace t.fl_revs key mod_rev;
      match Etcdlike.Kv.get t.follower_kv key with
      | Some (v', _) when String.equal v' v -> ()
      | _ -> ignore (Etcdlike.Kv.put t.follower_kv key v))
    snapshot;
  t.caught_up_to <- rev;
  t.follower_resyncs <- t.follower_resyncs + 1;
  Dsim.Engine.record (engine t) ~actor:t.follower_name ~kind:"zk.resync"
    (Printf.sprintf "catch-up past compaction: full resync at leader rev %d" rev);
  t.tap_resync rev

let serve_follower t ~src request reply =
  match request with
  | Zk_read { key; sync } ->
      if not sync then reply (follower_read t ~src key)
      else
        (* HBASE-3137's cost: catch up with the leader before serving. *)
        Dsim.Network.call t.net ~src:t.follower_name ~dst:t.leader_name
          (Zk_pull { since = t.caught_up_to })
          (function
          | Ok (Zk_events events) ->
              List.iter
                (fun (e : string History.Event.t) ->
                  if e.History.Event.rev > t.caught_up_to then begin
                    follower_apply t e;
                    t.caught_up_to <- e.History.Event.rev
                  end)
                events;
              reply (follower_read t ~src key)
          | Ok (Zk_compacted { compacted_rev = _; snapshot; rev }) ->
              follower_resync t ~snapshot ~rev;
              reply (follower_read t ~src key)
          | _ -> reply (follower_read t ~src key))
  | _ -> ()

(* Stream replication: each leader commit reaches the replica one lag
   later, in order (the follower's (H', S')). The stream consults the
   interceptor like any other delivery edge; FIFO order survives a Delay
   because each event's apply time is clamped to the stream frontier. *)
let deliver_replication t (event : string History.Event.t) =
  let edge = { History.Intercept.src = t.leader_name; dst = t.follower_name } in
  let extra =
    match History.Intercept.decide t.intercept edge event with
    | History.Intercept.Pass -> Some 0
    | History.Intercept.Delay d -> Some d
    | History.Intercept.Drop ->
        Dsim.Engine.record (engine t) ~actor:t.follower_name ~kind:"pipe.drop"
          (Printf.sprintf "%s->%s %s" t.leader_name t.follower_name (History.Event.describe event));
        None
  in
  match extra with
  | None -> ()
  | Some extra ->
      let now = Dsim.Engine.now (engine t) in
      let at = max (now + t.replication_lag + extra) t.repl_ready_at in
      t.repl_ready_at <- at;
      ignore
        (Dsim.Engine.schedule (engine t) ~delay:(at - now) (fun () ->
             if event.History.Event.rev > t.caught_up_to then begin
               follower_apply t event;
               t.caught_up_to <- event.History.Event.rev
             end))

let create ~net ?(leader = "zk-leader") ?(follower = "zk-follower")
    ?(replication_lag = 10_000) ?compaction_window ?(follower_leader_revs = false)
    ?(hub_order = Replication_first) ?intercept () =
  let leader_kv = Etcdlike.Kv.create () in
  let t =
    {
      net;
      leader_name = leader;
      follower_name = follower;
      replication_lag;
      compaction_window;
      follower_leader_revs;
      intercept = (match intercept with Some i -> i | None -> History.Intercept.create ());
      leader_kv;
      leader_hub = Etcdlike.Watch.create leader_kv;
      follower_kv = Etcdlike.Kv.create ();
      fl_revs = Hashtbl.create 64;
      watches = Hashtbl.create 16;
      origins = Hashtbl.create 256;
      commit_ids = Hashtbl.create 256;
      caught_up_to = 0;
      repl_ready_at = 0;
      leader_ops = 0;
      follower_resyncs = 0;
      tap_apply = (fun _ -> ());
      tap_resync = (fun _ -> ());
      tap_read = (fun ~src:_ ~key:_ -> ());
    }
  in
  let subscribe deliver =
    match Etcdlike.Watch.watch t.leader_hub ~start_rev:0 ~deliver () with
    | Ok _ -> ()
    | Error (`Compacted _) -> ()
  in
  (* Two subscribers share the leader's dispatch hub: the replication
     stream and the one-shot watch notifier. Registration order decides
     same-commit fan-out order; semantics must not depend on it (the
     compaction-resync suite runs under both). *)
  (match hub_order with
  | Replication_first ->
      subscribe (deliver_replication t);
      subscribe (fire_watches t)
  | Watches_first ->
      subscribe (fire_watches t);
      subscribe (deliver_replication t));
  (* Commit-side bookkeeping: every leader commit becomes a trace entry
     (the causal anchor diagnosis cards point at) and a counter tick. *)
  Etcdlike.Kv.on_commit t.leader_kv (fun (e : string History.Event.t) ->
      let rev = e.History.Event.rev in
      let id =
        Dsim.Engine.emit (Dsim.Network.engine net) ~actor:t.leader_name ~kind:"zk.commit"
          (Printf.sprintf "rev %d %s" rev (History.Event.describe e))
      in
      Hashtbl.replace t.commit_ids rev id;
      Dsim.Metrics.incr (Dsim.Engine.metrics (Dsim.Network.engine net)) "zk.commits");
  (* Retention: keep only the last [w] events pullable. Registered after
     the hub's commit listener, so fan-out always precedes the trim. *)
  (match t.compaction_window with
  | Some w ->
      Etcdlike.Kv.on_commit t.leader_kv (fun _ -> Etcdlike.Kv.compact_keep_last t.leader_kv w)
  | None -> ());
  Dsim.Network.register net t.leader_name ~serve:(serve_leader t) ();
  Dsim.Network.register net t.follower_name ~serve:(serve_follower t) ();
  t

let read t ~src ?(sync = false) key k =
  Dsim.Network.call t.net ~src ~dst:t.follower_name (Zk_read { key; sync }) (function
    | Ok (Zk_value { value; rev = _ }) ->
        k (Ok (Option.map fst value, Option.value (Option.map snd value) ~default:0))
    | _ -> k (Error `Unavailable))

let cas t ~src ~key ~expected_mod_rev value k =
  Dsim.Network.call t.net ~src ~dst:t.leader_name (Zk_cas { key; expected_mod_rev; value })
    (function
    | Ok (Zk_cas_result ok) -> k (Ok ok)
    | _ -> k (Error `Unavailable))

let write t ~src ~key value k =
  Dsim.Network.call t.net ~src ~dst:t.leader_name (Zk_write { key; value }) (function
    | Ok Zk_written -> k (Ok ())
    | _ -> k (Error `Unavailable))

let arm_watch t ~src key k =
  Dsim.Network.call t.net ~src ~dst:t.leader_name (Zk_watch { key }) (function
    | Ok (Zk_value { value; rev = _ }) ->
        k (Ok (Option.map fst value, Option.value (Option.map snd value) ~default:0))
    | _ -> k (Error `Unavailable))
