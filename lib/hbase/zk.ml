type Dsim.Network.request +=
  | Zk_read of { key : string; sync : bool }
  | Zk_cas of { key : string; expected_mod_rev : int; value : string option }
  | Zk_write of { key : string; value : string }
  | Zk_pull of { since : int }  (* follower catching up with the leader *)

type Dsim.Network.response +=
  | Zk_value of { value : (string * int) option; rev : int }
  | Zk_cas_result of bool
  | Zk_written
  | Zk_events of string History.Event.t list
  | Zk_compacted of { compacted_rev : int; snapshot : (string * string) list; rev : int }
        (** The puller is below the compaction frontier: the intervening
            events are gone, so catch-up must be a full state transfer. *)

type t = {
  net : Dsim.Network.t;
  leader_name : string;
  follower_name : string;
  replication_lag : int;
  compaction_window : int option;
  leader_kv : string Etcdlike.Kv.t;
  leader_hub : string Etcdlike.Watch.t;  (* indexed fan-out over leader commits *)
  follower_kv : string Etcdlike.Kv.t;  (* replica applied with lag *)
  mutable leader_ops : int;
  mutable follower_resyncs : int;
}

let leader t = t.leader_name

let follower t = t.follower_name

let leader_kv t = t.leader_kv

let leader_hub t = t.leader_hub

let follower_rev t = History.State.rev (Etcdlike.Kv.state t.follower_kv)

let leader_ops t = t.leader_ops

let follower_resyncs t = t.follower_resyncs

let engine t = Dsim.Network.engine t.net

(* Events the follower has not yet applied, by revision. *)
let follower_apply t (e : string History.Event.t) =
  match e.History.Event.op, e.History.Event.value with
  | History.Event.Delete, _ -> ignore (Etcdlike.Kv.delete t.follower_kv e.History.Event.key)
  | (History.Event.Create | History.Event.Update), Some v ->
      ignore (Etcdlike.Kv.put t.follower_kv e.History.Event.key v)
  | (History.Event.Create | History.Event.Update), None -> ()

let leader_snapshot t =
  History.State.bindings_with_prefix (Etcdlike.Kv.state t.leader_kv) ~prefix:""
  |> List.map (fun (key, (v, _)) -> (key, v))

(* The follower replica's revisions differ from the leader's (it assigns
   its own), so track the leader revision it has caught up to. *)
let serve_leader t ~src:_ request reply =
  t.leader_ops <- t.leader_ops + 1;
  match request with
  | Zk_cas { key; expected_mod_rev; value } ->
      let outcome =
        match value with
        | Some v ->
            Etcdlike.Txn.eval t.leader_kv
              (Etcdlike.Txn.put_if_unchanged ~key ~expected_mod_rev v)
        | None ->
            Etcdlike.Txn.eval t.leader_kv
              (Etcdlike.Txn.delete_if_unchanged ~key ~expected_mod_rev)
      in
      reply (Zk_cas_result outcome.Etcdlike.Txn.succeeded)
  | Zk_write { key; value } ->
      ignore (Etcdlike.Kv.put t.leader_kv key value);
      reply Zk_written
  | Zk_read { key; sync = _ } ->
      (* Reads addressed directly at the leader are linearizable. *)
      reply (Zk_value { value = Etcdlike.Kv.get t.leader_kv key; rev = Etcdlike.Kv.rev t.leader_kv })
  | Zk_pull { since } -> (
      match Etcdlike.Kv.since t.leader_kv ~rev:since with
      | Ok events -> reply (Zk_events events)
      | Error (`Compacted compacted_rev) ->
          (* Not an empty event list: an empty list means "caught up",
             and a puller below the compaction frontier is anything but.
             Ship the full leader state so the follower can resync. *)
          reply
            (Zk_compacted
               { compacted_rev; snapshot = leader_snapshot t; rev = Etcdlike.Kv.rev t.leader_kv }))
  | _ -> ()

type follower_state = { mutable caught_up_to : int (* leader revision *) }

let follower_read t key =
  Zk_value { value = Etcdlike.Kv.get t.follower_kv key; rev = follower_rev t }

(* Full state transfer: make the replica's bindings equal the snapshot
   (its own revision counter keeps advancing — revisions are local), and
   advance the catch-up frontier past everything the snapshot covers. *)
let follower_resync t state ~snapshot ~rev =
  let current =
    History.State.bindings_with_prefix (Etcdlike.Kv.state t.follower_kv) ~prefix:""
  in
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key snapshot) then ignore (Etcdlike.Kv.delete t.follower_kv key))
    current;
  List.iter
    (fun (key, v) ->
      match Etcdlike.Kv.get t.follower_kv key with
      | Some (v', _) when String.equal v' v -> ()
      | _ -> ignore (Etcdlike.Kv.put t.follower_kv key v))
    snapshot;
  state.caught_up_to <- rev;
  t.follower_resyncs <- t.follower_resyncs + 1;
  Dsim.Engine.record (engine t) ~actor:t.follower_name ~kind:"zk.resync"
    (Printf.sprintf "catch-up past compaction: full resync at leader rev %d" rev)

let serve_follower t state ~src:_ request reply =
  match request with
  | Zk_read { key; sync } ->
      if not sync then reply (follower_read t key)
      else
        (* HBASE-3137's cost: catch up with the leader before serving. *)
        Dsim.Network.call t.net ~src:t.follower_name ~dst:t.leader_name
          (Zk_pull { since = state.caught_up_to })
          (function
          | Ok (Zk_events events) ->
              List.iter
                (fun (e : string History.Event.t) ->
                  if e.History.Event.rev > state.caught_up_to then begin
                    follower_apply t e;
                    state.caught_up_to <- e.History.Event.rev
                  end)
                events;
              reply (follower_read t key)
          | Ok (Zk_compacted { compacted_rev = _; snapshot; rev }) ->
              follower_resync t state ~snapshot ~rev;
              reply (follower_read t key)
          | _ -> reply (follower_read t key))
  | _ -> ()

let create ~net ?(leader = "zk-leader") ?(follower = "zk-follower")
    ?(replication_lag = 10_000) ?compaction_window () =
  let leader_kv = Etcdlike.Kv.create () in
  let t =
    {
      net;
      leader_name = leader;
      follower_name = follower;
      replication_lag;
      compaction_window;
      leader_kv;
      leader_hub = Etcdlike.Watch.create leader_kv;
      follower_kv = Etcdlike.Kv.create ();
      leader_ops = 0;
      follower_resyncs = 0;
    }
  in
  let state = { caught_up_to = 0 } in
  (* Stream replication: each leader commit reaches the replica one lag
     later, in order (the follower's (H', S')). The stream is a watcher
     on the leader's dispatch hub, like any other subscriber. *)
  (match
     Etcdlike.Watch.watch t.leader_hub ~start_rev:0
       ~deliver:(fun event ->
         ignore
           (Dsim.Engine.schedule (engine t) ~delay:t.replication_lag (fun () ->
                if event.History.Event.rev > state.caught_up_to then begin
                  follower_apply t event;
                  state.caught_up_to <- event.History.Event.rev
                end)))
       ()
   with
  | Ok _ -> ()
  | Error (`Compacted _) -> ());
  (* Retention: keep only the last [w] events pullable. Registered after
     the hub's commit listener, so fan-out always precedes the trim. *)
  (match t.compaction_window with
  | Some w ->
      Etcdlike.Kv.on_commit t.leader_kv (fun _ -> Etcdlike.Kv.compact_keep_last t.leader_kv w)
  | None -> ());
  Dsim.Network.register net t.leader_name ~serve:(serve_leader t) ();
  Dsim.Network.register net t.follower_name ~serve:(serve_follower t state) ();
  t

let read t ~src ?(sync = false) key k =
  Dsim.Network.call t.net ~src ~dst:t.follower_name (Zk_read { key; sync }) (function
    | Ok (Zk_value { value; rev = _ }) ->
        k (Ok (Option.map fst value, Option.value (Option.map snd value) ~default:0))
    | _ -> k (Error `Unavailable))

let cas t ~src ~key ~expected_mod_rev value k =
  Dsim.Network.call t.net ~src ~dst:t.leader_name (Zk_cas { key; expected_mod_rev; value })
    (function
    | Ok (Zk_cas_result ok) -> k (Ok ok)
    | _ -> k (Error `Unavailable))

let write t ~src ~key value k =
  Dsim.Network.call t.net ~src ~dst:t.leader_name (Zk_write { key; value }) (function
    | Ok Zk_written -> k (Ok ())
    | _ -> k (Error `Unavailable))
