type t = {
  net : Dsim.Network.t;
  name : string;
  zk : Zk.t;
  relookup_on_failure : bool;
  rearm_then_read : bool;
  watched_regions : string list;
  heartbeat_period : int;
  serving : (string, unit) Hashtbl.t;
  mutable cached_master : string option;
  mutable heartbeats_ok : int;
  mutable heartbeat_failures : int;
  mutable consecutive_failures : int;
}

let name t = t.name

let cached_master t = t.cached_master

let heartbeats_ok t = t.heartbeats_ok

let heartbeat_failures t = t.heartbeat_failures

let consecutive_failures t = t.consecutive_failures

let serving t = List.sort String.compare (Hashtbl.fold (fun r () acc -> r :: acc) t.serving [])

let is_serving t region = Hashtbl.mem t.serving region

let engine t = Dsim.Network.engine t.net

let record t detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind:"hbase.rs" detail

let lookup_master t k =
  (* A fresh lookup uses a synced read: finding the coordinator is worth
     a linearizable round-trip. *)
  Zk.read t.zk ~src:t.name ~sync:true "master" (function
    | Ok (Some master, _) ->
        if t.cached_master <> Some master then
          record t (Printf.sprintf "master located at %s" master);
        t.cached_master <- Some master;
        k (Some master)
    | Ok (None, _) | Error `Unavailable -> k None)

(* Join the comma-separated registry (idempotent). *)
let register t =
  Zk.read t.zk ~src:t.name ~sync:true "rs/registry" (function
    | Ok (current, _) ->
        let members =
          match current with
          | Some s -> String.split_on_char ',' s |> List.filter (fun x -> x <> "")
          | None -> []
        in
        if not (List.mem t.name members) then
          Zk.write t.zk ~src:t.name ~key:"rs/registry"
            (String.concat "," (members @ [ t.name ]))
            (fun _ -> ())
    | Error `Unavailable -> ())

(* --- region serving, driven by one-shot znode watches ---------------- *)

let region_of_key key =
  let prefix = "region/" in
  if String.starts_with ~prefix key then
    Some (String.sub key (String.length prefix) (String.length key - String.length prefix))
  else None

(* Adopt one observed assignment: serve the region iff it is ours. *)
let apply_assignment t region assigned =
  let mine = assigned = Some t.name in
  if mine && not (Hashtbl.mem t.serving region) then begin
    Hashtbl.replace t.serving region ();
    record t (Printf.sprintf "serving %s" region)
  end
  else if (not mine) && Hashtbl.mem t.serving region then begin
    Hashtbl.remove t.serving region;
    record t (Printf.sprintf "stopped serving %s" region)
  end

let arm t region =
  Zk.arm_watch t.zk ~src:t.name ("region/" ^ region) (function
    | Ok (assigned, _) -> apply_assignment t region assigned
    | Error `Unavailable -> ())

(* A one-shot watch fired. The registration is already consumed: anything
   committed between this event and our re-arm reaching the leader is
   invisible. The bug-era server acts on the event's payload and re-arms
   blind (the §4.2.3 edge-trigger); the fixed one re-arms *first* and
   acts on the current value the re-arm returns, so a write that slipped
   into the gap is still observed. *)
let handle_notify t key (event : string History.Event.t) =
  match region_of_key key with
  | None -> ()
  | Some region ->
      if t.rearm_then_read then arm t region
      else begin
        (match event.History.Event.op with
        | History.Event.Delete -> apply_assignment t region None
        | History.Event.Create | History.Event.Update ->
            apply_assignment t region event.History.Event.value);
        Zk.arm_watch t.zk ~src:t.name ("region/" ^ region) (fun _ -> ())
      end

let on_cast t ~src:_ cast =
  match cast with Zk.Zk_notify { key; event } -> handle_notify t key event | _ -> ()

let heartbeat t =
  match t.cached_master with
  | None -> lookup_master t (fun _ -> ())
  | Some master ->
      Dsim.Network.call t.net ~src:t.name ~dst:master ~timeout:100_000
        (Master.Rs_heartbeat { server = t.name })
        (function
        | Ok Master.Heartbeat_ack ->
            t.heartbeats_ok <- t.heartbeats_ok + 1;
            t.consecutive_failures <- 0
        | _ ->
            t.heartbeat_failures <- t.heartbeat_failures + 1;
            t.consecutive_failures <- t.consecutive_failures + 1;
            (* The bug-era server keeps hammering the cached address; the
               fixed one asks ZooKeeper where the master is now. *)
            if t.relookup_on_failure then begin
              t.cached_master <- None;
              lookup_master t (fun _ -> ())
            end)

let create ~net ~name ~zk ?(relookup_on_failure = false) ?(rearm_then_read = false)
    ?(watched_regions = []) ?(heartbeat_period = 150_000) () =
  {
    net;
    name;
    zk;
    relookup_on_failure;
    rearm_then_read;
    watched_regions;
    heartbeat_period;
    serving = Hashtbl.create 8;
    cached_master = None;
    heartbeats_ok = 0;
    heartbeat_failures = 0;
    consecutive_failures = 0;
  }

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ~on_cast:(on_cast t) ();
  register t;
  List.iter (arm t) t.watched_regions;
  Dsim.Engine.every (engine t) ~period:t.heartbeat_period (fun () ->
      if Dsim.Network.is_up t.net t.name then heartbeat t;
      true)
