(* The HBase-dialect cluster: one ZooKeeper leader/follower pair, one
   master, N region servers, plus a "user" client driving the workload —
   the same construction/start/run shape as [Kube.Cluster], behind the
   shared substrate interface. *)

type config = {
  seed : int64;
  servers : int;
  regions : string list;
  replication_lag : int;
  compaction_window : int option;
  sync_before_cas : bool;  (** HBASE-3137: master syncs the follower before reading *)
  relookup_on_failure : bool;  (** HBASE-5755 fix on the region servers *)
  rearm_then_read : bool;  (** one-shot-watch fix on the region servers *)
  follower_leader_revs : bool;  (** follower reads report leader mod-revisions *)
  hub_order : Zk.hub_order;
  min_latency : int;
  max_latency : int;
  balance_period : int;
  obs_sample_period : int;
}

let default_config =
  {
    seed = 7L;
    servers = 2;
    regions = [ "r1"; "r2"; "r3"; "r4" ];
    replication_lag = 10_000;
    compaction_window = None;
    sync_before_cas = false;
    relookup_on_failure = false;
    rearm_then_read = false;
    follower_leader_revs = false;
    hub_order = Zk.Replication_first;
    min_latency = 500;
    max_latency = 2_000;
    balance_period = 100_000;
    obs_sample_period = 100_000;
  }

type op =
  | Move_region of { at : int; region : string; to_ : string }
      (** Client-driven assignment write at the leader (a split/move as
          seen by ZooKeeper); armed watches on the key fire. *)
  | Decommission of { at : int; server : string }
      (** Remove the server from ["rs/registry"] (fresh read, then write)
          and shut it down once the write is acknowledged. *)
  | Put of { at : int; key : string; value : string }
      (** Arbitrary leader write — metadata churn. *)

type workload = op list

let server_name i = Printf.sprintf "rs-%d" (i + 1)

let user = "user"

type t = {
  config : config;
  engine : Dsim.Engine.t;
  net : Dsim.Network.t;
  intercept : string History.Intercept.t;
  zk : Zk.t;
  master : Master.t;
  region_servers : Regionserver.t list;
}

let config t = t.config

let engine t = t.engine

let net t = t.net

let intercept t = t.intercept

let zk t = t.zk

let master t = t.master

let region_servers t = t.region_servers

let trace t = Dsim.Engine.trace t.engine

let metrics t = Dsim.Engine.metrics t.engine

let truth_rev t = Etcdlike.Kv.rev (Zk.leader_kv t.zk)

let server_names config = List.init config.servers server_name

let components config = "master-1" :: server_names config

let create config =
  let engine = Dsim.Engine.create ~seed:config.seed () in
  let net =
    Dsim.Network.create ~min_latency:config.min_latency ~max_latency:config.max_latency engine
  in
  let intercept = History.Intercept.create () in
  let zk =
    Zk.create ~net ~replication_lag:config.replication_lag
      ?compaction_window:config.compaction_window
      ~follower_leader_revs:config.follower_leader_revs ~hub_order:config.hub_order ~intercept
      ()
  in
  let master =
    Master.create ~net ~name:"master-1" ~zk ~regions:config.regions
      ~sync_before_cas:config.sync_before_cas ~period:config.balance_period ()
  in
  let region_servers =
    List.init config.servers (fun i ->
        Regionserver.create ~net ~name:(server_name i) ~zk
          ~relookup_on_failure:config.relookup_on_failure
          ~rearm_then_read:config.rearm_then_read ~watched_regions:config.regions ())
  in
  Dsim.Network.register net user ~serve:(fun ~src:_ _ _ -> ()) ();
  { config; engine; net; intercept; zk; master; region_servers }

let start t =
  (* Seed the membership below the fault surface, like kube's boot node
     objects: the registry exists before any component looks for it. *)
  ignore
    (Etcdlike.Kv.put (Zk.leader_kv t.zk) "rs/registry"
       (String.concat "," (server_names t.config)));
  Master.start t.master;
  List.iter Regionserver.start t.region_servers;
  Dsim.Engine.every t.engine ~period:t.config.obs_sample_period (fun () ->
      let lag = float_of_int (truth_rev t - Zk.follower_caught_up_to t.zk) in
      let m = metrics t in
      Dsim.Metrics.set_gauge m "lag.zk-follower" lag;
      Dsim.Metrics.sample m "lag.zk-follower" ~time:(Dsim.Engine.now t.engine) lag;
      true)

(* --- workload -------------------------------------------------------- *)

let do_decommission t server =
  (* Fresh membership first: the decommission is an administrative act
     against the current registry, not a cached one. *)
  Zk.read t.zk ~src:user ~sync:true "rs/registry" (function
    | Ok (current, _) ->
        let members =
          match current with
          | Some s -> String.split_on_char ',' s |> List.filter (fun x -> x <> "")
          | None -> []
        in
        let remaining = List.filter (fun m -> not (String.equal m server)) members in
        Zk.write t.zk ~src:user ~key:"rs/registry" (String.concat "," remaining) (fun _ ->
            Dsim.Engine.record t.engine ~actor:user ~kind:"workload.step"
              (Printf.sprintf "decommission %s" server);
            if Dsim.Network.is_up t.net server then Dsim.Network.crash t.net server)
    | Error `Unavailable -> ())

let schedule t workload =
  List.iter
    (fun op ->
      match op with
      | Move_region { at; region; to_ } ->
          ignore
            (Dsim.Engine.schedule_at t.engine ~time:at (fun () ->
                 Dsim.Engine.record t.engine ~actor:user ~kind:"workload.step"
                   (Printf.sprintf "move %s -> %s" region to_);
                 Zk.write t.zk ~src:user ~key:("region/" ^ region) to_ (fun _ -> ())))
      | Decommission { at; server } ->
          ignore
            (Dsim.Engine.schedule_at t.engine ~time:at (fun () -> do_decommission t server))
      | Put { at; key; value } ->
          ignore
            (Dsim.Engine.schedule_at t.engine ~time:at (fun () ->
                 Zk.write t.zk ~src:user ~key value (fun _ -> ()))))
    workload

let run ~until t = Dsim.Engine.run ~until t.engine
