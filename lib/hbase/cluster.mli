(** The HBase-dialect cluster behind the shared substrate interface:
    a ZooKeeper leader/follower pair, one master, N region servers, and
    a "user" client driving the workload — mirroring [Kube.Cluster]'s
    construction/start/run shape so the sieve runner can drive either
    substrate through [Core.Substrate]. *)

type config = {
  seed : int64;
  servers : int;
  regions : string list;
  replication_lag : int;
  compaction_window : int option;
  sync_before_cas : bool;  (** HBASE-3137: master syncs the follower before reading *)
  relookup_on_failure : bool;  (** HBASE-5755 fix on the region servers *)
  rearm_then_read : bool;  (** one-shot-watch fix on the region servers *)
  follower_leader_revs : bool;  (** follower reads report leader mod-revisions *)
  hub_order : Zk.hub_order;
  min_latency : int;
  max_latency : int;
  balance_period : int;
  obs_sample_period : int;
}

val default_config : config

type op =
  | Move_region of { at : int; region : string; to_ : string }
      (** Client-driven assignment write at the leader (a split/move as
          seen by ZooKeeper); armed watches on the key fire. *)
  | Decommission of { at : int; server : string }
      (** Remove the server from ["rs/registry"] (fresh read, then
          write) and shut it down once the write is acknowledged. *)
  | Put of { at : int; key : string; value : string }
      (** Arbitrary leader write — metadata churn. *)

type workload = op list

type t

val create : config -> t

val start : t -> unit
(** Seeds ["rs/registry"] with every server at the leader (origin
    "boot"), starts the master and the region servers, and begins
    sampling the follower's replication lag as ["lag.zk-follower"]. *)

val schedule : t -> workload -> unit

val run : until:int -> t -> unit

val server_name : int -> string
(** [server_name i] is ["rs-<i+1>"]. *)

val server_names : config -> string list

val components : config -> string list
(** The fault-injectable processes: the master and the region servers. *)

val user : string

val config : t -> config

val engine : t -> Dsim.Engine.t

val net : t -> Dsim.Network.t

val intercept : t -> string History.Intercept.t

val zk : t -> Zk.t

val master : t -> Master.t

val region_servers : t -> Regionserver.t list

val trace : t -> Dsim.Trace.t

val metrics : t -> Dsim.Metrics.t

val truth_rev : t -> int
(** The leader store's revision — the committed history's frontier. *)
