(** Stale-taint dataflow core for the lint (layer 1).

    Parse-only (no typing): values derived from cached reads — informer
    stores / [State] views, ZooKeeper follower reads, replicated-KV
    replica-routed reads — are tainted with the flavor of staleness
    they carry. Taint propagates through let-bindings, tuples, records,
    constructors, inline callbacks, and interprocedurally via
    per-function summaries (tainted return values, parameters that
    reach sinks) closed over the local call graph. Sinks are
    destructive writes, proposals, and ZooKeeper CAS/region-assignment
    writes. Recognized guards kill taint: quorum re-reads, revision
    preconditions (domain-aware: a follower-assigned [mod_rev] cannot
    guard a leader CAS), [~sync:true] leader catch-up reads, and epoch
    seals. Every surviving source-to-sink path is returned as an
    evidence {!path}.

    This module is pure analysis: nothing on the simulator's execution
    path calls it. *)

(** Where the staleness came from. *)
type kind =
  | Cache  (** informer store / [State] view rebuilt from a watch *)
  | Kv_replica  (** [Replicated.Kv] read routed by read_mode *)
  | Zk_follower  (** [Zk.read] served by the lagging follower *)

type sink_class =
  | Destructive  (** delete/decommission/evict/drain/purge call *)
  | Record_destroy  (** record literal setting deletion_timestamp / Failed *)
  | Region_assign  (** [Zk.cas]/[Zk.write] on a region key *)
  | Zk_write  (** other leader-bound ZooKeeper write *)
  | Proposal  (** replicated-store proposal ([Kv.put]/[txn]/...) *)
  | Reproposal  (** fresh proposal issued from an error-retry branch *)

type span = { line : int; what : string }

(** One evidence path: source, propagation spans in source-to-sink
    order, the sink, and the guard whose absence makes it a finding. *)
type path = {
  kind : kind;
  source : span;
  steps : span list;
  sink : span;
  sink_class : sink_class;
  missing_guard : string;
}

val kind_to_string : kind -> string
val sink_class_to_string : sink_class -> string

val render : file:string -> path -> string
(** Multi-line, human-readable evidence path (for [sieve lint --explain]). *)

val path_to_json : path -> Dsim.Json.t

(** {1 Structural sites} — collected during the same walk, consumed by
    the lint's shape rules (edge-trigger, stale-resync, one-shot
    watches). *)

type handler = Hname of string | Hinline of Parsetree.expression | Habsent

type informer_site = {
  i_line : int;
  i_enclosing : string;
  i_prefix : string option;
  i_handler : handler;
}

type restart_site = { r_enclosing : string; r_handler : handler }

type watch_site = { w_line : int; w_enclosing : string; w_key : string option; w_handler : handler }

type stub = { st_steps : span list; st_sink : span; st_class : sink_class }

type summary = {
  fn_name : string;
  fn_line : int;
  fn_body : Parsetree.expression;
  fn_params : (Asttypes.arg_label * string option) list;
  mutable fn_returns : (kind * span * span list) option;
  mutable fn_param_sinks : (string * stub) list;
  mutable fn_complete : path list;
  mutable fn_calls : string list;
  mutable fn_scans : string list;
}

type result = {
  funcs : summary list;
  complete : (summary * path) list;
      (** complete source-to-sink paths, reported at the function where
          the source half and the sink half first combine (a caller
          whose callee already owns a complete path is suppressed) *)
  reproposals : (summary * path) list;  (** retry-no-dedup candidates *)
  informers : informer_site list;
  restarts : restart_site list;
  watches : watch_site list;
  periodic_scanned : string list;
      (** prefix tokens re-listed by anything reachable from an
          [Engine.every] callback *)
}

val analyze : Parsetree.structure -> result

(** {1 Name classification} — shared with the lint driver. *)

val contains_sub : string -> string -> bool
val is_guard_name : string -> bool
val is_destructive_name : string -> bool
val is_rev_name : string -> bool
val resync_names : string list
val fn_path : Parsetree.expression -> string list
val last_of : string list -> string
val line_of : Location.t -> int
val is_zk_watch : string list -> bool
val is_zk_read : string list -> bool
