type t = {
  component : string;
  cached_reads : string list;
  quorum_reads : string list;
  writes : string list;
  destructive : string list;
  edge_triggered : string list;
  restartable : bool;
}

(* The footprints mirror lib/kube component by component. Keep the
   cached_reads lists in the same order as Planner.targets_of_config's
   watched_prefixes: the consistency test compares them as lists so the
   static and dynamic views cannot drift even in ordering. *)
let of_config (config : Kube.Cluster.config) =
  let open Kube in
  let kubelets =
    List.init config.Cluster.nodes (fun i ->
        {
          component = Printf.sprintf "kubelet-%d" (i + 1);
          cached_reads = [ Resource.pods_prefix ];
          (* kubelet_monotonic rejects stale re-lists; it adds no quorum
             read, so the staleness hazard stays live while the
             time-travel one closes. *)
          quorum_reads = [];
          writes = [ Resource.pods_prefix ];
          destructive = [ Resource.pods_prefix ] (* finalize: delete marked pods *);
          (* on_event is the only driver; no periodic re-list repairs a
             dropped event (the lint's edge-trigger:kubelet.ml finding) *)
          edge_triggered = [ Resource.pods_prefix ];
          restartable = true;
        })
  in
  let scheduler =
    if config.Cluster.with_scheduler then
      [
        {
          component = "scheduler";
          cached_reads = [ Resource.pods_prefix; Resource.nodes_prefix ];
          quorum_reads =
            (if config.Cluster.scheduler_fixed then [ Resource.nodes_prefix ] else []);
          writes = [ Resource.pods_prefix ] (* bindings *);
          destructive = [];
          (* node_cache lives off on_node_event alone; scheduling_pass
             re-lists pods/ but never nodes/ (edge-trigger:scheduler.ml) *)
          edge_triggered = [ Resource.nodes_prefix ];
          restartable = true;
        };
      ]
    else []
  in
  let volume =
    if config.Cluster.with_volume_controller then
      [
        {
          component = "volumectl";
          cached_reads = [ Resource.pods_prefix; Resource.pvcs_prefix ];
          quorum_reads = [];
          writes = [ Resource.pvcs_prefix ];
          destructive = [ Resource.pvcs_prefix ] (* release: delete claims *);
          edge_triggered = [];
          restartable = true;
        };
      ]
    else []
  in
  let operator =
    if config.Cluster.with_operator then
      [
        {
          component = "cassop";
          cached_reads = [ Resource.cassdcs_prefix; Resource.pods_prefix; Resource.pvcs_prefix ];
          quorum_reads =
            (if config.Cluster.operator_fixed then [ Resource.pods_prefix ] else []);
          writes = [ Resource.pods_prefix; Resource.pvcs_prefix ];
          destructive =
            [ Resource.pods_prefix; Resource.pvcs_prefix ]
            (* decommission marks members; orphan GC deletes claims *);
          edge_triggered = [];
          restartable = true;
        };
      ]
    else []
  in
  let replicaset =
    if config.Cluster.with_replicaset then
      [
        {
          component = "rsctl";
          cached_reads = [ Resource.rsets_prefix; Resource.pods_prefix ];
          quorum_reads = [];
          writes = [ Resource.pods_prefix ];
          destructive = [ Resource.pods_prefix ] (* scale-down deletion marks *);
          edge_triggered = [];
          restartable = true;
        };
      ]
    else []
  in
  let deployment =
    if config.Cluster.with_deployment then
      [
        {
          component = "depctl";
          cached_reads =
            [ Resource.deployments_prefix; Resource.rsets_prefix; Resource.pods_prefix ];
          quorum_reads =
            (if config.Cluster.deployment_fixed then [ Resource.pods_prefix ] else []);
          writes = [ Resource.rsets_prefix ];
          destructive = [ Resource.rsets_prefix ] (* prunes superseded ReplicaSets *);
          edge_triggered = [];
          restartable = true;
        };
      ]
    else []
  in
  let node_controller =
    if config.Cluster.with_node_controller then
      [
        {
          component = "nodectl";
          cached_reads = [ Resource.nodes_prefix; Resource.pods_prefix ];
          quorum_reads =
            (if config.Cluster.node_controller_fixed then [ Resource.nodes_prefix ] else []);
          writes = [ Resource.pods_prefix ];
          destructive = [ Resource.pods_prefix ] (* fails pods of vanished nodes *);
          edge_triggered = [];
          restartable = true;
        };
      ]
    else []
  in
  let all =
    kubelets @ scheduler @ volume @ operator @ replicaset @ deployment @ node_controller
  in
  (* Under a replicated store whose reads are routed to a named follower
     or spread across replicas, the apiserver's quorum forwards are
     served by whatever replica the router picks — possibly one frozen
     behind the leader. Statically those are cached reads, not quorum
     reads: the guard credit a fixed-mode list_quorum earns evaporates,
     which is exactly why the REP family reproduces the operator bugs
     with no consumer-side fault. Only [Leader] routing keeps them
     linearizable. The cached_reads lists are unchanged (every quorum
     prefix is already watched), so Planner ordering is preserved. *)
  let stale_routed =
    match config.Cluster.replication with
    | Some { Etcd.read = Replicated.Kv.Follower _ | Replicated.Kv.Spread; _ } -> true
    | Some { Etcd.read = Replicated.Kv.Leader; _ } | None -> false
  in
  if not stale_routed then all
  else
    List.map
      (fun fp ->
        let demoted =
          List.filter (fun p -> not (List.mem p fp.cached_reads)) fp.quorum_reads
        in
        { fp with cached_reads = fp.cached_reads @ demoted; quorum_reads = [] })
      all

(* The HBase substrate, mirrored from lib/hbase the same way: the master
   reads the registry and every region assignment through the follower
   (a cached view unless sync_before_cas forces a catch-up pull) and
   CASes assignments — a destructive write, since a wrong one strands or
   double-assigns a region. Region servers live off one-shot watch
   notifications: edge-triggered unless rearm_then_read closes the
   fire-to-rearm gap. Keep cached_reads ordered like
   Planner.targets_hbase's watched_prefixes. *)
let of_hbase_config (config : Hbaselike.Cluster.config) =
  let master =
    {
      component = "master-1";
      cached_reads = [ "rs/registry"; "region/" ];
      quorum_reads =
        (if config.Hbaselike.Cluster.sync_before_cas then [ "rs/registry"; "region/" ] else []);
      writes = [ "region/"; "rs/registry" ];
      destructive = [ "region/" ];
      edge_triggered = [];
      restartable = true;
    }
  in
  let servers =
    List.init config.Hbaselike.Cluster.servers (fun i ->
        {
          component = Hbaselike.Cluster.server_name i;
          cached_reads = [ "region/" ];
          quorum_reads = [];
          writes = [];
          destructive = [];
          edge_triggered =
            (if config.Hbaselike.Cluster.rearm_then_read then [] else [ "region/" ]);
          restartable = true;
        })
  in
  master :: servers

let find footprints component =
  List.find_opt (fun fp -> String.equal fp.component component) footprints

let to_json fp =
  let strings l = Dsim.Json.List (List.map (fun s -> Dsim.Json.String s) l) in
  Dsim.Json.Obj
    [
      ("component", Dsim.Json.String fp.component);
      ("cached_reads", strings fp.cached_reads);
      ("quorum_reads", strings fp.quorum_reads);
      ("writes", strings fp.writes);
      ("destructive", strings fp.destructive);
      ("edge_triggered", strings fp.edge_triggered);
      ("restartable", Dsim.Json.Bool fp.restartable);
    ]
