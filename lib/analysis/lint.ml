open Parsetree

type finding = {
  rule : string;
  pattern : Sieve.Coverage.pattern;
  file : string;
  func : string;
  line : int;
  message : string;
}

let key f = Printf.sprintf "%s:%s:%s" f.rule f.file f.func

(* ------------------------------------------------------------------ *)
(* Name classification                                                 *)

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1)) in
  nn = 0 || go 0

let destructive_words = [ "delete"; "decommission"; "evict"; "drain"; "purge" ]

let is_guard_name name = contains_sub name "if_unchanged" || contains_sub name "if_absent"

let is_destructive_name name =
  (not (is_guard_name name))
  && List.exists (contains_sub (String.lowercase_ascii name)) destructive_words

(* Identifiers that smell like a revision: "rev", "revision",
   "resource_version", "prev"/"previous" all match. *)
let is_rev_name name =
  let n = String.lowercase_ascii name in
  contains_sub n "rev" || contains_sub n "version"

let fn_path (e : expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Longident.flatten txt | _ -> []

let last_of path = match List.rev path with [] -> "" | x :: _ -> x

let is_cached_read path =
  match List.rev path with
  | name :: parent :: _ ->
      (String.equal parent "Informer" && List.mem name [ "store"; "get" ])
      || String.equal parent "State"
         && List.mem name [ "find"; "get"; "mem"; "keys_with_prefix"; "fold"; "iter" ]
  | _ -> false

let is_quorum_name name = List.mem name [ "get_quorum"; "list_quorum" ]

(* Resync-ish verbs an [~on_restart] handler may call. *)
let resync_names = [ "start"; "watch"; "watch_from"; "relist"; "resync"; "list_from"; "sync_from" ]

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* ------------------------------------------------------------------ *)
(* Per-function summaries and module-level sites                       *)

type info = {
  name : string;
  line : int;
  body : expression;
  mutable cache_read : bool;  (* reads an informer store / State view *)
  mutable unguarded_destr : bool;  (* direct destructive write, unguarded *)
  mutable calls : (string * bool) list;  (* local callee, call-site guarded *)
  mutable scans : string list;  (* prefix tokens listed/folded over *)
  mutable reads_star : bool;
  mutable unguarded_star : bool;
}

type handler = Hname of string | Hinline of expression | Habsent

type informer_site = { i_line : int; i_enclosing : string; i_prefix : string option; i_handler : handler }
type restart_site = { r_enclosing : string; r_handler : handler }

type ctx = { mutable quorum : bool; mutable guard : bool; mutable every : bool }

type acc = {
  locals : (string, unit) Hashtbl.t;
  mutable informers : informer_site list;
  mutable restarts : restart_site list;
  mutable periodic_roots : string list;  (* local fns called from Engine.every callbacks *)
  mutable periodic_scans : string list;  (* prefixes scanned inline in those callbacks *)
}

let token_of_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (last_of (Longident.flatten txt))
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

let labelled_arg label args =
  List.find_map
    (fun (l, e) ->
      match l with
      | Asttypes.Labelled l when String.equal l label -> Some e
      | Asttypes.Optional l when String.equal l label -> Some e
      | _ -> None)
    args

let handler_of_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Hname (last_of (Longident.flatten txt))
  | Pexp_apply (fn, _) -> (
      match fn_path fn with [] -> Habsent | path -> Hname (last_of path))
  | Pexp_fun (_, _, _, body) -> Hinline body
  | Pexp_function _ -> Hinline e
  | _ -> Habsent

(* Walk one function body, filling [info] and the module-level sites.
   Guard/quorum/periodic context is tracked through application
   arguments: the callback passed to [get_quorum] runs after a
   linearizable read, the payload of a [*_if_unchanged] transaction is
   revision-preconditioned, the closure given to [Engine.every] is
   periodic. *)
let walk acc info body =
  let ctx = { quorum = false; guard = false; every = false } in
  let guarded () = ctx.quorum || ctx.guard in
  let add_scan tok =
    if ctx.every then begin
      if not (List.mem tok acc.periodic_scans) then acc.periodic_scans <- tok :: acc.periodic_scans
    end
    else if not (List.mem tok info.scans) then info.scans <- tok :: info.scans
  in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    match e.pexp_desc with
    | Pexp_apply (fn, args) ->
        let path = fn_path fn in
        let name = last_of path in
        let local = List.length path = 1 && Hashtbl.mem acc.locals name in
        if is_cached_read path then info.cache_read <- true;
        (if List.mem name [ "keys_with_prefix"; "list_quorum" ] then
           match Option.bind (labelled_arg "prefix" args) token_of_expr with
           | Some tok -> add_scan tok
           | None -> ());
        if String.equal name "create" && List.mem "Informer" path then
          acc.informers <-
            {
              i_line = line_of e.pexp_loc;
              i_enclosing = info.name;
              i_prefix = Option.bind (labelled_arg "prefix" args) token_of_expr;
              i_handler =
                (match labelled_arg "on_event" args with
                | Some h -> handler_of_expr h
                | None -> Habsent);
            }
            :: acc.informers;
        (match labelled_arg "on_restart" args with
        | Some h -> acc.restarts <- { r_enclosing = info.name; r_handler = handler_of_expr h } :: acc.restarts
        | None -> ());
        let guard_call = is_guard_name name || Option.is_some (labelled_arg "expected_mod_rev" args) in
        if local then begin
          info.calls <- (name, guarded ()) :: info.calls;
          if ctx.every && not (List.mem name acc.periodic_roots) then
            acc.periodic_roots <- name :: acc.periodic_roots
        end
        else if (not guard_call) && is_destructive_name name && not (guarded ()) then
          info.unguarded_destr <- true;
        it.expr it fn;
        let saved = (ctx.quorum, ctx.guard, ctx.every) in
        if is_quorum_name name then ctx.quorum <- true;
        if guard_call then ctx.guard <- true;
        if String.equal name "every" && List.mem "Engine" path then ctx.every <- true;
        List.iter (fun (_, a) -> it.expr it a) args;
        let q, g, ev = saved in
        ctx.quorum <- q;
        ctx.guard <- g;
        ctx.every <- ev
    | Pexp_record (fields, _) ->
        (if not (guarded ()) then
           List.iter
             (fun ((lid : Longident.t Asttypes.loc), (v : expression)) ->
               match (last_of (Longident.flatten lid.Asttypes.txt), v.pexp_desc) with
               | "deletion_timestamp", Pexp_construct ({ txt = Longident.Lident "Some"; _ }, _) ->
                   info.unguarded_destr <- true
               | "phase", Pexp_construct ({ txt; _ }, _)
                 when String.equal (last_of (Longident.flatten txt)) "Failed" ->
                   info.unguarded_destr <- true
               | _ -> ())
             fields);
        Ast_iterator.default_iterator.expr it e
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body

(* ------------------------------------------------------------------ *)
(* Rule evaluation                                                     *)

let fixpoint infos =
  let find name = List.find_opt (fun i -> String.equal i.name name) infos in
  List.iter
    (fun i ->
      i.reads_star <- i.cache_read;
      i.unguarded_star <- i.unguarded_destr)
    infos;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        List.iter
          (fun (callee, call_guarded) ->
            match find callee with
            | None -> ()
            | Some c ->
                if c.reads_star && not i.reads_star then begin
                  i.reads_star <- true;
                  changed := true
                end;
                if (not call_guarded) && c.unguarded_star && not i.unguarded_star then begin
                  i.unguarded_star <- true;
                  changed := true
                end)
          i.calls)
      infos
  done

let stale_write_findings ~file infos =
  let combined i = i.reads_star && i.unguarded_star in
  List.filter_map
    (fun i ->
      if
        combined i
        && not
             (List.exists
                (fun (callee, _) ->
                  match List.find_opt (fun c -> String.equal c.name callee) infos with
                  | Some c -> combined c
                  | None -> false)
                i.calls)
      then
        Some
          {
            rule = "stale-write";
            pattern = `Staleness;
            file;
            func = i.name;
            line = i.line;
            message =
              "cached informer view reaches a destructive write with no quorum re-read or \
               revision precondition on the path (cassandra-operator-400/402 shape)";
          }
      else None)
    infos

(* Prefix tokens re-listed by anything reachable from a periodic task. *)
let periodic_scanned acc infos =
  let find name = List.find_opt (fun i -> String.equal i.name name) infos in
  let visited = Hashtbl.create 16 in
  let scanned = ref acc.periodic_scans in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      match find name with
      | None -> ()
      | Some i ->
          List.iter (fun tok -> if not (List.mem tok !scanned) then scanned := tok :: !scanned) i.scans;
          List.iter (fun (callee, _) -> visit callee) i.calls
    end
  in
  List.iter visit acc.periodic_roots;
  !scanned

let matches_event_constructors body =
  let found = ref false in
  let pat (it : Ast_iterator.iterator) (p : pattern) =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _)
      when List.mem (last_of (Longident.flatten txt)) [ "Create"; "Update"; "Delete"; "Put" ] ->
        found := true
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.expr it body;
  !found

let resolve_handler infos = function
  | Hinline body -> Some ("", body)
  | Hname n -> (
      match List.find_opt (fun i -> String.equal i.name n) infos with
      | Some i -> Some (n, i.body)
      | None -> None)
  | Habsent -> None

let edge_trigger_findings ~file acc infos =
  let scanned = periodic_scanned acc infos in
  List.filter_map
    (fun site ->
      match (site.i_prefix, resolve_handler infos site.i_handler) with
      | Some prefix, Some (hname, body)
        when matches_event_constructors body && not (List.mem prefix scanned) ->
          Some
            {
              rule = "edge-trigger";
              pattern = `Obs_gap;
              file;
              func = (if String.equal hname "" then site.i_enclosing else hname);
              line = site.i_line;
              message =
                Printf.sprintf
                  "watch handler matches specific event constructors but nothing periodically \
                   re-lists %s; one dropped event desynchronizes the derived state forever \
                   (Kubernetes-56261 shape)"
                  prefix;
            }
      | _ -> None)
    (List.rev acc.informers)

let stale_resync_findings ~file acc infos =
  let rev_tainted_expr e =
    let found = ref false in
    let expr (it : Ast_iterator.iterator) (x : expression) =
      (match x.pexp_desc with
      | Pexp_ident { txt; _ } when List.exists is_rev_name (Longident.flatten txt) -> found := true
      | Pexp_field (_, { txt; _ }) when is_rev_name (last_of (Longident.flatten txt)) ->
          found := true
      | _ -> ());
      Ast_iterator.default_iterator.expr it x
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.expr it e;
    !found
  in
  let findings = ref [] in
  List.iter
    (fun site ->
      match resolve_handler infos site.r_handler with
      | None -> ()
      | Some (hname, body) ->
          let func = if String.equal hname "" then site.r_enclosing else hname in
          let expr (it : Ast_iterator.iterator) (e : expression) =
            (match e.pexp_desc with
            | Pexp_apply (fn, args) when List.mem (last_of (fn_path fn)) resync_names ->
                let tainted (l, a) =
                  (match l with
                  | Asttypes.Labelled l | Asttypes.Optional l -> is_rev_name l
                  | Asttypes.Nolabel -> false)
                  || rev_tainted_expr a
                in
                if List.exists tainted args then
                  findings :=
                    {
                      rule = "stale-resync";
                      pattern = `Time_travel;
                      file;
                      func;
                      line = line_of e.pexp_loc;
                      message =
                        "post-restart resync reuses a pre-crash resource version; the view is \
                         pinned to the old frontier instead of rediscovering the current one \
                         (Kubernetes-59848 shape)";
                    }
                    :: !findings
            | _ -> ());
            Ast_iterator.default_iterator.expr it e
          in
          let it = { Ast_iterator.default_iterator with expr } in
          it.expr it body)
    (List.rev acc.restarts);
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let analyze ~file (str : structure) =
  let acc =
    {
      locals = Hashtbl.create 64;
      informers = [];
      restarts = [];
      periodic_roots = [];
      periodic_scans = [];
    }
  in
  let bindings =
    List.concat_map
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.filter_map
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } -> Some (txt, line_of vb.pvb_loc, vb.pvb_expr)
                | _ -> None)
              vbs
        | _ -> [])
      str
  in
  List.iter (fun (name, _, _) -> Hashtbl.replace acc.locals name ()) bindings;
  let infos =
    List.map
      (fun (name, line, body) ->
        {
          name;
          line;
          body;
          cache_read = false;
          unguarded_destr = false;
          calls = [];
          scans = [];
          reads_star = false;
          unguarded_star = false;
        })
      bindings
  in
  List.iter (fun i -> walk acc i i.body) infos;
  fixpoint infos;
  stale_write_findings ~file infos
  @ edge_trigger_findings ~file acc infos
  @ stale_resync_findings ~file acc infos

let file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | src -> (
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf path;
      match Parse.implementation lexbuf with
      | exception exn -> Error (Printf.sprintf "%s: parse error (%s)" path (Printexc.to_string exn))
      | str -> Ok (analyze ~file:(Filename.basename path) str))

let files paths =
  let findings, errors =
    List.fold_left
      (fun (fs, es) path ->
        match file path with Ok f -> (f :: fs, es) | Error e -> (fs, e :: es))
      ([], []) paths
  in
  ( List.sort
      (fun a b ->
        match String.compare a.file b.file with 0 -> compare a.line b.line | c -> c)
      (List.concat (List.rev findings)),
    List.rev errors )

let load_baseline path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let keys = ref [] in
    (try
       while true do
         let line = input_line ic in
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if not (String.equal line "") then keys := line :: !keys
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !keys
  end

let suppress ~baseline findings =
  List.partition (fun f -> not (List.mem (key f) baseline)) findings

let to_json f =
  Dsim.Json.Obj
    [
      ("rule", Dsim.Json.String f.rule);
      ("pattern", Dsim.Json.String (Sieve.Coverage.pattern_to_string f.pattern));
      ("file", Dsim.Json.String f.file);
      ("func", Dsim.Json.String f.func);
      ("line", Dsim.Json.Int f.line);
      ("message", Dsim.Json.String f.message);
      ("key", Dsim.Json.String (key f));
    ]
