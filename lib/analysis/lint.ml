(* The lint driver: turns the stale-taint engine's evidence paths and
   structural sites into findings.

   Dataflow rules (from {!Taint.result.complete} / [reproposals]):

   - stale-write            cached view -> destructive write, unguarded
   - follower-read-then-write  replica/follower read -> proposal or
                            leader write, unguarded
   - stale-region-assign    follower read -> Zk CAS on a region key
                            whose [~expected_mod_rev] lives in the
                            follower's revision domain (HBASE-3136)
   - retry-no-dedup         fresh proposal issued from an error branch
                            of another proposal's continuation, with no
                            proposal-id dedup or revision precondition

   Shape rules (from the sites the same walk collects):

   - edge-trigger           watch handler matches event constructors,
                            nothing periodically re-lists the prefix
   - zk-one-shot-watch      ZooKeeper watch handler that neither
                            re-registers the watch nor re-reads the key
                            (one-shot semantics: edge-trigger dialect)
   - stale-resync           [~on_restart] handler resumes from a
                            remembered pre-crash revision

   Every finding carries its evidence path; [sieve lint --explain]
   renders it and [Hazard.of_lint] scores per path. *)

open Parsetree

type finding = {
  rule : string;
  pattern : Sieve.Coverage.pattern;
  file : string;
  func : string;
  line : int;
  message : string;
  path : Taint.path;
}

(* Baseline keys are (file, pattern, function): stable across rule
   renames and message edits. The old "rule:file:func" form is still
   accepted by {!suppress} so existing baselines keep working until the
   next [--save-baseline]. *)
let key f =
  Printf.sprintf "%s:%s:%s" f.file (Sieve.Coverage.pattern_to_string f.pattern) f.func

let legacy_key f = Printf.sprintf "%s:%s:%s" f.rule f.file f.func

let explain f = Taint.render ~file:f.file f.path

let explain_lines f = String.split_on_char '\n' (explain f)

(* ------------------------------------------------------------------ *)
(* Dataflow findings                                                   *)

let rule_of_path (p : Taint.path) =
  match (p.Taint.sink_class, p.Taint.kind) with
  | Taint.Reproposal, _ -> ("retry-no-dedup", `Staleness)
  | Taint.Region_assign, _ -> ("stale-region-assign", `Staleness)
  | _, Taint.Cache -> ("stale-write", `Staleness)
  | _, (Taint.Kv_replica | Taint.Zk_follower) -> ("follower-read-then-write", `Staleness)

let message_of_rule = function
  | "stale-write" ->
      "cached informer view reaches a destructive write with no quorum re-read or revision \
       precondition on the path (cassandra-operator-400/402 shape)"
  | "follower-read-then-write" ->
      "data read from a lagging replica reaches a write/proposal with no leader re-read or \
       revision-compare precondition (follower-read-then-write shape)"
  | "stale-region-assign" ->
      "region reassignment decided from the follower's view; the CAS revision comes from the \
       follower's own numbering domain, so it cannot guard the leader write (HBASE-3136 shape)"
  | "retry-no-dedup" ->
      "a failed proposal is retried as a fresh proposal: without proposal-id dedup the original \
       may also have applied, doubling the effect (Replicated.Kv pending discipline)"
  | _ -> ""

let dataflow_findings ~file (r : Taint.result) =
  let mk (s : Taint.summary) (p : Taint.path) =
    let rule, pattern = rule_of_path p in
    {
      rule;
      pattern;
      file;
      func = s.Taint.fn_name;
      line = p.Taint.sink.Taint.line;
      message = message_of_rule rule;
      path = p;
    }
  in
  List.map (fun (s, p) -> mk s p) r.Taint.complete
  @ List.map (fun (s, p) -> mk s p) r.Taint.reproposals

(* ------------------------------------------------------------------ *)
(* Shape findings                                                      *)

let resolve_handler (r : Taint.result) = function
  | Taint.Hinline body -> Some ("", body)
  | Taint.Hname n -> (
      match List.find_opt (fun (s : Taint.summary) -> String.equal s.Taint.fn_name n) r.Taint.funcs with
      | Some s -> Some (n, s.Taint.fn_body)
      | None -> None)
  | Taint.Habsent -> None

let matches_event_constructors body =
  let found = ref false in
  let pat (it : Ast_iterator.iterator) (p : pattern) =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _)
      when List.mem (Taint.last_of (Longident.flatten txt)) [ "Create"; "Update"; "Delete"; "Put" ]
      ->
        found := true
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.expr it body;
  !found

let edge_trigger_findings ~file (r : Taint.result) =
  List.filter_map
    (fun (site : Taint.informer_site) ->
      match (site.Taint.i_prefix, resolve_handler r site.Taint.i_handler) with
      | Some prefix, Some (hname, body)
        when matches_event_constructors body && not (List.mem prefix r.Taint.periodic_scanned) ->
          let func = if String.equal hname "" then site.Taint.i_enclosing else hname in
          Some
            {
              rule = "edge-trigger";
              pattern = `Obs_gap;
              file;
              func;
              line = site.Taint.i_line;
              message =
                Printf.sprintf
                  "watch handler matches specific event constructors but nothing periodically \
                   re-lists %s; one dropped event desynchronizes the derived state forever \
                   (Kubernetes-56261 shape)"
                  prefix;
              path =
                {
                  Taint.kind = Taint.Cache;
                  source =
                    { Taint.line = site.Taint.i_line; what = "Informer.create with ~on_event" };
                  steps =
                    [
                      {
                        Taint.line = site.Taint.i_line;
                        what = Printf.sprintf "handler %s matches Create/Update/Delete" func;
                      };
                    ];
                  sink =
                    {
                      Taint.line = site.Taint.i_line;
                      what = "derived state updated only on event edges";
                    };
                  sink_class = Taint.Destructive;
                  missing_guard =
                    Printf.sprintf "periodic re-list of %s reachable from Engine.every" prefix;
                };
            }
      | _ -> None)
    r.Taint.informers

(* ZooKeeper watches are one-shot: a handler that neither re-registers
   the watch nor re-reads the key goes blind after the first fire. *)
let zk_watch_findings ~file (r : Taint.result) =
  let body_has pred body =
    let found = ref false in
    let expr (it : Ast_iterator.iterator) (e : expression) =
      (match e.pexp_desc with
      | Pexp_apply (fn, _) -> if pred (Taint.fn_path fn) then found := true
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.expr it body;
    !found
  in
  List.filter_map
    (fun (site : Taint.watch_site) ->
      match resolve_handler r site.Taint.w_handler with
      | None -> None
      | Some (hname, body) ->
          let func = if String.equal hname "" then site.Taint.w_enclosing else hname in
          let reregisters = body_has Taint.is_zk_watch body in
          let rereads =
            body_has Taint.is_zk_read body
            || body_has (fun p -> List.mem (Taint.last_of p) [ "get_quorum"; "list_quorum" ]) body
          in
          if reregisters && rereads then None
          else
            let missing =
              match (reregisters, rereads) with
              | false, false -> "re-register the watch and re-read the key"
              | false, true -> "re-register the watch (one fire consumed it)"
              | true, false -> "re-read the key (events between fire and re-register are lost)"
              | true, true -> assert false
            in
            Some
              {
                rule = "zk-one-shot-watch";
                pattern = `Obs_gap;
                file;
                func;
                line = site.Taint.w_line;
                message =
                  Printf.sprintf
                    "ZooKeeper watches are one-shot: the handler must %s, or every event after \
                     the first fire is silently missed (edge-trigger dialect)"
                    missing;
                path =
                  {
                    Taint.kind = Taint.Zk_follower;
                    source =
                      {
                        Taint.line = site.Taint.w_line;
                        what =
                          (match site.Taint.w_key with
                          | Some k -> Printf.sprintf "Zk watch registered on %s" k
                          | None -> "Zk watch registered");
                      };
                    steps =
                      [
                        {
                          Taint.line = site.Taint.w_line;
                          what = Printf.sprintf "handler %s fires once" func;
                        };
                      ];
                    sink =
                      { Taint.line = site.Taint.w_line; what = "watch not re-armed / key not re-read" };
                    sink_class = Taint.Destructive;
                    missing_guard = missing ^ " inside the handler";
                  };
              })
    r.Taint.watches

let stale_resync_findings ~file (r : Taint.result) =
  let rev_tainted_expr e =
    let found = ref false in
    let expr (it : Ast_iterator.iterator) (x : expression) =
      (match x.pexp_desc with
      | Pexp_ident { txt; _ } when List.exists Taint.is_rev_name (Longident.flatten txt) ->
          found := true
      | Pexp_field (_, { txt; _ }) when Taint.is_rev_name (Taint.last_of (Longident.flatten txt))
        ->
          found := true
      | _ -> ());
      Ast_iterator.default_iterator.expr it x
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.expr it e;
    !found
  in
  let findings = ref [] in
  List.iter
    (fun (site : Taint.restart_site) ->
      match resolve_handler r site.Taint.r_handler with
      | None -> ()
      | Some (hname, body) ->
          let func = if String.equal hname "" then site.Taint.r_enclosing else hname in
          let expr (it : Ast_iterator.iterator) (e : expression) =
            (match e.pexp_desc with
            | Pexp_apply (fn, args)
              when List.mem (Taint.last_of (Taint.fn_path fn)) Taint.resync_names ->
                let tainted (l, a) =
                  (match l with
                  | Asttypes.Labelled l | Asttypes.Optional l -> Taint.is_rev_name l
                  | Asttypes.Nolabel -> false)
                  || rev_tainted_expr a
                in
                if List.exists tainted args then begin
                  let line = Taint.line_of e.pexp_loc in
                  findings :=
                    {
                      rule = "stale-resync";
                      pattern = `Time_travel;
                      file;
                      func;
                      line;
                      message =
                        "post-restart resync reuses a pre-crash resource version; the view is \
                         pinned to the old frontier instead of rediscovering the current one \
                         (Kubernetes-59848 shape)";
                      path =
                        {
                          Taint.kind = Taint.Cache;
                          source = { Taint.line; what = "pre-crash revision remembered across restart" };
                          steps = [];
                          sink =
                            {
                              Taint.line;
                              what =
                                Printf.sprintf "resync %s pinned to the remembered revision"
                                  (Taint.last_of (Taint.fn_path fn));
                            };
                          sink_class = Taint.Destructive;
                          missing_guard =
                            "generation reset: restart must re-list fresh instead of resuming \
                             from a remembered revision";
                        };
                    }
                    :: !findings
                end
            | _ -> ());
            Ast_iterator.default_iterator.expr it e
          in
          let it = { Ast_iterator.default_iterator with expr } in
          it.expr it body)
    r.Taint.restarts;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let analyze ~file (str : structure) =
  let r = Taint.analyze str in
  dataflow_findings ~file r
  @ edge_trigger_findings ~file r
  @ zk_watch_findings ~file r
  @ stale_resync_findings ~file r

let file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | src -> (
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf path;
      match Parse.implementation lexbuf with
      | exception exn -> Error (Printf.sprintf "%s: parse error (%s)" path (Printexc.to_string exn))
      | str -> Ok (analyze ~file:(Filename.basename path) str))

let files paths =
  let findings, errors =
    List.fold_left
      (fun (fs, es) path ->
        match file path with Ok f -> (f :: fs, es) | Error e -> (fs, e :: es))
      ([], []) paths
  in
  ( List.sort
      (fun a b -> match String.compare a.file b.file with 0 -> compare a.line b.line | c -> c)
      (List.concat (List.rev findings)),
    List.rev errors )

let load_baseline path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let keys = ref [] in
    (try
       while true do
         let line = input_line ic in
         let line =
           match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line
         in
         let line = String.trim line in
         if not (String.equal line "") then keys := line :: !keys
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !keys
  end

let suppress ~baseline findings =
  List.partition
    (fun f -> not (List.mem (key f) baseline || List.mem (legacy_key f) baseline))
    findings

let save_baseline ~path findings =
  let oc = open_out path in
  output_string oc
    "# sieve lint baseline — one key per line, format file:pattern:func.\n\
     # Regenerate with: sieve lint --save-baseline (accepts the legacy\n\
     # rule:file:func format on load and rewrites it here).\n";
  List.iter
    (fun k -> output_string oc (k ^ "\n"))
    (List.sort_uniq String.compare (List.map key findings));
  close_out oc

let to_json f =
  Dsim.Json.Obj
    [
      ("rule", Dsim.Json.String f.rule);
      ("pattern", Dsim.Json.String (Sieve.Coverage.pattern_to_string f.pattern));
      ("file", Dsim.Json.String f.file);
      ("func", Dsim.Json.String f.func);
      ("line", Dsim.Json.Int f.line);
      ("message", Dsim.Json.String f.message);
      ("key", Dsim.Json.String (key f));
      ("path", Taint.path_to_json f.path);
    ]
