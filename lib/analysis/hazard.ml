type t = {
  pattern : Sieve.Coverage.pattern;
  component : string;
  prefix : string;
  severity : int;
  reason : string;
}

let mem_prefix p l = List.exists (String.equal p) l

let of_footprints (footprints : Footprint.t list) =
  let hazards = ref [] in
  let emit pattern component prefix severity reason =
    hazards := { pattern; component; prefix; severity; reason } :: !hazards
  in
  let writers_of p =
    List.filter_map
      (fun (fp : Footprint.t) ->
        if mem_prefix p fp.Footprint.writes then Some fp.Footprint.component else None)
      footprints
  in
  let watched_somewhere p =
    List.exists (fun (fp : Footprint.t) -> mem_prefix p fp.Footprint.cached_reads) footprints
  in
  List.iter
    (fun (fp : Footprint.t) ->
      let c = fp.Footprint.component in
      let guarded p = mem_prefix p fp.Footprint.quorum_reads in
      let acts = fp.Footprint.writes <> [] in
      List.iter
        (fun p ->
          (* Cached read feeding an unguarded destructive write: the
             op-400/402 shape, the sharpest hazard in the graph. *)
          if
            mem_prefix p fp.Footprint.destructive
            && mem_prefix p fp.Footprint.cached_reads
            && not (guarded p)
          then
            emit `Staleness c p 3
              (Printf.sprintf "cached read of %s feeds %s's destructive write, no quorum guard"
                 p c);
          (* Write/write conflicts on a prefix the component watches:
             each writer acts on a view the other writers mutate. *)
          if mem_prefix p fp.Footprint.writes && mem_prefix p fp.Footprint.cached_reads then begin
            match List.filter (fun w -> not (String.equal w c)) (writers_of p) with
            | [] -> ()
            | others ->
                emit `Staleness c p 2
                  (Printf.sprintf "write/write conflict on %s with %s" p
                     (String.concat ", " others))
          end;
          (* Written-but-unwatched: effects no informer can observe. *)
          if mem_prefix p fp.Footprint.writes && not (watched_somewhere p) then
            emit `Obs_gap c p 1 (Printf.sprintf "%s writes %s but no component watches it" c p))
        (List.sort_uniq String.compare
           (fp.Footprint.writes @ fp.Footprint.cached_reads @ fp.Footprint.destructive));
      List.iter
        (fun p ->
          if acts && not (guarded p) then begin
            (* Acting on a cached view of p: one dropped event poisons
               every later decision (56261/398 shape). Maximal when the
               view is edge-triggered (nothing ever repairs the drop) or
               when the component writes destructively — even to another
               prefix: a stale node view is what fails the pods. *)
            emit `Obs_gap c p
              (if
                 mem_prefix p fp.Footprint.edge_triggered
                 || fp.Footprint.destructive <> []
               then 3
               else 1)
              (Printf.sprintf "%s acts on its cached view of %s; a dropped event is never repaired"
                 c p);
            (* Restart + cached view: a re-list from a stale apiserver
               rewinds the inputs of its writes (59848 shape). *)
            if fp.Footprint.restartable then
              emit `Time_travel c p
                (if fp.Footprint.destructive <> [] then 2 else 1)
                (Printf.sprintf "restartable %s re-lists %s on restart; a stale source rewinds it"
                   c p)
          end)
        fp.Footprint.cached_reads)
    footprints;
  (* Dedup per (pattern, component, prefix), keeping the highest
     severity; order by severity desc then component/prefix for stable,
     readable output. *)
  let best = Hashtbl.create 64 in
  List.iter
    (fun h ->
      match Hashtbl.find_opt best (h.pattern, h.component, h.prefix) with
      | Some kept when kept.severity >= h.severity -> ()
      | _ -> Hashtbl.replace best (h.pattern, h.component, h.prefix) h)
    (List.rev !hazards);
  Hashtbl.fold (fun _ h acc -> h :: acc) best []
  |> List.sort (fun a b ->
         match compare b.severity a.severity with
         | 0 -> compare (a.component, a.prefix, a.pattern) (b.component, b.prefix, b.pattern)
         | c -> c)

let of_config config = of_footprints (Footprint.of_config config)

(* Lint findings join the graph as per-path hazards: one hazard per
   evidence path, not per function, so a function with two tainted
   routes to distinct sinks weighs twice. Additive only — of_footprints
   / of_config are untouched, and nothing on the execution path calls
   this (hunt journals stay byte-identical). Components are the runtime
   names where the file has one, so lint hazards land in the same
   namespace the planner and scorer use. *)
let component_of_file file =
  match Filename.basename file with
  | "deployment.ml" -> "depctl"
  | "replicaset.ml" -> "rsctl"
  | "node_controller.ml" -> "nodectl"
  | "volume_controller.ml" -> "volumectl"
  | "cassandra_operator.ml" -> "cassop"
  | "scheduler.ml" -> "scheduler"
  | "kubelet.ml" -> "kubelet"
  | base -> Filename.remove_extension base

let of_lint (findings : Lint.finding list) =
  List.map
    (fun (f : Lint.finding) ->
      let p = f.Lint.path in
      let severity =
        match p.Taint.sink_class with
        | Taint.Destructive | Taint.Record_destroy | Taint.Region_assign -> 3
        | Taint.Zk_write | Taint.Proposal | Taint.Reproposal -> 2
      in
      {
        pattern = f.Lint.pattern;
        component = component_of_file f.Lint.file;
        (* No key-space claim: the path is about a code route, not a
           prefix, so it matches any key of the component. *)
        prefix = "";
        severity;
        reason =
          Printf.sprintf "%s: %s %s (line %d) reaches %s (line %d); missing %s"
            f.Lint.rule
            (Taint.kind_to_string p.Taint.kind)
            p.Taint.source.Taint.what p.Taint.source.Taint.line
            p.Taint.sink.Taint.what p.Taint.sink.Taint.line p.Taint.missing_guard;
      })
    findings

let score hazards ~component ~key ~pattern =
  List.fold_left
    (fun acc h ->
      if
        h.pattern = pattern
        && String.equal h.component component
        && String.starts_with ~prefix:h.prefix key
      then max acc h.severity
      else acc)
    0 hazards

let boost hazards ~component ~key ~pattern = score hazards ~component ~key ~pattern

let plan_score hazards coverage (plan : Sieve.Planner.plan) =
  let cells = Sieve.Coverage.cells_of coverage plan.Sieve.Planner.strategy in
  match cells with
  | _ :: _ ->
      List.fold_left
        (fun acc (cell : Sieve.Coverage.cell) ->
          max acc
            (score hazards ~component:cell.Sieve.Coverage.component ~key:cell.Sieve.Coverage.key
               ~pattern:cell.Sieve.Coverage.pattern))
        0 cells
  | [] -> (
      (* Strategy touches no in-space cell (key filter outside the
         reference keys): fall back to its named components + pattern. *)
      match Sieve.Strategy.pattern plan.Sieve.Planner.strategy with
      | `None | `Mixed -> 0
      | (`Staleness | `Obs_gap | `Time_travel) as pattern ->
          List.fold_left
            (fun acc component ->
              List.fold_left
                (fun acc h ->
                  if h.pattern = pattern && String.equal h.component component then
                    max acc h.severity
                  else acc)
                acc hazards)
            0
            (Sieve.Strategy.components plan.Sieve.Planner.strategy))

let to_json h =
  Dsim.Json.Obj
    [
      ("pattern", Dsim.Json.String (Sieve.Coverage.pattern_to_string h.pattern));
      ("component", Dsim.Json.String h.component);
      ("prefix", Dsim.Json.String h.prefix);
      ("severity", Dsim.Json.Int h.severity);
      ("reason", Dsim.Json.String h.reason);
    ]
