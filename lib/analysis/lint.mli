(** Layer-1 static analysis: a source lint over controller code.

    The lint parses [.ml] files with the compiler's own frontend
    (compiler-libs, no type-checking) and flags the three partial-history
    anti-patterns the paper's case studies reduce to. The checks are
    interprocedural within a file: per-function summaries (reads a cached
    view / performs an unguarded destructive write / calls whom, under
    which guard) are closed under the local call graph, and a finding is
    reported at the function where the two halves first combine.

    - {b stale-write} ([`Staleness], the cassandra-operator-400/402
      shape): an informer/cached read — [Informer.store], [Informer.get],
      [History.State.find/get/mem/keys_with_prefix/fold/iter] — reaches a
      destructive write (a call whose name contains
      delete/decommission/evict/drain/purge, or a record write of
      [deletion_timestamp = Some _] / [phase = Failed]) with no quorum
      re-read ([get_quorum]/[list_quorum] callback) and no transaction
      revision precondition ([*_if_unchanged], [*_if_absent],
      [~expected_mod_rev]) anywhere on the path.
    - {b edge-trigger} ([`Obs_gap], the Kubernetes-56261 shape): a watch
      handler registered via [Informer.create ~on_event] pattern-matches
      specific event constructors (Create/Update/Delete/Put) while no
      periodic task reachable from an [Engine.every] callback re-lists
      the watched prefix — one dropped event desynchronizes the
      derived state forever.
    - {b stale-resync} ([`Time_travel], the Kubernetes-59848 shape): an
      [~on_restart] lifecycle handler restarts a sync/list/watch with an
      argument carrying a pre-crash revision (a label or identifier whose
      name contains "rev" or "version") — the resync pins the view to
      the old frontier instead of discovering the current one. *)

type finding = {
  rule : string;  (** ["stale-write"] | ["edge-trigger"] | ["stale-resync"] *)
  pattern : Sieve.Coverage.pattern;
  file : string;  (** basename of the offending file *)
  func : string;  (** top-level binding (or handler) the finding is in *)
  line : int;
  message : string;
}

val key : finding -> string
(** ["rule:file:func"] — the stable identity used by baselines. *)

val file : string -> (finding list, string) result
(** Lints one [.ml] file; [Error] describes a parse failure. *)

val files : string list -> finding list * string list
(** Lints many files: findings (sorted by file, line) and parse errors. *)

val load_baseline : string -> string list
(** Reads suppressed finding keys, one per line; [#] starts a comment,
    blank lines are ignored. A missing file is an empty baseline. *)

val suppress : baseline:string list -> finding list -> finding list * finding list
(** Splits findings into (fresh, suppressed) against baseline keys. *)

val to_json : finding -> Dsim.Json.t
