(** Layer-1 static analysis: a guard-aware stale-taint lint over
    controller code (built on {!Taint}).

    The lint parses [.ml] files with the compiler's own frontend
    (compiler-libs, no type-checking). Values derived from cached reads
    are tainted; taint propagates through bindings and interprocedurally
    via per-function summaries; destructive writes, proposals, and
    region assignments are sinks; recognized guards (quorum re-read,
    revision precondition, sync leader read, epoch seal) kill taint. A
    finding is reported at the function where the source half and the
    sink half first combine, and carries the full evidence path.

    Dataflow rules:
    - {b stale-write} ([`Staleness], cassandra-operator-400/402): a
      cached informer/[State] read reaches a destructive write with no
      guard on the path.
    - {b follower-read-then-write} ([`Staleness]): data read from a
      lagging replica ([Replicated.Kv] routed reads, [Zk.read] without
      [~sync:true]) reaches a write or proposal unguarded.
    - {b stale-region-assign} ([`Staleness], HBASE-3136): a region
      reassignment CAS whose [~expected_mod_rev] came from the ZK
      follower — the follower assigns its own revisions, so the
      precondition cannot guard the leader write.
    - {b retry-no-dedup} ([`Staleness]): an error-branch retry issues a
      fresh proposal with no proposal-id dedup or revision
      precondition; the original may also have applied.

    Shape rules (same walk, structural sites):
    - {b edge-trigger} ([`Obs_gap], Kubernetes-56261): a watch handler
      matches event constructors while nothing periodically re-lists
      the prefix.
    - {b zk-one-shot-watch} ([`Obs_gap]): a ZooKeeper watch handler
      that neither re-registers the watch nor re-reads the key.
    - {b stale-resync} ([`Time_travel], Kubernetes-59848): an
      [~on_restart] handler resumes from a remembered pre-crash
      revision. *)

type finding = {
  rule : string;
      (** ["stale-write"] | ["follower-read-then-write"] |
          ["stale-region-assign"] | ["retry-no-dedup"] |
          ["edge-trigger"] | ["zk-one-shot-watch"] | ["stale-resync"] *)
  pattern : Sieve.Coverage.pattern;
  file : string;  (** basename of the offending file *)
  func : string;  (** top-level binding (or handler) the finding is in *)
  line : int;  (** the sink (or site) line *)
  message : string;
  path : Taint.path;  (** evidence: source -> steps -> sink, missing guard *)
}

val key : finding -> string
(** ["file:pattern:func"] — the stable identity used by baselines
    (survives rule renames; coarser than the rule on purpose). *)

val legacy_key : finding -> string
(** The pre-taint ["rule:file:func"] form, still accepted on load. *)

val explain : finding -> string
(** The rendered evidence path ([sieve lint --explain]). *)

val file : string -> (finding list, string) result
(** Lints one [.ml] file; [Error] describes a parse failure. *)

val files : string list -> finding list * string list
(** Lints many files: findings (sorted by file, line) and parse errors. *)

val load_baseline : string -> string list
(** Reads suppressed finding keys, one per line; [#] starts a comment,
    blank lines are ignored. A missing file is an empty baseline.
    Accepts both the current and the legacy key format. *)

val suppress : baseline:string list -> finding list -> finding list * finding list
(** Splits findings into (fresh, suppressed) against baseline keys,
    matching either key format. *)

val save_baseline : path:string -> finding list -> unit
(** Writes the given findings' keys as a fresh baseline in the current
    format (the migration path for legacy baselines). *)

val to_json : finding -> Dsim.Json.t

val explain_lines : finding -> string list
(** {!explain}, split into lines (for embedding in JSON artifacts). *)
