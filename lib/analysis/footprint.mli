(** Static read/write footprints: which slice of the key space each
    component of a cluster configuration observes through caches, reads
    linearizably, writes, and writes destructively.

    This is the layer-2 static model of the partial-history picture: a
    component's cached reads are the prefixes its [(H', S')] view is
    built from, so they must agree with the watch sets the dynamic
    planner uses ({!Sieve.Planner.targets_of_config}) — a consistency
    test pins the two views of "what each component observes" together
    so they cannot drift. The write/destructive sets have no dynamic
    counterpart; they come from reading the component implementations
    and are what turns footprints into hazards ({!Hazard}). *)

type t = {
  component : string;
  cached_reads : string list;
      (** prefixes read through informer caches — must equal the
          component's {!Sieve.Planner.target} watch set *)
  quorum_reads : string list;
      (** prefixes the component re-reads linearizably before acting, in
          this configuration (fix flags on) *)
  writes : string list;  (** prefixes the component writes *)
  destructive : string list;
      (** subset of [writes]: deletes, deletion marks, terminal-phase
          marks — the writes that destroy state or data *)
  edge_triggered : string list;
      (** subset of [cached_reads]: prefixes whose derived state is
          maintained *only* by watch events, with no periodic re-list to
          repair a dropped one — the layer-1 lint's [edge-trigger]
          findings, mirrored into the static model (the kubelet's pod
          handler, the scheduler's node cache) *)
  restartable : bool;
}

val of_config : Kube.Cluster.config -> t list
(** One footprint per component the configuration runs, mirroring the
    implementations in [lib/kube]: kubelets finalize (delete) pods they
    see marked; the scheduler binds pods from cached nodes; the volume
    controller deletes released claims; the operator creates/deletes
    member pods and their data claims; the ReplicaSet, Deployment and
    node controllers scale down, prune ReplicaSets and fail pods. The
    [quorum_reads] sets reflect the configuration's fix flags (e.g.
    [operator_fixed] adds a quorum re-list before decommission/GC).

    Replication demotes quorum reads: when the configuration runs the
    replicated store with [Follower _] or [Spread] read routing, the
    apiserver's quorum forwards are served by whatever replica the
    router picks — possibly one frozen behind the leader — so every
    quorum prefix is reclassified as a cached read and [quorum_reads]
    is emptied. Only [Leader] routing (or no replication) keeps the
    linearizable-read guard credit. *)

val of_hbase_config : Hbaselike.Cluster.config -> t list
(** The HBase substrate's footprints: the master reads the registry and
    region assignments through the follower cache (promoted to quorum
    reads when [sync_before_cas] forces a catch-up pull) and CASes
    region assignments destructively; region servers observe ["region/"]
    through one-shot watches — edge-triggered unless [rearm_then_read]
    closes the fire-to-rearm gap. *)

val find : t list -> string -> t option

val to_json : t -> Dsim.Json.t
