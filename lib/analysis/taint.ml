(* Stale-taint dataflow core.

   Values derived from *cached* reads — informer stores, [State] views
   rebuilt from watch streams, ZooKeeper follower reads, replicated-KV
   replica reads — are tainted at their source with the flavor of
   staleness they carry. Taint propagates through let-bindings, tuple /
   record / constructor shapes, inline callbacks, and interprocedurally
   through the local call graph via per-function summaries (does the
   return value carry taint? does a parameter reach a sink?). Sinks are
   destructive writes, proposals against the replicated store, and
   ZooKeeper CAS / region-assignment writes. Recognized guards kill
   taint along the path:

   - a quorum re-read ([get_quorum] / [list_quorum]) kills every kind;
   - a revision-compare precondition ([*_if_unchanged] / [*_if_absent] /
     [~expected_mod_rev]) kills cache and replica taint — replica
     revisions live in the leader's numbering domain, so an optimistic
     precondition is sound even when the revision came from the cache —
     but NOT ZooKeeper-follower taint when the revision itself was read
     from the follower (the follower assigns its own revisions;
     see lib/hbase/zk.ml);
   - a sync leader catch-up read ([Zk.read ~sync:true]) yields fresh,
     untainted data;
   - a Section 6.2 epoch seal (a call whose name mentions [seal]) kills
     every kind.

   The engine is parse-only (compiler-libs [Parsetree], no typing): it
   under-approximates on purpose and its misses are documented in
   MODELING.md. Everything here is off the execution path — the
   simulator never calls into it. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Names                                                               *)

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1)) in
  nn = 0 || go 0

let destructive_words = [ "delete"; "decommission"; "evict"; "drain"; "purge" ]

let is_guard_name name = contains_sub name "if_unchanged" || contains_sub name "if_absent"

let is_seal_name name = contains_sub (String.lowercase_ascii name) "seal"

let is_destructive_name name =
  (not (is_guard_name name))
  && List.exists (contains_sub (String.lowercase_ascii name)) destructive_words

let is_rev_name name =
  let n = String.lowercase_ascii name in
  contains_sub n "rev" || contains_sub n "version"

let is_quorum_name name = List.mem name [ "get_quorum"; "list_quorum" ]

let resync_names = [ "start"; "watch"; "watch_from"; "relist"; "resync"; "list_from"; "sync_from" ]

let fn_path (e : expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Longident.flatten txt | _ -> []

let last_of path = match List.rev path with [] -> "" | x :: _ -> x

let parent_of path =
  match List.rev path with _ :: parent :: _ -> parent | _ -> ""

let grandparent_of path =
  match List.rev path with _ :: _ :: gp :: _ -> gp | _ -> ""

let is_cached_read path =
  match List.rev path with
  | name :: parent :: _ ->
      (String.equal parent "Informer" && List.mem name [ "store"; "get" ])
      || String.equal parent "State"
         && List.mem name [ "find"; "get"; "mem"; "keys_with_prefix"; "fold"; "iter" ]
  | _ -> false

(* [Replicated.Kv.get/range/since ~src] — the read is routed to whatever
   replica serves [src], per the configured read_mode. The [~src] label
   is the discriminator against [Etcdlike.Kv.range] (leader-local). *)
let is_replica_read path args =
  String.equal (parent_of path) "Kv"
  && (not (String.equal (grandparent_of path) "Etcdlike"))
  && List.mem (last_of path) [ "get"; "range"; "since" ]
  && List.exists
       (function
         | Asttypes.Labelled "src", _ | Asttypes.Optional "src", _ -> true | _ -> false)
       args

let is_zk_read path = String.equal (parent_of path) "Zk" && String.equal (last_of path) "read"

let is_zk_watch path =
  String.equal (parent_of path) "Zk"
  && List.mem (last_of path) [ "watch"; "watch_data"; "watch_children"; "exists_watch" ]

(* Proposal-shaped calls: replicated-store writes and client txns whose
   retry discipline matters (see retry-no-dedup). *)
let is_proposal_name path =
  let name = last_of path and parent = parent_of path in
  (List.mem parent [ "Kv"; "Zk"; "Client" ]
  && List.mem name [ "put"; "delete"; "txn"; "txn_"; "cas"; "write"; "propose"; "submit" ])
  || List.mem name [ "propose"; "submit" ]

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let labelled_arg label args =
  List.find_map
    (fun (l, e) ->
      match l with
      | Asttypes.Labelled l when String.equal l label -> Some e
      | Asttypes.Optional l when String.equal l label -> Some e
      | _ -> None)
    args

let token_of_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (last_of (Longident.flatten txt))
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* A literal (or literal-concat) string mentioning "region" marks a
   region-assignment key. *)
let rec mentions_region (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> contains_sub s "region"
  | Pexp_apply (_, args) -> List.exists (fun (_, a) -> mentions_region a) args
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

type kind = Cache | Kv_replica | Zk_follower

type sink_class = Destructive | Record_destroy | Region_assign | Zk_write | Proposal | Reproposal

type span = { line : int; what : string }

type path = {
  kind : kind;
  source : span;
  steps : span list;  (* source -> sink order *)
  sink : span;
  sink_class : sink_class;
  missing_guard : string;
}

let kind_to_string = function
  | Cache -> "cached-view"
  | Kv_replica -> "replica-read"
  | Zk_follower -> "follower-read"

let sink_class_to_string = function
  | Destructive -> "destructive-write"
  | Record_destroy -> "destructive-record"
  | Region_assign -> "region-assign"
  | Zk_write -> "zk-write"
  | Proposal -> "proposal"
  | Reproposal -> "re-proposal"

let missing_guard_of kind sink_class =
  match (sink_class, kind) with
  | Reproposal, _ ->
      "proposal-id dedup: resubmit the pending pid (Replicated.Kv discipline) or carry a \
       revision precondition instead of issuing a fresh proposal"
  | _, Cache ->
      "quorum re-read (get_quorum/list_quorum) or revision precondition (*_if_unchanged \
       ~expected_mod_rev)"
  | _, Kv_replica ->
      "leader-routed read (read_mode = Leader), quorum re-read, or revision-compare txn \
       precondition"
  | _, Zk_follower ->
      "sync leader catch-up read (~sync:true); a follower mod_rev cannot guard a leader CAS \
       (the follower assigns its own revisions)"

(* Which taint kinds a sink class fires on. Proposal-shaped sinks only
   fire on replica-domain taint: writing intent derived from the cache
   is the normal reconcile loop, not a bug. *)
let sink_fires sink_class kind =
  match sink_class with
  | Destructive | Record_destroy -> true
  | Region_assign | Zk_write | Proposal | Reproposal -> kind <> Cache

let max_steps = 16

let render ~file p =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "source  %s:%d  %s [%s]" file p.source.line p.source.what
       (kind_to_string p.kind));
  let steps =
    if List.length p.steps <= max_steps then p.steps
    else
      let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
      take max_steps p.steps @ [ { line = p.sink.line; what = "..." } ]
  in
  List.iter
    (fun s -> Buffer.add_string b (Printf.sprintf "\n   ->   %s:%d  %s" file s.line s.what))
    steps;
  Buffer.add_string b
    (Printf.sprintf "\nsink    %s:%d  %s [%s]" file p.sink.line p.sink.what
       (sink_class_to_string p.sink_class));
  Buffer.add_string b (Printf.sprintf "\nmissing guard: %s" p.missing_guard);
  Buffer.contents b

let path_to_json p =
  let span s = Dsim.Json.Obj [ ("line", Dsim.Json.Int s.line); ("what", Dsim.Json.String s.what) ] in
  Dsim.Json.Obj
    [
      ("kind", Dsim.Json.String (kind_to_string p.kind));
      ("source", span p.source);
      ("steps", Dsim.Json.List (List.map span p.steps));
      ("sink", span p.sink);
      ("sink_class", Dsim.Json.String (sink_class_to_string p.sink_class));
      ("missing_guard", Dsim.Json.String p.missing_guard);
    ]

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)

(* What a value carries: external taint (with the full path back to its
   source) or a dependence on an enclosing function parameter (with the
   steps accumulated so far — completed into a path at a call site that
   passes tainted data for that parameter). *)
type origin =
  | Ext of kind * span * span list  (* kind, source, steps in reverse *)
  | Par of string * span list  (* parameter name, steps in reverse *)

type prov = origin list

let origin_key = function
  | Ext (k, s, _) -> Printf.sprintf "e:%s:%d" (kind_to_string k) s.line
  | Par (p, _) -> "p:" ^ p

let union (a : prov) (b : prov) : prov =
  let seen = Hashtbl.create 8 in
  let keep o =
    let k = origin_key o in
    if Hashtbl.mem seen k then false
    else begin
      Hashtbl.replace seen k ();
      true
    end
  in
  let merged = List.filter keep (a @ b) in
  let rec cap n = function x :: tl when n > 0 -> x :: cap (n - 1) tl | _ -> [] in
  cap 8 merged

let add_step span (p : prov) : prov =
  List.map
    (function
      | Ext (k, s, steps) -> (
          match steps with
          | top :: _ when top.line = span.line -> Ext (k, s, steps)
          | _ -> Ext (k, s, span :: steps))
      | Par (name, steps) -> (
          match steps with
          | top :: _ when top.line = span.line -> Par (name, steps)
          | _ -> Par (name, span :: steps)))
    p

(* ------------------------------------------------------------------ *)
(* Summaries and module-level sites                                    *)

type stub = { st_steps : span list (* source -> sink order *); st_sink : span; st_class : sink_class }

type summary = {
  fn_name : string;
  fn_line : int;
  fn_body : expression;
  fn_params : (Asttypes.arg_label * string option) list;
  mutable fn_returns : (kind * span * span list) option;  (* steps in reverse *)
  mutable fn_param_sinks : (string * stub) list;  (* first stub per param *)
  mutable fn_complete : path list;
  mutable fn_calls : string list;
  mutable fn_scans : string list;
}

type handler = Hname of string | Hinline of expression | Habsent

type informer_site = {
  i_line : int;
  i_enclosing : string;
  i_prefix : string option;
  i_handler : handler;
}

type restart_site = { r_enclosing : string; r_handler : handler }

type watch_site = { w_line : int; w_enclosing : string; w_key : string option; w_handler : handler }

type result = {
  funcs : summary list;
  complete : (summary * path) list;  (* after first-combine dedup *)
  reproposals : (summary * path) list;
  informers : informer_site list;
  restarts : restart_site list;
  watches : watch_site list;
  periodic_scanned : string list;
}

module Env = Map.Make (String)

(* Guard context, threaded immutably through the walk. [kp] covers
   parameter-dependence: any recognized guard discharges a parameter's
   would-be sink (the caller's taint has been re-validated here). *)
type ctx = {
  kc : bool;  (* cache taint killed *)
  kr : bool;  (* replica taint killed *)
  kz : bool;  (* zk-follower taint killed *)
  kp : bool;  (* parameter dependence killed *)
  every : bool;  (* inside an Engine.every callback *)
  cont_of : span option;  (* inside a continuation of this proposal *)
  retry : span option;  (* inside an Error branch of that continuation *)
}

let ctx0 = { kc = false; kr = false; kz = false; kp = false; every = false; cont_of = None; retry = None }

let killed ctx = function Cache -> ctx.kc | Kv_replica -> ctx.kr | Zk_follower -> ctx.kz

type st = {
  summaries : (string, summary) Hashtbl.t;
  mutable cur : summary;
  mutable informers : informer_site list;
  mutable restarts : restart_site list;
  mutable watches : watch_site list;
  mutable periodic_roots : string list;
  mutable periodic_scans : string list;
  mutable reproposals : (string * path) list;  (* enclosing fn, path *)
}

let handler_of_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Hname (last_of (Longident.flatten txt))
  | Pexp_apply (fn, _) -> ( match fn_path fn with [] -> Habsent | path -> Hname (last_of path))
  | Pexp_fun (_, _, _, body) -> Hinline body
  | Pexp_function _ -> Hinline e
  | _ -> Habsent

(* Bind every variable in [pat] to [prov] (value-level: components of a
   tainted aggregate are tainted). *)
let rec bind_pattern env (pat : pattern) (prov : prov) =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Env.add txt prov env
  | Ppat_alias (p, { txt; _ }) -> bind_pattern (Env.add txt prov env) p prov
  | Ppat_tuple ps -> List.fold_left (fun env p -> bind_pattern env p prov) env ps
  | Ppat_construct (_, Some (_, p)) -> bind_pattern env p prov
  | Ppat_variant (_, Some p) -> bind_pattern env p prov
  | Ppat_record (fields, _) ->
      List.fold_left (fun env (_, p) -> bind_pattern env p prov) env fields
  | Ppat_or (a, b) -> bind_pattern (bind_pattern env a prov) b prov
  | Ppat_constraint (p, _) -> bind_pattern env p prov
  | Ppat_open (_, p) -> bind_pattern env p prov
  | Ppat_array ps -> List.fold_left (fun env p -> bind_pattern env p prov) env ps
  | _ -> env

(* Does a case pattern look like an error / unavailability branch? *)
let is_error_pattern (pat : pattern) =
  let found = ref false in
  let check name = if List.mem name [ "Error"; "Unavailable"; "Timeout" ] then found := true in
  let p (it : Ast_iterator.iterator) (x : pattern) =
    (match x.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) -> check (last_of (Longident.flatten txt))
    | Ppat_variant (l, _) -> check l
    | _ -> ());
    Ast_iterator.default_iterator.pat it x
  in
  let it = { Ast_iterator.default_iterator with pat = p } in
  it.pat it pat;
  !found

(* Dedup evidence on a re-proposal: an explicit proposal id, a resubmit
   API, or a revision precondition all make the retry idempotent. *)
let has_dedup_evidence path args =
  let name = last_of path in
  List.exists
    (fun l -> Option.is_some (labelled_arg l args))
    [ "pid"; "proposal_id"; "dedup"; "idempotency_key" ]
  || contains_sub name "resubmit" || contains_sub name "repropose"
  || is_guard_name name
  || Option.is_some (labelled_arg "expected_mod_rev" args)

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

let record_complete st (p : path) =
  if
    not
      (List.exists
         (fun q -> q.sink.line = p.sink.line && q.kind = p.kind && q.sink_class = p.sink_class)
         st.cur.fn_complete)
  then st.cur.fn_complete <- st.cur.fn_complete @ [ p ]

let record_param_sink st param (stub : stub) =
  if not (List.exists (fun (p, _) -> String.equal p param) st.cur.fn_param_sinks) then
    st.cur.fn_param_sinks <- st.cur.fn_param_sinks @ [ (param, stub) ]

let record_returns st = function
  | [] -> ()
  | origins -> (
      match
        List.find_map (function Ext (k, s, steps) -> Some (k, s, steps) | Par _ -> None) origins
      with
      | Some _ as r when st.cur.fn_returns = None -> st.cur.fn_returns <- r
      | _ -> ())

(* Tainted data reaches a sink: complete external paths, extend
   parameter stubs. *)
let hit_sink st ctx ~sink ~cls (prov : prov) =
  List.iter
    (function
      | Ext (k, src, rsteps) ->
          if sink_fires cls k && not (killed ctx k) then
            record_complete st
              {
                kind = k;
                source = src;
                steps = List.rev rsteps;
                sink;
                sink_class = cls;
                missing_guard = missing_guard_of k cls;
              }
      | Par (param, rsteps) ->
          if not ctx.kp then
            record_param_sink st param { st_steps = List.rev rsteps; st_sink = sink; st_class = cls })
    prov

let lookup env name = match Env.find_opt name env with Some p -> p | None -> []

let scan_token st ctx tok =
  if ctx.every then begin
    if not (List.mem tok st.periodic_scans) then st.periodic_scans <- tok :: st.periodic_scans
  end
  else if not (List.mem tok st.cur.fn_scans) then st.cur.fn_scans <- st.cur.fn_scans @ [ tok ]

(* Positional/labelled argument -> callee parameter matching over
   already-evaluated arguments: labelled args match parameter labels by
   name, unlabelled args consume unlabelled parameters in order
   (unnamed parameters still consume a position). *)
let match_args params evaled =
  let positional = ref (List.filter (fun (l, _) -> l = Asttypes.Nolabel) params) in
  List.filter_map
    (fun (l, _, (prov : prov)) ->
      match l with
      | Asttypes.Nolabel -> (
          match !positional with
          | (_, name) :: rest ->
              positional := rest;
              Option.map (fun n -> (n, prov)) name
          | [] -> None)
      | Asttypes.Labelled l | Asttypes.Optional l ->
          List.find_map
            (fun (pl, name) ->
              match pl with
              | (Asttypes.Labelled pl' | Asttypes.Optional pl') when String.equal pl' l ->
                  Option.map (fun n -> (n, prov)) name
              | _ -> None)
            params)
    evaled

let rec eval st ctx env (e : expression) : prov =
  let line = line_of e.pexp_loc in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident name; _ } -> lookup env name
  | Pexp_ident _ | Pexp_constant _ -> []
  | Pexp_let (_, vbs, body) ->
      let env =
        List.fold_left
          (fun env' vb ->
            let p = eval st ctx env vb.pvb_expr in
            let p =
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  add_step { line = line_of vb.pvb_loc; what = Printf.sprintf "bound to %s" txt } p
              | _ -> p
            in
            bind_pattern env' vb.pvb_pat p)
          env vbs
      in
      eval st ctx env body
  | Pexp_fun (_, _, pat, body) ->
      (* A lambda evaluated as a value: its parameters are unknown here
         (call sites bind them); walk the body for sinks and sites. *)
      ignore (eval st ctx (bind_pattern env pat []) body);
      []
  | Pexp_function cases -> eval_cases st ctx env [] cases
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let sp = eval st ctx env scrut in
      eval_cases st ctx env sp cases
  | Pexp_apply (fn, args) -> eval_apply st ctx env e fn args
  | Pexp_tuple es | Pexp_array es ->
      List.fold_left (fun acc x -> union acc (eval st ctx env x)) [] es
  | Pexp_construct (_, arg) -> ( match arg with Some a -> eval st ctx env a | None -> [])
  | Pexp_variant (_, arg) -> ( match arg with Some a -> eval st ctx env a | None -> [])
  | Pexp_record (fields, base) ->
      let prov =
        List.fold_left
          (fun acc (_, v) -> union acc (eval st ctx env v))
          (match base with Some b -> eval st ctx env b | None -> [])
          fields
      in
      (* Constructing a deletion marker or a Failed phase is a
         destructive write in record form. *)
      let destroys =
        List.exists
          (fun ((lid : Longident.t Asttypes.loc), (v : expression)) ->
            match (last_of (Longident.flatten lid.Asttypes.txt), v.pexp_desc) with
            | "deletion_timestamp", Pexp_construct ({ txt = Longident.Lident "Some"; _ }, _) ->
                true
            | "phase", Pexp_construct ({ txt; _ }, _)
              when String.equal (last_of (Longident.flatten txt)) "Failed" ->
                true
            | _ -> false)
          fields
      in
      if destroys then
        hit_sink st ctx
          ~sink:{ line; what = "record marked for deletion/failure" }
          ~cls:Record_destroy prov;
      prov
  | Pexp_field (x, _) -> eval st ctx env x
  | Pexp_setfield (x, _, v) ->
      ignore (eval st ctx env x);
      ignore (eval st ctx env v);
      []
  | Pexp_ifthenelse (c, t, f) ->
      ignore (eval st ctx env c);
      let pt = eval st ctx env t in
      let pf = match f with Some f -> eval st ctx env f | None -> [] in
      union pt pf
  | Pexp_sequence (a, b) ->
      ignore (eval st ctx env a);
      eval st ctx env b
  | Pexp_while (c, body) ->
      ignore (eval st ctx env c);
      ignore (eval st ctx env body);
      []
  | Pexp_for (pat, lo, hi, _, body) ->
      ignore (eval st ctx env lo);
      ignore (eval st ctx env hi);
      ignore (eval st ctx (bind_pattern env pat []) body);
      []
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_assert x | Pexp_lazy x ->
      eval st ctx env x
  | Pexp_open (_, x) | Pexp_letmodule (_, _, x) | Pexp_letexception (_, x) -> eval st ctx env x
  | _ -> []

and eval_cases st ctx env scrut_prov cases =
  List.fold_left
    (fun acc (case : case) ->
      let prov =
        add_step
          { line = line_of case.pc_lhs.ppat_loc; what = "matched" }
          scrut_prov
      in
      let env = bind_pattern env case.pc_lhs prov in
      (match case.pc_guard with Some g -> ignore (eval st ctx env g) | None -> ());
      let ctx =
        if ctx.cont_of <> None && is_error_pattern case.pc_lhs then
          { ctx with retry = ctx.cont_of }
        else ctx
      in
      union acc (eval st ctx env case.pc_rhs))
    [] cases

and eval_fun_arg st ctx env ~param_prov (e : expression) =
  (* Descend into a callback, binding its parameters to [param_prov]. *)
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      eval_fun_arg st ctx (bind_pattern env pat param_prov) ~param_prov body
  | Pexp_function cases -> ignore (eval_cases st ctx env param_prov cases)
  | _ -> ignore (eval st ctx env e)

and eval_apply st ctx env (e : expression) fn args =
  let line = line_of e.pexp_loc in
  let path = fn_path fn in
  let name = last_of path in
  let local = List.length path = 1 && Hashtbl.mem st.summaries name in
  (* Site collection (informers / restart handlers / one-shot watches /
     periodic scans) — same recognizers as the shape lint had. *)
  (if List.mem name [ "keys_with_prefix"; "list_quorum" ] then
     match Option.bind (labelled_arg "prefix" args) token_of_expr with
     | Some tok -> scan_token st ctx tok
     | None -> ());
  if String.equal name "create" && List.mem "Informer" path then
    st.informers <-
      {
        i_line = line;
        i_enclosing = st.cur.fn_name;
        i_prefix = Option.bind (labelled_arg "prefix" args) token_of_expr;
        i_handler =
          (match labelled_arg "on_event" args with
          | Some h -> handler_of_expr h
          | None -> Habsent);
      }
      :: st.informers;
  (match labelled_arg "on_restart" args with
  | Some h ->
      st.restarts <- { r_enclosing = st.cur.fn_name; r_handler = handler_of_expr h } :: st.restarts
  | None -> ());
  if is_zk_watch path then begin
    let handler =
      match
        List.find_map
          (fun l -> labelled_arg l args)
          [ "on_fire"; "on_event"; "on_change"; "watcher" ]
      with
      | Some h -> handler_of_expr h
      | None -> (
          match
            List.rev
              (List.filter_map
                 (fun (l, (a : expression)) ->
                   match (l, a.pexp_desc) with
                   | Asttypes.Nolabel, (Pexp_fun _ | Pexp_function _) -> Some a
                   | _ -> None)
                 args)
          with
          | h :: _ -> handler_of_expr h
          | [] -> Habsent)
    in
    st.watches <-
      {
        w_line = line;
        w_enclosing = st.cur.fn_name;
        w_key = Option.bind (labelled_arg "key" args) token_of_expr;
        w_handler = handler;
      }
      :: st.watches
  end;
  (* Classification, most specific first. *)
  let sync_literal_true =
    match labelled_arg "sync" args with
    | Some { pexp_desc = Pexp_construct ({ txt = Longident.Lident "true"; _ }, None); _ } -> true
    | _ -> false
  in
  let arg_prov (l, a) =
    match a.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> ((l, a), [])
    | _ -> ((l, a), eval st ctx env a)
  in
  let rev_arg_follower () =
    (* A revision precondition whose revision was itself read from the
       ZK follower lives in the wrong numbering domain: no guard. *)
    match labelled_arg "expected_mod_rev" args with
    | Some rev ->
        List.exists (function Ext (Zk_follower, _, _) -> true | _ -> false) (eval st ctx env rev)
    | None -> false
  in
  let descend_funs ?(ctx = ctx) ~param_prov () =
    List.iter
      (fun (_, (a : expression)) ->
        match a.pexp_desc with
        | Pexp_fun _ | Pexp_function _ -> eval_fun_arg st ctx env ~param_prov a
        | _ -> ())
      args
  in
  if is_quorum_name name then begin
    (* Linearizable re-read: the callback's data is fresh, and anything
       it does is quorum-guarded. *)
    let gctx = { ctx with kc = true; kr = true; kz = true; kp = true } in
    List.iter
      (fun (_, (a : expression)) ->
        match a.pexp_desc with
        | Pexp_fun _ | Pexp_function _ -> eval_fun_arg st gctx env ~param_prov:[] a
        | _ -> ignore (eval st ctx env a))
      args;
    []
  end
  else if is_seal_name name && not local then begin
    let gctx = { ctx with kc = true; kr = true; kz = true; kp = true } in
    List.iter (fun (_, a) -> ignore (eval st gctx env a)) args;
    []
  end
  else if is_zk_read path then begin
    if sync_literal_true then begin
      (* Leader catch-up before serving: fresh data. *)
      descend_funs ~param_prov:[] ();
      List.iter
        (fun (_, (a : expression)) ->
          match a.pexp_desc with Pexp_fun _ | Pexp_function _ -> () | _ -> ignore (eval st ctx env a))
        args;
      []
    end
    else begin
      let src =
        {
          line;
          what =
            (match labelled_arg "sync" args with
            | None | Some { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, _); _ }
              ->
                "Zk.read from the follower (no sync)"
            | _ -> "Zk.read with non-literal ~sync (follower path possible)");
        }
      in
      let prov = [ Ext (Zk_follower, src, []) ] in
      List.iter
        (fun (_, (a : expression)) ->
          match a.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> eval_fun_arg st ctx env ~param_prov:prov a
          | _ -> ignore (eval st ctx env a))
        args;
      prov
    end
  end
  else if is_replica_read path args then begin
    let src = { line; what = Printf.sprintf "Replicated.Kv.%s routed by ~src (read_mode)" name } in
    let prov = [ Ext (Kv_replica, src, []) ] in
    List.iter
      (fun (_, (a : expression)) ->
        match a.pexp_desc with
        | Pexp_fun _ | Pexp_function _ -> eval_fun_arg st ctx env ~param_prov:prov a
        | _ -> ignore (eval st ctx env a))
      args;
    prov
  end
  else if is_cached_read path then begin
    let src = { line; what = Printf.sprintf "cached read %s" (String.concat "." path) } in
    let prov = [ Ext (Cache, src, []) ] in
    List.iter
      (fun (_, (a : expression)) ->
        match a.pexp_desc with
        | Pexp_fun _ | Pexp_function _ -> eval_fun_arg st ctx env ~param_prov:prov a
        | _ -> ignore (eval st ctx env a))
      args;
    prov
  end
  else begin
    let guard_call = is_guard_name name || Option.is_some (labelled_arg "expected_mod_rev" args) in
    let guard_valid = guard_call && not (rev_arg_follower ()) in
    if guard_valid then begin
      (* Revision-compare precondition: kills cache/replica taint (and
         discharges parameter dependences) for the guarded payload. *)
      let gctx = { ctx with kc = true; kr = true; kp = true } in
      List.iter
        (fun (_, (a : expression)) ->
          match a.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> eval_fun_arg st gctx env ~param_prov:[] a
          | _ -> ignore (eval st gctx env a))
        args;
      []
    end
    else if local then begin
      if not (List.mem name st.cur.fn_calls) then st.cur.fn_calls <- st.cur.fn_calls @ [ name ];
      if ctx.every && not (List.mem name st.periodic_roots) then
        st.periodic_roots <- name :: st.periodic_roots;
      let callee = Hashtbl.find st.summaries name in
      let evaled =
        List.map
          (fun (l, (a : expression)) ->
            match a.pexp_desc with
            | Pexp_fun _ | Pexp_function _ -> (l, a, [])
            | _ -> (l, a, eval st ctx env a))
          args
      in
      (* Tainted argument meets a callee parameter that reaches a sink:
         the halves combine here. *)
      (if not ctx.kp then
         List.iter
           (fun (param, (aprov : prov)) ->
             match List.assoc_opt param callee.fn_param_sinks with
             | None -> ()
             | Some stub ->
                 let hop = { line; what = Printf.sprintf "argument %s to %s" param name } in
                 List.iter
                   (function
                     | Ext (k, src, rsteps) ->
                         if sink_fires stub.st_class k && not (killed ctx k) then
                           record_complete st
                             {
                               kind = k;
                               source = src;
                               steps = List.rev rsteps @ (hop :: stub.st_steps);
                               sink = stub.st_sink;
                               sink_class = stub.st_class;
                               missing_guard = missing_guard_of k stub.st_class;
                             }
                     | Par (p, rsteps) ->
                         record_param_sink st p
                           {
                             st_steps = List.rev rsteps @ (hop :: stub.st_steps);
                             st_sink = stub.st_sink;
                             st_class = stub.st_class;
                           })
                   aprov)
           (match_args callee.fn_params evaled));
      (* Callbacks passed to a local callee: walk them with the union of
         the sibling data arguments (conservative). *)
      let data = List.fold_left (fun acc (_, _, p) -> union acc p) [] evaled in
      descend_funs ~param_prov:data ();
      match callee.fn_returns with
      | Some (k, src, rsteps) ->
          [ Ext (k, src, { line; what = Printf.sprintf "returned by %s" name } :: rsteps) ]
      | None -> []
    end
    else begin
      (* External call. Retry discipline first: a proposal issued inside
         an error branch of another proposal's continuation, with no
         dedup evidence, re-executes a possibly-applied effect. *)
      let proposal = is_proposal_name path in
      (if proposal && not guard_call then
         match ctx.retry with
         | Some orig when not (has_dedup_evidence path args || ctx.kc || ctx.kr || ctx.kz) ->
             st.reproposals <-
               ( st.cur.fn_name,
                 {
                   kind = Kv_replica;
                   source = orig;
                   steps = [ { line; what = "retried in the Error branch" } ];
                   sink = { line; what = Printf.sprintf "fresh proposal %s" (String.concat "." path) };
                   sink_class = Reproposal;
                   missing_guard = missing_guard_of Kv_replica Reproposal;
                 } )
               :: st.reproposals
         | _ -> ());
      let pairs = List.map arg_prov args in
      let data = List.fold_left (fun acc (_, p) -> union acc p) [] pairs in
      (* Sink checks. *)
      (if is_destructive_name name && not guard_call then
         hit_sink st ctx
           ~sink:{ line; what = Printf.sprintf "destructive write %s" (String.concat "." path) }
           ~cls:Destructive data
       else if String.equal (parent_of path) "Zk" && List.mem name [ "cas"; "write" ] then begin
         let cls =
           if List.exists (fun (_, a) -> mentions_region a) args then Region_assign else Zk_write
         in
         hit_sink st ctx
           ~sink:{ line; what = Printf.sprintf "Zk.%s at the leader" name }
           ~cls data
       end
       else if proposal then
         hit_sink st ctx
           ~sink:{ line; what = Printf.sprintf "proposal %s" (String.concat "." path) }
           ~cls:Proposal data);
      (* Callbacks: continuation of a proposal (for retry tracking), and
         data taint flows into callback parameters. *)
      let cb_ctx =
        let base = if proposal then { ctx with cont_of = Some { line; what = Printf.sprintf "proposal %s" (String.concat "." path) } } else { ctx with cont_of = None } in
        if String.equal name "every" && List.mem "Engine" path then { base with every = true }
        else base
      in
      List.iter
        (fun (((_, a) : Asttypes.arg_label * expression), _) ->
          match a.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> eval_fun_arg st cb_ctx env ~param_prov:data a
          | _ -> ())
        pairs;
      data
    end
  end

(* ------------------------------------------------------------------ *)
(* Module driver                                                       *)

let peel_params (e : expression) =
  let rec go acc (e : expression) =
    match e.pexp_desc with
    | Pexp_fun (label, _, pat, body) ->
        let name =
          match pat.ppat_desc with
          | Ppat_var { txt; _ } -> Some txt
          | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
          | _ -> None
        in
        go ((label, name, pat) :: acc) body
    | Pexp_newtype (_, body) -> go acc body
    | _ -> (List.rev acc, e)
  in
  go [] e

let analyze (str : structure) : result =
  let bindings =
    List.concat_map
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.filter_map
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } -> Some (txt, line_of vb.pvb_loc, vb.pvb_expr)
                | _ -> None)
              vbs
        | _ -> [])
      str
  in
  let summaries = Hashtbl.create 64 in
  let funcs =
    List.map
      (fun (name, line, expr) ->
        let params, body = peel_params expr in
        let s =
          {
            fn_name = name;
            fn_line = line;
            fn_body = body;
            fn_params = List.map (fun (l, n, _) -> (l, n)) params;
            fn_returns = None;
            fn_param_sinks = [];
            fn_complete = [];
            fn_calls = [];
            fn_scans = [];
          }
        in
        Hashtbl.replace summaries name s;
        (s, params))
      bindings
  in
  let dummy =
    {
      fn_name = "";
      fn_line = 0;
      fn_body =
        {
          pexp_desc = Pexp_unreachable;
          pexp_loc = Location.none;
          pexp_loc_stack = [];
          pexp_attributes = [];
        };
      fn_params = [];
      fn_returns = None;
      fn_param_sinks = [];
      fn_complete = [];
      fn_calls = [];
      fn_scans = [];
    }
  in
  let st =
    {
      summaries;
      cur = dummy;
      informers = [];
      restarts = [];
      watches = [];
      periodic_roots = [];
      periodic_scans = [];
      reproposals = [];
    }
  in
  let signature () =
    List.map
      (fun (s, _) ->
        ( s.fn_name,
          s.fn_returns <> None,
          List.map fst s.fn_param_sinks,
          List.length s.fn_complete ))
      funcs
  in
  let pass () =
    st.informers <- [];
    st.restarts <- [];
    st.watches <- [];
    st.periodic_roots <- [];
    st.periodic_scans <- [];
    st.reproposals <- [];
    List.iter
      (fun (s, params) ->
        s.fn_complete <- [];
        s.fn_calls <- [];
        s.fn_scans <- [];
        s.fn_returns <- None;
        s.fn_param_sinks <- [];
        st.cur <- s;
        let env =
          List.fold_left
            (fun env (_, n, _) ->
              match n with
              | Some n ->
                  Env.add n
                    [ Par (n, [ { line = s.fn_line; what = Printf.sprintf "parameter %s of %s" n s.fn_name } ]) ]
                    env
              | None -> env)
            Env.empty params
        in
        record_returns st (eval st ctx0 env s.fn_body))
      funcs
  in
  let prev = ref [] in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue && !iterations < 8 do
    incr iterations;
    pass ();
    let s = signature () in
    if s = !prev then continue := false else prev := s
  done;
  (* Prefixes re-listed by anything reachable from a periodic task. *)
  let find name = Hashtbl.find_opt summaries name in
  let visited = Hashtbl.create 16 in
  let scanned = ref st.periodic_scans in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      match find name with
      | None -> ()
      | Some s ->
          List.iter
            (fun tok -> if not (List.mem tok !scanned) then scanned := tok :: !scanned)
            s.fn_scans;
          List.iter visit s.fn_calls
    end
  in
  List.iter visit st.periodic_roots;
  (* First-combine dedup: a function whose callee already owns a
     complete path is just forwarding — report the deepest combiner. *)
  let summaries_list = List.map fst funcs in
  let complete =
    List.concat_map
      (fun s ->
        if
          s.fn_complete <> []
          && not
               (List.exists
                  (fun callee ->
                    match find callee with Some c -> c.fn_complete <> [] | None -> false)
                  s.fn_calls)
        then List.map (fun p -> (s, p)) s.fn_complete
        else [])
      summaries_list
  in
  let reproposals =
    List.filter_map
      (fun (fname, p) ->
        match find fname with Some s -> Some (s, p) | None -> None)
      (List.rev st.reproposals)
  in
  {
    funcs = summaries_list;
    complete;
    reproposals;
    informers = List.rev st.informers;
    restarts = List.rev st.restarts;
    watches = List.rev st.watches;
    periodic_scanned = !scanned;
  }
