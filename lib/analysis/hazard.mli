(** The hazard graph: static partial-history hazards derived from
    component footprints, classified by the paper's Section 4.2 pattern.

    A hazard names a (component, key prefix) pair whose view/act
    coupling is structurally exposed to one of the three divergence
    patterns *before any trial runs*:

    - {b Staleness}: a cached read of the prefix feeds a destructive
      write with no quorum re-read in this configuration (the
      cassandra-operator-400/402 shape), or two components write the
      prefix concurrently while acting on cached views of it.
    - {b Observability gap}: the component acts on its cached view of
      the prefix, so a single dropped event can mislead every later
      action (the Kubernetes-56261 / cassandra-operator-398 shape); or
      the component writes a prefix no informer watches, so its effects
      are structurally invisible.
    - {b Time travel}: the component is restartable and acts on a
      cached view, so a restart that re-lists from a stale apiserver
      rewinds the inputs of its writes (the Kubernetes-59848 shape).

    Severity ranks how directly the hazard reaches damage (3 = an
    unguarded destructive write, or a cached view that is
    edge-triggered or feeds a destructive actor — nothing repairs a
    wrong decision; 2 = destructive-adjacent: write/write conflicts,
    restart rewinds of destructive actors; 1 = structural exposure
    only). The hunt scheduler uses severities as a
    dispatch priority ([hunt --hazard-rank]): hazard-implicated
    (component, key, pattern) candidates run first, so campaigns reach
    the corpus bugs in no more trials than coverage ordering alone. *)

type t = {
  pattern : Sieve.Coverage.pattern;
  component : string;
  prefix : string;  (** key prefix the hazard is about *)
  severity : int;  (** 3 highest *)
  reason : string;
}

val of_footprints : Footprint.t list -> t list
(** Builds the hazard graph from footprints, deduplicated per
    (pattern, component, prefix) keeping the highest severity, sorted
    by severity (descending) then component/prefix. *)

val of_config : Kube.Cluster.config -> t list
(** [of_footprints (Footprint.of_config config)]. *)

val of_lint : Lint.finding list -> t list
(** Per-path hazards from lint findings: one hazard per evidence path
    (a function with two tainted routes to distinct sinks weighs
    twice), severity 3 when the sink is destructive / record-destroy /
    region-assign, 2 for other proposals and writes. Components are
    mapped to runtime names ([deployment.ml] -> [depctl], ...) so the
    hazards share the footprint graph's namespace; the prefix is [""]
    (a code path implicates every key the component touches). Additive:
    {!of_footprints} and {!of_config} are unchanged, and nothing on the
    execution path calls this. *)

val score : t list -> component:string -> key:string -> pattern:Sieve.Coverage.pattern -> int
(** Highest severity of a hazard implicating this (component, key,
    pattern) cell — 0 when none does. Keys match hazard prefixes by
    [String.starts_with]. *)

val boost : t list -> Sieve.Planner.boost
(** {!score} in the shape {!Sieve.Planner.candidates_causal} accepts. *)

val plan_score : t list -> Sieve.Coverage.t -> Sieve.Planner.plan -> int
(** Dispatch priority of one candidate: the highest {!score} over the
    coverage cells the candidate's strategy would exercise. When the
    strategy touches no in-space cell, falls back to matching the
    strategy's named components ({!Sieve.Strategy.components}) and
    pattern against the graph. *)

val to_json : t -> Dsim.Json.t
