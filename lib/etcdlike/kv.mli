(** MVCC key-value core of the etcd-like store.

    A thin stateful layer over {!History.Log}: every mutation commits
    an event into the history (assigning the next global revision) and
    updates the materialized state. Commit listeners let the watch hub
    stream events out; reads are linearizable by construction because
    there is a single store instance — the *network* layer is what makes
    client views stale, exactly as in the paper's architecture. *)

type 'v t

val create : unit -> 'v t

val rev : 'v t -> int
(** Latest committed revision. *)

val compacted_rev : 'v t -> int

val get : 'v t -> string -> ('v * int) option
(** Value and its mod-revision. *)

val range : 'v t -> prefix:string -> (string * 'v * int) list
(** All live keys with the prefix, sorted, with values and
    mod-revisions — one ordered-map range scan, O(log n + k). *)

val put : 'v t -> string -> 'v -> 'v History.Event.t
(** Creates or updates; the event's [op] reflects which. *)

val delete : 'v t -> string -> 'v History.Event.t option
(** [None] when the key was absent (no event committed). *)

val state : 'v t -> 'v History.State.t

val history : 'v t -> 'v History.Log.t

val since : 'v t -> rev:int -> ('v History.Event.t list, [ `Compacted of int ]) result

val compact : 'v t -> before:int -> unit

val compact_keep_last : 'v t -> int -> unit

val on_commit : 'v t -> ('v History.Event.t -> unit) -> unit
(** Registers a listener invoked synchronously after each commit, in
    registration order. Registration is amortized O(1). *)
