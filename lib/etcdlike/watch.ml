type 'v watcher = {
  id : int;
  prefix : string option;
  deliver : 'v History.Event.t -> unit;
  mutable last_sent : int;
}

type handle = int

type 'v t = { kv : 'v Kv.t; mutable watchers : 'v watcher list; mutable next_id : int }

let push watcher (e : 'v History.Event.t) =
  if e.History.Event.rev > watcher.last_sent && History.Event.matches_prefix watcher.prefix e
  then begin
    watcher.last_sent <- e.History.Event.rev;
    watcher.deliver e
  end

let create kv =
  let t = { kv; watchers = []; next_id = 0 } in
  Kv.on_commit kv (fun event -> List.iter (fun w -> push w event) t.watchers);
  t

let watch t ?prefix ~start_rev ~deliver () =
  match Kv.since t.kv ~rev:start_rev with
  | Error (`Compacted rev) -> Error (`Compacted rev)
  | Ok backlog ->
      t.next_id <- t.next_id + 1;
      let watcher = { id = t.next_id; prefix; deliver; last_sent = start_rev } in
      t.watchers <- t.watchers @ [ watcher ];
      List.iter (fun event -> push watcher event) backlog;
      Ok watcher.id

let cancel t handle = t.watchers <- List.filter (fun w -> w.id <> handle) t.watchers

let active t = List.length t.watchers

let fan_out t event = List.iter (fun w -> push w event) t.watchers
