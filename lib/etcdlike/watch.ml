type 'v sink =
  | Single of ('v History.Event.t -> unit)
  | Batched of ('v History.Event.t list -> unit)

type 'v watcher = { prefix : string option; sink : 'v sink; mutable last_sent : int }

type handle = int

type 'v t = {
  kv : 'v Kv.t;
  index : 'v watcher History.Dispatch.t;
  batch : 'v History.Dispatch.Batch.queue;
}

let push t handle w (e : 'v History.Event.t) =
  if e.History.Event.rev > w.last_sent && History.Event.matches_prefix w.prefix e then begin
    w.last_sent <- e.History.Event.rev;
    match w.sink with
    | Single deliver -> deliver e
    | Batched _ -> History.Dispatch.Batch.offer t.batch ~stream:handle e
  end

(* The trie routes by key prefix, so only matching watchers are even
   visited; [push] re-checks [matches_prefix] because backlog replay
   calls it directly, outside the index. Cancellation mid-fan-out is
   honoured by the index itself: a removed handle is skipped by the
   in-flight iteration (see {!History.Dispatch}). *)
let fan_out t event =
  History.Dispatch.iter_matching t.index ~key:event.History.Event.key (fun handle w ->
      push t handle w event)

let create kv =
  let t = { kv; index = History.Dispatch.create (); batch = History.Dispatch.Batch.create () } in
  Kv.on_commit kv (fun event -> fan_out t event);
  t

let register t ?prefix ~start_rev sink =
  match Kv.since t.kv ~rev:start_rev with
  | Error (`Compacted rev) -> Error (`Compacted rev)
  | Ok backlog ->
      let watcher = { prefix; sink; last_sent = start_rev } in
      let handle = History.Dispatch.add t.index ?prefix watcher in
      List.iter (fun event -> push t handle watcher event) backlog;
      Ok handle

let watch t ?prefix ~start_rev ~deliver () = register t ?prefix ~start_rev (Single deliver)

let watch_batched t ?prefix ~start_rev ~deliver () =
  register t ?prefix ~start_rev (Batched deliver)

let cancel t handle = ignore (History.Dispatch.remove t.index handle)

let active t = History.Dispatch.size t.index

let pending t = History.Dispatch.Batch.pending t.batch

(* A watcher cancelled after events were offered but before the flush
   receives nothing: its handle no longer resolves, so its batch is
   dropped — cancellation means cancelled, not "one last batch". *)
let flush t =
  History.Dispatch.Batch.flush t.batch (fun ~stream events ->
      match History.Dispatch.find t.index stream with
      | Some { sink = Batched deliver; _ } -> deliver events
      | Some { sink = Single _; _ } | None -> ())
