type 'v t = {
  history : 'v History.Log.t;
  (* Listeners in registration order; a growable array so cluster boot —
     which registers one listener per watch hub — stays O(1) per
     registration instead of re-walking the list with [@]. *)
  mutable listeners : ('v History.Event.t -> unit) array;
  mutable n_listeners : int;
}

let create () = { history = History.Log.create (); listeners = [||]; n_listeners = 0 }

let rev t = History.Log.rev t.history

let compacted_rev t = History.Log.compacted_rev t.history

let state t = History.Log.state t.history

let history t = t.history

let get t key = History.State.find (state t) key

let range t ~prefix =
  (* One ordered-map range scan yields key, value and mod-revision
     together — no per-key re-lookup after the prefix walk. *)
  History.State.bindings_with_prefix (state t) ~prefix
  |> List.map (fun (key, (v, mod_rev)) -> (key, v, mod_rev))

let commit t ~key ~op value =
  let event = History.Log.append t.history ~key ~op value in
  for i = 0 to t.n_listeners - 1 do
    t.listeners.(i) event
  done;
  event

let put t key value =
  let op = if History.State.mem (state t) key then History.Event.Update else History.Event.Create in
  commit t ~key ~op (Some value)

let delete t key =
  if History.State.mem (state t) key then Some (commit t ~key ~op:History.Event.Delete None) else None

let since t ~rev = History.Log.since t.history ~rev

let compact t ~before = History.Log.compact t.history ~before

let compact_keep_last t n = History.Log.compact_keep_last t.history n

let on_commit t listener =
  let capacity = Array.length t.listeners in
  if t.n_listeners = capacity then begin
    let next = Array.make (max 4 (2 * capacity)) listener in
    Array.blit t.listeners 0 next 0 t.n_listeners;
    t.listeners <- next
  end;
  t.listeners.(t.n_listeners) <- listener;
  t.n_listeners <- t.n_listeners + 1
