(** Watch hub: revision-addressed event streams over the store.

    A watcher names a start revision and an optional key prefix; it first
    receives the retained backlog after that revision, then live events as
    they commit. Asking for a start revision older than the compaction
    frontier fails with [`Compacted] — the client has to fall back to a
    full list + re-watch, losing the intervening events (an observability
    gap by design, cf. Section 4.2.3 and the Kubernetes "efficient watch
    resumption" KEP).

    Live delivery routes through {!History.Dispatch}, a prefix-trie
    watcher index: a commit visits only the watchers whose prefix matches
    its key, in registration order, instead of filtering the full watcher
    list. Cancellation takes effect immediately — a watcher cancelled
    from inside a delivery callback (its own or a peer's) receives no
    further events, including the event currently fanning out. *)

type 'v t

val create : 'v Kv.t -> 'v t
(** Attaches to the store's commit stream. Create at most one hub per
    store. *)

type handle

val watch :
  'v t ->
  ?prefix:string ->
  start_rev:int ->
  deliver:('v History.Event.t -> unit) ->
  unit ->
  (handle, [ `Compacted of int ]) result
(** [start_rev] is the last revision the client has already seen; the
    stream begins at [start_rev + 1]. Backlog delivery happens inside
    this call, in revision order. *)

val watch_batched :
  'v t ->
  ?prefix:string ->
  start_rev:int ->
  deliver:('v History.Event.t list -> unit) ->
  unit ->
  (handle, [ `Compacted of int ]) result
(** Like {!watch}, but events coalesce per watcher until {!flush}: each
    flush hands the watcher every event accumulated since the previous
    one, in arrival order, as a single notification. Backlog is queued
    for the first flush rather than delivered inside this call. *)

val cancel : 'v t -> handle -> unit
(** Effective immediately, even against an in-flight {!fan_out}; any
    batched events not yet flushed are dropped. *)

val active : 'v t -> int
(** Number of live watchers. *)

val pending : 'v t -> int
(** Events buffered for batched watchers awaiting {!flush}. *)

val flush : 'v t -> unit
(** Delivers every batched watcher's accumulated events. Watchers flush
    in first-event-arrival order; a typical server calls this once per
    tick. *)

val fan_out : 'v t -> 'v History.Event.t -> unit
(** Pushes one event to every matching watcher — exposed for servers that
    replay events from their own cache rather than from store commits. *)
