(** Volume controller: releases persistent volume claims of pods that are
    going away.

    The controller's contract is "when a pod is marked for deletion,
    release its claim". It learns about the world exclusively through
    *sparse reads* of its informer store — it does not react to events.
    That makes its correctness hinge on the mark state being observable
    at some read: if the pod is marked (e1) and then removed (e2) between
    two reconcile passes — or if the mark event is dropped on the way to
    its cache — the controller never sees a marked pod and never releases
    the claim. That is the observability-gap controller bug the paper
    cites ([cassandra-operator-398]'s pattern, also the Kubernetes
    controller bug of reference [17]).

    Fixed mode also releases claims whose owner pod has disappeared
    entirely, closing the gap.

    Scope: claims named outside the Cassandra operator's ["data-"]
    namespace (the operator manages those itself). *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  endpoints:string list ->
  ?release_on_absent_owner:bool ->
  ?period:int ->
  unit ->
  t
(** Default reconcile period: 150 ms. *)

val start : t -> unit

val name : t -> string

val view_rev : t -> int
(** The view's revision frontier: the minimum last-seen revision across
    the component's informers (0 before start) — its partial-history
    position, read by the cluster's revision-lag sampler. *)

val releases : t -> int
(** Claims released so far. *)

val reconciles : t -> int

val pods_informer : t -> Informer.t

val pvcs_informer : t -> Informer.t
