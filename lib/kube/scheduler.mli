(** Scheduler: binds pending pods to nodes using a cached node list.

    The scheduler maintains its node cache from informer events — which
    means the cache silently diverges if a node-deletion event never
    arrives. Binding is a guarded transaction (the node must exist in
    etcd and the pod must be unchanged), so binding to a vanished node
    *fails at commit time*; what the scheduler does with that failure is
    the Kubernetes-56261 story:

    - buggy mode (default): the failure is retried, the cache untouched —
      the scheduler keeps offering the deleted node forever (a
      placement livelock);
    - fixed mode ([evict_on_bind_failure]): a "node not found" failure
      evicts the node from the cache, which is the actual upstream fix
      ("scheduler should delete a node from its cache if it gets node
      not found"). *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  endpoints:string list ->
  ?evict_on_bind_failure:bool ->
  ?period:int ->
  unit ->
  t
(** Default scheduling loop period: 100 ms. *)

val start : t -> unit

val name : t -> string

val view_rev : t -> int
(** The view's revision frontier: the minimum last-seen revision across
    the component's informers (0 before start) — its partial-history
    position, read by the cluster's revision-lag sampler. *)

val cached_nodes : t -> string list
(** The scheduler's current node cache (sorted). *)

val binds : t -> int
(** Successful bindings performed. *)

val bind_failures : t -> ((string * string) * int) list
(** Per (pod, node) count of failed bind transactions — the livelock
    oracle's input. *)

val pods_informer : t -> Informer.t

val nodes_informer : t -> Informer.t
