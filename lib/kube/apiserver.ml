type subscription = {
  pipe : Pipe.t;
  prefix : string option;
  mutable last_sent : int;
  mutable epoch_sent : int;  (* matching events pushed since the last seal *)
}

type t = {
  name : string;
  net : Dsim.Network.t;
  intercept : Intercept.t;
  etcd : string;
  window_size : int;
  bookmark_period : int;
  heartbeat_timeout : int;
  retry_delay : int;
  mutable cache : Resource.value History.State.t;
  mutable last_rev : int;
  window : Resource.value History.Window.t;  (* oldest first *)
  mutable window_start : int;  (* revision preceding the oldest retained event *)
  subs : subscription History.Dispatch.t;
  streams : (string, int) Hashtbl.t;  (* stream_id -> dispatch handle *)
  mutable order_dirty : bool;
  mutable ready : bool;
  mutable generation : int;  (* invalidates in-flight callbacks across crashes *)
  mutable last_heartbeat : int;
  mutable resyncs : int;
  epoch_seal : int option;  (* seal subscriber streams every N revisions *)
  mutable last_seal_rev : int;
  mutable tap : Tap.t option;  (* conformance observation point, read-only *)
}

let name t = t.name

let ready t = t.ready

let rev t = t.last_rev

let cache t = t.cache

let subscriber_count t = Hashtbl.length t.streams

let resync_count t = t.resyncs

let engine t = Dsim.Network.engine t.net

(* Delivery order is pinned to [streams]'s own hashtable iteration
   order. Latency draws share one seeded RNG per send, so the order
   subscribers are visited decides which draw each stream gets — and
   with it every delivery time in the trace. [streams] sees exactly the
   replace/remove/reset sequence the subscriber table always saw, so
   its iteration order — and therefore the fixed-seed journals — are
   unchanged by the index. Recomputed lazily: only when the subscriber
   set changed since the last fan-out. *)
let repin t =
  if t.order_dirty then begin
    t.order_dirty <- false;
    let i = ref 0 in
    Hashtbl.iter
      (fun _ handle ->
        History.Dispatch.set_order t.subs handle ~order:!i;
        incr i)
      t.streams
  end

let tap_view t =
  {
    Tap.component = t.name;
    stream = t.name ^ "<-" ^ t.etcd;
    generation = t.generation;
    rev = t.last_rev;
    prefix = None;
    state = t.cache;
  }

(* Installing a tap on an apiserver that already adopted the store's
   state replays the adoption as a reset (see {!Informer.set_tap}). *)
let set_tap t tap =
  t.tap <- tap;
  match tap with
  | Some tp when t.last_rev > 0 -> tp.Tap.on_reset (tap_view t)
  | _ -> ()

let push_to_sub sub (e : Resource.value History.Event.t) =
  if e.History.Event.rev > sub.last_sent && History.Event.matches_prefix sub.prefix e then begin
    sub.last_sent <- e.History.Event.rev;
    sub.epoch_sent <- sub.epoch_sent + 1;
    Pipe.send sub.pipe (Pipe.Event e)
  end

(* Section 6.2's epoch protocol: every [g] cache revisions, tell each
   subscriber how many matching events this stream carried. A consumer
   that counts fewer has a hole it could never otherwise detect. *)
let maybe_seal t =
  match t.epoch_seal with
  | None -> ()
  | Some g ->
      if t.last_rev / g > t.last_seal_rev / g then begin
        t.last_seal_rev <- t.last_rev;
        repin t;
        History.Dispatch.iter_all t.subs (fun _ sub ->
            Pipe.send sub.pipe (Pipe.Seal { upto_rev = t.last_rev; sent = sub.epoch_sent });
            sub.epoch_sent <- 0)
      end

let drop_subscriber t addr =
  match Hashtbl.find_opt t.streams addr with
  | Some handle ->
      (match History.Dispatch.find t.subs handle with
      | Some sub -> Pipe.close sub.pipe
      | None -> ());
      ignore (History.Dispatch.remove t.subs handle);
      Hashtbl.remove t.streams addr;
      t.order_dirty <- true
  | None -> ()

let close_all_subscribers t =
  History.Dispatch.iter_all t.subs (fun _ sub -> Pipe.close sub.pipe);
  History.Dispatch.clear t.subs;
  Hashtbl.reset t.streams;
  t.order_dirty <- true

let clear_volatile_state t =
  close_all_subscribers t;
  t.cache <- History.State.empty;
  t.last_rev <- 0;
  History.Window.clear t.window;
  t.window_start <- 0;
  t.ready <- false;
  t.generation <- t.generation + 1

let trim_window t =
  let excess = History.Window.length t.window - t.window_size in
  if excess > 0 then begin
    History.Window.drop_oldest t.window excess;
    match History.Window.oldest t.window with
    | Some oldest -> t.window_start <- oldest.History.Event.rev - 1
    | None -> ()
  end

(* Fan-out walks only the subscribers whose prefix matches the key —
   the dispatch trie answers that in O(|key| + matches) — instead of
   filtering the whole table. The iteration snapshot also makes
   delivery reentrancy-safe: a subscriber that re-registers (or is
   dropped) from inside its own delivery callback mutates the index
   without corrupting the in-flight walk. *)
let observe_event t (e : Resource.value History.Event.t) =
  t.cache <- History.State.apply t.cache e;
  t.last_rev <- max t.last_rev e.History.Event.rev;
  History.Window.push t.window e;
  trim_window t;
  t.last_heartbeat <- Dsim.Engine.now (engine t);
  (match t.tap with Some tap -> tap.Tap.on_event (tap_view t) e | None -> ());
  repin t;
  History.Dispatch.iter_matching t.subs ~key:e.History.Event.key (fun _ sub -> push_to_sub sub e);
  maybe_seal t

let on_stream_item t gen item =
  if gen = t.generation && Dsim.Network.is_up t.net t.name then
    match item with
    | Pipe.Event e -> observe_event t e
    | Pipe.Bookmark rev ->
        (* FIFO on the etcd pipe guarantees every event <= rev was already
           delivered (or deliberately dropped by the interceptor), so it is
           safe — and is what the real watch cache does — to advance. *)
        t.last_rev <- max t.last_rev rev;
        t.last_heartbeat <- Dsim.Engine.now (engine t);
        (match t.tap with Some tap -> tap.Tap.on_advance (tap_view t) rev | None -> ());
        maybe_seal t
    | Pipe.Seal _ -> ()

let rec bootstrap t gen =
  if gen = t.generation && Dsim.Network.is_up t.net t.name then
    Dsim.Network.call t.net ~src:t.name ~dst:t.etcd (Messages.Etcd_range { prefix = "" })
      (function
      | Ok (Messages.Items { items; rev }) when gen = t.generation -> begin
          (* Rebuilding the watch cache breaks continuity for subscribers:
             events between their last revision and the fresh list are not
             in the (reset) window. Break their streams so they re-list,
             as the real apiserver's "too old resource version" does. *)
          close_all_subscribers t;
          t.cache <- Messages.items_to_state items;
          t.last_rev <- rev;
          History.Window.clear t.window;
          t.window_start <- rev;
          t.last_heartbeat <- Dsim.Engine.now (engine t);
          Dsim.Engine.record (engine t) ~actor:t.name ~kind:"api.list"
            (Printf.sprintf "listed %d items at rev %d" (List.length items) rev);
          (match t.tap with Some tap -> tap.Tap.on_reset (tap_view t) | None -> ());
          let watch =
            Messages.Etcd_watch
              {
                prefix = None;
                start_rev = rev;
                subscriber = t.name;
                stream_id = t.name;
                deliver = (fun item -> on_stream_item t gen item);
              }
          in
          Dsim.Network.call t.net ~src:t.name ~dst:t.etcd watch (function
            | Ok (Messages.Watch_ok _) when gen = t.generation -> t.ready <- true
            | _ -> retry t gen)
        end
      | _ -> retry t gen)

and retry t gen =
  if gen = t.generation then
    ignore (Dsim.Engine.schedule (engine t) ~delay:t.retry_delay (fun () -> bootstrap t gen))

let list_from_cache t prefix =
  History.State.bindings_with_prefix t.cache ~prefix
  |> List.map (fun (key, (v, mod_rev)) -> (key, v, mod_rev))

let forward t request reply =
  Dsim.Network.call t.net ~src:t.name ~dst:t.etcd request (function
    | Ok response -> reply response
    | Error _ -> reply Messages.Backend_unavailable)

let handle_watch t (w : Messages.watch_request) reply =
  if not t.ready then reply Messages.Backend_unavailable
  else if w.Messages.start_rev < t.window_start then
    reply (Messages.Watch_compacted { compacted_rev = t.window_start })
  else begin
    drop_subscriber t w.Messages.stream_id;
    let edge = Intercept.{ src = t.name; dst = w.Messages.subscriber } in
    let pipe =
      Pipe.create ~net:t.net ~intercept:t.intercept ~edge ~deliver:w.Messages.deliver ()
    in
    let sub =
      { pipe; prefix = w.Messages.prefix; last_sent = w.Messages.start_rev; epoch_sent = 0 }
    in
    let handle = History.Dispatch.add t.subs ?prefix:w.Messages.prefix sub in
    Hashtbl.replace t.streams w.Messages.stream_id handle;
    t.order_dirty <- true;
    History.Window.iter (push_to_sub sub) t.window;
    reply (Messages.Watch_ok { rev = t.last_rev })
  end

let serve t ~src:_ request reply =
  Dsim.Metrics.incr (Dsim.Engine.metrics (engine t)) ("rpc." ^ t.name);
  match request with
  | Messages.Api_list { prefix; quorum } ->
      if quorum then forward t (Messages.Etcd_range { prefix }) reply
      else if not t.ready then reply Messages.Backend_unavailable
      else reply (Messages.Items { items = list_from_cache t prefix; rev = t.last_rev })
  | Messages.Api_get { key; quorum } ->
      if quorum then forward t (Messages.Etcd_get { key }) reply
      else if not t.ready then reply Messages.Backend_unavailable
      else reply (Messages.Value { value = History.State.find t.cache key; rev = t.last_rev })
  | Messages.Api_txn { txn; origin; lease } ->
      forward t (Messages.Etcd_txn { txn; origin; lease }) reply
  | Messages.Api_lease_grant { ttl } -> forward t (Messages.Etcd_lease_grant { ttl }) reply
  | Messages.Api_lease_keepalive { lease } ->
      forward t (Messages.Etcd_lease_keepalive { lease }) reply
  | Messages.Api_lease_revoke { lease } -> forward t (Messages.Etcd_lease_revoke { lease }) reply
  | Messages.Api_watch w -> handle_watch t w reply
  | _ -> ()

let create ~net ~intercept ~name ~etcd ?(window_size = 1000) ?(bookmark_period = 200_000)
    ?(heartbeat_timeout = 1_000_000) ?(retry_delay = 300_000) ?epoch_seal () =
  {
    name;
    net;
    intercept;
    etcd;
    window_size;
    bookmark_period;
    heartbeat_timeout;
    retry_delay;
    cache = History.State.empty;
    last_rev = 0;
    window = History.Window.create ();
    window_start = 0;
    subs = History.Dispatch.create ();
    streams = Hashtbl.create 8;
    order_dirty = false;
    ready = false;
    generation = 0;
    last_heartbeat = 0;
    resyncs = 0;
    epoch_seal;
    last_seal_rev = 0;
    tap = None;
  }

let start t =
  Dsim.Network.register t.net t.name ~serve:(serve t) ();
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () -> clear_volatile_state t)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(serve t) ();
      bootstrap t t.generation);
  bootstrap t t.generation;
  (* Watchdog: a stream that stopped carrying events *and* bookmarks is
     dead (broken TCP connection / partitioned upstream); re-list then. A
     stream whose events are being silently dropped still carries
     bookmarks and is NOT detected — that asymmetry is the point. *)
  Dsim.Engine.every (engine t) ~period:(t.heartbeat_timeout / 2) (fun () ->
      (if
         t.ready
         && Dsim.Network.is_up t.net t.name
         && Dsim.Engine.now (engine t) - t.last_heartbeat > t.heartbeat_timeout
       then begin
         t.resyncs <- t.resyncs + 1;
         Dsim.Engine.record (engine t) ~actor:t.name ~kind:"api.resync"
           "etcd stream silent; re-listing";
         bootstrap t t.generation
       end);
      true);
  (* Bookmarks toward our own subscribers — and, under the epoch
     protocol, a time-based close of the current partial epoch, so that a
     hole in a quiet stream is still detected within one period. *)
  Dsim.Engine.every (engine t) ~period:t.bookmark_period (fun () ->
      if t.ready && Dsim.Network.is_up t.net t.name then begin
        repin t;
        History.Dispatch.iter_all t.subs (fun _ sub ->
            Pipe.send sub.pipe (Pipe.Bookmark t.last_rev);
            if t.epoch_seal <> None then begin
              Pipe.send sub.pipe (Pipe.Seal { upto_rev = t.last_rev; sent = sub.epoch_sent });
              sub.epoch_sent <- 0
            end)
      end;
      true)
