(** The Kubernetes-like control plane (the paper's Figure 1).

    Ground truth lives in {!Etcd} (an {!Etcdlike.Kv} served over the
    network); {!Apiserver}s cache it via watch streams and serve
    components; every component view is an {!Informer}
    (client-go-style list+watch cache). Components: {!Kubelet},
    {!Scheduler}, {!Volume_controller}, {!Cassandra_operator},
    {!Replicaset}, {!Node_controller}, plus lease-based {!Elector}s.
    {!Cluster} assembles a whole topology; {!Workload} scripts
    time-stamped operations against it.

    Every notification edge is a {!Pipe} (FIFO, TCP-like failure
    semantics) passing through the cluster's {!Intercept} point — the
    hook the Sieve strategies act on. *)

module Resource = Resource
module Messages = Messages
module Intercept = Intercept
module Pipe = Pipe
module Tap = Tap
module Etcd = Etcd
module Apiserver = Apiserver
module Informer = Informer
module Client = Client
module Kubelet = Kubelet
module Scheduler = Scheduler
module Volume_controller = Volume_controller
module Cassandra_operator = Cassandra_operator
module Replicaset = Replicaset
module Deployment = Deployment
module Node_controller = Node_controller
module Elector = Elector
module Cluster = Cluster
module Workload = Workload
