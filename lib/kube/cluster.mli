(** Cluster assembly: wires etcd, apiservers, kubelets, the scheduler, the
    volume controller and the Cassandra operator onto one simulated
    network (the Figure 1 topology), and exposes the ground truth and all
    component handles to oracles and testing strategies. *)

type config = {
  seed : int64;
  apiservers : int;
  nodes : int;  (** one kubelet per node *)
  etcd_watch_window : int option;  (** rolling event window; [None] = unlimited *)
  api_window : int;  (** apiserver watch-cache window *)
  min_latency : int;
  max_latency : int;
  with_scheduler : bool;
  with_volume_controller : bool;
  with_operator : bool;
  scheduler_fixed : bool;  (** evict nodes from cache on bind failure (56261 fix) *)
  volume_fixed : bool;  (** release claims of absent owners ([17] fix) *)
  operator_fixed : bool;  (** quorum guards before destructive actions (400/402 fix) *)
  kubelet_monotonic : bool;  (** reject stale re-lists (59848 fix) *)
  with_replicaset : bool;  (** run the ReplicaSet controller (off by default) *)
  with_node_controller : bool;  (** run the node controller (off by default) *)
  with_deployment : bool;
      (** run the Deployment controller (off by default; needs
          [with_replicaset]) *)
  replicaset_fixed : bool;  (** client-go expectations (over-provisioning fix) *)
  node_controller_fixed : bool;  (** quorum check before failing pods *)
  deployment_fixed : bool;  (** quorum fallback for view-wedged rollouts *)
  api_epoch_seal : int option;
      (** enable the Section 6.2 epoch-seal protocol on apiserver watch
          streams, sealing every N revisions ([None] = off, the bug-era
          default) *)
  obs_sample_period : int;
      (** how often (virtual us) the cluster samples every component's
          revision lag into the metrics registry *)
  replication : Etcd.replication option;
      (** [None] (default): the single-store backend, byte-compatible
          with every pre-replication scenario. [Some _]: the store is a
          Raft group of [replicas] members at addresses [etcd-1..n]
          (crash/partition strategies target them directly); reads and
          watches are routed per {!Replicated.Kv.read_mode} so follower
          staleness is injectable. *)
}

val default_config : config
(** seed 1, 2 apiservers, 3 nodes, unlimited etcd window, apiserver window
    1000, latency 500–2000 us, all components enabled, every fix off
    (the bug-era configuration), lag sampled every 100 ms. *)

type t

val create : ?config:config -> unit -> t
(** Builds the engine, network and all components; nothing runs until
    {!start}. *)

val start : t -> unit
(** Seeds node objects into etcd (on every replica, below consensus,
    when the store is replicated) and starts every component. *)

val run : t -> until:int -> unit
(** Advances virtual time (microseconds since 0). *)

val config : t -> config
val engine : t -> Dsim.Engine.t
val net : t -> Dsim.Network.t
val intercept : t -> Intercept.t
val etcd : t -> Etcd.t

val truth : t -> Resource.value History.State.t
(** The store's materialized ground truth [(S)]. *)

val truth_rev : t -> int

val apiservers : t -> Apiserver.t list
val apiserver_names : t -> string list
val kubelets : t -> Kubelet.t list
val kubelet_for_node : t -> string -> Kubelet.t option
val node_names : t -> string list
val scheduler : t -> Scheduler.t option
val volume_controller : t -> Volume_controller.t option
val operator : t -> Cassandra_operator.t option
val replicaset : t -> Replicaset.t option
val node_controller : t -> Node_controller.t option
val deployment : t -> Deployment.t option

val user : t -> Client.t
(** A client ("user") wired to the apiservers, for workloads. *)

val informers : t -> Informer.t list
(** Every informer cache in the cluster (kubelets, scheduler, controllers,
    operator) — the full set of consumer-side views a conformance monitor
    must tap. *)

val trace : t -> Dsim.Trace.t

val metrics : t -> Dsim.Metrics.t
(** The engine's metrics registry. After {!start}, a periodic sampler
    records every component's revision lag (committed store revision
    minus the component's view revision) as both a ["lag.<component>"]
    gauge and a virtual-time series — the live measurement of
    partial-history divergence. *)
