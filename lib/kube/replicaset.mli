(** ReplicaSet controller: keeps [rs_replicas] interchangeable pods alive
    per [Rset] object.

    Replicas are anonymous — replacement pods get fresh, never-reused
    names from a per-set counter, as the real controller's random
    suffixes do. That choice makes the controller quantitatively
    sensitive to partial histories: it decides how many pods to create by
    *counting its cached view*, so a view that lags behind its own recent
    creations makes it create again, and again, one burst per reconcile
    pass — the classic controller over-provisioning incident.

    The [expectations] flag applies client-go's remedy
    (UIDTrackingControllerExpectations): creations the controller has
    issued but not yet observed count toward the replica total until they
    appear or time out, so a merely *slow* view no longer causes
    over-creation. *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  endpoints:string list ->
  ?expectations:bool ->
  ?expectation_timeout:int ->
  ?period:int ->
  unit ->
  t
(** Defaults: no expectations (the bug-era behaviour), expectation
    timeout 2 s, reconcile every 150 ms. *)

val start : t -> unit

val name : t -> string

val view_rev : t -> int
(** The view's revision frontier: the minimum last-seen revision across
    the component's informers (0 before start) — its partial-history
    position, read by the cluster's revision-lag sampler. *)

val reconciles : t -> int

val creates : t -> int
(** Pod creations issued (not all succeed — creation is guarded). *)

val deletes : t -> int
(** Surplus pods marked for deletion. *)

val pods_informer : t -> Informer.t

val rsets_informer : t -> Informer.t
