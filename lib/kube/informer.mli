(** Informer: the client-side list + watch cache every component runs
    (the analogue of [k8s.io/client-go/tools/cache]).

    The informer lists a prefix from one of its configured apiservers,
    materializes a local store [S'], then watches from the listed
    revision, applying events and invoking the component's handler. It is
    the last cache layer in Figure 1 — and the layer where all five case
    study bugs observe the world from.

    Recovery behaviour, deliberately faithful to the bug-era semantics:

    - A dead stream (no events *and* no bookmarks within the timeout) is
      detected and answered with a rotation to the next endpoint and a
      re-list. A stream whose individual events are dropped keeps its
      bookmarks and is never detected.
    - A re-list *replaces* the store with whatever the chosen apiserver's
      cache holds. History cannot be recovered from state, and if that
      apiserver is stale the informer silently travels back in time —
      unless [monotonic] is set (the Kubernetes-59848 fix), in which case
      a list whose revision would move the store backwards is rejected
      and another endpoint is tried. *)

type t

val create :
  net:Dsim.Network.t ->
  owner:string ->
  endpoints:string list ->
  prefix:string ->
  ?on_event:(Resource.value History.Event.t -> unit) ->
  ?on_reset:(unit -> unit) ->
  ?monotonic:bool ->
  ?heartbeat_timeout:int ->
  ?retry_delay:int ->
  unit ->
  t
(** [on_event] runs after each event is applied to the store; [on_reset]
    after each full re-list. Defaults: not monotonic, stream declared
    dead after 1 s, retries every 300 ms. *)

val start : t -> ?endpoint:int -> unit -> unit
(** (Re)starts syncing, optionally pinning the initial endpoint index
    (modulo the endpoint count). Restarting bumps the generation so stale
    callbacks from a previous life are ignored. *)

val stop : t -> unit

val running : t -> bool

val owner : t -> string

val prefix : t -> string
(** The key prefix this informer lists and watches. *)

val store : t -> Resource.value History.State.t

val get : t -> string -> Resource.value option

val rev : t -> int
(** The view's frontier — decreases after a re-list from a stale
    apiserver (time travel). *)

val current_endpoint : t -> string

val relists : t -> int

val rotations : t -> int

val gaps_detected : t -> int
(** Holes exposed by epoch seals (requires the serving apiserver to have
    [epoch_seal] enabled); each one triggered an immediate re-list. *)

val set_tap : t -> Tap.t option -> unit
(** Installs (or removes) a conformance {!Tap} observing this store's
    delivery points: applied watch events, bookmark/seal frontier advances
    and list-based rebuilds. Installing on a running informer that already
    adopted a list immediately replays the adoption as [on_reset], so late
    observers start from the adopted revision. Taps are read-only; see
    {!Tap}. *)
