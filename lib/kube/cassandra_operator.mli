(** Cassandra operator: a level-triggered reconciler for [Cassdc] custom
    resources, modelled on the instaclustr cassandra-operator.

    Per datacenter it maintains one member pod per ordinal
    [<dc>-0 .. <dc>-(replicas-1)], each with a data claim
    [data-<dc>-<ordinal>], scaling up by creating the lowest missing
    ordinal and scaling down by *decommissioning* — marking for deletion —
    the highest-ordinal member. Orphaned data claims (no owning pod in
    view for several consecutive passes) are garbage-collected.

    Everything the operator knows comes from its informer caches, which is
    how the three reported bugs arise:

    - cassandra-operator-400: the decommission target is the max ordinal
      *in the cached view*; if the view is missing the true newest member,
      a wrong (non-max) member is decommissioned and scale-down wedges.
    - cassandra-operator-402: orphan GC trusts the cached pod list; a
      stale cache makes a live member's claim look orphaned and the
      operator deletes data out from under a running node.
    - cassandra-operator-398's pattern (a deletion mark that is never
      observed) lives in {!Volume_controller}, which owns non-["data-"]
      claims.

    [quorum_guard] applies the defensive fix: re-verify against etcd
    (quorum reads) before decommissioning or deleting a claim. *)

type t

val create :
  net:Dsim.Network.t ->
  name:string ->
  endpoints:string list ->
  ?quorum_guard:bool ->
  ?period:int ->
  ?orphan_strikes:int ->
  unit ->
  t
(** Defaults: reconcile every 150 ms; a claim must look orphaned for 4
    consecutive passes before GC deletes it. *)

val start : t -> unit

val name : t -> string

val view_rev : t -> int
(** The view's revision frontier: the minimum last-seen revision across
    the component's informers (0 before start) — its partial-history
    position, read by the cluster's revision-lag sampler. *)

val reconciles : t -> int

val member_creates : t -> int

val decommissions : t -> (string * int) list
(** (datacenter, ordinal) decommission decisions, oldest first. *)

val pvc_deletes : t -> string list
(** Claims the orphan GC deleted, oldest first. *)

val dc_informer : t -> Informer.t
val pods_informer : t -> Informer.t
val pvcs_informer : t -> Informer.t
