type t = {
  name : string;
  net : Dsim.Network.t;
  client : Client.t;
  release_on_absent_owner : bool;
  period : int;
  mutable pods_informer : Informer.t option;
  mutable pvcs_informer : Informer.t option;
  mutable releases : int;
  mutable reconciles : int;
}

let name t = t.name

let releases t = t.releases

let reconciles t = t.reconciles

let pods_informer t =
  match t.pods_informer with Some i -> i | None -> invalid_arg "Volume_controller: not started"

let pvcs_informer t =
  match t.pvcs_informer with Some i -> i | None -> invalid_arg "Volume_controller: not started"

let view_rev t =
  match List.filter_map (Option.map Informer.rev) [ t.pods_informer; t.pvcs_informer ] with
  | [] -> 0
  | r :: rest -> List.fold_left min r rest

let engine t = Dsim.Network.engine t.net

let record t kind detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind detail

let managed_claim name =
  (* The Cassandra operator owns the "data-" namespace. *)
  not (String.length name >= 5 && String.equal (String.sub name 0 5) "data-")

let release t (c : Resource.pvc) mod_rev =
  t.releases <- t.releases + 1;
  record t "volctl.release" c.Resource.pvc_name;
  Client.txn_ t.client
    (Etcdlike.Txn.delete_if_unchanged ~key:(Resource.pvc_key c.Resource.pvc_name)
       ~expected_mod_rev:mod_rev)

(* One sparse-read pass: the only information available is the *current*
   S'; events that happened between passes are invisible. *)
let reconcile t =
  t.reconciles <- t.reconciles + 1;
  let pods = Informer.store (pods_informer t) in
  let pvcs = Informer.store (pvcs_informer t) in
  List.iter
    (fun key ->
      match History.State.find pvcs key with
      | Some (Resource.Pvc c, mod_rev) when managed_claim c.Resource.pvc_name -> begin
          match c.Resource.owner_pod with
          | None -> ()
          | Some owner -> begin
              match History.State.get pods (Resource.pod_key owner) with
              | Some (Resource.Pod p) when p.Resource.deletion_timestamp <> None ->
                  release t c mod_rev
              | Some _ -> ()
              | None ->
                  (* Owner pod not in our view. The buggy controller was
                     written expecting to *see* the deletion mark first and
                     treats this as "nothing to do". *)
                  if t.release_on_absent_owner then release t c mod_rev
            end
        end
      | Some _ | None -> ())
    (History.State.keys_with_prefix pvcs ~prefix:Resource.pvcs_prefix)

let create ~net ~name ~endpoints ?(release_on_absent_owner = false) ?(period = 150_000) () =
  let t =
    {
      name;
      net;
      client = Client.create ~net ~owner:name ~endpoints ();
      release_on_absent_owner;
      period;
      pods_informer = None;
      pvcs_informer = None;
      releases = 0;
      reconciles = 0;
    }
  in
  t.pods_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.pods_prefix ());
  t.pvcs_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.pvcs_prefix ());
  t

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  let pods = pods_informer t and pvcs = pvcs_informer t in
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () ->
      Informer.stop pods;
      Informer.stop pvcs)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
      let endpoint = Dsim.Network.incarnation t.net t.name in
      Informer.start pods ~endpoint ();
      Informer.start pvcs ~endpoint ());
  Informer.start pods ~endpoint:0 ();
  Informer.start pvcs ~endpoint:0 ();
  Dsim.Engine.every (engine t) ~period:t.period (fun () ->
      if Dsim.Network.is_up t.net t.name then reconcile t;
      true)
