type t = {
  net : Dsim.Network.t;
  owner : string;
  endpoints : string array;
  prefix : string;
  on_event : Resource.value History.Event.t -> unit;
  on_reset : unit -> unit;
  monotonic : bool;
  heartbeat_timeout : int;
  retry_delay : int;
  mutable endpoint_index : int;
  mutable store : Resource.value History.State.t;
  mutable last_rev : int;
  mutable generation : int;
  mutable last_heartbeat : int;
  mutable running : bool;
  mutable watchdog_installed : bool;
  mutable relists : int;
  mutable rotations : int;
  mutable consecutive_failures : int;
  same_endpoint_retries : int;
  mutable since_seal : int;  (* events received since the last seal *)
  mutable gaps_detected : int;
  mutable tap : Tap.t option;  (* conformance observation point, read-only *)
}

let engine t = Dsim.Network.engine t.net

let create ~net ~owner ~endpoints ~prefix ?(on_event = fun _ -> ()) ?(on_reset = fun () -> ())
    ?(monotonic = false) ?(heartbeat_timeout = 1_000_000) ?(retry_delay = 300_000) () =
  if endpoints = [] then invalid_arg "Informer.create: no endpoints";
  {
    net;
    owner;
    endpoints = Array.of_list endpoints;
    prefix;
    on_event;
    on_reset;
    monotonic;
    heartbeat_timeout;
    retry_delay;
    endpoint_index = 0;
    store = History.State.empty;
    last_rev = 0;
    generation = 0;
    last_heartbeat = 0;
    running = false;
    watchdog_installed = false;
    relists = 0;
    rotations = 0;
    consecutive_failures = 0;
    same_endpoint_retries = 2;
    since_seal = 0;
    gaps_detected = 0;
    tap = None;
  }

let running t = t.running

let owner t = t.owner

let prefix t = t.prefix

let store t = t.store

let get t key = History.State.get t.store key

let rev t = t.last_rev

let current_endpoint t = t.endpoints.(t.endpoint_index mod Array.length t.endpoints)

let relists t = t.relists

let rotations t = t.rotations

let gaps_detected t = t.gaps_detected

let alive t gen = t.running && gen = t.generation && Dsim.Network.is_up t.net t.owner

let tap_view t =
  {
    Tap.component = t.owner;
    stream = t.owner ^ "#" ^ t.prefix;
    generation = t.generation;
    rev = t.last_rev;
    prefix = Some t.prefix;
    state = t.store;
  }

(* Installing a tap on an informer that already adopted a list replays
   the adoption as a reset, so the observer's frontier starts at the
   list revision rather than zero. *)
let set_tap t tap =
  t.tap <- tap;
  match tap with
  | Some tp when t.running && t.last_rev > 0 -> tp.Tap.on_reset (tap_view t)
  | _ -> ()

let rotate t =
  t.endpoint_index <- t.endpoint_index + 1;
  t.rotations <- t.rotations + 1;
  t.consecutive_failures <- 0

(* Transient failures (endpoint still booting, lost packet) retry the same
   endpoint; only repeated failure rotates. This keeps components homed on
   their configured apiserver, as behind a session-sticky LB. *)
let note_failure_and_maybe_rotate t =
  t.consecutive_failures <- t.consecutive_failures + 1;
  if t.consecutive_failures >= t.same_endpoint_retries then rotate t

let rec on_stream_item t gen item =
  if alive t gen then
    match item with
    | Pipe.Event e ->
        t.store <- History.State.apply t.store e;
        t.last_rev <- max t.last_rev e.History.Event.rev;
        t.last_heartbeat <- Dsim.Engine.now (engine t);
        t.since_seal <- t.since_seal + 1;
        (match t.tap with Some tap -> tap.Tap.on_event (tap_view t) e | None -> ());
        t.on_event e
    | Pipe.Bookmark rev ->
        t.last_rev <- max t.last_rev rev;
        t.last_heartbeat <- Dsim.Engine.now (engine t);
        (match t.tap with Some tap -> tap.Tap.on_advance (tap_view t) rev | None -> ())
    | Pipe.Seal { upto_rev; sent } ->
        t.last_heartbeat <- Dsim.Engine.now (engine t);
        (* The epoch protocol's payoff: the counts either agree — and the
           view provably holds every matching event up to [upto_rev] — or
           an event was silently lost and we re-list right now. *)
        if t.since_seal = sent then begin
          t.since_seal <- 0;
          t.last_rev <- max t.last_rev upto_rev;
          (match t.tap with Some tap -> tap.Tap.on_advance (tap_view t) upto_rev | None -> ())
        end
        else begin
          t.gaps_detected <- t.gaps_detected + 1;
          Dsim.Metrics.incr (Dsim.Engine.metrics (engine t)) "informer.gaps";
          Dsim.Engine.record (engine t) ~actor:t.owner ~kind:"informer.gap-detected"
            (Printf.sprintf "seal says %d events up to rev %d, received %d; re-listing" sent
               upto_rev t.since_seal);
          t.generation <- t.generation + 1;
          t.since_seal <- 0;
          bootstrap t t.generation
        end

and bootstrap t gen =
  if alive t gen then begin
    let endpoint = current_endpoint t in
    Dsim.Network.call t.net ~src:t.owner ~dst:endpoint
      (Messages.Api_list { prefix = t.prefix; quorum = false })
      (function
      | Ok (Messages.Items { items; rev }) when alive t gen ->
          if t.monotonic && rev < t.last_rev then begin
            (* The 59848 fix: never adopt a list older than what we have
               already observed; some other apiserver must be fresher. *)
            Dsim.Engine.record (engine t) ~actor:t.owner ~kind:"informer.reject-stale"
              (Printf.sprintf "%s served rev %d < frontier %d" endpoint rev t.last_rev);
            rotate t;
            retry t gen
          end
          else begin
            t.consecutive_failures <- 0;
            t.store <- Messages.items_to_state items;
            t.last_rev <- rev;
            t.last_heartbeat <- Dsim.Engine.now (engine t);
            t.relists <- t.relists + 1;
            Dsim.Metrics.incr (Dsim.Engine.metrics (engine t)) "informer.relists";
            t.since_seal <- 0;
            Dsim.Engine.record (engine t) ~actor:t.owner ~kind:"informer.list"
              (Printf.sprintf "%s %s: %d items at rev %d" endpoint t.prefix (List.length items)
                 rev);
            (match t.tap with Some tap -> tap.Tap.on_reset (tap_view t) | None -> ());
            t.on_reset ();
            let watch =
              Messages.Api_watch
                {
                  prefix = Some t.prefix;
                  start_rev = rev;
                  subscriber = t.owner;
                  stream_id = t.owner ^ "#" ^ t.prefix;
                  deliver = (fun item -> on_stream_item t gen item);
                }
            in
            Dsim.Network.call t.net ~src:t.owner ~dst:endpoint watch (function
              | Ok (Messages.Watch_ok _) -> ()
              | Ok (Messages.Watch_compacted _) when alive t gen ->
                  (* Our revision fell out of the apiserver's window; the
                     only recovery is another (gap-leaving) re-list. *)
                  retry t gen
              | _ ->
                  if alive t gen then begin
                    note_failure_and_maybe_rotate t;
                    retry t gen
                  end)
          end
      | _ ->
          if alive t gen then begin
            note_failure_and_maybe_rotate t;
            retry t gen
          end)
  end

and retry t gen =
  if alive t gen then
    ignore (Dsim.Engine.schedule (engine t) ~delay:t.retry_delay (fun () -> bootstrap t gen))

let install_watchdog t =
  if not t.watchdog_installed then begin
    t.watchdog_installed <- true;
    Dsim.Engine.every (engine t) ~period:(t.heartbeat_timeout / 2) (fun () ->
        (if
           t.running
           && Dsim.Network.is_up t.net t.owner
           && Dsim.Engine.now (engine t) - t.last_heartbeat > t.heartbeat_timeout
         then begin
           Dsim.Metrics.incr (Dsim.Engine.metrics (engine t)) "informer.stream-dead";
           Dsim.Engine.record (engine t) ~actor:t.owner ~kind:"informer.stream-dead"
             (Printf.sprintf "no traffic from %s; rotating" (current_endpoint t));
           rotate t;
           t.generation <- t.generation + 1;
           bootstrap t t.generation
         end);
        true)
  end

let start t ?endpoint () =
  (match endpoint with Some i -> t.endpoint_index <- i | None -> ());
  t.generation <- t.generation + 1;
  t.running <- true;
  t.last_heartbeat <- Dsim.Engine.now (engine t);
  install_watchdog t;
  bootstrap t t.generation

let stop t =
  t.running <- false;
  t.generation <- t.generation + 1
