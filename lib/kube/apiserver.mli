(** Apiserver: a caching façade over etcd.

    Mirrors the design Figure 1 describes: each apiserver keeps a local
    cache [(H', S')] of the store, updated by an etcd watch stream, and
    serves component reads and watches *from that cache* so that etcd is
    not the bottleneck. Writes and quorum reads are forwarded to etcd.

    The cache makes the apiserver exactly as trustworthy as its watch
    stream: a partition between this apiserver and etcd freezes its view
    while it keeps serving — the stale reads at the heart of
    Kubernetes-59848. A bounded in-memory window of recent events backs
    subscriber watch resumption; subscribers whose start revision fell out
    of the window are told to re-list (from this cache, not from etcd). *)

type t

val create :
  net:Dsim.Network.t ->
  intercept:Intercept.t ->
  name:string ->
  etcd:string ->
  ?window_size:int ->
  ?bookmark_period:int ->
  ?heartbeat_timeout:int ->
  ?retry_delay:int ->
  ?epoch_seal:int ->
  unit ->
  t
(** Defaults: window 1000 events, bookmarks every 200 ms, stream declared
    dead after 1 s without traffic, retries every 300 ms.

    [epoch_seal] enables the Section 6.2 epoch protocol: every given
    number of cache revisions, each subscriber stream carries a {!Pipe}
    [Seal] stating how many matching events were sent since the last one.
    Consumers can then *detect* holes in their partial history — silent
    event loss becomes a visible integrity failure. *)

val start : t -> unit
(** Begins the list + watch bootstrap against etcd and installs crash /
    restart hooks. *)

val name : t -> string

val ready : t -> bool
(** True once the initial list succeeded; the apiserver only serves when
    ready. *)

val rev : t -> int
(** Revision of the cache — lags etcd by the stream's staleness. *)

val cache : t -> Resource.value History.State.t
(** The cached [S'] (for oracles and divergence probes). *)

val subscriber_count : t -> int

val resync_count : t -> int
(** Times the watchdog re-listed after declaring the etcd stream dead. *)

val set_tap : t -> Tap.t option -> unit
(** Installs (or removes) a conformance {!Tap} observing this cache's
    delivery points: applied watch events, bookmark frontier advances and
    list-based rebuilds. Installing after the cache adopted state
    immediately replays the adoption as [on_reset], so late observers
    start from the adopted revision. Taps are read-only; see {!Tap}. *)
