type t = {
  name : string;
  net : Dsim.Network.t;
  client : Client.t;
  quorum_guard : bool;
  period : int;
  missing_strikes : int;
  mutable pods_informer : Informer.t option;
  mutable nodes_informer : Informer.t option;
  strikes : (string, int) Hashtbl.t;  (* pod -> consecutive missing-node sightings *)
  mutable reconciles : int;
  mutable eviction_log : (string * string) list;  (* newest first *)
}

let name t = t.name

let reconciles t = t.reconciles

let evictions t = List.rev t.eviction_log

let informer_exn = function Some i -> i | None -> invalid_arg "Node_controller: not started"

let pods_informer t = informer_exn t.pods_informer

let nodes_informer t = informer_exn t.nodes_informer

let view_rev t =
  match List.filter_map (Option.map Informer.rev) [ t.pods_informer; t.nodes_informer ] with
  | [] -> 0
  | r :: rest -> List.fold_left min r rest

let engine t = Dsim.Network.engine t.net

let record t kind detail = Dsim.Engine.record (engine t) ~actor:t.name ~kind detail

let fail_pod t (p : Resource.pod) mod_rev node =
  t.eviction_log <- (p.Resource.pod_name, node) :: t.eviction_log;
  record t "nodectl.fail-pod" (Printf.sprintf "%s (node %s gone)" p.Resource.pod_name node);
  Client.txn_ t.client
    (Etcdlike.Txn.put_if_unchanged ~key:(Resource.pod_key p.Resource.pod_name)
       ~expected_mod_rev:mod_rev
       (Resource.Pod { p with Resource.phase = Resource.Failed }))

let maybe_fail t (p : Resource.pod) mod_rev node =
  if t.quorum_guard then
    Client.get_quorum t.client (Resource.node_key node) (function
      | Ok None -> fail_pod t p mod_rev node
      | Ok (Some _) ->
          Hashtbl.remove t.strikes p.Resource.pod_name;
          record t "nodectl.abort" (Printf.sprintf "%s: node %s alive per quorum read"
                                      p.Resource.pod_name node)
      | Error `Unavailable -> ())
  else fail_pod t p mod_rev node

let reconcile t =
  t.reconciles <- t.reconciles + 1;
  let pods = Informer.store (pods_informer t) in
  let nodes = Informer.store (nodes_informer t) in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun key ->
      match History.State.find pods key with
      | Some (Resource.Pod p, mod_rev)
        when p.Resource.deletion_timestamp = None && p.Resource.phase <> Resource.Failed -> begin
          match p.Resource.node with
          | None -> ()
          | Some node ->
              Hashtbl.replace seen p.Resource.pod_name ();
              if History.State.mem nodes (Resource.node_key node) then
                Hashtbl.remove t.strikes p.Resource.pod_name
              else begin
                let strikes =
                  1 + Option.value (Hashtbl.find_opt t.strikes p.Resource.pod_name) ~default:0
                in
                Hashtbl.replace t.strikes p.Resource.pod_name strikes;
                if strikes >= t.missing_strikes then begin
                  Hashtbl.remove t.strikes p.Resource.pod_name;
                  maybe_fail t p mod_rev node
                end
              end
        end
      | Some _ | None -> ())
    (History.State.keys_with_prefix pods ~prefix:Resource.pods_prefix);
  let stale =
    Hashtbl.fold (fun pod _ acc -> if Hashtbl.mem seen pod then acc else pod :: acc) t.strikes []
  in
  List.iter (Hashtbl.remove t.strikes) stale

let create ~net ~name ~endpoints ?(quorum_guard = false) ?(period = 200_000)
    ?(missing_strikes = 3) () =
  let t =
    {
      name;
      net;
      client = Client.create ~net ~owner:name ~endpoints ();
      quorum_guard;
      period;
      missing_strikes;
      pods_informer = None;
      nodes_informer = None;
      strikes = Hashtbl.create 16;
      reconciles = 0;
      eviction_log = [];
    }
  in
  t.pods_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.pods_prefix ());
  t.nodes_informer <-
    Some (Informer.create ~net ~owner:name ~endpoints ~prefix:Resource.nodes_prefix ());
  t

let start t =
  Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
  let pods = pods_informer t and nodes = nodes_informer t in
  Dsim.Network.set_lifecycle t.net t.name
    ~on_crash:(fun () ->
      Informer.stop pods;
      Informer.stop nodes;
      Hashtbl.reset t.strikes)
    ~on_restart:(fun () ->
      Dsim.Network.register t.net t.name ~serve:(fun ~src:_ _ _ -> ()) ();
      let endpoint = Dsim.Network.incarnation t.net t.name in
      Informer.start pods ~endpoint ();
      Informer.start nodes ~endpoint ());
  Informer.start pods ~endpoint:0 ();
  Informer.start nodes ~endpoint:0 ();
  Dsim.Engine.every (engine t) ~period:t.period (fun () ->
      if Dsim.Network.is_up t.net t.name then reconcile t;
      true)
